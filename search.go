package cafc

import (
	"errors"
	"sync/atomic"

	"cafc/internal/form"
	"cafc/internal/search"
	"cafc/internal/stream"
)

// SearchConfig enables the retrieval subsystem on a live directory: a
// compiled inverted index grown incrementally with the corpus, frozen
// per epoch so it swaps atomically with the classifier. Zero values
// select the defaults noted in search.Options.
type SearchConfig struct {
	// MaxK caps the per-query result count (0 = 50).
	MaxK int
	// CacheSize bounds each epoch's result cache (0 = 1024).
	CacheSize int
	// MaxFacets caps the dynamic facet count per result set (0 = 6).
	MaxFacets int
}

// SearchHit, SearchFacet, SearchResult and SearchClusterHit re-export
// the retrieval types at the public surface, as QualitySnapshot does
// for the quality monitor.
type (
	SearchHit        = search.Hit
	SearchFacet      = search.Facet
	SearchResult     = search.Result
	SearchClusterHit = search.ClusterHit
)

// ErrSearchDisabled is returned by Search on a Live built without
// LiveConfig.Search.
var ErrSearchDisabled = errors.New("cafc: search not enabled (set LiveConfig.Search)")

// ErrSearchCold is returned by Search before the first epoch publishes
// (readiness should gate on Epoch() != nil, same as Classify).
var ErrSearchCold = errors.New("cafc: search index cold: no published epoch yet")

// searcher owns the live index. The builder is written only from the
// epoch-publish path (ingest worker on leaders, replication tailer on
// followers, the constructor goroutine during genesis and replay — all
// single-threaded), while the published snapshot is read lock-free.
type searcher struct {
	b       *search.Builder
	snap    atomic.Pointer[search.Snapshot]
	opts    search.Options
	weights form.Weights
}

// sync brings the index up to a freshly published epoch: append exactly
// the documents beyond the builder's cursor (never a rebuild), then
// freeze a snapshot carrying the epoch's cluster assignment. Live-path
// documents reuse the model's retained form.FormPage; recovered ones
// (Raw == nil after a snapshot load) re-derive terms from their
// WAL-backed HTML, bit-identically.
func (s *searcher) sync(e *stream.Epoch) {
	for i := s.b.Len(); i < len(e.Docs); i++ {
		if i < len(e.Model.Pages) {
			if p := e.Model.Pages[i]; p.Raw != nil {
				s.b.Add(p.URL, p.Raw.Title, p.Raw.PCTerms)
				continue
			}
		}
		title, terms := search.PageTerms(e.Docs[i].URL, e.Docs[i].HTML, s.weights)
		s.b.Add(e.Docs[i].URL, title, terms)
	}
	s.snap.Store(s.b.Freeze(e.Seq, e.Result.Assign, e.Result.K, s.opts))
}

// Search runs a ranked top-k query with labeled dynamic facets against
// the current epoch's index (k <= 0 selects the default 10). The bool
// reports whether the result was served from the epoch's cache; the
// result itself is identical either way, so replicas stay
// byte-identical regardless of cache state. Results are immutable.
func (l *Live) Search(q string, k int) (*SearchResult, bool, error) {
	if l.search == nil {
		return nil, false, ErrSearchDisabled
	}
	snap := l.search.snap.Load()
	if snap == nil {
		return nil, false, ErrSearchCold
	}
	r, cached := snap.Search(q, k)
	return r, cached, nil
}

// SearchClusters ranks directory clusters by aggregate retrieval score
// — the paper's database-selection primitive (which cluster of
// hidden-web sources best answers the query).
func (l *Live) SearchClusters(q string, limit int) ([]SearchClusterHit, error) {
	if l.search == nil {
		return nil, ErrSearchDisabled
	}
	snap := l.search.snap.Load()
	if snap == nil {
		return nil, ErrSearchCold
	}
	return snap.SearchClusters(q, limit), nil
}

// SearchLabels returns the current epoch's per-cluster discriminative
// labels (nil without search or before the first epoch) — the upgrade
// from "cluster 3" to a human-readable name in the directory UI.
func (l *Live) SearchLabels() []string {
	if l.search == nil {
		return nil
	}
	if snap := l.search.snap.Load(); snap != nil {
		return snap.ClusterLabels()
	}
	return nil
}

// SearchEpoch returns the epoch the published search snapshot was
// frozen at (0 while cold or disabled). It always matches
// AppliedEpoch once warm: the snapshot swaps in the same publish step.
func (l *Live) SearchEpoch() int64 {
	if l.search == nil {
		return 0
	}
	if snap := l.search.snap.Load(); snap != nil {
		return snap.Epoch
	}
	return 0
}
