// Directory: build an online-database directory from a heterogeneous set
// of hidden-web entry points — the paper's motivating application
// (BrightPlanet/ProFusion-style directories, Section 5).
//
//	go run ./examples/directory
//
// The example generates a synthetic hidden web (454 form pages across the
// paper's eight domains plus hubs and directories), derives backlink
// evidence with a simulated link: API, clusters the form pages with
// CAFC-CH, auto-labels each cluster from its centroid's top terms, and
// prints the resulting directory with its quality against the gold
// labels.
package main

import (
	"fmt"
	"log"
	"strings"

	"cafc"
	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

func main() {
	// 1. A synthetic hidden web stands in for a focused crawl.
	corpus := webgen.Generate(webgen.Config{Seed: 2007, FormPages: 454})
	var docs []cafc.Document
	gold := make(map[string]string)
	for _, u := range corpus.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: corpus.ByURL[u].HTML})
		gold[u] = string(corpus.Labels[u])
	}

	// 2. Backlink evidence comes from a simulated search-engine link:
	// API over the corpus link graph (limit 100 per query, like the
	// paper's AltaVista queries).
	graph := webgraph.FromCorpus(corpus)
	linkAPI := webgraph.NewBacklinkService(graph, 100, 0, 1)

	// 3. Cluster with CAFC-CH.
	c, err := cafc.NewCorpus(docs)
	if err != nil {
		log.Fatal(err)
	}
	clusters := c.ClusterCH(8, linkAPI.Backlinks, corpus.RootOf, 1)

	// 4. Print the directory: one section per cluster, labelled by its
	// centroid's top page-content terms.
	fmt.Println("=== Hidden-Web Database Directory ===")
	for i, members := range clusters.Clusters {
		label := strings.Join(clusters.TopTerms[i], ", ")
		fmt.Printf("\n[%d] %s (%d databases)\n", i, label, len(members))
		for j, u := range members {
			if j == 4 {
				fmt.Printf("    ... and %d more\n", len(members)-4)
				break
			}
			fmt.Printf("    %s\n", u)
		}
	}

	e, f := clusters.Quality(gold)
	fmt.Printf("\nentropy=%.3f F-measure=%.3f over %d form pages\n", e, f, c.Len())
}
