// Quickstart: cluster a handful of hand-written form pages with CAFC-C.
//
//	go run ./examples/quickstart
//
// The pages below are the kind of input CAFC expects: HTML documents
// containing searchable Web forms. Two are job-search interfaces with
// completely different attribute names (the paper's Figure 1 situation),
// two sell books, and one is a keyword-only search box whose descriptive
// text sits outside the form tags (Figure 1(c)). CAFC groups them by the
// database domain behind the form, without any schema matching.
package main

import (
	"fmt"
	"log"

	"cafc"
)

var docs = []cafc.Document{
	{
		URL: "http://jobs-a.example/search",
		HTML: `<html><head><title>Search Job Openings</title></head><body>
		<h1>Find your next career</h1>
		<p>Browse thousands of job openings from top employers.</p>
		<form action="/results">
		  Job Category: <select name="cat"><option>Engineering</option><option>Nursing</option><option>Sales</option></select>
		  State: <select name="st"><option>Utah</option><option>California</option></select>
		  <input type="submit" value="Search Jobs">
		</form></body></html>`,
	},
	{
		URL: "http://jobs-b.example/find",
		HTML: `<html><head><title>Employment Listings and Career Resources</title></head><body>
		<p>Post your resume and let employers find you. Salary surveys and interview tips.</p>
		<form action="/q">
		  Industry: <select name="ind"><option>Healthcare</option><option>Information Technology</option></select>
		  Location: <input type="text" name="loc">
		  Keywords: <input type="text" name="kw">
		  <input type="submit" value="Find Jobs">
		</form></body></html>`,
	},
	{
		URL: "http://books-a.example/search",
		HTML: `<html><head><title>Millions of Books for Sale</title></head><body>
		<p>New and used books, first editions and signed copies.</p>
		<form action="/results">
		  Title: <input type="text" name="title">
		  Author: <input type="text" name="author">
		  Format: <select name="f"><option>Hardcover</option><option>Paperback</option></select>
		  <input type="submit" value="Search Books">
		</form></body></html>`,
	},
	{
		URL: "http://books-b.example/lookup",
		HTML: `<html><head><title>Online Bookstore - Find a Book</title></head><body>
		<p>Browse fiction, mystery and biography bestsellers. Read reviews from other readers.</p>
		<form action="/s">
		  ISBN: <input type="text" name="isbn">
		  Written By: <input type="text" name="by">
		  <input type="submit" value="Find Books">
		</form></body></html>`,
	},
	{
		URL: "http://jobs-c.example/",
		HTML: `<html><head><title>MegaJobs</title></head><body>
		<p>Thousands of job openings updated daily. Entry level to executive positions.</p>
		<b>Search Jobs</b>
		<form action="/s"><input type="text" name="q"><input type="submit" value="Go"></form>
		</body></html>`,
	},
}

func main() {
	corpus, err := cafc.NewCorpus(docs)
	if err != nil {
		log.Fatal(err)
	}
	// On a corpus this tiny, the deterministic HAC baseline is the
	// sensible choice; for hundreds of pages use ClusterC / ClusterCH.
	clusters := corpus.ClusterHAC(2)
	for i, members := range clusters.Clusters {
		fmt.Printf("cluster %d — top terms %v\n", i, clusters.TopTerms[i])
		for _, u := range members {
			fmt.Printf("  %s\n", u)
		}
	}
	// Pairwise similarity under the form-page model (Equation 3).
	fmt.Printf("\nsim(jobs-a, jobs-b)  = %.3f\n", corpus.Similarity(0, 1))
	fmt.Printf("sim(jobs-a, books-a) = %.3f\n", corpus.Similarity(0, 2))
}
