// Classify: maintain a hidden-web directory over time. The paper's
// Section 5 observes that deep-web directories cover few sources because
// they are maintained by hand — and that CAFC's labelled clusters can
// classify newly discovered sources automatically. This example builds a
// directory from one crawl, then classifies form pages from a later,
// disjoint crawl without re-clustering.
//
//	go run ./examples/classify
package main

import (
	"fmt"
	"log"

	"cafc"
	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

func main() {
	// Day 1: crawl, cluster with CAFC-CH, label the clusters.
	day1 := webgen.Generate(webgen.Config{Seed: 1, FormPages: 320})
	var docs []cafc.Document
	gold := make(map[string]string)
	for _, u := range day1.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: day1.ByURL[u].HTML})
		gold[u] = string(day1.Labels[u])
	}
	corpus, err := cafc.NewCorpus(docs)
	if err != nil {
		log.Fatal(err)
	}
	graph := webgraph.FromCorpus(day1)
	linkAPI := webgraph.NewBacklinkService(graph, 100, 0, 1)
	clusters := corpus.ClusterCH(8, linkAPI.Backlinks, day1.RootOf, 1)

	// Label each cluster by the majority gold domain (in practice a
	// human curator names the directory sections once).
	labels := make([]string, len(clusters.Clusters))
	for i, members := range clusters.Clusters {
		counts := map[string]int{}
		for _, u := range members {
			counts[gold[u]]++
		}
		best, bestN := "", 0
		for d, n := range counts {
			if n > bestN {
				best, bestN = d, n
			}
		}
		labels[i] = best
	}
	clf := corpus.Classifier(clusters, labels)
	fmt.Printf("directory built from %d sources; sections: %v\n\n", corpus.Len(), clf.Labels())

	// Day 2: new sources appear. Classify them against the existing
	// directory — no re-clustering.
	day2 := webgen.Generate(webgen.Config{Seed: 2, FormPages: 96})
	correct, total := 0, 0
	for _, u := range day2.FormPages {
		pred, ok, err := clf.Classify(cafc.Document{URL: u, HTML: day2.ByURL[u].HTML})
		if err != nil || !ok {
			continue
		}
		total++
		if pred.Label == string(day2.Labels[u]) {
			correct++
		}
	}
	fmt.Printf("classified %d new sources, %d correctly (%.1f%%)\n",
		total, correct, 100*float64(correct)/float64(total))

	// Show one ranked prediction in detail.
	u := day2.FormPages[0]
	ranked, err := clf.Rank(cafc.Document{URL: u, HTML: day2.ByURL[u].HTML})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s (gold: %s)\n", u, day2.Labels[u])
	for i, p := range ranked {
		if i == 3 {
			break
		}
		fmt.Printf("  #%d %-10s sim=%.3f\n", i+1, p.Label, p.Similarity)
	}
}
