// Crawl: the end-to-end pipeline over real HTTP — serve a synthetic
// hidden web on a local listener, crawl it with the focused crawler,
// keep only pages with searchable forms (the paper's input assumption),
// then cluster the discovered databases with CAFC-C.
//
//	go run ./examples/crawl
package main

import (
	"fmt"
	"log"

	"cafc"
	"cafc/internal/crawler"
	"cafc/internal/webgen"
)

func main() {
	// Serve a synthetic hidden web over HTTP.
	corpus := webgen.Generate(webgen.Config{Seed: 11, FormPages: 160})
	srv, client := crawler.ServeCorpus(corpus)
	defer srv.Close()

	// Crawl outward from the directory pages, as a focused crawler
	// seeded on database directories would.
	var seeds []string
	for _, p := range corpus.Pages {
		if p.Kind == webgen.DirectoryPageKind || p.Kind == webgen.HubPageKind {
			seeds = append(seeds, p.URL)
		}
	}
	cr := &crawler.Crawler{
		Fetcher: &crawler.HTTPFetcher{Client: client},
		Config:  crawler.Config{Workers: 4},
	}
	pages := cr.Crawl(seeds)
	formPages := crawler.FormPages(pages)
	fmt.Printf("crawled %d pages, found %d searchable form pages\n", len(pages), len(formPages))

	// Cluster what the crawler found.
	var docs []cafc.Document
	gold := make(map[string]string)
	for _, p := range formPages {
		docs = append(docs, cafc.Document{URL: p.URL, HTML: p.HTML})
		if kp := corpus.ByURL[p.URL]; kp != nil {
			gold[p.URL] = string(kp.Domain)
		}
	}
	c, err := cafc.NewCorpus(docs, cafc.Options{SkipNonSearchable: true})
	if err != nil {
		log.Fatal(err)
	}
	clusters := c.ClusterC(8, 3)
	for i, members := range clusters.Clusters {
		fmt.Printf("cluster %d: %3d pages — %v\n", i, len(members), clusters.TopTerms[i])
	}
	e, f := clusters.Quality(gold)
	fmt.Printf("entropy=%.3f F-measure=%.3f\n", e, f)
}
