// Jobsearch: the paper's Section 1 motivation in miniature. Job-search
// forms on the Web are wildly heterogeneous — "Job Category" vs
// "Industry", "State" vs "Location", keyword boxes with no labels at all
// (Figure 1). This example isolates the Job domain from a mixed crawl,
// then inspects why the form-page model still recognizes the pages as one
// domain: the FC/PC split and the combined similarity.
//
//	go run ./examples/jobsearch
package main

import (
	"fmt"
	"log"
	"sort"

	"cafc"
	"cafc/internal/form"
	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

func main() {
	corpus := webgen.Generate(webgen.Config{Seed: 33, FormPages: 240})
	var docs []cafc.Document
	gold := make(map[string]string)
	for _, u := range corpus.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: corpus.ByURL[u].HTML})
		gold[u] = string(corpus.Labels[u])
	}
	c, err := cafc.NewCorpus(docs)
	if err != nil {
		log.Fatal(err)
	}
	// Content-only clustering confuses Job with Auto: both quote the
	// same salary/price ranges. Hub evidence (CAFC-CH) untangles them.
	contentOnly := c.ClusterC(8, 7)
	eC, fC := contentOnly.Quality(gold)
	graph := webgraph.FromCorpus(corpus)
	linkAPI := webgraph.NewBacklinkService(graph, 100, 0, 1)
	clusters := c.ClusterCH(8, linkAPI.Backlinks, corpus.RootOf, 7)
	eCH, fCH := clusters.Quality(gold)
	fmt.Printf("CAFC-C:  entropy=%.3f F=%.3f\nCAFC-CH: entropy=%.3f F=%.3f\n\n", eC, fC, eCH, fCH)

	// Find the cluster holding most Job pages.
	best, bestCount := -1, 0
	for i, members := range clusters.Clusters {
		count := 0
		for _, u := range members {
			if gold[u] == "job" {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = i, count
		}
	}
	members := clusters.Clusters[best]
	fmt.Printf("job cluster: %d pages (%d truly Job domain) — top terms %v\n",
		len(members), bestCount, clusters.TopTerms[best])

	// Show the attribute-name heterogeneity CAFC tolerates: collect the
	// distinct select/input labels used across the clustered job forms.
	labelSet := map[string]bool{}
	single := 0
	for _, u := range members {
		fp, err := form.Parse(u, corpus.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			continue
		}
		if fp.Form.AttributeCount() <= 1 {
			single++
		}
		for _, f := range fp.Form.Fields {
			if f.Name != "" && !f.Hidden() {
				labelSet[f.Name] = true
			}
		}
	}
	var names []string
	for n := range labelSet {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\n%d distinct field names across the cluster's forms (showing up to 20):\n", len(names))
	for i, n := range names {
		if i == 20 {
			break
		}
		fmt.Printf("  %s\n", n)
	}
	fmt.Printf("\nsingle-attribute (keyword-box) forms correctly grouped: %d\n", single)

	e, f := clusters.Quality(gold)
	fmt.Printf("overall: entropy=%.3f F-measure=%.3f\n", e, f)
}
