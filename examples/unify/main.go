// Unify: the downstream application CAFC enables. The paper observes
// that schema matching and interface integration "require as inputs
// groups of similar forms such as the ones derived by our approach" —
// so this example runs the whole chain: cluster a mixed corpus with
// CAFC-CH, take one discovered cluster, find the attribute
// correspondences across its heterogeneously-designed forms, and merge
// them into one unified query interface.
//
//	go run ./examples/unify
package main

import (
	"fmt"
	"log"
	"strings"

	"cafc"
	"cafc/internal/form"
	"cafc/internal/match"
	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

func main() {
	corpus := webgen.Generate(webgen.Config{Seed: 8, FormPages: 240})
	var docs []cafc.Document
	for _, u := range corpus.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: corpus.ByURL[u].HTML})
	}
	c, err := cafc.NewCorpus(docs)
	if err != nil {
		log.Fatal(err)
	}
	graph := webgraph.FromCorpus(corpus)
	linkAPI := webgraph.NewBacklinkService(graph, 100, 0, 1)
	clusters := c.ClusterCH(8, linkAPI.Backlinks, corpus.RootOf, 1)

	// Pick the cluster whose top terms mention jobs.
	pick := 0
	for i, terms := range clusters.TopTerms {
		if strings.Contains(strings.Join(terms, " "), "job") {
			pick = i
			break
		}
	}
	members := clusters.Clusters[pick]
	fmt.Printf("cluster %d (%v): %d databases\n\n", pick, clusters.TopTerms[pick], len(members))

	// Parse the member forms (multi-attribute ones carry the schemas).
	var forms []*form.Form
	for _, u := range members {
		fp, err := form.Parse(u, corpus.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			continue
		}
		if fp.Form.AttributeCount() > 1 {
			forms = append(forms, fp.Form)
		}
	}

	// Attribute correspondences across the cluster.
	cors := match.Find(forms, match.Options{})
	fmt.Printf("attribute correspondences across %d forms:\n", len(forms))
	for _, cor := range cors {
		if len(cor.Members) < 3 {
			continue
		}
		variants := map[string]bool{}
		for _, m := range cor.Members {
			variants[m.Label] = true
		}
		var names []string
		for v := range variants {
			names = append(names, v)
		}
		fmt.Printf("  %-22s spans %2d forms, named: %s\n", cor.Label, cor.Forms, strings.Join(names, " | "))
	}

	// The unified interface.
	unified := match.Unify(forms, match.Options{}, 0.3)
	fmt.Printf("\nunified query interface (attributes on >=30%% of forms):\n")
	for _, u := range unified {
		kind := "text"
		if len(u.Options) > 0 {
			kind = fmt.Sprintf("select with %d values", len(u.Options))
		}
		fmt.Printf("  %-22s %-24s coverage %.0f%%\n", u.Label, kind, 100*u.Coverage)
	}
}
