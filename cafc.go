// Package cafc is a Go implementation of Context-Aware Form Clustering
// (CAFC), the approach of Barbosa, Freire and Silva, "Organizing
// Hidden-Web Databases by Clustering Visible Web Documents" (ICDE 2007).
//
// Given a heterogeneous set of Web form pages that serve as entry points
// to hidden-web databases, CAFC groups the pages by database domain using
// only visible, automatically extractable evidence:
//
//   - the form-page model: each page is two TF-IDF vector spaces, the
//     form contents (FC) and the page contents (PC), with
//     location-differentiated term weights;
//   - CAFC-C: k-means over the combined cosine similarity of both spaces;
//   - CAFC-CH: a two-phase variant that first derives seed clusters from
//     hub pages (shared backlinks) and then refines them with content
//     similarity.
//
// Quick start:
//
//	docs := []cafc.Document{{URL: u1, HTML: h1}, {URL: u2, HTML: h2}}
//	corpus, err := cafc.NewCorpus(docs)
//	if err != nil { ... }
//	clusters := corpus.ClusterC(8, 0) // CAFC-C with k=8
//	for _, c := range clusters.Clusters { fmt.Println(c) }
//
// With backlink information (any func(url) ([]string, error), e.g. a
// search engine's link: API) CAFC-CH usually produces substantially more
// homogeneous clusters:
//
//	clusters = corpus.ClusterCH(8, backlinks, roots, 0)
package cafc

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	icafc "cafc/internal/cafc"
	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/hub"
	"cafc/internal/metrics"
	"cafc/internal/obs"
	"cafc/internal/retry"
	"cafc/internal/vector"
	"cafc/internal/webgraph"
)

// Registry is the in-process observability registry (counters, gauges,
// histograms). Attach one via Options.Metrics to collect model-build and
// clustering telemetry; serve it with the /metrics endpoints the cmd
// binaries expose, or snapshot it directly.
type Registry = obs.Registry

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Document is one input page: its URL and raw HTML.
type Document struct {
	URL  string
	HTML string
}

// Options configures corpus construction.
type Options struct {
	// Weights are the LOC factors of the weighted TF-IDF (Equation 1).
	// The zero value selects the paper's differentiated weights.
	Weights form.Weights
	// UniformWeights disables location differentiation (Section 4.4's
	// ablation).
	UniformWeights bool
	// Features restricts similarity to one feature space; default is the
	// combined FC+PC measure.
	Features Features
	// SkipNonSearchable drops documents without a searchable form
	// instead of failing. The paper assumes a pre-filtered input set;
	// enable this when feeding raw crawls.
	SkipNonSearchable bool
	// C1 and C2 weigh the PC and FC cosines in the combined similarity
	// (Equation 3). Zero values select the paper's C1 = C2 = 1.
	C1, C2 float64
	// Metrics, when non-nil, collects build and clustering telemetry for
	// this corpus: TF-IDF build timing, k-means convergence (moved
	// fraction, iteration counts, empty-cluster repairs), HAC merge
	// timing, and the backward-crawl coverage counters of ClusterCH. Nil
	// disables all instrumentation; clustering results are identical
	// either way.
	Metrics *Registry
	// Retry, when non-nil, makes ClusterCH's backlink queries resilient:
	// bounded retries with exponential backoff, a circuit breaker, and a
	// total query budget. When the budget runs out or the breaker trips,
	// hub construction degrades to the hubs gathered so far (CAFC-CH
	// fills the seed shortfall randomly, as Algorithm 1 would) and the
	// Clustering reports the reason in Degraded. Nil leaves backlink
	// queries exactly as provided — results are bit-identical to a
	// build without this option.
	Retry *Retry
}

// Retry is the resilience policy Options.Retry attaches to ClusterCH's
// backlink queries. Zero fields select the defaults noted per field.
type Retry struct {
	// MaxAttempts per query, first try included (0 = 3).
	MaxAttempts int
	// BaseDelay is the initial backoff (0 = 100ms); MaxDelay caps it
	// (0 = 2s). Jitter is deterministic, driven by Seed.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	Seed      int64
	// Budget caps total underlying queries, retries included
	// (0 = unlimited) — the paper's bounded backward-crawl budget.
	Budget int
	// BreakerThreshold consecutive failures trip the circuit breaker
	// (0 = 5); it half-opens after BreakerCooldown (0 = 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// Features selects the feature spaces used for similarity.
type Features = icafc.Features

// Feature-space configurations.
const (
	FCPC   = icafc.FCPC
	FCOnly = icafc.FCOnly
	PCOnly = icafc.PCOnly
)

// Corpus is a set of form pages embedded in the form-page model, ready to
// cluster.
type Corpus struct {
	model             *icafc.Model
	urls              []string
	weights           form.Weights
	retry             *Retry
	skipNonSearchable bool
	// Skipped lists input URLs dropped for having no searchable form
	// (only populated with Options.SkipNonSearchable).
	Skipped []string
}

// ErrNoSearchableForm is returned when a document contains no searchable
// form and SkipNonSearchable is off.
var ErrNoSearchableForm = form.ErrNoSearchableForm

// NewCorpus parses the documents, extracts their searchable forms and
// builds the two-space TF-IDF model.
func NewCorpus(docs []Document, opts ...Options) (*Corpus, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	w := o.Weights
	if w == (form.Weights{}) {
		w = form.DefaultWeights
	}
	c := &Corpus{weights: w}
	var fps []*form.FormPage
	for _, d := range docs {
		fp, err := form.Parse(d.URL, d.HTML, w)
		if err != nil {
			if errors.Is(err, form.ErrNoSearchableForm) && o.SkipNonSearchable {
				c.Skipped = append(c.Skipped, d.URL)
				continue
			}
			return nil, fmt.Errorf("cafc: %s: %w", d.URL, err)
		}
		fps = append(fps, fp)
		c.urls = append(c.urls, d.URL)
	}
	c.retry = o.Retry
	c.skipNonSearchable = o.SkipNonSearchable
	c.model = icafc.BuildMetrics(fps, o.UniformWeights, o.Metrics)
	c.model.Features = o.Features
	if o.C1 != 0 || o.C2 != 0 {
		c.model.C1, c.model.C2 = o.C1, o.C2
	}
	return c, nil
}

// Append grows the corpus in place with newly discovered form pages:
// the document-frequency tables absorb the new documents, each new page
// is embedded against the updated tables, and the compiled engine grows
// incrementally (existing packed vectors stay valid — term IDs are
// append-only). Existing pages keep the IDF weights of the corpus state
// they were embedded under; Reembed erases that staleness. Documents
// without a searchable form follow the corpus's SkipNonSearchable
// policy, exactly as NewCorpus would.
//
// Append mutates the corpus and must not race with concurrent readers;
// the live-directory layer (Live) builds each epoch on a copy and
// publishes it atomically instead.
func (c *Corpus) Append(docs []Document) (added int, err error) {
	var fps []*form.FormPage
	for _, d := range docs {
		fp, perr := form.Parse(d.URL, d.HTML, c.weights)
		if perr != nil {
			if errors.Is(perr, form.ErrNoSearchableForm) && c.skipNonSearchable {
				c.Skipped = append(c.Skipped, d.URL)
				continue
			}
			return 0, fmt.Errorf("cafc: %s: %w", d.URL, perr)
		}
		fps = append(fps, fp)
	}
	for _, fp := range fps {
		c.urls = append(c.urls, fp.URL)
	}
	c.model.AppendPages(fps)
	return len(fps), nil
}

// Reembed recomputes every page's TF-IDF vectors against the current
// document-frequency tables, erasing the stale-IDF approximation Append
// accumulates. A corpus grown by Append and then reembedded is
// equivalent to one built by a single NewCorpus call over the same
// documents. Pages without retained extraction state (loaded from a
// snapshot) keep their stored vectors.
func (c *Corpus) Reembed() { c.model.ReembedAll() }

// Len returns the number of admitted form pages.
func (c *Corpus) Len() int { return len(c.urls) }

// URLs returns the admitted form-page URLs in input order.
func (c *Corpus) URLs() []string { return append([]string(nil), c.urls...) }

// Similarity returns the form-page similarity (Equation 3) between two
// admitted pages by index.
func (c *Corpus) Similarity(i, j int) float64 { return c.model.PairSim(i, j) }

// Clustering is the result of a clustering run.
type Clustering struct {
	// Assign maps each admitted URL to its cluster id.
	Assign map[string]int
	// Clusters lists the member URLs of each cluster.
	Clusters [][]string
	// TopTerms gives, per cluster, the highest-weighted page-content
	// terms of its centroid — useful for labelling clusters.
	TopTerms [][]string
	// Degraded is empty for a clean run; otherwise it names why
	// CAFC-CH completed with partial hub evidence
	// ("backlink_budget_exhausted", "backlink_breaker_open",
	// "backlink_unavailable"). The clusters remain valid — the seed
	// shortfall was filled randomly, as CAFC-C would.
	Degraded string
}

// newClustering converts an internal result.
func (c *Corpus) newClustering(res cluster.Result) *Clustering {
	out := &Clustering{Assign: make(map[string]int, len(c.urls))}
	out.Clusters = make([][]string, res.K)
	for i, cl := range res.Assign {
		if cl < 0 {
			continue
		}
		out.Assign[c.urls[i]] = cl
		out.Clusters[cl] = append(out.Clusters[cl], c.urls[i])
	}
	members := cluster.Members(res.Assign, res.K)
	// One accumulator labels every cluster: newClustering runs on each
	// live publish, and the per-cluster map-vector centroid it used to
	// build cost ~38% of publish CPU at paper scale.
	acc := vector.NewAccumulator(0)
	for cl := 0; cl < res.K; cl++ {
		out.TopTerms = append(out.TopTerms, c.centroidTopTerms(members[cl], 5, acc))
	}
	return out
}

// centroidTopTerms returns the top PC terms of a member set's centroid,
// through the model's compiled fast path when the engine is active (the
// two are pinned bit-identical — same member-order weight sums, same
// term-string tie-breaks). acc is optional scratch.
func (c *Corpus) centroidTopTerms(members []int, n int, acc *vector.Accumulator) []string {
	if len(members) == 0 {
		return nil
	}
	if ts, ok := c.model.CentroidTopTerms(members, n, acc); ok {
		return ts
	}
	vs := make([]vector.Vector, len(members))
	for i, m := range members {
		vs[i] = c.model.Pages[m].PC
	}
	return vector.Centroid(vs).TopTerms(n)
}

// ClusterC runs CAFC-C (Algorithm 1): k-means with random seeds and the
// paper's stop criterion. seed drives the random seed selection; equal
// seeds give identical runs.
func (c *Corpus) ClusterC(k int, seed int64) *Clustering {
	res := icafc.CAFCC(c.model, k, rand.New(rand.NewSource(seed+1)))
	return c.newClustering(res)
}

// BacklinkFunc answers a link:-style query: the URLs of pages linking to
// the given URL.
type BacklinkFunc = hub.BacklinkFunc

// ClusterCH runs CAFC-CH (Algorithm 2): hub clusters are derived from
// backlinks (with the site-root fallback from roots, which may be nil),
// filtered to the default minimum cardinality, greedily spread with
// farthest-first selection, and used to seed the k-means refinement.
func (c *Corpus) ClusterCH(k int, backlinks BacklinkFunc, roots map[string]string, seed int64) *Clustering {
	return c.ClusterCHMinCard(k, backlinks, roots, 8, seed)
}

// ClusterCHMinCard is ClusterCH with an explicit minimum hub-cluster
// cardinality (the Figure 3 knob). With Options.Retry set, the backlink
// queries run under the retry/breaker/budget policy and the result's
// Degraded field reports any fallback taken.
func (c *Corpus) ClusterCHMinCard(k int, backlinks BacklinkFunc, roots map[string]string, minCard int, seed int64) *Clustering {
	if r := c.retry; r != nil {
		rb := &webgraph.ResilientBacklinks{
			Query: backlinks,
			Policy: retry.Policy{
				MaxAttempts: r.MaxAttempts,
				BaseDelay:   r.BaseDelay,
				MaxDelay:    r.MaxDelay,
				Seed:        r.Seed,
			},
			Budget:  r.Budget,
			Breaker: retry.NewBreaker(r.BreakerThreshold, r.BreakerCooldown, nil, c.model.Metrics, "backlink"),
			Metrics: c.model.Metrics,
		}
		backlinks = rb.Backlinks
	}
	clusters, stats := hub.BuildWith(c.urls, roots, backlinks, hub.BuildOptions{Metrics: c.model.Metrics})
	res := icafc.CAFCCH(c.model, k, clusters, minCard, rand.New(rand.NewSource(seed+1)))
	cl := c.newClustering(res)
	cl.Degraded = stats.DegradedReason
	return cl
}

// ClusterHAC runs the hierarchical-agglomerative baseline cut at k
// clusters (average linkage).
func (c *Corpus) ClusterHAC(k int) *Clustering {
	res := icafc.HACResult(c.model, k, cluster.AverageLinkage)
	return c.newClustering(res)
}

// Quality evaluates a clustering against gold labels (URL -> class) with
// the paper's metrics. URLs missing from labels are ignored.
func (cl *Clustering) Quality(labels map[string]string) (entropy, fMeasure float64) {
	var assign []int
	var classes []string
	for u, c := range cl.Assign {
		lbl, ok := labels[u]
		if !ok {
			continue
		}
		assign = append(assign, c)
		classes = append(classes, lbl)
	}
	l := metrics.Labeling{Assign: assign, Classes: classes}
	return metrics.Entropy(l), metrics.FMeasure(l)
}

// Classifier assigns newly discovered form pages to existing, labelled
// clusters — the directory-maintenance application the paper's Section 5
// sketches: build the clusters once, label them, then classify new
// sources automatically.
type Classifier struct {
	inner   *icafc.Classifier
	weights form.Weights
}

// Classifier builds a nearest-centroid classifier from a clustering of
// this corpus. labels[i] names cluster i; when labels is nil the clusters
// are named by their top centroid terms.
func (c *Corpus) Classifier(cl *Clustering, labels []string) *Classifier {
	// Reconstruct the internal assignment from the URL mapping.
	assign := make([]int, len(c.urls))
	for i, u := range c.urls {
		if a, ok := cl.Assign[u]; ok {
			assign[i] = a
		} else {
			assign[i] = -1
		}
	}
	res := cluster.Result{Assign: assign, K: len(cl.Clusters)}
	if labels == nil {
		labels = make([]string, len(cl.Clusters))
		for i, terms := range cl.TopTerms {
			labels[i] = strings.Join(terms, " ")
		}
	}
	return &Classifier{
		inner:   icafc.NewClassifier(c.model, res, labels),
		weights: c.weights,
	}
}

// Prediction is one ranked classification outcome.
type Prediction struct {
	Cluster    int
	Label      string
	Similarity float64
}

// Classify parses a new document and assigns it to the nearest cluster.
// It fails when the document has no searchable form, and reports ok=false
// when the page shares no vocabulary with the corpus.
func (cf *Classifier) Classify(d Document) (Prediction, bool, error) {
	fp, err := form.Parse(d.URL, d.HTML, cf.weights)
	if err != nil {
		return Prediction{}, false, fmt.Errorf("cafc: %s: %w", d.URL, err)
	}
	p, ok := cf.inner.Classify(fp)
	return Prediction{Cluster: p.Cluster, Label: p.Label, Similarity: p.Similarity}, ok, nil
}

// Rank returns every cluster ordered by decreasing similarity to the
// document.
func (cf *Classifier) Rank(d Document) ([]Prediction, error) {
	fp, err := form.Parse(d.URL, d.HTML, cf.weights)
	if err != nil {
		return nil, fmt.Errorf("cafc: %s: %w", d.URL, err)
	}
	var out []Prediction
	for _, p := range cf.inner.Rank(fp) {
		out = append(out, Prediction{Cluster: p.Cluster, Label: p.Label, Similarity: p.Similarity})
	}
	return out, nil
}

// Labels returns the classifier's cluster names.
func (cf *Classifier) Labels() []string {
	return append([]string(nil), cf.inner.Labels...)
}

// KScore is one candidate cluster count with its silhouette quality.
type KScore = cluster.KScore

// SelectK searches the number of clusters in [kMin, kMax] with the
// silhouette criterion (an extension: the paper fixes k to its gold
// standard's eight domains, which a user organizing an unlabeled crawl
// does not know). It returns the best k and the full score curve.
func (c *Corpus) SelectK(kMin, kMax int, seed int64) (int, []KScore) {
	return cluster.BestK(c.model, kMin, kMax, 3, rand.New(rand.NewSource(seed+1)))
}
