#!/usr/bin/env sh
# Full local verification: vet, build, race-enabled tests (the parallel
# clustering kernels run under the race detector with Workers > 1), and
# a single-iteration smoke of the engine benchmarks so the packed/map
# comparison cannot silently rot.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
# Focused race pass over the live-pipeline packages: the streaming
# ingester, the clustering kernels it drives (including the sharded
# approx/LSH assignment and mini-batch paths), the incremental model
# with its parallel build, the replication layer (server, tailer and the
# chaos suite), the search index (concurrent readers over the frozen
# snapshot while the builder appends), and the observability layer
# (histograms under concurrent Observe, the quality monitor, the load
# driver).
go test -race ./internal/stream ./internal/repl ./internal/cluster ./internal/cafc \
    ./internal/search ./internal/obs ./internal/obs/quality ./internal/loadgen ./cmd/directoryd
# Ingest fan-out under the race detector, run twice: the sharded
# parse/embed pipeline at worker counts 1, 2, 3 and 8
# (TestParallelIngestBitIdenticalEpochs sweeps them internally) plus
# the WAL group-commit buffering, crash-recovery and close paths.
go test -race -count 2 -run 'TestParallelIngest|TestGroupCommit' ./internal/stream
go test -run xxx -bench 'BenchmarkCosine|BenchmarkKMeansEngines|BenchmarkKMeans454' \
    -benchtime=1x ./internal/vector ./internal/cluster .
# Allocation-regression smoke: the serve-path benches run once so a
# change that reintroduces per-call allocations fails alongside the
# zero-alloc tests instead of only showing up in BENCH_scale.json.
go test -run xxx -bench 'BenchmarkClassify|BenchmarkKMeansScale' \
    -benchtime=1x ./internal/cafc

# Fuzz smoke: a few seconds on each parser-facing target so the corpora
# stay exercised and a crashing seed fails CI fast.
go test -run xxx -fuzz FuzzTokenize -fuzztime 3s ./internal/htmlx
go test -run xxx -fuzz FuzzParseForms -fuzztime 3s ./internal/form

# Metrics smoke: serve a small corpus with -metrics on a random port and
# assert the Prometheus exposition is populated with domain telemetry.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"
      [ -n "${dpid:-}" ] && kill "$dpid" 2>/dev/null
      [ -n "${fpid:-}" ] && kill "$fpid" 2>/dev/null
      true' EXIT
go build -o "$tmp/webgen" ./cmd/webgen
go build -o "$tmp/directoryd" ./cmd/directoryd
go build -o "$tmp/benchall" ./cmd/benchall
go build -o "$tmp/loadgen" ./cmd/loadgen

# Scale-bench smoke: a 5k-page forms-only corpus through every clustering
# kernel. scaleBench itself fails the run unless each pruned kernel
# reproduces the exhaustive assignments byte for byte with strictly fewer
# distance computations, the parallel model build is bit-identical to the
# serial reference, and every approx kernel holds the >= 0.99
# self-consistency recall contract (enforced at n >= 5000, which is why
# the smoke runs there) — so this guards the pruning, LSH-candidate and
# parallel-build invariants end to end.
"$tmp/benchall" -exp scale -sizes 5000 -json "$tmp/BENCH_scale_smoke.json" >/dev/null
[ -s "$tmp/BENCH_scale_smoke.json" ] || { echo "check.sh: scale smoke wrote no report"; exit 1; }

# Ingest-throughput smoke: the 454-page sweep replays the baseline
# run's WAL through fresh pipelines at worker counts 1, 2 and 4 and
# fails unless each replay's model, search index and WAL bytes are
# byte-identical to the serial reference (ingestSweep's verify stage) —
# so the parallel pipeline's determinism contract is guarded end to
# end, not just at the unit level.
"$tmp/benchall" -exp ingest -sizes 454 -json "$tmp/BENCH_ingest_smoke.json" >/dev/null
[ -s "$tmp/BENCH_ingest_smoke.json" ] || { echo "check.sh: ingest smoke wrote no report"; exit 1; }
"$tmp/webgen" -n 60 -seed 7 -o "$tmp/corpus.json.gz" -stats=false
"$tmp/directoryd" -in "$tmp/corpus.json.gz" -addr 127.0.0.1:0 -k 4 -metrics \
    >"$tmp/directoryd.log" 2>&1 &
dpid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|.*on http://\([^/]*\)/.*|\1|p' "$tmp/directoryd.log" | head -1)
    [ -n "$addr" ] && break
    sleep 0.2
done
[ -n "$addr" ] || { echo "check.sh: directoryd did not start"; cat "$tmp/directoryd.log"; exit 1; }
curl -fsS "http://$addr/metrics" >"$tmp/metrics.txt"
[ -s "$tmp/metrics.txt" ] || { echo "check.sh: empty /metrics exposition"; exit 1; }
for m in kmeans_moved_fraction crawler_fetch_seconds backlink_miss_total retry_total breaker_state; do
    grep -q "^$m" "$tmp/metrics.txt" || { echo "check.sh: /metrics missing $m"; exit 1; }
done
curl -fsS "http://$addr/debug/pprof/" >/dev/null
kill "$dpid"
dpid=""

# Degradation smoke: kill the backlink service mid-startup (after 10
# queries) and assert directoryd still comes up serving clusters, with
# the degradation visible in /metrics.
"$tmp/directoryd" -in "$tmp/corpus.json.gz" -addr 127.0.0.1:0 -k 4 -metrics \
    -backlink-outage-after 10 >"$tmp/directoryd2.log" 2>&1 &
dpid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|.*on http://\([^/]*\)/.*|\1|p' "$tmp/directoryd2.log" | head -1)
    [ -n "$addr" ] && break
    sleep 0.2
done
[ -n "$addr" ] || { echo "check.sh: directoryd did not survive backlink outage"; cat "$tmp/directoryd2.log"; exit 1; }
curl -fsS "http://$addr/" >/dev/null || { echo "check.sh: directoryd root not serving after outage"; exit 1; }
curl -fsS "http://$addr/metrics" >"$tmp/metrics2.txt"
grep -q '^degraded_runs_total' "$tmp/metrics2.txt" || {
    echo "check.sh: /metrics missing degraded_runs_total after backlink outage"; exit 1; }
grep -q 'clustering degraded' "$tmp/directoryd2.log" || {
    echo "check.sh: directoryd did not log degraded clustering"; exit 1; }
kill "$dpid"
dpid=""

# Live-ingest smoke: start directoryd in streaming mode with a durable
# state dir, assert readiness, POST a page through /ingest and watch the
# model epoch advance in /status.
"$tmp/directoryd" -live -in "$tmp/corpus.json.gz" -data "$tmp/state" \
    -addr 127.0.0.1:0 -k 4 -flush 50ms >"$tmp/directoryd3.log" 2>&1 &
dpid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|.*on http://\([^/]*\)/.*|\1|p' "$tmp/directoryd3.log" | head -1)
    [ -n "$addr" ] && break
    sleep 0.2
done
[ -n "$addr" ] || { echo "check.sh: live directoryd did not start"; cat "$tmp/directoryd3.log"; exit 1; }
curl -fsS "http://$addr/healthz" >/dev/null || { echo "check.sh: live /healthz not ready with a genesis corpus"; exit 1; }
epoch0=$(curl -fsS "http://$addr/status" | sed -n 's/.*"Epoch":\([0-9]*\).*/\1/p')
[ -n "$epoch0" ] || { echo "check.sh: /status returned no epoch"; exit 1; }
curl -fsS -X POST "http://$addr/ingest" -H 'Content-Type: application/json' \
    -d '{"url":"http://smoke.example/","html":"<form action=\"/q\"><input type=\"text\" name=\"title\"/></form>"}' >/dev/null \
    || { echo "check.sh: POST /ingest failed"; exit 1; }
epoch1="$epoch0"
for _ in $(seq 1 50); do
    epoch1=$(curl -fsS "http://$addr/status" | sed -n 's/.*"Epoch":\([0-9]*\).*/\1/p')
    [ "$epoch1" -gt "$epoch0" ] && break
    sleep 0.2
done
[ "$epoch1" -gt "$epoch0" ] || { echo "check.sh: epoch did not advance after /ingest ($epoch0 -> $epoch1)"; cat "$tmp/directoryd3.log"; exit 1; }
curl -fsS "http://$addr/" >/dev/null || { echo "check.sh: live directory UI not serving"; exit 1; }
kill "$dpid"
dpid=""

# Load smoke: replay a short seeded mixed workload against a live
# directoryd with metrics on, then assert the Prometheus exposition
# still parses as text format 0.0.4 line by line, the SLO and quality
# series exist, and /debug/quality serves the snapshot ring.
"$tmp/directoryd" -live -in "$tmp/corpus.json.gz" -addr 127.0.0.1:0 -k 4 \
    -metrics -reqlog -flush 20ms >"$tmp/directoryd4.log" 2>&1 &
dpid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|.*on http://\([^/]*\)/.*|\1|p' "$tmp/directoryd4.log" | head -1)
    [ -n "$addr" ] && break
    sleep 0.2
done
[ -n "$addr" ] || { echo "check.sh: live directoryd (-metrics) did not start"; cat "$tmp/directoryd4.log"; exit 1; }
"$tmp/loadgen" -target "http://$addr" -n 60 -seed 7 -qps 200 -ops 300 -duration 2s \
    -json "$tmp/load_report.json" >/dev/null
[ -s "$tmp/load_report.json" ] || { echo "check.sh: loadgen wrote no report"; exit 1; }
for ep in classify ingest browse; do
    grep -q "\"$ep\"" "$tmp/load_report.json" || { echo "check.sh: load report missing $ep stats"; exit 1; }
done
# Search smoke: ranked retrieval with facet labels on the live server,
# X-Cache MISS on first sight and HIT (byte-identical body) on repeat
# within the epoch, with the search_* series visible in /metrics.
curl -fsS -D "$tmp/search_h1.txt" "http://$addr/search?q=hotel&k=10" >"$tmp/search1.json"
grep -qi '^X-Cache: MISS' "$tmp/search_h1.txt" || {
    echo "check.sh: first /search not a cache MISS"; cat "$tmp/search_h1.txt"; exit 1; }
grep -q '"url"' "$tmp/search1.json" || {
    echo "check.sh: /search returned no ranked hits"; cat "$tmp/search1.json"; exit 1; }
grep -q '"label"' "$tmp/search1.json" || {
    echo "check.sh: /search facets carry no labels"; cat "$tmp/search1.json"; exit 1; }
curl -fsS -D "$tmp/search_h2.txt" "http://$addr/search?q=hotel&k=10" >"$tmp/search2.json"
grep -qi '^X-Cache: HIT' "$tmp/search_h2.txt" || {
    echo "check.sh: repeat /search within the epoch did not hit the cache"; cat "$tmp/search_h2.txt"; exit 1; }
cmp -s "$tmp/search1.json" "$tmp/search2.json" || {
    echo "check.sh: cached /search body differs from the cold body"; exit 1; }
curl -fsS "http://$addr/metrics" >"$tmp/metrics4.txt"
# Text-format 0.0.4: every non-comment, non-blank line is
# "name[{labels}] value" with a parseable float value.
awk '
/^#/ || /^$/ { next }
{
    if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9]*\.)?[0-9]+([eE][-+]?[0-9]+)?$/ &&
        $0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [+-]Inf$/ &&
        $0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? NaN$/) {
        print "check.sh: unparseable exposition line: " $0; bad = 1
    }
}
END { exit bad }' "$tmp/metrics4.txt" || exit 1
for m in slo_error_budget_burn slo_requests_total quality_silhouette stream_queue_capacity stream_queue_saturation \
         search_requests_total search_cache_hits_total search_index_docs; do
    grep -q "^$m" "$tmp/metrics4.txt" || { echo "check.sh: /metrics missing $m after load"; exit 1; }
done
curl -fsS "http://$addr/debug/quality" >"$tmp/quality.json"
grep -q '"epoch"' "$tmp/quality.json" || { echo "check.sh: /debug/quality empty or malformed"; cat "$tmp/quality.json"; exit 1; }
grep -q '"span_id"' "$tmp/directoryd4.log" || { echo "check.sh: -reqlog produced no structured request logs"; exit 1; }
kill "$dpid"
dpid=""

# Replication smoke: a cold leader (every document WAL-logged, so a
# follower's replay is the leader's exact history), a follower
# bootstrapped and tailing over HTTP, writes ingested via the leader —
# the follower must converge to the leader's epoch, answer /classify
# byte-identically, and report replication lag 0 in /metrics.
"$tmp/directoryd" -live -role leader -in "" -data "$tmp/lead" \
    -addr 127.0.0.1:0 -k 4 -seed 7 -flush 20ms -metrics >"$tmp/leader.log" 2>&1 &
dpid=$!
laddr=""
for _ in $(seq 1 50); do
    laddr=$(sed -n 's|.*on http://\([^/]*\)/.*|\1|p' "$tmp/leader.log" | head -1)
    [ -n "$laddr" ] && break
    sleep 0.2
done
[ -n "$laddr" ] || { echo "check.sh: leader did not start"; cat "$tmp/leader.log"; exit 1; }
for name in title author isbn; do
    curl -fsS -X POST "http://$laddr/ingest" -H 'Content-Type: application/json' \
        -d '{"url":"http://repl.example/'"$name"'","html":"<form action=\"/q\"><input type=\"text\" name=\"'"$name"'\"/></form>"}' >/dev/null \
        || { echo "check.sh: leader ingest failed"; exit 1; }
done
lepoch=""
for _ in $(seq 1 50); do
    lepoch=$(curl -fsS "http://$laddr/status" | sed -n 's/.*"Epoch":\([0-9]*\).*/\1/p')
    [ -n "$lepoch" ] && [ "$lepoch" -ge 1 ] && break
    sleep 0.2
done
[ -n "$lepoch" ] && [ "$lepoch" -ge 1 ] || { echo "check.sh: leader published no epoch"; cat "$tmp/leader.log"; exit 1; }

"$tmp/directoryd" -role follower -leader "http://$laddr" -data "$tmp/foll" \
    -addr 127.0.0.1:0 -k 4 -seed 7 -repl-poll 50ms -metrics >"$tmp/follower.log" 2>&1 &
fpid=$!
faddr=""
for _ in $(seq 1 50); do
    faddr=$(sed -n 's|.*on http://\([^/]*\)/.*|\1|p' "$tmp/follower.log" | head -1)
    [ -n "$faddr" ] && break
    sleep 0.2
done
[ -n "$faddr" ] || { echo "check.sh: follower did not start"; cat "$tmp/follower.log"; exit 1; }

# The leader keeps writing while the follower tails — replication must
# close the gap, not just replay the bootstrap prefix.
lepoch0="$lepoch"
curl -fsS -X POST "http://$laddr/ingest" -H 'Content-Type: application/json' \
    -d '{"url":"http://repl.example/late","html":"<form action=\"/q\"><input type=\"text\" name=\"year\"/></form>"}' >/dev/null \
    || { echo "check.sh: post-bootstrap leader ingest failed"; exit 1; }
# Wait for the late batch to flush on the leader before checking
# convergence — otherwise the loop below can observe the pre-flush
# epoch on both sides and pass while the gap is still open.
for _ in $(seq 1 50); do
    lepoch=$(curl -fsS "http://$laddr/status" | sed -n 's/.*"Epoch":\([0-9]*\).*/\1/p')
    [ -n "$lepoch" ] && [ "$lepoch" -gt "$lepoch0" ] && break
    sleep 0.2
done
[ -n "$lepoch" ] && [ "$lepoch" -gt "$lepoch0" ] || {
    echo "check.sh: leader never flushed the post-bootstrap ingest (epoch stuck at ${lepoch0:-?})"
    cat "$tmp/leader.log"; exit 1; }
converged=""
for _ in $(seq 1 100); do
    lepoch=$(curl -fsS "http://$laddr/status" | sed -n 's/.*"Epoch":\([0-9]*\).*/\1/p')
    fepoch=$(curl -fsS "http://$faddr/status" | sed -n 's/.*"Epoch":\([0-9]*\).*/\1/p')
    if [ -n "$lepoch" ] && [ -n "$fepoch" ] && [ "$fepoch" -eq "$lepoch" ] && [ "$fepoch" -ge 2 ]; then
        converged=1
        break
    fi
    sleep 0.2
done
[ -n "$converged" ] || {
    echo "check.sh: follower never converged (leader epoch ${lepoch:-?}, follower ${fepoch:-?})"
    cat "$tmp/follower.log"; exit 1; }

classify_doc='{"url":"http://repl.example/probe","html":"<form action=\"/q\"><input type=\"text\" name=\"title\"/></form>"}'
curl -fsS -X POST "http://$laddr/classify" -H 'Content-Type: application/json' -d "$classify_doc" >"$tmp/classify_leader.json"
curl -fsS -X POST "http://$faddr/classify" -H 'Content-Type: application/json' -d "$classify_doc" >"$tmp/classify_follower.json"
cmp -s "$tmp/classify_leader.json" "$tmp/classify_follower.json" || {
    echo "check.sh: follower /classify diverged from leader"
    cat "$tmp/classify_leader.json" "$tmp/classify_follower.json"; exit 1; }
curl -fsS "http://$faddr/healthz" >/dev/null || { echo "check.sh: follower /healthz not ok at lag 0"; exit 1; }
curl -fsS "http://$faddr/metrics" >"$tmp/metrics5.txt"
grep -q '^replication_lag_epochs 0$' "$tmp/metrics5.txt" || {
    echo "check.sh: follower replication lag did not drain to 0"
    grep '^replication' "$tmp/metrics5.txt"; exit 1; }
grep -q '^replication_applied_epoch' "$tmp/metrics5.txt" || {
    echo "check.sh: follower /metrics missing replication_applied_epoch"; exit 1; }
kill "$fpid"
fpid=""
kill "$dpid"
dpid=""

echo "check.sh: all green"
