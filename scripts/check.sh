#!/usr/bin/env sh
# Full local verification: vet, build, race-enabled tests (the parallel
# clustering kernels run under the race detector with Workers > 1), and
# a single-iteration smoke of the engine benchmarks so the packed/map
# comparison cannot silently rot.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
go test -run xxx -bench 'BenchmarkCosine|BenchmarkKMeansEngines|BenchmarkKMeans454' \
    -benchtime=1x ./internal/vector ./internal/cluster .

echo "check.sh: all green"
