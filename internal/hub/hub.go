// Package hub builds hub clusters from backlink information — the
// pre-clustering evidence CAFC-CH (Section 3) feeds to SelectHubClusters.
// A hub cluster is the set of form pages co-cited by one hub page; the
// package performs the paper's backward crawl (one step back from each
// form page, plus the site root fallback), eliminates intra-site hubs,
// deduplicates identical co-citation sets, and filters by minimum
// cardinality.
package hub

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"time"

	"cafc/internal/obs"
	"cafc/internal/retry"
	"cafc/internal/webgraph"
)

// Cluster is a set of form pages (by index into the input URL list)
// co-cited by one hub.
type Cluster struct {
	// Hub is the URL of the citing page ("" after merging identical
	// member sets from multiple hubs; Hubs lists all of them).
	Hub string
	// Hubs lists every hub URL that induced exactly this member set.
	Hubs []string
	// Members are form-page indices, sorted ascending.
	Members []int
}

// Cardinality returns the number of co-cited form pages.
func (c *Cluster) Cardinality() int { return len(c.Members) }

// BacklinkFunc answers a link: query; it is the only capability Build
// needs from the outside world.
type BacklinkFunc func(url string) ([]string, error)

// Stats reports what Build saw, mirroring the paper's Section 3.1
// accounting (3,450 distinct hub clusters; >15% of forms with no
// backlinks; intra-site hubs dropped).
type Stats struct {
	// FormPages is the number of input pages.
	FormPages int
	// NoBacklinks counts form pages for which the service returned
	// nothing, even via the root-page fallback.
	NoBacklinks int
	// NoDirectBacklinks counts form pages whose own URL had no usable
	// (non-intra-site) backlinks before the root fallback — the paper's
	// ">15% of forms had no backlinks from AltaVista" figure.
	NoDirectBacklinks int
	// QueryErrors counts failed link: queries (service outages).
	QueryErrors int
	// IntraSiteDropped counts hub->page citations discarded because the
	// hub lives on the page's own site.
	IntraSiteDropped int
	// RawHubs is the number of distinct citing pages seen.
	RawHubs int
	// Clusters is the number of distinct co-citation sets produced.
	Clusters int
	// Degraded reports that the backward crawl could not complete
	// normally and the caller should expect partial hub evidence (the
	// clusters returned are still valid — CAFC-CH falls back to random
	// seeding for the shortfall). DegradedReason is one of
	// "backlink_budget_exhausted", "backlink_breaker_open" or
	// "backlink_unavailable".
	Degraded       bool
	DegradedReason string
	// Aborted counts form pages never queried because the backward
	// crawl stopped early (budget exhausted or breaker open).
	Aborted int
}

// Degradation reasons reported in Stats.DegradedReason and as the
// reason label of degraded_runs_total.
const (
	ReasonBudgetExhausted = "backlink_budget_exhausted"
	ReasonBreakerOpen     = "backlink_breaker_open"
	ReasonUnavailable     = "backlink_unavailable"
)

// RecordDegraded records one degraded run with its reason on the
// registry (degraded_runs_total{reason=...}). Exposed so the cafc
// layer and the exposition golden test share the exact production
// emission. Nil-registry safe.
func RecordDegraded(reg *obs.Registry, reason string) {
	reg.Counter("degraded_runs_total", "reason", reason).Inc()
}

// BuildOptions disable individual design choices of the hub-cluster
// construction so their contribution can be measured (ablations).
type BuildOptions struct {
	// KeepIntraSite retains citations from the page's own site instead of
	// dropping them.
	KeepIntraSite bool
	// NoRootFallback skips the site-root backlink query.
	NoRootFallback bool
	// Metrics, when non-nil, receives the backward-crawl telemetry: the
	// query budget actually spent (backlink_queries_total), the paper's
	// coverage-gap figures (backlink_miss_total for pages with no
	// backlinks at all, backlink_direct_miss_total for the ">15% with no
	// direct backlinks" accounting), service failures, and intra-site
	// hub eliminations. Everything in Stats is also mirrored here so
	// long-running services expose it without plumbing Stats around.
	Metrics *obs.Registry
}

// Build performs the backward crawl and returns the distinct hub clusters
// over the given form pages. roots maps each form-page URL to its site
// root; backlinks to the root are attributed to the form page (the
// paper's fallback for incomplete backlink data). Intra-site hubs are
// dropped. Clusters of cardinality 1 are kept here — Filter prunes by
// cardinality separately, because the minimum-cardinality sweep is an
// experiment knob (Figure 3).
func Build(urls []string, roots map[string]string, backlinks BacklinkFunc) ([]Cluster, Stats) {
	return BuildWith(urls, roots, backlinks, BuildOptions{})
}

// BuildWith is Build with explicit design-choice options.
func BuildWith(urls []string, roots map[string]string, backlinks BacklinkFunc, opts BuildOptions) ([]Cluster, Stats) {
	var t0 time.Time
	reg := opts.Metrics
	if reg != nil {
		t0 = time.Now()
	}
	queries := reg.Counter("backlink_queries_total")
	stats := Stats{FormPages: len(urls)}
	// hub URL -> set of form-page indices it cites.
	cites := make(map[string]map[int]bool)
	// A budget-exhausted or breaker-open answer means every further
	// query would fail the same way: stop the backward crawl and build
	// from the hubs gathered so far (graceful degradation) instead of
	// burning the loop on a dead service.
	abort := false
	for i, u := range urls {
		if abort {
			stats.Aborted++
			continue
		}
		got := false
		gotDirect := false
		targets := []string{u}
		if r := roots[u]; !opts.NoRootFallback && r != "" && r != u {
			targets = append(targets, r)
		}
		for ti, target := range targets {
			queries.Inc()
			links, err := backlinks(target)
			if err != nil {
				stats.QueryErrors++
				switch {
				case errors.Is(err, webgraph.ErrBudgetExhausted):
					stats.DegradedReason = ReasonBudgetExhausted
					abort = true
				case errors.Is(err, retry.ErrOpen):
					stats.DegradedReason = ReasonBreakerOpen
					abort = true
				}
				if abort {
					break
				}
				continue
			}
			for _, h := range links {
				if webgraph.SameSite(h, u) && !opts.KeepIntraSite {
					stats.IntraSiteDropped++
					continue
				}
				if cites[h] == nil {
					cites[h] = make(map[int]bool)
				}
				cites[h][i] = true
				got = true
				if ti == 0 {
					gotDirect = true
				}
			}
		}
		if !got {
			stats.NoBacklinks++
		}
		if !gotDirect {
			stats.NoDirectBacklinks++
		}
	}
	stats.RawHubs = len(cites)
	// Deduplicate identical member sets ("distinct sets of pages that
	// are co-cited by a hub").
	bySet := make(map[string]*Cluster)
	for h, set := range cites {
		members := make([]int, 0, len(set))
		for i := range set {
			members = append(members, i)
		}
		sort.Ints(members)
		key := setKey(members)
		if c, ok := bySet[key]; ok {
			c.Hubs = append(c.Hubs, h)
		} else {
			bySet[key] = &Cluster{Hub: h, Hubs: []string{h}, Members: members}
		}
	}
	out := make([]Cluster, 0, len(bySet))
	for _, c := range bySet {
		sort.Strings(c.Hubs)
		c.Hub = c.Hubs[0]
		out = append(out, *c)
	}
	// Deterministic order: by first member, then cardinality, then hub.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Members[0] != b.Members[0] {
			return a.Members[0] < b.Members[0]
		}
		if len(a.Members) != len(b.Members) {
			return len(a.Members) < len(b.Members)
		}
		return a.Hub < b.Hub
	})
	stats.Clusters = len(out)
	// A run whose every query failed never saw a hub: total outage.
	if stats.DegradedReason == "" && stats.QueryErrors > 0 && stats.RawHubs == 0 {
		stats.DegradedReason = ReasonUnavailable
	}
	stats.Degraded = stats.DegradedReason != ""
	if reg != nil {
		if stats.Degraded {
			RecordDegraded(reg, stats.DegradedReason)
		}
		reg.Counter("hub_aborted_pages_total").Add(int64(stats.Aborted))
		reg.Histogram("hub_build_seconds", obs.DurationBuckets).ObserveSince(t0)
		reg.Counter("backlink_miss_total").Add(int64(stats.NoBacklinks))
		reg.Counter("backlink_direct_miss_total").Add(int64(stats.NoDirectBacklinks))
		reg.Counter("backlink_query_errors_total").Add(int64(stats.QueryErrors))
		reg.Counter("hub_intrasite_dropped_total").Add(int64(stats.IntraSiteDropped))
		reg.Gauge("hub_raw_hubs").Set(float64(stats.RawHubs))
		reg.Gauge("hub_clusters").Set(float64(stats.Clusters))
	}
	return out, stats
}

// Filter returns the clusters with cardinality >= minCard.
func Filter(clusters []Cluster, minCard int) []Cluster {
	out := make([]Cluster, 0, len(clusters))
	for _, c := range clusters {
		if c.Cardinality() >= minCard {
			out = append(out, c)
		}
	}
	return out
}

// MemberSets extracts just the member index lists, the shape
// cluster.FarthestFirst and cluster.KMeans consume as seeds.
func MemberSets(clusters []Cluster) [][]int {
	out := make([][]int, len(clusters))
	for i, c := range clusters {
		out[i] = c.Members
	}
	return out
}

// setKey canonicalizes a sorted member list.
func setKey(members []int) string {
	var b strings.Builder
	for _, m := range members {
		b.WriteString(strconv.Itoa(m))
		b.WriteByte(',')
	}
	return b.String()
}
