package hub

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

// fakeBacklinks builds a BacklinkFunc from a static map.
func fakeBacklinks(m map[string][]string) BacklinkFunc {
	return func(u string) ([]string, error) {
		return m[u], nil
	}
}

func TestBuildGroupsByHub(t *testing.T) {
	urls := []string{
		"http://a.example/f", // 0
		"http://b.example/f", // 1
		"http://c.example/f", // 2
	}
	bl := fakeBacklinks(map[string][]string{
		"http://a.example/f": {"http://hub1.example/"},
		"http://b.example/f": {"http://hub1.example/", "http://hub2.example/"},
		"http://c.example/f": {"http://hub2.example/"},
	})
	clusters, stats := Build(urls, nil, bl)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters: %+v", len(clusters), clusters)
	}
	if stats.RawHubs != 2 || stats.Clusters != 2 || stats.NoBacklinks != 0 {
		t.Errorf("stats = %+v", stats)
	}
	want := map[string][]int{
		"http://hub1.example/": {0, 1},
		"http://hub2.example/": {1, 2},
	}
	for _, c := range clusters {
		w := want[c.Hub]
		if len(w) != len(c.Members) {
			t.Errorf("%s members = %v, want %v", c.Hub, c.Members, w)
			continue
		}
		for i := range w {
			if c.Members[i] != w[i] {
				t.Errorf("%s members = %v, want %v", c.Hub, c.Members, w)
			}
		}
	}
}

func TestBuildDropsIntraSiteHubs(t *testing.T) {
	urls := []string{"http://a.example/f"}
	bl := fakeBacklinks(map[string][]string{
		"http://a.example/f": {"http://a.example/", "http://a.example/links.html"},
	})
	clusters, stats := Build(urls, nil, bl)
	if len(clusters) != 0 {
		t.Errorf("intra-site hubs survived: %+v", clusters)
	}
	if stats.IntraSiteDropped != 2 {
		t.Errorf("IntraSiteDropped = %d", stats.IntraSiteDropped)
	}
	if stats.NoBacklinks != 1 {
		t.Errorf("NoBacklinks = %d (intra-site only means no usable backlinks)", stats.NoBacklinks)
	}
}

func TestBuildUsesRootFallback(t *testing.T) {
	urls := []string{"http://a.example/f"}
	roots := map[string]string{"http://a.example/f": "http://a.example/"}
	bl := fakeBacklinks(map[string][]string{
		// No direct backlinks to the form page, but the root is cited.
		"http://a.example/": {"http://hub.example/"},
	})
	clusters, stats := Build(urls, roots, bl)
	if len(clusters) != 1 || clusters[0].Members[0] != 0 {
		t.Fatalf("root fallback failed: %+v", clusters)
	}
	if stats.NoBacklinks != 0 {
		t.Errorf("NoBacklinks = %d", stats.NoBacklinks)
	}
}

func TestBuildMergesIdenticalSets(t *testing.T) {
	urls := []string{"http://a.example/f", "http://b.example/f"}
	bl := fakeBacklinks(map[string][]string{
		"http://a.example/f": {"http://hub1.example/", "http://hub2.example/"},
		"http://b.example/f": {"http://hub1.example/", "http://hub2.example/"},
	})
	clusters, stats := Build(urls, nil, bl)
	if len(clusters) != 1 {
		t.Fatalf("identical co-citation sets not merged: %+v", clusters)
	}
	if len(clusters[0].Hubs) != 2 {
		t.Errorf("Hubs = %v", clusters[0].Hubs)
	}
	if stats.RawHubs != 2 || stats.Clusters != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestBuildCountsQueryErrors(t *testing.T) {
	urls := []string{"http://a.example/f"}
	bl := func(u string) ([]string, error) { return nil, errors.New("down") }
	clusters, stats := Build(urls, nil, bl)
	if len(clusters) != 0 || stats.QueryErrors != 1 || stats.NoBacklinks != 1 {
		t.Errorf("clusters=%v stats=%+v", clusters, stats)
	}
}

func TestFilterByCardinality(t *testing.T) {
	clusters := []Cluster{
		{Members: []int{0}},
		{Members: []int{0, 1, 2}},
		{Members: []int{3, 4, 5, 6, 7, 8, 9, 10}},
	}
	if got := Filter(clusters, 2); len(got) != 2 {
		t.Errorf("Filter(2) = %d clusters", len(got))
	}
	if got := Filter(clusters, 8); len(got) != 1 {
		t.Errorf("Filter(8) = %d clusters", len(got))
	}
	if got := Filter(clusters, 100); len(got) != 0 {
		t.Errorf("Filter(100) = %d clusters", len(got))
	}
}

func TestMemberSets(t *testing.T) {
	clusters := []Cluster{{Members: []int{1, 2}}, {Members: []int{3}}}
	sets := MemberSets(clusters)
	if len(sets) != 2 || len(sets[0]) != 2 || sets[1][0] != 3 {
		t.Errorf("MemberSets = %v", sets)
	}
}

func TestBuildOnGeneratedCorpus(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 11, FormPages: 160})
	g := webgraph.FromCorpus(c)
	svc := webgraph.NewBacklinkService(g, 100, 0, 1)
	clusters, stats := Build(c.FormPages, c.RootOf, svc.Backlinks)
	if stats.Clusters == 0 {
		t.Fatal("no hub clusters from generated corpus")
	}
	if stats.IntraSiteDropped == 0 {
		t.Error("no intra-site citations dropped (root pages link their forms)")
	}
	// Orphan fraction should leave some pages without backlinks.
	if stats.NoBacklinks == 0 {
		t.Error("expected some form pages without backlinks")
	}
	if float64(stats.NoBacklinks) > 0.4*float64(len(c.FormPages)) {
		t.Errorf("too many orphans: %d of %d", stats.NoBacklinks, len(c.FormPages))
	}
	// Usable (cardinality >= 2) clusters must be mostly homogeneous.
	usable := Filter(clusters, 2)
	if len(usable) == 0 {
		t.Fatal("no usable clusters")
	}
	homog := 0
	for _, cl := range usable {
		d := c.Labels[c.FormPages[cl.Members[0]]]
		pure := true
		for _, m := range cl.Members[1:] {
			if c.Labels[c.FormPages[m]] != d {
				pure = false
				break
			}
		}
		if pure {
			homog++
		}
	}
	frac := float64(homog) / float64(len(usable))
	if frac < 0.4 {
		t.Errorf("homogeneous usable-cluster fraction = %.2f, too low", frac)
	}
}

func BenchmarkBuild(b *testing.B) {
	c := webgen.Generate(webgen.Config{Seed: 1, FormPages: 454})
	g := webgraph.FromCorpus(c)
	svc := webgraph.NewBacklinkService(g, 100, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(c.FormPages, c.RootOf, svc.Backlinks)
	}
}

// TestBuildInvariantsProperty checks structural invariants over random
// backlink topologies: members sorted, unique, in range; clusters
// deduplicated; stats consistent.
func TestBuildInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		urls := make([]string, n)
		for i := range urls {
			urls[i] = fmt.Sprintf("http://site%d.example/f", i)
		}
		nHubs := 1 + rng.Intn(8)
		links := make(map[string][]string)
		for h := 0; h < nHubs; h++ {
			hubURL := fmt.Sprintf("http://hub%d.example/", h)
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.3 {
					links[urls[i]] = append(links[urls[i]], hubURL)
				}
			}
		}
		clusters, stats := Build(urls, nil, fakeBacklinks(links))
		if stats.Clusters != len(clusters) {
			return false
		}
		seen := map[string]bool{}
		for _, c := range clusters {
			key := setKey(c.Members)
			if seen[key] {
				return false // dedup violated
			}
			seen[key] = true
			for i, m := range c.Members {
				if m < 0 || m >= n {
					return false
				}
				if i > 0 && c.Members[i-1] >= m {
					return false // not strictly sorted
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
