package hub

import (
	"errors"
	"fmt"
	"testing"

	"cafc/internal/obs"
	"cafc/internal/retry"
	"cafc/internal/webgraph"
)

// TestBuildDegradesOnBudgetExhaustion: once the backlink budget runs
// out mid-crawl, Build stops querying, keeps the hubs it has, and
// reports the degradation instead of failing.
func TestBuildDegradesOnBudgetExhaustion(t *testing.T) {
	urls := make([]string, 6)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://s%d.example/f", i)
	}
	var queries int
	bl := func(u string) ([]string, error) {
		queries++
		if queries > 3 {
			return nil, webgraph.ErrBudgetExhausted
		}
		return []string{"http://hub.example/"}, nil
	}
	reg := obs.NewRegistry()
	clusters, stats := BuildWith(urls, nil, bl, BuildOptions{Metrics: reg})
	if !stats.Degraded || stats.DegradedReason != ReasonBudgetExhausted {
		t.Fatalf("stats = %+v, want degraded with %s", stats, ReasonBudgetExhausted)
	}
	if queries != 4 {
		t.Errorf("issued %d queries, want 4 (3 ok + the exhausted one)", queries)
	}
	if stats.Aborted != 2 {
		t.Errorf("Aborted = %d, want 2 (pages 4 and 5 never queried)", stats.Aborted)
	}
	// The partial hub evidence survives: the first three pages share a
	// hub cluster.
	if len(clusters) != 1 || len(clusters[0].Members) != 3 {
		t.Errorf("clusters = %+v, want one cluster of the 3 queried pages", clusters)
	}
	if v := reg.Counter("degraded_runs_total", "reason", ReasonBudgetExhausted).Value(); v != 1 {
		t.Errorf("degraded_runs_total = %d, want 1", v)
	}
	if v := reg.Counter("hub_aborted_pages_total").Value(); v != 2 {
		t.Errorf("hub_aborted_pages_total = %d, want 2", v)
	}
}

// TestBuildDegradesOnOpenBreaker mirrors the budget case for a tripped
// circuit breaker.
func TestBuildDegradesOnOpenBreaker(t *testing.T) {
	urls := []string{"http://a.example/f", "http://b.example/f", "http://c.example/f"}
	var queries int
	bl := func(u string) ([]string, error) {
		queries++
		if queries >= 2 {
			return nil, fmt.Errorf("wrapped: %w", retry.ErrOpen)
		}
		return []string{"http://hub.example/"}, nil
	}
	_, stats := Build(urls, nil, bl)
	if !stats.Degraded || stats.DegradedReason != ReasonBreakerOpen {
		t.Fatalf("stats = %+v, want degraded with %s", stats, ReasonBreakerOpen)
	}
	if stats.Aborted != 1 {
		t.Errorf("Aborted = %d, want 1", stats.Aborted)
	}
}

// TestBuildDegradesOnTotalOutage: a service that errors on every query
// yields a degraded run with no hubs (ClusterCH then seeds randomly).
func TestBuildDegradesOnTotalOutage(t *testing.T) {
	urls := []string{"http://a.example/f", "http://b.example/f"}
	bl := func(u string) ([]string, error) { return nil, errors.New("503") }
	clusters, stats := Build(urls, nil, bl)
	if len(clusters) != 0 {
		t.Fatalf("clusters = %+v, want none", clusters)
	}
	if !stats.Degraded || stats.DegradedReason != ReasonUnavailable {
		t.Fatalf("stats = %+v, want degraded with %s", stats, ReasonUnavailable)
	}
	if stats.Aborted != 0 {
		t.Errorf("Aborted = %d, want 0 (every page was tried)", stats.Aborted)
	}
}

// TestBuildNotDegradedOnSparseErrors: scattered per-query failures are
// the paper's normal lossy-backlink regime, not a degradation.
func TestBuildNotDegradedOnSparseErrors(t *testing.T) {
	urls := []string{"http://a.example/f", "http://b.example/f"}
	var n int
	bl := func(u string) ([]string, error) {
		n++
		if n == 1 {
			return nil, errors.New("flaky")
		}
		return []string{"http://hub.example/"}, nil
	}
	_, stats := Build(urls, nil, bl)
	if stats.Degraded || stats.DegradedReason != "" {
		t.Fatalf("stats = %+v, want not degraded", stats)
	}
	if stats.QueryErrors != 1 {
		t.Errorf("QueryErrors = %d, want 1", stats.QueryErrors)
	}
}
