// Package probe implements the post-query baseline the paper positions
// itself against (Section 1, citing QProber-style techniques [4, 14]):
// issue probe queries through a form, collect the returned database
// content, and cluster sources by the probe results rather than by the
// form's visible context.
//
// The paper's argument — reproduced by the PostQuery experiment — is that
// probing works for simple keyword interfaces, which are easy to fill
// automatically, but "cannot be easily adapted to (structured)
// multi-attribute interfaces": a naive prober only knows how to type a
// keyword into a text box, so option-only forms yield little or no
// content.
package probe

import (
	"net/url"
	"strings"

	"cafc/internal/cluster"
	"cafc/internal/crawler"
	"cafc/internal/form"
	"cafc/internal/htmlx"
	"cafc/internal/text"
	"cafc/internal/vector"
)

// DefaultProbes is a generic, domain-spanning probe vocabulary: common
// English heads that hit records in most databases (the post-query
// literature uses comparable hand-built probe sets).
var DefaultProbes = []string{
	"the", "new", "first", "city", "california", "january", "john",
	"smith", "red", "full", "2004",
}

// Prober issues probe queries against live forms.
type Prober struct {
	// Fetcher retrieves result pages.
	Fetcher crawler.Fetcher
	// Probes are the keywords to submit; nil means DefaultProbes.
	Probes []string
	// MaxResults caps the probe result text per form (in bytes) so one
	// verbose database cannot dominate the vector. 0 means 16 KiB.
	MaxResults int
}

// probes returns the effective probe keyword set.
func (p *Prober) probes() []string {
	if p.Probes != nil {
		return p.Probes
	}
	return DefaultProbes
}

// Probe submits the prober's keywords through the form found on the form
// page and returns the concatenated visible text of all result pages.
// Only the first typable field is filled — the naive automation the
// post-query literature assumes; forms with no typable field are
// submitted once with empty values and typically return nothing.
func (p *Prober) Probe(formPageURL string, f *form.Form) (string, error) {
	base, err := url.Parse(formPageURL)
	if err != nil {
		return "", err
	}
	action := f.Action
	if action == "" {
		action = base.Path
	}
	actionURL, err := url.Parse(action)
	if err != nil {
		return "", err
	}
	target := base.ResolveReference(actionURL)

	// Find the first typable, visible field.
	var textField string
	for _, fld := range f.Fields {
		if !fld.Hidden() && fld.Typable() && fld.Name != "" {
			textField = fld.Name
			break
		}
	}

	max := p.MaxResults
	if max == 0 {
		max = 16 << 10
	}
	var out strings.Builder
	submit := func(q url.Values) {
		if out.Len() >= max {
			return
		}
		u := *target
		u.RawQuery = q.Encode()
		body, err := p.Fetcher.Fetch(u.String())
		if err != nil {
			return
		}
		txt := htmlx.Parse(body).Text()
		if remaining := max - out.Len(); len(txt) > remaining {
			txt = txt[:remaining]
		}
		out.WriteString(txt)
		out.WriteByte(' ')
	}

	if textField == "" {
		// No typable field: one blind submission with empty values.
		q := url.Values{}
		for _, fld := range f.Fields {
			if fld.Name != "" && !fld.Hidden() {
				q.Set(fld.Name, "")
			}
		}
		submit(q)
		return out.String(), nil
	}
	for _, probe := range p.probes() {
		q := url.Values{}
		q.Set(textField, probe)
		submit(q)
	}
	return out.String(), nil
}

// Source is one probed hidden-web source.
type Source struct {
	URL string
	// Text is the accumulated probe-result content.
	Text string
	// Probed reports whether any content came back.
	Probed bool
}

// ProbeAll probes every form page and returns one Source per input, in
// order. Pages whose form cannot be parsed yield an unprobed Source.
func (p *Prober) ProbeAll(urls []string, forms []*form.Form) []Source {
	out := make([]Source, len(urls))
	for i, u := range urls {
		out[i] = Source{URL: u}
		if i >= len(forms) || forms[i] == nil {
			continue
		}
		txt, err := p.Probe(u, forms[i])
		if err != nil {
			continue
		}
		out[i].Text = txt
		out[i].Probed = strings.TrimSpace(txt) != ""
	}
	return out
}

// Space builds the clustering space from probe results: TF-IDF vectors
// over the stemmed result text. Sources that returned nothing become
// zero vectors (they cannot be placed meaningfully — the paper's point).
func Space(sources []Source) *cluster.VectorSpace {
	df := vector.NewDocFreq()
	termLists := make([][]string, len(sources))
	for i, s := range sources {
		termLists[i] = text.Terms(s.Text)
		df.AddDoc(termLists[i])
	}
	vs := make([]vector.Vector, len(sources))
	for i, terms := range termLists {
		wts := make([]vector.WeightedTerm, len(terms))
		for j, t := range terms {
			wts[j] = vector.WeightedTerm{Term: t, Loc: 1}
		}
		vs[i] = vector.TFIDF(wts, df, true)
	}
	return &cluster.VectorSpace{Vecs: vs}
}
