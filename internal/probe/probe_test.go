package probe

import (
	"math/rand"
	"strings"
	"testing"

	"cafc/internal/cluster"
	"cafc/internal/crawler"
	"cafc/internal/form"
	"cafc/internal/metrics"
	"cafc/internal/webgen"
)

// probeSetup serves a corpus and parses its forms.
func probeSetup(t testing.TB, seed int64, n int) (*webgen.Corpus, *Prober, []*form.Form, func()) {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
	srv, client := crawler.ServeCorpus(c)
	forms := make([]*form.Form, len(c.FormPages))
	for i, u := range c.FormPages {
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatal(err)
		}
		forms[i] = fp.Form
	}
	p := &Prober{Fetcher: &crawler.HTTPFetcher{Client: client}}
	return c, p, forms, srv.Close
}

func TestProbeKeywordFormReturnsRecords(t *testing.T) {
	c, p, forms, done := probeSetup(t, 31, 48)
	defer done()
	// Find a single-attribute (keyword) form.
	idx := -1
	for i, u := range c.FormPages {
		if c.ByURL[u].SingleAttr {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Skip("no single-attribute form in sample")
	}
	txt, err := p.Probe(c.FormPages[idx], forms[idx])
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(txt) == "" {
		t.Fatal("keyword probe returned nothing")
	}
	// The content must come from the site's records.
	domain := c.Labels[c.FormPages[idx]]
	var marker string
	switch domain {
	case webgen.Book:
		marker = "published"
	case webgen.Job:
		marker = "position"
	case webgen.Hotel:
		marker = "per night"
	case webgen.Airfare:
		marker = "Flight from"
	case webgen.Auto:
		marker = "miles"
	case webgen.CarRental:
		marker = "per day"
	case webgen.Movie:
		marker = "directed by"
	default:
		marker = "released"
	}
	if !strings.Contains(txt, marker) {
		t.Errorf("%s probe text lacks record marker %q: %.120s", domain, marker, txt)
	}
}

func TestProbeSelectOnlyFormReturnsLittle(t *testing.T) {
	c, p, forms, done := probeSetup(t, 32, 80)
	defer done()
	// Find a multi-attribute form with no typable field.
	for i := range forms {
		typable := false
		for _, fld := range forms[i].Fields {
			if !fld.Hidden() && fld.Typable() && fld.Name != "" {
				typable = true
			}
		}
		if typable {
			continue
		}
		txt, err := p.Probe(c.FormPages[i], forms[i])
		if err != nil {
			t.Fatal(err)
		}
		// Blind submission: the result must be the no-results page.
		if strings.Contains(txt, "results found") {
			t.Errorf("select-only form unexpectedly returned records: %.120s", txt)
		}
		return
	}
	t.Skip("no select-only form in sample")
}

func TestProbeAllAndSpace(t *testing.T) {
	c, p, forms, done := probeSetup(t, 33, 64)
	defer done()
	sources := p.ProbeAll(c.FormPages, forms)
	if len(sources) != 64 {
		t.Fatalf("got %d sources", len(sources))
	}
	probed := 0
	for _, s := range sources {
		if s.Probed {
			probed++
		}
	}
	if probed == 0 {
		t.Fatal("nothing probed")
	}
	sp := Space(sources)
	if sp.Len() != 64 {
		t.Fatalf("space len = %d", sp.Len())
	}
	// Probed keyword forms of the same domain should cluster together
	// reasonably well; overall quality is below CAFC's because select-only
	// forms are blind — asserted in the experiments package.
	res := cluster.KMeans(sp, 8, nil, cluster.Options{Rand: rand.New(rand.NewSource(1))})
	classes := make([]string, len(c.FormPages))
	for i, u := range c.FormPages {
		classes[i] = string(c.Labels[u])
	}
	l := metrics.Labeling{Assign: res.Assign, Classes: classes}
	if f := metrics.FMeasure(l); f < 0.2 {
		t.Errorf("post-query clustering collapsed entirely: F=%.3f", f)
	}
}

func TestProbeBadURLs(t *testing.T) {
	p := &Prober{Fetcher: &crawler.CorpusFetcher{Corpus: &webgen.Corpus{ByURL: map[string]*webgen.Page{}}}}
	f := &form.Form{Action: "/results", Fields: []form.Field{{Tag: "input", Type: "text", Name: "q"}}}
	if _, err := p.Probe("::bad::", f); err == nil {
		t.Error("bad form page URL accepted")
	}
	f.Action = "::also bad::"
	if _, err := p.Probe("http://ok.example/", f); err == nil {
		t.Error("bad action URL accepted")
	}
	// Unreachable target: Probe succeeds with empty text.
	f.Action = "/results"
	txt, err := p.Probe("http://missing.example/search.html", f)
	if err != nil || strings.TrimSpace(txt) != "" {
		t.Errorf("unreachable target: %q, %v", txt, err)
	}
}

func TestProbeMaxResultsCap(t *testing.T) {
	c, _, forms, done := probeSetup(t, 34, 16)
	defer done()
	_ = forms
	srv, client := crawler.ServeCorpus(c)
	defer srv.Close()
	p := &Prober{Fetcher: &crawler.HTTPFetcher{Client: client}, MaxResults: 100}
	fp, err := form.Parse(c.FormPages[0], c.ByURL[c.FormPages[0]].HTML, form.DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := p.Probe(c.FormPages[0], fp.Form)
	if err != nil {
		t.Fatal(err)
	}
	if len(txt) > 130 { // cap plus a few separator bytes
		t.Errorf("cap ignored: %d bytes", len(txt))
	}
}
