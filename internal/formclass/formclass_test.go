package formclass

import (
	"testing"

	"cafc/internal/form"
	"cafc/internal/htmlx"
	"cafc/internal/webgen"
)

// corpusForms extracts searchable and non-searchable training forms from
// generated data.
func corpusForms(t testing.TB, seed int64, nSearch, nNon int) (searchable, nonSearchable []*form.Form) {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: nSearch})
	for _, u := range c.FormPages {
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatal(err)
		}
		searchable = append(searchable, fp.Form)
	}
	for _, h := range webgen.NonSearchableForms(seed, nNon) {
		forms := form.ExtractForms(htmlx.Parse(h))
		if len(forms) != 1 {
			t.Fatalf("generated page has %d forms", len(forms))
		}
		nonSearchable = append(nonSearchable, forms[0])
	}
	return searchable, nonSearchable
}

func TestNaiveBayesAccuracy(t *testing.T) {
	trS, trN := corpusForms(t, 1, 160, 160)
	teS, teN := corpusForms(t, 2, 80, 80)

	clf := NewClassifier()
	for _, f := range trS {
		clf.Train(f, Searchable)
	}
	for _, f := range trN {
		clf.Train(f, NonSearchable)
	}
	if !clf.Trained() {
		t.Fatal("classifier not trained")
	}
	var forms []*form.Form
	var labels []Label
	for _, f := range teS {
		forms = append(forms, f)
		labels = append(labels, Searchable)
	}
	for _, f := range teN {
		forms = append(forms, f)
		labels = append(labels, NonSearchable)
	}
	acc, sRec, nRec, err := clf.Evaluate(forms, labels)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("accuracy=%.3f searchable-recall=%.3f non-searchable-recall=%.3f", acc, sRec, nRec)
	if acc < 0.95 {
		t.Errorf("accuracy = %.3f, want >= 0.95", acc)
	}
	if sRec < 0.9 || nRec < 0.9 {
		t.Errorf("recalls %.3f/%.3f too low", sRec, nRec)
	}
}

func TestClassifyLogOddsSign(t *testing.T) {
	trS, trN := corpusForms(t, 3, 80, 80)
	clf := NewClassifier()
	for _, f := range trS {
		clf.Train(f, Searchable)
	}
	for _, f := range trN {
		clf.Train(f, NonSearchable)
	}
	label, odds := clf.Classify(trS[0])
	if label != Searchable || odds < 0 {
		t.Errorf("searchable training form: label=%v odds=%v", label, odds)
	}
	label, odds = clf.Classify(trN[0])
	if label != NonSearchable || odds >= 0 {
		t.Errorf("non-searchable training form: label=%v odds=%v", label, odds)
	}
}

func TestUntrainedFallsBackToRules(t *testing.T) {
	clf := NewClassifier()
	searchHTML := `<form>Search books: <input type=text name=q><input type=submit value=Search></form>`
	loginHTML := `<form>Password <input type=password name=p><input type=submit value=Login></form>`
	s := form.ExtractForms(htmlx.Parse(searchHTML))[0]
	n := form.ExtractForms(htmlx.Parse(loginHTML))[0]
	if got, _ := clf.Classify(s); got != Searchable {
		t.Error("untrained fallback misjudged searchable form")
	}
	if got, _ := clf.Classify(n); got != NonSearchable {
		t.Error("untrained fallback misjudged login form")
	}
}

func TestFeaturesStructuralMarkers(t *testing.T) {
	h := `<form method="post">Password <input type="password" name="p">
	<input type="hidden" name="sid" value="x"><input type="submit" value="Go"></form>`
	f := form.ExtractForms(htmlx.Parse(h))[0]
	feats := Features(f)
	want := map[string]bool{"#password=1": true, "#hidden=1": true, "#method=POST": true}
	for _, ft := range feats {
		delete(want, ft)
	}
	if len(want) != 0 {
		t.Errorf("missing structural features %v in %v", want, feats)
	}
}

func TestLabelString(t *testing.T) {
	if Searchable.String() != "searchable" || NonSearchable.String() != "non-searchable" {
		t.Error("label names wrong")
	}
}

func TestEvaluateLengthMismatch(t *testing.T) {
	clf := NewClassifier()
	if _, _, _, err := clf.Evaluate(make([]*form.Form, 1), nil); err == nil {
		t.Error("length mismatch not reported")
	}
}

// TestAgainstRuleBased compares the learned classifier with the
// rule-based one on held-out data: the learned one should be at least as
// accurate.
func TestAgainstRuleBased(t *testing.T) {
	trS, trN := corpusForms(t, 4, 160, 160)
	teS, teN := corpusForms(t, 5, 80, 80)
	clf := NewClassifier()
	for _, f := range trS {
		clf.Train(f, Searchable)
	}
	for _, f := range trN {
		clf.Train(f, NonSearchable)
	}
	nbCorrect, ruleCorrect, total := 0, 0, 0
	judge := func(fs []*form.Form, want Label) {
		for _, f := range fs {
			total++
			if got, _ := clf.Classify(f); got == want {
				nbCorrect++
			}
			ruleSays := NonSearchable
			if form.IsSearchable(f) {
				ruleSays = Searchable
			}
			if ruleSays == want {
				ruleCorrect++
			}
		}
	}
	judge(teS, Searchable)
	judge(teN, NonSearchable)
	nbAcc := float64(nbCorrect) / float64(total)
	ruleAcc := float64(ruleCorrect) / float64(total)
	t.Logf("naive bayes %.3f vs rules %.3f", nbAcc, ruleAcc)
	if nbAcc < ruleAcc-0.02 {
		t.Errorf("learned classifier (%.3f) notably worse than rules (%.3f)", nbAcc, ruleAcc)
	}
}
