// Package formclass implements a learned generic form classifier that
// separates searchable forms (query interfaces to databases) from
// non-searchable ones (login, registration, subscription, quote request).
// The paper delegates this pre-filtering step to the classifier of
// Barbosa & Freire's crawler [3]; this package provides an equivalent
// learned component — a multinomial Naive Bayes over structural and
// textual form features — alongside the rule-based filter in package
// form.
package formclass

import (
	"fmt"
	"math"
	"strconv"

	"cafc/internal/form"
	"cafc/internal/text"
)

// Label is the classification target.
type Label int

const (
	// NonSearchable marks login/registration/subscription/etc. forms.
	NonSearchable Label = iota
	// Searchable marks query interfaces to databases.
	Searchable
)

// String names the label.
func (l Label) String() string {
	if l == Searchable {
		return "searchable"
	}
	return "non-searchable"
}

// Features extracts the feature tokens of a form: structural markers
// (counts of each control type, method, attribute count buckets) and the
// stemmed text evidence (inner text, field names, labels, submit values).
// Structural features are prefixed so they cannot collide with text
// terms.
func Features(f *form.Form) []string {
	var out []string
	add := func(k string) { out = append(out, k) }

	counts := map[string]int{}
	for _, fld := range f.Fields {
		switch {
		case fld.Hidden():
			counts["hidden"]++
		case fld.Tag == "input" && fld.Type == "password":
			counts["password"]++
		case fld.Typable():
			counts["textbox"]++
		case fld.Tag == "select":
			counts["select"]++
		case fld.Selectable():
			counts["checkable"]++
		case fld.Tag == "input" && (fld.Type == "submit" || fld.Type == "image") || fld.Tag == "button":
			counts["submit"]++
		}
	}
	for k, n := range counts {
		add("#" + k + "=" + bucket(n))
	}
	add("#method=" + f.Method)
	add("#attrs=" + bucket(f.AttributeCount()))

	// Text evidence: inner text and per-field metadata. Text is captured
	// at extraction; fall back to the tree for hand-built forms.
	txt := f.Text
	if txt == "" && f.Node != nil {
		txt = f.Node.Text()
	}
	for _, t := range text.Terms(txt) {
		add(t)
	}
	for _, fld := range f.Fields {
		if fld.Hidden() {
			continue
		}
		for _, t := range text.Terms(fld.Name + " " + fld.Value + " " + fld.Label) {
			add(t)
		}
	}
	return out
}

// bucket coarsens a count into 0, 1, 2, 3, many.
func bucket(n int) string {
	if n >= 4 {
		return "many"
	}
	return strconv.Itoa(n)
}

// Classifier is a multinomial Naive Bayes over form features.
type Classifier struct {
	classTotal [2]float64            // feature occurrences per class
	classDocs  [2]float64            // training forms per class
	counts     [2]map[string]float64 // per-class feature counts
	vocab      map[string]bool
}

// NewClassifier returns an untrained classifier.
func NewClassifier() *Classifier {
	return &Classifier{
		counts: [2]map[string]float64{make(map[string]float64), make(map[string]float64)},
		vocab:  make(map[string]bool),
	}
}

// Train adds one labelled form.
func (c *Classifier) Train(f *form.Form, label Label) {
	feats := Features(f)
	c.classDocs[label]++
	for _, ft := range feats {
		c.counts[label][ft]++
		c.classTotal[label]++
		c.vocab[ft] = true
	}
}

// Trained reports whether both classes have examples.
func (c *Classifier) Trained() bool {
	return c.classDocs[0] > 0 && c.classDocs[1] > 0
}

// Classify returns the predicted label and the log-odds
// log P(Searchable|f) - log P(NonSearchable|f). Positive log-odds mean
// searchable. Laplace smoothing keeps unseen features harmless.
func (c *Classifier) Classify(f *form.Form) (Label, float64) {
	if !c.Trained() {
		// Degenerate fallback: defer to the rule-based filter.
		if form.IsSearchable(f) {
			return Searchable, 0
		}
		return NonSearchable, 0
	}
	feats := Features(f)
	v := float64(len(c.vocab))
	totalDocs := c.classDocs[0] + c.classDocs[1]
	var logp [2]float64
	for cls := 0; cls < 2; cls++ {
		logp[cls] = math.Log(c.classDocs[cls] / totalDocs)
		denom := c.classTotal[cls] + v
		for _, ft := range feats {
			logp[cls] += math.Log((c.counts[cls][ft] + 1) / denom)
		}
	}
	odds := logp[Searchable] - logp[NonSearchable]
	if odds >= 0 {
		return Searchable, odds
	}
	return NonSearchable, odds
}

// Evaluate scores the classifier on labelled forms, returning accuracy
// and the per-class recall.
func (c *Classifier) Evaluate(forms []*form.Form, labels []Label) (acc, searchableRecall, nonSearchableRecall float64, err error) {
	if len(forms) != len(labels) {
		return 0, 0, 0, fmt.Errorf("formclass: %d forms vs %d labels", len(forms), len(labels))
	}
	var correct, sTotal, sHit, nTotal, nHit float64
	for i, f := range forms {
		got, _ := c.Classify(f)
		if got == labels[i] {
			correct++
		}
		if labels[i] == Searchable {
			sTotal++
			if got == Searchable {
				sHit++
			}
		} else {
			nTotal++
			if got == NonSearchable {
				nHit++
			}
		}
	}
	n := float64(len(forms))
	if n > 0 {
		acc = correct / n
	}
	if sTotal > 0 {
		searchableRecall = sHit / sTotal
	}
	if nTotal > 0 {
		nonSearchableRecall = nHit / nTotal
	}
	return acc, searchableRecall, nonSearchableRecall, nil
}
