package text

import (
	"fmt"
	"testing"
)

// tokenizerInputs covers the pipeline's edge cases: mixed case, digits,
// single-char noise, stop words, punctuation runs, unicode letters,
// empties, and repeated tokens (the memoized path).
var tokenizerInputs = []string{
	"",
	"a",
	"ab",
	"Search our Book Database for 2006 titles and authors!",
	"login  LOGIN LoGiN",
	"running runs ran runner",
	"ISBN-0-13-110362-8, vol. 2",
	"naïve café über ÉCOLE",
	"the of and to a in",
	"x y z q w",
	"form—dash…ellipsis,comma;semicolon",
	"  leading and trailing   ",
	"churches ponies cats caresses",
}

// TestTokenizerMatchesTerms pins the reusable tokenizer to the
// stateless pipeline element for element — same tokens, same order,
// same stop-word drops, same stems — including on repeat calls where
// every token comes from the memo.
func TestTokenizerMatchesTerms(t *testing.T) {
	tk := NewTokenizer()
	for round := 0; round < 3; round++ {
		for _, in := range tokenizerInputs {
			want := Terms(in)
			got := tk.Terms(in)
			if len(got) != len(want) {
				t.Fatalf("round %d %q: %d terms, want %d (%v vs %v)", round, in, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d %q term %d: %q, want %q", round, in, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTokenizerZeroAllocSteadyState pins the ingest tokenizer's
// steady-state cost: once a document's vocabulary is in the memo and
// the output slice has grown, re-tokenizing allocates nothing.
func TestTokenizerZeroAllocSteadyState(t *testing.T) {
	tk := NewTokenizer()
	in := "Search our Book Database for 2006 titles, authors and publishers — find rare first editions"
	tk.Terms(in) // warm the memo and the output slice
	allocs := testing.AllocsPerRun(100, func() { tk.Terms(in) })
	if allocs != 0 {
		t.Errorf("steady-state Terms allocates %.1f/op, want 0", allocs)
	}
}

// TestTokenizerCacheBound keeps the memo from growing without bound on
// adversarial vocabularies while still tokenizing correctly past the cap.
func TestTokenizerCacheBound(t *testing.T) {
	tk := NewTokenizer()
	for i := 0; i < maxStemCache+500; i++ {
		tk.Terms(fmt.Sprintf("zq%dtok", i))
	}
	if len(tk.stems) > maxStemCache {
		t.Fatalf("stem cache grew to %d, cap is %d", len(tk.stems), maxStemCache)
	}
	in := "zq9999999tok beyond the cap"
	want := Terms(in)
	got := tk.Terms(in)
	if len(got) != len(want) {
		t.Fatalf("past-cap tokenize: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("past-cap term %d: %q, want %q", i, got[i], want[i])
		}
	}
}
