package text

import (
	"reflect"
	"testing"
)

func TestSurfaceTermsMatchesTerms(t *testing.T) {
	s := "Searching for Cheap Flights and Hotel Rentals in 2006"
	terms := Terms(s)
	pairs := SurfaceTerms(s)
	if len(pairs) != len(terms) {
		t.Fatalf("SurfaceTerms len = %d, Terms len = %d", len(pairs), len(terms))
	}
	got := make([]string, len(pairs))
	for i, p := range pairs {
		got[i] = p.Term
		if p.Surface == "" {
			t.Fatalf("empty surface for term %q", p.Term)
		}
		if Stem(p.Surface) != p.Term {
			t.Fatalf("surface %q does not stem to term %q", p.Surface, p.Term)
		}
	}
	if !reflect.DeepEqual(got, terms) {
		t.Fatalf("term sequences diverge: %v vs %v", got, terms)
	}
}

func TestSurfaceTermsKeepsSurfaceForms(t *testing.T) {
	pairs := SurfaceTerms("Rentals")
	if len(pairs) != 1 {
		t.Fatalf("want 1 pair, got %v", pairs)
	}
	if pairs[0].Surface != "rentals" {
		t.Fatalf("surface = %q, want lower-cased original", pairs[0].Surface)
	}
	if pairs[0].Term != Stem("rentals") {
		t.Fatalf("term = %q, want stem of rentals", pairs[0].Term)
	}
}
