package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lower-cased word tokens. A token is a maximal run
// of letters or digits; pure-digit runs are kept (they matter for terms
// like "2006" or ISBN fragments) but single characters are dropped as
// noise. No stemming or stop-wording is applied.
func Tokenize(s string) []string {
	var out []string
	start := -1
	flush := func(end int, src string) {
		if start < 0 {
			return
		}
		tok := src[start:end]
		if len(tok) > 1 {
			out = append(out, strings.ToLower(tok))
		}
		start = -1
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i, s)
	}
	flush(len(s), s)
	return out
}

// Terms runs the full pipeline the paper describes: tokenize, drop stop
// words, and Porter-stem what remains. Pure-numeric tokens are kept
// unstemmed.
func Terms(s string) []string {
	toks := Tokenize(s)
	out := toks[:0]
	for _, tok := range toks {
		if IsStopWord(tok) {
			continue
		}
		out = append(out, Stem(tok))
	}
	return out
}

// IsStopWord reports whether the (lower-case) token is on the stop list.
func IsStopWord(tok string) bool {
	return stopWords[tok]
}

// stopWords is a compact English stop list tuned for web-page text: the
// usual function words plus HTML-era boilerplate that carries no domain
// signal anywhere (the TF-IDF weighting handles the rest).
var stopWords = func() map[string]bool {
	list := []string{
		"a", "about", "above", "after", "again", "against", "all", "am",
		"an", "and", "any", "are", "aren", "as", "at", "be", "because",
		"been", "before", "being", "below", "between", "both", "but", "by",
		"can", "cannot", "could", "did", "do", "does", "doing", "down",
		"during", "each", "few", "for", "from", "further", "had", "has",
		"have", "having", "he", "her", "here", "hers", "herself", "him",
		"himself", "his", "how", "i", "if", "in", "into", "is", "isn", "it",
		"its", "itself", "just", "me", "more", "most", "my", "myself", "no",
		"nor", "not", "now", "of", "off", "on", "once", "only", "or",
		"other", "our", "ours", "ourselves", "out", "over", "own", "same",
		"she", "should", "so", "some", "such", "than", "that", "the",
		"their", "theirs", "them", "themselves", "then", "there", "these",
		"they", "this", "those", "through", "to", "too", "under", "until",
		"up", "very", "was", "we", "were", "what", "when", "where", "which",
		"while", "who", "whom", "why", "will", "with", "would", "you",
		"your", "yours", "yourself", "yourselves",
		// Web boilerplate tokens that appear uniformly across pages.
		"www", "http", "https", "com", "html", "htm", "php", "asp", "cgi",
	}
	m := make(map[string]bool, len(list))
	for _, w := range list {
		m[w] = true
	}
	return m
}()
