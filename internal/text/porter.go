// Package text provides the lexical pipeline used by the form-page model:
// word tokenization, stop-word removal and Porter stemming. The paper stems
// "all the distinct words" extracted from forms and pages (Section 2.1);
// this package implements that preprocessing exactly, with the classic
// Porter (1980) algorithm rather than a truncation heuristic.
package text

// Stem reduces an English word to its Porter stem. The input is expected to
// be lower-case ASCII; words shorter than three characters are returned
// unchanged, per the original algorithm.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := &stemmer{b: []byte(word)}
	w.step1a()
	w.step1b()
	w.step1c()
	w.step2()
	w.step3()
	w.step4()
	w.step5a()
	w.step5b()
	return string(w.b)
}

// stemmer holds the mutable word buffer during stemming.
type stemmer struct {
	b []byte
}

// isConsonant reports whether b[i] is a consonant in Porter's sense:
// vowels are a, e, i, o, u, and y when preceded by a consonant.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m for the prefix b[:end]: the number of VC sequences in
// the form [C](VC){m}[V].
func (s *stemmer) measure(end int) int {
	n := 0
	i := 0
	// Skip initial consonants.
	for i < end && s.isConsonant(i) {
		i++
	}
	for {
		// Skip vowels.
		for i < end && !s.isConsonant(i) {
			i++
		}
		if i >= end {
			return n
		}
		// Skip consonants: one full VC found.
		for i < end && s.isConsonant(i) {
			i++
		}
		n++
	}
}

// hasVowel reports whether b[:end] contains a vowel.
func (s *stemmer) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether the word ends with a doubled
// consonant (e.g. -tt, -ss).
func (s *stemmer) endsDoubleConsonant() bool {
	n := len(s.b)
	if n < 2 {
		return false
	}
	return s.b[n-1] == s.b[n-2] && s.isConsonant(n-1)
}

// endsCVC reports whether the prefix b[:end] ends consonant-vowel-consonant
// where the final consonant is not w, x or y (the *o condition).
func (s *stemmer) endsCVC(end int) bool {
	if end < 3 {
		return false
	}
	i := end - 1
	if !s.isConsonant(i) || s.isConsonant(i-1) || !s.isConsonant(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the word ends with suf.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b)
	m := len(suf)
	if m > n {
		return false
	}
	return string(s.b[n-m:]) == suf
}

// stemLen returns the length of the word with suf removed.
func (s *stemmer) stemLen(suf string) int {
	return len(s.b) - len(suf)
}

// replaceSuffix replaces suf (which must be present) with rep.
func (s *stemmer) replaceSuffix(suf, rep string) {
	s.b = append(s.b[:s.stemLen(suf)], rep...)
}

// replaceIfM replaces suf with rep when measure(stem) > m. Returns whether
// the suffix matched (regardless of replacement).
func (s *stemmer) replaceIfM(suf, rep string, m int) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	if s.measure(s.stemLen(suf)) > m {
		s.replaceSuffix(suf, rep)
	}
	return true
}

// step1a handles plurals: sses→ss, ies→i, ss→ss, s→"".
func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.replaceSuffix("sses", "ss")
	case s.hasSuffix("ies"):
		s.replaceSuffix("ies", "i")
	case s.hasSuffix("ss"):
		// unchanged
	case s.hasSuffix("s"):
		s.replaceSuffix("s", "")
	}
}

// step1b handles -eed, -ed, -ing.
func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(s.stemLen("eed")) > 0 {
			s.replaceSuffix("eed", "ee")
		}
		return
	}
	matched := false
	if s.hasSuffix("ed") && s.hasVowel(s.stemLen("ed")) {
		s.replaceSuffix("ed", "")
		matched = true
	} else if s.hasSuffix("ing") && s.hasVowel(s.stemLen("ing")) {
		s.replaceSuffix("ing", "")
		matched = true
	}
	if !matched {
		return
	}
	// Post-processing after removing -ed/-ing.
	switch {
	case s.hasSuffix("at"):
		s.replaceSuffix("at", "ate")
	case s.hasSuffix("bl"):
		s.replaceSuffix("bl", "ble")
	case s.hasSuffix("iz"):
		s.replaceSuffix("iz", "ize")
	case s.endsDoubleConsonant():
		last := s.b[len(s.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure(len(s.b)) == 1 && s.endsCVC(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

// step1c turns terminal y into i when there is a vowel in the stem.
func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowel(s.stemLen("y")) {
		s.b[len(s.b)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones when m > 0.
func (s *stemmer) step2() {
	if len(s.b) < 3 {
		return
	}
	// Dispatch on the penultimate character, per Porter's original code.
	switch s.b[len(s.b)-2] {
	case 'a':
		if s.replaceIfM("ational", "ate", 0) {
			return
		}
		s.replaceIfM("tional", "tion", 0)
	case 'c':
		if s.replaceIfM("enci", "ence", 0) {
			return
		}
		s.replaceIfM("anci", "ance", 0)
	case 'e':
		s.replaceIfM("izer", "ize", 0)
	case 'l':
		if s.replaceIfM("abli", "able", 0) {
			return
		}
		if s.replaceIfM("alli", "al", 0) {
			return
		}
		if s.replaceIfM("entli", "ent", 0) {
			return
		}
		if s.replaceIfM("eli", "e", 0) {
			return
		}
		s.replaceIfM("ousli", "ous", 0)
	case 'o':
		if s.replaceIfM("ization", "ize", 0) {
			return
		}
		if s.replaceIfM("ation", "ate", 0) {
			return
		}
		s.replaceIfM("ator", "ate", 0)
	case 's':
		if s.replaceIfM("alism", "al", 0) {
			return
		}
		if s.replaceIfM("iveness", "ive", 0) {
			return
		}
		if s.replaceIfM("fulness", "ful", 0) {
			return
		}
		s.replaceIfM("ousness", "ous", 0)
	case 't':
		if s.replaceIfM("aliti", "al", 0) {
			return
		}
		if s.replaceIfM("iviti", "ive", 0) {
			return
		}
		s.replaceIfM("biliti", "ble", 0)
	}
}

// step3 deals with -ic-, -full, -ness etc.
func (s *stemmer) step3() {
	if len(s.b) == 0 {
		return
	}
	switch s.b[len(s.b)-1] {
	case 'e':
		if s.replaceIfM("icate", "ic", 0) {
			return
		}
		if s.replaceIfM("ative", "", 0) {
			return
		}
		s.replaceIfM("alize", "al", 0)
	case 'i':
		s.replaceIfM("iciti", "ic", 0)
	case 'l':
		if s.replaceIfM("ical", "ic", 0) {
			return
		}
		s.replaceIfM("ful", "", 0)
	case 's':
		s.replaceIfM("ness", "", 0)
	}
}

// step4 removes suffixes when m > 1.
func (s *stemmer) step4() {
	suffixes := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
		"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
	}
	for _, suf := range suffixes {
		if !s.hasSuffix(suf) {
			continue
		}
		stem := s.stemLen(suf)
		if suf == "ion" {
			// -ion only drops after s or t.
			if stem == 0 || (s.b[stem-1] != 's' && s.b[stem-1] != 't') {
				// Try shorter suffixes? Porter's algorithm stops at the
				// longest match; -ion not preceded by s/t means no action.
				return
			}
		}
		if s.measure(stem) > 1 {
			s.b = s.b[:stem]
		}
		return
	}
}

// step5a removes a terminal e when m > 1, or when m == 1 and the stem does
// not end CVC.
func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	stem := s.stemLen("e")
	m := s.measure(stem)
	if m > 1 || (m == 1 && !s.endsCVC(stem)) {
		s.b = s.b[:stem]
	}
}

// step5b maps -ll to -l when m > 1.
func (s *stemmer) step5b() {
	n := len(s.b)
	if n >= 2 && s.b[n-1] == 'l' && s.b[n-2] == 'l' && s.measure(n) > 1 {
		s.b = s.b[:n-1]
	}
}
