package text

// SurfaceTerm pairs a normalized index term (the output of the Terms
// pipeline) with the lower-cased surface token it was derived from.
// Index layers use the pairing to display human-readable words ("rental")
// for internal stems ("rental" stemmed to "rent" would otherwise leak
// into labels).
type SurfaceTerm struct {
	// Term is the stop-worded, stemmed index term.
	Term string
	// Surface is the original token, lower-cased but unstemmed.
	Surface string
}

// SurfaceTerms runs the same pipeline as Terms but keeps each surviving
// token's surface form alongside its stem, in document order. The Term
// sequence is identical to Terms(s).
func SurfaceTerms(s string) []SurfaceTerm {
	toks := Tokenize(s)
	out := make([]SurfaceTerm, 0, len(toks))
	for _, tok := range toks {
		if IsStopWord(tok) {
			continue
		}
		out = append(out, SurfaceTerm{Term: Stem(tok), Surface: tok})
	}
	return out
}
