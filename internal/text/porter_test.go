package text

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestStemVocabulary checks the stemmer against known input/output pairs
// from Porter's published examples and the paper's own examples
// ("privaci", "shop", "copyright", "help", "flight", "return", "travel").
func TestStemVocabulary(t *testing.T) {
	cases := map[string]string{
		// Porter's canonical examples.
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
		// Paper-domain words.
		"privacy":   "privaci",
		"shopping":  "shop",
		"copyright": "copyright",
		"flights":   "flight",
		"returned":  "return",
		"traveling": "travel",
		"movies":    "movi",
		"books":     "book",
		"hotels":    "hotel",
		"jobs":      "job",
		// Short words pass through.
		"a":  "a",
		"at": "at",
		"be": "be",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming is not idempotent in general, but for this vocabulary of
	// already-stemmed outputs it must be stable — otherwise TF counting
	// of repeated pipeline runs would drift.
	words := []string{"caress", "plaster", "motor", "hop", "travel", "flight", "book"}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem unstable: %q -> %q -> %q", w, once, twice)
		}
	}
}

func TestStemNeverPanicsAndShrinks(t *testing.T) {
	f := func(s string) bool {
		// Constrain to plausible lower-case words.
		w := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' {
				return r
			}
			return 'a' + (r % 26)
		}, s)
		if len(w) > 40 {
			w = w[:40]
		}
		got := Stem(w)
		return len(got) <= len(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Find Cheap Flights, Hotels & Car-Rentals (2006)!")
	want := []string{"find", "cheap", "flights", "hotels", "car", "rentals", "2006"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeDropsSingleChars(t *testing.T) {
	got := Tokenize("a b c word x")
	if len(got) != 1 || got[0] != "word" {
		t.Errorf("got %v, want [word]", got)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("got %v from empty input", got)
	}
	if got := Tokenize("!!! ... ???"); len(got) != 0 {
		t.Errorf("got %v from punctuation", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("café naïve résumé")
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	if got[0] != "café" {
		t.Errorf("tok0 = %q", got[0])
	}
}

func TestTermsPipeline(t *testing.T) {
	got := Terms("The flights were returning to the hotels")
	want := []string{"flight", "return", "hotel"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("term[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTermsKeepsNumbers(t *testing.T) {
	got := Terms("departing 2006 on flight 447")
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "2006") || !strings.Contains(joined, "447") {
		t.Errorf("numbers dropped: %v", got)
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "www", "com"} {
		if !IsStopWord(w) {
			t.Errorf("%q should be a stop word", w)
		}
	}
	for _, w := range []string{"flight", "hotel", "music", "job"} {
		if IsStopWord(w) {
			t.Errorf("%q must not be a stop word", w)
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "vietnamization", "flights", "hopefulness", "traveling"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkTerms(b *testing.B) {
	s := strings.Repeat("Find cheap flights and hotel availability for your travels. ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Terms(s)
	}
}
