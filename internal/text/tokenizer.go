package text

import (
	"strings"
	"unicode"
)

// maxStemCache bounds a Tokenizer's token→result cache. Webgen and real
// form-page corpora have vocabularies far below this; the cap only
// exists so adversarial input (random-string floods) cannot grow a
// pooled tokenizer without bound. Past the cap, tokens are still
// processed correctly — just without memoization.
const maxStemCache = 1 << 16

// Tokenizer is a reusable tokenize→stop-word→stem pipeline with
// amortized state: the output slice is recycled call to call, and every
// distinct raw token's final result (its stem, or "drop" for stop words
// and the ToLower/Stem allocations that produced it) is memoized, so in
// steady state Terms performs zero allocations per call — pinned by
// TestTokenizerZeroAllocSteadyState. This is the ingest hot path's
// tokenizer; the stateless package functions remain for one-shot use.
//
// Not safe for concurrent use; pool one per worker (form.Parser does).
type Tokenizer struct {
	terms []string
	// stems maps a raw (pre-lowercase) token to its pipeline result:
	// the stemmed term, or "" when the token is a stop word and must be
	// dropped. Keyed raw so cache hits skip ToLower entirely; the
	// pipeline is a pure function of the token, so the memo is exact.
	stems map[string]string
}

// NewTokenizer returns an empty tokenizer ready for reuse.
func NewTokenizer() *Tokenizer {
	return &Tokenizer{stems: make(map[string]string, 256)}
}

// Terms runs the Terms pipeline — tokenize, drop stop words, stem —
// producing element-for-element the same output as the package-level
// Terms for every input. The returned slice is owned by the tokenizer
// and overwritten by the next call; callers must copy what they keep.
func (tk *Tokenizer) Terms(s string) []string {
	out := tk.terms[:0]
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = tk.emit(out, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = tk.emit(out, s[start:])
	}
	tk.terms = out
	return out
}

// emit pushes one raw token through the memoized pipeline. The map
// lookup with a substring key does not allocate; only the first
// sighting of a token pays for ToLower, the stop-word check, Stem, and
// a strings.Clone of the key (the clone detaches the key from the —
// possibly page-sized — backing string of s).
func (tk *Tokenizer) emit(out []string, tok string) []string {
	if len(tok) <= 1 {
		return out
	}
	if st, ok := tk.stems[tok]; ok {
		if st != "" {
			out = append(out, st)
		}
		return out
	}
	low := strings.ToLower(tok)
	st := ""
	if !IsStopWord(low) {
		st = Stem(low)
	}
	if len(tk.stems) < maxStemCache {
		tk.stems[strings.Clone(tok)] = st
	}
	if st != "" {
		out = append(out, st)
	}
	return out
}
