// Package crawler implements the focused-crawling substrate the paper
// assumes as its input stage [3]: a concurrent BFS crawler over net/http
// that discovers pages, extracts links, and admits only pages containing
// searchable forms. A companion in-process server makes a generated
// corpus reachable over real HTTP so the full fetch/parse path is
// exercised.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"cafc/internal/form"
	"cafc/internal/htmlx"
	"cafc/internal/obs"
	"cafc/internal/webgen"
)

// Fetcher retrieves the body of a URL.
type Fetcher interface {
	Fetch(url string) (body string, err error)
}

// ContextFetcher is a Fetcher that honors request cancellation. Crawl
// and RetryFetcher use it when available, so hung servers can be
// abandoned instead of stalling a crawl shard forever.
type ContextFetcher interface {
	Fetcher
	FetchContext(ctx context.Context, url string) (body string, err error)
}

// fetchContext dispatches to FetchContext when the fetcher supports it.
func fetchContext(f Fetcher, ctx context.Context, u string) (string, error) {
	if cf, ok := f.(ContextFetcher); ok {
		return cf.FetchContext(ctx, u)
	}
	return f.Fetch(u)
}

// StatusError is returned by HTTPFetcher for non-200 responses, so
// retry policy can distinguish permanent client errors (404) from
// transient server-side ones (503, 429).
type StatusError struct {
	URL  string
	Code int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("crawler: GET %s: status %d", e.URL, e.Code)
}

// defaultClient bounds every request of a zero-value HTTPFetcher: a hung
// server must never stall a crawl shard forever.
var defaultClient = &http.Client{Timeout: 30 * time.Second}

// HTTPFetcher fetches over an http.Client with a response-size cap.
type HTTPFetcher struct {
	// Client is the underlying client. Nil selects a shared default
	// client with a 30s overall timeout (not http.DefaultClient, which
	// has none).
	Client *http.Client
	// MaxBody caps the bytes read per response (0 = 1 MiB).
	MaxBody int64
}

// Fetch implements Fetcher.
func (f *HTTPFetcher) Fetch(u string) (string, error) {
	return f.FetchContext(context.Background(), u)
}

// FetchContext implements ContextFetcher: the request is built with the
// context, so cancellation and deadlines abort the dial, the wait for
// headers, and the body read.
func (f *HTTPFetcher) FetchContext(ctx context.Context, u string) (string, error) {
	client := f.Client
	if client == nil {
		client = defaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{URL: u, Code: resp.StatusCode}
	}
	maxBody := f.MaxBody
	if maxBody == 0 {
		maxBody = 1 << 20
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// CorpusFetcher serves a generated corpus from memory (no network).
type CorpusFetcher struct {
	Corpus *webgen.Corpus
}

// ErrNotFound is returned for URLs outside the corpus.
var ErrNotFound = errors.New("crawler: page not found")

// Fetch implements Fetcher.
func (f *CorpusFetcher) Fetch(u string) (string, error) {
	if p := f.Corpus.ByURL[u]; p != nil {
		return p.HTML, nil
	}
	return "", ErrNotFound
}

// ServeCorpus exposes a corpus over real HTTP. It returns the test server
// and an http.Client whose transport resolves every host to the server's
// listener, so corpus URLs like http://www.jetquest0.example/search.html
// fetch transparently. Close the server when done.
//
// Form submissions (GET /results) are answered against the site's
// simulated database records, so post-query probing techniques can be
// exercised end to end: records matching any submitted value are listed;
// a submission with no usable values yields an empty result page.
func ServeCorpus(c *webgen.Corpus) (*httptest.Server, *http.Client) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		u := "http://" + r.Host + r.URL.Path
		if p := c.ByURL[u]; p != nil {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_, _ = io.WriteString(w, p.HTML)
			return
		}
		if r.URL.Path == "/results" {
			serveResults(w, r, c)
			return
		}
		http.NotFound(w, r)
	})
	srv := httptest.NewServer(handler)
	addr := srv.Listener.Addr().String()
	client := &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, network, addr)
			},
		},
	}
	return srv, client
}

// serveResults answers a simulated database query for the site owning
// the request's host.
func serveResults(w http.ResponseWriter, r *http.Request, c *webgen.Corpus) {
	formURL := "http://" + r.Host + "/search.html"
	records, ok := c.Records[formURL]
	if !ok {
		http.NotFound(w, r)
		return
	}
	var terms []string
	for _, vs := range r.URL.Query() {
		for _, v := range vs {
			if v != "" {
				terms = append(terms, v)
			}
		}
	}
	sort.Strings(terms)
	matches := webgen.SearchRecords(records, strings.Join(terms, " "))
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<html><head><title>Search Results</title></head><body>\n")
	if len(matches) == 0 {
		b.WriteString("<p>Your search returned no results. Please refine your query and try again.</p>\n")
	} else {
		fmt.Fprintf(&b, "<p>%d results found</p>\n<ul>\n", len(matches))
		for i, m := range matches {
			if i == 25 {
				break
			}
			fmt.Fprintf(&b, "<li>%s</li>\n", htmlx.EscapeText(m))
		}
		b.WriteString("</ul>\n")
	}
	b.WriteString("</body></html>\n")
	_, _ = io.WriteString(w, b.String())
}

// Page is one crawled document.
type Page struct {
	URL   string
	HTML  string
	Links []string
	// Searchable reports whether the page contains a searchable form.
	Searchable bool
	// Depth is the BFS distance from the seed set.
	Depth int
}

// Config tunes a crawl.
type Config struct {
	// MaxPages bounds the number of fetched pages (0 = 10,000).
	MaxPages int
	// MaxDepth bounds BFS depth (0 = 10).
	MaxDepth int
	// Workers is the number of concurrent fetchers (0 = 4).
	Workers int
	// Metrics, when non-nil, receives crawl telemetry: per-fetch latency
	// (crawler_fetch_seconds) and outcome counts, link extraction and
	// frontier dedup counters, searchable-form admissions, and the
	// frontier size per BFS wave. The traversal itself is unchanged.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxPages == 0 {
		c.MaxPages = 10000
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	return c
}

// Crawler performs BFS crawls with a Fetcher.
type Crawler struct {
	Fetcher Fetcher
	Config  Config
	// Searchable decides whether a form is a database query interface.
	// Nil means the rule-based form.IsSearchable; plug in a trained
	// formclass classifier for the learned filter.
	Searchable func(*form.Form) bool
}

// Crawl fetches from the seed URLs outward and returns every successfully
// fetched page. Fetch errors are skipped (the live web is lossy); the
// traversal is deterministic for a deterministic Fetcher because frontier
// expansion is breadth-first in discovery order.
func (cr *Crawler) Crawl(seeds []string) []Page {
	return cr.CrawlContext(context.Background(), seeds)
}

// CrawlContext is Crawl with a context: when the Fetcher implements
// ContextFetcher every fetch inherits ctx, so cancelling it abandons
// in-flight requests and stops the crawl at the next wave boundary.
func (cr *Crawler) CrawlContext(ctx context.Context, seeds []string) []Page {
	cfg := cr.Config.withDefaults()
	// Fetch-health telemetry. Handles are nil (no-op) without a
	// registry; the counters and histogram are atomic, so the fetch
	// goroutines record without coordination.
	var (
		fetchSeconds *obs.Histogram
		fetchOK      *obs.Counter
		fetchErr     *obs.Counter
		linksSeen    *obs.Counter
		linksDeduped *obs.Counter
		searchable   *obs.Counter
		crawled      *obs.Counter
		frontierSize *obs.Gauge
		depthGauge   *obs.Gauge
	)
	if reg := cfg.Metrics; reg != nil {
		fetchSeconds = reg.Histogram("crawler_fetch_seconds", obs.DurationBuckets)
		fetchOK = reg.Counter("crawler_fetch_total", "status", "ok")
		fetchErr = reg.Counter("crawler_fetch_total", "status", "error")
		linksSeen = reg.Counter("crawler_links_extracted_total")
		linksDeduped = reg.Counter("crawler_links_deduped_total")
		searchable = reg.Counter("crawler_searchable_pages_total")
		crawled = reg.Counter("crawler_pages_crawled_total")
		frontierSize = reg.Gauge("crawler_frontier_size")
		depthGauge = reg.Gauge("crawler_depth")
	}
	type job struct {
		url   string
		depth int
	}
	visited := make(map[string]bool)
	var out []Page
	frontier := make([]job, 0, len(seeds))
	for _, s := range seeds {
		if !visited[s] {
			visited[s] = true
			frontier = append(frontier, job{s, 0})
		}
	}
	for len(frontier) > 0 && len(out) < cfg.MaxPages && ctx.Err() == nil {
		batch := frontier
		frontier = nil
		frontierSize.Set(float64(len(batch)))
		depthGauge.Set(float64(batch[0].depth))
		// Fetch the batch concurrently, preserving order in results.
		results := make([]*Page, len(batch))
		sem := make(chan struct{}, cfg.Workers)
		var wg sync.WaitGroup
		for i, j := range batch {
			// Stop spawning once the page budget cannot admit more.
			if len(out)+i >= cfg.MaxPages {
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, j job) {
				defer wg.Done()
				defer func() { <-sem }()
				var t0 time.Time
				if fetchSeconds != nil {
					t0 = time.Now()
				}
				body, err := fetchContext(cr.Fetcher, ctx, j.url)
				fetchSeconds.ObserveSince(t0)
				if err != nil {
					fetchErr.Inc()
					return
				}
				fetchOK.Inc()
				p := &Page{URL: j.url, HTML: body, Depth: j.depth}
				base, err := url.Parse(j.url)
				if err == nil {
					doc := htmlx.Parse(body)
					for _, l := range htmlx.ExtractLinks(doc, base) {
						p.Links = append(p.Links, l.URL)
					}
					isSearchable := cr.Searchable
					if isSearchable == nil {
						isSearchable = form.IsSearchable
					}
					for _, f := range form.ExtractForms(doc) {
						if isSearchable(f) {
							p.Searchable = true
							break
						}
					}
				}
				linksSeen.Add(int64(len(p.Links)))
				if p.Searchable {
					searchable.Inc()
				}
				results[i] = p
			}(i, j)
		}
		wg.Wait()
		for _, p := range results {
			if p == nil {
				continue
			}
			if len(out) >= cfg.MaxPages {
				break
			}
			out = append(out, *p)
			crawled.Inc()
			if p.Depth >= cfg.MaxDepth {
				continue
			}
			for _, l := range p.Links {
				if !visited[l] {
					visited[l] = true
					frontier = append(frontier, job{l, p.Depth + 1})
				} else {
					linksDeduped.Inc()
				}
			}
		}
	}
	return out
}

// FormPages filters a crawl result down to the searchable form pages —
// the input set for clustering.
func FormPages(pages []Page) []Page {
	var out []Page
	for _, p := range pages {
		if p.Searchable {
			out = append(out, p)
		}
	}
	return out
}
