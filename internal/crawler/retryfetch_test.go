package crawler

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cafc/internal/fault"
	"cafc/internal/obs"
	"cafc/internal/retry"
)

// countingFetcher counts attempts and fails the first n of them.
type countingFetcher struct {
	attempts atomic.Int64
	failN    int64
	err      error
}

func (f *countingFetcher) Fetch(u string) (string, error) {
	n := f.attempts.Add(1)
	if n <= f.failN {
		err := f.err
		if err == nil {
			err = errors.New("transient")
		}
		return "", err
	}
	return "ok", nil
}

func TestRetryFetcherRecoversFromTransientErrors(t *testing.T) {
	clk := fault.NewFakeClock()
	under := &countingFetcher{failN: 2}
	reg := obs.NewRegistry()
	rf := &RetryFetcher{
		Fetcher: under,
		Policy:  retry.Policy{MaxAttempts: 3, Seed: 1},
		Clock:   clk,
		Metrics: reg,
	}
	body, err := rf.Fetch("http://a.example/")
	if err != nil || body != "ok" {
		t.Fatalf("Fetch = %q, %v", body, err)
	}
	if n := under.attempts.Load(); n != 3 {
		t.Errorf("attempts = %d, want 3", n)
	}
	if v := reg.Counter("retry_total", "component", "fetch").Value(); v != 2 {
		t.Errorf("retry_total = %d, want 2", v)
	}
	if clk.Slept() == 0 {
		t.Error("no backoff slept on the clock")
	}
}

// TestRetryFetcherBudgets is the property test: over a table of fault
// plans and policies, the fetcher never exceeds its attempt budget and
// never sleeps past the policy's worst-case backoff bill.
func TestRetryFetcherBudgets(t *testing.T) {
	cases := []struct {
		name   string
		plan   fault.Plan
		policy retry.Policy
	}{
		{"always-down", fault.Plan{Seed: 1, ErrorRate: 1}, retry.Policy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Seed: 1}},
		{"flaky-half", fault.Plan{Seed: 2, ErrorRate: 0.5}, retry.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Seed: 2}},
		{"rate-limited", fault.Plan{Seed: 3, RateLimitEvery: 2}, retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 3}},
		{"outage-window", fault.Plan{Seed: 4, Outages: []fault.Window{{Start: 0, End: 100}}}, retry.Policy{MaxAttempts: 2, BaseDelay: time.Second, Seed: 4}},
		{"slow-and-flaky", fault.Plan{Seed: 5, ErrorRate: 0.8, SlowRate: 0.5, Delay: 10 * time.Millisecond}, retry.Policy{MaxAttempts: 6, BaseDelay: 5 * time.Millisecond, Jitter: -1, Seed: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := fault.NewFakeClock()
			in := fault.New(tc.plan, clk)
			var under countingFetcher
			rf := &RetryFetcher{
				Fetcher: fetchFunc(in.WrapFetch(under.Fetch)),
				Policy:  tc.policy,
				Clock:   clk,
			}
			for i := 0; i < 20; i++ {
				before := under.attempts.Load()
				sleptBefore := clk.Slept()
				_, _ = rf.Fetch(fmt.Sprintf("http://s%d.example/", i))
				attempts := under.attempts.Load() - before
				maxAttempts := int64(tc.policy.WithDefaults().MaxAttempts)
				if attempts > maxAttempts {
					t.Fatalf("call %d: %d attempts, budget %d", i, attempts, maxAttempts)
				}
				// The time budget: backoff sleeps plus injected slow
				// responses (one possible Delay per attempt, whether or
				// not the attempt reached the underlying fetcher).
				bound := tc.policy.MaxElapsed() + time.Duration(maxAttempts)*tc.plan.Delay
				if slept := clk.Slept() - sleptBefore; slept > bound {
					t.Fatalf("call %d: slept %v, budget %v", i, slept, bound)
				}
			}
		})
	}
}

// fetchFunc adapts a function to the Fetcher interface.
type fetchFunc func(string) (string, error)

func (f fetchFunc) Fetch(u string) (string, error) { return f(u) }

func TestRetryFetcherPermanentErrorsSkipRetry(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	var calls atomic.Int64
	counting := fetchFunc(func(u string) (string, error) {
		calls.Add(1)
		return (&HTTPFetcher{}).Fetch(u)
	})
	rf := &RetryFetcher{Fetcher: counting, Policy: retry.Policy{MaxAttempts: 4}, Clock: fault.NewFakeClock()}
	_, err := rf.Fetch(srv.URL + "/missing")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 404 {
		t.Fatalf("err = %v, want StatusError 404", err)
	}
	if calls.Load() != 1 {
		t.Errorf("404 fetched %d times, want 1 (no retries)", calls.Load())
	}
}

func TestRetryFetcherBreakerFastFails(t *testing.T) {
	clk := fault.NewFakeClock()
	under := &countingFetcher{failN: 1 << 30}
	reg := obs.NewRegistry()
	rf := &RetryFetcher{
		Fetcher: under,
		Policy:  retry.Policy{MaxAttempts: 2, Seed: 1},
		Breaker: retry.NewBreaker(4, time.Minute, clk, reg, "fetch"),
		Clock:   clk,
		Metrics: reg,
	}
	// Two sequences of two failing attempts: the fourth failure is past
	// the threshold, so the breaker is open afterwards.
	for i := 0; i < 2; i++ {
		if _, err := rf.Fetch("http://down.example/"); err == nil {
			t.Fatal("expected failure")
		}
	}
	attempts := under.attempts.Load()
	if _, err := rf.Fetch("http://down.example/"); !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("err = %v, want breaker open", err)
	}
	if under.attempts.Load() != attempts {
		t.Error("open breaker still hit the network")
	}
	if v := reg.Counter("breaker_fastfail_total", "component", "fetch").Value(); v != 1 {
		t.Errorf("breaker_fastfail_total = %d, want 1", v)
	}
	if v := reg.Gauge("breaker_state", "component", "fetch").Value(); v != float64(retry.Open) {
		t.Errorf("breaker_state = %v, want open", v)
	}

	// After the cooldown the half-open probe goes through and recovery
	// recloses the circuit.
	under.failN = 0
	clk.Advance(2 * time.Minute)
	if body, err := rf.Fetch("http://down.example/"); err != nil || body != "ok" {
		t.Fatalf("post-cooldown fetch = %q, %v", body, err)
	}
	if v := reg.Gauge("breaker_state", "component", "fetch").Value(); v != float64(retry.Closed) {
		t.Errorf("breaker_state after recovery = %v, want closed", v)
	}
}

// TestRetryFetcherDeadLinksDontTripBreaker: 4xx statuses mean the
// upstream answered, so a crawl through a run of dead links — routine
// on the real web — must leave the circuit closed for the live pages
// behind them.
func TestRetryFetcherDeadLinksDontTripBreaker(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/live", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "alive")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	clk := fault.NewFakeClock()
	reg := obs.NewRegistry()
	rf := &RetryFetcher{
		Fetcher: &HTTPFetcher{},
		Policy:  retry.Policy{MaxAttempts: 3, Seed: 1},
		Breaker: retry.NewBreaker(3, time.Minute, clk, reg, "fetch"),
		Clock:   clk,
		Metrics: reg,
	}
	for i := 0; i < 10; i++ {
		if _, err := rf.Fetch(fmt.Sprintf("%s/dead%d", srv.URL, i)); err == nil {
			t.Fatal("expected 404")
		} else if errors.Is(err, retry.ErrOpen) {
			t.Fatalf("breaker opened after %d dead links", i)
		}
	}
	if v := reg.Gauge("breaker_state", "component", "fetch").Value(); v != float64(retry.Closed) {
		t.Fatalf("breaker_state after dead links = %v, want closed", v)
	}
	if body, err := rf.Fetch(srv.URL + "/live"); err != nil || body != "alive" {
		t.Fatalf("live fetch after dead links = %q, %v", body, err)
	}
}

// TestHTTPFetcherHangingServer is the regression for the stalled-shard
// bug: a server that accepts the request and never answers must not
// hang a context-bounded fetch.
func TestHTTPFetcherHangingServer(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hang until the test finishes
	}))
	defer func() { close(release); srv.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := (&HTTPFetcher{}).FetchContext(ctx, srv.URL)
	if err == nil {
		t.Fatal("fetch of hanging server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fetch took %v, context deadline not honored", elapsed)
	}
}

// TestRetryFetcherHangingServerBudget: the per-attempt timeout turns a
// hung server into a bounded retry sequence instead of a stalled crawl
// shard.
func TestRetryFetcherHangingServerBudget(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-release
	}))
	defer func() { close(release); srv.Close() }()

	rf := &RetryFetcher{
		Fetcher: &HTTPFetcher{},
		Policy:  retry.Policy{MaxAttempts: 2, Timeout: 100 * time.Millisecond, BaseDelay: time.Millisecond, Seed: 1},
	}
	start := time.Now()
	_, err := rf.Fetch(srv.URL)
	if err == nil {
		t.Fatal("expected exhausted attempts")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry sequence took %v", elapsed)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d attempts, want 2", calls.Load())
	}
}

// TestHTTPFetcherDefaultClientHasTimeout locks in the default-timeout
// fix: the zero-value fetcher must not fall back to the timeout-less
// http.DefaultClient.
func TestHTTPFetcherDefaultClientHasTimeout(t *testing.T) {
	if defaultClient.Timeout <= 0 {
		t.Fatal("default client has no timeout")
	}
}
