// RetryFetcher: the resilient fetch path. The live web is lossy — DNS
// hiccups, connection resets, 5xx bursts, rate limits — and a focused
// crawler must keep making progress through all of it without hammering
// a struggling server. RetryFetcher layers bounded retries with
// deterministic-jitter exponential backoff, a per-attempt context
// timeout, and a consecutive-failure circuit breaker over any Fetcher.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"cafc/internal/obs"
	"cafc/internal/retry"
)

// RetryFetcher wraps a Fetcher with the retry/breaker policy. It
// implements ContextFetcher; the zero value (plus a Fetcher) is usable
// and selects the retry.Policy defaults with no breaker.
type RetryFetcher struct {
	// Fetcher is the underlying fetcher (required).
	Fetcher Fetcher
	// Policy bounds attempts, backoff and the per-attempt timeout; zero
	// fields take the retry.Policy defaults.
	Policy retry.Policy
	// Breaker, when non-nil, fast-fails fetches while the circuit is
	// open. One breaker may be shared across fetchers to give them a
	// common view of the upstream's health.
	Breaker *retry.Breaker
	// Clock drives the backoff sleeps (nil = retry.System; tests pass a
	// fault.FakeClock so retry schedules cost no wall time).
	Clock retry.Clock
	// Metrics, when non-nil, receives retry_total / retry_giveup_total /
	// breaker_fastfail_total counters labelled component="fetch".
	Metrics *obs.Registry

	once    sync.Once
	backoff *retry.Backoff
}

func (f *RetryFetcher) init() {
	f.once.Do(func() {
		f.Policy = f.Policy.WithDefaults()
		f.backoff = retry.NewBackoff(f.Policy)
		if f.Clock == nil {
			f.Clock = retry.System
		}
	})
}

// Fetch implements Fetcher.
func (f *RetryFetcher) Fetch(u string) (string, error) {
	return f.FetchContext(context.Background(), u)
}

// Permanent reports whether err should not be retried: nothing will
// change on a second attempt (404-class statuses, pages outside the
// corpus, the caller's own cancellation).
func Permanent(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		// Client errors are stable; 429 (rate limit) and any 5xx are
		// worth retrying.
		return se.Code >= 400 && se.Code < 500 && se.Code != http.StatusTooManyRequests
	}
	return errors.Is(err, ErrNotFound) || errors.Is(err, context.Canceled)
}

// FetchContext implements ContextFetcher: up to Policy.MaxAttempts
// tries, each bounded by Policy.Timeout, with backoff sleeps on f.Clock
// between them. Breaker fast-fails return ErrOpen-wrapped errors
// without touching the network.
func (f *RetryFetcher) FetchContext(ctx context.Context, u string) (string, error) {
	f.init()
	var (
		retries  *obs.Counter
		giveups  *obs.Counter
		fastfail *obs.Counter
	)
	if reg := f.Metrics; reg != nil {
		retries = reg.Counter("retry_total", "component", "fetch")
		giveups = reg.Counter("retry_giveup_total", "component", "fetch")
		fastfail = reg.Counter("breaker_fastfail_total", "component", "fetch")
	}
	var lastErr error
	for attempt := 1; attempt <= f.Policy.MaxAttempts; attempt++ {
		if err := f.Breaker.Allow(); err != nil {
			fastfail.Inc()
			return "", fmt.Errorf("crawler: fetch %s: %w", u, err)
		}
		attemptCtx := ctx
		if f.Policy.Timeout > 0 {
			var cancel context.CancelFunc
			attemptCtx, cancel = context.WithTimeout(ctx, f.Policy.Timeout)
			body, err := fetchContext(f.Fetcher, attemptCtx, u)
			cancel()
			lastErr = err
			if err == nil {
				f.Breaker.Success()
				return body, nil
			}
		} else {
			body, err := fetchContext(f.Fetcher, attemptCtx, u)
			lastErr = err
			if err == nil {
				f.Breaker.Success()
				return body, nil
			}
		}
		if Permanent(lastErr) {
			// A 4xx-class status or definitive not-found means the
			// upstream answered — evidence of health, not an outage, so
			// it must not trip the breaker (a crawl through dead links
			// would otherwise fast-fail the live pages behind them). The
			// caller's own cancellation says nothing about the upstream
			// either way.
			if ctx.Err() == nil && !errors.Is(lastErr, context.Canceled) {
				f.Breaker.Success()
			}
			return "", lastErr
		}
		f.Breaker.Failure()
		if ctx.Err() != nil {
			return "", lastErr
		}
		if attempt < f.Policy.MaxAttempts {
			retries.Inc()
			if err := f.Clock.Sleep(ctx, f.backoff.Delay(attempt)); err != nil {
				return "", lastErr
			}
		}
	}
	giveups.Inc()
	return "", fmt.Errorf("crawler: fetch %s: %d attempts exhausted: %w", u, f.Policy.MaxAttempts, lastErr)
}
