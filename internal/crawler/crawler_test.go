package crawler

import (
	"sort"
	"testing"

	"cafc/internal/form"
	"cafc/internal/webgen"
)

func TestCorpusFetcher(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 1, FormPages: 24})
	f := &CorpusFetcher{Corpus: c}
	u := c.FormPages[0]
	body, err := f.Fetch(u)
	if err != nil {
		t.Fatal(err)
	}
	if body != c.ByURL[u].HTML {
		t.Error("fetched body differs")
	}
	if _, err := f.Fetch("http://nowhere.example/"); err != ErrNotFound {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestServeCorpusOverHTTP(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 2, FormPages: 24})
	srv, client := ServeCorpus(c)
	defer srv.Close()
	f := &HTTPFetcher{Client: client}
	u := c.FormPages[3]
	body, err := f.Fetch(u)
	if err != nil {
		t.Fatal(err)
	}
	if body != c.ByURL[u].HTML {
		t.Error("HTTP body differs from corpus")
	}
	if _, err := f.Fetch("http://missing.example/x"); err == nil {
		t.Error("404 should be an error")
	}
}

func TestCrawlDiscoversFormPages(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 3, FormPages: 40})
	// Seed with directory + hub pages: BFS must reach form pages.
	var seeds []string
	for _, p := range c.Pages {
		if p.Kind == webgen.DirectoryPageKind || p.Kind == webgen.HubPageKind {
			seeds = append(seeds, p.URL)
		}
	}
	sort.Strings(seeds)
	cr := &Crawler{Fetcher: &CorpusFetcher{Corpus: c}, Config: Config{Workers: 2}}
	pages := cr.Crawl(seeds)
	if len(pages) == 0 {
		t.Fatal("crawl returned nothing")
	}
	fps := FormPages(pages)
	if len(fps) == 0 {
		t.Fatal("no searchable form pages discovered")
	}
	// Every discovered searchable page must be a known corpus form page
	// or a root page carrying a searchable form (roots only have the
	// newsletter form, which is non-searchable, so they must not appear).
	for _, p := range fps {
		kp := c.ByURL[p.URL]
		if kp == nil {
			t.Fatalf("crawled unknown page %s", p.URL)
		}
		if kp.Kind != webgen.FormPageKind {
			t.Errorf("%s (%s) judged searchable", p.URL, kp.Kind)
		}
	}
}

func TestCrawlOverRealHTTP(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 4, FormPages: 16})
	srv, client := ServeCorpus(c)
	defer srv.Close()
	var seeds []string
	for _, p := range c.Pages {
		if p.Kind == webgen.DirectoryPageKind {
			seeds = append(seeds, p.URL)
		}
	}
	cr := &Crawler{Fetcher: &HTTPFetcher{Client: client}, Config: Config{Workers: 3}}
	pages := cr.Crawl(seeds)
	if len(FormPages(pages)) == 0 {
		t.Fatal("HTTP crawl found no form pages")
	}
}

func TestCrawlRespectsMaxPages(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 5, FormPages: 60})
	var seeds []string
	for _, p := range c.Pages {
		if p.Kind == webgen.DirectoryPageKind {
			seeds = append(seeds, p.URL)
		}
	}
	cr := &Crawler{Fetcher: &CorpusFetcher{Corpus: c}, Config: Config{MaxPages: 5}}
	pages := cr.Crawl(seeds)
	if len(pages) > 5 {
		t.Errorf("crawled %d pages, cap was 5", len(pages))
	}
}

func TestCrawlRespectsMaxDepth(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 6, FormPages: 24})
	var seed string
	for _, p := range c.Pages {
		if p.Kind == webgen.DirectoryPageKind {
			seed = p.URL
			break
		}
	}
	cr := &Crawler{Fetcher: &CorpusFetcher{Corpus: c}, Config: Config{MaxDepth: 1}}
	pages := cr.Crawl([]string{seed})
	for _, p := range pages {
		if p.Depth > 1 {
			t.Errorf("page %s at depth %d", p.URL, p.Depth)
		}
	}
}

func TestCrawlSkipsFetchErrors(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 7, FormPages: 16})
	var seed string
	for _, p := range c.Pages {
		if p.Kind == webgen.DirectoryPageKind {
			seed = p.URL
			break
		}
	}
	cr := &Crawler{Fetcher: &CorpusFetcher{Corpus: c}}
	pages := cr.Crawl([]string{seed, "http://broken.example/404"})
	if len(pages) == 0 {
		t.Fatal("one broken seed killed the crawl")
	}
	for _, p := range pages {
		if p.URL == "http://broken.example/404" {
			t.Error("broken page in results")
		}
	}
}

func TestCrawlDedupes(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 8, FormPages: 16})
	var seeds []string
	for _, p := range c.Pages {
		seeds = append(seeds, p.URL)
	}
	// Crawl with every page as a seed (plus internal links): each URL
	// must appear at most once.
	cr := &Crawler{Fetcher: &CorpusFetcher{Corpus: c}}
	pages := cr.Crawl(seeds)
	seen := map[string]bool{}
	for _, p := range pages {
		if seen[p.URL] {
			t.Fatalf("duplicate crawl of %s", p.URL)
		}
		seen[p.URL] = true
	}
}

func TestCrawlWithCustomSearchableFilter(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 9, FormPages: 24})
	var seeds []string
	for _, p := range c.Pages {
		if p.Kind == webgen.DirectoryPageKind {
			seeds = append(seeds, p.URL)
		}
	}
	// A filter that rejects everything: no searchable pages may surface.
	cr := &Crawler{
		Fetcher:    &CorpusFetcher{Corpus: c},
		Searchable: func(*form.Form) bool { return false },
	}
	pages := cr.Crawl(seeds)
	if len(pages) == 0 {
		t.Fatal("crawl returned nothing")
	}
	if got := len(FormPages(pages)); got != 0 {
		t.Errorf("reject-all filter let %d pages through", got)
	}
	// Default (nil) filter finds them again.
	cr.Searchable = nil
	if got := len(FormPages(cr.Crawl(seeds))); got == 0 {
		t.Error("default filter found nothing")
	}
}
