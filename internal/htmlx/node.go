package htmlx

import (
	"strings"
)

// NodeType identifies the kind of a Node in the parsed tree.
type NodeType int

const (
	// DocumentNode is the root of a parsed tree.
	DocumentNode NodeType = iota
	// ElementNode is an HTML element.
	ElementNode
	// TextNode is character data.
	TextNode
	// CommentNode is an HTML comment.
	CommentNode
)

// Node is a node in the simplified DOM produced by Parse.
type Node struct {
	Type     NodeType
	Data     string // tag name (elements), text (text nodes), comment body
	Attr     []Attribute
	Parent   *Node
	Children []*Node
}

// AttrVal returns the value of the named attribute and whether it exists.
func (n *Node) AttrVal(key string) (string, bool) {
	for _, a := range n.Attr {
		if strings.EqualFold(a.Key, key) {
			return a.Val, true
		}
	}
	return "", false
}

// Attr0 returns the value of the named attribute or "" if absent.
func (n *Node) Attr0(key string) string {
	v, _ := n.AttrVal(key)
	return v
}

// IsElement reports whether n is an element with the given (lower-case) tag.
func (n *Node) IsElement(tag string) bool {
	return n.Type == ElementNode && n.Data == tag
}

// appendChild attaches c as the last child of n.
func (n *Node) appendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Walk calls fn for n and every descendant in document order. If fn returns
// false for a node, that node's subtree is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns the first descendant element (in document order) with the
// given tag name, or nil.
func (n *Node) Find(tag string) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if found != nil {
			return false
		}
		if c.IsElement(tag) {
			found = c
			return false
		}
		return true
	})
	return found
}

// FindAll returns every descendant element with the given tag name in
// document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.IsElement(tag) {
			out = append(out, c)
		}
		return true
	})
	return out
}

// nonContentTags are elements whose text content is not user-visible prose.
var nonContentTags = map[string]bool{
	"script": true,
	"style":  true,
}

// Text returns the concatenated visible text of the subtree rooted at n,
// with runs of whitespace collapsed to single spaces. Script and style
// content is excluded.
func (n *Node) Text() string {
	var b strings.Builder
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && nonContentTags[c.Data] {
			return false
		}
		if c.Type == TextNode {
			b.WriteString(c.Data)
			b.WriteByte(' ')
		}
		return true
	})
	return CollapseSpace(b.String())
}

// CollapseSpace trims s and collapses internal whitespace runs to one space.
func CollapseSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\f' || r == ' ' {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
		b.WriteRune(r)
	}
	return b.String()
}

// impliedEndTags lists, for a tag being opened, the open tags it implicitly
// closes first (a small subset of the HTML5 tree-construction rules that
// matters for text extraction).
var impliedEndTags = map[string][]string{
	"li":     {"li"},
	"option": {"option"},
	"tr":     {"tr", "td", "th"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"p":      {"p"},
	"dt":     {"dt", "dd"},
	"dd":     {"dt", "dd"},
}

// Parse builds a Node tree from src. It never fails: malformed input
// produces a best-effort tree.
func Parse(src string) *Node {
	doc := &Node{Type: DocumentNode}
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	z := NewTokenizer(src)
	for {
		tok := z.Next()
		switch tok.Type {
		case ErrorToken:
			return doc
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" {
				continue
			}
			top().appendChild(&Node{Type: TextNode, Data: tok.Data})
		case CommentToken:
			top().appendChild(&Node{Type: CommentNode, Data: tok.Data})
		case DoctypeToken:
			// Ignored: the tree does not model doctypes.
		case SelfClosingTagToken:
			top().appendChild(&Node{Type: ElementNode, Data: tok.Data, Attr: tok.Attr})
		case StartTagToken:
			// Apply implied end tags (e.g. <li> closes an open <li>).
			if implied, ok := impliedEndTags[tok.Data]; ok {
				for len(stack) > 1 {
					cur := top().Data
					closed := false
					for _, t := range implied {
						if cur == t {
							stack = stack[:len(stack)-1]
							closed = true
							break
						}
					}
					if !closed {
						break
					}
				}
			}
			el := &Node{Type: ElementNode, Data: tok.Data, Attr: tok.Attr}
			top().appendChild(el)
			stack = append(stack, el)
		case EndTagToken:
			// Pop to the nearest matching open element; if none, ignore.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Data == tok.Data {
					stack = stack[:i]
					break
				}
			}
		}
	}
}
