package htmlx

import (
	"strings"
)

// NodeType identifies the kind of a Node in the parsed tree.
type NodeType int

const (
	// DocumentNode is the root of a parsed tree.
	DocumentNode NodeType = iota
	// ElementNode is an HTML element.
	ElementNode
	// TextNode is character data.
	TextNode
	// CommentNode is an HTML comment.
	CommentNode
)

// Node is a node in the simplified DOM produced by Parse. Children hang
// off an intrusive sibling list (FirstChild/NextSibling) rather than a
// per-node slice, so building a tree allocates nothing beyond the nodes
// themselves.
type Node struct {
	Type NodeType
	Data string // tag name (elements), text (text nodes), comment body
	Attr []Attribute

	Parent      *Node
	FirstChild  *Node
	LastChild   *Node
	NextSibling *Node
}

// AttrVal returns the value of the named attribute and whether it exists.
func (n *Node) AttrVal(key string) (string, bool) {
	for _, a := range n.Attr {
		if strings.EqualFold(a.Key, key) {
			return a.Val, true
		}
	}
	return "", false
}

// Attr0 returns the value of the named attribute or "" if absent.
func (n *Node) Attr0(key string) string {
	v, _ := n.AttrVal(key)
	return v
}

// IsElement reports whether n is an element with the given (lower-case) tag.
func (n *Node) IsElement(tag string) bool {
	return n.Type == ElementNode && n.Data == tag
}

// appendChild attaches c as the last child of n.
func (n *Node) appendChild(c *Node) {
	c.Parent = n
	if n.LastChild == nil {
		n.FirstChild = c
	} else {
		n.LastChild.NextSibling = c
	}
	n.LastChild = c
}

// Walk calls fn for n and every descendant in document order. If fn returns
// false for a node, that node's subtree is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		c.Walk(fn)
	}
}

// Find returns the first descendant element (in document order) with the
// given tag name, or nil.
func (n *Node) Find(tag string) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if found != nil {
			return false
		}
		if c.IsElement(tag) {
			found = c
			return false
		}
		return true
	})
	return found
}

// FindAll returns every descendant element with the given tag name in
// document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.IsElement(tag) {
			out = append(out, c)
		}
		return true
	})
	return out
}

// Text returns the concatenated visible text of the subtree rooted at n,
// with runs of whitespace collapsed to single spaces. Script and style
// content is excluded. The collapse happens while writing — one pass,
// one allocation — and produces exactly what CollapseSpace over the
// space-joined text nodes would.
func (n *Node) Text() string {
	var b strings.Builder
	space := false
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && (c.Data == "script" || c.Data == "style") {
			return false
		}
		if c.Type != TextNode {
			return true
		}
		for _, r := range c.Data {
			if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\f' || r == '\u00a0' /* nbsp */ {
				space = true
				continue
			}
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			b.WriteRune(r)
		}
		space = true // the separator between adjacent text nodes
		return true
	})
	return b.String()
}

// CollapseSpace trims s and collapses internal whitespace runs to one space.
func CollapseSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\f' || r == '\u00a0' /* nbsp */ {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
		b.WriteRune(r)
	}
	return b.String()
}

// Arena bulk-allocates parse-tree memory: nodes and attribute lists come
// out of reusable slabs, so a warm parser performs a handful of slab
// allocations per document instead of one per node. A tree built through
// an arena is valid only until the arena's next Reset — callers that
// retain trees must parse without one.
type Arena struct {
	nodes   []Node
	nused   int
	attrs   []Attribute
	aused   int
	scratch []Attribute // staging for the tag currently being tokenized
}

// node hands out a zeroed Node. A nil arena degrades to plain allocation.
func (a *Arena) node() *Node {
	if a == nil {
		return &Node{}
	}
	if a.nused == len(a.nodes) {
		n := 2 * len(a.nodes)
		if n < 512 {
			n = 512
		}
		// The full slab stays reachable through the tree under
		// construction; only the fresh one is recycled by Reset.
		a.nodes = make([]Node, n)
		a.nused = 0
	}
	nd := &a.nodes[a.nused]
	a.nused++
	return nd
}

// copyAttrs copies a staged attribute list into the arena's attribute
// slab, returning a full-capacity-clipped slice. A nil arena returns an
// exact-size heap copy.
func (a *Arena) copyAttrs(src []Attribute) []Attribute {
	if len(src) == 0 {
		return nil
	}
	if a == nil {
		return append([]Attribute(nil), src...)
	}
	if a.aused+len(src) > len(a.attrs) {
		n := 2 * len(a.attrs)
		if n < 256 {
			n = 256
		}
		if n < len(src) {
			n = len(src)
		}
		a.attrs = make([]Attribute, n)
		a.aused = 0
	}
	dst := a.attrs[a.aused : a.aused+len(src) : a.aused+len(src)]
	copy(dst, src)
	a.aused += len(src)
	return dst
}

// Reset recycles the arena for the next parse. The used prefix is zeroed
// so recycled slots drop their string references instead of pinning the
// previous document's memory.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	clear(a.nodes[:a.nused])
	clear(a.attrs[:a.aused])
	a.nused, a.aused = 0, 0
}

// impliedEndTags lists, for a tag being opened, the open tags it implicitly
// closes first (a small subset of the HTML5 tree-construction rules that
// matters for text extraction).
var impliedEndTags = map[string][]string{
	"li":     {"li"},
	"option": {"option"},
	"tr":     {"tr", "td", "th"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"p":      {"p"},
	"dt":     {"dt", "dd"},
	"dd":     {"dt", "dd"},
}

// Parse builds a Node tree from src. It never fails: malformed input
// produces a best-effort tree.
func Parse(src string) *Node { return ParseArena(src, nil) }

// ParseArena is Parse drawing tree memory from a (the ingest hot path's
// zero-alloc mode). The returned tree is valid until a.Reset.
func ParseArena(src string, a *Arena) *Node {
	doc := a.node()
	doc.Type = DocumentNode
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	z := Tokenizer{src: src, arena: a}
	if a != nil {
		// Loan the arena's staging buffer to the tokenizer (and reclaim
		// it at EOF) so it is allocated once per arena, not per parse.
		z.scratch = a.scratch[:0]
	}
	for {
		tok := z.Next()
		switch tok.Type {
		case ErrorToken:
			if a != nil {
				a.scratch = z.scratch
			}
			return doc
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" {
				continue
			}
			n := a.node()
			n.Type, n.Data = TextNode, tok.Data
			top().appendChild(n)
		case CommentToken:
			n := a.node()
			n.Type, n.Data = CommentNode, tok.Data
			top().appendChild(n)
		case DoctypeToken:
			// Ignored: the tree does not model doctypes.
		case SelfClosingTagToken:
			n := a.node()
			n.Type, n.Data, n.Attr = ElementNode, tok.Data, tok.Attr
			top().appendChild(n)
		case StartTagToken:
			// Apply implied end tags (e.g. <li> closes an open <li>).
			if implied, ok := impliedEndTags[tok.Data]; ok {
				for len(stack) > 1 {
					cur := top().Data
					closed := false
					for _, t := range implied {
						if cur == t {
							stack = stack[:len(stack)-1]
							closed = true
							break
						}
					}
					if !closed {
						break
					}
				}
			}
			el := a.node()
			el.Type, el.Data, el.Attr = ElementNode, tok.Data, tok.Attr
			top().appendChild(el)
			stack = append(stack, el)
		case EndTagToken:
			// Pop to the nearest matching open element; if none, ignore.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Data == tok.Data {
					stack = stack[:i]
					break
				}
			}
		}
	}
}
