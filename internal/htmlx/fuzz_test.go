package htmlx_test

import (
	"testing"

	"cafc/internal/htmlx"
	"cafc/internal/webgen"
)

// fuzzSeeds returns generated corpus pages plus hand-picked tag soup —
// the realistic and the adversarial ends of the input space.
func fuzzSeeds() []string {
	seeds := []string{
		"",
		"<html><body><p>plain</p></body></html>",
		"<form action=/s><input name=q><select><option>a</select></form>",
		"<a href='x.html'>link</a><a href=x>unquoted</a>",
		"<script>if (a < b) { x() }</script><p>after</p>",
		"<!DOCTYPE html><!-- comment --><title>t&amp;t</title>",
		"<b><i>unclosed<p>implied</b></i>",
		"<input value=\"&#x41;&unknown;&amp\">",
		"< notatag >< /, also=not>",
		"<textarea><p>not markup</textarea>",
	}
	c := webgen.Generate(webgen.Config{Seed: 5, FormPages: 6})
	for _, u := range c.FormPages {
		seeds = append(seeds, c.ByURL[u].HTML)
	}
	return seeds
}

// FuzzTokenize: the tokenizer must terminate, never panic, and emit a
// bounded token stream for arbitrary byte soup (the crawler feeds it
// whatever the web serves).
func FuzzTokenize(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		z := htmlx.NewTokenizer(src)
		// Every token consumes at least one input byte, so the stream
		// is bounded by len(src) plus slack for the final ErrorToken.
		max := len(src) + 2
		n := 0
		for {
			tok := z.Next()
			if tok.Type == htmlx.ErrorToken {
				break
			}
			if n++; n > max {
				t.Fatalf("tokenizer emitted > %d tokens for %d input bytes", max, len(src))
			}
		}

		// The tree builder over the same input must not panic either,
		// and derived extraction must be total.
		doc := htmlx.Parse(src)
		if doc == nil {
			t.Fatal("Parse returned nil")
		}
		_ = doc.Text()
		_ = htmlx.Title(doc)
		doc.Walk(func(n *htmlx.Node) bool { return true })

		// Entity escaping must round-trip through the tokenizer: text
		// escaped with EscapeText comes back as the same text.
		if src != "" {
			esc := htmlx.EscapeText(src)
			if got := htmlx.UnescapeEntities(esc); got != src {
				t.Errorf("EscapeText round trip: %q -> %q -> %q", src, esc, got)
			}
		}
	})
}
