package htmlx

import (
	"net/url"
	"strings"
)

// Link is a hyperlink found in a document.
type Link struct {
	// URL is the resolved absolute URL (when a base is supplied) or the
	// raw href otherwise.
	URL string
	// Anchor is the link's visible anchor text.
	Anchor string
}

// ExtractLinks returns the <a href> links in the tree rooted at n. If base
// is non-nil, relative hrefs are resolved against it and links that fail to
// parse are dropped; otherwise raw hrefs are returned. Fragment-only links
// and javascript:/mailto: schemes are skipped.
func ExtractLinks(n *Node, base *url.URL) []Link {
	var out []Link
	for _, a := range n.FindAll("a") {
		href := strings.TrimSpace(a.Attr0("href"))
		if href == "" || strings.HasPrefix(href, "#") {
			continue
		}
		low := strings.ToLower(href)
		if strings.HasPrefix(low, "javascript:") || strings.HasPrefix(low, "mailto:") {
			continue
		}
		resolved := href
		if base != nil {
			u, err := url.Parse(href)
			if err != nil {
				continue
			}
			abs := base.ResolveReference(u)
			abs.Fragment = ""
			resolved = abs.String()
		}
		out = append(out, Link{URL: resolved, Anchor: a.Text()})
	}
	return out
}

// Title returns the document title text, or "".
func Title(doc *Node) string {
	t := doc.Find("title")
	if t == nil {
		return ""
	}
	return t.Text()
}
