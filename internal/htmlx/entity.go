package htmlx

import (
	"strconv"
	"strings"
)

// namedEntities maps the HTML entity names that occur with any frequency on
// real form pages to their replacement text. The list is deliberately the
// common subset rather than the full HTML5 table: unknown entities are left
// verbatim, which is the forgiving behaviour browsers of the era exhibited.
var namedEntities = map[string]string{
	"amp":    "&",
	"lt":     "<",
	"gt":     ">",
	"quot":   `"`,
	"apos":   "'",
	"nbsp":   " ",
	"copy":   "©",
	"reg":    "®",
	"trade":  "™",
	"mdash":  "—",
	"ndash":  "–",
	"hellip": "…",
	"laquo":  "«",
	"raquo":  "»",
	"ldquo":  "“",
	"rdquo":  "”",
	"lsquo":  "‘",
	"rsquo":  "’",
	"middot": "·",
	"bull":   "•",
	"sect":   "§",
	"para":   "¶",
	"deg":    "°",
	"plusmn": "±",
	"frac12": "½",
	"times":  "×",
	"divide": "÷",
	"cent":   "¢",
	"pound":  "£",
	"euro":   "€",
	"yen":    "¥",
	"eacute": "é",
	"egrave": "è",
	"agrave": "à",
	"ccedil": "ç",
	"ntilde": "ñ",
	"ouml":   "ö",
	"uuml":   "ü",
	"auml":   "ä",
	"szlig":  "ß",
}

// UnescapeEntities decodes &name;, &#NNN; and &#xHHH; references in s.
// Unknown or malformed references are passed through unchanged.
func UnescapeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	i := amp
	for i < len(s) {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		rep, consumed := decodeEntity(s[i:])
		if consumed == 0 {
			b.WriteByte('&')
			i++
			continue
		}
		b.WriteString(rep)
		i += consumed
	}
	return b.String()
}

// decodeEntity decodes a single entity at the start of s (which begins with
// '&'). It returns the replacement and the number of bytes consumed, or
// ("", 0) if s does not start with a recognizable entity.
func decodeEntity(s string) (string, int) {
	// s[0] == '&'
	if len(s) < 3 {
		return "", 0
	}
	if s[1] == '#' {
		// Numeric reference.
		j := 2
		hex := false
		if j < len(s) && (s[j] == 'x' || s[j] == 'X') {
			hex = true
			j++
		}
		start := j
		for j < len(s) && isEntityDigit(s[j], hex) {
			j++
		}
		if j == start {
			return "", 0
		}
		base := 10
		if hex {
			base = 16
		}
		n, err := strconv.ParseInt(s[start:j], base, 32)
		if err != nil || n <= 0 || n > 0x10FFFF {
			return "", 0
		}
		consumed := j
		if j < len(s) && s[j] == ';' {
			consumed++
		}
		return string(rune(n)), consumed
	}
	// Named reference: letters/digits up to ';' (max 10 chars).
	j := 1
	for j < len(s) && j <= 10 && isAlnum(s[j]) {
		j++
	}
	name := s[1:j]
	rep, ok := namedEntities[strings.ToLower(name)]
	if !ok {
		return "", 0
	}
	consumed := j
	if j < len(s) && s[j] == ';' {
		consumed++
	}
	return rep, consumed
}

func isEntityDigit(c byte, hex bool) bool {
	if c >= '0' && c <= '9' {
		return true
	}
	if !hex {
		return false
	}
	return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func isAlnum(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

var (
	textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
)

// EscapeText escapes the characters that must not appear literally in HTML
// character data. It is the inverse-direction helper used by the synthetic
// web generator.
func EscapeText(s string) string {
	return textEscaper.Replace(s)
}

// EscapeAttr escapes a string for use inside a double-quoted attribute value.
func EscapeAttr(s string) string {
	return attrEscaper.Replace(s)
}
