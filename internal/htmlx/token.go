// Package htmlx implements a small, dependency-free HTML tokenizer and
// tree builder sufficient for extracting text, forms and links from
// real-world (frequently malformed) web pages.
//
// It is intentionally forgiving: unclosed tags, stray end tags, unquoted
// attributes, bare ampersands and other tag-soup constructs are accepted
// and repaired rather than rejected, because hidden-web form pages are
// written for browsers, not parsers.
package htmlx

import (
	"strings"
)

// TokenType identifies the kind of a Token.
type TokenType int

const (
	// ErrorToken is returned at end of input.
	ErrorToken TokenType = iota
	// TextToken is a run of character data.
	TextToken
	// StartTagToken is <name ...>.
	StartTagToken
	// EndTagToken is </name>.
	EndTagToken
	// SelfClosingTagToken is <name ... />.
	SelfClosingTagToken
	// CommentToken is <!-- ... -->.
	CommentToken
	// DoctypeToken is <!DOCTYPE ...>.
	DoctypeToken
)

// String returns a human-readable name for the token type.
func (t TokenType) String() string {
	switch t {
	case ErrorToken:
		return "Error"
	case TextToken:
		return "Text"
	case StartTagToken:
		return "StartTag"
	case EndTagToken:
		return "EndTag"
	case SelfClosingTagToken:
		return "SelfClosingTag"
	case CommentToken:
		return "Comment"
	case DoctypeToken:
		return "Doctype"
	}
	return "Unknown"
}

// Attribute is a single name="value" pair on a tag.
type Attribute struct {
	Key string
	Val string
}

// Token is a single lexical element of an HTML document.
type Token struct {
	Type TokenType
	// Data is the tag name for tag tokens (lower-cased), the text for
	// text tokens (entities decoded), or the comment body.
	Data string
	Attr []Attribute
}

// AttrVal returns the value of the named attribute (case-insensitive key)
// and whether it was present.
func (t *Token) AttrVal(key string) (string, bool) {
	for _, a := range t.Attr {
		if strings.EqualFold(a.Key, key) {
			return a.Val, true
		}
	}
	return "", false
}

// rawTextTags are elements whose content is raw text until the matching
// close tag (no nested markup).
var rawTextTags = map[string]bool{
	"script":   true,
	"style":    true,
	"textarea": true,
	"title":    false, // title may contain entities but not tags; handled normally
}

// Tokenizer splits an HTML byte stream into Tokens.
type Tokenizer struct {
	src string
	pos int
	// pendingRawText holds the element name whose raw text we must
	// consume next (script/style/textarea).
	pendingRawText string
	// arena, when set, backs the attribute lists of emitted tokens;
	// scratch stages the attributes of the tag being tokenized.
	arena   *Arena
	scratch []Attribute
}

// NewTokenizer returns a Tokenizer reading from src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token. After ErrorToken the tokenizer is exhausted.
func (z *Tokenizer) Next() Token {
	if z.pendingRawText != "" {
		return z.rawText()
	}
	if z.pos >= len(z.src) {
		return Token{Type: ErrorToken}
	}
	if z.src[z.pos] == '<' {
		return z.tag()
	}
	return z.text()
}

// rawText consumes everything up to the close tag of pendingRawText.
func (z *Tokenizer) rawText() Token {
	name := z.pendingRawText
	z.pendingRawText = ""
	closeTag := "</" + name
	rest := z.src[z.pos:]
	idx := indexFold(rest, closeTag)
	if idx < 0 {
		z.pos = len(z.src)
		if rest == "" {
			return Token{Type: ErrorToken}
		}
		return Token{Type: TextToken, Data: rest}
	}
	if idx == 0 {
		// Immediately at the close tag; fall through to tag parsing.
		return z.tag()
	}
	text := rest[:idx]
	z.pos += idx
	return Token{Type: TextToken, Data: text}
}

// text consumes character data up to the next '<'.
func (z *Tokenizer) text() Token {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Data: UnescapeEntities(z.src[start:z.pos])}
}

// tag consumes a markup construct starting at '<'.
func (z *Tokenizer) tag() Token {
	// z.src[z.pos] == '<'
	if z.pos+1 >= len(z.src) {
		z.pos = len(z.src)
		return Token{Type: TextToken, Data: "<"}
	}
	c := z.src[z.pos+1]
	switch {
	case c == '!':
		return z.bangTag()
	case c == '?':
		// Processing instruction: skip to '>'.
		end := strings.IndexByte(z.src[z.pos:], '>')
		if end < 0 {
			z.pos = len(z.src)
			return Token{Type: ErrorToken}
		}
		z.pos += end + 1
		return z.Next()
	case c == '/':
		return z.endTag()
	case isTagNameStart(c):
		return z.startTag()
	default:
		// A bare '<' followed by non-name: treat as text.
		start := z.pos
		z.pos++
		for z.pos < len(z.src) && z.src[z.pos] != '<' {
			z.pos++
		}
		return Token{Type: TextToken, Data: UnescapeEntities(z.src[start:z.pos])}
	}
}

// bangTag handles <!-- comments --> and <!DOCTYPE>.
func (z *Tokenizer) bangTag() Token {
	rest := z.src[z.pos:]
	if strings.HasPrefix(rest, "<!--") {
		end := strings.Index(rest[4:], "-->")
		if end < 0 {
			z.pos = len(z.src)
			return Token{Type: CommentToken, Data: rest[4:]}
		}
		body := rest[4 : 4+end]
		z.pos += 4 + end + 3
		return Token{Type: CommentToken, Data: body}
	}
	end := strings.IndexByte(rest, '>')
	if end < 0 {
		z.pos = len(z.src)
		return Token{Type: ErrorToken}
	}
	body := rest[2:end]
	z.pos += end + 1
	if len(body) >= 7 && strings.EqualFold(body[:7], "doctype") {
		return Token{Type: DoctypeToken, Data: strings.TrimSpace(body[7:])}
	}
	// Unknown <! ...> construct (e.g. CDATA) — skip it.
	return z.Next()
}

// endTag handles </name ...>.
func (z *Tokenizer) endTag() Token {
	i := z.pos + 2
	start := i
	for i < len(z.src) && isTagNameChar(z.src[i]) {
		i++
	}
	name := strings.ToLower(z.src[start:i])
	// Skip to '>'.
	for i < len(z.src) && z.src[i] != '>' {
		i++
	}
	if i < len(z.src) {
		i++
	}
	z.pos = i
	if name == "" {
		// "</>" — ignore.
		return z.Next()
	}
	return Token{Type: EndTagToken, Data: name}
}

// startTag handles <name attr=val ...> and <name ... />.
func (z *Tokenizer) startTag() Token {
	i := z.pos + 1
	start := i
	for i < len(z.src) && isTagNameChar(z.src[i]) {
		i++
	}
	name := strings.ToLower(z.src[start:i])
	tok := Token{Type: StartTagToken, Data: name}
	// Parse attributes, staged in the reusable scratch buffer and copied
	// into the arena (or an exact-size heap slice) once the tag is done.
	attrs := z.scratch[:0]
	for {
		for i < len(z.src) && isSpace(z.src[i]) {
			i++
		}
		if i >= len(z.src) {
			break
		}
		if z.src[i] == '>' {
			i++
			break
		}
		if z.src[i] == '/' {
			// Possible self-close.
			j := i + 1
			for j < len(z.src) && isSpace(z.src[j]) {
				j++
			}
			if j < len(z.src) && z.src[j] == '>' {
				tok.Type = SelfClosingTagToken
				i = j + 1
				break
			}
			i++ // stray slash
			continue
		}
		// Attribute name.
		aStart := i
		for i < len(z.src) && !isSpace(z.src[i]) && z.src[i] != '=' && z.src[i] != '>' && z.src[i] != '/' {
			i++
		}
		key := strings.ToLower(z.src[aStart:i])
		val := ""
		for i < len(z.src) && isSpace(z.src[i]) {
			i++
		}
		if i < len(z.src) && z.src[i] == '=' {
			i++
			for i < len(z.src) && isSpace(z.src[i]) {
				i++
			}
			if i < len(z.src) && (z.src[i] == '"' || z.src[i] == '\'') {
				quote := z.src[i]
				i++
				vStart := i
				for i < len(z.src) && z.src[i] != quote {
					i++
				}
				val = z.src[vStart:i]
				if i < len(z.src) {
					i++
				}
			} else {
				vStart := i
				for i < len(z.src) && !isSpace(z.src[i]) && z.src[i] != '>' {
					i++
				}
				val = z.src[vStart:i]
			}
		}
		if key != "" {
			attrs = append(attrs, Attribute{Key: key, Val: UnescapeEntities(val)})
		}
	}
	z.scratch = attrs
	tok.Attr = z.arena.copyAttrs(attrs)
	z.pos = i
	if tok.Type == StartTagToken && rawTextTags[name] {
		z.pendingRawText = name
	}
	if voidElements[name] && tok.Type == StartTagToken {
		tok.Type = SelfClosingTagToken
	}
	return tok
}

// voidElements never have closing tags in HTML.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isTagNameStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isTagNameChar(c byte) bool {
	return isTagNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == ':'
}

// indexFold is a case-insensitive strings.Index for ASCII needles.
func indexFold(s, needle string) int {
	n := len(needle)
	if n == 0 {
		return 0
	}
	for i := 0; i+n <= len(s); i++ {
		if equalFoldASCII(s[i:i+n], needle) {
			return i
		}
	}
	return -1
}

func equalFoldASCII(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
