package htmlx

import (
	"strings"
	"testing"
)

// collect drains the tokenizer into a slice for assertions.
func collect(t *testing.T, src string) []Token {
	t.Helper()
	z := NewTokenizer(src)
	var out []Token
	for i := 0; i < 10000; i++ {
		tok := z.Next()
		if tok.Type == ErrorToken {
			return out
		}
		out = append(out, tok)
	}
	t.Fatal("tokenizer did not terminate")
	return nil
}

func TestTokenizeSimple(t *testing.T) {
	toks := collect(t, `<p>hello</p>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3: %+v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Data != "p" {
		t.Errorf("tok0 = %+v, want StartTag p", toks[0])
	}
	if toks[1].Type != TextToken || toks[1].Data != "hello" {
		t.Errorf("tok1 = %+v, want Text hello", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "p" {
		t.Errorf("tok2 = %+v, want EndTag p", toks[2])
	}
}

func TestTokenizeAttributes(t *testing.T) {
	toks := collect(t, `<input type="text" NAME=keyword value='a b' disabled>`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens, want 1", len(toks))
	}
	tok := toks[0]
	if tok.Type != SelfClosingTagToken { // input is void
		t.Errorf("type = %v, want SelfClosingTag", tok.Type)
	}
	cases := map[string]string{"type": "text", "name": "keyword", "value": "a b", "disabled": ""}
	for k, want := range cases {
		got, ok := tok.AttrVal(k)
		if !ok {
			t.Errorf("attr %q missing", k)
			continue
		}
		if got != want {
			t.Errorf("attr %q = %q, want %q", k, got, want)
		}
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := collect(t, `<br/><img src="x.gif" />`)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2", len(toks))
	}
	for _, tok := range toks {
		if tok.Type != SelfClosingTagToken {
			t.Errorf("%s: type = %v, want SelfClosingTag", tok.Data, tok.Type)
		}
	}
}

func TestTokenizeComment(t *testing.T) {
	toks := collect(t, `a<!-- hidden <b> -->b`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3: %+v", len(toks), toks)
	}
	if toks[1].Type != CommentToken || toks[1].Data != " hidden <b> " {
		t.Errorf("comment = %+v", toks[1])
	}
}

func TestTokenizeDoctype(t *testing.T) {
	toks := collect(t, `<!DOCTYPE html><html></html>`)
	if toks[0].Type != DoctypeToken {
		t.Fatalf("tok0 = %+v, want Doctype", toks[0])
	}
	if !strings.EqualFold(toks[0].Data, "html") {
		t.Errorf("doctype data = %q", toks[0].Data)
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	toks := collect(t, `<script>if (a < b) { x("<p>"); }</script>after`)
	if len(toks) != 4 {
		t.Fatalf("got %d tokens, want 4: %+v", len(toks), toks)
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, `x("<p>")`) {
		t.Errorf("script body = %+v", toks[1])
	}
	if toks[3].Data != "after" {
		t.Errorf("trailing text = %+v", toks[3])
	}
}

func TestTokenizeTextareaRawText(t *testing.T) {
	toks := collect(t, `<textarea><b>not markup</b></textarea>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if toks[1].Data != "<b>not markup</b>" {
		t.Errorf("textarea body = %q", toks[1].Data)
	}
}

func TestTokenizeEntitiesInText(t *testing.T) {
	toks := collect(t, `Fish &amp; Chips &lt;3 &#65;&#x42;`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	if toks[0].Data != "Fish & Chips <3 AB" {
		t.Errorf("text = %q", toks[0].Data)
	}
}

func TestTokenizeBareAmpersand(t *testing.T) {
	toks := collect(t, `AT&T and R&D`)
	if toks[0].Data != "AT&T and R&D" {
		t.Errorf("text = %q", toks[0].Data)
	}
}

func TestTokenizeUnterminatedTag(t *testing.T) {
	toks := collect(t, `<input type=text`)
	if len(toks) != 1 || toks[0].Data != "input" {
		t.Fatalf("got %+v", toks)
	}
	if v, _ := toks[0].AttrVal("type"); v != "text" {
		t.Errorf("type attr = %q", v)
	}
}

func TestTokenizeStrayLessThan(t *testing.T) {
	toks := collect(t, `price < 100 dollars`)
	var text strings.Builder
	for _, tok := range toks {
		if tok.Type == TextToken {
			text.WriteString(tok.Data)
		}
	}
	if !strings.Contains(text.String(), "100 dollars") {
		t.Errorf("text lost: %q", text.String())
	}
}

func TestTokenizeEmpty(t *testing.T) {
	toks := collect(t, "")
	if len(toks) != 0 {
		t.Errorf("got %d tokens from empty input", len(toks))
	}
}

func TestTokenizeProcessingInstruction(t *testing.T) {
	toks := collect(t, `<?xml version="1.0"?><p>x</p>`)
	if len(toks) != 3 || toks[0].Data != "p" {
		t.Fatalf("got %+v", toks)
	}
}

func TestUnescapeEntities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"&amp;", "&"},
		{"&amp", "&"},
		{"&AMP;", "&"},
		{"&nbsp;x", " x"},
		{"&#97;", "a"},
		{"&#x61;", "a"},
		{"&#X61;", "a"},
		{"&unknown;", "&unknown;"},
		{"&;", "&;"},
		{"&", "&"},
		{"&#;", "&#;"},
		{"a&lt;b&gt;c", "a<b>c"},
		{"&copy; 2006", "© 2006"},
		{"&#0;", "&#0;"},             // NUL rejected
		{"&#1114112;", "&#1114112;"}, // beyond Unicode rejected
	}
	for _, c := range cases {
		if got := UnescapeEntities(c.in); got != c.want {
			t.Errorf("UnescapeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	in := `a < b & "c" > d`
	if got := UnescapeEntities(EscapeText(in)); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
	if got := UnescapeEntities(EscapeAttr(in)); got != in {
		t.Errorf("attr round trip = %q, want %q", got, in)
	}
}

func TestTokenTypeString(t *testing.T) {
	names := map[TokenType]string{
		ErrorToken: "Error", TextToken: "Text", StartTagToken: "StartTag",
		EndTagToken: "EndTag", SelfClosingTagToken: "SelfClosingTag",
		CommentToken: "Comment", DoctypeToken: "Doctype", TokenType(99): "Unknown",
	}
	for tt, want := range names {
		if tt.String() != want {
			t.Errorf("%d.String() = %q, want %q", tt, tt.String(), want)
		}
	}
}
