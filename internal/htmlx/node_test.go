package htmlx

import (
	"net/url"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicTree(t *testing.T) {
	doc := Parse(`<html><body><p>one</p><p>two</p></body></html>`)
	ps := doc.FindAll("p")
	if len(ps) != 2 {
		t.Fatalf("got %d <p>, want 2", len(ps))
	}
	if ps[0].Text() != "one" || ps[1].Text() != "two" {
		t.Errorf("texts = %q, %q", ps[0].Text(), ps[1].Text())
	}
	body := doc.Find("body")
	if body == nil || body.Parent == nil || body.Parent.Data != "html" {
		t.Error("body parent chain broken")
	}
}

func TestParseImpliedLiClose(t *testing.T) {
	doc := Parse(`<ul><li>a<li>b<li>c</ul>`)
	lis := doc.FindAll("li")
	if len(lis) != 3 {
		t.Fatalf("got %d <li>, want 3", len(lis))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got := lis[i].Text(); got != want {
			t.Errorf("li[%d] = %q, want %q", i, got, want)
		}
	}
	// They must be siblings, not nested.
	if lis[1].Parent != lis[0].Parent {
		t.Error("li elements nested instead of siblings")
	}
}

func TestParseImpliedOptionClose(t *testing.T) {
	doc := Parse(`<select><option>CA<option>NY<option>UT</select>`)
	opts := doc.FindAll("option")
	if len(opts) != 3 {
		t.Fatalf("got %d options, want 3", len(opts))
	}
	if opts[2].Text() != "UT" {
		t.Errorf("opt2 = %q", opts[2].Text())
	}
}

func TestParseTableCells(t *testing.T) {
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	if got := len(doc.FindAll("tr")); got != 2 {
		t.Errorf("rows = %d, want 2", got)
	}
	if got := len(doc.FindAll("td")); got != 3 {
		t.Errorf("cells = %d, want 3", got)
	}
}

func TestParseStrayEndTag(t *testing.T) {
	doc := Parse(`</div><p>ok</p></p>`)
	if doc.Find("p") == nil {
		t.Fatal("p lost after stray end tags")
	}
	if doc.Find("p").Text() != "ok" {
		t.Errorf("text = %q", doc.Find("p").Text())
	}
}

func TestParseUnclosedNesting(t *testing.T) {
	doc := Parse(`<div><form><input name=q><div>inner`)
	form := doc.Find("form")
	if form == nil {
		t.Fatal("form missing")
	}
	if form.Find("input") == nil {
		t.Error("input not inside form")
	}
}

func TestTextExcludesScriptAndStyle(t *testing.T) {
	doc := Parse(`<body>visible<script>var x = "hidden";</script><style>.a{}</style> more</body>`)
	text := doc.Text()
	if strings.Contains(text, "hidden") || strings.Contains(text, ".a{}") {
		t.Errorf("script/style leaked into text: %q", text)
	}
	if text != "visible more" {
		t.Errorf("text = %q, want %q", text, "visible more")
	}
}

func TestTextCollapsesWhitespace(t *testing.T) {
	doc := Parse("<p>a\n\n  b\t c</p>")
	if got := doc.Text(); got != "a b c" {
		t.Errorf("text = %q", got)
	}
}

func TestCollapseSpace(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"   ", ""},
		{"a", "a"},
		{"  a  b  ", "a b"},
		{"a\r\nb", "a b"},
	}
	for _, c := range cases {
		if got := CollapseSpace(c.in); got != c.want {
			t.Errorf("CollapseSpace(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTitle(t *testing.T) {
	doc := Parse(`<html><head><title>Cheap Flights &amp; Hotels</title></head></html>`)
	if got := Title(doc); got != "Cheap Flights & Hotels" {
		t.Errorf("title = %q", got)
	}
	if got := Title(Parse(`<p>no title</p>`)); got != "" {
		t.Errorf("title of untitled doc = %q", got)
	}
}

func TestExtractLinks(t *testing.T) {
	base, _ := url.Parse("http://site.example/dir/page.html")
	doc := Parse(`<a href="/abs">Abs</a>
		<a href="rel.html">Rel</a>
		<a href="http://other.example/x">Other</a>
		<a href="#frag">Frag</a>
		<a href="javascript:void(0)">JS</a>
		<a href="mailto:a@b.c">Mail</a>
		<a>NoHref</a>`)
	links := ExtractLinks(doc, base)
	if len(links) != 3 {
		t.Fatalf("got %d links, want 3: %+v", len(links), links)
	}
	want := []string{
		"http://site.example/abs",
		"http://site.example/dir/rel.html",
		"http://other.example/x",
	}
	for i, w := range want {
		if links[i].URL != w {
			t.Errorf("link[%d] = %q, want %q", i, links[i].URL, w)
		}
	}
	if links[0].Anchor != "Abs" {
		t.Errorf("anchor = %q", links[0].Anchor)
	}
}

func TestExtractLinksNoBase(t *testing.T) {
	doc := Parse(`<a href="rel.html">x</a>`)
	links := ExtractLinks(doc, nil)
	if len(links) != 1 || links[0].URL != "rel.html" {
		t.Fatalf("got %+v", links)
	}
}

func TestWalkPruning(t *testing.T) {
	doc := Parse(`<div id="skip"><p>inner</p></div><p>outer</p>`)
	var visited []string
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			visited = append(visited, n.Data)
			if n.Attr0("id") == "skip" {
				return false
			}
		}
		return true
	})
	for _, v := range visited {
		if v == "p" && len(visited) < 3 {
			// ok: outer p only
		}
	}
	// The pruned div's inner <p> must not be visited; outer <p> must be.
	count := 0
	for _, v := range visited {
		if v == "p" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("visited %d <p>, want 1 (subtree pruning failed)", count)
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		_ = doc.Text()
		_ = doc.FindAll("form")
		return doc != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseAdversarialSnippets(t *testing.T) {
	snippets := []string{
		"", "<", "<>", "< >", "</", "</>", "<!", "<!-", "<!--", "<!-- x",
		"<a", "<a ", "<a href", "<a href=", `<a href="`, "<a href='x",
		"<p><p><p>", "</p></p>", "<script>", "<script>x", "<textarea>",
		"<input/><input /", "&", "&#", "&#x", "a<b>c</d>e", "<B><I>x</B></I>",
		"<form action=search method=get><input type=submit>",
	}
	for _, s := range snippets {
		doc := Parse(s)
		if doc == nil {
			t.Errorf("Parse(%q) returned nil", s)
		}
		_ = doc.Text()
	}
}

func TestAttr0Missing(t *testing.T) {
	n := &Node{Type: ElementNode, Data: "a"}
	if n.Attr0("href") != "" {
		t.Error("Attr0 on missing attribute should be empty")
	}
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 60; i++ {
		sb.WriteString(`<div class="row"><a href="/x">Link text</a><p>Some paragraph with &amp; entities and <b>markup</b>.</p></div>`)
	}
	sb.WriteString(`<form action="/q"><select name="s"><option>A</option><option>B</option></select><input type="submit" value="Go"></form>`)
	src := sb.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(src)
	}
}
