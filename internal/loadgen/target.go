package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"cafc"
)

// LiveTarget drives an in-process cafc.Live — the zero-network
// harness benchall uses, measuring the serving paths themselves.
type LiveTarget struct {
	Live *cafc.Live
}

func (t LiveTarget) Classify(d cafc.Document) error {
	e := t.Live.Epoch()
	if e == nil {
		return errors.New("loadgen: cold directory")
	}
	_, _, err := e.Classify(d)
	return err
}

// Ingest retries through backpressure: ErrBacklog means the bounded
// queue is momentarily full, and the single ingest lane must not drop
// documents (the reproducibility of the grown corpus depends on every
// pool document landing, in order).
func (t LiveTarget) Ingest(d cafc.Document) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := t.Live.Ingest(d)
		if err == nil || !errors.Is(err, cafc.ErrBacklog) {
			return err
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func (t LiveTarget) Browse() error {
	e := t.Live.Epoch()
	if e == nil {
		return errors.New("loadgen: cold directory")
	}
	// A front-page render touches every cluster's label and size; do the
	// equivalent amount of reading.
	n := 0
	for _, c := range e.Clustering.Clusters {
		n += len(c)
	}
	if n == 0 && len(e.Clustering.Clusters) > 0 {
		return errors.New("loadgen: empty clustering")
	}
	return nil
}

// Search runs one ranked query against the current epoch's index.
func (t LiveTarget) Search(q string) error {
	_, _, err := t.Live.Search(q, 0)
	return err
}

// HTTPTarget drives a running directoryd over HTTP.
type HTTPTarget struct {
	Base   string // e.g. "http://127.0.0.1:8080"
	Client *http.Client
}

func (t HTTPTarget) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

type docPayload struct {
	URL  string `json:"url"`
	HTML string `json:"html"`
}

func (t HTTPTarget) post(path string, d cafc.Document) (int, error) {
	body, err := json.Marshal(docPayload{URL: d.URL, HTML: d.HTML})
	if err != nil {
		return 0, err
	}
	resp, err := t.client().Post(t.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func (t HTTPTarget) Classify(d cafc.Document) error {
	code, err := t.post("/classify", d)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("loadgen: POST /classify = %d", code)
	}
	return nil
}

// Ingest retries 429 (backpressure) like the in-process target retries
// ErrBacklog; any other non-2xx is an error.
func (t HTTPTarget) Ingest(d cafc.Document) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, err := t.post("/ingest", d)
		if err != nil {
			return err
		}
		if code == http.StatusAccepted || code == http.StatusOK {
			return nil
		}
		if code != http.StatusTooManyRequests || time.Now().After(deadline) {
			return fmt.Errorf("loadgen: POST /ingest = %d", code)
		}
		time.Sleep(time.Millisecond)
	}
}

func (t HTTPTarget) Browse() error {
	resp, err := t.client().Get(t.Base + "/")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: GET / = %d", resp.StatusCode)
	}
	return nil
}

func (t HTTPTarget) Search(q string) error {
	resp, err := t.client().Get(t.Base + "/search?q=" + url.QueryEscape(q))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: GET /search = %d", resp.StatusCode)
	}
	return nil
}

// MultiTarget drives a replicated directory: writes go to the leader
// (the single WAL owner), reads round-robin across the reader pool —
// the same split a -role=router deployment makes. With an empty pool
// the leader serves reads too, so a MultiTarget over a single replica
// degenerates to that replica.
type MultiTarget struct {
	Leader  Target
	Readers []Target

	next atomic.Uint64
}

// reader returns the next read target, round-robin.
func (t *MultiTarget) reader() Target {
	if len(t.Readers) == 0 {
		return t.Leader
	}
	return t.Readers[int(t.next.Add(1))%len(t.Readers)]
}

func (t *MultiTarget) Classify(d cafc.Document) error { return t.reader().Classify(d) }
func (t *MultiTarget) Ingest(d cafc.Document) error   { return t.Leader.Ingest(d) }
func (t *MultiTarget) Browse() error                  { return t.reader().Browse() }
func (t *MultiTarget) Search(q string) error          { return t.reader().Search(q) }
