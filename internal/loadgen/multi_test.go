package loadgen

import (
	"context"
	"reflect"
	"testing"
	"time"

	"cafc"
	"cafc/internal/repl"
)

// TestMultiTargetRouting pins the traffic split on stubs: every write
// goes to the leader and only the leader; reads round-robin across the
// reader pool and never fall back to the leader while readers exist.
func TestMultiTargetRouting(t *testing.T) {
	leader := newFakeTarget()
	r1, r2 := newFakeTarget(), newFakeTarget()
	tgt := &MultiTarget{Leader: leader, Readers: []Target{r1, r2}}

	for _, d := range docs("p", 10) {
		if err := tgt.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range docs("c", 8) {
		if err := tgt.Classify(d); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := tgt.Browse(); err != nil {
				t.Fatal(err)
			}
		}
	}

	if len(leader.ingested) != 10 || len(r1.ingested) != 0 || len(r2.ingested) != 0 {
		t.Fatalf("ingests landed %d/%d/%d across leader/r1/r2, want 10/0/0",
			len(leader.ingested), len(r1.ingested), len(r2.ingested))
	}
	if len(leader.classify) != 0 || leader.browses != 0 {
		t.Fatalf("leader served reads (%d classifies, %d browses) with readers available",
			len(leader.classify), leader.browses)
	}
	c1, c2 := 0, 0
	for _, n := range r1.classify {
		c1 += n
	}
	for _, n := range r2.classify {
		c2 += n
	}
	if c1 != 4 || c2 != 4 {
		t.Fatalf("classify split %d/%d, want 4/4 round-robin", c1, c2)
	}
	if r1.browses+r2.browses != 4 {
		t.Fatalf("browses = %d+%d, want 4 total", r1.browses, r2.browses)
	}

	// With no readers the leader serves reads — a single-replica
	// deployment degenerates cleanly.
	solo := &MultiTarget{Leader: leader}
	if err := solo.Classify(docs("c", 1)[0]); err != nil {
		t.Fatal(err)
	}
	if len(leader.classify) == 0 {
		t.Fatal("leader-only MultiTarget dropped the read")
	}
}

// TestMultiTargetReplicatedRunReproducible is the replicated workload
// pin: a seeded mixed workload against a leader + follower pair, reads
// on the follower, writes on the leader, run twice from scratch — the
// final quality block is bit-identical between runs, and the follower
// ends on the leader's exact epoch both times.
func TestMultiTargetReplicatedRunReproducible(t *testing.T) {
	const seed = 17
	fx := NewFixture(seed, 48)

	run := func() (cafc.QualitySnapshot, int64) {
		t.Helper()
		ldir, fdir := t.TempDir(), t.TempDir()
		corpus, err := cafc.NewCorpus(fx.Genesis)
		if err != nil {
			t.Fatal(err)
		}
		cl := corpus.ClusterC(4, seed)
		// A large flush interval makes record boundaries a pure function
		// of the ingest sequence (flush on full batch or drain, never on
		// a timer), so the epoch history — and with it every quality
		// number including centroid churn — is run-to-run deterministic.
		leader, err := cafc.NewLive(corpus, fx.Genesis, cl, cafc.LiveConfig{
			K: 4, Seed: seed, BatchSize: 8, FlushInterval: time.Hour,
			Dir:     ldir,
			Quality: &cafc.QualityConfig{Labels: fx.Labels, Seed: seed},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer leader.Close()

		ctx := context.Background()
		if err := repl.Bootstrap(ctx, repl.DirSource{Dir: ldir}, fdir); err != nil {
			t.Fatal(err)
		}
		follower, err := cafc.RecoverFollower(cafc.LiveConfig{K: 4, Seed: seed, Dir: fdir})
		if err != nil {
			t.Fatal(err)
		}
		defer follower.Close()
		tail := &repl.Tailer{Source: repl.DirSource{Dir: ldir}, Target: follower}
		if err := tail.Sync(ctx); err != nil {
			t.Fatal(err)
		}

		tgt := &MultiTarget{
			Leader:  LiveTarget{Live: leader},
			Readers: []Target{LiveTarget{Live: follower}},
		}
		rep, err := Run(ctx, Config{Seed: seed, QPS: 100000, Ops: 300}, tgt, fx.Genesis, fx.Pool)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Endpoints["classify"].Errors != 0 || rep.Endpoints["browse"].Errors != 0 {
			t.Fatalf("follower reads failed: %+v", rep.Endpoints)
		}
		if rep.Endpoints["ingest"].Errors != 0 {
			t.Fatalf("leader writes failed: %+v", rep.Endpoints)
		}

		// Quiesce the leader (flushing the partial batch), land the final
		// deterministic re-cluster, then tail the follower to parity.
		drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		if err := leader.Drain(drainCtx); err != nil {
			t.Fatal(err)
		}
		snap, ok := leader.Quality()
		if !ok {
			t.Fatal("leader quality block missing")
		}
		if err := tail.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		if got, want := follower.AppliedEpoch(), leader.Status().Epoch; got != want {
			t.Fatalf("follower converged to epoch %d, leader at %d", got, want)
		}
		if !reflect.DeepEqual(follower.Epoch().Clustering.Assign, leader.Epoch().Clustering.Assign) {
			t.Fatal("follower assignment differs from leader after final sync")
		}
		snap.Time = time.Time{} // wall-clock stamp is the one non-deterministic field
		return snap, follower.AppliedEpoch()
	}

	q1, e1 := run()
	q2, e2 := run()
	if e1 != e2 {
		t.Fatalf("final epochs differ across runs: %d vs %d", e1, e2)
	}
	if !reflect.DeepEqual(q1, q2) {
		t.Fatalf("final quality block not reproducible at fixed seed:\n run1: %+v\n run2: %+v", q1, q2)
	}
	if q1.Pages < len(fx.Genesis) {
		t.Fatalf("quality block covers %d pages, want at least the genesis %d", q1.Pages, len(fx.Genesis))
	}
	if q1.Labeled == 0 || q1.K != 4 {
		t.Fatalf("quality block incomplete: %+v", q1)
	}
}
