// Package loadgen drives a seeded mixed workload — classify, ingest,
// browse, search — against a live directory at a target rate and reports
// per-endpoint latency quantiles. It is the measurement half of the
// directory-health story: the quality monitor says whether the
// clustering is holding up, loadgen says whether the serving path is.
//
// Pacing is open-loop: operation i is due at start + i/QPS regardless
// of how long earlier operations took, so a slow server accumulates
// in-flight work (bounded by MaxInFlight) instead of silently slowing
// the offered rate the way closed-loop drivers do. The operation-type
// sequence is drawn from a seeded RNG, and ingest consumes its document
// pool strictly in order through a single worker — so for a fixed seed
// and pool, the set and order of ingested documents is reproducible no
// matter how the latencies fell.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"cafc"
	"cafc/internal/obs"
)

// Target is the surface loadgen drives. Implementations must be safe
// for concurrent calls (Ingest is only ever called from one goroutine).
type Target interface {
	// Classify asks the directory to place one document.
	Classify(d cafc.Document) error
	// Ingest feeds one document into the directory.
	Ingest(d cafc.Document) error
	// Browse performs one read-side directory access.
	Browse() error
	// Search runs one ranked retrieval query.
	Search(q string) error
}

// Mix weighs the operation types. Zero-value mixes select the default
// 70% classify / 20% ingest / 10% browse (no search — search load is
// opt-in because it needs a query pool).
type Mix struct {
	Classify float64
	Ingest   float64
	Browse   float64
	Search   float64
}

func (m Mix) orDefault() Mix {
	if m.Classify == 0 && m.Ingest == 0 && m.Browse == 0 && m.Search == 0 {
		return Mix{Classify: 0.7, Ingest: 0.2, Browse: 0.1}
	}
	return m
}

// Config configures a run. Zero values select the defaults noted per
// field.
type Config struct {
	// Seed drives the operation-type sequence and classify-document
	// choice.
	Seed int64
	// QPS is the offered rate (0 = 200).
	QPS float64
	// Ops is the total number of operations to issue (0 = 1000).
	Ops int
	// Duration, when non-zero, stops issuing after this much wall time
	// even if Ops have not all been sent.
	Duration time.Duration
	// Mix weighs the operation types (zero = 70/20/10
	// classify/ingest/browse).
	Mix Mix
	// MaxInFlight bounds concurrent classify/browse/search operations
	// (0 = 64).
	MaxInFlight int
	// Queries is the pool search operations draw from (uniformly,
	// seeded). Required when Mix.Search > 0.
	Queries []string
	// Metrics, when non-nil, additionally records latencies as
	// loadgen_latency_seconds{endpoint=...} histograms.
	Metrics *obs.Registry
}

// EndpointStats is one endpoint's latency summary, milliseconds.
type EndpointStats struct {
	Ops    int     `json:"ops"`
	Errors int     `json:"errors"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Report is a finished run: offered vs achieved rate plus per-endpoint
// stats. Endpoint keys are "classify", "ingest", "browse" and "search".
type Report struct {
	Seed            int64                    `json:"seed"`
	TargetQPS       float64                  `json:"target_qps"`
	AchievedQPS     float64                  `json:"achieved_qps"`
	DurationSeconds float64                  `json:"duration_seconds"`
	Ops             int                      `json:"ops"`
	Ingested        int                      `json:"ingested"`
	Endpoints       map[string]EndpointStats `json:"endpoints"`
}

// recorder accumulates raw latencies per endpoint; quantiles are exact
// (sorted raw samples), not bucket-interpolated — the sample counts are
// small enough that keeping them all is cheaper than being wrong at p99.
type recorder struct {
	mu   sync.Mutex
	lat  map[string][]float64 // seconds
	errs map[string]int
	reg  *obs.Registry
}

func newRecorder(reg *obs.Registry) *recorder {
	return &recorder{lat: make(map[string][]float64), errs: make(map[string]int), reg: reg}
}

func (r *recorder) observe(endpoint string, d time.Duration, err error) {
	sec := d.Seconds()
	r.mu.Lock()
	r.lat[endpoint] = append(r.lat[endpoint], sec)
	if err != nil {
		r.errs[endpoint]++
	}
	r.mu.Unlock()
	if r.reg != nil {
		r.reg.Histogram("loadgen_latency_seconds", obs.DurationBuckets, "endpoint", endpoint).Observe(sec)
		if err != nil {
			r.reg.Counter("loadgen_errors_total", "endpoint", endpoint).Inc()
		}
	}
}

// quantile is the nearest-rank quantile of an ascending-sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (r *recorder) stats() map[string]EndpointStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]EndpointStats, len(r.lat))
	for ep, lat := range r.lat {
		sorted := append([]float64(nil), lat...)
		sort.Float64s(sorted)
		var sum float64
		for _, v := range sorted {
			sum += v
		}
		out[ep] = EndpointStats{
			Ops:    len(sorted),
			Errors: r.errs[ep],
			MeanMS: sum / float64(len(sorted)) * 1000,
			P50MS:  quantile(sorted, 0.50) * 1000,
			P95MS:  quantile(sorted, 0.95) * 1000,
			P99MS:  quantile(sorted, 0.99) * 1000,
		}
	}
	return out
}

type opKind int

const (
	opClassify opKind = iota
	opIngest
	opBrowse
	opSearch
)

// Run drives the workload: classifyDocs is the pool classify operations
// draw from (uniformly, seeded), pool is the ordered document sequence
// ingest operations consume (when it runs dry, further ingest draws
// degrade to classifies). Returns the report; ctx cancellation stops
// issuing early.
func Run(ctx context.Context, cfg Config, tgt Target, classifyDocs, pool []cafc.Document) (Report, error) {
	if len(classifyDocs) == 0 {
		return Report{}, fmt.Errorf("loadgen: classifyDocs must not be empty")
	}
	qps := cfg.QPS
	if qps <= 0 {
		qps = 200
	}
	ops := cfg.Ops
	if ops <= 0 {
		ops = 1000
	}
	inflight := cfg.MaxInFlight
	if inflight <= 0 {
		inflight = 64
	}
	mix := cfg.Mix.orDefault()
	if mix.Search > 0 && len(cfg.Queries) == 0 {
		return Report{}, fmt.Errorf("loadgen: Mix.Search > 0 needs a non-empty Queries pool")
	}
	totalW := mix.Classify + mix.Ingest + mix.Browse + mix.Search
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	rec := newRecorder(cfg.Metrics)

	// The ingest lane: a single worker consumes docs in pool order, so
	// the corpus the directory grows is reproducible for a fixed seed.
	ingestCh := make(chan cafc.Document, ops)
	var ingestWG sync.WaitGroup
	ingestWG.Add(1)
	go func() {
		defer ingestWG.Done()
		for d := range ingestCh {
			t0 := time.Now()
			err := tgt.Ingest(d)
			rec.observe("ingest", time.Since(t0), err)
		}
	}()

	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / qps)
	start := time.Now()
	issued, ingested := 0, 0
	for i := 0; i < ops; i++ {
		if ctx.Err() != nil {
			break
		}
		if cfg.Duration > 0 && time.Since(start) >= cfg.Duration {
			break
		}
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}

		// Draw in the pacing loop, not the workers: the rng consumption
		// order (and so the op sequence) must not depend on scheduling.
		// Search sits last in the threshold chain so a Search-free mix
		// reproduces the exact op sequences of earlier versions.
		kind := opClassify
		switch r := rng.Float64() * totalW; {
		case r < mix.Classify:
			kind = opClassify
		case r < mix.Classify+mix.Ingest:
			kind = opIngest
		case r < mix.Classify+mix.Ingest+mix.Browse:
			kind = opBrowse
		default:
			kind = opSearch
		}
		var doc cafc.Document
		var query string
		switch kind {
		case opIngest:
			if ingested < len(pool) {
				doc = pool[ingested]
				ingested++
			} else {
				kind = opClassify // pool dry: degrade to a read
			}
		case opSearch:
			query = cfg.Queries[rng.Intn(len(cfg.Queries))]
		}
		if kind == opClassify {
			doc = classifyDocs[rng.Intn(len(classifyDocs))]
		}
		issued++

		if kind == opIngest {
			ingestCh <- doc
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(kind opKind, doc cafc.Document, query string) {
			defer func() { <-sem; wg.Done() }()
			t0 := time.Now()
			var err error
			name := "classify"
			switch kind {
			case opBrowse:
				name = "browse"
				err = tgt.Browse()
			case opSearch:
				name = "search"
				err = tgt.Search(query)
			default:
				err = tgt.Classify(doc)
			}
			rec.observe(name, time.Since(t0), err)
		}(kind, doc, query)
	}
	close(ingestCh)
	wg.Wait()
	ingestWG.Wait()
	elapsed := time.Since(start)

	return Report{
		Seed:            cfg.Seed,
		TargetQPS:       qps,
		AchievedQPS:     float64(issued) / elapsed.Seconds(),
		DurationSeconds: elapsed.Seconds(),
		Ops:             issued,
		Ingested:        ingested,
		Endpoints:       rec.stats(),
	}, nil
}
