package loadgen

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"

	"cafc"
)

// fakeTarget records what was asked of it.
type fakeTarget struct {
	mu       sync.Mutex
	ingested []string
	classify map[string]int
	browses  int
	fail     bool
}

func newFakeTarget() *fakeTarget { return &fakeTarget{classify: make(map[string]int)} }

func (f *fakeTarget) Classify(d cafc.Document) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.classify[d.URL]++
	if f.fail {
		return errors.New("boom")
	}
	return nil
}

func (f *fakeTarget) Ingest(d cafc.Document) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ingested = append(f.ingested, d.URL)
	return nil
}

func (f *fakeTarget) Browse() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.browses++
	return nil
}

func docs(prefix string, n int) []cafc.Document {
	out := make([]cafc.Document, n)
	for i := range out {
		out[i] = cafc.Document{URL: prefix + string(rune('a'+i%26)) + string(rune('0'+i/26))}
	}
	return out
}

// TestRunDeterministic: same seed, same pools → the same operations
// reach the target (ingest order exactly; classify/browse as counts,
// since their completion order is concurrent).
func TestRunDeterministic(t *testing.T) {
	cfg := Config{Seed: 9, QPS: 100000, Ops: 400}
	run := func() *fakeTarget {
		tgt := newFakeTarget()
		rep, err := Run(context.Background(), cfg, tgt, docs("c", 30), docs("p", 50))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Ops != 400 {
			t.Fatalf("issued %d ops, want 400", rep.Ops)
		}
		return tgt
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.ingested, b.ingested) {
		t.Fatalf("ingest sequences diverge:\n a=%v\n b=%v", a.ingested, b.ingested)
	}
	if !reflect.DeepEqual(a.classify, b.classify) {
		t.Fatalf("classify draws diverge")
	}
	if a.browses != b.browses {
		t.Fatalf("browse counts diverge: %d vs %d", a.browses, b.browses)
	}
	// Ingest consumed the pool strictly in order.
	for i, u := range a.ingested {
		if u != docs("p", 50)[i].URL {
			t.Fatalf("ingest out of order at %d: %s", i, u)
		}
	}
}

// TestRunPoolExhaustion: with a tiny pool and an ingest-heavy mix, the
// pool drains completely and the surplus draws degrade to classifies —
// every op still runs.
func TestRunPoolExhaustion(t *testing.T) {
	tgt := newFakeTarget()
	rep, err := Run(context.Background(), Config{
		Seed: 3, QPS: 100000, Ops: 200, Mix: Mix{Ingest: 1},
	}, tgt, docs("c", 5), docs("p", 10))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ingested != 10 || len(tgt.ingested) != 10 {
		t.Fatalf("ingested %d/%d, want the full pool of 10", rep.Ingested, len(tgt.ingested))
	}
	total := 0
	for _, n := range tgt.classify {
		total += n
	}
	if total != 190 {
		t.Fatalf("degraded classifies = %d, want 190", total)
	}
	if rep.Endpoints["ingest"].Ops != 10 || rep.Endpoints["classify"].Ops != 190 {
		t.Fatalf("endpoint stats = %+v", rep.Endpoints)
	}
}

// TestRunErrorsCounted: target failures land in the per-endpoint error
// count without aborting the run.
func TestRunErrorsCounted(t *testing.T) {
	tgt := newFakeTarget()
	tgt.fail = true
	rep, err := Run(context.Background(), Config{Seed: 1, QPS: 100000, Ops: 50, Mix: Mix{Classify: 1}}, tgt, docs("c", 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Endpoints["classify"]
	if st.Ops != 50 || st.Errors != 50 {
		t.Fatalf("stats = %+v, want 50 ops / 50 errors", st)
	}
}

// TestQuantileNearestRank pins the quantile definition the report uses.
func TestQuantileNearestRank(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sort.Float64s(s)
	cases := []struct{ q, want float64 }{
		{0.50, 6}, {0.95, 10}, {0.99, 10}, {0, 1}, {1, 10},
	}
	for _, c := range cases {
		if got := quantile(s, c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}
