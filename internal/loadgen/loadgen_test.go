package loadgen

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"

	"cafc"
)

// fakeTarget records what was asked of it.
type fakeTarget struct {
	mu       sync.Mutex
	ingested []string
	classify map[string]int
	browses  int
	searches map[string]int
	fail     bool
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{classify: make(map[string]int), searches: make(map[string]int)}
}

func (f *fakeTarget) Classify(d cafc.Document) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.classify[d.URL]++
	if f.fail {
		return errors.New("boom")
	}
	return nil
}

func (f *fakeTarget) Ingest(d cafc.Document) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ingested = append(f.ingested, d.URL)
	return nil
}

func (f *fakeTarget) Browse() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.browses++
	return nil
}

func (f *fakeTarget) Search(q string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.searches[q]++
	if f.fail {
		return errors.New("boom")
	}
	return nil
}

func docs(prefix string, n int) []cafc.Document {
	out := make([]cafc.Document, n)
	for i := range out {
		out[i] = cafc.Document{URL: prefix + string(rune('a'+i%26)) + string(rune('0'+i/26))}
	}
	return out
}

// TestRunDeterministic: same seed, same pools → the same operations
// reach the target (ingest order exactly; classify/browse as counts,
// since their completion order is concurrent).
func TestRunDeterministic(t *testing.T) {
	cfg := Config{Seed: 9, QPS: 100000, Ops: 400}
	run := func() *fakeTarget {
		tgt := newFakeTarget()
		rep, err := Run(context.Background(), cfg, tgt, docs("c", 30), docs("p", 50))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Ops != 400 {
			t.Fatalf("issued %d ops, want 400", rep.Ops)
		}
		return tgt
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.ingested, b.ingested) {
		t.Fatalf("ingest sequences diverge:\n a=%v\n b=%v", a.ingested, b.ingested)
	}
	if !reflect.DeepEqual(a.classify, b.classify) {
		t.Fatalf("classify draws diverge")
	}
	if a.browses != b.browses {
		t.Fatalf("browse counts diverge: %d vs %d", a.browses, b.browses)
	}
	// Ingest consumed the pool strictly in order.
	for i, u := range a.ingested {
		if u != docs("p", 50)[i].URL {
			t.Fatalf("ingest out of order at %d: %s", i, u)
		}
	}
}

// TestRunPoolExhaustion: with a tiny pool and an ingest-heavy mix, the
// pool drains completely and the surplus draws degrade to classifies —
// every op still runs.
func TestRunPoolExhaustion(t *testing.T) {
	tgt := newFakeTarget()
	rep, err := Run(context.Background(), Config{
		Seed: 3, QPS: 100000, Ops: 200, Mix: Mix{Ingest: 1},
	}, tgt, docs("c", 5), docs("p", 10))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ingested != 10 || len(tgt.ingested) != 10 {
		t.Fatalf("ingested %d/%d, want the full pool of 10", rep.Ingested, len(tgt.ingested))
	}
	total := 0
	for _, n := range tgt.classify {
		total += n
	}
	if total != 190 {
		t.Fatalf("degraded classifies = %d, want 190", total)
	}
	if rep.Endpoints["ingest"].Ops != 10 || rep.Endpoints["classify"].Ops != 190 {
		t.Fatalf("endpoint stats = %+v", rep.Endpoints)
	}
}

// TestRunErrorsCounted: target failures land in the per-endpoint error
// count without aborting the run.
func TestRunErrorsCounted(t *testing.T) {
	tgt := newFakeTarget()
	tgt.fail = true
	rep, err := Run(context.Background(), Config{Seed: 1, QPS: 100000, Ops: 50, Mix: Mix{Classify: 1}}, tgt, docs("c", 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Endpoints["classify"]
	if st.Ops != 50 || st.Errors != 50 {
		t.Fatalf("stats = %+v, want 50 ops / 50 errors", st)
	}
}

// TestRunSearchMix: with a search fraction and a query pool, search ops
// reach the target with queries drawn from the pool, land under their
// own endpoint key, and the draw sequence is seed-deterministic.
func TestRunSearchMix(t *testing.T) {
	cfg := Config{
		Seed: 7, QPS: 100000, Ops: 300,
		Mix:     Mix{Classify: 0.5, Ingest: 0.2, Browse: 0.1, Search: 0.2},
		Queries: []string{"hotel rooms", "cheap flights", "search jobs"},
	}
	run := func() *fakeTarget {
		tgt := newFakeTarget()
		rep, err := Run(context.Background(), cfg, tgt, docs("c", 20), docs("p", 40))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Endpoints["search"].Ops == 0 {
			t.Fatal("search fraction in the mix but no search ops recorded")
		}
		return tgt
	}
	a, b := run(), run()
	if len(a.searches) == 0 {
		t.Fatal("no searches reached the target")
	}
	for q := range a.searches {
		found := false
		for _, want := range cfg.Queries {
			if q == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("search query %q not from the configured pool", q)
		}
	}
	if !reflect.DeepEqual(a.searches, b.searches) {
		t.Fatalf("search draws diverge at fixed seed:\n a=%v\n b=%v", a.searches, b.searches)
	}
	if !reflect.DeepEqual(a.ingested, b.ingested) {
		t.Fatal("ingest sequences diverge when search is in the mix")
	}
}

// TestRunSearchNeedsQueries: a search fraction without a query pool is a
// config error, caught before any op is issued.
func TestRunSearchNeedsQueries(t *testing.T) {
	_, err := Run(context.Background(), Config{
		Seed: 1, QPS: 100000, Ops: 10, Mix: Mix{Search: 1},
	}, newFakeTarget(), docs("c", 3), nil)
	if err == nil {
		t.Fatal("Run accepted Mix.Search > 0 with an empty Queries pool")
	}
}

// TestFixtureQueriesSeeded: the fixture's query pool is non-empty,
// deterministic per seed, and distinct across seeds.
func TestFixtureQueriesSeeded(t *testing.T) {
	a, b := NewFixture(5, 32), NewFixture(5, 32)
	if len(a.Queries) == 0 {
		t.Fatal("fixture generated no queries")
	}
	if !reflect.DeepEqual(a.Queries, b.Queries) {
		t.Fatal("fixture queries not deterministic at fixed seed")
	}
	c := NewFixture(6, 32)
	if reflect.DeepEqual(a.Queries, c.Queries) {
		t.Fatal("fixture queries identical across different seeds")
	}
}

// TestQuantileNearestRank pins the quantile definition the report uses.
func TestQuantileNearestRank(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sort.Float64s(s)
	cases := []struct{ q, want float64 }{
		{0.50, 6}, {0.95, 10}, {0.99, 10}, {0, 1}, {1, 10},
	}
	for _, c := range cases {
		if got := quantile(s, c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}
