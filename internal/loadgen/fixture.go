package loadgen

import (
	"cafc"
	"cafc/internal/webgen"
)

// Fixture is a seeded workload corpus: Genesis founds the directory,
// Pool is the ordered document sequence the ingest lane streams, and
// Labels are the generator's gold classes (for the quality snapshot).
type Fixture struct {
	Genesis []cafc.Document
	Pool    []cafc.Document
	Labels  map[string]string
}

// NewFixture generates n form pages and splits the first quarter (at
// least 8) off as genesis — the same split the ingest benchmark uses,
// so load results are comparable to throughput results at equal n/seed.
func NewFixture(seed int64, n int) Fixture {
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
	docs := make([]cafc.Document, 0, len(c.FormPages))
	labels := make(map[string]string, len(c.FormPages))
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
		labels[u] = string(c.Labels[u])
	}
	genesis := len(docs) / 4
	if genesis < 8 {
		genesis = 8
	}
	if genesis > len(docs) {
		genesis = len(docs)
	}
	return Fixture{Genesis: docs[:genesis], Pool: docs[genesis:], Labels: labels}
}
