package loadgen

import (
	"math/rand"

	"cafc"
	"cafc/internal/htmlx"
	"cafc/internal/text"
	"cafc/internal/webgen"
)

// Fixture is a seeded workload corpus: Genesis founds the directory,
// Pool is the ordered document sequence the ingest lane streams, Labels
// are the generator's gold classes (for the quality snapshot), and
// Queries is a seeded search-query pool drawn from the corpus's own
// page titles — realistic, always-matching queries.
type Fixture struct {
	Genesis []cafc.Document
	Pool    []cafc.Document
	Labels  map[string]string
	Queries []string
}

// fixtureQueries caps the generated query pool.
const fixtureQueries = 128

// NewFixture generates n form pages and splits the first quarter (at
// least 8) off as genesis — the same split the ingest benchmark uses,
// so load results are comparable to throughput results at equal n/seed.
func NewFixture(seed int64, n int) Fixture {
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
	docs := make([]cafc.Document, 0, len(c.FormPages))
	labels := make(map[string]string, len(c.FormPages))
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
		labels[u] = string(c.Labels[u])
	}
	genesis := len(docs) / 4
	if genesis < 8 {
		genesis = 8
	}
	if genesis > len(docs) {
		genesis = len(docs)
	}
	return Fixture{
		Genesis: docs[:genesis],
		Pool:    docs[genesis:],
		Labels:  labels,
		Queries: genQueries(c, seed),
	}
}

// genQueries samples 1-2 word queries from page titles. Tokens are used
// raw (lower-cased, stop words removed, NOT stemmed) — queries go
// through the searcher's own term pipeline like a user's would, so
// pre-stemming here would stem twice and miss.
func genQueries(c *webgen.Corpus, seed int64) []string {
	rng := rand.New(rand.NewSource(seed + 3))
	seen := make(map[string]bool)
	var out []string
	for tries := 0; len(out) < fixtureQueries && tries < 8*fixtureQueries; tries++ {
		u := c.FormPages[rng.Intn(len(c.FormPages))]
		title := htmlx.Title(htmlx.Parse(c.ByURL[u].HTML))
		var toks []string
		for _, tok := range text.Tokenize(title) {
			if !text.IsStopWord(tok) {
				toks = append(toks, tok)
			}
		}
		if len(toks) == 0 {
			continue
		}
		i := rng.Intn(len(toks))
		q := toks[i]
		if i+1 < len(toks) && rng.Float64() < 0.5 {
			q += " " + toks[i+1]
		}
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	return out
}
