package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"cafc/internal/obs"
)

// TestInstrumentationInert is the observability contract: attaching a
// metrics registry must only observe a run, never perturb it. K-means
// and HAC with Options.Metrics set must produce bit-identical results
// to the nil-registry run — same assignments, same iteration count,
// same dendrogram — while actually populating the registry (so the
// instrumentation cannot silently rot into a no-op either).
func TestInstrumentationInert(t *testing.T) {
	intVecs, _ := intBlobs(6, 20, 17)
	for name, space := range map[string]Space{
		"vector":   &VectorSpace{Vecs: intVecs},
		"compiled": func() Space { s, _ := compiledBlobs(6, 20, 1, 17); return s }(),
	} {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				for _, prune := range []PruneMode{PruneOff, PruneHamerly, PruneElkan} {
					reg := obs.NewRegistry()
					plain := KMeans(space, 6, nil, Options{Rand: rand.New(rand.NewSource(5)), Workers: workers, Prune: prune})
					instr := KMeans(space, 6, nil, Options{Rand: rand.New(rand.NewSource(5)), Workers: workers, Prune: prune, Metrics: reg})
					if !reflect.DeepEqual(plain.Assign, instr.Assign) {
						t.Errorf("k-means workers=%d prune=%v: instrumented assignments differ from plain", workers, prune)
					}
					if plain.Iterations != instr.Iterations {
						t.Errorf("k-means workers=%d prune=%v: iterations %d != %d", workers, prune, plain.Iterations, instr.Iterations)
					}
					assertRecorded(t, reg, "kmeans_runs_total", "kmeans_moved_fraction", "kmeans_iterations_total",
						"kmeans_assign_seconds", "kmeans_recompute_seconds",
						"distance_computations_total", "kmeans_pruned_total")
				}
				reg := obs.NewRegistry()
				plainHAC := HACCut(space, 6, AverageLinkage)
				instrHAC := HACCutOpts(space, 6, AverageLinkage, Options{Workers: workers, Metrics: reg})
				if !reflect.DeepEqual(plainHAC.Assign, instrHAC.Assign) {
					t.Errorf("HAC workers=%d: instrumented assignments differ from plain", workers)
				}
				assertRecorded(t, reg, "hac_runs_total", "hac_merges_total", "hac_matrix_seconds", "hac_merge_seconds")
			}
		})
	}
}

// TestInstrumentationInertApprox extends the contract to the candidate
// tier: an approx run with a registry attached is bit-identical to the
// nil-registry approx run, and the registry actually receives the
// candidate/fallback counters (inert with a nil registry, live with
// one — the same pin TestInstrumentationInert holds for the exact
// kernels).
func TestInstrumentationInertApprox(t *testing.T) {
	space, _ := compiledBlobs(6, 20, 1, 17)
	for _, workers := range []int{1, 8} {
		reg := obs.NewRegistry()
		plain := KMeans(space, 6, nil, Options{Rand: rand.New(rand.NewSource(5)), Workers: workers, Approx: Approx{Enabled: true}})
		instr := KMeans(space, 6, nil, Options{Rand: rand.New(rand.NewSource(5)), Workers: workers, Approx: Approx{Enabled: true}, Metrics: reg})
		if !reflect.DeepEqual(plain.Assign, instr.Assign) {
			t.Errorf("approx workers=%d: instrumented assignments differ from plain", workers)
		}
		if plain.Iterations != instr.Iterations {
			t.Errorf("approx workers=%d: iterations %d != %d", workers, plain.Iterations, instr.Iterations)
		}
		assertRecorded(t, reg, "approx_candidates_total", "approx_fallback_total",
			"distance_computations_total", "kmeans_runs_total")
	}
}

// TestInstrumentationInertMiniBatch: same contract for the sampled
// rebuild path.
func TestInstrumentationInertMiniBatch(t *testing.T) {
	space, _ := compiledBlobs(6, 20, 1, 17)
	mb := MiniBatch{BatchSize: 16, Rounds: 6}
	reg := obs.NewRegistry()
	plain := MiniBatchKMeans(space, 6, nil, Options{Rand: rand.New(rand.NewSource(5))}, mb)
	instr := MiniBatchKMeans(space, 6, nil, Options{Rand: rand.New(rand.NewSource(5)), Metrics: reg}, mb)
	if !reflect.DeepEqual(plain.Assign, instr.Assign) {
		t.Error("mini-batch: instrumented assignments differ from plain")
	}
	assertRecorded(t, reg, "minibatch_runs_total", "distance_computations_total")
}

// TestInstrumentationInertFromGroups covers the hub-seeded HAC path.
func TestInstrumentationInertFromGroups(t *testing.T) {
	intVecs, _ := intBlobs(4, 15, 29)
	space := &VectorSpace{Vecs: intVecs}
	groups := [][]int{{0, 1, 2}, {15, 16}, {30, 31, 32, 33}}
	reg := obs.NewRegistry()
	plain := HACFromGroups(space, groups, 4, AverageLinkage)
	instr := HACFromGroupsOpts(space, groups, 4, AverageLinkage, Options{Metrics: reg})
	if !reflect.DeepEqual(plain.Assign, instr.Assign) {
		t.Error("HACFromGroups: instrumented assignments differ from plain")
	}
	assertRecorded(t, reg, "hac_group_merges_total")
}

// BenchmarkKMeansTelemetry pairs a nil-registry run with an
// instrumented run so the observability overhead stays measurable
// (the per-iteration handles must keep it within a few percent).
func BenchmarkKMeansTelemetry(b *testing.B) {
	space, _ := compiledBlobs(8, 60, 1, 17)
	for name, reg := range map[string]*obs.Registry{"nil": nil, "registry": obs.NewRegistry()} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				KMeans(space, 8, nil, Options{Rand: rand.New(rand.NewSource(5)), Workers: 1, Metrics: reg})
			}
		})
	}
}

// assertRecorded fails unless the registry snapshot contains every
// named metric family.
func assertRecorded(t *testing.T, reg *obs.Registry, names ...string) {
	t.Helper()
	have := make(map[string]bool)
	for _, s := range reg.Snapshot() {
		have[s.Name] = true
	}
	for _, n := range names {
		if !have[n] {
			t.Errorf("registry missing expected metric %q", n)
		}
	}
}
