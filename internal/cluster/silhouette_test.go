package cluster

import (
	"math/rand"
	"testing"
)

func TestSilhouetteOrdersGoodOverBad(t *testing.T) {
	s, gold := blobs(3, 10, 0.2, 91)
	good := Silhouette(s, gold, 3)
	// A shuffled assignment must score much worse.
	rng := rand.New(rand.NewSource(1))
	bad := make([]int, len(gold))
	for i := range bad {
		bad[i] = rng.Intn(3)
	}
	badScore := Silhouette(s, bad, 3)
	if !(good > badScore) {
		t.Errorf("silhouette: good %.3f <= bad %.3f", good, badScore)
	}
	if good < 0.5 {
		t.Errorf("gold silhouette = %.3f, too low for separated blobs", good)
	}
}

func TestSilhouetteEdgeCases(t *testing.T) {
	if s := Silhouette(&VectorSpace{}, nil, 3); s != 0 {
		t.Errorf("empty space: %v", s)
	}
	sp, _ := blobs(2, 3, 0.1, 93)
	// Everything in one cluster: no b-distance exists, score 0.
	one := make([]int, sp.Len())
	if s := Silhouette(sp, one, 1); s != 0 {
		t.Errorf("single cluster: %v", s)
	}
	// Unassigned points are skipped.
	partial := make([]int, sp.Len())
	for i := range partial {
		partial[i] = -1
	}
	if s := Silhouette(sp, partial, 2); s != 0 {
		t.Errorf("all unassigned: %v", s)
	}
}

func TestBestKRecoversBlobCount(t *testing.T) {
	s, _ := blobs(4, 12, 0.2, 95)
	k, curve := BestK(s, 2, 8, 4, rand.New(rand.NewSource(7)))
	if len(curve) != 7 {
		t.Fatalf("curve has %d points", len(curve))
	}
	if k != 4 {
		t.Errorf("BestK = %d, want 4 (curve %+v)", k, curve)
	}
	// The curve's maximum must coincide with the returned k.
	best := curve[0]
	for _, p := range curve {
		if p.Silhouette > best.Silhouette {
			best = p
		}
	}
	if best.K != k {
		t.Errorf("returned k %d != argmax %d", k, best.K)
	}
}

func TestBestKClamps(t *testing.T) {
	s, _ := blobs(2, 3, 0.1, 97) // 6 points
	k, curve := BestK(s, 0, 100, 2, nil)
	if k < 2 || k > 6 {
		t.Errorf("k = %d out of clamped range", k)
	}
	if len(curve) != 5 { // k in 2..6
		t.Errorf("curve has %d points", len(curve))
	}
}
