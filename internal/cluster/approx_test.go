package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"cafc/internal/obs"
)

// approxOpts is the shared approximate-run configuration: 128-bit
// signatures, top-2 candidates, fixed hyperplane seed.
func approxOpts(seed int64, workers int) Options {
	return Options{
		Rand:    rand.New(rand.NewSource(seed)),
		Workers: workers,
		Approx:  Approx{Enabled: true},
	}
}

// TestApproxOffBitIdentical is the opt-in contract: with Approx left at
// its zero value the run must be byte-identical to the exact kernels —
// i.e. adding the Approx field to Options changed nothing for existing
// callers.
func TestApproxOffBitIdentical(t *testing.T) {
	s, _ := compiledBlobs(6, 20, 1, 17)
	for _, prune := range []PruneMode{PruneOff, PruneHamerly, PruneElkan} {
		ref := KMeans(s, 6, nil, Options{Rand: rand.New(rand.NewSource(5)), Prune: prune})
		got := KMeans(s, 6, nil, Options{Rand: rand.New(rand.NewSource(5)), Prune: prune, Approx: Approx{}})
		if !reflect.DeepEqual(ref.Assign, got.Assign) || ref.Iterations != got.Iterations {
			t.Errorf("prune=%v: zero-value Approx perturbed the exact run", prune)
		}
		if !reflect.DeepEqual(ref.Centroids, got.Centroids) {
			t.Errorf("prune=%v: zero-value Approx perturbed centroids", prune)
		}
	}
}

// TestApproxDeterministic pins approximate determinism: same corpus,
// same seeds ⇒ identical assignments, for any worker count — the
// signatures, candidate sets and argmax scans are all worker-invariant.
func TestApproxDeterministic(t *testing.T) {
	s, _ := compiledBlobs(6, 30, 1, 21)
	ref := KMeans(s, 6, nil, approxOpts(5, 1))
	for _, workers := range []int{2, 8} {
		got := KMeans(s, 6, nil, approxOpts(5, workers))
		if !reflect.DeepEqual(ref.Assign, got.Assign) {
			t.Errorf("workers=%d: approx assignments differ from serial approx run", workers)
		}
		if ref.Iterations != got.Iterations {
			t.Errorf("workers=%d: iterations %d != %d", workers, got.Iterations, ref.Iterations)
		}
	}
}

// blobSeeds returns one two-member seed group per blob for the
// compiledBlobs/intBlobs layout (blob gi occupies [gi·size, gi·size+size)),
// pinning both the exact and approximate runs to the same basin so
// quality comparisons are not confounded by random-init local optima.
func blobSeeds(g, size int) [][]int {
	seeds := make([][]int, g)
	for gi := range seeds {
		seeds[gi] = []int{gi * size, gi*size + 1}
	}
	return seeds
}

// TestApproxRecallFrozenCentroids is the recall pin in its purest form:
// over one frozen set of converged centroids, the approximate assigner
// must pick the same centroid as the exhaustive scan for nearly every
// point, while evaluating strictly fewer similarities. This isolates
// the candidate tier from k-means trajectory divergence — the same
// definition of recall the scale benchmark reports.
func TestApproxRecallFrozenCentroids(t *testing.T) {
	const g, size = 8, 40
	s, _ := compiledBlobs(g, size, 1, 33)
	exact := KMeans(s, g, blobSeeds(g, size), Options{Rand: rand.New(rand.NewSource(5)), Prune: PruneOff, MoveFrac: 1e-12})

	n := s.Len()
	assignPass := func(opts Options) ([]int, int64) {
		asg := newAssigner(s, g, opts, 1)
		assign := make([]int, n)
		for i := range assign {
			assign[i] = -1
		}
		asg.assign(exact.Centroids, assign, make([]int, 1))
		return assign, asg.distTotal()
	}
	exactAssign, exactDist := assignPass(Options{Rand: rand.New(rand.NewSource(5)), Prune: PruneOff})
	approxAssign, approxDist := assignPass(approxOpts(5, 1))

	same := 0
	for i := range exactAssign {
		if exactAssign[i] == approxAssign[i] {
			same++
		}
	}
	recall := float64(same) / float64(n)
	if recall < 0.99 {
		t.Errorf("frozen-centroid recall %.3f, want >= 0.99", recall)
	}
	if approxDist >= exactDist {
		t.Errorf("approx evaluated %d similarities, exhaustive %d — no pruning happened", approxDist, exactDist)
	}
}

// TestApproxEndToEndOnBlobs runs the whole clustering loop with the
// candidate tier on and checks the run still recovers the blobs while
// the registry shows the candidate counters moving.
func TestApproxEndToEndOnBlobs(t *testing.T) {
	const g, size = 8, 40
	s, gold := compiledBlobs(g, size, 1, 33)
	reg := obs.NewRegistry()
	opts := approxOpts(5, 1)
	opts.MoveFrac = 1e-12
	opts.Metrics = reg
	got := KMeans(s, g, blobSeeds(g, size), opts)
	if a := agreement(got.Assign, gold); a < 0.95 {
		t.Errorf("approx end-to-end agreement with gold = %.3f, want >= 0.95", a)
	}
	var cands float64
	for _, sm := range reg.Snapshot() {
		if sm.Name == "approx_candidates_total" {
			cands = sm.Value
		}
	}
	if cands == 0 {
		t.Error("approx_candidates_total not recorded")
	}
	exhaustive := float64(s.Len() * g * got.Iterations)
	if cands >= exhaustive {
		t.Errorf("candidate evaluations %v not below exhaustive %v", cands, exhaustive)
	}
}

// TestApproxFallsBackWithoutSigner pins the capability gate: a space
// that cannot sign runs the exact kernel even with Approx enabled —
// same results as an explicit exact run.
func TestApproxFallsBackWithoutSigner(t *testing.T) {
	intVecs, _ := intBlobs(6, 20, 17)
	s := &VectorSpace{Vecs: intVecs}
	ref := KMeans(s, 6, nil, Options{Rand: rand.New(rand.NewSource(5))})
	got := KMeans(s, 6, nil, approxOpts(5, 1))
	if !reflect.DeepEqual(ref.Assign, got.Assign) {
		t.Error("unsignable space: approx run differs from exact run")
	}
}

// TestPruneAutoCrossover pins the PruneAuto size heuristic: the
// exhaustive kernel below pruneAutoMinPoints (BENCH_scale.json: Hamerly
// is slower than exhaustive at 5k pages, 249ms vs 230ms), Hamerly at or
// above it (3.4× faster at 20k). Explicit modes are never overridden.
func TestPruneAutoCrossover(t *testing.T) {
	if got := PruneAuto.resolveFor(pruneAutoMinPoints - 1); got != PruneOff {
		t.Errorf("PruneAuto at %d points resolved to %v, want exhaustive", pruneAutoMinPoints-1, got)
	}
	if got := PruneAuto.resolveFor(pruneAutoMinPoints); got != PruneHamerly {
		t.Errorf("PruneAuto at %d points resolved to %v, want hamerly", pruneAutoMinPoints, got)
	}
	if got := PruneHamerly.resolveFor(10); got != PruneHamerly {
		t.Errorf("explicit Hamerly overridden below the threshold: %v", got)
	}
	if got := PruneOff.resolveFor(1 << 30); got != PruneOff {
		t.Errorf("explicit exhaustive overridden above the threshold: %v", got)
	}
	// And the assembled kernels agree with the resolution.
	s, _ := compiledBlobs(4, 20, 1, 9)
	if _, ok := newAssigner(s, 4, Options{}, 1).(*exhaustiveAssigner); !ok {
		t.Error("small-corpus PruneAuto did not assemble the exhaustive kernel")
	}
}
