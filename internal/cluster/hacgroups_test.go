package cluster

import (
	"testing"
)

func TestHACFromGroupsRecoversBlobsAllLinkages(t *testing.T) {
	s, gold := blobs(4, 10, 0.3, 81)
	// Seed two blobs with partial groups; the other points start as
	// singletons.
	seeds := [][]int{{0, 1, 2, 3}, {10, 11, 12}}
	for _, l := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		res := HACFromGroups(s, seeds, 4, l)
		if res.K != 4 {
			t.Fatalf("%v: K = %d", l, res.K)
		}
		if got := agreement(res.Assign, gold); got < 0.9 {
			t.Errorf("%v: agreement = %.3f", l, got)
		}
		// Seed members must stay together.
		for _, g := range seeds {
			first := res.Assign[g[0]]
			for _, p := range g[1:] {
				if res.Assign[p] != first {
					t.Errorf("%v: seed group split", l)
				}
			}
		}
	}
}

func TestHACFromGroupsOverlappingSeeds(t *testing.T) {
	s, _ := blobs(3, 6, 0.2, 83)
	// Point 1 appears in both seeds: first group wins.
	seeds := [][]int{{0, 1, 2}, {1, 6, 7}}
	res := HACFromGroups(s, seeds, 3, AverageLinkage)
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	if res.Assign[1] != res.Assign[0] {
		t.Error("overlapping point did not stay with its first group")
	}
	for i, a := range res.Assign {
		if a < 0 || a >= res.K {
			t.Fatalf("point %d unassigned", i)
		}
	}
}

func TestHACFromGroupsOutOfRangeMembers(t *testing.T) {
	s, _ := blobs(2, 4, 0.1, 85)
	seeds := [][]int{{0, 1, 99, -5}} // invalid indices ignored
	res := HACFromGroups(s, seeds, 2, AverageLinkage)
	if res.K != 2 {
		t.Fatalf("K = %d", res.K)
	}
	if res.Assign[0] != res.Assign[1] {
		t.Error("valid seed members split")
	}
}

func TestHACFromGroupsEmptySpace(t *testing.T) {
	res := HACFromGroups(&VectorSpace{}, nil, 3, AverageLinkage)
	if res.K != 0 || len(res.Assign) != 0 {
		t.Errorf("empty space: %+v", res)
	}
}

func TestHACFromGroupsKGreaterThanGroups(t *testing.T) {
	s, _ := blobs(2, 3, 0.1, 87)
	// 6 points, all singleton starts, k=10: no merging happens.
	res := HACFromGroups(s, nil, 10, AverageLinkage)
	if res.K != 6 {
		t.Fatalf("K = %d, want 6", res.K)
	}
}

func TestHACFromGroupsMatchesSingletonHAC(t *testing.T) {
	// With no seeds and average linkage, HACFromGroups must produce the
	// same partition quality as plain HAC.
	s, gold := blobs(3, 8, 0.3, 89)
	a := HACFromGroups(s, nil, 3, AverageLinkage)
	b := HACCut(s, 3, AverageLinkage)
	if got := agreement(a.Assign, b.Assign); got < 0.99 {
		t.Errorf("agreement with plain HAC = %.3f", got)
	}
	if got := agreement(a.Assign, gold); got < 0.95 {
		t.Errorf("agreement with gold = %.3f", got)
	}
}

func TestResultMembersOf(t *testing.T) {
	r := Result{Assign: []int{0, 1, 0, 2}, K: 3}
	m := r.MembersOf()
	if len(m) != 3 || len(m[0]) != 2 || m[0][1] != 2 || len(m[2]) != 1 {
		t.Errorf("MembersOf = %v", m)
	}
}
