package cluster

// Mini-batch k-means (Sculley, WWW 2010, adapted to similarity spaces):
// instead of visiting every point every iteration, each round samples a
// fixed-size batch, assigns only the batch to the nearest centroids, and
// nudges each receiving centroid toward its batch members with a
// per-centroid learning rate that decays as the centroid absorbs more
// samples. Rebuild cost becomes O(rounds · batch · k) plus one final
// full assignment pass, instead of O(iterations · corpus · k) — the
// property the streaming layer's drift-triggered re-cluster path needs
// once the corpus stops fitting in a full k-means budget.
//
// The update here aggregates per round: a centroid that received b batch
// members moves toward their mean by η = b / count(c), where count(c) is
// the total samples the centroid has ever absorbed. This is the batched
// form of Sculley's per-point update (equal total step mass, one Blend
// per centroid per round instead of one per point) and needs only two
// Space capabilities: Centroid over the batch members and Blender for
// the convex combination. Spaces without Blender fall back to full
// KMeans — approximation is an optimization, never a requirement.

// Blender is an optional Space capability: the convex combination
// (1−t)·a + t·b over centroid representatives. CompiledSpace and
// cafc.Model implement it on packed vectors.
type Blender interface {
	Space
	Blend(a, b Point, t float64) Point
}

// MiniBatch configures MiniBatchKMeans. The zero value of each field
// selects the default noted per field.
type MiniBatch struct {
	// BatchSize is the number of points sampled per round (0 = 1024,
	// clamped to the corpus size). Sampling is with replacement, from
	// Options.Rand — fixed seed ⇒ deterministic runs.
	BatchSize int
	// Rounds is the number of sampled update rounds (0 = 40).
	Rounds int
}

func (m MiniBatch) withDefaults() MiniBatch {
	if m.BatchSize == 0 {
		m.BatchSize = 1024
	}
	if m.Rounds == 0 {
		m.Rounds = 40
	}
	return m
}

// MiniBatchKMeans clusters the space into k groups with sampled
// mini-batch updates, then runs one full assignment pass (through the
// kernel Options selects, so Approx composes) to produce the final
// Result over every point. seeds, when non-nil, provides initial
// clusters exactly as KMeans accepts them. Deterministic for a fixed
// Options.Rand seed. Falls back to full KMeans when the space does not
// implement Blender.
func MiniBatchKMeans(s Space, k int, seeds [][]int, opts Options, mb MiniBatch) Result {
	bl, ok := s.(Blender)
	if !ok {
		return KMeans(s, k, seeds, opts)
	}
	opts = opts.withDefaults()
	mb = mb.withDefaults()
	n := s.Len()
	if k <= 0 {
		return Result{Assign: make([]int, 0), K: 0}
	}
	if k > n {
		k = n
	}
	if mb.BatchSize > n {
		mb.BatchSize = n
	}
	if reg := opts.Metrics; reg != nil {
		reg.Counter("minibatch_runs_total").Inc()
	}
	centroids := initialCentroids(s, k, seeds, opts.Rand)

	// Sampled update rounds. The nearest-centroid scan reuses the
	// exhaustive machinery over just the batch: per round the centroids
	// are indexed once (when the space supports it) and each sampled
	// point scores all k — the batch is small by construction, so bound
	// maintenance would not amortize.
	counts := make([]float64, k)
	batch := make([]int, mb.BatchSize)
	members := make([][]int, k)
	b := newAssignerBase(s, k, opts, 1)
	for round := 0; round < mb.Rounds; round++ {
		for i := range batch {
			batch[i] = opts.Rand.Intn(n)
		}
		idx := b.index(centroids)
		for c := range members {
			members[c] = members[c][:0]
		}
		for _, p := range batch {
			best, _, _ := b.scanPoint(p, centroids, idx, 0)
			b.dist[0] += int64(k)
			members[best] = append(members[best], p)
		}
		for c := 0; c < k; c++ {
			if len(members[c]) == 0 {
				continue
			}
			counts[c] += float64(len(members[c]))
			eta := float64(len(members[c])) / counts[c]
			centroids[c] = bl.Blend(centroids[c], s.Centroid(members[c]), eta)
		}
	}

	// Final full assignment through the configured kernel (exact or
	// approx), one round over frozen centroids.
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	movedBy := make([]int, maxShards(n, opts.Workers))
	asg := newAssigner(s, k, opts, len(movedBy))
	asg.assign(centroids, assign, movedBy)

	// Repair empty clusters once, exactly like KMeans: reseed each from
	// the point farthest from its assigned centroid, then re-assign.
	// Mini-batch can leave a centroid unsampled (or sampled away), and
	// an epoch with silently-empty clusters would break the directory's
	// k-page contract.
	sizes := Sizes(assign, k)
	var taken map[int]bool
	var repairSims []float64
	repaired := false
	for c := 0; c < k; c++ {
		if sizes[c] != 0 {
			continue
		}
		if taken == nil {
			taken = make(map[int]bool, k)
		}
		if repairSims == nil {
			repairSims = asg.assignedSims(centroids, assign)
		}
		idx := farthestIdx(repairSims, taken)
		taken[idx] = true
		centroids[c] = s.Point(idx)
		repaired = true
	}
	if repaired {
		asg.assign(centroids, assign, movedBy)
	}
	if reg := opts.Metrics; reg != nil {
		reg.Counter("distance_computations_total").Add(b.distTotal() + asg.distTotal())
		reg.Counter("kmeans_pruned_total").Add(asg.prunedTotal())
		if aa, ok := asg.(*approxAssigner); ok {
			reg.Counter("approx_candidates_total").Add(aa.candTotal())
			reg.Counter("approx_fallback_total").Add(aa.fallbackTotal())
		}
	}
	return Result{Assign: assign, K: k, Iterations: mb.Rounds, Centroids: centroids}
}
