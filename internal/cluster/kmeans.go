package cluster

import (
	"math/rand"
	"time"

	"cafc/internal/obs"
)

// Options configures KMeans.
type Options struct {
	// MaxIter bounds the number of assign/recompute rounds. Zero means
	// the default of 100.
	MaxIter int
	// MoveFrac is the stop criterion: iteration stops once fewer than
	// MoveFrac of the points change cluster in a round. The paper stops
	// below 10%; zero means that default.
	MoveFrac float64
	// Rand supplies randomness for seed selection and tie breaking. Nil
	// means a fixed-seed source (deterministic runs).
	Rand *rand.Rand
	// Workers sizes the worker pool for the parallel kernels. Zero means
	// one worker per CPU (runtime.GOMAXPROCS); 1 forces a serial run.
	// Results are bit-identical for every worker count: sharding is
	// fixed, workers write disjoint index-addressed slots, and no
	// floating-point reduction is reassociated across points.
	Workers int
	// Prune selects the assignment kernel. The zero value (PruneAuto)
	// picks by corpus size: the exhaustive kernel below
	// pruneAutoMinPoints, Hamerly-style bound pruning above; PruneOff
	// forces the exhaustive reference kernel. Every mode returns
	// bit-identical results — see PruneMode.
	Prune PruneMode
	// Approx, when Enabled and the space implements Signer, restricts
	// each point's assignment scan to the top-Candidates centroids by
	// SimHash signature Hamming distance — the opt-in LSH tier for
	// large corpora. Unlike Prune this changes results: assignments are
	// approximate (benchmarks report recall-vs-exact), though still
	// fully deterministic for a fixed Seed. Ignored (exact kernel per
	// Prune) when the space cannot sign.
	Approx Approx
	// Metrics, when non-nil, receives convergence telemetry (moved
	// fraction per iteration, phase timings, empty-cluster repairs) and
	// parallel-kernel shard utilization. Nil disables instrumentation
	// entirely; assignments are bit-identical either way, because the
	// instrumentation only observes the run.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.MoveFrac == 0 {
		o.MoveFrac = 0.10
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
	return o
}

// Result is the outcome of a clustering run.
type Result struct {
	// Assign maps each object index to its cluster in [0, K).
	Assign []int
	// K is the number of clusters.
	K int
	// Iterations is the number of assignment rounds performed.
	Iterations int
	// Centroids holds the final cluster representatives.
	Centroids []Point
}

// MembersOf returns per-cluster member lists.
func (r *Result) MembersOf() [][]int { return Members(r.Assign, r.K) }

// KMeans clusters the space into k groups. seeds, when non-nil, provides
// the initial clusters as member-index lists (Algorithm 2 passes hub
// clusters here); otherwise k distinct random singleton seeds are drawn
// (Algorithm 1 line 2). Empty seed groups are reseeded from random points.
func KMeans(s Space, k int, seeds [][]int, opts Options) Result {
	opts = opts.withDefaults()
	n := s.Len()
	if k <= 0 {
		return Result{Assign: make([]int, 0), K: 0}
	}
	if k > n {
		k = n
	}
	centroids := initialCentroids(s, k, seeds, opts.Rand)

	// Convergence telemetry: all handles are nil (no-op) without a
	// registry, and nothing below is measured per point — only per
	// iteration — so the instrumented hot path is unchanged.
	var (
		movedGauge    *obs.Gauge
		assignHist    *obs.Histogram
		recomputeHist *obs.Histogram
		iterCounter   *obs.Counter
		repairCounter *obs.Counter
	)
	if reg := opts.Metrics; reg != nil {
		reg.Counter("kmeans_runs_total").Inc()
		movedGauge = reg.Gauge("kmeans_moved_fraction")
		assignHist = reg.Histogram("kmeans_assign_seconds", obs.DurationBuckets)
		recomputeHist = reg.Histogram("kmeans_recompute_seconds", obs.DurationBuckets)
		iterCounter = reg.Counter("kmeans_iterations_total")
		repairCounter = reg.Counter("kmeans_empty_repairs_total")
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	iter := 0
	movedBy := make([]int, maxShards(n, opts.Workers))
	// The assignment kernel (exhaustive or bound-pruned, per
	// opts.Prune) owns the point×centroid scans; all kernels shard over
	// points exactly like the historical inline loop and are pinned
	// bit-identical to it.
	asg := newAssigner(s, k, opts, len(movedBy))
	var repairSims []float64 // lazily computed, once per round at most
	for ; iter < opts.MaxIter; iter++ {
		iterCounter.Inc()
		// Assignment (Algorithm 1 line 4), sharded over points. Each
		// point's nearest-centroid scan is independent; workers count
		// moves in per-shard slots reduced serially below.
		for i := range movedBy {
			movedBy[i] = 0
		}
		var t0 time.Time
		if assignHist != nil {
			t0 = time.Now()
		}
		asg.assign(centroids, assign, movedBy)
		assignHist.ObserveSince(t0)
		moved := 0
		for _, m := range movedBy {
			moved += m
		}
		if n > 0 {
			movedGauge.Set(float64(moved) / float64(n))
		}
		// Recompute centroids (Algorithm 1 line 5), sharded over
		// clusters — per-index work is a whole centroid, so fan out
		// even for small k.
		if recomputeHist != nil {
			t0 = time.Now()
		}
		members := Members(assign, k)
		parallelRangeMin(k, opts.Workers, 2, timedBody(opts.Metrics, "kmeans_recompute", func(start, end, _ int) {
			for c := start; c < end; c++ {
				if len(members[c]) > 0 {
					centroids[c] = s.Centroid(members[c])
				}
			}
		}))
		recomputeHist.ObserveSince(t0)
		// Repair empty clusters: reseed each from the point farthest from
		// its assigned centroid, a standard k-means repair. One sharded
		// scan computes every point's similarity to its assigned centroid
		// and all empty clusters this round select from it (reseeding
		// cluster c cannot change any scanned similarity, because an
		// empty cluster has no assigned points) — the old code rescanned
		// the whole corpus once per empty cluster. `taken` tracks points
		// already consumed so two clusters emptying together cannot
		// reseed to the same point (which would produce duplicate
		// centroids).
		var taken map[int]bool
		for c := 0; c < k; c++ {
			if len(members[c]) != 0 {
				continue
			}
			if taken == nil {
				taken = make(map[int]bool, k)
			}
			if repairSims == nil {
				repairSims = asg.assignedSims(centroids, assign)
			}
			idx := farthestIdx(repairSims, taken)
			taken[idx] = true
			centroids[c] = s.Point(idx)
			repairCounter.Inc()
			moved++ // force another round
		}
		repairSims = nil
		if float64(moved) < opts.MoveFrac*float64(n) {
			iter++
			break
		}
	}
	// Work counters flush once per run: kernels accumulate in per-shard
	// slots, so the hot loops never touch an atomic and a nil registry
	// costs nothing.
	if reg := opts.Metrics; reg != nil {
		reg.Counter("distance_computations_total").Add(asg.distTotal())
		reg.Counter("kmeans_pruned_total").Add(asg.prunedTotal())
		if aa, ok := asg.(*approxAssigner); ok {
			reg.Counter("approx_candidates_total").Add(aa.candTotal())
			reg.Counter("approx_fallback_total").Add(aa.fallbackTotal())
		}
	}
	return Result{Assign: assign, K: k, Iterations: iter, Centroids: centroids}
}

// initialCentroids builds the starting centroids from explicit seed groups
// or random singletons.
func initialCentroids(s Space, k int, seeds [][]int, rng *rand.Rand) []Point {
	centroids := make([]Point, k)
	used := 0
	for i := 0; i < len(seeds) && used < k; i++ {
		if len(seeds[i]) > 0 {
			centroids[used] = s.Centroid(seeds[i])
			used++
		}
	}
	if used < k {
		for _, i := range rng.Perm(s.Len()) {
			if used == k {
				break
			}
			centroids[used] = s.Point(i)
			used++
		}
	}
	return centroids
}

// farthestIdx picks the point least similar to its assigned centroid
// from a precomputed assigned-similarity scan (see
// assignerBase.assignedSims), skipping points in `exclude` (already
// consumed as reseeds this round). Strict `<` keeps the historical
// lowest-index tie break, and the -1 sentinel for unassigned points
// sorts below every real similarity, so the first unassigned point wins
// — exactly the old per-cluster rescan's behavior, minus the rescans.
func farthestIdx(sims []float64, exclude map[int]bool) int {
	worst, worstSim := -1, 2.0
	for i, sim := range sims {
		if exclude[i] {
			continue
		}
		if sim < worstSim {
			worst, worstSim = i, sim
		}
	}
	if worst < 0 {
		// Every point excluded (more empty clusters than points, which
		// k <= n rules out in practice); fall back to point 0.
		return 0
	}
	return worst
}

// KMeansPlusPlusSeeds draws k seed indices with the k-means++ D²-sampling
// scheme (an extension beyond the paper, used as an extra baseline). The
// returned value is in the seeds format KMeans accepts: k singleton groups.
func KMeansPlusPlusSeeds(s Space, k int, rng *rand.Rand) [][]int {
	n := s.Len()
	if k > n {
		k = n
	}
	if k <= 0 || n == 0 {
		return nil
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	chosen := []int{rng.Intn(n)}
	d2 := make([]float64, n)
	for len(chosen) < k {
		var total float64
		for i := 0; i < n; i++ {
			// Distance to the nearest chosen seed.
			best := 1.0
			for _, c := range chosen {
				d := Dist(s.Sim(s.Point(i), s.Point(c)))
				if d < best {
					best = d
				}
			}
			d2[i] = best * best
			total += d2[i]
		}
		if total == 0 {
			// All points coincide with seeds; fill arbitrarily.
			chosen = append(chosen, rng.Intn(n))
			continue
		}
		r := rng.Float64() * total
		pick := n - 1
		for i := 0; i < n; i++ {
			r -= d2[i]
			if r <= 0 {
				pick = i
				break
			}
		}
		chosen = append(chosen, pick)
	}
	out := make([][]int, len(chosen))
	for i, c := range chosen {
		out[i] = []int{c}
	}
	return out
}
