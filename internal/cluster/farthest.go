package cluster

// FarthestFirst greedily selects k of the candidate groups so that the
// selected set is maximally spread out, exactly as Algorithm 3
// (SelectHubClusters) prescribes:
//
//  1. compute the pairwise distance matrix between candidate centroids;
//  2. start with the two most distant candidates;
//  3. repeatedly add the candidate whose summed distance to the already
//     selected ones is maximal, until k are chosen.
//
// It returns the indices of the chosen candidates (in selection order).
// Fewer than k candidates yields all of them.
func FarthestFirst(s Space, candidates [][]int, k int) []int {
	n := len(candidates)
	if n == 0 || k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Candidate centroids, one whole centroid per index — fan out even
	// for a handful of candidates.
	cents := make([]Point, n)
	parallelRangeMin(n, 0, 2, func(start, end, _ int) {
		for i := start; i < end; i++ {
			cents[i] = s.Centroid(candidates[i])
		}
	})
	// Distance matrix (Algorithm 3 line 3), sharded over rows.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	parallelRange(n, 0, func(start, end, _ int) {
		for i := start; i < end; i++ {
			for j := i + 1; j < n; j++ {
				d := Dist(s.Sim(cents[i], cents[j]))
				dist[i][j], dist[j][i] = d, d
			}
		}
	})
	// Two most distant (line 4).
	bi, bj, best := 0, 1, -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist[i][j] > best {
				bi, bj, best = i, j, dist[i][j]
			}
		}
	}
	selected := []int{bi, bj}
	inSel := make([]bool, n)
	inSel[bi], inSel[bj] = true, true
	// sumDist[i] accumulates distance from candidate i to the selection.
	sumDist := make([]float64, n)
	for i := 0; i < n; i++ {
		sumDist[i] = dist[i][bi] + dist[i][bj]
	}
	for len(selected) < k {
		pick, bestSum := -1, -1.0
		for i := 0; i < n; i++ {
			if inSel[i] {
				continue
			}
			if sumDist[i] > bestSum {
				pick, bestSum = i, sumDist[i]
			}
		}
		if pick < 0 {
			break
		}
		selected = append(selected, pick)
		inSel[pick] = true
		for i := 0; i < n; i++ {
			sumDist[i] += dist[i][pick]
		}
	}
	return selected
}
