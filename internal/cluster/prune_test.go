package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cafc/internal/obs"
)

// noScorer hides a space's CentroidScorer capability: embedding only the
// Space interface strips every other method, so the kernels fall back to
// plain Sim loops. Tests use it to pin the postings-index scoring
// bit-identical to the merge-join reference.
type noScorer struct {
	Space
}

// TestPrunedMatchesExhaustive is the pruning contract: every PruneMode,
// on both engines, for serial and parallel runs, must reproduce the
// exhaustive kernel's assignments, iteration count and centroids bit for
// bit. Duplicate points (blobs emit near-identical vectors at low noise)
// exercise the similarity-tie paths, and small k exercises the k=1
// degenerate prune.
func TestPrunedMatchesExhaustive(t *testing.T) {
	vs, _ := blobs(6, 25, 1, 33)
	cs, _ := compiledBlobs(6, 25, 1, 33)
	for name, space := range map[string]Space{"vector": vs, "compiled": cs} {
		t.Run(name, func(t *testing.T) {
			for _, k := range []int{1, 3, 6, 11} {
				for _, seeds := range [][][]int{nil, {{0, 1, 2}, {30}, {60, 61}}} {
					ref := KMeans(space, k, seeds, Options{Rand: rand.New(rand.NewSource(9)), Workers: 1, Prune: PruneOff})
					for _, prune := range []PruneMode{PruneAuto, PruneHamerly, PruneElkan} {
						for _, workers := range []int{1, 4} {
							got := KMeans(space, k, seeds, Options{Rand: rand.New(rand.NewSource(9)), Workers: workers, Prune: prune})
							if !reflect.DeepEqual(ref.Assign, got.Assign) {
								t.Errorf("k=%d seeds=%v prune=%v workers=%d: assignments differ from exhaustive", k, seeds != nil, prune, workers)
							}
							if ref.Iterations != got.Iterations {
								t.Errorf("k=%d seeds=%v prune=%v workers=%d: iterations %d != %d", k, seeds != nil, prune, workers, got.Iterations, ref.Iterations)
							}
							assertCentroidsMatch(t, ref.Centroids, got.Centroids)
						}
					}
				}
			}
		})
	}
}

// TestPrunedMatchesExhaustiveTies pins the tie-safety argument on a
// corpus built of exact duplicates: several points coincide with several
// centroids, so the lowest-index argmax rule decides almost every
// assignment, and a prune that ate a tied centroid would flip one.
func TestPrunedMatchesExhaustiveTies(t *testing.T) {
	vecs, _ := intBlobs(3, 2, 7)
	// Quadruple every point so exact similarity ties are everywhere.
	vecs = append(append(append(vecs, vecs...), vecs...), vecs...)
	for name, space := range map[string]Space{
		"vector":   &VectorSpace{Vecs: vecs},
		"compiled": NewCompiledSpace(vecs),
	} {
		t.Run(name, func(t *testing.T) {
			ref := KMeans(space, 4, nil, Options{Rand: rand.New(rand.NewSource(3)), Workers: 1, Prune: PruneOff})
			for _, prune := range []PruneMode{PruneHamerly, PruneElkan} {
				got := KMeans(space, 4, nil, Options{Rand: rand.New(rand.NewSource(3)), Workers: 1, Prune: prune})
				if !reflect.DeepEqual(ref.Assign, got.Assign) {
					t.Errorf("prune=%v: tie assignments differ from exhaustive", prune)
				}
			}
		})
	}
}

// TestCentroidIndexMatchesSim pins the other half of the contract: with
// the postings index hidden (noScorer), the kernels score through plain
// merge-join Sim calls — results must not change by a bit.
func TestCentroidIndexMatchesSim(t *testing.T) {
	cs, _ := compiledBlobs(7, 30, 1, 41)
	for _, prune := range []PruneMode{PruneOff, PruneHamerly, PruneElkan} {
		indexed := KMeans(cs, 7, nil, Options{Rand: rand.New(rand.NewSource(11)), Prune: prune})
		plain := KMeans(noScorer{cs}, 7, nil, Options{Rand: rand.New(rand.NewSource(11)), Prune: prune})
		if !reflect.DeepEqual(indexed.Assign, plain.Assign) {
			t.Errorf("prune=%v: indexed assignments differ from plain-Sim", prune)
		}
		if !reflect.DeepEqual(indexed.Centroids, plain.Centroids) {
			t.Errorf("prune=%v: indexed centroids differ from plain-Sim", prune)
		}
	}
}

// TestPrunedDistanceCounts asserts the point of the whole exercise: the
// pruned kernels must actually skip work. The exhaustive kernel's
// distance count is n×k per round (plus repair scans); both pruned
// kernels must come in strictly lower and report pruned points, while
// the exhaustive kernel reports zero.
func TestPrunedDistanceCounts(t *testing.T) {
	cs, _ := compiledBlobs(6, 100, 3, 55)
	counts := map[PruneMode]int64{}
	for _, prune := range []PruneMode{PruneOff, PruneHamerly, PruneElkan} {
		reg := obs.NewRegistry()
		KMeans(cs, 10, nil, Options{Rand: rand.New(rand.NewSource(2)), Prune: prune, Metrics: reg, MoveFrac: 0.001})
		counts[prune] = counterValue(t, reg, "distance_computations_total")
		pruned := counterValue(t, reg, "kmeans_pruned_total")
		if prune == PruneOff && pruned != 0 {
			t.Errorf("exhaustive kernel reported %d pruned points", pruned)
		}
		if prune != PruneOff && pruned == 0 {
			t.Errorf("prune=%v: no points pruned on a converging run", prune)
		}
	}
	if counts[PruneHamerly] >= counts[PruneOff] {
		t.Errorf("hamerly distance count %d not below exhaustive %d", counts[PruneHamerly], counts[PruneOff])
	}
	if counts[PruneElkan] >= counts[PruneOff] {
		t.Errorf("elkan distance count %d not below exhaustive %d", counts[PruneElkan], counts[PruneOff])
	}
}

// assertCentroidsMatch compares centroid sets. Compiled centroids must
// match bit for bit (the accumulator sums in sorted term-ID order, so
// they are fully deterministic). Map-engine centroids have exactly
// deterministic weights, but the cached norm is a sum over Go map
// iteration order — two identical exhaustive runs already differ in the
// last ULP — so norms are compared within a relative tolerance that is
// still far below anything a skipped scan could cause.
func assertCentroidsMatch(t *testing.T, want, got []Point) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("centroid count %d != %d", len(got), len(want))
		return
	}
	for c := range want {
		a, aok := want[c].(normedVec)
		b, bok := got[c].(normedVec)
		if !aok || !bok {
			if !reflect.DeepEqual(want[c], got[c]) {
				t.Errorf("centroid %d differs from exhaustive", c)
			}
			continue
		}
		if !reflect.DeepEqual(a.v, b.v) {
			t.Errorf("centroid %d weights differ from exhaustive", c)
		}
		if diff := math.Abs(a.norm - b.norm); diff > 1e-9*(1+math.Abs(a.norm)) {
			t.Errorf("centroid %d norm %v differs from exhaustive %v", c, b.norm, a.norm)
		}
	}
}

// counterValue reads one counter family's value from a registry
// snapshot.
func counterValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return int64(s.Value)
		}
	}
	t.Fatalf("counter %s not recorded", name)
	return 0
}

// TestPruneModeString keeps the mode names stable for logs and bench
// output.
func TestPruneModeString(t *testing.T) {
	for mode, want := range map[PruneMode]string{
		PruneAuto:    "hamerly",
		PruneOff:     "off",
		PruneHamerly: "hamerly",
		PruneElkan:   "elkan",
	} {
		if got := mode.String(); got != want {
			t.Errorf("PruneMode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
}
