package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cafc/internal/vector"
)

// blobs builds a VectorSpace with g well-separated groups of size each,
// returning the space and the gold labels. Group i's vectors share a
// dominant term "g<i>" plus per-point noise.
func blobs(g, size int, noise float64, seed int64) (*VectorSpace, []int) {
	rng := rand.New(rand.NewSource(seed))
	var vecs []vector.Vector
	var gold []int
	for gi := 0; gi < g; gi++ {
		for p := 0; p < size; p++ {
			v := vector.New()
			v[term("g", gi)] = 10
			v[term("aux", gi)] = 5 + rng.Float64()
			if noise > 0 {
				v[term("n", rng.Intn(g*size))] = noise * rng.Float64()
			}
			vecs = append(vecs, v)
			gold = append(gold, gi)
		}
	}
	return &VectorSpace{Vecs: vecs}, gold
}

func term(prefix string, i int) string {
	return prefix + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10))
}

// agreement computes the fraction of point pairs on which two labelings
// agree (same/different cluster) — a permutation-invariant accuracy.
func agreement(a, b []int) float64 {
	n := len(a)
	agree, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				agree++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(agree) / float64(total)
}

func TestKMeansRecoversBlobs(t *testing.T) {
	// Random seeding is k-means' known weakness (the paper's motivation
	// for CAFC-CH), so judge the best of a few restarts.
	s, gold := blobs(4, 15, 0.5, 7)
	best := 0.0
	for seed := int64(0); seed < 8; seed++ {
		res := KMeans(s, 4, nil, Options{Rand: rand.New(rand.NewSource(seed))})
		if res.K != 4 {
			t.Fatalf("K = %d", res.K)
		}
		if res.Iterations == 0 || res.Iterations > 100 {
			t.Errorf("iterations = %d", res.Iterations)
		}
		if got := agreement(res.Assign, gold); got > best {
			best = got
		}
	}
	if best < 0.95 {
		t.Errorf("best pair agreement over restarts = %.3f, want >= 0.95", best)
	}
}

func TestKMeansWithSeeds(t *testing.T) {
	s, gold := blobs(3, 10, 0.3, 11)
	// Perfect seeds: first two members of each gold group.
	seeds := [][]int{{0, 1}, {10, 11}, {20, 21}}
	res := KMeans(s, 3, seeds, Options{})
	if got := agreement(res.Assign, gold); got < 0.99 {
		t.Errorf("agreement with perfect seeds = %.3f", got)
	}
}

func TestKMeansSeedsFewerThanK(t *testing.T) {
	s, _ := blobs(3, 5, 0, 3)
	// Only one seed group supplied; the rest must be filled randomly.
	res := KMeans(s, 3, [][]int{{0}}, Options{})
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	if len(res.Centroids) != 3 {
		t.Errorf("centroids = %d", len(res.Centroids))
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	s, _ := blobs(2, 2, 0, 5)
	res := KMeans(s, 10, nil, Options{})
	if res.K != 4 {
		t.Errorf("K clamped to %d, want 4", res.K)
	}
	for _, a := range res.Assign {
		if a < 0 || a >= res.K {
			t.Fatalf("assignment out of range: %d", a)
		}
	}
}

func TestKMeansKZero(t *testing.T) {
	s, _ := blobs(2, 3, 0, 5)
	res := KMeans(s, 0, nil, Options{})
	if res.K != 0 || len(res.Assign) != 0 {
		t.Errorf("K=0 result: %+v", res)
	}
}

func TestKMeansDeterministicWithFixedRand(t *testing.T) {
	s, _ := blobs(4, 10, 1, 13)
	a := KMeans(s, 4, nil, Options{Rand: rand.New(rand.NewSource(9))})
	b := KMeans(s, 4, nil, Options{Rand: rand.New(rand.NewSource(9))})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMeansAssignmentsComplete(t *testing.T) {
	f := func(seed int64) bool {
		s, _ := blobs(3, 8, 2, seed)
		res := KMeans(s, 3, nil, Options{Rand: rand.New(rand.NewSource(seed))})
		for _, a := range res.Assign {
			if a < 0 || a >= res.K {
				return false
			}
		}
		return len(res.Assign) == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHACRecoversBlobs(t *testing.T) {
	s, gold := blobs(4, 10, 0.3, 21)
	for _, l := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		res := HACCut(s, 4, l)
		if res.K != 4 {
			t.Errorf("%v: K = %d", l, res.K)
			continue
		}
		if got := agreement(res.Assign, gold); got < 0.95 {
			t.Errorf("%v: agreement = %.3f", l, got)
		}
	}
}

func TestHACDendrogramShape(t *testing.T) {
	s, _ := blobs(2, 5, 0.2, 31)
	d := HAC(s, AverageLinkage)
	if d.N != 10 {
		t.Fatalf("N = %d", d.N)
	}
	if len(d.Merges) != 9 {
		t.Fatalf("merges = %d, want n-1", len(d.Merges))
	}
	// Merge similarities with average linkage on these blobs should be
	// non-increasing in the large (allow small inversions from updates).
	first, last := d.Merges[0].Sim, d.Merges[len(d.Merges)-1].Sim
	if first < last {
		t.Errorf("first merge sim %.3f < last %.3f", first, last)
	}
}

func TestHACCutExtremes(t *testing.T) {
	s, _ := blobs(2, 4, 0.1, 17)
	d := HAC(s, AverageLinkage)
	one := d.CutK(1)
	for _, a := range one {
		if a != 0 {
			t.Fatal("CutK(1) must put everything in one cluster")
		}
	}
	all := d.CutK(8)
	seen := map[int]bool{}
	for _, a := range all {
		seen[a] = true
	}
	if len(seen) != 8 {
		t.Errorf("CutK(n) gave %d clusters, want 8", len(seen))
	}
	if got := d.CutK(0); len(got) != 8 {
		t.Errorf("CutK(0) should clamp to 1 cluster over all points")
	}
}

func TestHACEmpty(t *testing.T) {
	d := HAC(&VectorSpace{}, AverageLinkage)
	if d.N != 0 || len(d.Merges) != 0 {
		t.Errorf("empty HAC: %+v", d)
	}
}

func TestFarthestFirstPicksSpreadGroups(t *testing.T) {
	// Six candidate groups: two per gold blob; farthest-first with k=3
	// must pick one from each blob rather than two from one.
	s, _ := blobs(3, 10, 0, 41)
	candidates := [][]int{
		{0, 1, 2}, {3, 4}, // blob 0
		{10, 11, 12}, {13, 14}, // blob 1
		{20, 21, 22}, {23, 24}, // blob 2
	}
	sel := FarthestFirst(s, candidates, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d", len(sel))
	}
	blobOf := func(c int) int { return candidates[c][0] / 10 }
	seen := map[int]bool{}
	for _, c := range sel {
		seen[blobOf(c)] = true
	}
	if len(seen) != 3 {
		t.Errorf("selection covers %d blobs, want 3: %v", len(seen), sel)
	}
}

func TestFarthestFirstEdgeCases(t *testing.T) {
	s, _ := blobs(2, 5, 0, 43)
	if got := FarthestFirst(s, nil, 3); got != nil {
		t.Errorf("nil candidates -> %v", got)
	}
	cands := [][]int{{0}, {5}}
	if got := FarthestFirst(s, cands, 5); len(got) != 2 {
		t.Errorf("k>n -> %v", got)
	}
	if got := FarthestFirst(s, cands, 0); got != nil {
		t.Errorf("k=0 -> %v", got)
	}
}

func TestKMeansPlusPlusSeeds(t *testing.T) {
	s, _ := blobs(4, 10, 0.2, 51)
	seeds := KMeansPlusPlusSeeds(s, 4, rand.New(rand.NewSource(3)))
	if len(seeds) != 4 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	// Seeds should mostly come from distinct blobs given D² sampling.
	blobSeen := map[int]bool{}
	for _, g := range seeds {
		blobSeen[g[0]/10] = true
	}
	if len(blobSeen) < 3 {
		t.Errorf("k-means++ seeds cover only %d blobs", len(blobSeen))
	}
	res := KMeans(s, 4, seeds, Options{})
	if res.K != 4 {
		t.Errorf("K = %d", res.K)
	}
}

func TestMembersAndSizes(t *testing.T) {
	assign := []int{0, 1, 0, 2, -1, 1}
	m := Members(assign, 3)
	if len(m[0]) != 2 || len(m[1]) != 2 || len(m[2]) != 1 {
		t.Errorf("members = %v", m)
	}
	sz := Sizes(assign, 3)
	if sz[0] != 2 || sz[1] != 2 || sz[2] != 1 {
		t.Errorf("sizes = %v", sz)
	}
}

func TestLinkageString(t *testing.T) {
	if SingleLinkage.String() != "single" || CompleteLinkage.String() != "complete" ||
		AverageLinkage.String() != "average" || Linkage(9).String() != "unknown" {
		t.Error("linkage names wrong")
	}
}

func BenchmarkKMeans(b *testing.B) {
	s, _ := blobs(8, 50, 1, 61)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KMeans(s, 8, nil, Options{Rand: rand.New(rand.NewSource(int64(i)))})
	}
}

func BenchmarkHAC(b *testing.B) {
	s, _ := blobs(8, 20, 1, 71)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HACCut(s, 8, AverageLinkage)
	}
}
