package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"cafc/internal/vector"
)

// compiledBlobs mirrors blobs but returns the packed space, sized large
// enough (>= parallelMinSpan points) that parallelRange actually fans
// out.
func compiledBlobs(g, size int, noise float64, seed int64) (*CompiledSpace, []int) {
	vs, gold := blobs(g, size, noise, seed)
	return NewCompiledSpace(vs.Vecs), gold
}

// intBlobs mirrors blobs with small integer weights. Map Dot/Norm sum
// in map iteration order, so with arbitrary floats two calls on the
// same vectors can differ in the last ulp and flip a near-tied merge —
// even between two serial runs. Integer weights keep the dot products
// and squared norms exact (order-independent), so similarities are
// reproducible and bit-equality across worker counts and engines is
// well-defined for the map space too.
func intBlobs(g, size int, seed int64) ([]vector.Vector, []int) {
	rng := rand.New(rand.NewSource(seed))
	var vecs []vector.Vector
	var gold []int
	for gi := 0; gi < g; gi++ {
		for p := 0; p < size; p++ {
			v := vector.New()
			v[term("g", gi)] = 10
			v[term("aux", gi)] = float64(5 + rng.Intn(5))
			v[term("n", rng.Intn(g*size))] = float64(1 + rng.Intn(3))
			vecs = append(vecs, v)
			gold = append(gold, gi)
		}
	}
	return vecs, gold
}

// TestParallelMatchesSerial is the determinism guarantee: for k-means,
// HAC and silhouette, a Workers: 8 run must equal the Workers: 1 run
// exactly — same assignments, same merges, bit-identical scores.
func TestParallelMatchesSerial(t *testing.T) {
	intVecs, _ := intBlobs(6, 20, 17)
	for name, space := range map[string]Space{
		"vector":   &VectorSpace{Vecs: intVecs},
		"compiled": func() Space { s, _ := compiledBlobs(6, 20, 1, 17); return s }(),
	} {
		t.Run(name, func(t *testing.T) {
			serial := KMeans(space, 6, nil, Options{Rand: rand.New(rand.NewSource(5)), Workers: 1})
			parallel := KMeans(space, 6, nil, Options{Rand: rand.New(rand.NewSource(5)), Workers: 8})
			if !reflect.DeepEqual(serial.Assign, parallel.Assign) {
				t.Error("k-means: parallel assignments differ from serial")
			}
			if serial.Iterations != parallel.Iterations {
				t.Errorf("k-means: iterations %d != %d", serial.Iterations, parallel.Iterations)
			}

			ds := HACWorkers(space, AverageLinkage, 1)
			dp := HACWorkers(space, AverageLinkage, 8)
			if !reflect.DeepEqual(ds.Merges, dp.Merges) {
				t.Error("HAC: parallel dendrogram differs from serial")
			}

			ss := SilhouetteWorkers(space, serial.Assign, serial.K, 1)
			sp := SilhouetteWorkers(space, serial.Assign, serial.K, 8)
			if ss != sp {
				t.Errorf("silhouette: parallel %v != serial %v (must be bit-identical)", sp, ss)
			}
		})
	}
}

// TestWorkersDefaultMatchesExplicit pins the Workers: 0 (auto) path to
// the serial result too.
func TestWorkersDefaultMatchesExplicit(t *testing.T) {
	s, _ := compiledBlobs(4, 20, 0.5, 23)
	auto := KMeans(s, 4, nil, Options{Rand: rand.New(rand.NewSource(3))})
	serial := KMeans(s, 4, nil, Options{Rand: rand.New(rand.NewSource(3)), Workers: 1})
	if !reflect.DeepEqual(auto.Assign, serial.Assign) {
		t.Error("auto worker count changed the result")
	}
}

func TestCompiledSpaceMatchesVectorSpace(t *testing.T) {
	// Integer weights (see intBlobs) so the map engine's similarities
	// are exact and comparable bit-for-bit against the packed engine.
	vecs, _ := intBlobs(5, 12, 29)
	vs := &VectorSpace{Vecs: vecs}
	cs := NewCompiledSpace(vs.Vecs)
	if cs.Len() != vs.Len() {
		t.Fatalf("Len %d != %d", cs.Len(), vs.Len())
	}
	// Same data, same seeds: the packed space must reproduce the map
	// space's clustering decisions.
	a := KMeans(vs, 5, nil, Options{Rand: rand.New(rand.NewSource(11))})
	b := KMeans(cs, 5, nil, Options{Rand: rand.New(rand.NewSource(11))})
	if !reflect.DeepEqual(a.Assign, b.Assign) {
		t.Error("compiled space clustered differently from the map space")
	}
	da := HAC(vs, AverageLinkage)
	db := HAC(cs, AverageLinkage)
	for i := range da.Merges {
		if da.Merges[i].A != db.Merges[i].A || da.Merges[i].B != db.Merges[i].B {
			t.Fatalf("merge %d differs: %+v vs %+v", i, da.Merges[i], db.Merges[i])
		}
	}
}

func TestCompiledSpaceCentroid(t *testing.T) {
	vs, _ := blobs(2, 5, 0.5, 31)
	cs := NewCompiledSpace(vs.Vecs)
	members := []int{0, 3, 7}
	want := asVector(vs.Centroid(members))
	got := cs.Centroid(members).(vector.Compiled).Decompile(cs.Dict)
	if len(got) != len(want) {
		t.Fatalf("centroid nnz %d != %d", len(got), len(want))
	}
	for term, w := range want {
		if d := got[term] - w; d > 1e-12 || d < -1e-12 {
			t.Errorf("centroid[%s] = %g, want %g", term, got[term], w)
		}
	}
	if cs.Centroid(nil).(vector.Compiled).Len() != 0 {
		t.Error("empty centroid not empty")
	}
}

// TestVectorSpaceNormCache checks the lazily-filled norm cache agrees
// with direct norm computation and that caller-supplied caches are
// honored. Integer weights (see intBlobs) keep Norm sums exact so the
// comparisons below can be bitwise.
func TestVectorSpaceNormCache(t *testing.T) {
	vecs, _ := intBlobs(3, 4, 37)
	s := &VectorSpace{Vecs: vecs}
	if s.Norms != nil {
		t.Fatal("norms filled before first use")
	}
	p := s.Point(2).(normedVec)
	if s.Norms == nil {
		t.Fatal("norms not filled by Point")
	}
	if want := s.Vecs[2].Norm(); p.norm != want {
		t.Errorf("cached norm %g != %g", p.norm, want)
	}
	// Sim through cached norms must match plain Cosine.
	got := s.Sim(s.Point(0), s.Point(1))
	want := vector.Cosine(s.Vecs[0], s.Vecs[1])
	if d := got - want; d > 1e-12 || d < -1e-12 {
		t.Errorf("Sim %g != Cosine %g", got, want)
	}
	// Raw vector points (legacy callers) still work.
	if got := s.Sim(s.Vecs[0], s.Vecs[1]); got != want {
		t.Errorf("raw-point Sim %g != %g", got, want)
	}
}

// TestEmptyClusterRepairDistinct is the regression test for the
// duplicate-reseed bug: when two clusters empty in the same round, the
// repair must reseed them from two different points.
func TestEmptyClusterRepairDistinct(t *testing.T) {
	// Points 0,1 identical and 2,3 identical: seeding each as its own
	// singleton cluster guarantees clusters 1 and 3 lose every point to
	// clusters 0 and 2 (strict-> keeps the first of a tie) and empty in
	// the same round. Points 4 and 5 are the only repair candidates.
	vecs := []vector.Vector{
		{"a": 1}, {"a": 1},
		{"b": 1}, {"b": 1},
		{"c": 1}, {"d": 1},
	}
	s := &VectorSpace{Vecs: vecs}
	res := KMeans(s, 4, [][]int{{0}, {1}, {2}, {3}}, Options{MaxIter: 1})
	if len(res.Centroids) != 4 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	c1 := asVector(res.Centroids[1])
	c3 := asVector(res.Centroids[3])
	if reflect.DeepEqual(c1, c3) {
		t.Fatalf("clusters 1 and 3 reseeded to the same point: %v", c1)
	}
}

// TestFarthestPointExcludes unit-tests the repair primitives directly:
// one assigned-similarity scan feeds every farthest-point selection of
// the round.
func TestFarthestPointExcludes(t *testing.T) {
	s := &VectorSpace{Vecs: []vector.Vector{
		{"a": 1}, {"a": 1, "b": 0.2}, {"b": 1},
	}}
	assign := []int{0, 0, 0}
	cents := []Point{s.Point(0)}
	asg := newAssigner(s, 1, Options{Workers: 1}, 1)
	sims := asg.assignedSims(cents, assign)
	first := farthestIdx(sims, nil)
	if first != 2 {
		t.Fatalf("farthest = %d, want 2", first)
	}
	second := farthestIdx(sims, map[int]bool{first: true})
	if second == first {
		t.Fatal("exclusion ignored")
	}
	if second != 1 {
		t.Errorf("second farthest = %d, want 1", second)
	}
}

func BenchmarkKMeansEngines(b *testing.B) {
	vs, _ := blobs(8, 50, 1, 61)
	cs := NewCompiledSpace(vs.Vecs)
	run := func(s Space, workers int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				KMeans(s, 8, nil, Options{Rand: rand.New(rand.NewSource(int64(i))), Workers: workers})
			}
		}
	}
	b.Run("map-serial", run(vs, 1))
	b.Run("compiled-serial", run(cs, 1))
	b.Run("compiled-parallel", run(cs, 0))
}

func BenchmarkHACEngines(b *testing.B) {
	vs, _ := blobs(8, 20, 1, 71)
	cs := NewCompiledSpace(vs.Vecs)
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			HACWorkers(vs, AverageLinkage, 1)
		}
	})
	b.Run("compiled-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			HACWorkers(cs, AverageLinkage, 0)
		}
	})
}
