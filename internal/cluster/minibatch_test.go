package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"cafc/internal/obs"
	"cafc/internal/vector"
)

// TestMiniBatchDeterministic pins sampled-update determinism: a fixed
// Options.Rand seed fully determines batches, learning rates and the
// final assignment pass.
func TestMiniBatchDeterministic(t *testing.T) {
	s, _ := compiledBlobs(6, 30, 1, 41)
	mb := MiniBatch{BatchSize: 32, Rounds: 10}
	ref := MiniBatchKMeans(s, 6, nil, Options{Rand: rand.New(rand.NewSource(5))}, mb)
	got := MiniBatchKMeans(s, 6, nil, Options{Rand: rand.New(rand.NewSource(5))}, mb)
	if !reflect.DeepEqual(ref.Assign, got.Assign) {
		t.Error("mini-batch runs with the same seed diverged")
	}
	if !reflect.DeepEqual(ref.Centroids, got.Centroids) {
		t.Error("mini-batch centroids with the same seed diverged")
	}
}

// TestMiniBatchRecoversBlobs checks clustering quality on separable
// data: mini-batch updates must land every blob in its own cluster,
// agreeing with the labels up to cluster renaming.
func TestMiniBatchRecoversBlobs(t *testing.T) {
	s, labels := compiledBlobs(5, 40, 1, 23)
	res := MiniBatchKMeans(s, 5, blobSeeds(5, 40), Options{Rand: rand.New(rand.NewSource(5))}, MiniBatch{BatchSize: 64, Rounds: 30})
	if res.K != 5 {
		t.Fatalf("K = %d, want 5", res.K)
	}
	// Every ground-truth blob must map to exactly one cluster and every
	// cluster to exactly one blob.
	blobTo := map[int]int{}
	for i, c := range res.Assign {
		if prev, ok := blobTo[labels[i]]; ok && prev != c {
			t.Fatalf("blob %d split across clusters %d and %d", labels[i], prev, c)
		}
		blobTo[labels[i]] = c
	}
	clusterSeen := map[int]bool{}
	for _, c := range blobTo {
		if clusterSeen[c] {
			t.Fatal("two blobs merged into one cluster")
		}
		clusterSeen[c] = true
	}
}

// TestMiniBatchNoEmptyClusters pins the repair pass: even with k close
// to the corpus size (easy to leave a centroid unsampled), every cluster
// ends non-empty.
func TestMiniBatchNoEmptyClusters(t *testing.T) {
	s, _ := compiledBlobs(3, 8, 2, 77)
	res := MiniBatchKMeans(s, 12, nil, Options{Rand: rand.New(rand.NewSource(9))}, MiniBatch{BatchSize: 6, Rounds: 5})
	for c, sz := range Sizes(res.Assign, res.K) {
		if sz == 0 {
			t.Errorf("cluster %d empty after repair pass", c)
		}
	}
}

// TestMiniBatchFallsBackWithoutBlender pins the capability gate: a
// space without Blend runs plain KMeans, bit-identical.
func TestMiniBatchFallsBackWithoutBlender(t *testing.T) {
	intVecs, _ := intBlobs(4, 20, 31)
	s := &VectorSpace{Vecs: intVecs}
	ref := KMeans(s, 4, nil, Options{Rand: rand.New(rand.NewSource(5))})
	got := MiniBatchKMeans(s, 4, nil, Options{Rand: rand.New(rand.NewSource(5))}, MiniBatch{})
	if !reflect.DeepEqual(ref.Assign, got.Assign) {
		t.Error("blender-less space: mini-batch did not fall back to KMeans")
	}
}

// TestMiniBatchComposesWithApprox: the final full assignment pass goes
// through the kernel Options selects, so enabling Approx on a signable
// space records candidate counters and still returns a valid partition.
func TestMiniBatchComposesWithApprox(t *testing.T) {
	s, _ := compiledBlobs(6, 30, 1, 51)
	reg := obs.NewRegistry()
	opts := approxOpts(5, 1)
	opts.Metrics = reg
	res := MiniBatchKMeans(s, 6, nil, opts, MiniBatch{BatchSize: 32, Rounds: 8})
	if len(res.Assign) != s.Len() {
		t.Fatalf("assignment covers %d of %d points", len(res.Assign), s.Len())
	}
	assertRecorded(t, reg, "minibatch_runs_total", "approx_candidates_total", "distance_computations_total")
}

// TestBlendCompiledCentroidUpdate sanity-checks the centroid update
// against a hand-computed convex combination through the Space API.
func TestBlendCompiledCentroidUpdate(t *testing.T) {
	s := NewCompiledSpace([]vector.Vector{
		{"a": 2, "b": 0},
		{"b": 4},
	})
	out := s.Blend(s.Point(0), s.Point(1), 0.25).(vector.Compiled)
	want := vector.Compile(vector.Vector{"a": 1.5, "b": 1}, s.Dict)
	if !reflect.DeepEqual(out.IDs, want.IDs) {
		t.Fatalf("blend IDs = %v, want %v", out.IDs, want.IDs)
	}
	for i := range out.Weights {
		if out.Weights[i] != want.Weights[i] {
			t.Errorf("blend weight[%d] = %v, want %v", i, out.Weights[i], want.Weights[i])
		}
	}
}
