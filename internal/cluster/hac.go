package cluster

import (
	"time"

	"cafc/internal/obs"
)

// Linkage selects how HAC scores the similarity between two clusters.
type Linkage int

const (
	// SingleLinkage merges on the maximum pairwise similarity.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges on the minimum pairwise similarity.
	CompleteLinkage
	// AverageLinkage merges on the mean pairwise similarity (UPGMA).
	AverageLinkage
)

// String returns the linkage name.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	}
	return "unknown"
}

// Merge records one agglomeration step of HAC: clusters A and B (ids in
// the dendrogram numbering: leaves are 0..n-1, internal nodes n, n+1, ...)
// merged at the given similarity.
type Merge struct {
	A, B int
	Sim  float64
	ID   int
}

// Dendrogram is the full merge history of an HAC run.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// CutK returns the assignment produced by stopping the agglomeration when
// k clusters remain, relabelled to 0..k-1 in first-seen order.
func (d *Dendrogram) CutK(k int) []int {
	if k < 1 {
		k = 1
	}
	parent := make(map[int]int)
	steps := d.N - k
	if steps > len(d.Merges) {
		steps = len(d.Merges)
	}
	for i := 0; i < steps; i++ {
		m := d.Merges[i]
		parent[m.A] = m.ID
		parent[m.B] = m.ID
	}
	root := func(x int) int {
		for {
			p, ok := parent[x]
			if !ok {
				return x
			}
			x = p
		}
	}
	assign := make([]int, d.N)
	label := make(map[int]int)
	for i := 0; i < d.N; i++ {
		r := root(i)
		id, ok := label[r]
		if !ok {
			id = len(label)
			label[r] = id
		}
		assign[i] = id
	}
	return assign
}

// HAC runs hierarchical agglomerative clustering over all points and
// returns the dendrogram. Pairwise similarities between points are
// computed once (O(n²) memory) and merged cluster similarities maintained
// with Lance–Williams updates, so the run is O(n³) worst case but with a
// small constant — ample for corpus sizes in the hundreds to low
// thousands. The initial similarity matrix and the per-step best-pair
// scan are sharded over one worker per CPU; see HACWorkers for an
// explicit pool size.
func HAC(s Space, linkage Linkage) *Dendrogram {
	return HACWorkers(s, linkage, 0)
}

// HACWorkers is HAC with an explicit worker-pool size (0 means one per
// CPU, 1 forces serial). The result is bit-identical for every worker
// count: shard writes are index-disjoint and the best-pair reduction
// preserves the serial scan's first-maximal tie break.
func HACWorkers(s Space, linkage Linkage, workers int) *Dendrogram {
	return HACOpts(s, linkage, Options{Workers: workers})
}

// HACOpts is HAC with full Options: worker-pool size plus optional
// metrics. A non-nil Options.Metrics receives the initial-matrix and
// per-merge-step timings (hac_matrix_seconds, hac_merge_seconds,
// hac_merges_total) without changing the dendrogram.
func HACOpts(s Space, linkage Linkage, opts Options) *Dendrogram {
	workers := opts.Workers
	n := s.Len()
	d := &Dendrogram{N: n}
	if n == 0 {
		return d
	}
	var matrixHist, mergeHist *obs.Histogram
	var mergeCounter *obs.Counter
	if reg := opts.Metrics; reg != nil {
		reg.Counter("hac_runs_total").Inc()
		matrixHist = reg.Histogram("hac_matrix_seconds", obs.DurationBuckets)
		mergeHist = reg.Histogram("hac_merge_seconds", obs.DurationBuckets)
		mergeCounter = reg.Counter("hac_merges_total")
	}
	// active clusters, indexed densely; each has a dendrogram id and size.
	type clus struct {
		id   int
		size int
	}
	clusters := make([]clus, n)
	points := make([]Point, n)
	for i := 0; i < n; i++ {
		clusters[i] = clus{id: i, size: 1}
		points[i] = s.Point(i)
	}
	// sim[i][j] for i<j among active cluster slots.
	sim := make([][]float64, n)
	for i := 0; i < n; i++ {
		sim[i] = make([]float64, n)
	}
	// Initial O(n²) pairwise matrix, sharded over rows. Mirror writes
	// land in other shards' rows but always at distinct elements.
	var t0 time.Time
	if matrixHist != nil {
		t0 = time.Now()
	}
	parallelRange(n, workers, timedBody(opts.Metrics, "hac_matrix", func(start, end, _ int) {
		for i := start; i < end; i++ {
			for j := i + 1; j < n; j++ {
				v := s.Sim(points[i], points[j])
				sim[i][j], sim[j][i] = v, v
			}
		}
	}))
	matrixHist.ObserveSince(t0)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	cands := make([]bestPair, maxShards(n, workers))
	// The scan body is wrapped once, outside the merge loop, so the
	// instrumented variant resolves its metric handles a single time.
	scanBody := timedBody(opts.Metrics, "hac_scan", func(start, end, shard int) {
		bi, bj, best := -1, -1, -1.0
		for i := start; i < end; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				if sim[i][j] > best {
					bi, bj, best = i, j, sim[i][j]
				}
			}
		}
		cands[shard] = bestPair{i: bi, j: bj, sim: best}
	})
	nextID := n
	for remaining := n; remaining > 1; remaining-- {
		if mergeHist != nil {
			t0 = time.Now()
		}
		// Find the most similar pair of active clusters: per-shard
		// argmax, merged in shard order so the first maximal pair wins
		// exactly as in a serial left-to-right scan.
		for c := range cands {
			cands[c] = bestPair{i: -1, j: -1, sim: -1}
		}
		parallelRange(n, workers, scanBody)
		bi, bj, best := mergeBestPairs(cands)
		if bi < 0 {
			break
		}
		// Merge bj into bi.
		d.Merges = append(d.Merges, Merge{A: clusters[bi].id, B: clusters[bj].id, Sim: best, ID: nextID})
		ni, nj := float64(clusters[bi].size), float64(clusters[bj].size)
		for x := 0; x < n; x++ {
			if !alive[x] || x == bi || x == bj {
				continue
			}
			var v float64
			switch linkage {
			case SingleLinkage:
				v = max2(sim[bi][x], sim[bj][x])
			case CompleteLinkage:
				v = min2(sim[bi][x], sim[bj][x])
			default: // AverageLinkage
				v = (ni*sim[bi][x] + nj*sim[bj][x]) / (ni + nj)
			}
			sim[bi][x], sim[x][bi] = v, v
		}
		clusters[bi] = clus{id: nextID, size: clusters[bi].size + clusters[bj].size}
		alive[bj] = false
		nextID++
		mergeHist.ObserveSince(t0)
		mergeCounter.Inc()
	}
	return d
}

// HACCut is a convenience wrapper: run HAC and cut at k clusters,
// returning a Result with recomputed centroids.
func HACCut(s Space, k int, linkage Linkage) Result {
	return HACCutOpts(s, k, linkage, Options{})
}

// HACCutOpts is HACCut with full Options (worker-pool size, metrics).
func HACCutOpts(s Space, k int, linkage Linkage, opts Options) Result {
	d := HACOpts(s, linkage, opts)
	assign := d.CutK(k)
	kk := 0
	for _, a := range assign {
		if a+1 > kk {
			kk = a + 1
		}
	}
	members := Members(assign, kk)
	centroids := make([]Point, kk)
	for c, ms := range members {
		centroids[c] = s.Centroid(ms)
	}
	return Result{Assign: assign, K: kk, Iterations: len(d.Merges), Centroids: centroids}
}

// HACFromGroups runs agglomerative clustering that starts from the given
// initial groups (plus singletons for any point not covered by a group)
// instead of all-singletons, merging until k groups remain. Pairwise point
// similarities are aggregated per linkage (max/min/mean) to give the
// initial inter-group similarities, and maintained with Lance–Williams
// updates afterwards. This is the "CAFC-CH (HAC)" configuration of the
// paper's Table 2: hub clusters as the starting partition of HAC.
func HACFromGroups(s Space, groups [][]int, k int, linkage Linkage) Result {
	return HACFromGroupsOpts(s, groups, k, linkage, Options{})
}

// HACFromGroupsOpts is HACFromGroups with full Options (metrics only;
// the group agglomeration itself is serial).
func HACFromGroupsOpts(s Space, groups [][]int, k int, linkage Linkage, opts Options) Result {
	n := s.Len()
	// Assign each point to at most one starting group.
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	var gs [][]int
	for _, g := range groups {
		var mine []int
		for _, p := range g {
			if p >= 0 && p < n && owner[p] == -1 {
				owner[p] = len(gs)
				mine = append(mine, p)
			}
		}
		if len(mine) > 0 {
			gs = append(gs, mine)
		}
	}
	for i := 0; i < n; i++ {
		if owner[i] == -1 {
			owner[i] = len(gs)
			gs = append(gs, []int{i})
		}
	}
	m := len(gs)
	if m == 0 {
		return Result{Assign: make([]int, 0), K: 0}
	}
	// Pairwise point similarities.
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		pts[i] = s.Point(i)
	}
	psim := make([][]float64, n)
	for i := range psim {
		psim[i] = make([]float64, n)
	}
	var t0 time.Time
	matrixHist := opts.Metrics.Histogram("hac_matrix_seconds", obs.DurationBuckets)
	if matrixHist != nil {
		t0 = time.Now()
	}
	parallelRange(n, 0, timedBody(opts.Metrics, "hac_matrix", func(start, end, _ int) {
		for i := start; i < end; i++ {
			for j := i + 1; j < n; j++ {
				v := s.Sim(pts[i], pts[j])
				psim[i][j], psim[j][i] = v, v
			}
		}
	}))
	matrixHist.ObserveSince(t0)
	// Initial inter-group similarities by linkage aggregation.
	agg := func(a, b []int) float64 {
		switch linkage {
		case SingleLinkage:
			best := -1.0
			for _, x := range a {
				for _, y := range b {
					if psim[x][y] > best {
						best = psim[x][y]
					}
				}
			}
			return best
		case CompleteLinkage:
			worst := 2.0
			for _, x := range a {
				for _, y := range b {
					if psim[x][y] < worst {
						worst = psim[x][y]
					}
				}
			}
			return worst
		default:
			var sum float64
			for _, x := range a {
				for _, y := range b {
					sum += psim[x][y]
				}
			}
			return sum / float64(len(a)*len(b))
		}
	}
	gsim := make([][]float64, m)
	for i := range gsim {
		gsim[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			v := agg(gs[i], gs[j])
			gsim[i][j], gsim[j][i] = v, v
		}
	}
	alive := make([]bool, m)
	sizes := make([]int, m)
	for i := range alive {
		alive[i] = true
		sizes[i] = len(gs[i])
	}
	groupMerges := opts.Metrics.Counter("hac_group_merges_total")
	remaining := m
	for remaining > k {
		bi, bj, best := -1, -1, -1.0
		for i := 0; i < m; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < m; j++ {
				if alive[j] && gsim[i][j] > best {
					bi, bj, best = i, j, gsim[i][j]
				}
			}
		}
		if bi < 0 {
			break
		}
		groupMerges.Inc()
		ni, nj := float64(sizes[bi]), float64(sizes[bj])
		for x := 0; x < m; x++ {
			if !alive[x] || x == bi || x == bj {
				continue
			}
			var v float64
			switch linkage {
			case SingleLinkage:
				v = max2(gsim[bi][x], gsim[bj][x])
			case CompleteLinkage:
				v = min2(gsim[bi][x], gsim[bj][x])
			default:
				v = (ni*gsim[bi][x] + nj*gsim[bj][x]) / (ni + nj)
			}
			gsim[bi][x], gsim[x][bi] = v, v
		}
		gs[bi] = append(gs[bi], gs[bj]...)
		sizes[bi] += sizes[bj]
		alive[bj] = false
		remaining--
	}
	assign := make([]int, n)
	var centroids []Point
	label := 0
	for i := 0; i < m; i++ {
		if !alive[i] {
			continue
		}
		for _, p := range gs[i] {
			assign[p] = label
		}
		centroids = append(centroids, s.Centroid(gs[i]))
		label++
	}
	return Result{Assign: assign, K: label, Centroids: centroids}
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
