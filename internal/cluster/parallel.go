package cluster

import (
	"runtime"
	"sync"
	"time"

	"cafc/internal/obs"
)

// The parallel kernels in this package share one contract: for any
// worker count, results are bit-identical to the serial run. That holds
// because every kernel follows the same shape — workers write to
// disjoint, index-addressed slots (never a shared accumulator), and any
// reduction over those slots happens afterwards, serially, in index
// order. No floating-point sum is ever reassociated by sharding.

// resolveWorkers maps an Options-style worker count to a concrete pool
// size: <= 0 means one worker per available CPU.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// parallelMinSpan is the smallest index range worth fanning out;
// below it goroutine overhead dominates and the work runs inline.
const parallelMinSpan = 64

// parallelRange splits [0, n) into at most `workers` contiguous chunks
// and runs body on each concurrently, waiting for all to finish.
// body(start, end, shard) must only write state owned by its index
// range (or by its shard number). workers <= 1, or n below the fan-out
// threshold, runs inline on the calling goroutine.
func parallelRange(n, workers int, body func(start, end, shard int)) {
	parallelRangeMin(n, workers, parallelMinSpan, body)
}

// parallelRangeMin is parallelRange with a caller-chosen inline
// threshold — kernels whose per-index work is heavy (e.g. one centroid
// per index) fan out even for small n.
func parallelRangeMin(n, workers, minSpan int, body func(start, end, shard int)) {
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minSpan {
		body(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	shard := 0
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end, shard int) {
			defer wg.Done()
			body(start, end, shard)
		}(start, end, shard)
		shard++
	}
	wg.Wait()
}

// ParallelRange exposes the sharded fan-out to sibling layers (the
// model build in internal/cafc shards document-frequency counting and
// vector compilation with it), under the same contract as every kernel
// here: body(start, end, shard) writes only state owned by its index
// range or shard slot, reductions happen serially afterwards, and the
// outcome is bit-identical for every worker count.
func ParallelRange(n, workers int, body func(start, end, shard int)) {
	parallelRange(n, workers, body)
}

// MaxShards is maxShards for external callers sizing per-shard slots
// to pair with ParallelRange.
func MaxShards(n, workers int) int { return maxShards(n, workers) }

// maxShards returns the number of shards parallelRange will use for n
// items and the given worker request — callers size per-shard result
// slots with it.
func maxShards(n, workers int) int {
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// timedBody wraps a parallelRange body so each shard's busy time lands
// in the cluster_shard_busy_seconds{kernel=...} histogram and shard
// executions in cluster_shard_runs_total — the utilization signal for
// the worker pool (a wide busy-time spread means shards are unbalanced;
// runs per fan-out shows how often work actually forked). With a nil
// registry the body is returned untouched, so un-instrumented kernels
// pay nothing.
func timedBody(reg *obs.Registry, kernel string, body func(start, end, shard int)) func(start, end, shard int) {
	if reg == nil {
		return body
	}
	busy := reg.Histogram("cluster_shard_busy_seconds", obs.DurationBuckets, "kernel", kernel)
	runs := reg.Counter("cluster_shard_runs_total", "kernel", kernel)
	return func(start, end, shard int) {
		t0 := time.Now()
		body(start, end, shard)
		busy.ObserveSince(t0)
		runs.Inc()
	}
}

// bestPair is one shard's candidate for an argmax scan over an upper-
// triangular similarity matrix.
type bestPair struct {
	i, j int
	sim  float64
}

// mergeBestPairs reduces per-shard argmax candidates in shard order
// with the same strict `>` the serial scan uses, so the winning pair is
// always the lexicographically smallest maximal pair — identical to a
// serial left-to-right scan.
func mergeBestPairs(cands []bestPair) (int, int, float64) {
	bi, bj, best := -1, -1, -1.0
	for _, c := range cands {
		if c.i >= 0 && c.sim > best {
			bi, bj, best = c.i, c.j, c.sim
		}
	}
	return bi, bj, best
}
