package cluster

// CentroidScorer is an optional capability a Space can implement: build
// a one-shot index over a centroid set so a point can be scored against
// every centroid at once, cheaper than k independent Sim calls. The
// k-means kernels, the classifier and the streaming mini-batch pass all
// probe for it and fall back to plain Sim loops when it is absent.
//
// The contract is strict bit-identity: for every point i and centroid c,
// the similarity the index produces must equal Sim(Point(i),
// centroids[c]) exactly — same floating-point operations in the same
// order — so swapping the index in can never change an assignment. A
// space whose Sim cannot be reproduced deterministically term-by-term
// (e.g. the map-backed VectorSpace, where map iteration order would
// reassociate the dot-product sum) must simply not implement this
// interface.
type CentroidScorer interface {
	Space
	// NewCentroidIndex indexes the given centroid set. It may return nil
	// when these particular centroids cannot be indexed (wrong point
	// representation, engine disabled); callers must handle nil by
	// falling back to Sim.
	NewCentroidIndex(centroids []Point) CentroidIndex
}

// CentroidIndex scores one point of the originating space against every
// indexed centroid. Implementations are immutable after construction
// and safe for concurrent use; callers own sims and scratch, which is
// what makes the index shardable across the parallel kernels.
type CentroidIndex interface {
	// Sims fills sims[c] with the similarity of point i to centroid c,
	// bit-identical to the space's Sim. sims must have length k (the
	// indexed centroid count) and scratch at least ScratchLen().
	Sims(sims, scratch []float64, i int)
	// SimOne returns the similarity of point i to the single centroid c,
	// bit-identical to both Sim and the corresponding Sims entry, in
	// O(point nnz) — the bound-pruned kernels score individual surviving
	// centroids, where a full Sims pass (or a merge join against a dense
	// centroid) would waste the pruning.
	SimOne(scratch []float64, i, c int) float64
	// ScratchLen is the scratch-buffer length Sims requires (0 when none).
	ScratchLen() int
}
