package cluster

import (
	"math/rand"
)

// Silhouette computes the mean silhouette coefficient of an assignment:
// for each point, (b-a)/max(a,b) where a is the mean distance to its own
// cluster's other members and b the smallest mean distance to another
// cluster. Values near 1 mean tight, well-separated clusters; values
// near 0 (or negative) mean overlapping ones. Points in singleton
// clusters contribute 0, the standard convention.
//
// The paper fixes k = 8 because its gold standard has eight domains; a
// library user organizing an unlabeled crawl does not know k, so this
// file adds the classic silhouette criterion and a BestK search on top
// of the paper's algorithms.
func Silhouette(s Space, assign []int, k int) float64 {
	return SilhouetteWorkers(s, assign, k, 0)
}

// SilhouetteWorkers is Silhouette with an explicit worker-pool size (0
// means one per CPU, 1 forces serial). The O(n²) double loop is sharded
// by outer point; each point's coefficient lands in its own slot and
// the final mean is reduced serially in index order, so the value is
// bit-identical for every worker count.
func SilhouetteWorkers(s Space, assign []int, k, workers int) float64 {
	n := s.Len()
	if n == 0 {
		return 0
	}
	members := Members(assign, k)
	// Pairwise distances via the space's similarity.
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = s.Point(i)
	}
	dist := func(i, j int) float64 { return Dist(s.Sim(pts[i], pts[j])) }

	coeff := make([]float64, n)
	inCluster := make([]bool, n)
	parallelRange(n, workers, func(start, end, _ int) {
		for i := start; i < end; i++ {
			c := assign[i]
			if c < 0 || c >= k {
				continue
			}
			inCluster[i] = true
			own := members[c]
			if len(own) <= 1 {
				continue // silhouette 0 for singletons
			}
			var a float64
			for _, m := range own {
				if m != i {
					a += dist(i, m)
				}
			}
			a /= float64(len(own) - 1)
			b := -1.0
			for oc := 0; oc < k; oc++ {
				if oc == c || len(members[oc]) == 0 {
					continue
				}
				var d float64
				for _, m := range members[oc] {
					d += dist(i, m)
				}
				d /= float64(len(members[oc]))
				if b < 0 || d < b {
					b = d
				}
			}
			if b < 0 {
				continue // only one non-empty cluster
			}
			max := a
			if b > max {
				max = b
			}
			if max > 0 {
				coeff[i] = (b - a) / max
			}
		}
	})
	var total float64
	counted := 0
	for i := 0; i < n; i++ {
		if inCluster[i] {
			counted++
			total += coeff[i]
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// KScore is one candidate k with its quality.
type KScore struct {
	K          int
	Silhouette float64
}

// BestK searches k in [kMin, kMax] by running k-means `restarts` times
// per candidate (seeded deterministically from rng) and scoring the best
// restart's assignment with the silhouette coefficient. It returns the
// winning k and the full score curve.
func BestK(s Space, kMin, kMax, restarts int, rng *rand.Rand) (int, []KScore) {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if restarts <= 0 {
		restarts = 3
	}
	if kMin < 2 {
		kMin = 2
	}
	if kMax > s.Len() {
		kMax = s.Len()
	}
	var curve []KScore
	bestK, bestScore := kMin, -2.0
	for k := kMin; k <= kMax; k++ {
		score := -2.0
		for r := 0; r < restarts; r++ {
			res := KMeans(s, k, nil, Options{Rand: rand.New(rand.NewSource(rng.Int63()))})
			if sil := Silhouette(s, res.Assign, res.K); sil > score {
				score = sil
			}
		}
		curve = append(curve, KScore{K: k, Silhouette: score})
		if score > bestScore {
			bestK, bestScore = k, score
		}
	}
	return bestK, curve
}
