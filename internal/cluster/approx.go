package cluster

import "cafc/internal/vector"

// This file is the LSH candidate-generation tier: SimHash signatures
// over points and centroids restrict each assignment scan to the top-C
// candidate centroids by signature Hamming distance, so a point costs
// O(k) XOR+popcounts plus C exact similarities instead of k exact
// similarities. Unlike the bound-pruned kernels in prune.go this tier
// is genuinely approximate — a near-tie the hyperplanes mis-rank can
// send a point to its second-best centroid — which is why it is opt-in
// (Options.Approx.Enabled), why the exact kernels remain the semantic
// reference, and why every benchmark that exercises it reports
// recall-vs-exact (fraction of identical final assignments) next to the
// speedup. Within the evaluated candidate set the comparison semantics
// are the exhaustive kernel's own: similarities compared with strict
// `>` in ascending centroid order, so the winner is the lowest-index
// argmax over the candidates.

// Approx configures the opt-in LSH candidate tier of the k-means
// assignment kernels (and, through cafc.Classifier, the serve path).
// The zero value disables it.
type Approx struct {
	// Enabled turns the candidate tier on. The space must also implement
	// Signer; otherwise the run silently falls back to the exact kernel
	// selected by Options.Prune (approximation is an optimization, never
	// a requirement).
	Enabled bool
	// Bits is the SimHash signature width, rounded up to a multiple of
	// 64; 0 means 128. Wider signatures rank candidates more faithfully
	// and cost proportionally more to compute (signatures are computed
	// once per point, and once per centroid per iteration).
	Bits int
	// Candidates is C, the number of nearest-by-Hamming centroids whose
	// exact similarity is evaluated per point; 0 means 2. Centroids tied
	// with the C-th candidate's Hamming distance are all included (a tie
	// carries no ranking information, so dropping a tied centroid would
	// be an arbitrary error source); when the tie extension reaches all
	// k centroids the point degenerates to the exact exhaustive scan and
	// is counted in approx_fallback_total.
	Candidates int
	// Margin widens the candidate set: every centroid within Margin
	// Hamming bits of the C-th candidate is evaluated too, not only
	// exact ties. 0 means Bits/16 (8 bits at the default width); < 0
	// means exact ties only. A SimHash ranking is a noisy estimate of
	// the cosine ordering — two centroids whose true similarities are
	// close land within a few bits of each other, and which one the
	// hyperplanes rank first is a coin flip — so a point's true best
	// centroid is often *near* the Hamming front without being on it.
	// The margin spends extra exact evaluations precisely on those
	// ambiguous points (solid points' runners-up sit far outside it)
	// and is what lifts assignment recall from ~0.93 to >= 0.99 on real
	// two-space corpora.
	Margin int
	// Seed draws the hyperplane set; 0 means 1. Fixed seed ⇒ fully
	// deterministic signatures and therefore fully deterministic
	// (approximate) assignments.
	Seed int64
}

func (a Approx) WithDefaults() Approx {
	if a.Bits == 0 {
		a.Bits = 128
	}
	if a.Candidates == 0 {
		a.Candidates = 2
	}
	if a.Margin == 0 {
		a.Margin = a.Bits / 16
	} else if a.Margin < 0 {
		a.Margin = 0
	}
	if a.Seed == 0 {
		a.Seed = 1
	}
	return a
}

// Signer is an optional Space capability: spaces that can compute
// SimHash signatures over their points and over centroid Points expose
// a PointSigner for a given width and seed. CompiledSpace and
// cafc.Model implement it over packed vectors; the map-backed
// VectorSpace deliberately does not (signatures must be deterministic,
// and map iteration is not — the same reason it skips CentroidScorer).
type Signer interface {
	Space
	// NewPointSigner returns a signer for this space, or nil when the
	// space cannot sign (engine disabled). bits is rounded up to a
	// multiple of 64.
	NewPointSigner(bits int, seed int64) PointSigner
}

// PointSigner computes signatures for one space. Implementations carry
// per-instance scratch and are therefore NOT safe for concurrent use;
// the approx kernel allocates one per shard.
type PointSigner interface {
	// Words is the signature length in uint64 words.
	Words() int
	// SignPoint writes the signature of point i into dst (length Words).
	SignPoint(dst []uint64, i int)
	// SignCentroid writes the signature of an arbitrary centroid Point
	// into dst. ok=false means the point's representation cannot be
	// signed (e.g. an unpacked map point); the caller must fall back to
	// the exact kernel for the whole run, since a partial signature set
	// cannot rank candidates.
	SignCentroid(dst []uint64, c Point) bool
}

// approxAssigner is the candidate-generation assignment kernel. Point
// signatures are computed once (points are immutable); centroid
// signatures are recomputed every round (centroids move). Candidate
// counts and degenerate full scans accumulate in per-shard slots like
// the distance counters, flushed once per run by KMeans.
type approxAssigner struct {
	assignerBase
	approx  Approx
	signers []PointSigner // one per shard (signers carry scratch)
	words   int
	sigs    []uint64 // n×words point signatures, computed lazily once
	csigs   []uint64 // k×words centroid signatures, per round
	// ham is one per-shard Hamming-distance buffer (length k); hist is
	// the per-shard counting histogram over Hamming values (length
	// bits+1) used to find the C-th smallest distance in O(k + bits).
	ham  [][]int
	hist [][]int
	// cands / fallbacks are per-shard work counters.
	cands     []int64
	fallbacks []int64
}

// newApproxAssigner wires the candidate tier over the exact machinery,
// or returns nil when the space cannot sign — the caller then falls
// back to the configured exact kernel.
func newApproxAssigner(s Space, k int, opts Options, shards int) *approxAssigner {
	sg, ok := s.(Signer)
	if !ok {
		return nil
	}
	ap := opts.Approx.WithDefaults()
	signers := make([]PointSigner, shards)
	for i := range signers {
		if signers[i] = sg.NewPointSigner(ap.Bits, ap.Seed); signers[i] == nil {
			return nil
		}
	}
	a := &approxAssigner{
		assignerBase: newAssignerBase(s, k, opts, shards),
		approx:       ap,
		signers:      signers,
		words:        signers[0].Words(),
		ham:          make([][]int, shards),
		hist:         make([][]int, shards),
		cands:        make([]int64, shards),
		fallbacks:    make([]int64, shards),
	}
	for i := range a.ham {
		a.ham[i] = make([]int, k)
		a.hist[i] = make([]int, ap.Bits+1)
	}
	return a
}

func (a *approxAssigner) candTotal() int64 {
	var t int64
	for _, v := range a.cands {
		t += v
	}
	return t
}

func (a *approxAssigner) fallbackTotal() int64 {
	var t int64
	for _, v := range a.fallbacks {
		t += v
	}
	return t
}

func (a *approxAssigner) assign(cents []Point, assign, movedBy []int) {
	n := len(assign)
	k := a.k
	w := a.words
	if a.sigs == nil {
		// One-time point-signature pass, sharded like every other kernel
		// (each worker signs its own contiguous range with its own
		// signer, writing disjoint slots — worker count cannot change a
		// single bit).
		a.sigs = make([]uint64, n*w)
		parallelRange(n, a.workers, timedBody(a.reg, "kmeans_sign", func(start, end, shard int) {
			for i := start; i < end; i++ {
				a.signers[shard].SignPoint(a.sigs[i*w:(i+1)*w], i)
			}
		}))
	}
	// Centroid signatures for this round. Any unsignable centroid aborts
	// the candidate tier for the round (all-exact scan) rather than
	// ranking against a partial signature set.
	if a.csigs == nil {
		a.csigs = make([]uint64, k*w)
	}
	signed := true
	for c := range cents {
		if !a.signers[0].SignCentroid(a.csigs[c*w:(c+1)*w], cents[c]) {
			signed = false
			break
		}
	}
	idx := a.index(cents)
	if !signed {
		parallelRange(n, a.workers, timedBody(a.reg, "kmeans_assign", func(start, end, shard int) {
			for i := start; i < end; i++ {
				a.fallbacks[shard]++
				best, _, _ := a.scanPoint(i, cents, idx, shard)
				a.dist[shard] += int64(k)
				if assign[i] != best {
					movedBy[shard]++
					assign[i] = best
				}
			}
		}))
		return
	}
	C := a.approx.Candidates
	if C > k {
		C = k
	}
	parallelRange(n, a.workers, timedBody(a.reg, "kmeans_assign", func(start, end, shard int) {
		ham := a.ham[shard]
		hist := a.hist[shard]
		for i := start; i < end; i++ {
			sig := a.sigs[i*w : (i+1)*w]
			for h := range hist {
				hist[h] = 0
			}
			for c := 0; c < k; c++ {
				d := vector.Hamming(sig, a.csigs[c*w:(c+1)*w])
				ham[c] = d
				hist[d]++
			}
			// Candidate threshold: the C-th smallest Hamming distance,
			// plus the tie margin. Every centroid at or below it is
			// evaluated exactly — near-ties with the C-th candidate
			// extend the set rather than being cut arbitrarily.
			threshold, seen := 0, 0
			for h := range hist {
				seen += hist[h]
				if seen >= C {
					threshold = h + a.approx.Margin
					break
				}
			}
			// The currently-assigned centroid is always evaluated, even
			// when its signature fell outside the margin: a point then
			// only moves when some candidate exactly beats its current
			// home, so per-point quality is monotone across rounds and
			// the run cannot oscillate between mis-ranked near-ties.
			if cur := assign[i]; cur >= 0 && ham[cur] > threshold {
				ham[cur] = threshold
			}
			best, bestSim, evaluated := -1, -1.0, 0
			for c := 0; c < k; c++ {
				if ham[c] > threshold {
					continue
				}
				sim := a.simOne(i, c, cents, idx, shard)
				evaluated++
				// Strict `>` in ascending candidate order: the
				// lowest-index argmax over the evaluated set, matching
				// the exhaustive kernel's comparison rule.
				if sim > bestSim {
					best, bestSim = c, sim
				}
			}
			a.dist[shard] += int64(evaluated)
			a.cands[shard] += int64(evaluated)
			if evaluated == k {
				a.fallbacks[shard]++
			}
			if assign[i] != best {
				movedBy[shard]++
				assign[i] = best
			}
		}
	}))
}
