// Package cluster implements the clustering machinery the paper builds on:
// k-means with the paper's "<10% of points move" stop criterion (Algorithm
// 1's skeleton), hierarchical agglomerative clustering with single,
// complete and average linkage (the Section 4.3 baseline), greedy
// farthest-first selection (Algorithm 3's seed picker), and k-means++
// seeding as an additional baseline.
//
// The algorithms are generic over a Space so the same code clusters plain
// vectors in tests and two-feature-space form pages in package cafc.
package cluster

import (
	"sync"

	"cafc/internal/vector"
)

// Point is an opaque cluster representative (a centroid). Spaces define
// its concrete type.
type Point interface{}

// Space abstracts the objects being clustered. Similarities must be in
// [0, 1], with 1 meaning identical.
type Space interface {
	// Len returns the number of objects.
	Len() int
	// Point returns the representative of the single object i.
	Point(i int) Point
	// Centroid builds the representative of a set of objects.
	Centroid(members []int) Point
	// Sim returns the similarity between two representatives.
	Sim(a, b Point) float64
}

// Dist converts a similarity to a distance in [0, 1].
func Dist(sim float64) float64 { return 1 - sim }

// VectorSpace is the simplest Space: one sparse vector per object with
// cosine similarity. It backs tests and single-feature-space baselines.
// Per-vector norms are computed once, lazily, on first use — the seed
// implementation recomputed both norms inside every Cosine call, which
// dominated the map path's cost. For packed vectors with merge-join
// similarity, see CompiledSpace.
type VectorSpace struct {
	Vecs []vector.Vector
	// Norms caches the Euclidean length of each vector, filled on first
	// Point call. Leave nil; it is populated lazily.
	Norms []float64

	normOnce sync.Once
}

// normedVec is a vector paired with its cached norm, the Point type
// VectorSpace hands to the clustering kernels.
type normedVec struct {
	v    vector.Vector
	norm float64
}

// Len implements Space.
func (s *VectorSpace) Len() int { return len(s.Vecs) }

// norm returns the cached norm of vector i, filling the cache on first
// use. The once guard makes the lazy fill safe under the parallel
// kernels, which call Point concurrently.
func (s *VectorSpace) norm(i int) float64 {
	s.normOnce.Do(func() {
		if len(s.Norms) == len(s.Vecs) {
			return // caller supplied the cache
		}
		s.Norms = make([]float64, len(s.Vecs))
		for j, v := range s.Vecs {
			s.Norms[j] = v.Norm()
		}
	})
	return s.Norms[i]
}

// Point implements Space.
func (s *VectorSpace) Point(i int) Point {
	return normedVec{v: s.Vecs[i], norm: s.norm(i)}
}

// Centroid implements Space.
func (s *VectorSpace) Centroid(members []int) Point {
	vs := make([]vector.Vector, len(members))
	for i, m := range members {
		vs[i] = s.Vecs[m]
	}
	c := vector.Centroid(vs)
	return normedVec{v: c, norm: c.Norm()}
}

// Sim implements Space. Points made by this space carry cached norms;
// raw vector.Vector points (from older callers) still work, paying the
// norm computation on the fly.
func (s *VectorSpace) Sim(a, b Point) float64 {
	na, aok := a.(normedVec)
	nb, bok := b.(normedVec)
	if !aok || !bok {
		av, bv := asVector(a), asVector(b)
		return vector.Cosine(av, bv)
	}
	if na.norm == 0 || nb.norm == 0 {
		return 0
	}
	c := na.v.Dot(nb.v) / (na.norm * nb.norm)
	if c > 1 {
		c = 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// asVector unwraps either Point representation to its map vector.
func asVector(p Point) vector.Vector {
	if nv, ok := p.(normedVec); ok {
		return nv.v
	}
	return p.(vector.Vector)
}

// Members inverts an assignment slice into per-cluster member lists.
// Points assigned to negative clusters (unassigned) are skipped.
func Members(assign []int, k int) [][]int {
	out := make([][]int, k)
	for i, c := range assign {
		if c >= 0 && c < k {
			out[c] = append(out[c], i)
		}
	}
	return out
}

// Sizes returns the size of each cluster in an assignment.
func Sizes(assign []int, k int) []int {
	out := make([]int, k)
	for _, c := range assign {
		if c >= 0 && c < k {
			out[c]++
		}
	}
	return out
}
