// Package cluster implements the clustering machinery the paper builds on:
// k-means with the paper's "<10% of points move" stop criterion (Algorithm
// 1's skeleton), hierarchical agglomerative clustering with single,
// complete and average linkage (the Section 4.3 baseline), greedy
// farthest-first selection (Algorithm 3's seed picker), and k-means++
// seeding as an additional baseline.
//
// The algorithms are generic over a Space so the same code clusters plain
// vectors in tests and two-feature-space form pages in package cafc.
package cluster

import (
	"cafc/internal/vector"
)

// Point is an opaque cluster representative (a centroid). Spaces define
// its concrete type.
type Point interface{}

// Space abstracts the objects being clustered. Similarities must be in
// [0, 1], with 1 meaning identical.
type Space interface {
	// Len returns the number of objects.
	Len() int
	// Point returns the representative of the single object i.
	Point(i int) Point
	// Centroid builds the representative of a set of objects.
	Centroid(members []int) Point
	// Sim returns the similarity between two representatives.
	Sim(a, b Point) float64
}

// Dist converts a similarity to a distance in [0, 1].
func Dist(sim float64) float64 { return 1 - sim }

// VectorSpace is the simplest Space: one sparse vector per object with
// cosine similarity. It backs tests and single-feature-space baselines.
type VectorSpace struct {
	Vecs []vector.Vector
}

// Len implements Space.
func (s *VectorSpace) Len() int { return len(s.Vecs) }

// Point implements Space.
func (s *VectorSpace) Point(i int) Point { return s.Vecs[i] }

// Centroid implements Space.
func (s *VectorSpace) Centroid(members []int) Point {
	vs := make([]vector.Vector, len(members))
	for i, m := range members {
		vs[i] = s.Vecs[m]
	}
	return vector.Centroid(vs)
}

// Sim implements Space.
func (s *VectorSpace) Sim(a, b Point) float64 {
	return vector.Cosine(a.(vector.Vector), b.(vector.Vector))
}

// Members inverts an assignment slice into per-cluster member lists.
// Points assigned to negative clusters (unassigned) are skipped.
func Members(assign []int, k int) [][]int {
	out := make([][]int, k)
	for i, c := range assign {
		if c >= 0 && c < k {
			out[c] = append(out[c], i)
		}
	}
	return out
}

// Sizes returns the size of each cluster in an assignment.
func Sizes(assign []int, k int) []int {
	out := make([]int, k)
	for _, c := range assign {
		if c >= 0 && c < k {
			out[c]++
		}
	}
	return out
}
