package cluster

import (
	"cafc/internal/vector"
)

// CompiledSpace is the packed counterpart of VectorSpace: every object
// is a term-interned vector.Compiled with its norm fixed at compile
// time, so Sim is a merge join over sorted ID slices — no map lookups,
// no hashing, no norm recomputation. It implements Space, so KMeans,
// HAC, FarthestFirst and Silhouette run on packed data unchanged.
//
// After construction the space is immutable and safe for the parallel
// kernels to read from any number of goroutines.
type CompiledSpace struct {
	Dict *vector.Dict
	Vecs []vector.Compiled
}

// NewCompiledSpace compiles the given map vectors against a fresh
// dictionary. Weights are carried over exactly, so similarities agree
// with the map path up to floating-point summation order.
func NewCompiledSpace(vecs []vector.Vector) *CompiledSpace {
	d := vector.NewDict()
	cs := &CompiledSpace{Dict: d, Vecs: make([]vector.Compiled, len(vecs))}
	for i, v := range vecs {
		cs.Vecs[i] = vector.Compile(v, d)
	}
	return cs
}

// Len implements Space.
func (s *CompiledSpace) Len() int { return len(s.Vecs) }

// Point implements Space.
func (s *CompiledSpace) Point(i int) Point { return s.Vecs[i] }

// Centroid implements Space: members are summed into a dense
// vocabulary-sized accumulator and compiled back to packed form.
func (s *CompiledSpace) Centroid(members []int) Point {
	acc := vector.NewAccumulator(s.Dict.Len())
	for _, m := range members {
		acc.Add(s.Vecs[m])
	}
	if len(members) == 0 {
		return acc.Compile(0)
	}
	return acc.Compile(1 / float64(len(members)))
}

// Sim implements Space with packed cosine similarity.
func (s *CompiledSpace) Sim(a, b Point) float64 {
	return vector.CosineCompiled(a.(vector.Compiled), b.(vector.Compiled))
}
