package cluster

import (
	"cafc/internal/vector"
)

// CompiledSpace is the packed counterpart of VectorSpace: every object
// is a term-interned vector.Compiled with its norm fixed at compile
// time, so Sim is a merge join over sorted ID slices — no map lookups,
// no hashing, no norm recomputation. It implements Space, so KMeans,
// HAC, FarthestFirst and Silhouette run on packed data unchanged.
//
// After construction the space is immutable and safe for the parallel
// kernels to read from any number of goroutines.
type CompiledSpace struct {
	Dict *vector.Dict
	Vecs []vector.Compiled
}

// NewCompiledSpace compiles the given map vectors against a fresh
// dictionary. Weights are carried over exactly, so similarities agree
// with the map path up to floating-point summation order.
func NewCompiledSpace(vecs []vector.Vector) *CompiledSpace {
	d := vector.NewDict()
	cs := &CompiledSpace{Dict: d, Vecs: make([]vector.Compiled, len(vecs))}
	for i, v := range vecs {
		cs.Vecs[i] = vector.Compile(v, d)
	}
	return cs
}

// Len implements Space.
func (s *CompiledSpace) Len() int { return len(s.Vecs) }

// Point implements Space.
func (s *CompiledSpace) Point(i int) Point { return s.Vecs[i] }

// Centroid implements Space: members are summed into a dense
// vocabulary-sized accumulator and compiled back to packed form.
func (s *CompiledSpace) Centroid(members []int) Point {
	acc := vector.NewAccumulator(s.Dict.Len())
	for _, m := range members {
		acc.Add(s.Vecs[m])
	}
	if len(members) == 0 {
		return acc.Compile(0)
	}
	return acc.Compile(1 / float64(len(members)))
}

// Sim implements Space with packed cosine similarity.
func (s *CompiledSpace) Sim(a, b Point) float64 {
	return vector.CosineCompiled(a.(vector.Compiled), b.(vector.Compiled))
}

// NewCentroidIndex implements CentroidScorer: centroids become a
// term → centroid postings index, so a sparse point scores only the
// centroids it shares terms with instead of merge-joining against every
// centroid's full (dense) term set. Postings accumulate each dot product
// in ascending term-ID order — the same order as Compiled.Dot's merge
// join — and the cosine conversion is the shared CosineDot, so the
// similarities are bit-identical to Sim.
func (s *CompiledSpace) NewCentroidIndex(centroids []Point) CentroidIndex {
	vs := make([]vector.Compiled, len(centroids))
	for i, c := range centroids {
		cv, ok := c.(vector.Compiled)
		if !ok {
			return nil
		}
		vs[i] = cv
	}
	return &compiledCentroidIndex{space: s, post: vector.NewPostings(vs)}
}

// NewPointSigner implements Signer: single-space SimHash signatures
// over the packed vectors. Each signer carries its own projection
// scratch, so the approx kernel allocates one per shard.
func (s *CompiledSpace) NewPointSigner(bits int, seed int64) PointSigner {
	h := vector.NewSimHasher(bits, seed)
	return &compiledSigner{space: s, h: h, acc: make([]float64, h.Bits())}
}

type compiledSigner struct {
	space *CompiledSpace
	h     vector.SimHasher
	acc   []float64
}

func (cs *compiledSigner) Words() int { return cs.h.Words() }

func (cs *compiledSigner) SignPoint(dst []uint64, i int) {
	cs.h.Sign(dst, cs.acc, cs.space.Vecs[i])
}

func (cs *compiledSigner) SignCentroid(dst []uint64, c Point) bool {
	cv, ok := c.(vector.Compiled)
	if !ok {
		return false
	}
	cs.h.Sign(dst, cs.acc, cv)
	return true
}

// Blend implements Blender: the convex combination (1−t)·a + t·b on
// packed vectors — the mini-batch k-means centroid update.
func (s *CompiledSpace) Blend(a, b Point, t float64) Point {
	return vector.BlendCompiled(a.(vector.Compiled), b.(vector.Compiled), t)
}

type compiledCentroidIndex struct {
	space *CompiledSpace
	post  *vector.Postings
}

// ScratchLen implements CentroidIndex; the single-space index needs no
// scratch beyond the sims buffer itself.
func (ix *compiledCentroidIndex) ScratchLen() int { return 0 }

// Sims implements CentroidIndex.
func (ix *compiledCentroidIndex) Sims(sims, _ []float64, i int) {
	q := ix.space.Vecs[i]
	ix.post.Dots(q, sims)
	for c := range sims {
		sims[c] = vector.CosineDot(sims[c], q.Norm, ix.post.Norm(c))
	}
}

// SimOne implements CentroidIndex through the postings' dense row.
func (ix *compiledCentroidIndex) SimOne(_ []float64, i, c int) float64 {
	q := ix.space.Vecs[i]
	return vector.CosineDot(ix.post.DotOne(q, c), q.Norm, ix.post.Norm(c))
}
