package cluster

import (
	"math"

	"cafc/internal/obs"
)

// PruneMode selects the k-means assignment kernel. All modes produce
// bit-identical Result.Assign, Iterations and Centroids — pruning only
// skips point×centroid similarity evaluations that provably cannot
// change the lowest-index argmax the exhaustive scan would pick.
type PruneMode int

const (
	// PruneAuto (the zero value) picks the default pruned kernel,
	// currently Hamerly — pruning is on unless explicitly disabled.
	PruneAuto PruneMode = iota
	// PruneOff runs the exhaustive reference kernel: every point scores
	// every centroid every round.
	PruneOff
	// PruneHamerly keeps one upper bound (distance to the assigned
	// centroid) and one lower bound (distance to the second-closest) per
	// point — O(n) extra state, one drift update per point per round.
	PruneHamerly
	// PruneElkan keeps a per-centroid lower bound per point plus the
	// pairwise centroid-distance matrix — O(n·k) extra state, tightest
	// pruning, worth it when k is large or convergence is long.
	PruneElkan
)

// pruneAutoMinPoints is the corpus size below which PruneAuto selects
// the exhaustive kernel instead of Hamerly. BENCH_scale.json pins the
// crossover: at 5k pages Hamerly is *slower* than exhaustive (249ms vs
// 230ms) despite 1.67× fewer distance computations — with small, very
// sparse points the per-point bound maintenance (drift updates, the
// extra tightening similarity, branchy rescans) costs more than the
// merge-join similarities it saves — while at 20k pages Hamerly wins
// decisively (1418ms vs 2602ms, 3.4× fewer distances). The threshold
// sits between those measured sizes; TestPruneAutoCrossover pins the
// selection on both sides.
const pruneAutoMinPoints = 10000

// resolve maps PruneAuto to the concrete default kernel, ignoring the
// size heuristic (String and callers without a corpus use this).
func (m PruneMode) resolve() PruneMode {
	if m == PruneAuto {
		return PruneHamerly
	}
	return m
}

// resolveFor maps PruneAuto to the concrete kernel for a corpus of n
// points: exhaustive below pruneAutoMinPoints (where bound maintenance
// costs more wall-clock than it saves, see the constant), Hamerly
// above. Explicit modes pass through — a caller that asks for a kernel
// gets that kernel at any size. Bit-identical either way, so the
// heuristic is purely a wall-clock decision.
func (m PruneMode) resolveFor(n int) PruneMode {
	if m == PruneAuto && n < pruneAutoMinPoints {
		return PruneOff
	}
	return m.resolve()
}

// String implements fmt.Stringer.
func (m PruneMode) String() string {
	switch m.resolve() {
	case PruneOff:
		return "off"
	case PruneElkan:
		return "elkan"
	default:
		return "hamerly"
	}
}

// The bounds work in chord distance d(a,b) = sqrt(2·(1-Sim(a,b))). For
// the cosine-style similarities every Space here exposes (dot products
// of implicitly concatenated unit vectors, clamped into [0,1], with the
// zero-norm convention Sim = 0), this is the Euclidean distance between
// the normalized points, so the triangle inequality holds and
// Elkan/Hamerly bound maintenance is sound. Distance is only ever used
// for bounds; every actual assignment decision compares similarities
// with the exhaustive kernel's exact semantics.
func boundDist(sim float64) float64 {
	v := 2 * (1 - sim)
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// boundSlack is the absolute safety margin folded into every bound
// update: upper bounds are inflated and lower bounds deflated by it once
// per round. It is ~1e7× larger than the worst per-step floating-point
// rounding error on these O(1)-magnitude distances, so a prune decision
// can never be flipped by accumulated rounding — and it is small enough
// to erode no measurable pruning. The margin is also what makes exact
// similarity ties safe: a tie has zero distance gap, so no slack-deflated
// bound can ever prune a tied centroid, and the rescan resolves the tie
// with the exhaustive kernel's own lowest-index rule.
const boundSlack = 1e-9

// assigner is one k-means assignment kernel: called once per iteration
// to (re)assign every point, with per-shard move counts exactly like the
// historical inline loop. Implementations must be bit-identical to
// exhaustiveAssigner in every observable output.
type assigner interface {
	assign(cents []Point, assign, movedBy []int)
	assignedSims(cents []Point, assign []int) []float64
	distTotal() int64
	prunedTotal() int64
}

// newAssigner builds the kernel opts selects: the LSH candidate tier
// when Options.Approx is enabled and the space can sign, else the exact
// kernel per opts.Prune (PruneAuto resolving by corpus size). shards is
// the per-shard slot count (maxShards of the point range).
func newAssigner(s Space, k int, opts Options, shards int) assigner {
	if opts.Approx.Enabled {
		if a := newApproxAssigner(s, k, opts, shards); a != nil {
			return a
		}
	}
	b := newAssignerBase(s, k, opts, shards)
	switch opts.Prune.resolveFor(s.Len()) {
	case PruneOff:
		return &exhaustiveAssigner{b}
	case PruneElkan:
		return &elkanAssigner{assignerBase: b}
	default:
		return &hamerlyAssigner{assignerBase: b}
	}
}

// assignerBase carries what every kernel shares: the space, the
// centroid-index probe, per-shard similarity buffers, and per-shard
// work counters (similarity evaluations and bound-pruned points) that
// KMeans flushes to the metrics registry once per run.
type assignerBase struct {
	s       Space
	k       int
	workers int
	reg     *obs.Registry
	// dist and pruned are per-shard slots: workers only touch their own
	// index, the totals are reduced serially — instrumentation adds no
	// cross-shard traffic and stays bit-inert.
	dist   []int64
	pruned []int64
	// sims holds one all-centroid score buffer per shard; scratch is the
	// index's extra working memory, allocated on first index use.
	sims    [][]float64
	scratch [][]float64
}

func newAssignerBase(s Space, k int, opts Options, shards int) assignerBase {
	b := assignerBase{
		s:       s,
		k:       k,
		workers: opts.Workers,
		reg:     opts.Metrics,
		dist:    make([]int64, shards),
		pruned:  make([]int64, shards),
		sims:    make([][]float64, shards),
	}
	for i := range b.sims {
		b.sims[i] = make([]float64, k)
	}
	return b
}

func (b *assignerBase) distTotal() int64 {
	var t int64
	for _, v := range b.dist {
		t += v
	}
	return t
}

func (b *assignerBase) prunedTotal() int64 {
	var t int64
	for _, v := range b.pruned {
		t += v
	}
	return t
}

// index probes the space for the CentroidScorer capability and builds
// the postings index over the current centroids; nil means this round
// scores through plain Sim calls.
func (b *assignerBase) index(cents []Point) CentroidIndex {
	cs, ok := b.s.(CentroidScorer)
	if !ok {
		return nil
	}
	idx := cs.NewCentroidIndex(cents)
	if idx == nil {
		return nil
	}
	if b.scratch == nil {
		b.scratch = make([][]float64, len(b.sims))
		for i := range b.scratch {
			b.scratch[i] = make([]float64, idx.ScratchLen())
		}
	}
	return idx
}

// simOne scores point i against the single centroid c — through the
// index's dense-row path (O(point nnz)) when available, else one plain
// Sim merge join. Bit-identical either way (the CentroidIndex
// contract), so pruned kernels may mix it freely with full scans.
func (b *assignerBase) simOne(i, c int, cents []Point, idx CentroidIndex, shard int) float64 {
	if idx != nil {
		return idx.SimOne(b.scratch[shard], i, c)
	}
	return b.s.Sim(b.s.Point(i), cents[c])
}

// scanSims fills dst with point i's similarity to every centroid,
// through the index when available. Both paths produce bit-identical
// values (the CentroidScorer contract).
func (b *assignerBase) scanSims(i int, cents []Point, idx CentroidIndex, shard int, dst []float64) {
	if idx != nil {
		idx.Sims(dst, b.scratch[shard], i)
		return
	}
	p := b.s.Point(i)
	for c := range cents {
		dst[c] = b.s.Sim(p, cents[c])
	}
}

// scanPoint runs the exhaustive scan for point i with the reference
// kernel's exact comparison semantics — strict `>` left to right, so the
// winner is the lowest-index argmax — and also reports the runner-up
// similarity (the Hamerly lower bound).
func (b *assignerBase) scanPoint(i int, cents []Point, idx CentroidIndex, shard int) (best int, bestSim, second float64) {
	sims := b.sims[shard]
	b.scanSims(i, cents, idx, shard, sims)
	bestSim, second = -1.0, -1.0
	for c, sim := range sims {
		if sim > bestSim {
			best, bestSim, second = c, sim, bestSim
		} else if sim > second {
			second = sim
		}
	}
	return
}

// assignedSims returns every point's similarity to its assigned
// centroid in one sharded pass — the empty-cluster repair scan. Points
// without a valid assignment score the -1 sentinel so the farthest-point
// selection picks the first of them, matching the historical serial
// scan. Each empty cluster this round reuses the same array instead of
// rescanning the corpus (the repair cost is now one scan per round, not
// one per empty cluster).
func (b *assignerBase) assignedSims(cents []Point, assign []int) []float64 {
	out := make([]float64, len(assign))
	idx := b.index(cents)
	parallelRange(len(assign), b.workers, timedBody(b.reg, "kmeans_repair", func(start, end, shard int) {
		for i := start; i < end; i++ {
			c := assign[i]
			if c < 0 || c >= len(cents) {
				out[i] = -1
				continue
			}
			if idx != nil {
				sims := b.sims[shard]
				idx.Sims(sims, b.scratch[shard], i)
				out[i] = sims[c]
			} else {
				out[i] = b.s.Sim(b.s.Point(i), cents[c])
			}
			b.dist[shard]++
		}
	}))
	return out
}

// exhaustiveAssigner is the reference kernel: every point scores every
// centroid every round. It is also the semantic definition the pruned
// kernels are pinned against.
type exhaustiveAssigner struct {
	assignerBase
}

func (a *exhaustiveAssigner) assign(cents []Point, assign, movedBy []int) {
	idx := a.index(cents)
	parallelRange(len(assign), a.workers, timedBody(a.reg, "kmeans_assign", func(start, end, shard int) {
		for i := start; i < end; i++ {
			best, _, _ := a.scanPoint(i, cents, idx, shard)
			a.dist[shard] += int64(a.k)
			if assign[i] != best {
				movedBy[shard]++
				assign[i] = best
			}
		}
	}))
}

// hamerlyAssigner maintains, per point, an upper bound u on the distance
// to its assigned centroid and a lower bound l on the distance to every
// other centroid. After a round in which centroid c moved by drift(c),
// u grows by drift(assigned) and l shrinks by max drift; while u < l the
// assigned centroid is provably still the strict nearest and the whole
// point×centroid scan is skipped. The inequality is kept strict — and
// every bound padded by boundSlack — so a pruned round can never hide a
// centroid the exhaustive kernel would have tied or preferred; any point
// whose bounds overlap is rescanned with the exhaustive scan itself.
type hamerlyAssigner struct {
	assignerBase
	started bool
	u, l    []float64
	// prev snapshots the centroids as scored this round; next round's
	// drift is measured against it (recompute and empty-cluster repair
	// both move centroids between rounds).
	prev  []Point
	drift []float64
}

func (a *hamerlyAssigner) assign(cents []Point, assign, movedBy []int) {
	n := len(assign)
	idx := a.index(cents)
	if !a.started {
		a.u = make([]float64, n)
		a.l = make([]float64, n)
		a.drift = make([]float64, a.k)
		parallelRange(n, a.workers, timedBody(a.reg, "kmeans_assign", func(start, end, shard int) {
			for i := start; i < end; i++ {
				best, bestSim, second := a.scanPoint(i, cents, idx, shard)
				a.dist[shard] += int64(a.k)
				a.u[i] = boundDist(bestSim)
				a.l[i] = boundDist(second)
				if assign[i] != best {
					movedBy[shard]++
					assign[i] = best
				}
			}
		}))
		a.started = true
		a.snapshot(cents)
		return
	}
	maxDrift := 0.0
	for c := range cents {
		a.drift[c] = boundDist(a.s.Sim(a.prev[c], cents[c])) + boundSlack
		if a.drift[c] > maxDrift {
			maxDrift = a.drift[c]
		}
	}
	a.dist[0] += int64(a.k)
	parallelRange(n, a.workers, timedBody(a.reg, "kmeans_assign", func(start, end, shard int) {
		for i := start; i < end; i++ {
			ai := assign[i]
			u := a.u[i] + a.drift[ai]
			l := a.l[i] - maxDrift
			if u < l {
				a.u[i], a.l[i] = u, l
				a.pruned[shard]++
				continue
			}
			// Tighten the upper bound with one exact similarity before
			// paying for the full rescan.
			u = boundDist(a.simOne(i, ai, cents, idx, shard))
			a.dist[shard]++
			if u < l {
				a.u[i], a.l[i] = u, l
				a.pruned[shard]++
				continue
			}
			best, bestSim, second := a.scanPoint(i, cents, idx, shard)
			a.dist[shard] += int64(a.k)
			a.u[i] = boundDist(bestSim)
			a.l[i] = boundDist(second)
			if assign[i] != best {
				movedBy[shard]++
				assign[i] = best
			}
		}
	}))
	a.snapshot(cents)
}

func (a *hamerlyAssigner) snapshot(cents []Point) {
	a.prev = append(a.prev[:0], cents...)
}

// elkanAssigner keeps a full n×k matrix of per-centroid lower bounds
// plus the pairwise centroid-distance matrix, so individual centroids
// can be skipped even when the point as a whole must be rechecked. Skip
// conditions are strict and slack-padded exactly like Hamerly's, and
// centroids that survive them are scored with the space's own Sim and
// compared with the exhaustive kernel's lowest-index-argmax rule, so
// the winning assignment is identical by construction.
type elkanAssigner struct {
	assignerBase
	started bool
	u       []float64
	lb      []float64 // n×k lower bounds, row-major
	prev    []Point
	drift   []float64
	cc      []float64 // k×k centroid distances, deflated by boundSlack
	sep     []float64 // 0.5 × distance to each centroid's nearest peer
}

func (a *elkanAssigner) assign(cents []Point, assign, movedBy []int) {
	n := len(assign)
	k := a.k
	idx := a.index(cents)
	if !a.started {
		a.u = make([]float64, n)
		a.lb = make([]float64, n*k)
		a.drift = make([]float64, k)
		a.cc = make([]float64, k*k)
		a.sep = make([]float64, k)
		parallelRange(n, a.workers, timedBody(a.reg, "kmeans_assign", func(start, end, shard int) {
			for i := start; i < end; i++ {
				sims := a.sims[shard]
				a.scanSims(i, cents, idx, shard, sims)
				a.dist[shard] += int64(k)
				best, bestSim := 0, -1.0
				for c, sim := range sims {
					a.lb[i*k+c] = boundDist(sim)
					if sim > bestSim {
						best, bestSim = c, sim
					}
				}
				a.u[i] = boundDist(bestSim)
				if assign[i] != best {
					movedBy[shard]++
					assign[i] = best
				}
			}
		}))
		a.started = true
		a.snapshot(cents)
		return
	}
	for c := range cents {
		a.drift[c] = boundDist(a.s.Sim(a.prev[c], cents[c])) + boundSlack
	}
	a.dist[0] += int64(k)
	// Pairwise centroid distances, deflated so they stay true lower
	// bounds under floating-point rounding; sep[c] is half the distance
	// to c's nearest peer — if u < sep[assigned], no other centroid can
	// be strictly closer (triangle inequality) and the point is skipped
	// whole.
	for x := 0; x < k; x++ {
		for y := x + 1; y < k; y++ {
			d := boundDist(a.s.Sim(cents[x], cents[y])) - boundSlack
			a.cc[x*k+y], a.cc[y*k+x] = d, d
		}
	}
	a.dist[0] += int64(k * (k - 1) / 2)
	for x := 0; x < k; x++ {
		m := math.Inf(1)
		for y := 0; y < k; y++ {
			if y != x && a.cc[x*k+y] < m {
				m = a.cc[x*k+y]
			}
		}
		a.sep[x] = 0.5 * m
	}
	parallelRange(n, a.workers, timedBody(a.reg, "kmeans_assign", func(start, end, shard int) {
		for i := start; i < end; i++ {
			ai := assign[i]
			row := a.lb[i*k : i*k+k]
			for c := range row {
				row[c] -= a.drift[c]
			}
			u := a.u[i] + a.drift[ai]
			if u < a.sep[ai] {
				a.u[i] = u
				a.pruned[shard]++
				continue
			}
			// Stale-bound pre-pass: if every other centroid is already
			// ruled out by its lower bound or the centroid-centroid
			// bound against the drift-inflated u, the assignment cannot
			// change and the point costs zero similarity evaluations
			// this round. The skips are the same strict, slack-padded
			// inequalities as the full scan below, just with a looser
			// (larger, still valid) upper bound — so anything they prune
			// the tightened scan would have pruned too.
			survivor := false
			for c := 0; c < k; c++ {
				if c == ai {
					continue
				}
				if row[c] > u || a.cc[ai*k+c] > 2*u {
					continue
				}
				survivor = true
				break
			}
			if !survivor {
				a.u[i] = u
				a.pruned[shard]++
				continue
			}
			// Tighten u exactly; this similarity doubles as the running
			// best for the per-centroid scan.
			bestSim := a.simOne(i, ai, cents, idx, shard)
			a.dist[shard]++
			best := ai
			u = boundDist(bestSim)
			row[ai] = u
			if u < a.sep[ai] {
				a.u[i] = u
				a.pruned[shard]++
				continue
			}
			for c := 0; c < k; c++ {
				if c == ai {
					continue
				}
				// Strict skips: either bound proves d(p,c) > d(p,best),
				// i.e. a strictly lower similarity than the running best,
				// so c cannot win or even tie.
				if row[c] > u || a.cc[best*k+c] > 2*u {
					continue
				}
				sim := a.simOne(i, c, cents, idx, shard)
				a.dist[shard]++
				d := boundDist(sim)
				row[c] = d
				// Lowest-index argmax over the evaluated set, identical
				// to the exhaustive left-to-right strict `>` scan.
				if sim > bestSim || (sim == bestSim && c < best) {
					best, bestSim = c, sim
					u = d
				}
			}
			a.u[i] = u
			if assign[i] != best {
				movedBy[shard]++
				assign[i] = best
			}
		}
	}))
	a.snapshot(cents)
}

func (a *elkanAssigner) snapshot(cents []Point) {
	a.prev = append(a.prev[:0], cents...)
}
