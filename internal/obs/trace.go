package obs

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: fmt.Sprintf("%g", v)} }

// SpanData is the immutable record of a finished span, as delivered to
// sinks.
type SpanData struct {
	// Name is the phase name passed to Start.
	Name string
	// SpanID is unique within the tracer; ParentID is the enclosing
	// span's id, 0 for roots.
	SpanID, ParentID uint64
	Start            time.Time
	Duration         time.Duration
	Attrs            []Attr
}

// Sink receives finished spans. Implementations must be safe for
// concurrent use.
type Sink interface {
	Record(SpanData)
}

// Tracer hands out spans and fans finished ones out to its sinks.
type Tracer struct {
	ids   atomic.Uint64
	sinks []Sink
}

// NewTracer builds a tracer recording to the given sinks.
func NewTracer(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks}
}

// ctxKey carries the ambient tracer+span through a context.
type ctxKey struct{}

type ctxVal struct {
	tracer *Tracer
	span   *Span
}

// WithTracer returns a context carrying the tracer; Start calls on
// derived contexts create spans recorded to it. A nil tracer returns
// ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &ctxVal{tracer: t})
}

// Start opens a span named after a phase. The returned context makes
// the span the parent of any nested Start; call End on the span when
// the phase finishes. Without a tracer in ctx it returns (ctx, nil) —
// the nil span's methods are no-ops, so call sites never branch.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	v, _ := ctx.Value(ctxKey{}).(*ctxVal)
	if v == nil || v.tracer == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: v.tracer,
		data: SpanData{
			Name:   name,
			SpanID: v.tracer.ids.Add(1),
			Start:  time.Now(),
		},
	}
	if v.span != nil {
		s.data.ParentID = v.span.data.SpanID
	}
	return context.WithValue(ctx, ctxKey{}, &ctxVal{tracer: v.tracer, span: s}), s
}

// Span is one in-flight phase.
type Span struct {
	tracer *Tracer
	mu     sync.Mutex
	data   SpanData
	done   bool
}

// ID returns the span's id (0 on a nil span) — the join key between a
// structured request log line and the span a sink recorded.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.SpanID
}

// Parent returns the enclosing span's id (0 for roots and nil spans).
func (s *Span) Parent() uint64 {
	if s == nil {
		return 0
	}
	return s.data.ParentID
}

// SetAttr attaches attributes to the span (no-op on nil or ended
// spans).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	s.data.Attrs = append(s.data.Attrs, attrs...)
}

// End closes the span and delivers it to the tracer's sinks. Safe on
// nil spans; later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.data.Duration = time.Since(s.data.Start)
	data := s.data
	s.mu.Unlock()
	for _, sink := range s.tracer.sinks {
		sink.Record(data)
	}
}

// RingSink keeps the most recent spans in a fixed-capacity ring buffer
// — the in-memory sink behind /debug/trace.
type RingSink struct {
	mu   sync.Mutex
	buf  []SpanData
	next int
	n    int
}

// NewRingSink builds a ring holding the last capacity spans (min 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]SpanData, capacity)}
}

// Record implements Sink.
func (r *RingSink) Record(d SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Spans returns the retained spans, oldest first.
func (r *RingSink) Spans() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanData, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// LogSink writes each finished span as one structured log line — the
// "phase took this long" breadcrumb for command startup sequences.
type LogSink struct {
	Logger *log.Logger
}

// Record implements Sink.
func (l LogSink) Record(d SpanData) {
	if l.Logger == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace span=%s dur=%s id=%d", d.Name, d.Duration.Round(time.Microsecond), d.SpanID)
	if d.ParentID != 0 {
		fmt.Fprintf(&b, " parent=%d", d.ParentID)
	}
	for _, a := range d.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
	}
	l.Logger.Print(b.String())
}
