package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugMux builds the observability side of an HTTP server:
//
//	GET /metrics        Prometheus text exposition of reg
//	GET /debug/vars     expvar-style JSON of reg
//	GET /debug/trace    recent spans from ring as JSON (when ring != nil)
//	GET /debug/pprof/*  runtime profiles (when pprofEnabled)
//
// Mount application routes on the returned mux afterwards (e.g.
// mux.Handle("/", app)).
func DebugMux(reg *Registry, ring *RingSink, pprofEnabled bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	if ring != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			type jsonSpan struct {
				Name     string  `json:"name"`
				SpanID   uint64  `json:"span_id"`
				ParentID uint64  `json:"parent_id,omitempty"`
				Start    string  `json:"start"`
				Seconds  float64 `json:"seconds"`
				Attrs    []Attr  `json:"attrs,omitempty"`
			}
			spans := ring.Spans()
			out := make([]jsonSpan, 0, len(spans))
			for _, s := range spans {
				out = append(out, jsonSpan{
					Name:     s.Name,
					SpanID:   s.SpanID,
					ParentID: s.ParentID,
					Start:    s.Start.Format(time.RFC3339Nano),
					Seconds:  s.Duration.Seconds(),
					Attrs:    s.Attrs,
				})
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(out)
		})
	}
	if pprofEnabled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter captures the response status code and body size for the
// middlewares.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// InstrumentHandler wraps an HTTP handler with request accounting:
// http_requests_total{path,code} and the http_request_seconds
// histogram. Paths are used verbatim as label values, so only mount it
// over routers with a bounded path set (the directory UI qualifies).
// With a nil registry the handler is returned unwrapped.
func InstrumentHandler(reg *Registry, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		reg.Histogram("http_request_seconds", DurationBuckets, "path", r.URL.Path).
			ObserveSince(t0)
		reg.Counter("http_requests_total", "path", r.URL.Path, "code", strconv.Itoa(sw.status)).Inc()
	})
}
