package obs

import (
	"bytes"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestSLOBurn pins the error-budget arithmetic: with a 99% target, a 1%
// breach fraction burns the budget at exactly rate 1.
func TestSLOBurn(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, "classify", 0.05, 0.99)
	for i := 0; i < 99; i++ {
		s.Observe(0.01) // under objective
	}
	s.Observe(0.2) // one breach in 100

	if got := reg.Counter("slo_requests_total", "endpoint", "classify").Value(); got != 100 {
		t.Fatalf("slo_requests_total = %d, want 100", got)
	}
	if got := reg.Counter("slo_breaches_total", "endpoint", "classify").Value(); got != 1 {
		t.Fatalf("slo_breaches_total = %d, want 1", got)
	}
	burn := reg.Gauge("slo_error_budget_burn", "endpoint", "classify").Value()
	if math.Abs(burn-1.0) > 1e-9 {
		t.Fatalf("burn = %v, want 1.0 (1%% breaches against a 99%% target)", burn)
	}
	if got := reg.Gauge("slo_objective_seconds", "endpoint", "classify").Value(); got != 0.05 {
		t.Fatalf("slo_objective_seconds = %v, want 0.05", got)
	}

	// Ten more breaches: burn rises above 1.
	for i := 0; i < 10; i++ {
		s.Observe(1)
	}
	if burn := reg.Gauge("slo_error_budget_burn", "endpoint", "classify").Value(); burn <= 1 {
		t.Fatalf("burn after sustained breaching = %v, want > 1", burn)
	}
}

// TestSLONil is the inertness contract: a nil registry yields a nil SLO
// whose methods are no-ops.
func TestSLONil(t *testing.T) {
	s := NewSLO(nil, "ingest", 0.01, 0)
	if s != nil {
		t.Fatalf("NewSLO(nil, ...) = %v, want nil", s)
	}
	s.Observe(5) // must not panic
}

// TestSLODefaultTarget checks the 0-value target selects the 99%
// default.
func TestSLODefaultTarget(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, "e", 0.01, 0)
	for i := 0; i < 99; i++ {
		s.Observe(0)
	}
	s.Observe(1)
	burn := reg.Gauge("slo_error_budget_burn", "endpoint", "e").Value()
	if math.Abs(burn-1.0) > 1e-9 {
		t.Fatalf("burn with default target = %v, want 1.0", burn)
	}
}

// TestRequestLogger checks the structured request log carries the
// span id of the span recorded to the tracer's sink, joining log line
// to trace.
func TestRequestLogger(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ring := NewRingSink(8)
	tracer := NewTracer(ring)

	h := RequestLogger(logger, tracer, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}))
	req := httptest.NewRequest(http.MethodGet, "/classify", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	line := buf.String()
	for _, want := range []string{`"method":"GET"`, `"path":"/classify"`, `"status":418`, `"span_id":1`, `"bytes":15`} {
		if !strings.Contains(line, want) {
			t.Errorf("request log %q missing %s", line, want)
		}
	}
	spans := ring.Spans()
	if len(spans) != 1 || spans[0].Name != "http /classify" || spans[0].SpanID != 1 {
		t.Fatalf("recorded spans = %+v, want one 'http /classify' span with id 1", spans)
	}
}

// TestRequestLoggerNil: with neither logger nor tracer the handler is
// returned unwrapped.
func TestRequestLoggerNil(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := RequestLogger(nil, nil, inner); got == nil {
		t.Fatal("RequestLogger(nil, nil) returned nil")
	}
	// Tracer only: spans open, no logs — must serve without panicking.
	h := RequestLogger(nil, NewTracer(NewRingSink(1)), inner)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
}
