package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatFloat renders a float the way the Prometheus text format
// expects (+Inf for the terminal histogram bound).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders {k="v",...} plus an optional extra label (le).
func promLabels(ls []Label, extraKey, extraVal string) string {
	if len(ls) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if extraKey != "" {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per family, then
// its series; histograms expand to _bucket/_sum/_count. Output is
// deterministic. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	lastName := ""
	for i := range samples {
		s := &samples[i]
		if s.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastName = s.Name
		}
		var err error
		switch s.Kind {
		case KindHistogram:
			for _, b := range s.Buckets {
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.Name, promLabels(s.Labels, "le", formatFloat(b.Upper)), b.Count); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, promLabels(s.Labels, "", ""), formatFloat(s.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels, "", ""), s.Count)
		default:
			_, err = fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels, "", ""), formatFloat(s.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry as an expvar-style JSON object: one
// key per series (name{k="v"}), scalar values for counters and gauges,
// and {count, sum, buckets} objects for histograms. Keys are emitted in
// sorted order. A nil registry writes the empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.Snapshot()
	obj := make(map[string]interface{}, len(samples))
	keys := make([]string, 0, len(samples))
	for i := range samples {
		s := &samples[i]
		key := s.SeriesName()
		keys = append(keys, key)
		switch s.Kind {
		case KindHistogram:
			buckets := make(map[string]uint64, len(s.Buckets))
			for _, b := range s.Buckets {
				buckets[formatFloat(b.Upper)] = b.Count
			}
			obj[key] = map[string]interface{}{
				"count":   s.Count,
				"sum":     s.Sum,
				"buckets": buckets,
			}
		default:
			obj[key] = s.Value
		}
	}
	sort.Strings(keys)
	// Emit keys in sorted order by hand — encoding/json sorts map keys
	// anyway, but an ordered build keeps the behaviour explicit.
	var b strings.Builder
	b.WriteString("{\n")
	for i, k := range keys {
		v, err := json.Marshal(obj[k])
		if err != nil {
			return err
		}
		kb, _ := json.Marshal(k)
		fmt.Fprintf(&b, "  %s: %s", kb, v)
		if i < len(keys)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
