package obs

import (
	"context"
	"log"
	"strings"
	"testing"
)

// TestSpanParentChildOrdering: a child span ends before its parent, so
// the sink must receive child first and the ids must link up.
func TestSpanParentChildOrdering(t *testing.T) {
	ring := NewRingSink(8)
	ctx := WithTracer(context.Background(), NewTracer(ring))

	ctx, root := Start(ctx, "startup")
	ctxLoad, load := Start(ctx, "load")
	_, parse := Start(ctxLoad, "parse")
	parse.SetAttr(Int("pages", 42))
	parse.End()
	load.End()
	_, cluster := Start(ctx, "cluster")
	cluster.End()
	root.End()

	spans := ring.Spans()
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	want := []string{"parse", "load", "cluster", "startup"}
	if len(names) != len(want) {
		t.Fatalf("got spans %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("got spans %v, want %v", names, want)
		}
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["startup"].ParentID != 0 {
		t.Error("root span must have ParentID 0")
	}
	if byName["load"].ParentID != byName["startup"].SpanID {
		t.Error("load must be a child of startup")
	}
	if byName["parse"].ParentID != byName["load"].SpanID {
		t.Error("parse must be a child of load")
	}
	if byName["cluster"].ParentID != byName["startup"].SpanID {
		t.Error("cluster must be a child of startup")
	}
	if len(byName["parse"].Attrs) != 1 || byName["parse"].Attrs[0].Value != "42" {
		t.Errorf("parse attrs = %v", byName["parse"].Attrs)
	}
	for _, s := range spans {
		if s.Duration < 0 {
			t.Errorf("span %s has negative duration", s.Name)
		}
	}
}

// TestStartWithoutTracer: no tracer in context means nil spans whose
// methods are all safe no-ops.
func TestStartWithoutTracer(t *testing.T) {
	ctx, span := Start(context.Background(), "phase")
	if span != nil {
		t.Fatal("expected nil span without a tracer")
	}
	span.SetAttr(String("k", "v"))
	span.End()
	span.End() // idempotent on nil too
	if ctx != context.Background() {
		t.Fatal("context must pass through unchanged")
	}
}

// TestRingSinkWraps: the ring keeps only the newest spans, oldest
// first.
func TestRingSinkWraps(t *testing.T) {
	ring := NewRingSink(2)
	ctx := WithTracer(context.Background(), NewTracer(ring))
	for _, name := range []string{"a", "b", "c"} {
		_, s := Start(ctx, name)
		s.End()
	}
	spans := ring.Spans()
	if len(spans) != 2 || spans[0].Name != "b" || spans[1].Name != "c" {
		t.Fatalf("ring = %v", spans)
	}
}

// TestLogSink: one structured line per span.
func TestLogSink(t *testing.T) {
	var b strings.Builder
	sink := LogSink{Logger: log.New(&b, "", 0)}
	ctx := WithTracer(context.Background(), NewTracer(sink))
	_, s := Start(ctx, "load")
	s.SetAttr(Int("pages", 3))
	s.End()
	line := b.String()
	if !strings.Contains(line, "span=load") || !strings.Contains(line, "pages=3") {
		t.Fatalf("log line = %q", line)
	}
}

// TestEndIdempotent: a double End must record exactly once.
func TestEndIdempotent(t *testing.T) {
	ring := NewRingSink(8)
	ctx := WithTracer(context.Background(), NewTracer(ring))
	_, s := Start(ctx, "once")
	s.End()
	s.End()
	if got := len(ring.Spans()); got != 1 {
		t.Fatalf("recorded %d spans, want 1", got)
	}
}
