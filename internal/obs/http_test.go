package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cafc/internal/directory"
	"cafc/internal/obs"
)

// newDirectorydMux assembles the server exactly the way cmd/directoryd
// does under -metrics: debug routes first, the instrumented directory
// UI mounted at /.
func newDirectorydMux(reg *obs.Registry, ring *obs.RingSink) http.Handler {
	srv := directory.Build(
		[][]string{{"http://a.example/jobs"}, {"http://b.example/books"}},
		[]string{"jobs", "books"},
		map[string]string{
			"http://a.example/jobs":  "<html><head><title>Job Search</title></head><body>find jobs</body></html>",
			"http://b.example/books": "<html><head><title>Book Store</title></head><body>buy books</body></html>",
		},
	)
	mux := obs.DebugMux(reg, ring, true)
	mux.Handle("/", obs.InstrumentHandler(reg, srv.Handler()))
	return mux
}

// TestDirectorydMetricsEndpoint is the /metrics smoke test: hit the
// directory UI, then scrape and check the exposition is non-empty and
// carries both domain and HTTP metrics.
func TestDirectorydMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("kmeans_moved_fraction").Set(0.08) // as a clustering run would
	ts := httptest.NewServer(newDirectorydMux(reg, obs.NewRingSink(16)))
	defer ts.Close()

	for _, path := range []string{"/", "/cluster?id=0", "/search?q=jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	expo := string(body)
	if len(strings.TrimSpace(expo)) == 0 {
		t.Fatal("empty exposition")
	}
	for _, want := range []string{
		"kmeans_moved_fraction 0.08",
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200",path="/"} 1`,
		"http_request_seconds_bucket",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}
}

// TestDebugVarsAndTrace: /debug/vars serves valid JSON; /debug/trace
// serves the ring.
func TestDebugVarsAndTrace(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x_total").Inc()
	ring := obs.NewRingSink(4)
	ring.Record(obs.SpanData{Name: "load", SpanID: 1})
	ts := httptest.NewServer(obs.DebugMux(reg, ring, false))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]interface{}
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars["x_total"] != 1.0 {
		t.Fatalf("x_total = %v", vars["x_total"])
	}

	resp, err = http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	var spans []map[string]interface{}
	err = json.NewDecoder(resp.Body).Decode(&spans)
	resp.Body.Close()
	if err != nil || len(spans) != 1 || spans[0]["name"] != "load" {
		t.Fatalf("/debug/trace = %v (err %v)", spans, err)
	}
}

// TestPprofGating: pprof routes exist only when enabled.
func TestPprofGating(t *testing.T) {
	reg := obs.NewRegistry()
	on := httptest.NewServer(obs.DebugMux(reg, nil, true))
	defer on.Close()
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enabled pprof index: status %d", resp.StatusCode)
	}

	off := httptest.NewServer(obs.DebugMux(reg, nil, false))
	defer off.Close()
	resp, err = http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled pprof index: status %d, want 404", resp.StatusCode)
	}
}
