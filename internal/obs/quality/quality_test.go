package quality

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"cafc/internal/cluster"
	"cafc/internal/obs"
	"cafc/internal/vector"
)

// twoBlobSpace builds n vectors in two well-separated vocabulary blobs:
// even indices speak one vocabulary, odd the other.
func twoBlobSpace(n int) *cluster.VectorSpace {
	vecs := make([]vector.Vector, n)
	for i := range vecs {
		if i%2 == 0 {
			vecs[i] = vector.Vector{"car": 1, "engine": 0.5, fmt.Sprintf("v%d", i%4): 0.1}
		} else {
			vecs[i] = vector.Vector{"book": 1, "author": 0.5, fmt.Sprintf("v%d", i%4): 0.1}
		}
	}
	return &cluster.VectorSpace{Vecs: vecs}
}

func twoBlobEpoch(seq int64, s *cluster.VectorSpace) Epoch {
	n := s.Len()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % 2
	}
	members := cluster.Members(assign, 2)
	return Epoch{
		Seq:       seq,
		Space:     s,
		Assign:    assign,
		K:         2,
		Centroids: []cluster.Point{s.Centroid(members[0]), s.Centroid(members[1])},
		URL:       func(i int) string { return fmt.Sprintf("http://site%d/p%d", i%2, i) },
	}
}

var t0 = time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)

// TestReservoirDeterministic: same seed + same page sequence = same
// sample, no matter how epoch observations batch the growth.
func TestReservoirDeterministic(t *testing.T) {
	s := twoBlobSpace(100)
	a := New(Config{SampleSize: 16, Seed: 42})
	b := New(Config{SampleSize: 16, Seed: 42})

	// a sees the corpus in three steps, b in two different ones.
	for _, n := range []int{10, 40, 100} {
		sub := &cluster.VectorSpace{Vecs: s.Vecs[:n]}
		a.ObserveEpoch(twoBlobEpoch(int64(n), sub), t0)
	}
	for _, n := range []int{25, 100} {
		sub := &cluster.VectorSpace{Vecs: s.Vecs[:n]}
		b.ObserveEpoch(twoBlobEpoch(int64(n), sub), t0)
	}
	if !reflect.DeepEqual(a.Sample(), b.Sample()) {
		t.Fatalf("samples diverge under different batching:\n a=%v\n b=%v", a.Sample(), b.Sample())
	}

	// And a third monitor with another seed should (overwhelmingly
	// likely) differ — the seed is live, not decorative.
	c := New(Config{SampleSize: 16, Seed: 1})
	c.ObserveEpoch(twoBlobEpoch(100, s), t0)
	if reflect.DeepEqual(a.Sample(), c.Sample()) {
		t.Fatalf("different seeds produced identical samples: %v", a.Sample())
	}
}

// TestSampledSilhouetteMatchesExact: when the reservoir covers the
// whole corpus the sampled silhouette must equal the exact one
// bit for bit.
func TestSampledSilhouetteMatchesExact(t *testing.T) {
	s := twoBlobSpace(40)
	m := New(Config{SampleSize: 100, Seed: 7})
	snap := m.ObserveEpoch(twoBlobEpoch(1, s), t0)
	exact := cluster.Silhouette(s, twoBlobEpoch(1, s).Assign, 2)
	if snap.Silhouette != exact {
		t.Fatalf("full-coverage sampled silhouette %v != exact %v", snap.Silhouette, exact)
	}
	if snap.Silhouette < 0.5 {
		t.Fatalf("two separated blobs scored silhouette %v, want > 0.5", snap.Silhouette)
	}
}

// TestSnapshotMetrics pins sizes, skew, churn and label quality on a
// hand-built epoch sequence.
func TestSnapshotMetrics(t *testing.T) {
	s := twoBlobSpace(40)
	labels := make(map[string]string)
	for i := 0; i < 40; i++ {
		labels[fmt.Sprintf("http://site%d/p%d", i%2, i)] = fmt.Sprintf("class%d", i%2)
	}
	m := New(Config{SampleSize: 64, Seed: 3, Labels: labels})

	e := twoBlobEpoch(1, s)
	snap := m.ObserveEpoch(e, t0)
	if !reflect.DeepEqual(snap.ClusterSizes, []int{20, 20}) {
		t.Fatalf("ClusterSizes = %v, want [20 20]", snap.ClusterSizes)
	}
	if snap.MaxShare != 0.5 || snap.Skew != 1 || snap.EmptyClusters != 0 {
		t.Fatalf("balance stats = share %v skew %v empty %d, want 0.5 / 1 / 0", snap.MaxShare, snap.Skew, snap.EmptyClusters)
	}
	if snap.ChurnMean != 0 || snap.ChurnMax != 0 {
		t.Fatalf("first epoch churn = %v/%v, want 0/0", snap.ChurnMean, snap.ChurnMax)
	}
	// Perfect clusters against the gold labels.
	if snap.Labeled != 40 || snap.Entropy != 0 || snap.FMeasure != 1 {
		t.Fatalf("label quality = %d labeled, entropy %v, F %v; want 40, 0, 1", snap.Labeled, snap.Entropy, snap.FMeasure)
	}

	// Same epoch again: centroids unchanged, churn exactly 0.
	snap2 := m.ObserveEpoch(twoBlobEpoch(2, s), t0)
	if snap2.ChurnMean != 0 || snap2.ChurnMax != 0 {
		t.Fatalf("identical centroids churn = %v/%v, want 0/0", snap2.ChurnMean, snap2.ChurnMax)
	}

	// Swap the two centroids: drift should be large (near-orthogonal
	// vocabularies).
	e3 := twoBlobEpoch(3, s)
	e3.Centroids[0], e3.Centroids[1] = e3.Centroids[1], e3.Centroids[0]
	snap3 := m.ObserveEpoch(e3, t0)
	if snap3.ChurnMax < 0.5 {
		t.Fatalf("swapped centroids churn max = %v, want > 0.5", snap3.ChurnMax)
	}
}

// TestRing: the snapshot ring holds the last RingSize epochs, oldest
// first, and Latest returns the newest.
func TestRing(t *testing.T) {
	s := twoBlobSpace(10)
	m := New(Config{SampleSize: 4, Seed: 1, RingSize: 2})
	for seq := int64(1); seq <= 3; seq++ {
		m.ObserveEpoch(twoBlobEpoch(seq, s), t0)
	}
	snaps := m.Snapshots()
	if len(snaps) != 2 || snaps[0].Epoch != 2 || snaps[1].Epoch != 3 {
		t.Fatalf("ring = %+v, want epochs [2 3]", snaps)
	}
	last, ok := m.Latest()
	if !ok || last.Epoch != 3 {
		t.Fatalf("Latest = %+v/%v, want epoch 3", last, ok)
	}

	empty := New(Config{})
	if _, ok := empty.Latest(); ok {
		t.Fatal("Latest on an unfed monitor reported ok")
	}
	if got := empty.Snapshots(); len(got) != 0 {
		t.Fatalf("Snapshots on an unfed monitor = %v, want empty", got)
	}
}

// TestNilRegistryInert: the snapshot a monitor computes is identical
// with and without a registry attached — gauges observe, they never
// participate. This is the quality-layer sibling of
// cluster.TestInstrumentationInert.
func TestNilRegistryInert(t *testing.T) {
	s := twoBlobSpace(30)
	reg := obs.NewRegistry()
	with := New(Config{SampleSize: 8, Seed: 5, Metrics: reg})
	without := New(Config{SampleSize: 8, Seed: 5})

	for seq := int64(1); seq <= 3; seq++ {
		sub := &cluster.VectorSpace{Vecs: s.Vecs[:10*seq]}
		// One epoch value for both monitors: map-based centroid sums are
		// order-sensitive in the last ulp, so building the epoch twice
		// would differ before the monitors ever saw it.
		e := twoBlobEpoch(seq, sub)
		a := with.ObserveEpoch(e, t0)
		b := without.ObserveEpoch(e, t0)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("epoch %d snapshots diverge with registry attached:\n with=%+v\n without=%+v", seq, a, b)
		}
	}
	// And the registry did collect the gauges.
	if v := reg.Gauge("quality_silhouette").Value(); v == 0 {
		t.Fatalf("quality_silhouette gauge not published (= %v)", v)
	}
	if v := reg.Gauge("quality_sample_size").Value(); v != 8 {
		t.Fatalf("quality_sample_size = %v, want 8", v)
	}
}
