// Package quality is the live directory's online quality monitor: it
// watches the stream of published model epochs and answers "is the
// clustering holding up right now?" with the same yardsticks the paper
// uses offline, cheap enough to run on every epoch swap.
//
// The monitor keeps a seeded reservoir sample of the corpus (so the
// per-epoch cost is bounded no matter how large the directory grows)
// and computes, per epoch: the sampled silhouette coefficient, the
// per-cluster size distribution and its skew, the cosine drift of each
// centroid against the previous epoch ("churn"), and — when gold labels
// are available, as with webgen corpora — the paper's entropy and
// F-measure. Results are published as gauges on an obs.Registry and
// retained in a fixed ring of Snapshots for /debug/quality.
//
// The monitor only observes: it never mutates the model or the
// clustering, and attaching one (with or without a registry) leaves
// published epochs bit-identical — the same inertness contract as the
// rest of internal/obs. The reservoir is driven by a seeded RNG over
// the page-index sequence, so two monitors fed the same corpus growth
// hold identical samples regardless of how ingestion was batched.
package quality

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"cafc/internal/cluster"
	"cafc/internal/metrics"
	"cafc/internal/obs"
)

// Config configures a Monitor. Zero values select the defaults noted
// per field.
type Config struct {
	// SampleSize caps the reservoir (0 = 256). Silhouette cost per epoch
	// is O(SampleSize²) similarities.
	SampleSize int
	// Seed drives the reservoir RNG. Fixed seed + same page sequence =
	// same sample, independent of batch boundaries.
	Seed int64
	// RingSize bounds the retained snapshot history (0 = 64).
	RingSize int
	// Labels, when non-nil, maps page URLs to gold classes; labeled
	// epochs additionally report entropy and F-measure over the labeled
	// pages.
	Labels map[string]string
	// Metrics receives the quality gauges (nil disables them; snapshots
	// are still recorded).
	Metrics *obs.Registry
}

// Epoch is the monitor's view of one published model state. Everything
// referenced must be frozen (published epochs are).
type Epoch struct {
	// Seq is the epoch number.
	Seq int64
	// Space scores similarities (the epoch's model).
	Space cluster.Space
	// Assign maps page index to cluster (-1 = unassigned).
	Assign []int
	// K is the cluster count.
	K int
	// Centroids are the epoch's cluster representatives.
	Centroids []cluster.Point
	// Rebuilt marks full re-cluster epochs.
	Rebuilt bool
	// URL returns the page URL by index; may be nil when no labels are
	// configured.
	URL func(i int) string
}

// Snapshot is one epoch's quality measurement — the ring element served
// at /debug/quality.
type Snapshot struct {
	Epoch   int64     `json:"epoch"`
	Time    time.Time `json:"time"`
	Pages   int       `json:"pages"`
	K       int       `json:"k"`
	Rebuilt bool      `json:"rebuilt"`

	// SampleSize is the number of reservoir pages the silhouette was
	// computed over.
	SampleSize int `json:"sample_size"`
	// Silhouette is the mean silhouette coefficient of the sample
	// (1 = tight and separated, ~0 = overlapping).
	Silhouette float64 `json:"silhouette"`

	// ClusterSizes is the per-cluster member count, index = cluster id.
	ClusterSizes []int `json:"cluster_sizes"`
	// MaxShare is the largest cluster's fraction of the corpus.
	MaxShare float64 `json:"max_share"`
	// Skew is max cluster size over mean non-empty cluster size
	// (1 = perfectly balanced).
	Skew float64 `json:"skew"`
	// EmptyClusters counts clusters with no members.
	EmptyClusters int `json:"empty_clusters"`

	// ChurnMean and ChurnMax are the cosine drift (1 - similarity) of
	// this epoch's centroids against the previous epoch's, averaged and
	// worst-case. Zero on the first observed epoch.
	ChurnMean float64 `json:"centroid_churn_mean"`
	ChurnMax  float64 `json:"centroid_churn_max"`

	// Labeled is the number of pages with gold labels; Entropy and
	// FMeasure are only meaningful when it is non-zero.
	Labeled  int     `json:"labeled,omitempty"`
	Entropy  float64 `json:"entropy,omitempty"`
	FMeasure float64 `json:"f_measure,omitempty"`
}

// Monitor consumes epochs and maintains the reservoir, the gauges and
// the snapshot ring. Safe for concurrent use, though epochs are
// expected to arrive from a single publisher goroutine.
type Monitor struct {
	mu   sync.Mutex
	cfg  Config
	rng  *rand.Rand
	seen int   // pages offered to the reservoir so far
	res  []int // reservoir: page indices, insertion order

	prevCentroids []cluster.Point

	ring []Snapshot
	next int
	n    int
}

// New builds a monitor.
func New(cfg Config) *Monitor {
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = 256
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 64
	}
	return &Monitor{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed + 1)),
		ring: make([]Snapshot, cfg.RingSize),
	}
}

// ObserveEpoch measures one published epoch: the reservoir absorbs any
// new pages, the quality metrics are computed over the sample and the
// assignment, the gauges update, and the snapshot is recorded. Returns
// the snapshot. now stamps the snapshot (callers pass time.Now();
// tests pass a fixed time for byte-stable output).
func (m *Monitor) ObserveEpoch(e Epoch, now time.Time) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()

	n := e.Space.Len()
	// Reservoir sampling (algorithm R) over the page-index sequence.
	// Pages are append-only across epochs — a rebuild re-embeds but
	// never reorders — so indices remain stable identities.
	for ; m.seen < n; m.seen++ {
		if len(m.res) < m.cfg.SampleSize {
			m.res = append(m.res, m.seen)
			continue
		}
		if j := m.rng.Intn(m.seen + 1); j < m.cfg.SampleSize {
			m.res[j] = m.seen
		}
	}

	snap := Snapshot{
		Epoch:      e.Seq,
		Time:       now,
		Pages:      n,
		K:          e.K,
		Rebuilt:    e.Rebuilt,
		SampleSize: len(m.res),
	}
	snap.Silhouette = sampledSilhouette(e.Space, e.Assign, e.K, m.res)
	m.sizeStats(&snap, e)
	m.churn(&snap, e)
	m.labelQuality(&snap, e)
	m.prevCentroids = append(m.prevCentroids[:0], e.Centroids...)

	m.publishGauges(&snap)
	m.ring[m.next] = snap
	m.next = (m.next + 1) % len(m.ring)
	if m.n < len(m.ring) {
		m.n++
	}
	return snap
}

// sizeStats fills the cluster-size distribution and its skew measures.
func (m *Monitor) sizeStats(s *Snapshot, e Epoch) {
	sizes := cluster.Sizes(e.Assign, e.K)
	s.ClusterSizes = sizes
	total, max, nonEmpty := 0, 0, 0
	for _, sz := range sizes {
		total += sz
		if sz > max {
			max = sz
		}
		if sz > 0 {
			nonEmpty++
		} else {
			s.EmptyClusters++
		}
	}
	if total > 0 {
		s.MaxShare = float64(max) / float64(total)
	}
	if nonEmpty > 0 && total > 0 {
		s.Skew = float64(max) / (float64(total) / float64(nonEmpty))
	}
}

// churn scores each centroid against its predecessor: drift is
// 1 - sim, the chord distance the clustering kernels use. Comparable
// across epochs because term interning is append-only — packed
// centroids from the previous model remain valid points in the next.
func (m *Monitor) churn(s *Snapshot, e Epoch) {
	k := len(e.Centroids)
	if len(m.prevCentroids) < k {
		k = len(m.prevCentroids)
	}
	if k == 0 {
		return
	}
	var sum float64
	for c := 0; c < k; c++ {
		d := cluster.Dist(e.Space.Sim(m.prevCentroids[c], e.Centroids[c]))
		sum += d
		if d > s.ChurnMax {
			s.ChurnMax = d
		}
	}
	s.ChurnMean = sum / float64(k)
}

// labelQuality computes the paper's entropy and F-measure over the
// labeled pages, when labels are configured.
func (m *Monitor) labelQuality(s *Snapshot, e Epoch) {
	if len(m.cfg.Labels) == 0 || e.URL == nil {
		return
	}
	var assign []int
	var classes []string
	for i, c := range e.Assign {
		if c < 0 {
			continue
		}
		lbl, ok := m.cfg.Labels[e.URL(i)]
		if !ok {
			continue
		}
		assign = append(assign, c)
		classes = append(classes, lbl)
	}
	s.Labeled = len(assign)
	if s.Labeled == 0 {
		return
	}
	l := metrics.Labeling{Assign: assign, Classes: classes}
	s.Entropy = metrics.Entropy(l)
	s.FMeasure = metrics.FMeasure(l)
}

// publishGauges mirrors the snapshot into the registry (nil-safe).
func (m *Monitor) publishGauges(s *Snapshot) {
	reg := m.cfg.Metrics
	reg.Gauge("quality_silhouette").Set(s.Silhouette)
	reg.Gauge("quality_sample_size").Set(float64(s.SampleSize))
	reg.Gauge("quality_max_share").Set(s.MaxShare)
	reg.Gauge("quality_cluster_skew").Set(s.Skew)
	reg.Gauge("quality_empty_clusters").Set(float64(s.EmptyClusters))
	reg.Gauge("quality_centroid_churn", "agg", "mean").Set(s.ChurnMean)
	reg.Gauge("quality_centroid_churn", "agg", "max").Set(s.ChurnMax)
	if s.Labeled > 0 {
		reg.Gauge("quality_entropy").Set(s.Entropy)
		reg.Gauge("quality_f_measure").Set(s.FMeasure)
		reg.Gauge("quality_labeled_pages").Set(float64(s.Labeled))
	}
}

// Latest returns the most recent snapshot (ok=false before the first
// epoch).
func (m *Monitor) Latest() (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.n == 0 {
		return Snapshot{}, false
	}
	i := m.next - 1
	if i < 0 {
		i += len(m.ring)
	}
	return m.ring[i], true
}

// Snapshots returns the retained history, oldest first.
func (m *Monitor) Snapshots() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, m.n)
	start := m.next - m.n
	if start < 0 {
		start += len(m.ring)
	}
	for i := 0; i < m.n; i++ {
		out = append(out, m.ring[(start+i)%len(m.ring)])
	}
	return out
}

// Sample returns the current reservoir page indices in ascending order
// (a copy) — exposed for the determinism tests and for debugging.
func (m *Monitor) Sample() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]int(nil), m.res...)
	sort.Ints(out)
	return out
}

// sampledSilhouette is the silhouette coefficient restricted to the
// sample: for each sampled point, a is the mean distance to same-cluster
// sample peers and b the smallest mean distance to another cluster's
// sample members. Points whose cluster has no sampled peer contribute 0,
// matching the singleton convention of cluster.Silhouette.
func sampledSilhouette(s cluster.Space, assign []int, k int, sample []int) float64 {
	if len(sample) == 0 || k <= 0 {
		return 0
	}
	pts := make([]cluster.Point, len(sample))
	byCluster := make([][]int, k) // positions into sample, per cluster
	counted := 0
	for pos, idx := range sample {
		if idx >= len(assign) {
			continue
		}
		c := assign[idx]
		if c < 0 || c >= k {
			continue
		}
		pts[pos] = s.Point(idx)
		byCluster[c] = append(byCluster[c], pos)
		counted++
	}
	if counted == 0 {
		return 0
	}
	dist := func(i, j int) float64 { return cluster.Dist(s.Sim(pts[i], pts[j])) }

	var total float64
	for c := 0; c < k; c++ {
		for _, pos := range byCluster[c] {
			own := byCluster[c]
			if len(own) <= 1 {
				continue // no sampled peer: contributes 0
			}
			var a float64
			for _, peer := range own {
				if peer != pos {
					a += dist(pos, peer)
				}
			}
			a /= float64(len(own) - 1)
			b := -1.0
			for oc := 0; oc < k; oc++ {
				if oc == c || len(byCluster[oc]) == 0 {
					continue
				}
				var d float64
				for _, peer := range byCluster[oc] {
					d += dist(pos, peer)
				}
				d /= float64(len(byCluster[oc]))
				if b < 0 || d < b {
					b = d
				}
			}
			if b < 0 {
				continue // single non-empty cluster in the sample
			}
			max := a
			if b > max {
				max = b
			}
			if max > 0 {
				total += (b - a) / max
			}
		}
	}
	return total / float64(counted)
}
