package obs

import "math"

// quantileFromBuckets estimates the q-quantile (q in [0, 1]) of a
// cumulative bucket distribution the way Prometheus' histogram_quantile
// does: find the bucket the target rank falls in, then interpolate
// linearly inside it, treating observations as uniformly spread between
// the bucket's bounds. The first bucket interpolates from zero, and a
// rank landing in the +Inf bucket returns the highest finite upper
// bound — the estimate cannot exceed what the buckets can resolve.
func quantileFromBuckets(buckets []Bucket, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, b := range buckets {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.Upper, 1) {
			// Beyond the last finite bound: clamp to it (or 0 when every
			// bucket is +Inf, which a Registry never produces).
			if i == 0 {
				return 0
			}
			return buckets[i-1].Upper
		}
		lower, below := 0.0, uint64(0)
		if i > 0 {
			lower, below = buckets[i-1].Upper, buckets[i-1].Count
		}
		in := b.Count - below
		if in == 0 {
			return b.Upper
		}
		return lower + (b.Upper-lower)*(rank-float64(below))/float64(in)
	}
	return buckets[len(buckets)-1].Upper
}

// Quantile estimates the q-quantile of a histogram sample from its
// cumulative buckets (see quantileFromBuckets). Non-histogram samples
// return 0.
func (s *Sample) Quantile(q float64) float64 {
	if s == nil || s.Kind != KindHistogram {
		return 0
	}
	return quantileFromBuckets(s.Buckets, q)
}

// Quantile estimates the q-quantile of the live histogram. Like every
// metric method it is nil-safe (0 on a nil histogram). The buckets are
// read non-atomically with respect to each other, so under concurrent
// Observe the estimate reflects a near-point-in-time state — fine for
// the SLO gauges and load reports it feeds.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	buckets := make([]Bucket, len(h.counts))
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		upper := math.Inf(1)
		if i < len(h.uppers) {
			upper = h.uppers[i]
		}
		buckets[i] = Bucket{Upper: upper, Count: cum}
	}
	return quantileFromBuckets(buckets, q)
}
