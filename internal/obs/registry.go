package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds metric families keyed by name, each with any number of
// labelled series. All methods are safe for concurrent use, and every
// method — including those of the metric handles it returns — treats a
// nil receiver as a no-op, so instrumented code needs no nil checks
// beyond skipping expensive measurement work.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is every series sharing one metric name.
type family struct {
	kind    Kind
	buckets []float64 // histogram upper bounds, nil otherwise
	series  map[string]interface{}
	labels  map[string][]Label // series key -> its label pairs
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// checkName panics on names outside the Prometheus grammar — metric
// names are compile-time constants, so a bad one is a programming error
// worth failing loudly on.
func checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// seriesLabels converts alternating key/value strings into sorted Label
// pairs and the canonical series key.
func seriesLabels(kv []string) ([]Label, string) {
	if len(kv)%2 != 0 {
		panic("obs: labels must be alternating key/value pairs")
	}
	if len(kv) == 0 {
		return nil, ""
	}
	ls := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return ls, b.String()
}

// lookup returns (creating on first use) the series for name+labels,
// checking that the name keeps one kind across call sites.
func (r *Registry) lookup(name string, kind Kind, buckets []float64, kv []string) interface{} {
	checkName(name)
	ls, key := seriesLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			kind:    kind,
			buckets: buckets,
			series:  make(map[string]interface{}),
			labels:  make(map[string][]Label),
		}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	m := f.series[key]
	if m == nil {
		switch kind {
		case KindCounter:
			m = &Counter{}
		case KindGauge:
			m = &Gauge{}
		case KindHistogram:
			m = newHistogram(f.buckets)
		}
		f.series[key] = m
		f.labels[key] = ls
	}
	return m
}

// Counter returns the counter series for name and the given alternating
// label key/value pairs, creating it on first use. Nil registries
// return a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, nil, labels).(*Counter)
}

// Gauge returns the gauge series for name+labels (nil-safe, like
// Counter).
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, nil, labels).(*Gauge)
}

// Histogram returns the histogram series for name+labels with the given
// upper bounds (ascending; an implicit +Inf bucket is appended). The
// first call fixes the bounds for the whole family. Nil registries
// return a nil (no-op) histogram.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, buckets, labels).(*Histogram)
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	uppers []float64
	counts []atomic.Uint64 // one per upper bound, plus +Inf at the end
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

func newHistogram(uppers []float64) *Histogram {
	cp := append([]float64(nil), uppers...)
	sort.Float64s(cp)
	return &Histogram{uppers: cp, counts: make([]atomic.Uint64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. A no-op on nil
// histograms, so callers can time unconditionally-gated sections with
// `var t0 time.Time; if h != nil { t0 = time.Now() } ... h.ObserveSince(t0)`.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bucket is one cumulative histogram bucket of a snapshot: the count of
// observations <= Upper (math.Inf(1) for the last bucket).
type Bucket struct {
	Upper float64
	Count uint64
}

// Sample is the frozen state of one metric series.
type Sample struct {
	Name   string
	Kind   Kind
	Labels []Label
	// Value carries counters (as float) and gauges.
	Value float64
	// Count, Sum and Buckets carry histograms.
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// SeriesName renders the sample's identity as name{k="v",...}.
func (s *Sample) SeriesName() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Snapshot freezes every series, sorted by name then label key for
// deterministic output. Nil registries return nil.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for name, f := range r.families {
		for key, m := range f.series {
			s := Sample{Name: name, Kind: f.kind, Labels: f.labels[key]}
			switch v := m.(type) {
			case *Counter:
				s.Value = float64(v.Value())
			case *Gauge:
				s.Value = v.Value()
			case *Histogram:
				s.Count = v.Count()
				s.Sum = v.Sum()
				cum := uint64(0)
				for i := range v.counts {
					cum += v.counts[i].Load()
					upper := math.Inf(1)
					if i < len(v.uppers) {
						upper = v.uppers[i]
					}
					s.Buckets = append(s.Buckets, Bucket{Upper: upper, Count: cum})
				}
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}

func labelKey(ls []Label) string {
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return b.String()
}
