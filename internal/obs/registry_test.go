package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one counter, one gauge and one
// histogram from many goroutines; run under -race (scripts/check.sh
// does) this doubles as the data-race proof for the atomic series.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("ops_total", "shard", "a").Inc()
				reg.Gauge("depth").Set(float64(i))
				reg.Histogram("latency_seconds", DurationBuckets).Observe(0.001 * float64(i%7))
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("ops_total", "shard", "a").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	h := reg.Histogram("latency_seconds", DurationBuckets)
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	wantSum := 0.0
	for i := 0; i < perWorker; i++ {
		wantSum += 0.001 * float64(i%7)
	}
	wantSum *= workers
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestNilRegistry proves the no-op contract: a nil registry hands out
// nil handles whose every method is safe.
func TestNilRegistry(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total")
	g := reg.Gauge("x")
	h := reg.Histogram("x_seconds", DurationBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must return nil handles, got %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if s := reg.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", s)
	}
}

// TestHistogramBuckets checks the cumulative bucket accounting,
// including the boundary (v == upper lands in that bucket) and the
// +Inf overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 10} {
		h.Observe(v)
	}
	samples := reg.Snapshot()
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	s := samples[0]
	want := []uint64{2, 4, 4, 5} // <=1, <=2, <=5, +Inf (cumulative)
	if len(s.Buckets) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Buckets), len(want))
	}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d (le=%g): count %d, want %d", i, b.Upper, b.Count, want[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].Upper, 1) {
		t.Error("last bucket must be +Inf")
	}
	if s.Count != 5 || s.Sum != 15 {
		t.Errorf("count=%d sum=%g, want 5 and 15", s.Count, s.Sum)
	}
}

// TestKindMismatchPanics: reusing a name across kinds is a programming
// error and must fail loudly.
func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	reg.Gauge("x_total")
}

// TestSnapshotDeterministic: snapshot order is by name then labels,
// regardless of creation order.
func TestSnapshotDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total").Inc()
	reg.Counter("a_total", "k", "2").Inc()
	reg.Counter("a_total", "k", "1").Inc()
	s := reg.Snapshot()
	got := []string{s[0].SeriesName(), s[1].SeriesName(), s[2].SeriesName()}
	want := []string{`a_total{k="1"}`, `a_total{k="2"}`, "z_total"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", got, want)
		}
	}
}
