package obs

// SLO tracks one endpoint's latency objective: "target fraction of
// requests complete within objective seconds". Every Observe updates
// the running breach counters and the error-budget burn gauge, so a
// scrape answers "how fast is this endpoint eating its budget" without
// any server-side windowing:
//
//	slo_objective_seconds{endpoint}   the configured objective
//	slo_requests_total{endpoint}      requests observed
//	slo_breaches_total{endpoint}      requests over the objective
//	slo_error_budget_burn{endpoint}   breach fraction / allowed fraction
//
// A burn of 1.0 means the endpoint is breaching exactly as fast as the
// target allows (e.g. 1% of requests slow against a 99% target); above
// 1.0 the budget is being consumed faster than it accrues. Created
// against a nil registry, NewSLO returns nil and every method is a
// no-op — the same inertness contract as the metric handles.
type SLO struct {
	objective float64
	allowed   float64 // 1 - target, the tolerated breach fraction
	total     *Counter
	breach    *Counter
	burn      *Gauge
}

// DefaultSLOTarget is the success-fraction objective applied when
// NewSLO is called with target 0: 99% of requests within the objective.
const DefaultSLOTarget = 0.99

// NewSLO registers the series for one endpoint. objective is in
// seconds; target is the required success fraction (0 selects
// DefaultSLOTarget, and values outside (0, 1) are clamped to it).
func NewSLO(reg *Registry, endpoint string, objective, target float64) *SLO {
	if reg == nil {
		return nil
	}
	if target <= 0 || target >= 1 {
		target = DefaultSLOTarget
	}
	reg.Gauge("slo_objective_seconds", "endpoint", endpoint).Set(objective)
	return &SLO{
		objective: objective,
		allowed:   1 - target,
		total:     reg.Counter("slo_requests_total", "endpoint", endpoint),
		breach:    reg.Counter("slo_breaches_total", "endpoint", endpoint),
		burn:      reg.Gauge("slo_error_budget_burn", "endpoint", endpoint),
	}
}

// Observe accounts one request latency against the objective.
func (s *SLO) Observe(seconds float64) {
	if s == nil {
		return
	}
	s.total.Inc()
	if seconds > s.objective {
		s.breach.Inc()
	}
	total := float64(s.total.Value())
	if total > 0 {
		s.burn.Set(float64(s.breach.Value()) / total / s.allowed)
	}
}
