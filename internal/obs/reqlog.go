package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// RequestLogger wraps a handler with structured request logs: one slog
// line per request carrying method, path, status, response bytes and
// latency. When tracer is non-nil each request also runs inside its own
// span (recorded to the tracer's sinks on completion), and the log line
// carries the span and parent ids — the join key that lets a slow
// request in the log be matched to its span in /debug/trace. Nested
// phases that call Start on the request context parent under the
// request span.
//
// A nil logger and nil tracer return next unwrapped; a nil logger with
// a tracer still opens spans (span-only instrumentation).
func RequestLogger(logger *slog.Logger, tracer *Tracer, next http.Handler) http.Handler {
	if logger == nil && tracer == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := WithTracer(r.Context(), tracer)
		ctx, span := Start(ctx, "http "+r.URL.Path)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(t0)
		span.SetAttr(
			String("method", r.Method),
			Int("status", sw.status),
		)
		span.End()
		if logger != nil {
			logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed),
				slog.Uint64("span_id", span.ID()),
				slog.Uint64("parent_id", span.Parent()),
			)
		}
	})
}
