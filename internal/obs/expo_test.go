package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWritePrometheusGolden locks the text exposition format down to
// the byte: # TYPE lines, label rendering, histogram expansion with
// cumulative le buckets, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("backlink_miss_total").Add(7)
	reg.Gauge("kmeans_moved_fraction").Set(0.05)
	h := reg.Histogram("crawler_fetch_seconds", []float64{0.01, 0.1}, "status", "ok")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	reg.Counter("crawler_fetch_total", "status", "ok").Add(2)
	reg.Counter("crawler_fetch_total", "status", "error").Inc()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE backlink_miss_total counter
backlink_miss_total 7
# TYPE crawler_fetch_seconds histogram
crawler_fetch_seconds_bucket{status="ok",le="0.01"} 1
crawler_fetch_seconds_bucket{status="ok",le="0.1"} 2
crawler_fetch_seconds_bucket{status="ok",le="+Inf"} 3
crawler_fetch_seconds_sum{status="ok"} 0.555
crawler_fetch_seconds_count{status="ok"} 3
# TYPE crawler_fetch_total counter
crawler_fetch_total{status="error"} 1
crawler_fetch_total{status="ok"} 2
# TYPE kmeans_moved_fraction gauge
kmeans_moved_fraction 0.05
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteJSON checks the expvar-style rendering parses back and
// carries the expected series.
func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_total", "kind", "x").Add(3)
	reg.Histogram("dur_seconds", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var obj map[string]interface{}
	if err := json.Unmarshal([]byte(b.String()), &obj); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if v, ok := obj[`ops_total{kind="x"}`].(float64); !ok || v != 3 {
		t.Fatalf("ops_total = %v, want 3", obj[`ops_total{kind="x"}`])
	}
	hist, ok := obj["dur_seconds"].(map[string]interface{})
	if !ok || hist["count"].(float64) != 1 || hist["sum"].(float64) != 0.5 {
		t.Fatalf("dur_seconds = %v", obj["dur_seconds"])
	}
}

// TestLabelEscaping: quotes, backslashes and newlines in label values
// must survive the text format.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "q", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `x_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("missing escaped series, got:\n%s", b.String())
	}
}
