package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines and checks the books balance: the count, the sum and the
// terminal cumulative bucket must all agree with the number of
// observations. Run under -race in check.sh, this is the concurrency
// contract the SLO gauges and load reports depend on.
func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_concurrent_seconds", []float64{0.001, 0.01, 0.1, 1})
	const (
		goroutines = 8
		perG       = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// A fixed per-slot value keeps the expected sum exact in
				// float64 (multiples of 2^-10).
				h.Observe(float64(i%4) / 1024)
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := h.Count(); got != total {
		t.Fatalf("Count = %d, want %d", got, total)
	}
	want := float64(goroutines) * float64(perG/4) * (0 + 1 + 2 + 3) / 1024
	if got := h.Sum(); got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	var sample *Sample
	snap := reg.Snapshot()
	for i := range snap {
		if snap[i].Name == "test_concurrent_seconds" {
			sample = &snap[i]
		}
	}
	if sample == nil {
		t.Fatal("histogram missing from snapshot")
	}
	last := sample.Buckets[len(sample.Buckets)-1]
	if !math.IsInf(last.Upper, 1) || last.Count != total {
		t.Fatalf("terminal bucket = {%v %d}, want {+Inf %d}", last.Upper, last.Count, total)
	}
}

// TestHistogramQuantile pins the quantile estimator against known
// bucket fills, including the interpolation the SLO gauges rely on.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_quantile_seconds", []float64{0.01, 0.1, 1})
	// 50 observations in (0, 0.01], 30 in (0.01, 0.1], 19 in (0.1, 1],
	// 1 beyond the last finite bound.
	for i := 0; i < 50; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 30; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 19; i++ {
		h.Observe(0.5)
	}
	h.Observe(2)

	cases := []struct {
		q    float64
		want float64
	}{
		// rank 50 lands exactly on the first bucket boundary: interpolate
		// from 0 across the 50 observations of bucket one.
		{0.50, 0.01},
		// rank 95: 80 below, 15 of 19 into (0.1, 1].
		{0.95, 0.1 + 0.9*15/19},
		// rank 99: 80 below, 19 of 19 into (0.1, 1] — the full bucket.
		{0.99, 1.0},
		// rank 100 lands in +Inf: clamped to the last finite bound.
		{1.00, 1.0},
		// rank 25: halfway through the first bucket, interpolated from 0.
		{0.25, 0.005},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}

	// The snapshot-side estimator must agree with the live one.
	for _, s := range reg.Snapshot() {
		if s.Name != "test_quantile_seconds" {
			continue
		}
		for _, c := range cases {
			if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("Sample.Quantile(%v) = %v, want %v", c.q, got, c.want)
			}
		}
	}
}

// TestQuantileEdgeCases covers empty and nil histograms.
func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
	reg := NewRegistry()
	h := reg.Histogram("test_empty_seconds", DurationBuckets)
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	var nilS *Sample
	if got := nilS.Quantile(0.5); got != 0 {
		t.Errorf("nil sample Quantile = %v, want 0", got)
	}
	counter := Sample{Name: "c", Kind: KindCounter, Value: 3}
	if got := counter.Quantile(0.5); got != 0 {
		t.Errorf("counter Quantile = %v, want 0", got)
	}
}
