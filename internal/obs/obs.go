// Package obs is the repository's dependency-free observability layer:
// a metrics registry (atomic counters, gauges and fixed-bucket
// histograms with labels, snapshottable and renderable as Prometheus
// text exposition or expvar-style JSON), a lightweight span/trace API
// with pluggable sinks, and HTTP surfacing helpers (/metrics,
// /debug/vars, /debug/pprof, /debug/trace).
//
// Every consumer in the stack accepts an optional *Registry; a nil
// registry — and the nil metric handles it hands out — disables
// instrumentation entirely, so un-instrumented runs pay nothing beyond
// a pointer comparison. Clustering results are bit-identical with and
// without a registry attached: instrumentation only observes, it never
// participates in the computation.
package obs

// Kind discriminates the metric families a Registry holds.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind as Prometheus' # TYPE line wants it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// DurationBuckets are the default histogram bounds for phase and
// request latencies, in seconds: 100µs to ~100s on a coarse log scale.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// CountBuckets are the default histogram bounds for small result
// counts (backlinks per query, links per page, ...).
var CountBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}
