package fault_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cafc/internal/crawler"
	"cafc/internal/fault"
	"cafc/internal/hub"
	"cafc/internal/obs"
	"cafc/internal/retry"
	"cafc/internal/webgraph"
)

// TestResilienceMetricsGolden locks the Prometheus exposition of the
// retry/breaker/degradation metric families down to the byte, in the
// style of obs.TestWritePrometheusGolden — but populated by the real
// production emitters (RetryFetcher, ResilientBacklinks, the hub
// degradation recorder) on a fake clock, so neither the names, labels
// nor the emission sites can silently rot.
func TestResilienceMetricsGolden(t *testing.T) {
	reg := obs.NewRegistry()
	clk := fault.NewFakeClock()

	// Fetch path: one fetch exhausts its 2 attempts and trips the
	// 2-failure breaker; a second fetch fast-fails on the open circuit.
	rf := &crawler.RetryFetcher{
		Fetcher: fetchFunc(func(string) (string, error) { return "", errors.New("boom") }),
		Policy:  retry.Policy{MaxAttempts: 2, Jitter: -1, Seed: 1},
		Breaker: retry.NewBreaker(2, time.Hour, clk, reg, "fetch"),
		Clock:   clk,
		Metrics: reg,
	}
	if _, err := rf.Fetch("http://down.example/"); err == nil {
		t.Fatal("expected exhausted attempts")
	}
	if _, err := rf.Fetch("http://down.example/"); !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("err = %v, want breaker open", err)
	}

	// Backlink path: a dead service under a 3-query budget — one full
	// retry sequence, then a second query that exhausts the budget.
	rb := &webgraph.ResilientBacklinks{
		Query:   func(string) ([]string, error) { return nil, webgraph.ErrUnavailable },
		Policy:  retry.Policy{MaxAttempts: 2, Jitter: -1, Seed: 1},
		Budget:  3,
		Clock:   clk,
		Metrics: reg,
	}
	if _, err := rb.Backlinks("http://a.example/"); err == nil {
		t.Fatal("expected failure")
	}
	if _, err := rb.Backlinks("http://b.example/"); !errors.Is(err, webgraph.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhausted", err)
	}

	// Degradation: recorded the way hub.BuildWith records it.
	hub.RecordDegraded(reg, hub.ReasonBudgetExhausted)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE backlink_budget_exhausted_total counter
backlink_budget_exhausted_total 1
# TYPE backlink_budget_spent gauge
backlink_budget_spent 3
# TYPE breaker_fastfail_total counter
breaker_fastfail_total{component="backlink"} 0
breaker_fastfail_total{component="fetch"} 1
# TYPE breaker_state gauge
breaker_state{component="fetch"} 2
# TYPE breaker_trips_total counter
breaker_trips_total{component="fetch"} 1
# TYPE degraded_runs_total counter
degraded_runs_total{reason="backlink_budget_exhausted"} 1
# TYPE retry_giveup_total counter
retry_giveup_total{component="backlink"} 1
retry_giveup_total{component="fetch"} 1
# TYPE retry_total counter
retry_total{component="backlink"} 2
retry_total{component="fetch"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
