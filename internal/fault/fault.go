// Package fault is a deterministic fault-injection harness for the two
// flaky external facilities the pipeline depends on: page fetches for
// the focused crawler and the search engine's link: backlink API. A
// seeded Injector wraps a fetch or backlink function with a configurable
// fault Plan — error rates, outage windows, slow responses, truncated
// bodies, rate-limit bursts — and a fake clock so chaos tests never
// sleep and two runs with equal seeds inject exactly the same faults.
//
// Per-call fault decisions hash (seed, url, per-URL sequence number), so
// they are independent of arrival order: concurrent crawl workers see
// the same per-URL fault pattern regardless of goroutine scheduling,
// which is what makes chaos runs bit-reproducible. Outage windows index
// the global call count and are intended for sequential callers (the
// hub backward crawl issues its link: queries in deterministic order).
package fault

import (
	"context"
	"errors"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"cafc/internal/retry"
)

// FetchFunc mirrors crawler.Fetcher's method shape.
type FetchFunc func(url string) (string, error)

// BacklinkFunc mirrors hub.BacklinkFunc.
type BacklinkFunc func(url string) ([]string, error)

// ErrInjected is the error returned for injected request failures.
var ErrInjected = errors.New("fault: injected error")

// ErrRateLimited is the error returned for injected rate-limit faults.
var ErrRateLimited = errors.New("fault: injected rate limit")

// Window is a half-open interval [Start, End) of global call indices.
type Window struct{ Start, End int }

func (w Window) contains(i int) bool { return i >= w.Start && i < w.End }

// Plan configures what an Injector does to the calls flowing through it.
// The zero value injects nothing.
type Plan struct {
	// Seed drives every random fault decision; equal seeds with equal
	// per-URL call patterns inject identical faults.
	Seed int64
	// ErrorRate in [0,1] is the probability a call fails with
	// ErrInjected.
	ErrorRate float64
	// RateLimitEvery, when > 0, fails every Nth call to the same URL
	// with ErrRateLimited — a deterministic rate-limit burst pattern.
	RateLimitEvery int
	// Outages are global-call-index windows during which every call
	// fails with the Unavailable error (a flap schedule: several
	// windows model a service going down and recovering repeatedly).
	Outages []Window
	// Unavailable is the error outage-window calls fail with
	// (nil = ErrInjected). Point it at webgraph.ErrUnavailable to
	// simulate that service's outage signature.
	Unavailable error
	// SlowRate in [0,1] is the probability a call sleeps Delay on the
	// injector's clock before proceeding (a slow response). With a fake
	// clock this advances time without real sleeping; with the system
	// clock it actually stalls, which is how hang regressions are
	// reproduced against real servers.
	SlowRate float64
	// Delay is the slow-response duration (0 = 1s).
	Delay time.Duration
	// TruncateRate in [0,1] is the probability a fetched body is cut to
	// TruncateBytes (0 = 64) — the half-written-response failure mode.
	TruncateRate  float64
	TruncateBytes int
}

// Stats counts the faults an Injector actually injected, by kind.
type Stats struct {
	Calls       int
	Errors      int
	RateLimited int
	Outages     int
	Slow        int
	Truncated   int
}

// Injector applies a fault Plan to wrapped calls. A nil *Injector is
// valid and wraps nothing (the pass-through used to pin fault-free runs
// bit-identical to production).
type Injector struct {
	plan  Plan
	clock retry.Clock

	mu     sync.Mutex
	perURL map[string]int
	calls  int
	down   bool
	stats  Stats
}

// New returns an Injector for the plan. clock drives slow-response
// faults (nil = retry.System).
func New(plan Plan, clock retry.Clock) *Injector {
	if clock == nil {
		clock = retry.System
	}
	if plan.Delay == 0 {
		plan.Delay = time.Second
	}
	if plan.TruncateBytes == 0 {
		plan.TruncateBytes = 64
	}
	if plan.Unavailable == nil {
		plan.Unavailable = ErrInjected
	}
	return &Injector{plan: plan, clock: clock, perURL: make(map[string]int)}
}

// SetDown manually toggles a total outage (in addition to planned
// windows) — the chaos knob for killing a dependency mid-run.
func (in *Injector) SetDown(down bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.down = down
	in.mu.Unlock()
}

// Stats returns a snapshot of the injected-fault counts.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// u01 hashes (seed, url, seq, salt) to a uniform float in [0,1).
func u01(seed int64, url string, seq int, salt string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(strconv.FormatInt(seed, 10)))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(url))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(strconv.Itoa(seq)))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(salt))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// verdict is the fault decision for one call.
type verdict struct {
	err      error
	slow     bool
	truncate bool
}

// decide advances the per-URL and global counters and rolls the plan's
// dice for one call.
func (in *Injector) decide(url string) verdict {
	in.mu.Lock()
	seq := in.perURL[url]
	in.perURL[url] = seq + 1
	call := in.calls
	in.calls++
	in.stats.Calls++
	down := in.down
	in.mu.Unlock()

	p := in.plan
	var v verdict
	if p.SlowRate > 0 && u01(p.Seed, url, seq, "slow") < p.SlowRate {
		v.slow = true
	}
	outage := down
	for _, w := range p.Outages {
		if w.contains(call) {
			outage = true
			break
		}
	}
	switch {
	case outage:
		v.err = p.Unavailable
	case p.RateLimitEvery > 0 && (seq+1)%p.RateLimitEvery == 0:
		v.err = ErrRateLimited
	case p.ErrorRate > 0 && u01(p.Seed, url, seq, "err") < p.ErrorRate:
		v.err = ErrInjected
	case p.TruncateRate > 0 && u01(p.Seed, url, seq, "trunc") < p.TruncateRate:
		v.truncate = true
	}

	in.mu.Lock()
	if v.slow {
		in.stats.Slow++
	}
	switch {
	case outage:
		in.stats.Outages++
	case errors.Is(v.err, ErrRateLimited):
		in.stats.RateLimited++
	case v.err != nil:
		in.stats.Errors++
	case v.truncate:
		in.stats.Truncated++
	}
	in.mu.Unlock()
	return v
}

// apply runs the verdict's side effects and reports whether the call
// should fail.
func (in *Injector) apply(v verdict) error {
	if v.slow {
		_ = in.clock.Sleep(context.Background(), in.plan.Delay)
	}
	return v.err
}

// WrapFetch wraps a fetch function with the plan. Nil injectors return
// fn unchanged.
func (in *Injector) WrapFetch(fn FetchFunc) FetchFunc {
	if in == nil {
		return fn
	}
	return func(url string) (string, error) {
		v := in.decide(url)
		if err := in.apply(v); err != nil {
			return "", err
		}
		body, err := fn(url)
		if err == nil && v.truncate && len(body) > in.plan.TruncateBytes {
			body = body[:in.plan.TruncateBytes]
		}
		return body, err
	}
}

// WrapBacklinks wraps a link:-query function with the plan. Truncation
// cuts the result list rather than bytes. Nil injectors return fn
// unchanged.
func (in *Injector) WrapBacklinks(fn BacklinkFunc) BacklinkFunc {
	if in == nil {
		return fn
	}
	return func(url string) ([]string, error) {
		v := in.decide(url)
		if err := in.apply(v); err != nil {
			return nil, err
		}
		links, err := fn(url)
		if err == nil && v.truncate && len(links) > 1 {
			links = links[:len(links)/2]
		}
		return links, err
	}
}

// FakeClock is a manual clock: Sleep advances time instantly, so retry
// schedules and slow-response faults run without wall-clock delay while
// remaining observable (Slept totals what would have been waited).
type FakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept time.Duration
}

// NewFakeClock returns a FakeClock at a fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_700_000_000, 0)}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the clock by d and returns immediately (or the
// context's error if it is already done).
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d > 0 {
		c.Advance(d)
		c.mu.Lock()
		c.slept += d
		c.mu.Unlock()
	}
	return nil
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Slept returns the total duration Sleep has been asked to wait — the
// virtual time bill of a retry schedule.
func (c *FakeClock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}
