package fault_test

import (
	"reflect"
	"testing"
	"time"

	"cafc"
	"cafc/internal/crawler"
	"cafc/internal/fault"
	"cafc/internal/obs"
	"cafc/internal/retry"
	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

// chaosEnv is one reproducible chaos setup over a generated corpus.
type chaosEnv struct {
	c     *webgen.Corpus
	seeds []string
}

func newChaosEnv(t *testing.T) *chaosEnv {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: 7, FormPages: 64})
	var seeds []string
	for _, p := range c.Pages {
		if p.Kind == webgen.DirectoryPageKind || p.Kind == webgen.HubPageKind {
			seeds = append(seeds, p.URL)
		}
	}
	return &chaosEnv{c: c, seeds: seeds}
}

// crawl runs the BFS crawl with the given injector plan over the
// in-memory corpus fetcher, retried under the given policy on a fake
// clock. A nil plan means no injection and no retry wrapper.
func (e *chaosEnv) crawl(plan *fault.Plan, reg *obs.Registry) []crawler.Page {
	var fetcher crawler.Fetcher = &crawler.CorpusFetcher{Corpus: e.c}
	if plan != nil {
		clk := fault.NewFakeClock()
		in := fault.New(*plan, clk)
		fetcher = &crawler.RetryFetcher{
			Fetcher: fetchFunc(in.WrapFetch(fetcher.Fetch)),
			Policy:  retry.Policy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Seed: 7},
			Clock:   clk,
			Metrics: reg,
		}
	}
	cr := &crawler.Crawler{Fetcher: fetcher, Config: crawler.Config{Metrics: reg}}
	return crawler.FormPages(cr.Crawl(e.seeds))
}

type fetchFunc func(string) (string, error)

func (f fetchFunc) Fetch(u string) (string, error) { return f(u) }

// cluster builds the cafc corpus from crawled pages and runs CAFC-CH
// against the (possibly injected) backlink service.
func (e *chaosEnv) cluster(t *testing.T, pages []crawler.Page, k int, in *fault.Injector, retryOpt *cafc.Retry, reg *obs.Registry) *cafc.Clustering {
	t.Helper()
	var docs []cafc.Document
	for _, p := range pages {
		docs = append(docs, cafc.Document{URL: p.URL, HTML: p.HTML})
	}
	corpus, err := cafc.NewCorpus(docs, cafc.Options{SkipNonSearchable: true, Metrics: reg, Retry: retryOpt})
	if err != nil {
		t.Fatal(err)
	}
	svc := webgraph.NewBacklinkService(webgraph.FromCorpus(e.c), 100, 0, 7)
	backlinks := in.WrapBacklinks(svc.Backlinks)
	return corpus.ClusterCH(k, cafc.BacklinkFunc(backlinks), e.c.RootOf, 7)
}

// TestChaosPipelineConverges is the acceptance test: a full CAFC-CH run
// with 20% injected fetch errors and a mid-run backlink outage must
// complete, produce k non-empty clusters, and report the degradation
// through the obs registry — never fail the run.
func TestChaosPipelineConverges(t *testing.T) {
	env := newChaosEnv(t)
	reg := obs.NewRegistry()

	// Fetch path: 20% of fetches fail; bounded retries recover them.
	pages := env.crawl(&fault.Plan{Seed: 7, ErrorRate: 0.2}, reg)
	if len(pages) < 60 {
		t.Fatalf("crawl under 20%% faults found %d form pages, want >= 60 of 64", len(pages))
	}
	if reg.Counter("retry_total", "component", "fetch").Value() == 0 {
		t.Error("no fetch retries recorded despite 20% error rate")
	}

	// Backlink path: the service drops dead mid-run (from the 30th
	// link: query on, covering the rest of the backward crawl).
	in := fault.New(fault.Plan{
		Seed:        7,
		Outages:     []fault.Window{{Start: 30, End: 1 << 30}},
		Unavailable: webgraph.ErrUnavailable,
	}, fault.NewFakeClock())
	k := 4
	cl := env.cluster(t, pages, k, in, &cafc.Retry{
		MaxAttempts:      2,
		BaseDelay:        time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
		Seed:             7,
	}, reg)

	if len(cl.Clusters) != k {
		t.Fatalf("got %d clusters, want %d", len(cl.Clusters), k)
	}
	for i, members := range cl.Clusters {
		if len(members) == 0 {
			t.Errorf("cluster %d is empty", i)
		}
	}
	if cl.Degraded == "" {
		t.Error("mid-run backlink outage not reported as degraded")
	}
	if v := reg.Counter("degraded_runs_total", "reason", cl.Degraded).Value(); v != 1 {
		t.Errorf("degraded_runs_total{reason=%q} = %d, want 1", cl.Degraded, v)
	}
	if reg.Gauge("breaker_state", "component", "backlink").Value() != float64(retry.Open) {
		t.Error("backlink breaker not open after the outage")
	}
}

// TestChaosPipelineDeterministic: the whole faulty pipeline — concurrent
// crawl workers included — is bit-identical across runs with equal
// seeds, because fault verdicts hash (url, sequence) instead of arrival
// order.
func TestChaosPipelineDeterministic(t *testing.T) {
	run := func() *cafc.Clustering {
		env := newChaosEnv(t)
		pages := env.crawl(&fault.Plan{Seed: 11, ErrorRate: 0.3, SlowRate: 0.2, Delay: time.Second}, nil)
		in := fault.New(fault.Plan{Seed: 11, ErrorRate: 0.2, Unavailable: webgraph.ErrUnavailable}, fault.NewFakeClock())
		return env.cluster(t, pages, 4, in, &cafc.Retry{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 11}, nil)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Assign, b.Assign) {
		t.Fatal("two chaos runs with equal seeds assigned differently")
	}
	if !reflect.DeepEqual(a.Clusters, b.Clusters) {
		t.Fatal("two chaos runs with equal seeds produced different clusters")
	}
	if a.Degraded != b.Degraded {
		t.Fatalf("degraded reasons differ: %q vs %q", a.Degraded, b.Degraded)
	}
}

// TestChaosHarnessInert pins the robustness layer's zero cost, the
// fault-path sibling of cluster.TestInstrumentationInert: with a nil
// injector and retries disabled, crawling and clustering through the
// harness plumbing is bit-identical to the plain pipeline.
func TestChaosHarnessInert(t *testing.T) {
	env := newChaosEnv(t)

	plain := env.crawl(nil, nil)
	var nilInjector *fault.Injector
	wrapped := env.crawl(nil, nil)
	if !reflect.DeepEqual(plain, wrapped) {
		t.Fatal("re-crawl of the same corpus differs (crawl itself nondeterministic?)")
	}

	clPlain := env.cluster(t, plain, 4, nil, nil, nil)
	clWrapped := env.cluster(t, plain, 4, nilInjector, nil, nil)
	if !reflect.DeepEqual(clPlain.Assign, clWrapped.Assign) {
		t.Fatal("nil-injector clustering differs from plain")
	}
	if clPlain.Degraded != "" || clWrapped.Degraded != "" {
		t.Fatal("clean run reported degradation")
	}

	// Options.Retry wrapping alone (no faults) must not change results
	// either: same queries, same answers, same clusters.
	clRetry := env.cluster(t, plain, 4, nil, &cafc.Retry{MaxAttempts: 3, Seed: 1}, nil)
	if !reflect.DeepEqual(clPlain.Assign, clRetry.Assign) {
		t.Fatal("Options.Retry on a healthy service changed the clustering")
	}
}
