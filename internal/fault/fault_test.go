package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func okFetch(u string) (string, error) { return "body of " + u, nil }

// TestNilInjectorIsPassThrough: the nil injector must return the exact
// function it was given, so fault-free runs cost nothing and pin
// bit-identical to production.
func TestNilInjectorIsPassThrough(t *testing.T) {
	var in *Injector
	body, err := in.WrapFetch(okFetch)("http://a.example/")
	if err != nil || body != "body of http://a.example/" {
		t.Fatalf("pass-through altered the call: %q, %v", body, err)
	}
	if in.Stats() != (Stats{}) {
		t.Error("nil injector reported stats")
	}
	in.SetDown(true) // must not panic
}

// TestInjectorDeterministicAcrossOrders: per-URL fault decisions must
// not depend on call arrival order — the property that makes chaos runs
// with concurrent crawl workers reproducible.
func TestInjectorDeterministicAcrossOrders(t *testing.T) {
	urls := make([]string, 40)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://site%d.example/search.html", i)
	}
	outcomes := func(order []int) map[string][]bool {
		in := New(Plan{Seed: 7, ErrorRate: 0.3}, NewFakeClock())
		fetch := in.WrapFetch(okFetch)
		got := make(map[string][]bool)
		for _, i := range order {
			u := urls[i]
			// Two calls per URL, interleaved by the permuted order.
			_, err := fetch(u)
			got[u] = append(got[u], err == nil)
		}
		return got
	}
	base := make([]int, 0, 2*len(urls))
	for i := range urls {
		base = append(base, i, i)
	}
	a := outcomes(base)
	perm := append([]int(nil), base...)
	rand.New(rand.NewSource(1)).Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	b := outcomes(perm)
	for u := range a {
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				t.Fatalf("%s call %d: outcome differs between call orders", u, i)
			}
		}
	}
}

// TestInjectorErrorRate: the injected failure fraction lands near the
// configured rate over many URLs.
func TestInjectorErrorRate(t *testing.T) {
	in := New(Plan{Seed: 3, ErrorRate: 0.2}, NewFakeClock())
	fetch := in.WrapFetch(okFetch)
	fails := 0
	n := 2000
	for i := 0; i < n; i++ {
		if _, err := fetch(fmt.Sprintf("http://s%d.example/", i)); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			fails++
		}
	}
	if frac := float64(fails) / float64(n); frac < 0.15 || frac > 0.25 {
		t.Errorf("injected failure fraction %.3f, want ~0.2", frac)
	}
	if in.Stats().Errors != fails {
		t.Errorf("Stats().Errors = %d, want %d", in.Stats().Errors, fails)
	}
}

// TestOutageWindowsAndManualDown: global-call-index windows and the
// SetDown toggle both fail calls with the plan's Unavailable error.
func TestOutageWindowsAndManualDown(t *testing.T) {
	sentinel := errors.New("down for maintenance")
	in := New(Plan{Seed: 1, Outages: []Window{{Start: 2, End: 4}}, Unavailable: sentinel}, NewFakeClock())
	bl := in.WrapBacklinks(func(u string) ([]string, error) { return []string{"http://hub.example/"}, nil })
	for call := 0; call < 6; call++ {
		_, err := bl("http://x.example/")
		inWindow := call >= 2 && call < 4
		if inWindow && !errors.Is(err, sentinel) {
			t.Errorf("call %d: err = %v, want outage sentinel", call, err)
		}
		if !inWindow && err != nil {
			t.Errorf("call %d: unexpected error %v", call, err)
		}
	}
	in.SetDown(true)
	if _, err := bl("http://x.example/"); !errors.Is(err, sentinel) {
		t.Errorf("SetDown(true): err = %v, want sentinel", err)
	}
	in.SetDown(false)
	if _, err := bl("http://x.example/"); err != nil {
		t.Errorf("SetDown(false): err = %v", err)
	}
	if got := in.Stats().Outages; got != 3 {
		t.Errorf("Stats().Outages = %d, want 3", got)
	}
}

// TestRateLimitEveryAndTruncate covers the remaining fault kinds.
func TestRateLimitEveryAndTruncate(t *testing.T) {
	in := New(Plan{Seed: 2, RateLimitEvery: 3}, NewFakeClock())
	fetch := in.WrapFetch(okFetch)
	for i := 1; i <= 9; i++ {
		_, err := fetch("http://a.example/")
		if i%3 == 0 && !errors.Is(err, ErrRateLimited) {
			t.Errorf("call %d: err = %v, want rate limit", i, err)
		}
		if i%3 != 0 && err != nil {
			t.Errorf("call %d: err = %v", i, err)
		}
	}

	trunc := New(Plan{Seed: 2, TruncateRate: 1, TruncateBytes: 4}, NewFakeClock())
	body, err := trunc.WrapFetch(okFetch)("http://a.example/")
	if err != nil || body != "body" {
		t.Errorf("truncated body = %q (err %v), want \"body\"", body, err)
	}
}

// TestSlowFaultAdvancesFakeClock: slow responses bill virtual time on
// the clock instead of sleeping for real.
func TestSlowFaultAdvancesFakeClock(t *testing.T) {
	clk := NewFakeClock()
	in := New(Plan{Seed: 5, SlowRate: 1, Delay: 3 * time.Second}, clk)
	start := time.Now()
	if _, err := in.WrapFetch(okFetch)("http://a.example/"); err != nil {
		t.Fatal(err)
	}
	if real := time.Since(start); real > time.Second {
		t.Fatalf("slow fault slept for real (%v)", real)
	}
	if clk.Slept() != 3*time.Second {
		t.Errorf("fake clock slept %v, want 3s", clk.Slept())
	}
}

// TestInjectorConcurrentUse exercises the injector from many goroutines
// (the race detector is the assertion).
func TestInjectorConcurrentUse(t *testing.T) {
	in := New(Plan{Seed: 11, ErrorRate: 0.5, SlowRate: 0.2, Delay: time.Millisecond}, NewFakeClock())
	fetch := in.WrapFetch(okFetch)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, _ = fetch(fmt.Sprintf("http://s%d.example/", i))
			}
		}(w)
	}
	wg.Wait()
	if in.Stats().Calls != 400 {
		t.Errorf("Calls = %d, want 400", in.Stats().Calls)
	}
}
