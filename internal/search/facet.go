package search

import (
	"math"
	"sort"
	"strings"

	"cafc/internal/vector"
)

// minFacetHits is the smallest result set worth clustering; below it a
// flat ranked list reads better than one-member groups.
const minFacetHits = 4

// facetRounds bounds the Lloyd refinement over the hit set. The inputs
// are tiny (at most MaxK vectors), so a fixed small round count is both
// fast and — unlike an until-converged loop with floating-point
// wobble — trivially deterministic.
const facetRounds = 4

// facets clusters the hit set into dynamic groups and labels each with
// its top discriminative terms. Everything is deterministic: seeding is
// farthest-first from the top-ranked hit with index tie-breaks, vectors
// compare via the same merge-join cosine the clustering kernels use, and
// centroids accumulate in ascending-term-ID order.
func (s *Snapshot) facets(hits []Hit) []Facet {
	if len(hits) < minFacetHits || s.opts.MaxFacets < 2 {
		return nil
	}
	vecs := make([]vector.Compiled, len(hits))
	for i, h := range hits {
		vecs[i] = s.docVector(h.doc)
	}
	nf := int(math.Ceil(math.Sqrt(float64(len(hits)))))
	if nf < 2 {
		nf = 2
	}
	if nf > s.opts.MaxFacets {
		nf = s.opts.MaxFacets
	}

	seeds := farthestFirst(vecs, nf)
	if len(seeds) < 2 {
		return nil // all hits identical: no structure to expose
	}
	centroids := make([]vector.Compiled, len(seeds))
	for i, idx := range seeds {
		centroids[i] = vecs[idx]
	}
	assign := make([]int, len(vecs))
	acc := vector.NewAccumulator(0)
	for round := 0; round < facetRounds; round++ {
		changed := false
		for i, v := range vecs {
			best, bestSim := 0, -1.0
			for c, cent := range centroids {
				if sim := vector.CosineCompiled(v, cent); sim > bestSim {
					best, bestSim = c, sim
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && round > 0 {
			break
		}
		for c := range centroids {
			var members []vector.Compiled
			for i, a := range assign {
				if a == c {
					members = append(members, vecs[i])
				}
			}
			if len(members) > 0 {
				centroids[c] = vector.CentroidCompiled(members, acc)
			}
		}
	}

	// Assemble facets in cluster order, then order by size (ties: the
	// facet containing the better-ranked hit first).
	type group struct {
		members []int // hit indices, ascending (= rank order)
	}
	groups := make([]group, len(centroids))
	for i, a := range assign {
		groups[a].members = append(groups[a].members, i)
	}
	order := make([]int, 0, len(groups))
	for c, g := range groups {
		if len(g.members) > 0 {
			order = append(order, c)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		gi, gj := groups[order[i]], groups[order[j]]
		if len(gi.members) != len(gj.members) {
			return len(gi.members) > len(gj.members)
		}
		return gi.members[0] < gj.members[0]
	})
	out := make([]Facet, 0, len(order))
	for _, c := range order {
		g := groups[c]
		docs := make([]uint32, len(g.members))
		urls := make([]string, len(g.members))
		for i, m := range g.members {
			docs[i] = hits[m].doc
			urls[i] = hits[m].URL
		}
		terms := s.labelTerms(docs, 3)
		out = append(out, Facet{
			Label: strings.Join(terms, " "),
			Terms: terms,
			Size:  len(g.members),
			URLs:  urls,
		})
	}
	return out
}

// docVector is the document's Equation-1 vector at this snapshot's
// document frequencies: LOC·TF (stored) times query-time IDF, with a
// fresh norm. Only hit-set documents are materialized this way, so the
// per-query cost is O(k · nnz), not O(corpus).
func (s *Snapshot) docVector(d uint32) vector.Compiled {
	f := s.fwd[d]
	ws := make([]float64, len(f.Weights))
	var sum float64
	for i, id := range f.IDs {
		w := f.Weights[i] * s.idf(id)
		ws[i] = w
		sum += w * w
	}
	return vector.Compiled{IDs: f.IDs, Weights: ws, Norm: math.Sqrt(sum)}
}

// farthestFirst picks up to nf seed indices: the first vector, then
// repeatedly the vector farthest (in cosine distance) from its nearest
// chosen seed, ties to the lower index. Stops early when every
// remaining vector coincides with a seed.
func farthestFirst(vecs []vector.Compiled, nf int) []int {
	if len(vecs) == 0 {
		return nil
	}
	seeds := []int{0}
	minDist := make([]float64, len(vecs))
	for i, v := range vecs {
		minDist[i] = 1 - vector.CosineCompiled(v, vecs[0])
	}
	for len(seeds) < nf {
		best, bestDist := -1, 0.0
		for i, d := range minDist {
			if d > bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 || bestDist <= 1e-12 {
			break
		}
		seeds = append(seeds, best)
		for i, v := range vecs {
			if d := 1 - vector.CosineCompiled(v, vecs[best]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return seeds
}

// labelTerms extracts the top discriminative terms for a document group:
// each term is scored by p·log(p/q), where p is its in-group document
// frequency fraction and q its background (whole-index) fraction — high
// for terms common inside the group and rare outside it. Term walks are
// in ascending-ID order and the final sort breaks ties by ID, so labels
// are deterministic. Stems are mapped back to surface forms for display.
func (s *Snapshot) labelTerms(docs []uint32, n int) []string {
	df := make(map[uint32]int)
	for _, d := range docs {
		for _, id := range s.fwd[d].IDs {
			df[id]++
		}
	}
	ids := make([]uint32, 0, len(df))
	for id := range df {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	type scored struct {
		id uint32
		sc float64
	}
	var cands []scored
	size := float64(len(docs))
	total := float64(len(s.docs))
	for _, id := range ids {
		if len(docs) >= minFacetHits && df[id] < 2 {
			continue // one-document terms are noise in any real group
		}
		p := float64(df[id]) / size
		q := float64(len(s.post[id])) / total
		if sc := p * math.Log(p/q); sc > 0 {
			cands = append(cands, scored{id: id, sc: sc})
		}
	}
	if len(cands) == 0 {
		// Degenerate group (e.g. the whole index): fall back to the most
		// frequent in-group terms.
		for _, id := range ids {
			cands = append(cands, scored{id: id, sc: float64(df[id])})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sc != cands[j].sc {
			return cands[i].sc > cands[j].sc
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = s.surface[c.id]
	}
	return out
}

// clusterLabels names every directory cluster with its top
// discriminative terms — the per-epoch upgrade from "cluster 3" to a
// human-readable name. Cost is one pass over the corpus postings plus a
// per-cluster vocabulary scan, paid once per freeze.
func (s *Snapshot) clusterLabels() []string {
	if s.k <= 0 {
		return nil
	}
	labels := make([]string, s.k)
	members := make([][]uint32, s.k)
	for d, c := range s.assign {
		if c >= 0 && c < s.k {
			members[c] = append(members[c], uint32(d))
		}
	}
	for c, docs := range members {
		if len(docs) == 0 {
			continue
		}
		labels[c] = strings.Join(s.labelTerms(docs, 3), " ")
	}
	return labels
}
