// Package search is the directory's retrieval subsystem: a compiled
// term→document inverted index in the CSR style of vector.Postings,
// top-k ranked retrieval with the paper's LOC-weighted TF-IDF scoring
// (Equation 1, with document frequencies resolved at query time),
// search-time clustering of each result set into dynamic facets, and
// automatic label extraction — the Solr/Carrot2-style on-line result
// clustering that turns a ranked list into labeled groups.
//
// The split mirrors the epoch discipline of the rest of the system: a
// Builder is owned by one goroutine (the ingest worker / replication
// tailer via OnPublish) and grows incrementally — one Add per newly
// admitted document, never a rebuild — while Freeze cuts an immutable
// Snapshot that any number of readers query lock-free. Snapshots share
// posting storage with the builder through length-capped slice headers:
// the builder appends beyond every published snapshot's length, so a
// freeze costs O(vocabulary) slice headers, not O(total postings).
//
// Determinism discipline (the invariant replication's byte-identity
// depends on): term IDs are interned in document order with
// lexicographic order inside each document, postings append in document
// order, query scores accumulate in ascending-term-ID order, and every
// sort has a total tie-break. Two builders fed the same document
// sequence produce bit-identical snapshots regardless of how the
// sequence was batched into epochs.
package search

import (
	"cafc/internal/obs"
	"cafc/internal/text"
	"cafc/internal/vector"
)

// posting is one term→document entry: the document ID and the term's
// LOC·TF weight in it (the sum of Equation-1 location factors over the
// term's occurrences). IDF is deliberately absent — it depends on the
// corpus size, so it is resolved at query time against the snapshot's
// document-frequency view, which is what makes incremental append exact:
// an appended index is bit-identical to one rebuilt from scratch.
type posting struct {
	doc uint32
	w   float64
}

// Meta is the stored per-document metadata.
type Meta struct {
	URL   string
	Title string
	// norm is the Euclidean norm of the document's LOC·TF vector, fixed
	// at Add time and used for document-length normalization.
	norm float64
}

// Options bound a snapshot's query behavior. Zero values select the
// defaults noted per field.
type Options struct {
	// MaxK caps the per-query result count (0 = 50).
	MaxK int
	// CacheSize bounds the per-snapshot result cache (0 = 1024). The
	// cache clears wholesale when full — bounded and deterministic.
	CacheSize int
	// MaxFacets caps the dynamic facet count per result set (0 = 6).
	MaxFacets int
}

func (o Options) withDefaults() Options {
	if o.MaxK == 0 {
		o.MaxK = 50
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.MaxFacets == 0 {
		o.MaxFacets = 6
	}
	return o
}

// Builder accumulates the inverted index. It is single-writer: Add and
// Freeze must be called from one goroutine (the epoch-publish path),
// while the Snapshots Freeze returns are safe for concurrent readers.
type Builder struct {
	reg  *obs.Registry
	dict *vector.Dict
	docs []Meta
	fwd  []vector.Compiled
	post [][]posting

	// surfaceOf maps each stem to the first surface token (in document
	// order, from titles) observed for it — a prefix-stable function of
	// the document sequence, so labels come out identical no matter how
	// the sequence was batched or replayed.
	surfaceOf map[string]string

	// frozenDict is the read-only dictionary clone shared by snapshots,
	// refreshed only when the vocabulary has grown since the last freeze
	// (queries resolve term IDs against it; the live dict keeps mutating).
	frozenDict *vector.Dict
	frozenLen  int
}

// NewBuilder returns an empty builder. reg may be nil — instrumentation
// is inert without a registry, like every other layer.
func NewBuilder(reg *obs.Registry) *Builder {
	return &Builder{
		reg:       reg,
		dict:      vector.NewDict(),
		surfaceOf: make(map[string]string),
	}
}

// Len returns the number of indexed documents — the caller's cursor for
// incremental append (index exactly the docs beyond Len on each epoch).
func (b *Builder) Len() int { return len(b.docs) }

// Add indexes one document: its title (for display and surface forms)
// and its LOC-weighted term occurrences (form.FormPage.PCTerms, or the
// PageTerms fallback). Documents must be added in corpus order.
func (b *Builder) Add(url, title string, terms []vector.WeightedTerm) {
	for _, st := range text.SurfaceTerms(title) {
		if _, ok := b.surfaceOf[st.Term]; !ok {
			b.surfaceOf[st.Term] = st.Surface
		}
	}
	c := vector.CompileWeighted(terms, b.dict)
	for len(b.post) < b.dict.Len() {
		b.post = append(b.post, nil)
	}
	id := uint32(len(b.docs))
	for i, tid := range c.IDs {
		b.post[tid] = append(b.post[tid], posting{doc: id, w: c.Weights[i]})
	}
	b.docs = append(b.docs, Meta{URL: url, Title: title, norm: c.Norm})
	b.fwd = append(b.fwd, c)
	b.reg.Counter("search_index_adds_total").Inc()
}

// Freeze cuts an immutable snapshot of the index at the given epoch,
// carrying the epoch's cluster assignment (document order) so hits can
// be mapped to directory clusters, plus freshly computed per-cluster
// discriminative labels. Each snapshot owns a fresh result cache, which
// is what makes cache invalidation on epoch swap structural rather than
// something to get right.
func (b *Builder) Freeze(epoch int64, assign []int, k int, o Options) *Snapshot {
	if b.dict.Len() != b.frozenLen {
		b.frozenDict = b.dict.Clone()
		b.frozenLen = b.dict.Len()
	}
	surface := make([]string, b.frozenLen)
	for id := range surface {
		t := b.frozenDict.Term(uint32(id))
		if s, ok := b.surfaceOf[t]; ok {
			surface[id] = s
		} else {
			surface[id] = t
		}
	}
	o = o.withDefaults()
	s := &Snapshot{
		Epoch:   epoch,
		reg:     b.reg,
		opts:    o,
		dict:    b.frozenDict,
		docs:    b.docs[:len(b.docs):len(b.docs)],
		fwd:     b.fwd[:len(b.fwd):len(b.fwd)],
		post:    append([][]posting(nil), b.post...),
		surface: surface,
		assign:  append([]int(nil), assign...),
		k:       k,
		cache:   newCache(o.CacheSize),
	}
	s.labels = s.clusterLabels()
	b.reg.Gauge("search_index_docs").Set(float64(len(s.docs)))
	b.reg.Gauge("search_index_terms").Set(float64(len(s.post)))
	b.reg.Counter("search_index_freezes_total").Inc()
	return s
}
