package search

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"cafc/internal/form"
	"cafc/internal/text"
	"cafc/internal/vector"
)

// testDoc is a synthetic input document for builder tests.
type testDoc struct {
	url     string
	title   string
	terms   []vector.WeightedTerm
	cluster int
}

// wt builds a LOC-weighted occurrence list from (term, loc) pairs given
// as alternating values: wt("hotel", 3, "rate", 1).
func wt(kv ...interface{}) []vector.WeightedTerm {
	var out []vector.WeightedTerm
	for i := 0; i < len(kv); i += 2 {
		out = append(out, vector.WeightedTerm{
			Term: kv[i].(string),
			Loc:  float64(kv[i+1].(int)),
		})
	}
	return out
}

// corpusDocs is a tiny two-topic corpus: hotels and flights, with one
// crossover page.
func corpusDocs() []testDoc {
	return []testDoc{
		{"u/h1", "Hotel Rooms", wt("hotel", 3, "room", 3, "rate", 1, "citi", 1), 0},
		{"u/h2", "City Hotels", wt("hotel", 3, "citi", 3, "room", 1, "suit", 1), 0},
		{"u/h3", "Suite Hotel Deals", wt("hotel", 3, "suit", 3, "deal", 1), 0},
		{"u/f1", "Cheap Flights", wt("flight", 3, "cheap", 3, "fare", 1), 1},
		{"u/f2", "Flight Fares", wt("flight", 3, "fare", 3, "airlin", 1), 1},
		{"u/f3", "Airline Tickets", wt("airlin", 3, "ticket", 3, "flight", 1), 1},
		{"u/x1", "Hotel Flight Bundles", wt("hotel", 2, "flight", 2, "bundl", 1), 0},
	}
}

func buildSnapshot(t *testing.T, docs []testDoc) *Snapshot {
	t.Helper()
	b := NewBuilder(nil)
	assign := make([]int, len(docs))
	for i, d := range docs {
		b.Add(d.url, d.title, d.terms)
		assign[i] = d.cluster
	}
	return b.Freeze(1, assign, 2, Options{})
}

// referenceScores is an order-free map-based reimplementation of the
// scoring formula — the retired legacy index's approach, kept as a
// cross-check that the compiled path computes the same function.
func referenceScores(docs []testDoc, query string) map[string]float64 {
	n := float64(len(docs))
	df := make(map[string]int)
	weights := make([]map[string]float64, len(docs))
	norms := make([]float64, len(docs))
	for i, d := range docs {
		w := make(map[string]float64)
		for _, o := range d.terms {
			w[o.Term] += o.Loc
		}
		var sum float64
		for t, v := range w {
			df[t]++
			sum += v * v
		}
		weights[i] = w
		norms[i] = math.Sqrt(sum)
	}
	qtf := make(map[string]float64)
	for _, t := range text.Terms(query) {
		qtf[t]++
	}
	out := make(map[string]float64)
	for i, d := range docs {
		var score float64
		// Walk terms in sorted order to mirror the accumulation
		// discipline (the values should agree bit-for-bit).
		terms := make([]string, 0, len(qtf))
		for t := range qtf {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		for _, t := range terms {
			if df[t] == 0 || weights[i][t] == 0 {
				continue
			}
			idf := math.Log(1 + n/float64(df[t]))
			score += qtf[t] * idf * idf * weights[i][t]
		}
		if score > 0 {
			out[d.url] = score / norms[i]
		}
	}
	return out
}

func TestSearchMatchesReference(t *testing.T) {
	docs := corpusDocs()
	s := buildSnapshot(t, docs)
	for _, q := range []string{"hotel", "cheap flights", "hotel flight", "suite deals", "airline"} {
		r, cached := s.Search(q, 50)
		if cached {
			t.Fatalf("%q: first query served from cache", q)
		}
		want := referenceScores(docs, q)
		if r.Total != len(want) {
			t.Fatalf("%q: total = %d, want %d", q, r.Total, len(want))
		}
		for _, h := range r.Hits {
			if h.Score != want[h.URL] {
				t.Fatalf("%q: score(%s) = %v, reference %v", q, h.URL, h.Score, want[h.URL])
			}
		}
	}
}

func TestSearchRankingAndMetadata(t *testing.T) {
	s := buildSnapshot(t, corpusDocs())
	r, _ := s.Search("hotel", 3)
	if len(r.Hits) != 3 || r.Total != 4 {
		t.Fatalf("hits=%d total=%d, want 3 of 4", len(r.Hits), r.Total)
	}
	for i := 1; i < len(r.Hits); i++ {
		if r.Hits[i-1].Score < r.Hits[i].Score {
			t.Fatalf("ranking not descending: %+v", r.Hits)
		}
	}
	for _, h := range r.Hits {
		if !strings.HasPrefix(h.URL, "u/h") && h.URL != "u/x1" {
			t.Fatalf("non-hotel page in hotel results: %+v", h)
		}
		if h.Cluster != 0 {
			t.Fatalf("hit %s cluster = %d, want 0", h.URL, h.Cluster)
		}
		if h.ClusterLabel == "" {
			t.Fatalf("hit %s has no cluster label", h.URL)
		}
		if h.Title == "" {
			t.Fatalf("hit %s has no title", h.URL)
		}
	}
}

func TestSearchEmptyAndUnknown(t *testing.T) {
	s := buildSnapshot(t, corpusDocs())
	if r, _ := s.Search("", 10); r.Total != 0 || len(r.Hits) != 0 {
		t.Fatalf("empty query returned hits: %+v", r)
	}
	if r, _ := s.Search("zzz unknownterm", 10); r.Total != 0 {
		t.Fatalf("unknown terms returned hits: %+v", r)
	}
}

func TestSearchKClamp(t *testing.T) {
	b := NewBuilder(nil)
	for i := 0; i < 80; i++ {
		b.Add(fmt.Sprintf("u/%d", i), "Page", wt("common", 1, fmt.Sprintf("t%d", i), 1))
	}
	s := b.Freeze(1, make([]int, 80), 1, Options{MaxK: 25})
	r, _ := s.Search("common", 1000)
	if len(r.Hits) != 25 {
		t.Fatalf("k clamp: got %d hits, want MaxK=25", len(r.Hits))
	}
	if r.Total != 80 {
		t.Fatalf("total = %d, want 80", r.Total)
	}
	r, _ = s.Search("common", 0)
	if len(r.Hits) != 10 {
		t.Fatalf("default k: got %d hits, want 10", len(r.Hits))
	}
}

// TestIncrementalAppendBitIdentical pins the core freeze property: an
// index grown batch by batch (freezing between batches, like the live
// epoch path) is bit-identical to one built in a single shot — scores,
// ranking, facets, labels.
func TestIncrementalAppendBitIdentical(t *testing.T) {
	docs := corpusDocs()
	assign := make([]int, len(docs))
	for i, d := range docs {
		assign[i] = d.cluster
	}

	one := NewBuilder(nil)
	for _, d := range docs {
		one.Add(d.url, d.title, d.terms)
	}
	full := one.Freeze(3, assign, 2, Options{})

	inc := NewBuilder(nil)
	var grown *Snapshot
	for i, d := range docs {
		inc.Add(d.url, d.title, d.terms)
		grown = inc.Freeze(int64(i+1), assign[:i+1], 2, Options{})
	}
	// Refreeze at the final epoch so the snapshots are directly
	// comparable (epoch numbers aside, every earlier freeze must not
	// have disturbed the final state).
	grown = inc.Freeze(3, assign, 2, Options{})

	for _, q := range []string{"hotel", "cheap flights", "airline tickets", "hotel flight"} {
		a, _ := full.Search(q, 50)
		b, _ := grown.Search(q, 50)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%q: batch and incremental snapshots diverge:\n%+v\nvs\n%+v", q, a, b)
		}
		for i := range a.Hits {
			if math.Float64bits(a.Hits[i].Score) != math.Float64bits(b.Hits[i].Score) {
				t.Fatalf("%q: score bits diverge at rank %d", q, i)
			}
		}
	}
	if !reflect.DeepEqual(full.ClusterLabels(), grown.ClusterLabels()) {
		t.Fatalf("cluster labels diverge: %v vs %v", full.ClusterLabels(), grown.ClusterLabels())
	}
}

// TestSearchDeterminism pins byte-identical responses across two
// independent builds — the satellite the retired map-order index could
// never satisfy.
func TestSearchDeterminism(t *testing.T) {
	docs := corpusDocs()
	a := buildSnapshot(t, docs)
	b := buildSnapshot(t, docs)
	for _, q := range []string{"hotel", "flight fare", "city suite deals", "hotel flight bundles"} {
		ra, _ := a.Search(q, 50)
		rb, _ := b.Search(q, 50)
		ja, err := json.Marshal(ra)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(rb)
		if err != nil {
			t.Fatal(err)
		}
		if string(ja) != string(jb) {
			t.Fatalf("%q: responses not byte-identical:\n%s\nvs\n%s", q, ja, jb)
		}
	}
}

func TestSnapshotImmutableUnderAppend(t *testing.T) {
	docs := corpusDocs()
	b := NewBuilder(nil)
	assign := make([]int, len(docs))
	for i, d := range docs {
		assign[i] = d.cluster
	}
	for _, d := range docs[:4] {
		b.Add(d.url, d.title, d.terms)
	}
	old := b.Freeze(1, assign[:4], 2, Options{})
	before, _ := old.Search("hotel", 50)

	// Keep growing: the old snapshot must not observe the new documents.
	for _, d := range docs[4:] {
		b.Add(d.url, d.title, d.terms)
	}
	b.Freeze(2, assign, 2, Options{})
	after := old.search("hotel", 50) // bypass cache: recompute from the old snapshot
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("old snapshot changed under append:\n%+v\nvs\n%+v", before, after)
	}
	if old.Docs() != 4 {
		t.Fatalf("old snapshot doc count = %d, want 4", old.Docs())
	}
}

func TestCacheHitAndClear(t *testing.T) {
	s := buildSnapshot(t, corpusDocs())
	r1, cached := s.Search("hotel", 5)
	if cached {
		t.Fatal("first query reported cached")
	}
	r2, cached := s.Search("hotel", 5)
	if !cached {
		t.Fatal("repeat query not served from cache")
	}
	if r1 != r2 {
		t.Fatal("cache returned a different result pointer")
	}
	// Different k is a different cache entry.
	if _, cached := s.Search("hotel", 6); cached {
		t.Fatal("different k served from cache")
	}

	small := NewBuilder(nil)
	for _, d := range corpusDocs() {
		small.Add(d.url, d.title, d.terms)
	}
	snap := small.Freeze(1, nil, 0, Options{CacheSize: 2})
	snap.Search("hotel", 5)
	snap.Search("flight", 5)
	snap.Search("fare", 5) // over capacity: wholesale clear, then insert
	if _, cached := snap.Search("hotel", 5); cached {
		t.Fatal("entry survived a full-cache clear")
	}
	if _, cached := snap.Search("fare", 5); !cached {
		t.Fatal("freshly inserted entry missing after clear")
	}
}

func TestFacetsSplitTopics(t *testing.T) {
	s := buildSnapshot(t, corpusDocs())
	r, _ := s.Search("hotel flight", 50)
	if len(r.Facets) < 2 {
		t.Fatalf("expected >= 2 facets over a two-topic result set, got %+v", r.Facets)
	}
	total := 0
	for _, f := range r.Facets {
		if f.Size != len(f.URLs) {
			t.Fatalf("facet size %d != %d urls", f.Size, len(f.URLs))
		}
		if f.Label == "" || len(f.Terms) == 0 {
			t.Fatalf("facet without label: %+v", f)
		}
		total += f.Size
	}
	if total != len(r.Hits) {
		t.Fatalf("facets cover %d hits, want %d", total, len(r.Hits))
	}
	// The two dominant facets should separate the topics: one labeled
	// with hotel vocabulary, one with flight vocabulary.
	joined := ""
	for _, f := range r.Facets {
		joined += f.Label + "|"
	}
	if !strings.Contains(joined, "hotel") || !strings.Contains(joined, "flight") {
		t.Fatalf("facet labels miss the topics: %q", joined)
	}
}

func TestFacetsSmallResultSetsFlat(t *testing.T) {
	s := buildSnapshot(t, corpusDocs())
	r, _ := s.Search("bundles", 50) // single-document term
	if len(r.Facets) != 0 {
		t.Fatalf("tiny result set should not be faceted: %+v", r.Facets)
	}
}

func TestClusterLabelsDiscriminative(t *testing.T) {
	s := buildSnapshot(t, corpusDocs())
	labels := s.ClusterLabels()
	if len(labels) != 2 {
		t.Fatalf("labels = %v, want 2 clusters", labels)
	}
	if !strings.Contains(labels[0], "hotel") {
		t.Fatalf("cluster 0 label %q misses 'hotel'", labels[0])
	}
	if !strings.Contains(labels[1], "flight") {
		t.Fatalf("cluster 1 label %q misses 'flight'", labels[1])
	}
	if labels[0] == labels[1] {
		t.Fatalf("labels not discriminative: both %q", labels[0])
	}
}

func TestSurfaceFormsInLabels(t *testing.T) {
	// Titles carry the display forms: "Flights" survives stemming
	// ("flight") and resurfaces in labels via the first-seen title token.
	b := NewBuilder(nil)
	b.Add("u/1", "Cheap Flights", wt("flight", 3, "cheap", 3))
	b.Add("u/2", "Flights Finder", wt("flight", 3, "finder", 3))
	b.Add("u/3", "Flights Deals", wt("flight", 3, "deal", 3))
	s := b.Freeze(1, []int{0, 0, 0}, 1, Options{})
	labels := s.ClusterLabels()
	if len(labels) != 1 || !strings.Contains(labels[0], "flights") {
		t.Fatalf("label %v should use the surface form 'flights'", labels)
	}
}

func TestSearchClusters(t *testing.T) {
	s := buildSnapshot(t, corpusDocs())
	chs := s.SearchClusters("flight", 8)
	if len(chs) != 2 {
		t.Fatalf("cluster hits = %+v, want both clusters matched", chs)
	}
	if chs[0].Cluster != 1 {
		t.Fatalf("best cluster = %d, want the flight cluster (1)", chs[0].Cluster)
	}
	if chs[0].Matches != 3 || chs[0].Best.URL == "" {
		t.Fatalf("flight cluster aggregation wrong: %+v", chs[0])
	}
	if chs[0].Score <= chs[1].Score {
		t.Fatalf("cluster ranking not descending: %+v", chs)
	}
}

func TestPageTermsFormAndFallback(t *testing.T) {
	formHTML := `<html><head><title>Hotel Search</title></head><body>
		<p>Find hotel rooms</p>
		<form action="/q"><input type="text" name="city"><input type="submit" value="Search"></form>
		</body></html>`
	title, terms := PageTerms("u/form", formHTML, form.DefaultWeights)
	if title != "Hotel Search" {
		t.Fatalf("title = %q", title)
	}
	seen := map[string]float64{}
	for _, o := range terms {
		seen[o.Term] += o.Loc
	}
	if seen["hotel"] == 0 {
		t.Fatalf("form page terms missing 'hotel': %v", seen)
	}

	plain := `<html><head><title>Plain Page</title></head><body>just text here</body></html>`
	title, terms = PageTerms("u/plain", plain, form.DefaultWeights)
	if title != "Plain Page" || len(terms) == 0 {
		t.Fatalf("fallback failed: %q %v", title, terms)
	}

	if title, terms = PageTerms("u/empty", "", form.DefaultWeights); len(terms) != 0 {
		t.Fatalf("empty HTML produced terms: %q %v", title, terms)
	}
}
