package search

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"cafc/internal/obs"
	"cafc/internal/text"
	"cafc/internal/vector"
)

// Hit is one ranked retrieval result.
type Hit struct {
	URL          string  `json:"url"`
	Title        string  `json:"title"`
	Cluster      int     `json:"cluster"`
	ClusterLabel string  `json:"cluster_label,omitempty"`
	Score        float64 `json:"score"`

	// doc is the internal document ID, carried for facet clustering.
	doc uint32
}

// Facet is one dynamic result group: a search-time cluster of the hit
// set with automatically extracted discriminative labels.
type Facet struct {
	Label string   `json:"label"`
	Terms []string `json:"terms"`
	Size  int      `json:"size"`
	URLs  []string `json:"urls"`
}

// Result is one complete search response. It is immutable once built
// (results are shared through the cache), and its JSON encoding is
// byte-deterministic for a fixed index state — the property the
// leader/follower byte-identity test pins.
type Result struct {
	Query  string  `json:"query"`
	Epoch  int64   `json:"epoch"`
	K      int     `json:"k"`
	Total  int     `json:"total"`
	Hits   []Hit   `json:"hits"`
	Facets []Facet `json:"facets,omitempty"`
}

// Snapshot is the frozen, query-side view of the index at one epoch.
// It is immutable and safe for any number of concurrent readers; the
// builder keeps growing underneath without ever mutating state a
// snapshot can observe.
type Snapshot struct {
	// Epoch is the published epoch this snapshot belongs to.
	Epoch int64

	reg     *obs.Registry
	opts    Options
	dict    *vector.Dict
	docs    []Meta
	fwd     []vector.Compiled
	post    [][]posting
	surface []string
	assign  []int
	k       int
	labels  []string
	cache   *cache
}

// Docs returns the number of searchable documents.
func (s *Snapshot) Docs() int { return len(s.docs) }

// Terms returns the vocabulary size.
func (s *Snapshot) Terms() int { return len(s.post) }

// ClusterLabels returns the per-cluster discriminative labels computed
// at freeze time (top in-cluster vs. background terms, surfaced).
func (s *Snapshot) ClusterLabels() []string { return s.labels }

// idf is Equation 1's corpus factor resolved against this snapshot:
// log(1 + N/n_t). The +1 keeps single-document corpora searchable, as
// the legacy index did.
func (s *Snapshot) idf(t uint32) float64 {
	n := len(s.post[t])
	if n == 0 {
		return 0
	}
	return math.Log(1 + float64(len(s.docs))/float64(n))
}

// Search runs a ranked top-k query with dynamic facets, serving a
// repeated (query, k) from the snapshot's cache. The second return
// reports whether the result came from the cache. Results are immutable
// — callers must not modify them.
func (s *Snapshot) Search(q string, k int) (*Result, bool) {
	if k <= 0 {
		k = 10
	}
	if k > s.opts.MaxK {
		k = s.opts.MaxK
	}
	s.reg.Counter("search_requests_total").Inc()
	key := strconv.Itoa(k) + "\x00" + q
	if r, ok := s.cache.get(key); ok {
		s.reg.Counter("search_cache_hits_total").Inc()
		return r, true
	}
	s.reg.Counter("search_cache_misses_total").Inc()
	t0 := time.Now()
	r := s.search(q, k)
	s.reg.Histogram("search_latency_seconds", obs.DurationBuckets).Observe(time.Since(t0).Seconds())
	s.cache.put(key, r)
	return r, false
}

// search is the uncached query path: score, rank, cut to k, facet.
func (s *Snapshot) search(q string, k int) *Result {
	hits := s.rank(q)
	r := &Result{Query: q, Epoch: s.Epoch, K: k, Total: len(hits)}
	if len(hits) > k {
		hits = hits[:k]
	}
	r.Hits = hits
	r.Facets = s.facets(hits)
	return r
}

// rank scores every matching document and returns the full descending
// ranking. Per-document partial sums accumulate in ascending-term-ID
// order (the outer loop walks the sorted query IDs), so the float sums
// are bit-identical across runs and replicas — the same discipline as
// vector.Postings.Dots.
func (s *Snapshot) rank(q string) []Hit {
	qIDs, qTFs := s.queryVector(q)
	if len(qIDs) == 0 {
		return nil
	}
	scores := make([]float64, len(s.docs))
	var touched []uint32
	for i, t := range qIDs {
		idf := s.idf(t)
		if idf == 0 {
			continue
		}
		// Query weight qtf·idf times document weight LOC·TF·idf — the
		// inner product of Equation-1 vectors on both sides.
		qw := qTFs[i] * idf * idf
		for _, p := range s.post[t] {
			if scores[p.doc] == 0 {
				touched = append(touched, p.doc)
			}
			scores[p.doc] += qw * p.w
		}
	}
	hits := make([]Hit, 0, len(touched))
	for _, d := range touched {
		sc := scores[d]
		if n := s.docs[d].norm; n > 0 {
			sc /= n
		}
		h := Hit{
			URL:     s.docs[d].URL,
			Title:   s.docs[d].Title,
			Cluster: -1,
			Score:   sc,
			doc:     d,
		}
		if int(d) < len(s.assign) {
			h.Cluster = s.assign[d]
		}
		if h.Cluster >= 0 && h.Cluster < len(s.labels) {
			h.ClusterLabel = s.labels[h.Cluster]
		}
		hits = append(hits, h)
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].doc < hits[j].doc
	})
	return hits
}

// queryVector tokenizes the query through the paper's term pipeline and
// resolves it against the snapshot dictionary: sorted unique term IDs
// with their query term frequencies. Unknown terms drop out.
func (s *Snapshot) queryVector(q string) ([]uint32, []float64) {
	tf := make(map[uint32]float64)
	for _, t := range text.Terms(q) {
		if id, ok := s.dict.ID(t); ok {
			tf[id]++
		}
	}
	ids := make([]uint32, 0, len(tf))
	for id := range tf {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	tfs := make([]float64, len(ids))
	for i, id := range ids {
		tfs[i] = tf[id]
	}
	return ids, tfs
}

// ClusterHit aggregates retrieval evidence per directory cluster — the
// database-selection view the paper's Section 6 proposes: which groups
// of hidden-web databases best match the query.
type ClusterHit struct {
	Cluster int     `json:"cluster"`
	Label   string  `json:"label"`
	Score   float64 `json:"score"`
	Matches int     `json:"matches"`
	Best    Hit     `json:"best"`
}

// SearchClusters ranks clusters by the sum of their members' retrieval
// scores, best-scoring cluster first (ties: lower cluster ID).
func (s *Snapshot) SearchClusters(q string, limit int) []ClusterHit {
	hits := s.rank(q)
	if s.k <= 0 {
		return nil
	}
	agg := make([]ClusterHit, s.k)
	for i := range agg {
		agg[i].Cluster = i
		if i < len(s.labels) {
			agg[i].Label = s.labels[i]
		}
	}
	for _, h := range hits {
		if h.Cluster < 0 || h.Cluster >= s.k {
			continue
		}
		ch := &agg[h.Cluster]
		// hits arrive ranked, so the first member seen is the best one.
		if ch.Matches == 0 {
			ch.Best = h
		}
		ch.Score += h.Score
		ch.Matches++
	}
	out := make([]ClusterHit, 0, len(agg))
	for _, ch := range agg {
		if ch.Matches > 0 {
			out = append(out, ch)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Cluster < out[j].Cluster
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// cache is the per-snapshot result cache. Keying results to a snapshot
// (rather than a global cache keyed by epoch) makes invalidation on
// epoch swap structural: the next snapshot starts with an empty cache,
// and cached results can never outlive the epoch they were computed at.
// When full it clears wholesale — bounded memory with deterministic
// behavior, no eviction-order dependence.
type cache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*Result
}

func newCache(capacity int) *cache {
	return &cache{cap: capacity, m: make(map[string]*Result)}
}

func (c *cache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *cache) put(key string, r *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.cap {
		c.m = make(map[string]*Result)
	}
	c.m[key] = r
}
