package search

import (
	"sync"

	"cafc/internal/form"
	"cafc/internal/htmlx"
	"cafc/internal/text"
	"cafc/internal/vector"
)

// arenaPool recycles parse-tree arenas across PageTerms calls: the tree
// never escapes this package (only extracted strings do), so each call
// can release its nodes back for the next page.
var arenaPool = sync.Pool{New: func() any { return &htmlx.Arena{} }}

// PageTerms derives a document's searchable view from raw HTML: its
// title and its LOC-weighted page-content terms (Equation 1's PC space —
// title terms at the Title factor, everything else at Body). Form pages
// go through the same form.Parse the model uses, so a document indexed
// from HTML is bit-identical to one indexed from its retained
// form.FormPage; pages without a searchable form (the static directory's
// general case) fall back to a direct title/body walk. Empty or
// unparseable HTML yields an empty, unsearchable document.
func PageTerms(url, html string, w form.Weights) (string, []vector.WeightedTerm) {
	a := arenaPool.Get().(*htmlx.Arena)
	defer func() {
		a.Reset()
		arenaPool.Put(a)
	}()
	doc := htmlx.ParseArena(html, a)
	if fp, err := form.FromDoc(url, doc, w); err == nil {
		return fp.Title, fp.PCTerms
	}
	title := htmlx.Title(doc)
	var terms []vector.WeightedTerm
	for _, t := range text.Terms(title) {
		terms = append(terms, vector.WeightedTerm{Term: t, Loc: w.Title})
	}
	for _, t := range text.Terms(doc.Text()) {
		terms = append(terms, vector.WeightedTerm{Term: t, Loc: w.Body})
	}
	return title, terms
}
