package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cafc/internal/cafc"
	"cafc/internal/cluster"
	"cafc/internal/hub"
	"cafc/internal/metrics"
)

// QualityRow is one cell group of a quality table: an algorithm under a
// feature configuration with its entropy and F-measure.
type QualityRow struct {
	Algorithm string
	Features  string
	Entropy   float64
	FMeasure  float64
}

// RenderQuality prints rows as an aligned table.
func RenderQuality(rows []QualityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-8s %10s %10s\n", "algorithm", "features", "entropy", "F-measure")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-8s %10.3f %10.3f\n", r.Algorithm, r.Features, r.Entropy, r.FMeasure)
	}
	return b.String()
}

// Figure2 reproduces Figure 2: entropy and F-measure for CAFC-C (averaged
// over `runs` random-seed runs) and CAFC-CH (min hub cardinality
// `minCard`) under FC, PC and FC+PC.
func Figure2(env *Env, runs, minCard int) []QualityRow {
	if minCard <= 0 {
		minCard = DefaultMinCard
	}
	var rows []QualityRow
	for _, f := range []cafc.Features{cafc.FCOnly, cafc.PCOnly, cafc.FCPC} {
		m := env.Model.WithFeatures(f)
		e, fm := env.averageCAFCC(m, runs)
		rows = append(rows, QualityRow{Algorithm: "CAFC-C", Features: f.String(), Entropy: e, FMeasure: fm})
	}
	for _, f := range []cafc.Features{cafc.FCOnly, cafc.PCOnly, cafc.FCPC} {
		m := env.Model.WithFeatures(f)
		res := cafc.CAFCCH(m, env.K, env.HubClusters, minCard, rand.New(rand.NewSource(1)))
		e, fm := env.quality(res)
		rows = append(rows, QualityRow{Algorithm: "CAFC-CH", Features: f.String(), Entropy: e, FMeasure: fm})
	}
	return rows
}

// Table1Row is one form-size bucket of Table 1.
type Table1Row struct {
	Bucket       string
	Count        int
	AvgOutside   float64 // average page terms located outside the form
	AvgFormTerms float64
}

// Table1 reproduces Table 1: the average number of page terms outside the
// form, per form-size interval.
func Table1(env *Env) []Table1Row {
	type bucket struct {
		name     string
		lo, hi   int // hi exclusive; hi<0 means unbounded
		count    int
		sumOut   float64
		sumForms float64
	}
	buckets := []*bucket{
		{name: "< 10", lo: 0, hi: 10},
		{name: "[10, 50)", lo: 10, hi: 50},
		{name: "[50, 100)", lo: 50, hi: 100},
		{name: "[100, 200)", lo: 100, hi: 200},
		{name: ">= 200", lo: 200, hi: -1},
	}
	for _, fp := range env.FormPages {
		n := fp.FormTermCount()
		for _, bk := range buckets {
			if n >= bk.lo && (bk.hi < 0 || n < bk.hi) {
				bk.count++
				bk.sumOut += float64(fp.PageTermsOutsideForm())
				bk.sumForms += float64(n)
				break
			}
		}
	}
	rows := make([]Table1Row, 0, len(buckets))
	for _, bk := range buckets {
		r := Table1Row{Bucket: bk.name, Count: bk.count}
		if bk.count > 0 {
			r.AvgOutside = bk.sumOut / float64(bk.count)
			r.AvgFormTerms = bk.sumForms / float64(bk.count)
		}
		rows = append(rows, r)
	}
	return rows
}

// RenderTable1 prints Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %22s\n", "form size", "pages", "avg terms outside form")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %22.1f\n", r.Bucket, r.Count, r.AvgOutside)
	}
	return b.String()
}

// Figure3Row is one point of the Figure 3 cardinality sweep.
type Figure3Row struct {
	MinCardinality int
	Entropy        float64
	FMeasure       float64
	ClustersKept   int
}

// Figure3 reproduces Figure 3: CAFC-CH entropy as the minimum hub-cluster
// cardinality varies (the paper sweeps >2 .. >11, i.e. minimum 3..12). It
// also returns the CAFC-C reference line value.
func Figure3(env *Env, runs int) (sweep []Figure3Row, cafccEntropy float64) {
	cafccEntropy, _ = env.averageCAFCC(env.Model, runs)
	for minCard := 3; minCard <= 12; minCard++ {
		res := cafc.CAFCCH(env.Model, env.K, env.HubClusters, minCard, rand.New(rand.NewSource(1)))
		e, f := env.quality(res)
		sweep = append(sweep, Figure3Row{
			MinCardinality: minCard,
			Entropy:        e,
			FMeasure:       f,
			ClustersKept:   len(hub.Filter(env.HubClusters, minCard)),
		})
	}
	return sweep, cafccEntropy
}

// RenderFigure3 prints the sweep.
func RenderFigure3(sweep []Figure3Row, ref float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %14s\n", "minCard", "entropy", "F-measure", "hub clusters")
	for _, r := range sweep {
		fmt.Fprintf(&b, ">= %-5d %10.3f %10.3f %14d\n", r.MinCardinality, r.Entropy, r.FMeasure, r.ClustersKept)
	}
	fmt.Fprintf(&b, "CAFC-C reference entropy: %.3f\n", ref)
	return b.String()
}

// Table2 reproduces Table 2: k-means vs HAC under both CAFC-C and
// CAFC-CH (FC+PC).
func Table2(env *Env, runs, minCard int) []QualityRow {
	if minCard <= 0 {
		minCard = DefaultMinCard
	}
	var rows []QualityRow
	e, f := env.averageCAFCC(env.Model, runs)
	rows = append(rows, QualityRow{Algorithm: "CAFC-C (k-means)", Features: "FC+PC", Entropy: e, FMeasure: f})
	hac := cafc.HACResult(env.Model, env.K, cluster.AverageLinkage)
	e, f = env.quality(hac)
	rows = append(rows, QualityRow{Algorithm: "CAFC-C (HAC)", Features: "FC+PC", Entropy: e, FMeasure: f})
	ch := cafc.CAFCCH(env.Model, env.K, env.HubClusters, minCard, rand.New(rand.NewSource(1)))
	e, f = env.quality(ch)
	rows = append(rows, QualityRow{Algorithm: "CAFC-CH (k-means)", Features: "FC+PC", Entropy: e, FMeasure: f})
	chHAC := cafc.HACOverHubSeeds(env.Model, env.K, env.HubClusters, minCard, cluster.AverageLinkage)
	e, f = env.quality(chHAC)
	rows = append(rows, QualityRow{Algorithm: "CAFC-CH (HAC)", Features: "FC+PC", Entropy: e, FMeasure: f})
	return rows
}

// WeightAblation reproduces Section 4.4: CAFC-CH FC+PC with
// differentiated vs uniform LOC weights.
func WeightAblation(env *Env, minCard int) []QualityRow {
	if minCard <= 0 {
		minCard = DefaultMinCard
	}
	var rows []QualityRow
	res := cafc.CAFCCH(env.Model, env.K, env.HubClusters, minCard, rand.New(rand.NewSource(1)))
	e, f := env.quality(res)
	rows = append(rows, QualityRow{Algorithm: "CAFC-CH differentiated", Features: "FC+PC", Entropy: e, FMeasure: f})
	res = cafc.CAFCCH(env.UniformModel, env.K, env.HubClusters, minCard, rand.New(rand.NewSource(1)))
	e, f = env.quality(res)
	rows = append(rows, QualityRow{Algorithm: "CAFC-CH uniform", Features: "FC+PC", Entropy: e, FMeasure: f})
	// Reference: CAFC-C with differentiated weights (the paper notes
	// uniform CAFC-CH still beats differentiated CAFC-C).
	e, f = env.averageCAFCC(env.Model, 0)
	rows = append(rows, QualityRow{Algorithm: "CAFC-C differentiated", Features: "FC+PC", Entropy: e, FMeasure: f})
	return rows
}

// HubStatsResult reproduces the Section 3.1 accounting.
type HubStatsResult struct {
	Stats            hub.Stats
	HomogeneousFrac  float64 // fraction of hub clusters (card >= 2) pure in one domain
	DomainsCovered   int     // domains with at least one homogeneous cluster
	AfterMinCardinal int     // clusters left after the default pruning
	NoBacklinkFrac   float64
}

// HubStatsExp computes hub-cluster homogeneity and coverage.
func HubStatsExp(env *Env) HubStatsResult {
	r := HubStatsResult{Stats: env.HubStats}
	usable := hub.Filter(env.HubClusters, 2)
	homog := 0
	covered := map[string]bool{}
	for _, c := range usable {
		if metrics.IsHomogeneous(c.Members, env.Classes) {
			homog++
			covered[env.Classes[c.Members[0]]] = true
		}
	}
	if len(usable) > 0 {
		r.HomogeneousFrac = float64(homog) / float64(len(usable))
	}
	r.DomainsCovered = len(covered)
	r.AfterMinCardinal = len(hub.Filter(env.HubClusters, DefaultMinCard))
	if env.HubStats.FormPages > 0 {
		r.NoBacklinkFrac = float64(env.HubStats.NoBacklinks) / float64(env.HubStats.FormPages)
	}
	return r
}

// String renders the hub stats.
func (r HubStatsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "form pages:                  %d\n", r.Stats.FormPages)
	fmt.Fprintf(&b, "raw hubs seen:               %d\n", r.Stats.RawHubs)
	fmt.Fprintf(&b, "distinct hub clusters:       %d\n", r.Stats.Clusters)
	fmt.Fprintf(&b, "intra-site citations dropped:%d\n", r.Stats.IntraSiteDropped)
	fmt.Fprintf(&b, "pages w/o direct backlinks:  %d (%.1f%%)\n", r.Stats.NoDirectBacklinks, 100*float64(r.Stats.NoDirectBacklinks)/float64(max(1, r.Stats.FormPages)))
	fmt.Fprintf(&b, "pages with no backlinks:     %d (%.1f%%)\n", r.Stats.NoBacklinks, 100*r.NoBacklinkFrac)
	fmt.Fprintf(&b, "homogeneous clusters (>=2):  %.1f%%\n", 100*r.HomogeneousFrac)
	fmt.Fprintf(&b, "domains covered:             %d\n", r.DomainsCovered)
	fmt.Fprintf(&b, "clusters after minCard=%d:    %d\n", DefaultMinCard, r.AfterMinCardinal)
	return b.String()
}

// HACSeedsExp reproduces Section 4.3's hybrid: HAC over the full data set
// as the seed derivation for k-means, compared against CAFC-CH.
func HACSeedsExp(env *Env, minCard int) []QualityRow {
	if minCard <= 0 {
		minCard = DefaultMinCard
	}
	var rows []QualityRow
	res := cafc.HACSeededKMeans(env.Model, env.K, cluster.AverageLinkage, rand.New(rand.NewSource(1)))
	e, f := env.quality(res)
	rows = append(rows, QualityRow{Algorithm: "HAC-seeded k-means", Features: "FC+PC", Entropy: e, FMeasure: f})
	ch := cafc.CAFCCH(env.Model, env.K, env.HubClusters, minCard, rand.New(rand.NewSource(1)))
	e, f = env.quality(ch)
	rows = append(rows, QualityRow{Algorithm: "CAFC-CH", Features: "FC+PC", Entropy: e, FMeasure: f})
	return rows
}

// ErrorResult is the Section 4.2 error analysis.
type ErrorResult struct {
	Misclustered       int
	SingleAttrErrors   int
	ByDomain           map[string]int
	MusicMovieFraction float64
}

// ErrorAnalysis clusters with CAFC-CH and inspects the mistakes.
func ErrorAnalysis(env *Env, minCard int) ErrorResult {
	if minCard <= 0 {
		minCard = DefaultMinCard
	}
	res := cafc.CAFCCH(env.Model, env.K, env.HubClusters, minCard, rand.New(rand.NewSource(1)))
	l := metrics.Labeling{Assign: res.Assign, Classes: env.Classes}
	mis := metrics.Misclustered(l)
	r := ErrorResult{Misclustered: len(mis), ByDomain: make(map[string]int)}
	mm := 0
	for _, idx := range mis {
		cls := env.Classes[idx]
		r.ByDomain[cls]++
		if cls == "music" || cls == "movie" {
			mm++
		}
		fp := env.FormPages[idx]
		if fp.Form != nil && fp.Form.AttributeCount() <= 1 {
			r.SingleAttrErrors++
		}
	}
	if len(mis) > 0 {
		r.MusicMovieFraction = float64(mm) / float64(len(mis))
	}
	return r
}

// String renders the error analysis.
func (r ErrorResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "misclustered form pages: %d\n", r.Misclustered)
	fmt.Fprintf(&b, "  of which single-attribute: %d\n", r.SingleAttrErrors)
	fmt.Fprintf(&b, "  music+movie share: %.0f%%\n", 100*r.MusicMovieFraction)
	domains := make([]string, 0, len(r.ByDomain))
	for d := range r.ByDomain {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		fmt.Fprintf(&b, "  %-10s %d\n", d, r.ByDomain[d])
	}
	return b.String()
}
