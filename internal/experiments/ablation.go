package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cafc/internal/cafc"
	"cafc/internal/cluster"
	"cafc/internal/hub"
)

// HubDesignAblation measures the contribution of each design choice in
// CAFC-CH's hub handling (the decisions Section 3 argues for):
//
//   - farthest-first seed selection vs picking k hub clusters at random;
//   - the minimum-cardinality filter vs keeping every hub cluster;
//   - dropping intra-site hubs vs keeping them;
//   - the site-root backlink fallback vs direct backlinks only.
//
// Each row is CAFC-CH with exactly one choice disabled.
func HubDesignAblation(env *Env, minCard int) []QualityRow {
	if minCard <= 0 {
		minCard = DefaultMinCard
	}
	rng := func() *rand.Rand { return rand.New(rand.NewSource(1)) }
	var rows []QualityRow

	add := func(name string, res cluster.Result) {
		e, f := env.quality(res)
		rows = append(rows, QualityRow{Algorithm: name, Features: "FC+PC", Entropy: e, FMeasure: f})
	}

	// Full CAFC-CH.
	add("CAFC-CH (full)", cafc.CAFCCH(env.Model, env.K, env.HubClusters, minCard, rng()))

	// Random selection of k hub clusters (cardinality filter retained).
	kept := hub.Filter(env.HubClusters, minCard)
	sets := hub.MemberSets(kept)
	r := rng()
	var seeds [][]int
	for _, i := range r.Perm(len(sets)) {
		if len(seeds) == env.K {
			break
		}
		seeds = append(seeds, sets[i])
	}
	add("random hub selection", cafc.CAFCCSeeded(env.Model, env.K, seeds, rng()))

	// No minimum-cardinality filter.
	add("no cardinality filter", cafc.CAFCCH(env.Model, env.K, env.HubClusters, 1, rng()))

	// Keep intra-site hubs.
	intra, _ := hub.BuildWith(env.Corpus.FormPages, env.Corpus.RootOf, env.Backlinks,
		hub.BuildOptions{KeepIntraSite: true})
	add("intra-site hubs kept", cafc.CAFCCH(env.Model, env.K, intra, minCard, rng()))

	// No root fallback.
	noRoot, _ := hub.BuildWith(env.Corpus.FormPages, env.Corpus.RootOf, env.Backlinks,
		hub.BuildOptions{NoRootFallback: true})
	add("no root fallback", cafc.CAFCCH(env.Model, env.K, noRoot, minCard, rng()))

	return rows
}

// FutureWork evaluates the paper's Section 6 extension ideas implemented
// in this repo: anchor-text-enriched hub selection and hub-quality
// filtering, against stock CAFC-CH.
func FutureWork(env *Env, minCard int) []QualityRow {
	if minCard <= 0 {
		minCard = DefaultMinCard
	}
	var rows []QualityRow
	add := func(name string, res cluster.Result) {
		e, f := env.quality(res)
		rows = append(rows, QualityRow{Algorithm: name, Features: "FC+PC", Entropy: e, FMeasure: f})
	}
	rng := func() *rand.Rand { return rand.New(rand.NewSource(1)) }
	add("CAFC-CH", cafc.CAFCCH(env.Model, env.K, env.HubClusters, minCard, rng()))
	add("CAFC-CH + anchor text", cafc.CAFCCHAnchored(env.Model, env.K, env.HubClusters, minCard, env.Graph.OutAnchors, rng()))
	add("CAFC-CH + hub quality", cafc.CAFCCHQuality(env.Model, env.K, env.HubClusters, minCard, 0.25, rng()))
	return rows
}

// KSelection is an extension: search the number of clusters with the
// silhouette criterion instead of assuming the gold standard's k = 8.
func KSelection(env *Env, kMin, kMax int) (int, []cluster.KScore) {
	return cluster.BestK(env.Model, kMin, kMax, 3, rand.New(rand.NewSource(1)))
}

// RenderKSelection prints the silhouette curve.
func RenderKSelection(best int, curve []cluster.KScore) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %12s\n", "k", "silhouette")
	for _, p := range curve {
		marker := ""
		if p.K == best {
			marker = "  <- selected"
		}
		fmt.Fprintf(&b, "%4d %12.4f%s\n", p.K, p.Silhouette, marker)
	}
	return b.String()
}
