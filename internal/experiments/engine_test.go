package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestEngineComparison(t *testing.T) {
	env := getEnv(t)
	rows := EngineComparison(env, 1)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Engine != "map" || rows[1].Engine != "compiled" || rows[2].Engine != "compiled+parallel" {
		t.Fatalf("unexpected engine order: %+v", rows)
	}
	// The engines compute the same Equation 3 similarities and the
	// parallel kernels are bit-identical to serial, so quality must not
	// move at all between configurations.
	for _, r := range rows[1:] {
		if math.Abs(r.Entropy-rows[0].Entropy) > 1e-9 {
			t.Errorf("%s entropy %.6f != map %.6f", r.Engine, r.Entropy, rows[0].Entropy)
		}
		if math.Abs(r.FMeasure-rows[0].FMeasure) > 1e-9 {
			t.Errorf("%s F %.6f != map %.6f", r.Engine, r.FMeasure, rows[0].FMeasure)
		}
	}
	if rows[2].Workers < 1 {
		t.Errorf("parallel row reports %d workers", rows[2].Workers)
	}
	out := RenderEngineComparison(rows)
	if !strings.Contains(out, "compiled+parallel") || !strings.Contains(out, "speedup") {
		t.Errorf("render broken:\n%s", out)
	}
}
