package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cafc/internal/cafc"
	"cafc/internal/cluster"
	"cafc/internal/crawler"
	"cafc/internal/form"
	"cafc/internal/metrics"
	"cafc/internal/probe"
)

// PostQueryRow is one cell of the pre-query vs post-query comparison.
type PostQueryRow struct {
	Approach string
	Subset   string // "all", "single-attr", "multi-attr"
	N        int
	Entropy  float64
	FMeasure float64
}

// PostQuery compares CAFC's pre-query clustering with a post-query
// baseline (probe queries through the live forms, cluster by returned
// database content — the [4, 14] family the paper's introduction
// discusses). The corpus is served over HTTP and actually probed. The
// paper's qualitative claim under test: post-query techniques handle
// keyword interfaces but break down on multi-attribute forms, while CAFC
// handles both uniformly.
func PostQuery(env *Env, minCard int) ([]PostQueryRow, error) {
	if minCard <= 0 {
		minCard = DefaultMinCard
	}
	srv, client := crawler.ServeCorpus(env.Corpus)
	defer srv.Close()

	forms := make([]*form.Form, len(env.FormPages))
	singleAttr := make([]bool, len(env.FormPages))
	for i, fp := range env.FormPages {
		forms[i] = fp.Form
		singleAttr[i] = fp.Form.AttributeCount() <= 1
	}
	prober := &probe.Prober{Fetcher: &crawler.HTTPFetcher{Client: client}}
	sources := prober.ProbeAll(env.Corpus.FormPages, forms)
	space := probe.Space(sources)

	subsets := map[string][]int{"all": nil, "single-attr": nil, "multi-attr": nil}
	for i := range env.FormPages {
		subsets["all"] = append(subsets["all"], i)
		if singleAttr[i] {
			subsets["single-attr"] = append(subsets["single-attr"], i)
		} else {
			subsets["multi-attr"] = append(subsets["multi-attr"], i)
		}
	}
	evalSubset := func(assign []int, subset []int) (float64, float64) {
		l := metrics.Labeling{}
		for _, i := range subset {
			l.Assign = append(l.Assign, assign[i])
			l.Classes = append(l.Classes, env.Classes[i])
		}
		return metrics.Entropy(l), metrics.FMeasure(l)
	}

	var rows []PostQueryRow
	addRows := func(approach string, assign []int) {
		for _, name := range []string{"all", "single-attr", "multi-attr"} {
			e, f := evalSubset(assign, subsets[name])
			rows = append(rows, PostQueryRow{
				Approach: approach, Subset: name, N: len(subsets[name]),
				Entropy: e, FMeasure: f,
			})
		}
	}

	pq := cluster.KMeans(space, env.K, nil, cluster.Options{Rand: rand.New(rand.NewSource(1))})
	addRows("post-query (probing)", pq.Assign)
	pre := cafc.CAFCC(env.Model, env.K, rand.New(rand.NewSource(1)))
	addRows("pre-query CAFC-C", pre.Assign)
	ch := cafc.CAFCCH(env.Model, env.K, env.HubClusters, minCard, rand.New(rand.NewSource(1)))
	addRows("pre-query CAFC-CH", ch.Assign)
	return rows, nil
}

// RenderPostQuery prints the comparison.
func RenderPostQuery(rows []PostQueryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-12s %6s %10s %10s\n", "approach", "subset", "n", "entropy", "F-measure")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-12s %6d %10.3f %10.3f\n", r.Approach, r.Subset, r.N, r.Entropy, r.FMeasure)
	}
	return b.String()
}
