// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) over the synthetic corpus: Figure 2 (feature
// spaces × algorithms), Table 1 (form size vs page richness), Figure 3
// (hub-cluster cardinality sweep), Table 2 (HAC vs k-means), the Section
// 4.4 weight ablation, the Section 3.1 hub statistics, the Section 4.3
// HAC-seed comparison and the Section 4.2 error analysis.
package experiments

import (
	"fmt"
	"math/rand"

	"cafc/internal/cafc"
	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/hub"
	"cafc/internal/metrics"
	"cafc/internal/obs"
	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

// Env is a prepared experimental environment: the corpus, the extracted
// form pages, the models under both weighting schemes, the hub clusters
// from the simulated backward crawl, and the gold labels.
type Env struct {
	Corpus       *webgen.Corpus
	FormPages    []*form.FormPage
	Classes      []string
	Model        *cafc.Model // differentiated LOC weights
	UniformModel *cafc.Model // uniform-weight ablation
	HubClusters  []hub.Cluster
	HubStats     hub.Stats
	K            int
	// Backlinks is the simulated link: API over the corpus, kept so
	// ablations can rebuild hub clusters under different options.
	Backlinks hub.BacklinkFunc
	// Service is the backlink service behind Backlinks, exposed so
	// callers can toggle outages or attach telemetry.
	Service *webgraph.BacklinkService
	// Graph is the full corpus link graph (anchor texts included).
	Graph *webgraph.Graph
}

// DefaultMinCard is the minimum hub-cluster cardinality used for the
// headline CAFC-CH numbers. The paper selected 8 as the sweet spot of its
// Figure 3 sweep over the real 454-page corpus; the same sweep over the
// synthetic corpus (see Figure3) puts the sweet spot at 6, so that is the
// calibrated default here. The methodology — pick the knee of the
// cardinality sweep — is the paper's.
const DefaultMinCard = 6

// DefaultRuns matches the paper's 20-run averaging for CAFC-C.
const DefaultRuns = 20

// NewEnv generates a corpus and prepares everything the experiments need.
func NewEnv(cfg webgen.Config) (*Env, error) {
	return NewEnvMetrics(cfg, nil)
}

// NewEnvMetrics is NewEnv with a metrics registry threaded through the
// whole preparation pipeline: the differentiated model records its build
// telemetry there, the backlink service its query telemetry, the hub
// construction its coverage-gap counters, and every clustering run over
// env.Model its convergence telemetry. A nil registry is exactly NewEnv.
func NewEnvMetrics(cfg webgen.Config, reg *obs.Registry) (*Env, error) {
	c := webgen.Generate(cfg)
	env := &Env{Corpus: c, K: len(webgen.Domains)}
	for _, u := range c.FormPages {
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", u, err)
		}
		env.FormPages = append(env.FormPages, fp)
		env.Classes = append(env.Classes, string(c.Labels[u]))
	}
	env.Model = cafc.BuildMetrics(env.FormPages, false, reg)
	env.UniformModel = cafc.Build(env.FormPages, true)
	g := webgraph.FromCorpus(c)
	env.Graph = g
	svc := webgraph.NewBacklinkService(g, 100, 0, cfg.Seed)
	svc.Metrics = reg
	env.Service = svc
	env.Backlinks = svc.Backlinks
	env.HubClusters, env.HubStats = hub.BuildWith(c.FormPages, c.RootOf, svc.Backlinks, hub.BuildOptions{Metrics: reg})
	return env, nil
}

// quality evaluates a clustering against the gold labels.
func (e *Env) quality(res cluster.Result) (entropy, fmeasure float64) {
	l := metrics.Labeling{Assign: res.Assign, Classes: e.Classes}
	return metrics.Entropy(l), metrics.FMeasure(l)
}

// averageCAFCC runs CAFC-C `runs` times with distinct seeds and averages
// the quality, as the paper does (20 runs).
func (e *Env) averageCAFCC(m *cafc.Model, runs int) (entropy, fmeasure float64) {
	if runs <= 0 {
		runs = DefaultRuns
	}
	for r := 0; r < runs; r++ {
		res := cafc.CAFCC(m, e.K, rand.New(rand.NewSource(int64(r)+1)))
		en, f := e.quality(res)
		entropy += en / float64(runs)
		fmeasure += f / float64(runs)
	}
	return entropy, fmeasure
}
