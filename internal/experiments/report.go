package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cafc/internal/cafc"
	"cafc/internal/cluster"
	"cafc/internal/dataset"
	"cafc/internal/webgen"
)

// Report collects every experiment's output for one environment.
type Report struct {
	Stats      dataset.Stats
	Figure2    []QualityRow
	Table1     []Table1Row
	Figure3    []Figure3Row
	Figure3Ref float64
	Table2     []QualityRow
	Weights    []QualityRow
	HubStats   HubStatsResult
	HACSeeds   []QualityRow
	Errors     ErrorResult
	Ablations  []QualityRow
	HubDesign  []QualityRow
	FutureWork []QualityRow
	PostQuery  []PostQueryRow
	Elapsed    time.Duration
}

// RunAll executes every experiment with the paper's parameters.
func RunAll(env *Env, runs int) *Report {
	start := time.Now()
	r := &Report{
		Stats:    dataset.ComputeStats(env.Corpus),
		Figure2:  Figure2(env, runs, DefaultMinCard),
		Table1:   Table1(env),
		Table2:   Table2(env, runs, DefaultMinCard),
		Weights:  WeightAblation(env, DefaultMinCard),
		HubStats: HubStatsExp(env),
		HACSeeds: HACSeedsExp(env, DefaultMinCard),
		Errors:   ErrorAnalysis(env, DefaultMinCard),
	}
	r.Figure3, r.Figure3Ref = Figure3(env, runs)
	r.Ablations = SeedingAblation(env, runs)
	r.HubDesign = HubDesignAblation(env, DefaultMinCard)
	r.FutureWork = FutureWork(env, DefaultMinCard)
	if pq, err := PostQuery(env, DefaultMinCard); err == nil {
		r.PostQuery = pq
	}
	r.Elapsed = time.Since(start)
	return r
}

// SeedingAblation is an extension beyond the paper: it compares random
// seeding, k-means++ seeding, HAC seeding and hub-cluster seeding for the
// same k-means loop, isolating where CAFC-CH's advantage comes from.
func SeedingAblation(env *Env, runs int) []QualityRow {
	var rows []QualityRow
	e, f := env.averageCAFCC(env.Model, runs)
	rows = append(rows, QualityRow{Algorithm: "k-means random seeds", Features: "FC+PC", Entropy: e, FMeasure: f})
	// k-means++ averaged over the same number of runs.
	if runs <= 0 {
		runs = DefaultRuns
	}
	var e2, f2 float64
	for i := 0; i < runs; i++ {
		seeds := cluster.KMeansPlusPlusSeeds(env.Model, env.K, rand.New(rand.NewSource(int64(i)+1)))
		res := cafc.CAFCCSeeded(env.Model, env.K, seeds, rand.New(rand.NewSource(int64(i)+1)))
		en, fm := env.quality(res)
		e2 += en / float64(runs)
		f2 += fm / float64(runs)
	}
	rows = append(rows, QualityRow{Algorithm: "k-means++ seeds", Features: "FC+PC", Entropy: e2, FMeasure: f2})
	res := cafc.HACSeededKMeans(env.Model, env.K, cluster.AverageLinkage, rand.New(rand.NewSource(1)))
	en, fm := env.quality(res)
	rows = append(rows, QualityRow{Algorithm: "HAC seeds", Features: "FC+PC", Entropy: en, FMeasure: fm})
	ch := cafc.CAFCCH(env.Model, env.K, env.HubClusters, DefaultMinCard, rand.New(rand.NewSource(1)))
	en, fm = env.quality(ch)
	rows = append(rows, QualityRow{Algorithm: "hub-cluster seeds (CAFC-CH)", Features: "FC+PC", Entropy: en, FMeasure: fm})
	return rows
}

// ScalingRow is one corpus size of the scaling sweep.
type ScalingRow struct {
	FormPages int
	Entropy   float64
	FMeasure  float64
	Millis    int64
}

// Scaling is an extension: CAFC-CH quality and wall time as the corpus
// grows, demonstrating the "scalable solution" claim holds beyond the
// paper's 454 pages.
func Scaling(sizes []int, seed int64) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, n := range sizes {
		env, err := NewEnv(webgen.Config{Seed: seed, FormPages: n})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res := cafc.CAFCCH(env.Model, env.K, env.HubClusters, DefaultMinCard, rand.New(rand.NewSource(1)))
		el := time.Since(start)
		e, f := env.quality(res)
		rows = append(rows, ScalingRow{FormPages: n, Entropy: e, FMeasure: f, Millis: el.Milliseconds()})
	}
	return rows, nil
}

// String renders the full report in the order the paper presents results.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("=== Data set (Section 4.1) ===\n")
	b.WriteString(r.Stats.String())
	b.WriteString("\n=== Figure 2: entropy & F-measure by algorithm and feature space ===\n")
	b.WriteString(RenderQuality(r.Figure2))
	b.WriteString("\n=== Table 1: form size vs page terms outside the form ===\n")
	b.WriteString(RenderTable1(r.Table1))
	b.WriteString("\n=== Figure 3: CAFC-CH entropy vs minimum hub-cluster cardinality ===\n")
	b.WriteString(RenderFigure3(r.Figure3, r.Figure3Ref))
	b.WriteString("\n=== Table 2: HAC vs k-means ===\n")
	b.WriteString(RenderQuality(r.Table2))
	b.WriteString("\n=== Section 4.4: differentiated vs uniform term weights ===\n")
	b.WriteString(RenderQuality(r.Weights))
	b.WriteString("\n=== Section 3.1: hub-cluster statistics ===\n")
	b.WriteString(r.HubStats.String())
	b.WriteString("\n=== Section 4.3: HAC-derived seeds vs hub clusters ===\n")
	b.WriteString(RenderQuality(r.HACSeeds))
	b.WriteString("\n=== Section 4.2: error analysis ===\n")
	b.WriteString(r.Errors.String())
	b.WriteString("\n=== Extension: seeding ablation ===\n")
	b.WriteString(RenderQuality(r.Ablations))
	b.WriteString("\n=== Extension: hub design ablation ===\n")
	b.WriteString(RenderQuality(r.HubDesign))
	b.WriteString("\n=== Extension: Section 6 future-work features ===\n")
	b.WriteString(RenderQuality(r.FutureWork))
	b.WriteString("\n=== Extension: pre-query vs post-query (probing) ===\n")
	b.WriteString(RenderPostQuery(r.PostQuery))
	fmt.Fprintf(&b, "\nelapsed: %s\n", r.Elapsed.Round(time.Millisecond))
	return b.String()
}
