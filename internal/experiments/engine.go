package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"cafc/internal/cafc"
	"cafc/internal/cluster"
)

// EngineRow is one similarity-engine configuration timed on the same
// CAFC-CH workload: the map-based engine the reproduction started
// with, the compiled (term-interned packed vector) engine, and the
// compiled engine with the parallel kernels enabled.
type EngineRow struct {
	Engine   string
	Workers  int
	Millis   float64
	Entropy  float64
	FMeasure float64
}

// EngineComparison runs the CAFC-CH k-means refinement (identical hub
// seeds, identical randomness) under each engine configuration and
// times it. Quality must be engine-invariant — the packed engine
// computes the same Equation 3 values — so Entropy/FMeasure double as
// a correctness check, while Millis shows the win. Each configuration
// is run `reps` times (min 1) and the fastest run reported, the usual
// guard against scheduler noise.
func EngineComparison(env *Env, reps int) []EngineRow {
	if reps < 1 {
		reps = 1
	}
	seeds := cafc.SelectHubClusters(env.Model, env.HubClusters, env.K, DefaultMinCard)
	plain := env.Model.WithEngine(false)
	cfgs := []struct {
		name    string
		m       *cafc.Model
		workers int
	}{
		{"map", plain, 1},
		{"compiled", env.Model, 1},
		{"compiled+parallel", env.Model, 0},
	}
	var rows []EngineRow
	for _, c := range cfgs {
		workers := c.workers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		var best time.Duration
		var res cluster.Result
		for r := 0; r < reps; r++ {
			start := time.Now()
			res = cluster.KMeans(c.m, env.K, seeds, cluster.Options{
				Rand:    rand.New(rand.NewSource(1)),
				Workers: c.workers,
			})
			if el := time.Since(start); r == 0 || el < best {
				best = el
			}
		}
		e, f := env.quality(res)
		rows = append(rows, EngineRow{
			Engine:   c.name,
			Workers:  workers,
			Millis:   float64(best.Microseconds()) / 1000,
			Entropy:  e,
			FMeasure: f,
		})
	}
	return rows
}

// RenderEngineComparison prints the engine rows with the speedup of
// each configuration over the first (map-based) row.
func RenderEngineComparison(rows []EngineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %10s %10s %10s %9s\n",
		"engine", "workers", "ms", "entropy", "F-measure", "speedup")
	for _, r := range rows {
		speedup := "1.0x"
		if len(rows) > 0 && r.Millis > 0 {
			speedup = fmt.Sprintf("%.1fx", rows[0].Millis/r.Millis)
		}
		fmt.Fprintf(&b, "%-20s %8d %10.1f %10.3f %10.3f %9s\n",
			r.Engine, r.Workers, r.Millis, r.Entropy, r.FMeasure, speedup)
	}
	return b.String()
}
