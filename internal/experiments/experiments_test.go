package experiments

import (
	"strings"
	"testing"

	"cafc/internal/webgen"
)

// testEnv builds a mid-sized environment once; the experiments only need
// shape, not the full 454 pages.
var cachedEnv *Env

func getEnv(t testing.TB) *Env {
	t.Helper()
	if cachedEnv == nil {
		env, err := NewEnv(webgen.Config{Seed: 42, FormPages: 240})
		if err != nil {
			t.Fatal(err)
		}
		cachedEnv = env
	}
	return cachedEnv
}

func TestFigure2Shape(t *testing.T) {
	env := getEnv(t)
	rows := Figure2(env, 10, DefaultMinCard)
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	get := func(algo, feat string) QualityRow {
		for _, r := range rows {
			if r.Algorithm == algo && r.Features == feat {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", algo, feat)
		return QualityRow{}
	}
	cBoth := get("CAFC-C", "FC+PC")
	cFC := get("CAFC-C", "FC")
	cPC := get("CAFC-C", "PC")
	chBoth := get("CAFC-CH", "FC+PC")
	// Combining feature spaces must beat both single spaces. On a single
	// corpus seed with a finite number of k-means restarts the F-measure
	// fluctuates, so allow a small tolerance here; the strict
	// averaged-over-seeds assertion lives in package cafc's
	// TestCombinedBeatsSingleSpaces.
	const tol = 0.06
	if !(cBoth.Entropy <= cFC.Entropy+tol && cBoth.Entropy <= cPC.Entropy+tol) {
		t.Errorf("FC+PC entropy %.3f not best (FC %.3f PC %.3f)", cBoth.Entropy, cFC.Entropy, cPC.Entropy)
	}
	if !(cBoth.FMeasure >= cFC.FMeasure-tol && cBoth.FMeasure >= cPC.FMeasure-tol) {
		t.Errorf("FC+PC F %.3f not best (FC %.3f PC %.3f)", cBoth.FMeasure, cFC.FMeasure, cPC.FMeasure)
	}
	// Hubs must improve FC+PC on both metrics.
	if !(chBoth.Entropy < cBoth.Entropy) {
		t.Errorf("CAFC-CH entropy %.3f >= CAFC-C %.3f", chBoth.Entropy, cBoth.Entropy)
	}
	if !(chBoth.FMeasure > cBoth.FMeasure) {
		t.Errorf("CAFC-CH F %.3f <= CAFC-C %.3f", chBoth.FMeasure, cBoth.FMeasure)
	}
	out := RenderQuality(rows)
	if !strings.Contains(out, "CAFC-CH") || !strings.Contains(out, "FC+PC") {
		t.Errorf("render broken:\n%s", out)
	}
}

func TestTable1Shape(t *testing.T) {
	env := getEnv(t)
	rows := Table1(env)
	if len(rows) != 5 {
		t.Fatalf("got %d buckets", len(rows))
	}
	// The small-form bucket must exist and be the richest bucket; large
	// forms the sparsest populated bucket.
	if rows[0].Count == 0 {
		t.Fatal("no small forms")
	}
	var biggest *Table1Row
	for i := range rows {
		if rows[i].Count > 0 {
			biggest = &rows[i]
		}
	}
	if biggest == nil || biggest == &rows[0] {
		t.Fatal("no large-form bucket populated")
	}
	if rows[0].AvgOutside <= biggest.AvgOutside {
		t.Errorf("Table 1 inversion missing: small-form avg %.1f <= large-form avg %.1f",
			rows[0].AvgOutside, biggest.AvgOutside)
	}
	if out := RenderTable1(rows); !strings.Contains(out, ">= 200") {
		t.Errorf("render broken:\n%s", out)
	}
}

func TestFigure3Shape(t *testing.T) {
	env := getEnv(t)
	sweep, ref := Figure3(env, 10)
	if len(sweep) != 10 {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	// CAFC-CH must beat the CAFC-C reference at every cardinality the
	// paper reports ("CAFC-CH always leads to improvements over CAFC-C").
	for _, p := range sweep {
		if p.Entropy > ref {
			t.Errorf("minCard %d: entropy %.3f worse than CAFC-C %.3f", p.MinCardinality, p.Entropy, ref)
		}
	}
	// Cluster counts shrink as the threshold rises.
	for i := 1; i < len(sweep); i++ {
		if sweep[i].ClustersKept > sweep[i-1].ClustersKept {
			t.Errorf("cluster count not monotone at minCard %d", sweep[i].MinCardinality)
		}
	}
	if out := RenderFigure3(sweep, ref); !strings.Contains(out, "CAFC-C reference") {
		t.Errorf("render broken:\n%s", out)
	}
}

func TestTable2Shape(t *testing.T) {
	env := getEnv(t)
	rows := Table2(env, 10, DefaultMinCard)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]QualityRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	// Hubs help regardless of the underlying clustering strategy.
	if !(byName["CAFC-CH (k-means)"].Entropy < byName["CAFC-C (k-means)"].Entropy) {
		t.Error("hubs did not help k-means")
	}
	if !(byName["CAFC-CH (HAC)"].Entropy <= byName["CAFC-C (HAC)"].Entropy) {
		t.Error("hubs did not help HAC")
	}
}

func TestWeightAblation(t *testing.T) {
	env := getEnv(t)
	rows := WeightAblation(env, DefaultMinCard)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	var diff, unif, cafcc QualityRow
	for _, r := range rows {
		switch r.Algorithm {
		case "CAFC-CH differentiated":
			diff = r
		case "CAFC-CH uniform":
			unif = r
		case "CAFC-C differentiated":
			cafcc = r
		}
	}
	// Paper: uniform-weight CAFC-CH still beats differentiated CAFC-C.
	if !(unif.Entropy <= cafcc.Entropy) {
		t.Errorf("uniform CAFC-CH entropy %.3f worse than CAFC-C %.3f", unif.Entropy, cafcc.Entropy)
	}
	// Differentiated must not be substantially worse than uniform.
	if diff.Entropy > unif.Entropy+0.15 {
		t.Errorf("differentiated weights hurt: %.3f vs %.3f", diff.Entropy, unif.Entropy)
	}
}

func TestHubStatsExp(t *testing.T) {
	env := getEnv(t)
	r := HubStatsExp(env)
	if r.Stats.Clusters == 0 {
		t.Fatal("no hub clusters")
	}
	if r.HomogeneousFrac < 0.4 || r.HomogeneousFrac > 1.0 {
		t.Errorf("homogeneous fraction = %.2f", r.HomogeneousFrac)
	}
	if r.NoBacklinkFrac <= 0 || r.NoBacklinkFrac > 0.4 {
		t.Errorf("no-backlink fraction = %.2f (want a gap like the paper's 15%%)", r.NoBacklinkFrac)
	}
	if r.AfterMinCardinal >= r.Stats.Clusters {
		t.Error("cardinality pruning did not shrink the cluster set")
	}
	if r.DomainsCovered < 5 {
		t.Errorf("only %d domains covered by homogeneous clusters", r.DomainsCovered)
	}
	if out := r.String(); !strings.Contains(out, "homogeneous") {
		t.Errorf("render broken:\n%s", out)
	}
}

func TestHACSeedsExp(t *testing.T) {
	env := getEnv(t)
	rows := HACSeedsExp(env, DefaultMinCard)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Paper: CAFC-CH entropy clearly better than HAC-seeded k-means.
	if !(rows[1].Entropy <= rows[0].Entropy) {
		t.Errorf("CAFC-CH %.3f worse than HAC seeds %.3f", rows[1].Entropy, rows[0].Entropy)
	}
}

func TestErrorAnalysis(t *testing.T) {
	env := getEnv(t)
	r := ErrorAnalysis(env, DefaultMinCard)
	// Errors may be zero on an easy synthetic corpus; when present they
	// should concentrate in music/movie, per Section 4.2.
	if r.Misclustered > 0 && r.MusicMovieFraction < 0.3 {
		t.Logf("music/movie error share only %.2f (errors=%d by domain %v)",
			r.MusicMovieFraction, r.Misclustered, r.ByDomain)
	}
	if out := r.String(); !strings.Contains(out, "misclustered") {
		t.Errorf("render broken:\n%s", out)
	}
}

func TestSeedingAblation(t *testing.T) {
	env := getEnv(t)
	rows := SeedingAblation(env, 10)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Hub seeds must be the best seeding strategy on this task.
	hubRow := rows[3]
	for _, r := range rows[:3] {
		if hubRow.Entropy > r.Entropy+1e-9 {
			t.Errorf("hub seeds (%.3f) worse than %s (%.3f)", hubRow.Entropy, r.Algorithm, r.Entropy)
		}
	}
}

func TestScalingSmall(t *testing.T) {
	rows, err := Scaling([]int{80, 160}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].FormPages != 80 || rows[1].FormPages != 160 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.FMeasure < 0.5 {
			t.Errorf("n=%d: F=%.3f degenerate", r.FormPages, r.FMeasure)
		}
	}
}

func TestRunAllReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	env := getEnv(t)
	rep := RunAll(env, 3)
	out := rep.String()
	for _, want := range []string{
		"Figure 2", "Table 1", "Figure 3", "Table 2",
		"hub-cluster statistics", "error analysis", "seeding ablation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestHubDesignAblation(t *testing.T) {
	env := getEnv(t)
	rows := HubDesignAblation(env, DefaultMinCard)
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	full := rows[0]
	if full.Algorithm != "CAFC-CH (full)" {
		t.Fatalf("row0 = %q", full.Algorithm)
	}
	// The full configuration should be at least as good as any ablated
	// one on this corpus (allowing a small tolerance for run noise).
	for _, r := range rows[1:] {
		if full.Entropy > r.Entropy+0.1 {
			t.Errorf("full CAFC-CH (%.3f) much worse than %q (%.3f)", full.Entropy, r.Algorithm, r.Entropy)
		}
	}
	if out := RenderQuality(rows); !strings.Contains(out, "intra-site") {
		t.Errorf("render broken:\n%s", out)
	}
}

func TestFutureWork(t *testing.T) {
	env := getEnv(t)
	rows := FutureWork(env, DefaultMinCard)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	base := rows[0]
	for _, r := range rows[1:] {
		if r.Entropy > base.Entropy+0.25 {
			t.Errorf("%q entropy %.3f much worse than base %.3f", r.Algorithm, r.Entropy, base.Entropy)
		}
	}
}

func TestPostQueryComparison(t *testing.T) {
	env := getEnv(t)
	rows, err := PostQuery(env, DefaultMinCard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
	get := func(approach, subset string) PostQueryRow {
		for _, r := range rows {
			if r.Approach == approach && r.Subset == subset {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", approach, subset)
		return PostQueryRow{}
	}
	pqSingle := get("post-query (probing)", "single-attr")
	pqMulti := get("post-query (probing)", "multi-attr")
	chAll := get("pre-query CAFC-CH", "all")
	pqAll := get("post-query (probing)", "all")
	// Paper's claim: probing handles keyword interfaces far better than
	// structured ones...
	if !(pqSingle.FMeasure > pqMulti.FMeasure) {
		t.Errorf("post-query single-attr F %.3f <= multi-attr F %.3f",
			pqSingle.FMeasure, pqMulti.FMeasure)
	}
	// ...while CAFC handles the whole mix better than probing does.
	if !(chAll.FMeasure > pqAll.FMeasure) {
		t.Errorf("CAFC-CH all F %.3f <= post-query all F %.3f", chAll.FMeasure, pqAll.FMeasure)
	}
	if out := RenderPostQuery(rows); !strings.Contains(out, "post-query") {
		t.Errorf("render broken:\n%s", out)
	}
}

func TestKSelection(t *testing.T) {
	env := getEnv(t)
	best, curve := KSelection(env, 4, 10)
	if len(curve) != 7 {
		t.Fatalf("curve has %d points", len(curve))
	}
	if best < 6 || best > 10 {
		t.Errorf("selected k = %d, want near 8 (curve %+v)", best, curve)
	}
	if out := RenderKSelection(best, curve); !strings.Contains(out, "selected") {
		t.Errorf("render broken:\n%s", out)
	}
}
