package directory

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cafc"
	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

// buildServer clusters a generated corpus and serves it.
func buildServer(t *testing.T) (*Server, *webgen.Corpus) {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: 21, FormPages: 120})
	var docs []cafc.Document
	html := make(map[string]string)
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
		html[u] = c.ByURL[u].HTML
	}
	corpus, err := cafc.NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	g := webgraph.FromCorpus(c)
	svc := webgraph.NewBacklinkService(g, 100, 0, 1)
	cl := corpus.ClusterCH(8, svc.Backlinks, c.RootOf, 1)
	labels := make([]string, len(cl.Clusters))
	for i, terms := range cl.TopTerms {
		labels[i] = strings.Join(terms, " ")
	}
	return Build(cl.Clusters, labels, html), c
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDirectoryEndpoints(t *testing.T) {
	s, _ := buildServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/")
	if code != 200 {
		t.Fatalf("front: %d", code)
	}
	if !strings.Contains(body, "/cluster?id=0") || !strings.Contains(body, "databases") {
		t.Errorf("front page incomplete:\n%s", body[:200])
	}

	code, body = get(t, ts, "/cluster?id=0")
	if code != 200 {
		t.Fatalf("cluster: %d", code)
	}
	if !strings.Contains(body, ".example") {
		t.Error("cluster page has no members")
	}

	code, _ = get(t, ts, "/cluster?id=999")
	if code != 404 {
		t.Errorf("bad cluster id -> %d, want 404", code)
	}
	code, _ = get(t, ts, "/cluster?id=junk")
	if code != 404 {
		t.Errorf("junk cluster id -> %d, want 404", code)
	}
	code, _ = get(t, ts, "/nosuchpath")
	if code != 404 {
		t.Errorf("unknown path -> %d, want 404", code)
	}
}

func TestDirectorySearch(t *testing.T) {
	s, c := buildServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/search?q=cheap+flights+airfare")
	if code != 200 {
		t.Fatalf("search: %d", code)
	}
	// The top results should be airfare pages.
	airfareSeen := false
	for _, u := range c.FormPages {
		if c.Labels[u] == webgen.Airfare && strings.Contains(body, u) {
			airfareSeen = true
			break
		}
	}
	if !airfareSeen {
		t.Error("airfare query returned no airfare page")
	}

	_, body = get(t, ts, "/search?q=")
	if !strings.Contains(body, "empty query") {
		t.Error("empty query not handled")
	}
	_, body = get(t, ts, "/search?q=zzzz+qqqq")
	if !strings.Contains(body, "no results") {
		t.Error("no-result query not handled")
	}
}

func TestDatabaseSelection(t *testing.T) {
	s, _ := buildServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/select?q=hotel+rooms+availability")
	if code != 200 {
		t.Fatalf("select: %d", code)
	}
	if !strings.Contains(body, "matching sources") {
		t.Errorf("selection page incomplete:\n%s", body[:200])
	}
	_, body = get(t, ts, "/select?q=zzzz")
	if !strings.Contains(body, "no matching databases") {
		t.Error("no-match selection not handled")
	}
}

func TestBuildTitlesIndexed(t *testing.T) {
	s, _ := buildServer(t)
	for ci, entries := range s.Clusters {
		for _, e := range entries {
			if e.Title == "" {
				t.Fatalf("cluster %d: %s has no title", ci, e.URL)
			}
		}
	}
}
