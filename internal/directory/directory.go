// Package directory serves a clustered hidden-web directory over HTTP —
// the query-based cluster-exploration interface the paper's Section 6
// proposes. It exposes the cluster listing, per-cluster member pages, a
// ranked page search with labeled dynamic facets and a cluster-level
// (database-selection) search, all backed by the compiled retrieval
// subsystem in internal/search.
package directory

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"cafc/internal/form"
	"cafc/internal/htmlx"
	"cafc/internal/search"
)

// Entry is one hidden-web source in the directory.
type Entry struct {
	URL   string
	Title string
}

// Server is the directory state behind the HTTP handler.
type Server struct {
	// Labels names each cluster.
	Labels []string
	// Clusters holds the member entries of each cluster.
	Clusters [][]Entry
	snap     *search.Snapshot
}

// Build assembles a directory from cluster member URLs, their HTML
// bodies, and cluster labels. Pages are indexed through the same
// Equation-1 term pipeline the model uses (search.PageTerms), so ranked
// search here scores exactly like the live directory's. Clusters whose
// provided label is empty get the index's discriminative label instead.
func Build(clusters [][]string, labels []string, html map[string]string) *Server {
	s := &Server{}
	b := search.NewBuilder(nil)
	var assign []int
	for ci, members := range clusters {
		label := ""
		if ci < len(labels) {
			label = labels[ci]
		}
		s.Labels = append(s.Labels, label)
		var entries []Entry
		for _, u := range members {
			title, terms := search.PageTerms(u, html[u], form.DefaultWeights)
			entries = append(entries, Entry{URL: u, Title: title})
			b.Add(u, title, terms)
			assign = append(assign, ci)
		}
		s.Clusters = append(s.Clusters, entries)
	}
	s.snap = b.Freeze(1, assign, len(clusters), search.Options{})
	for i, auto := range s.snap.ClusterLabels() {
		if i < len(s.Labels) && s.Labels[i] == "" {
			s.Labels[i] = auto
		}
	}
	return s
}

// Snapshot returns the directory's frozen search index.
func (s *Server) Snapshot() *search.Snapshot { return s.snap }

// Handler returns the HTTP handler:
//
//	GET /                  directory front page (clusters + sizes)
//	GET /cluster?id=N      member listing of cluster N
//	GET /search?q=...      ranked page results with dynamic facets
//	GET /select?q=...      ranked clusters (database selection)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.front)
	mux.HandleFunc("/cluster", s.cluster)
	mux.HandleFunc("/search", s.search)
	mux.HandleFunc("/select", s.selectDB)
	return mux
}

func writeHeader(w http.ResponseWriter, title string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><head><title>%s</title></head><body><h1>%s</h1>\n",
		htmlx.EscapeText(title), htmlx.EscapeText(title))
	fmt.Fprint(w, `<p><a href="/">directory</a> · <form style="display:inline" action="/search"><input name="q"><input type="submit" value="Search pages"></form> · <form style="display:inline" action="/select"><input name="q"><input type="submit" value="Select databases"></form></p>`)
}

func (s *Server) front(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	writeHeader(w, "Hidden-Web Database Directory")
	fmt.Fprint(w, "<ul>\n")
	for i, members := range s.Clusters {
		fmt.Fprintf(w, `<li><a href="/cluster?id=%d">%s</a> (%d databases)</li>`+"\n",
			i, htmlx.EscapeText(s.Labels[i]), len(members))
	}
	fmt.Fprint(w, "</ul></body></html>")
}

func (s *Server) cluster(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil || id < 0 || id >= len(s.Clusters) {
		http.Error(w, "unknown cluster", http.StatusNotFound)
		return
	}
	writeHeader(w, "Cluster: "+s.Labels[id])
	fmt.Fprint(w, "<ul>\n")
	for _, e := range s.Clusters[id] {
		fmt.Fprintf(w, `<li><a href="%s">%s</a> — %s</li>`+"\n",
			htmlx.EscapeAttr(e.URL), htmlx.EscapeText(e.URL), htmlx.EscapeText(e.Title))
	}
	fmt.Fprint(w, "</ul></body></html>")
}

func (s *Server) search(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	writeHeader(w, "Search: "+q)
	if q == "" {
		fmt.Fprint(w, "<p>empty query</p></body></html>")
		return
	}
	res, _ := s.snap.Search(q, 20)
	if len(res.Hits) == 0 {
		fmt.Fprint(w, "<p>no results</p></body></html>")
		return
	}
	if len(res.Facets) > 0 {
		fmt.Fprint(w, "<p>Result groups: ")
		for i, f := range res.Facets {
			if i > 0 {
				fmt.Fprint(w, " · ")
			}
			fmt.Fprintf(w, "<b>%s</b> (%d)", htmlx.EscapeText(f.Label), f.Size)
		}
		fmt.Fprint(w, "</p>\n")
	}
	fmt.Fprint(w, "<ol>\n")
	for _, h := range res.Hits {
		label := h.ClusterLabel
		if h.Cluster >= 0 && h.Cluster < len(s.Labels) {
			label = s.Labels[h.Cluster]
		}
		fmt.Fprintf(w, `<li><a href="%s">%s</a> — %s (cluster <a href="/cluster?id=%d">%s</a>, score %.3f)</li>`+"\n",
			htmlx.EscapeAttr(h.URL), htmlx.EscapeText(h.URL), htmlx.EscapeText(h.Title),
			h.Cluster, htmlx.EscapeText(label), h.Score)
	}
	fmt.Fprint(w, "</ol></body></html>")
}

func (s *Server) selectDB(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	writeHeader(w, "Database selection: "+q)
	if q == "" {
		fmt.Fprint(w, "<p>empty query</p></body></html>")
		return
	}
	chs := s.snap.SearchClusters(q, 8)
	if len(chs) == 0 {
		fmt.Fprint(w, "<p>no matching databases</p></body></html>")
		return
	}
	fmt.Fprint(w, "<ol>\n")
	for _, ch := range chs {
		label := ch.Label
		if ch.Cluster >= 0 && ch.Cluster < len(s.Labels) {
			label = s.Labels[ch.Cluster]
		}
		fmt.Fprintf(w, `<li><a href="/cluster?id=%d">%s</a> — %d matching sources, best: %s (total score %.3f)</li>`+"\n",
			ch.Cluster, htmlx.EscapeText(label), ch.Matches,
			htmlx.EscapeText(ch.Best.URL), ch.Score)
	}
	fmt.Fprint(w, "</ol></body></html>")
}
