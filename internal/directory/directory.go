// Package directory serves a clustered hidden-web directory over HTTP —
// the query-based cluster-exploration interface the paper's Section 6
// proposes. It exposes the cluster listing, per-cluster member pages, a
// ranked page search and a cluster-level (database-selection) search.
package directory

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"cafc/internal/htmlx"
	"cafc/internal/index"
)

// Entry is one hidden-web source in the directory.
type Entry struct {
	URL   string
	Title string
}

// Server is the directory state behind the HTTP handler.
type Server struct {
	// Labels names each cluster.
	Labels []string
	// Clusters holds the member entries of each cluster.
	Clusters [][]Entry
	idx      *index.Index
}

// Build assembles a directory from cluster member URLs, their HTML
// bodies, and cluster labels. The page text (not markup) is indexed for
// search.
func Build(clusters [][]string, labels []string, html map[string]string) *Server {
	s := &Server{idx: index.New()}
	for ci, members := range clusters {
		label := ""
		if ci < len(labels) {
			label = labels[ci]
		}
		s.Labels = append(s.Labels, label)
		var entries []Entry
		for _, u := range members {
			doc := htmlx.Parse(html[u])
			title := htmlx.Title(doc)
			entries = append(entries, Entry{URL: u, Title: title})
			s.idx.Add(u, title, doc.Text(), ci)
		}
		s.Clusters = append(s.Clusters, entries)
	}
	s.idx.Freeze()
	return s
}

// Handler returns the HTTP handler:
//
//	GET /                  directory front page (clusters + sizes)
//	GET /cluster?id=N      member listing of cluster N
//	GET /search?q=...      ranked page results
//	GET /select?q=...      ranked clusters (database selection)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.front)
	mux.HandleFunc("/cluster", s.cluster)
	mux.HandleFunc("/search", s.search)
	mux.HandleFunc("/select", s.selectDB)
	return mux
}

func writeHeader(w http.ResponseWriter, title string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><head><title>%s</title></head><body><h1>%s</h1>\n",
		htmlx.EscapeText(title), htmlx.EscapeText(title))
	fmt.Fprint(w, `<p><a href="/">directory</a> · <form style="display:inline" action="/search"><input name="q"><input type="submit" value="Search pages"></form> · <form style="display:inline" action="/select"><input name="q"><input type="submit" value="Select databases"></form></p>`)
}

func (s *Server) front(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	writeHeader(w, "Hidden-Web Database Directory")
	fmt.Fprint(w, "<ul>\n")
	for i, members := range s.Clusters {
		fmt.Fprintf(w, `<li><a href="/cluster?id=%d">%s</a> (%d databases)</li>`+"\n",
			i, htmlx.EscapeText(s.Labels[i]), len(members))
	}
	fmt.Fprint(w, "</ul></body></html>")
}

func (s *Server) cluster(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil || id < 0 || id >= len(s.Clusters) {
		http.Error(w, "unknown cluster", http.StatusNotFound)
		return
	}
	writeHeader(w, "Cluster: "+s.Labels[id])
	fmt.Fprint(w, "<ul>\n")
	for _, e := range s.Clusters[id] {
		fmt.Fprintf(w, `<li><a href="%s">%s</a> — %s</li>`+"\n",
			htmlx.EscapeAttr(e.URL), htmlx.EscapeText(e.URL), htmlx.EscapeText(e.Title))
	}
	fmt.Fprint(w, "</ul></body></html>")
}

func (s *Server) search(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	writeHeader(w, "Search: "+q)
	if q == "" {
		fmt.Fprint(w, "<p>empty query</p></body></html>")
		return
	}
	hits := s.idx.Search(q, 20)
	if len(hits) == 0 {
		fmt.Fprint(w, "<p>no results</p></body></html>")
		return
	}
	fmt.Fprint(w, "<ol>\n")
	for _, h := range hits {
		fmt.Fprintf(w, `<li><a href="%s">%s</a> — %s (cluster <a href="/cluster?id=%d">%s</a>, score %.3f)</li>`+"\n",
			htmlx.EscapeAttr(h.URL), htmlx.EscapeText(h.URL), htmlx.EscapeText(h.Title),
			h.Cluster, htmlx.EscapeText(s.Labels[h.Cluster]), h.Score)
	}
	fmt.Fprint(w, "</ol></body></html>")
}

func (s *Server) selectDB(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	writeHeader(w, "Database selection: "+q)
	if q == "" {
		fmt.Fprint(w, "<p>empty query</p></body></html>")
		return
	}
	chs := s.idx.SearchClusters(q, 8)
	if len(chs) == 0 {
		fmt.Fprint(w, "<p>no matching databases</p></body></html>")
		return
	}
	fmt.Fprint(w, "<ol>\n")
	for _, ch := range chs {
		fmt.Fprintf(w, `<li><a href="/cluster?id=%d">%s</a> — %d matching sources, best: %s (total score %.3f)</li>`+"\n",
			ch.Cluster, htmlx.EscapeText(s.Labels[ch.Cluster]), ch.Matches,
			htmlx.EscapeText(ch.Best.URL), ch.Score)
	}
	fmt.Fprint(w, "</ol></body></html>")
}
