package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cafc/internal/webgen"
)

func TestRoundTrip(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 1, FormPages: 32})
	d := FromCorpus(c)
	if len(d.Records) != len(c.Pages) {
		t.Fatalf("records = %d, pages = %d", len(d.Records), len(c.Pages))
	}
	path := filepath.Join(t.TempDir(), "corpus.json.gz")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	c2 := d2.Corpus()
	if len(c2.Pages) != len(c.Pages) || len(c2.FormPages) != len(c.FormPages) {
		t.Fatalf("reconstruction lost pages: %d/%d forms %d/%d",
			len(c2.Pages), len(c.Pages), len(c2.FormPages), len(c.FormPages))
	}
	for _, u := range c.FormPages {
		if c2.Labels[u] != c.Labels[u] {
			t.Fatalf("label mismatch for %s", u)
		}
		if c2.RootOf[u] != c.RootOf[u] {
			t.Fatalf("root mismatch for %s", u)
		}
		if c2.ByURL[u].HTML != c.ByURL[u].HTML {
			t.Fatalf("HTML mismatch for %s", u)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json.gz")); err == nil {
		t.Error("loading a missing file must fail")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json.gz")
	if err := writeFile(path, "this is not gzip"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("loading garbage must fail")
	}
}

func TestComputeStats(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 2, FormPages: 80})
	s := ComputeStats(c)
	if s.FormPages != 80 {
		t.Errorf("FormPages = %d", s.FormPages)
	}
	if s.SingleAttr+s.MultiAttr+s.Unparseable != 80 {
		t.Errorf("attr split doesn't add up: %+v", s)
	}
	if s.Unparseable != 0 {
		t.Errorf("unparseable = %d", s.Unparseable)
	}
	if len(s.PerDomain) != len(webgen.Domains) {
		t.Errorf("domains = %d", len(s.PerDomain))
	}
	if s.HubPages == 0 || s.RootPages == 0 || s.DirectoryPages == 0 {
		t.Errorf("page kinds missing: %+v", s)
	}
	out := s.String()
	for _, want := range []string{"form", "single-attribute", "airfare", "music"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q:\n%s", want, out)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
