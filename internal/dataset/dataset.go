// Package dataset persists crawled/generated corpora and computes the
// corpus statistics reported in Section 4.1 (454 form pages, 56
// single-attribute, eight domains).
package dataset

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"cafc/internal/form"
	"cafc/internal/webgen"
)

// Record is one stored page.
type Record struct {
	URL    string `json:"url"`
	HTML   string `json:"html"`
	Kind   string `json:"kind"`
	Domain string `json:"domain,omitempty"`
	Root   string `json:"root,omitempty"`
}

// Dataset is a persistable corpus.
type Dataset struct {
	Records []Record `json:"records"`
}

// FromCorpus converts a generated corpus into a dataset.
func FromCorpus(c *webgen.Corpus) *Dataset {
	d := &Dataset{}
	for _, p := range c.Pages {
		r := Record{URL: p.URL, HTML: p.HTML, Kind: p.Kind.String(), Domain: string(p.Domain)}
		if p.Kind == webgen.FormPageKind {
			r.Root = c.RootOf[p.URL]
		}
		d.Records = append(d.Records, r)
	}
	return d
}

// Corpus reconstructs the corpus view of a dataset. Unknown kinds are
// treated as directory pages (no domain semantics).
func (d *Dataset) Corpus() *webgen.Corpus {
	c := &webgen.Corpus{
		ByURL:  make(map[string]*webgen.Page),
		Labels: make(map[string]webgen.Domain),
		RootOf: make(map[string]string),
	}
	for _, r := range d.Records {
		kind := webgen.DirectoryPageKind
		switch r.Kind {
		case "form":
			kind = webgen.FormPageKind
		case "root":
			kind = webgen.RootPageKind
		case "hub":
			kind = webgen.HubPageKind
		}
		p := &webgen.Page{URL: r.URL, HTML: r.HTML, Kind: kind, Domain: webgen.Domain(r.Domain)}
		c.Pages = append(c.Pages, p)
		c.ByURL[r.URL] = p
		if kind == webgen.FormPageKind {
			c.FormPages = append(c.FormPages, r.URL)
			c.Labels[r.URL] = p.Domain
			if r.Root != "" {
				c.RootOf[r.URL] = r.Root
			}
		}
	}
	return c
}

// Save writes the dataset as gzipped JSON.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("dataset: close gzip: %w", err)
	}
	return f.Close()
}

// Load reads a dataset written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: gunzip: %w", err)
	}
	defer zr.Close()
	var d Dataset
	if err := json.NewDecoder(zr).Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	return &d, nil
}

// Stats summarizes a corpus as the paper's Section 4.1 does.
type Stats struct {
	TotalPages     int
	FormPages      int
	SingleAttr     int
	MultiAttr      int
	Unparseable    int
	PerDomain      map[string]int
	HubPages       int
	DirectoryPages int
	RootPages      int
}

// ComputeStats parses every form page and tallies the dataset's shape.
func ComputeStats(c *webgen.Corpus) Stats {
	s := Stats{TotalPages: len(c.Pages), PerDomain: make(map[string]int)}
	for _, p := range c.Pages {
		switch p.Kind {
		case webgen.HubPageKind:
			s.HubPages++
		case webgen.DirectoryPageKind:
			s.DirectoryPages++
		case webgen.RootPageKind:
			s.RootPages++
		}
	}
	for _, u := range c.FormPages {
		s.FormPages++
		s.PerDomain[string(c.Labels[u])]++
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			s.Unparseable++
			continue
		}
		if fp.Form.AttributeCount() <= 1 {
			s.SingleAttr++
		} else {
			s.MultiAttr++
		}
	}
	return s
}

// String renders the stats as a small report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pages: %d total (%d form, %d root, %d hub, %d directory)\n",
		s.TotalPages, s.FormPages, s.RootPages, s.HubPages, s.DirectoryPages)
	fmt.Fprintf(&b, "forms: %d single-attribute, %d multi-attribute, %d unparseable\n",
		s.SingleAttr, s.MultiAttr, s.Unparseable)
	domains := make([]string, 0, len(s.PerDomain))
	for d := range s.PerDomain {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		fmt.Fprintf(&b, "  %-10s %4d\n", d, s.PerDomain[d])
	}
	return b.String()
}
