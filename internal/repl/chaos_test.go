// Partition/failover chaos suite. Every scenario runs entirely on
// manual pipelines (stream.NewManual) and a fault.FakeClock, so there
// is not a single time.Sleep and no goroutine races: each injected
// fault happens at a deterministic fetch-call index, and each recovery
// is a plain synchronous Sync call. The invariant under test is the
// tentpole's: however the stream is killed, truncated or partitioned, a
// follower that reaches epoch E is bit-identical to the leader at epoch
// E — and to a leader recovered cold from the same WAL prefix.
package repl

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"cafc/internal/fault"
	"cafc/internal/obs"
	"cafc/internal/retry"
	"cafc/internal/stream"
	"cafc/internal/webgen"
)

// chaosConfig is the shared pipeline shape: small k, fixed seed, and a
// low drift threshold so replicated batches trigger genuine
// drift-rebuilds on both sides.
func chaosConfig() stream.Config {
	return stream.Config{K: 4, Seed: 11, DriftThreshold: 0.05}
}

// genStreamDocs builds n searchable form pages.
func genStreamDocs(t testing.TB, seed int64, n int) []stream.Doc {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
	docs := make([]stream.Doc, 0, n)
	for _, u := range c.FormPages {
		docs = append(docs, stream.Doc{URL: u, HTML: c.ByURL[u].HTML})
	}
	return docs
}

// newChaosLeader builds a durable manual leader and applies the docs in
// batches of batch, inserting a forced-rebuild marker after each
// markEvery batches when markEvery > 0.
func newChaosLeader(t *testing.T, docs []stream.Doc, batch, markEvery int) (*stream.Live, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := stream.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cfg := chaosConfig()
	cfg.Store = st
	l := stream.NewManual(cfg, nil, nil)
	batches := 0
	for i := 0; i < len(docs); i += batch {
		end := i + batch
		if end > len(docs) {
			end = len(docs)
		}
		if err := l.Apply(stream.Record{Docs: docs[i:end]}); err != nil {
			t.Fatal(err)
		}
		if batches++; markEvery > 0 && batches%markEvery == 0 {
			if err := l.Apply(stream.Record{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return l, dir
}

// testFollower mirrors cafc.Live's follower implementation of Target at
// the stream level: append the raw frame verbatim, then apply the
// record through the batch pipeline without re-logging it.
type testFollower struct {
	st *stream.Store
	l  *stream.Live
}

// newTestFollower opens (or re-opens) a follower on dir, replaying
// whatever the local WAL already holds — exactly cold recovery.
func newTestFollower(t *testing.T, dir string) *testFollower {
	t.Helper()
	st, err := stream.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.Records()
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig()
	cfg.Store = st
	return &testFollower{st: st, l: stream.NewManual(cfg, nil, recs)}
}

func (f *testFollower) WALRecords() int64 { return f.st.RecordCount() }

func (f *testFollower) AppliedEpoch() int64 {
	if e := f.l.Current(); e != nil {
		return e.Seq
	}
	return 0
}

func (f *testFollower) ApplyFrame(fr stream.Frame) error {
	if err := f.st.AppendFrame(fr); err != nil {
		return err
	}
	return f.l.ApplyReplicated(fr.Rec)
}

func (f *testFollower) close() {
	f.l.Close()
	f.st.Close()
}

// flakySource wraps a Source with deterministic chaos: outage windows
// over global fetch-call indices (the same scheme internal/fault uses),
// a per-fetch frame cap so partitions land mid-epoch-stream, and
// per-call frame truncation or batch drops.
type flakySource struct {
	inner      Source
	maxFrames  int
	outages    []fault.Window
	truncateAt map[int]bool
	dropAt     map[int]bool
	calls      int
}

func (s *flakySource) Frames(ctx context.Context, from int64) ([]stream.Frame, int64, error) {
	call := s.calls
	s.calls++
	for _, w := range s.outages {
		if call >= w.Start && call < w.End {
			return nil, 0, fault.ErrInjected
		}
	}
	frames, total, err := s.inner.Frames(ctx, from)
	if err != nil {
		return nil, 0, err
	}
	if s.maxFrames > 0 && len(frames) > s.maxFrames {
		frames = frames[:s.maxFrames]
	}
	if s.dropAt[call] {
		frames = nil // the batch vanished in transit; total still says we are behind
	}
	if s.truncateAt[call] && len(frames) > 0 {
		raw := append([]byte(nil), frames[0].Raw...)
		frames[0] = stream.Frame{Raw: raw[:len(raw)-3], Rec: frames[0].Rec}
	}
	return frames, total, nil
}

// chaosPolicy is a deterministic, jitter-free retry policy.
func chaosPolicy(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts, BaseDelay: 10_000_000, Jitter: -1}
}

// assertBitIdentical pins the tentpole invariant: the follower's
// published state equals the live leader's AND a leader recovered cold
// from the same WAL — same epoch, same record count, same assignments,
// and bit-equal centroids (float64s compared exactly via DeepEqual).
func assertBitIdentical(t *testing.T, f *testFollower, leader *stream.Live, leaderDir string) {
	t.Helper()
	le := leader.Current()
	fe := f.l.Current()
	if le == nil || fe == nil {
		t.Fatalf("missing epoch: leader %v follower %v", le, fe)
	}
	if fe.Seq != le.Seq || fe.WALRecords != le.WALRecords {
		t.Fatalf("follower at epoch %d (%d records), leader at %d (%d)", fe.Seq, fe.WALRecords, le.Seq, le.WALRecords)
	}
	recovered := newTestFollower(t, leaderDir) // cold replay of the leader's own WAL
	defer recovered.close()
	re := recovered.l.Current()
	for _, cmp := range []struct {
		name string
		e    *stream.Epoch
	}{{"live leader", le}, {"recovered leader", re}} {
		if !reflect.DeepEqual(fe.Result.Assign, cmp.e.Result.Assign) {
			t.Fatalf("follower assignments differ from %s", cmp.name)
		}
		if !reflect.DeepEqual(fe.Result.Centroids, cmp.e.Result.Centroids) {
			t.Fatalf("follower centroids differ from %s (not bit-identical)", cmp.name)
		}
		if fe.Model.Len() != cmp.e.Model.Len() {
			t.Fatalf("follower model has %d pages, %s %d", fe.Model.Len(), cmp.name, cmp.e.Model.Len())
		}
	}
}

// TestChaosPartitionMidEpoch kills the replication stream while the
// follower is mid-way through the leader's history: Sync fails after
// backoff (on the fake clock), keeps the progress it made, and the next
// Sync resumes from the last applied record to bit-identical state.
func TestChaosPartitionMidEpoch(t *testing.T) {
	docs := genStreamDocs(t, 3, 32)
	leader, dir := newChaosLeader(t, docs, 8, 0) // 4 records
	f := newTestFollower(t, t.TempDir())
	defer f.close()

	clock := fault.NewFakeClock()
	src := &flakySource{inner: DirSource{Dir: dir}, maxFrames: 1, outages: []fault.Window{{Start: 2, End: 5}}}
	tail := &Tailer{Source: src, Target: f, Policy: chaosPolicy(2), Clock: clock}

	err := tail.Sync(context.Background())
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("partitioned Sync = %v, want the injected error", err)
	}
	if got := f.WALRecords(); got != 2 {
		t.Fatalf("follower applied %d records before the partition, want 2", got)
	}
	if f.AppliedEpoch() != 2 {
		t.Fatalf("follower epoch %d mid-partition, want 2", f.AppliedEpoch())
	}
	if clock.Slept() == 0 {
		t.Fatal("retry backoff never slept on the fake clock")
	}
	if lag := tail.Lag(); lag != 2 {
		t.Fatalf("lag during partition = %d, want 2", lag)
	}

	// Partition heals (the outage window is behind the call counter).
	if err := tail.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if lag := tail.Lag(); lag != 0 {
		t.Fatalf("lag after heal = %d, want 0", lag)
	}
	assertBitIdentical(t, f, leader, dir)
}

// TestChaosTruncatedFrame corrupts a frame in transit: the follower
// must reject it whole (its own WAL stays intact), retry, and converge
// bit-identically once the re-fetch delivers clean bytes.
func TestChaosTruncatedFrame(t *testing.T) {
	docs := genStreamDocs(t, 4, 24)
	leader, dir := newChaosLeader(t, docs, 6, 0) // 4 records
	fdir := t.TempDir()
	f := newTestFollower(t, fdir)
	defer f.close()

	clock := fault.NewFakeClock()
	reg := obs.NewRegistry()
	src := &flakySource{inner: DirSource{Dir: dir}, maxFrames: 1, truncateAt: map[int]bool{1: true}}
	tail := &Tailer{Source: src, Target: f, Policy: chaosPolicy(5), Clock: clock, Metrics: reg}

	if err := tail.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, f, leader, dir)

	// The damaged frame must not have left partial bytes in the local
	// WAL: a fresh scan of the follower's dir sees every record intact.
	frames, total, err := stream.TailWAL(fdir, 0)
	if err != nil || total != 4 || len(frames) != 4 {
		t.Fatalf("follower WAL scan = %d frames / %d total (%v), want 4/4", len(frames), total, err)
	}
	if got := obsCounter(t, reg, "replication_errors_total"); got < 1 {
		t.Fatalf("replication_errors_total = %v after a truncated frame, want >= 1", got)
	}
}

// TestChaosDroppedBatch makes a fetch lose its frames entirely while
// the total says the follower is behind: Sync treats the empty answer
// as "caught up to the durable prefix" (a cold leader looks the same),
// and the next Sync closes the gap.
func TestChaosDroppedBatch(t *testing.T) {
	docs := genStreamDocs(t, 5, 24)
	leader, dir := newChaosLeader(t, docs, 6, 0)
	f := newTestFollower(t, t.TempDir())
	defer f.close()

	src := &flakySource{inner: DirSource{Dir: dir}, maxFrames: 1, dropAt: map[int]bool{1: true}}
	tail := &Tailer{Source: src, Target: f, Policy: chaosPolicy(3), Clock: fault.NewFakeClock()}

	if err := tail.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.WALRecords() != 1 || tail.Lag() != 3 {
		t.Fatalf("after dropped batch: %d records, lag %d; want 1 record, lag 3", f.WALRecords(), tail.Lag())
	}
	if err := tail.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, f, leader, dir)
}

// TestChaosPartitionDuringRebuild partitions the follower exactly at
// the fetch that would deliver a forced-rebuild marker (with drift
// rebuilds also armed via the low threshold): the follower stalls
// mid-history, resumes from its last applied record, replays the
// rebuild, and ends bit-identical — including the rebuilt centroids.
func TestChaosPartitionDuringRebuild(t *testing.T) {
	docs := genStreamDocs(t, 6, 40)
	// 8-doc batches with a rebuild marker after every 2nd batch:
	// records are [b, b, R, b, b, R] — the marker at index 2 is the
	// partition point.
	leader, dir := newChaosLeader(t, docs, 8, 2)
	f := newTestFollower(t, t.TempDir())
	defer f.close()

	clock := fault.NewFakeClock()
	src := &flakySource{inner: DirSource{Dir: dir}, maxFrames: 1, outages: []fault.Window{{Start: 2, End: 6}}}
	tail := &Tailer{Source: src, Target: f, Policy: chaosPolicy(3), Clock: clock}

	err := tail.Sync(context.Background())
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Sync through the rebuild partition = %v, want injected error", err)
	}
	if f.WALRecords() != 2 {
		t.Fatalf("follower holds %d records at the rebuild partition, want 2 (marker not yet delivered)", f.WALRecords())
	}

	if err := tail.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := f.l.Status().Rebuilds; got < 2 {
		t.Fatalf("follower replayed %d rebuilds, want >= 2 (both markers)", got)
	}
	assertBitIdentical(t, f, leader, dir)
}

// TestChaosFollowerCrashResume kills the follower process mid-tail
// (hard Close, no snapshot) and restarts it on the same dir: recovery
// replays the local WAL prefix, the tailer resumes from that offset,
// and the final state is bit-identical.
func TestChaosFollowerCrashResume(t *testing.T) {
	docs := genStreamDocs(t, 7, 32)
	leader, dir := newChaosLeader(t, docs, 8, 1) // records: b R b R b R b R
	fdir := t.TempDir()
	f := newTestFollower(t, fdir)

	// Tail three records, then the stream dies for good (open-ended
	// outage) — and so does the follower.
	src := &flakySource{inner: DirSource{Dir: dir}, maxFrames: 1, outages: []fault.Window{{Start: 3, End: 1 << 30}}}
	tail := &Tailer{Source: src, Target: f, Policy: chaosPolicy(2), Clock: fault.NewFakeClock()}
	if err := tail.Sync(context.Background()); err == nil {
		t.Fatal("Sync should fail once the open-ended outage starts")
	}
	if f.WALRecords() != 3 {
		t.Fatalf("follower crashed with %d records, want 3", f.WALRecords())
	}
	f.close() // hard stop: no drain, no snapshot

	f2 := newTestFollower(t, fdir)
	defer f2.close()
	if f2.AppliedEpoch() != 3 {
		t.Fatalf("recovered follower at epoch %d, want 3 (replay of the local prefix)", f2.AppliedEpoch())
	}
	tail2 := &Tailer{Source: DirSource{Dir: dir}, Target: f2, Policy: chaosPolicy(3), Clock: fault.NewFakeClock()}
	if err := tail2.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, f2, leader, dir)
}

// TestTailerMetricsAndInertness runs the identical tail twice — once
// with a registry, once with nil — and pins both sides: the gauges
// land on applied-epoch/lag-zero values, and a nil registry changes
// nothing about the replicated state (inert by construction).
func TestTailerMetricsAndInertness(t *testing.T) {
	docs := genStreamDocs(t, 8, 24)
	leader, dir := newChaosLeader(t, docs, 6, 0)

	run := func(reg *obs.Registry) *testFollower {
		f := newTestFollower(t, t.TempDir())
		tail := &Tailer{Source: DirSource{Dir: dir}, Target: f, Policy: chaosPolicy(3), Clock: fault.NewFakeClock(), Metrics: reg}
		if err := tail.Sync(context.Background()); err != nil {
			t.Fatal(err)
		}
		return f
	}
	reg := obs.NewRegistry()
	fm := run(reg)
	defer fm.close()
	fn := run(nil)
	defer fn.close()

	me, ne := fm.l.Current(), fn.l.Current()
	if !reflect.DeepEqual(me.Result.Assign, ne.Result.Assign) || !reflect.DeepEqual(me.Result.Centroids, ne.Result.Centroids) {
		t.Fatal("attaching a metrics registry changed the replicated state — instrumentation must be inert")
	}
	assertBitIdentical(t, fm, leader, dir)

	want := map[string]float64{
		"replication_applied_epoch": float64(fm.AppliedEpoch()),
		"replication_lag_epochs":    0,
	}
	for name, v := range want {
		if got := obsGauge(t, reg, name); got != v {
			t.Fatalf("%s = %v, want %v", name, got, v)
		}
	}
	if got := obsCounter(t, reg, "replication_frames_total"); got != 4 {
		t.Fatalf("replication_frames_total = %v, want 4", got)
	}
}

// obsCounter / obsGauge read one unlabeled series out of a registry
// snapshot.
func obsCounter(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	return obsValue(t, reg, name)
}

func obsGauge(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	return obsValue(t, reg, name)
}

func obsValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("metric %s not in registry snapshot", name)
	return 0
}
