package repl

import (
	"context"
	"sync/atomic"
	"time"

	"cafc/internal/obs"
	"cafc/internal/retry"
	"cafc/internal/stream"
)

// Target is the follower-side state a Tailer advances. cafc.Live (in
// follower mode) implements it: ApplyFrame appends the frame to the
// local WAL verbatim and runs the record through the batch pipeline.
type Target interface {
	// WALRecords is the local WAL's intact record count — the offset the
	// next fetch resumes from.
	WALRecords() int64
	// AppliedEpoch is the latest published epoch number (0 while cold).
	AppliedEpoch() int64
	// ApplyFrame durably appends and applies one replicated frame.
	ApplyFrame(stream.Frame) error
}

// Tailer pulls WAL frames from a Source and applies them to a Target,
// with bounded retry backoff on fetch or apply errors. One Tailer owns
// its Target's write side; Sync and Run must not run concurrently.
type Tailer struct {
	Source Source
	Target Target
	// Policy bounds one Sync's retry sequence (zero value = retry
	// defaults: 3 attempts, 100ms base, 2s cap).
	Policy retry.Policy
	// Clock drives backoff sleeps (nil = retry.System). The chaos suite
	// injects fault.FakeClock here.
	Clock retry.Clock
	// Interval is Run's idle poll period once caught up (0 = 200ms).
	Interval time.Duration
	// Metrics receives the replication gauges and counters. Nil
	// disables.
	Metrics *obs.Registry

	// leaderRecords is the source's total record count as of the last
	// successful fetch — what Lag measures against.
	leaderRecords atomic.Int64
}

func (t *Tailer) clock() retry.Clock {
	if t.Clock == nil {
		return retry.System
	}
	return t.Clock
}

func (t *Tailer) interval() time.Duration {
	if t.Interval <= 0 {
		return 200 * time.Millisecond
	}
	return t.Interval
}

// Lag returns how many leader records the target has not yet applied,
// by the last fetch's view of the leader (0 before the first contact).
// Epochs advance one per record, so this is also the lag in epochs.
func (t *Tailer) Lag() int64 {
	lag := t.leaderRecords.Load() - t.Target.WALRecords()
	if lag < 0 {
		return 0
	}
	return lag
}

// note refreshes the replication gauges.
func (t *Tailer) note() {
	reg := t.Metrics
	if reg == nil {
		return
	}
	reg.Gauge("replication_applied_epoch").Set(float64(t.Target.AppliedEpoch()))
	reg.Gauge("replication_lag_epochs").Set(float64(t.Lag()))
}

// Sync fetches and applies frames until the target has caught up with
// the source's durable prefix, retrying fetch and apply errors under
// the policy. It returns nil once caught up, or the last error once
// attempts are exhausted — progress already applied is kept either way,
// and the next Sync resumes from the local WAL's record count.
func (t *Tailer) Sync(ctx context.Context) error {
	pol := t.Policy.WithDefaults()
	bo := retry.NewBackoff(pol)
	clock := t.clock()
	reg := t.Metrics
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		frames, total, err := t.Source.Frames(ctx, t.Target.WALRecords())
		if err == nil {
			t.leaderRecords.Store(total)
			for _, f := range frames {
				if aerr := t.Target.ApplyFrame(f); aerr != nil {
					err = aerr
					break
				}
				reg.Counter("replication_frames_total").Inc()
				t.note()
			}
		}
		if err == nil {
			t.note()
			if len(frames) == 0 {
				// The source returned nothing at our offset: we hold its
				// entire durable prefix.
				return nil
			}
			attempt = 0 // progress resets the retry budget
			continue
		}
		reg.Counter("replication_errors_total").Inc()
		attempt++
		if attempt >= pol.MaxAttempts {
			return err
		}
		if serr := clock.Sleep(ctx, bo.Delay(attempt)); serr != nil {
			return serr
		}
	}
}

// Run tails forever: Sync, idle for Interval, repeat — until ctx is
// done. Errors are absorbed (they are already counted and retried
// inside Sync); a partitioned leader just means lag grows until the
// partition heals.
func (t *Tailer) Run(ctx context.Context) {
	clock := t.clock()
	for {
		if ctx.Err() != nil {
			return
		}
		_ = t.Sync(ctx)
		if clock.Sleep(ctx, t.interval()) != nil {
			return
		}
	}
}
