package repl

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"cafc/internal/stream"
)

// testRecords is a small fixed record sequence for protocol tests (the
// framing does not care whether the HTML parses).
func testRecords() []stream.Record {
	return []stream.Record{
		{Docs: []stream.Doc{{URL: "http://a/", HTML: "<form><input name=q></form>"}}},
		{Docs: []stream.Doc{{URL: "http://b/", HTML: "<form><input name=r></form>"}, {URL: "http://c/", HTML: "x"}}},
		{},
	}
}

// seedStore writes the records (and optionally a snapshot) into a fresh
// store dir and returns the dir.
func seedStore(t *testing.T, snapshot []byte) string {
	t.Helper()
	dir := t.TempDir()
	st, err := stream.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, rec := range testRecords() {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if snapshot != nil {
		if err := st.WriteSnapshot(func(w io.Writer) error {
			_, err := w.Write(snapshot)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServerClientRoundTrip(t *testing.T) {
	dir := seedStore(t, []byte("snapshot-bytes"))
	mux := http.NewServeMux()
	(&Server{Dir: dir}).Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	frames, total, err := c.Frames(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || len(frames) != 3 {
		t.Fatalf("Frames(0) = %d frames / %d total, want 3/3", len(frames), total)
	}
	var cat bytes.Buffer
	for _, f := range frames {
		cat.Write(f.Raw)
	}
	if !bytes.Equal(cat.Bytes(), walBytes(t, dir)) {
		t.Fatal("streamed frames do not reassemble the leader's WAL bytes")
	}

	frames, total, err = c.Frames(ctx, 2)
	if err != nil || total != 3 || len(frames) != 1 {
		t.Fatalf("Frames(2) = %d frames / %d total, err %v; want 1/3", len(frames), total, err)
	}
	frames, total, err = c.Frames(ctx, 9)
	if err != nil || total != 3 || len(frames) != 0 {
		t.Fatalf("Frames(9) = %d frames / %d total, err %v; want 0/3", len(frames), total, err)
	}

	rc, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(rc)
	rc.Close()
	if string(snap) != "snapshot-bytes" {
		t.Fatalf("snapshot round-trip = %q", snap)
	}
}

func TestServerCapsFramesPerResponse(t *testing.T) {
	dir := seedStore(t, nil)
	mux := http.NewServeMux()
	(&Server{Dir: dir, MaxFrames: 2}).Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := &Client{Base: ts.URL}

	frames, total, err := c.Frames(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || total != 3 {
		t.Fatalf("capped fetch = %d frames / %d total, want 2/3", len(frames), total)
	}
	// The follower's resume-from-offset loop picks up the remainder.
	frames, _, err = c.Frames(context.Background(), 2)
	if err != nil || len(frames) != 1 {
		t.Fatalf("resume fetch = %d frames, err %v; want 1", len(frames), err)
	}
}

func TestSnapshotMissing(t *testing.T) {
	dir := seedStore(t, nil)
	mux := http.NewServeMux()
	(&Server{Dir: dir}).Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if _, err := (&Client{Base: ts.URL}).Snapshot(context.Background()); err != stream.ErrNoSnapshot {
		t.Fatalf("Snapshot on a cold leader = %v, want ErrNoSnapshot", err)
	}
}

// TestClientTruncatedBody pins the wire decoder's torn-tail behavior
// end to end: a response cut mid-frame yields the intact prefix, and
// the reported total still lets the tailer know it is behind.
func TestClientTruncatedBody(t *testing.T) {
	full := walBytes(t, seedStore(t, nil))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(TotalHeader, "3")
		w.Write(full[:len(full)-5]) // cut inside the last frame
	}))
	defer ts.Close()
	frames, total, err := (&Client{Base: ts.URL}).Frames(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || total != 3 {
		t.Fatalf("truncated body = %d frames / %d total, want 2 intact / 3", len(frames), total)
	}
}

func TestBootstrap(t *testing.T) {
	leader := seedStore(t, []byte("snap"))
	follower := t.TempDir()
	ctx := context.Background()

	if err := Bootstrap(ctx, DirSource{Dir: leader}, follower); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(walBytes(t, follower), walBytes(t, leader)) {
		t.Fatal("bootstrapped WAL is not a byte-identical copy of the leader's")
	}
	snap, err := os.ReadFile(filepath.Join(follower, "snapshot.gob.gz"))
	if err != nil || string(snap) != "snap" {
		t.Fatalf("bootstrapped snapshot = %q, %v", snap, err)
	}

	// A dir that already holds state is left untouched, even when the
	// leader has moved on — the tailer, not Bootstrap, closes that gap.
	lst, err := stream.Open(leader)
	if err != nil {
		t.Fatal(err)
	}
	if err := lst.Append(stream.Record{Docs: []stream.Doc{{URL: "http://d/"}}}); err != nil {
		t.Fatal(err)
	}
	lst.Close()
	before := walBytes(t, follower)
	if err := Bootstrap(ctx, DirSource{Dir: leader}, follower); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, walBytes(t, follower)) {
		t.Fatal("Bootstrap rewrote an already-populated state dir")
	}
}

// TestBootstrapOverHTTP runs the same bootstrap through the HTTP
// client against a live replication server, including the paged WAL
// copy (MaxFrames 1 forces one fetch per record).
func TestBootstrapOverHTTP(t *testing.T) {
	leader := seedStore(t, []byte("snap"))
	mux := http.NewServeMux()
	(&Server{Dir: leader, MaxFrames: 1}).Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	follower := t.TempDir()
	if err := Bootstrap(context.Background(), &Client{Base: ts.URL}, follower); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(walBytes(t, follower), walBytes(t, leader)) {
		t.Fatal("HTTP bootstrap WAL differs from the leader's")
	}
}

func TestServerStatus(t *testing.T) {
	dir := seedStore(t, nil)
	mux := http.NewServeMux()
	(&Server{Dir: dir}).Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/repl/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if want := `{"records":` + strconv.Itoa(3); !bytes.Contains(body, []byte(want)) {
		t.Fatalf("/repl/status = %s, want it to contain %q", body, want)
	}
}
