// Package repl ships the live directory's WAL between processes: a
// leader serves its log and snapshot over HTTP, followers bootstrap
// from the snapshot, tail the log with retry backoff, and apply each
// record through the same batch pipeline recovery uses.
//
// The protocol is deliberately the on-disk format. A replication
// response body is a concatenation of WAL frames exactly as Append
// wrote them (uvarint payload length, CRC-32C, gob payload), and a
// follower appends the raw frame bytes to its own WAL verbatim before
// applying the record. A follower's WAL is therefore a byte-identical
// prefix copy of its leader's, which reduces the whole correctness
// argument to one already-pinned fact: WAL replay is deterministic. A
// follower tailed to epoch E and a leader recovered at epoch E ran the
// same computation on the same bytes.
//
// Positions are record offsets, and epochs advance one per applied
// record, so "lag in records" and "lag in epochs" are the same number;
// the exported gauges use the epoch name because that is the unit the
// serving layer reasons in.
package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"cafc/internal/obs"
	"cafc/internal/stream"
)

// Source is where a follower pulls WAL frames from: Frames returns the
// intact frames at record offsets >= from plus the source's total
// intact record count (the follower's lag target). A short read — fewer
// frames than total-from — is fine; the next call resumes where the
// local WAL ends.
type Source interface {
	Frames(ctx context.Context, from int64) ([]stream.Frame, int64, error)
}

// SnapshotSource is the optional bootstrap capability of a Source: a
// reader of the leader's current corpus snapshot in the public v2
// format. stream.ErrNoSnapshot when the leader has none yet.
type SnapshotSource interface {
	Snapshot(ctx context.Context) (io.ReadCloser, error)
}

// DirSource serves frames and snapshots straight from a WAL directory
// on the local filesystem — the in-process source used by tests and
// single-machine benches, and the leader's own backing for Server.
type DirSource struct{ Dir string }

// Frames implements Source.
func (s DirSource) Frames(_ context.Context, from int64) ([]stream.Frame, int64, error) {
	return stream.TailWAL(s.Dir, from)
}

// Snapshot implements SnapshotSource.
func (s DirSource) Snapshot(context.Context) (io.ReadCloser, error) {
	return stream.OpenSnapshotAt(s.Dir)
}

// Server exposes a leader's WAL and snapshot over HTTP:
//
//	GET /repl/wal?from=N   -> raw WAL frames from record offset N,
//	                          X-Repl-Total: leader's total record count
//	GET /repl/snapshot     -> current v2 snapshot (404 when none)
//	GET /repl/status       -> {"records": N} JSON
//
// It reads the directory directly (stream.TailWAL), so it works against
// a store another goroutine is appending to: the scan stops at the last
// intact frame, i.e. the durable prefix.
type Server struct {
	// Dir is the leader's state directory.
	Dir string
	// Metrics receives request/frame counters. Nil disables.
	Metrics *obs.Registry
	// MaxFrames caps frames per /repl/wal response (0 = 4096) so one
	// cold follower cannot make the leader buffer its entire history in
	// memory at once; followers loop until caught up.
	MaxFrames int
}

// TotalHeader carries the source's total intact record count on
// /repl/wal responses.
const TotalHeader = "X-Repl-Total"

func (s *Server) maxFrames() int {
	if s.MaxFrames <= 0 {
		return 4096
	}
	return s.MaxFrames
}

// Register mounts the replication endpoints on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/repl/wal", s.handleWAL)
	mux.HandleFunc("/repl/snapshot", s.handleSnapshot)
	mux.HandleFunc("/repl/status", s.handleStatus)
}

func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	from := int64(0)
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v < 0 {
			http.Error(w, "bad from offset", http.StatusBadRequest)
			return
		}
		from = v
	}
	frames, total, err := stream.TailWAL(s.Dir, from)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if max := s.maxFrames(); len(frames) > max {
		frames = frames[:max]
	}
	s.Metrics.Counter("replication_serve_requests_total").Inc()
	s.Metrics.Counter("replication_serve_frames_total").Add(int64(len(frames)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(TotalHeader, strconv.FormatInt(total, 10))
	for _, f := range frames {
		if _, err := w.Write(f.Raw); err != nil {
			return // client went away mid-stream; it will re-fetch from its offset
		}
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	rc, err := stream.OpenSnapshotAt(s.Dir)
	if errors.Is(err, stream.ErrNoSnapshot) {
		http.Error(w, "no snapshot", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer rc.Close()
	s.Metrics.Counter("replication_serve_snapshots_total").Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = io.Copy(w, rc)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	_, total, err := stream.TailWAL(s.Dir, 1<<62)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Records int64 `json:"records"`
	}{total})
}

// Client pulls frames and snapshots from a Server — the follower's
// remote Source.
type Client struct {
	// Base is the leader's base URL, e.g. "http://10.0.0.1:8080".
	Base string
	// HTTP is the client to use (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) httpc() *http.Client {
	if c.HTTP == nil {
		return http.DefaultClient
	}
	return c.HTTP
}

// Frames implements Source over HTTP. A response body with a torn tail
// (proxy truncation, leader dying mid-write) yields just the intact
// prefix — the follower appends what survived and re-fetches the rest.
func (c *Client) Frames(ctx context.Context, from int64) ([]stream.Frame, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/repl/wal?from=%d", c.Base, from), nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("repl: fetch frames: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("repl: fetch frames: leader returned %s", resp.Status)
	}
	total, err := strconv.ParseInt(resp.Header.Get(TotalHeader), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("repl: fetch frames: bad %s header", TotalHeader)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil && len(body) == 0 {
		return nil, 0, fmt.Errorf("repl: fetch frames: %w", err)
	}
	return stream.DecodeFrames(body), total, nil
}

// Snapshot implements SnapshotSource over HTTP.
func (c *Client) Snapshot(ctx context.Context) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/repl/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return nil, fmt.Errorf("repl: fetch snapshot: %w", err)
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return nil, stream.ErrNoSnapshot
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("repl: fetch snapshot: leader returned %s", resp.Status)
	}
	return resp.Body, nil
}

// Bootstrap populates an empty follower state dir from src: the
// leader's current snapshot (when src can ship one and has one) plus a
// verbatim copy of every WAL frame from record 0 — after which the
// ordinary recovery machinery brings the follower to the leader's
// durable state without replaying the snapshotted prefix's compute. A
// dir that already holds state is left untouched: the follower resumes
// from its local WAL and only tails the delta.
func Bootstrap(ctx context.Context, src Source, dir string) error {
	if stream.HasState(dir) {
		return nil
	}
	st, err := stream.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	if ss, ok := src.(SnapshotSource); ok {
		rc, err := ss.Snapshot(ctx)
		switch {
		case err == nil:
			werr := st.WriteSnapshot(func(w io.Writer) error {
				_, err := io.Copy(w, rc)
				return err
			})
			rc.Close()
			if werr != nil {
				return werr
			}
		case errors.Is(err, stream.ErrNoSnapshot):
			// Cold leader: the WAL alone is the full history.
		default:
			return err
		}
	}
	for {
		frames, total, err := src.Frames(ctx, st.RecordCount())
		if err != nil {
			return err
		}
		if len(frames) == 0 {
			if st.RecordCount() < total {
				return fmt.Errorf("repl: bootstrap stalled at %d/%d records", st.RecordCount(), total)
			}
			return nil
		}
		for _, f := range frames {
			if err := st.AppendFrame(f); err != nil {
				return err
			}
		}
	}
}
