package stream

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	icafc "cafc/internal/cafc"
	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/obs"
	"cafc/internal/retry"
	"cafc/internal/vector"
)

// Config configures a Live ingester. The zero value of every optional
// field selects the default noted per field; K is required.
type Config struct {
	// K is the target cluster count (clamped to the corpus size while
	// the corpus is smaller).
	K int
	// Seed drives the k-means seeding of full re-clusters. It is fixed
	// per Live so that replaying the same WAL reproduces the same
	// epochs.
	Seed int64
	// QueueSize bounds the ingest queue (0 = 1024). A full queue makes
	// Ingest fail fast with ErrBacklog — backpressure the HTTP layer
	// turns into 429s instead of unbounded memory growth.
	QueueSize int
	// BatchSize caps how many documents one batch absorbs (0 = 64).
	BatchSize int
	// FlushInterval bounds how long a partial batch waits for more
	// documents (0 = 200ms).
	FlushInterval time.Duration
	// DriftThreshold is the reassignment fraction above which a batch
	// triggers a full re-cluster (0 = 0.25; >= 1 disables). After each
	// mini-batch assignment the worker re-scores every page against the
	// current centroids; when more than this fraction would move, the
	// incremental model has drifted from its clustering and the epoch
	// is rebuilt from scratch (re-embed + fresh k-means).
	DriftThreshold float64
	// Weights are the LOC factors used to parse ingested documents.
	// The zero value selects form.DefaultWeights.
	Weights form.Weights
	// Uniform disables location differentiation for ingested pages
	// (must match the model being grown).
	Uniform bool
	// SkipNonSearchable drops documents without a searchable form
	// (counted, not fatal). When false such documents are also only
	// counted — a stream must not die on one bad page — but land in
	// the skipped counter either way.
	SkipNonSearchable bool
	// MiniBatchRebuild, when set, replaces the drift-triggered full
	// re-cluster's Lloyd iterations with sampled mini-batch k-means
	// (cluster.MiniBatchKMeans): O(rounds · batch · k) updates plus one
	// full assignment pass, instead of O(iterations · corpus · k) — the
	// rebuild budget that keeps drift recovery affordable once the
	// corpus outgrows full k-means. Rebuilds through this path count in
	// minibatch_rebuild_total. Nil keeps the exact CAFC-C rebuild.
	MiniBatchRebuild *cluster.MiniBatch
	// RebuildApprox composes the LSH candidate tier into rebuild
	// assignment scans (both the full CAFC-C path and the mini-batch
	// path's final assignment pass). The zero value keeps assignment
	// exact.
	RebuildApprox cluster.Approx
	// Metrics receives stream telemetry (queue depth, batch latency,
	// epoch gauge, drift fraction, rebuild and WAL counters). Nil
	// disables instrumentation.
	Metrics *obs.Registry
	// Store, when non-nil, makes ingestion durable: batches are WAL
	// appended before they are applied, and SaveSnapshot checkpoints
	// the corpus.
	Store *Store
	// SaveSnapshot persists an epoch's corpus (the stream layer cannot
	// encode the public snapshot format itself — the caller injects
	// it). Called on Drain and every SnapshotEvery batches. Nil skips
	// snapshotting.
	SaveSnapshot func(e *Epoch) error
	// SnapshotEvery checkpoints after every N applied records
	// (0 = only on Drain).
	SnapshotEvery int
	// OnPublish observes every published epoch, in the worker
	// goroutine, after the atomic swap. Serving layers use it to
	// rebuild per-epoch artifacts (directory UI, classifier labels).
	OnPublish func(*Epoch)
	// IngestWorkers shards the per-batch parse/tokenize/embed stage
	// (0 = one per CPU, 1 = the serial reference path). Workers fill
	// index-addressed slots and a serial merge preserves document
	// order, so published epochs are bit-identical for every value —
	// the same fan-out contract as the model build.
	IngestWorkers int
	// GroupCommit, when > 0, switches the Store into group-commit mode
	// with this pending-record cap: WAL appends buffer in memory and
	// fsync together — behind the bounded CommitWindow, at the cap, or
	// on drain/snapshot. 0 (default) keeps one fsync per record.
	// Recovery stays epoch-exact over the durable prefix; a crash loses
	// only buffered records, which were never acknowledged as durable.
	// Leaders only: follower stores must sync per applied frame so
	// their replication resume offset never trails what they applied.
	GroupCommit int
	// CommitWindow bounds how long a buffered record may wait for an
	// fsync in group-commit mode (0 = FlushInterval). The worker checks
	// the window after every batch and on every ticker tick.
	CommitWindow time.Duration
	// Clock drives the group-commit window policy (nil = system
	// clock). A fault.FakeClock here makes commit timing — and with it
	// mid-group-commit crash tests — deterministic.
	Clock retry.Clock
}

func (c Config) withDefaults() Config {
	if c.QueueSize == 0 {
		c.QueueSize = 1024
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 200 * time.Millisecond
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.25
	}
	if c.Weights == (form.Weights{}) {
		c.Weights = form.DefaultWeights
	}
	if c.CommitWindow == 0 {
		c.CommitWindow = c.FlushInterval
	}
	if c.Clock == nil {
		c.Clock = retry.System
	}
	return c
}

// ingestWorkers resolves the configured shard count.
func (c Config) ingestWorkers() int {
	if c.IngestWorkers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.IngestWorkers
}

// Epoch is one immutable published model state. Everything reachable
// from an Epoch is frozen: the model, the clustering result and the
// document list are never mutated after publish, so any number of
// readers may use them without locks while later epochs build.
type Epoch struct {
	// Seq numbers epochs from 1 (genesis). It advances by exactly one
	// per applied WAL record, which is what makes recovery land on the
	// pre-crash epoch.
	Seq int64
	// Model is the frozen form-page model.
	Model *icafc.Model
	// Result is the clustering over Model (assignments + centroids).
	Result cluster.Result
	// Docs holds the admitted documents in model order (URL + HTML),
	// so serving layers can rebuild content artifacts per epoch.
	//
	// Docs is append-only across epochs: each published epoch's Docs is
	// a strict prefix-extension of the previous epoch's — documents are
	// never reordered or dropped, on batch epochs and rebuild epochs
	// alike. Incremental consumers (the search index appends only
	// Docs[len(previous):] per publish) depend on this invariant.
	Docs []Doc
	// Rebuilt marks epochs produced by a full re-cluster rather than a
	// mini-batch assignment.
	Rebuilt bool
	// WALRecords is the number of WAL records this epoch reflects.
	WALRecords int64
}

// Status is a point-in-time summary of the live pipeline.
type Status struct {
	Epoch         int64
	Pages         int
	QueueDepth    int
	QueueCap      int
	Ingested      int64
	Skipped       int64
	Rejected      int64
	Batches       int64
	Rebuilds      int64
	WALRecords    int64
	WALErrors     int64
	DriftFraction float64
	Draining      bool
	// LastPublish is when the current epoch was swapped in (zero before
	// the first publish) — its age tells an operator how stale the
	// serving model is.
	LastPublish time.Time
	// LastRebuildAt is when the last full re-cluster finished, and
	// LastRebuildSeconds how long it took wall-clock (both zero until
	// the first rebuild). A rebuild storm shows up here without
	// scraping Prometheus.
	LastRebuildAt      time.Time
	LastRebuildSeconds float64
	// IngestWorkers is the resolved parse/embed shard count.
	IngestWorkers int
	// WALPending counts records buffered under group commit but not
	// yet fsynced (0 when group commit is off or no store is attached).
	WALPending int
	// IngestBusyFraction is the share of wall-clock the batch worker
	// has spent inside apply since the pipeline started — the
	// ingest-worker saturation signal (≈1.0 means ingest is
	// CPU-bound and the queue is the next thing to fill).
	IngestBusyFraction float64
}

// ErrBacklog is returned by Ingest when the bounded queue is full —
// the backpressure signal.
var ErrBacklog = errors.New("stream: ingest queue full")

// ErrDraining is returned by Ingest once Drain has begun.
var ErrDraining = errors.New("stream: draining")

// ErrReadOnly is returned by Ingest and ForceRebuild on a manual
// (replica) pipeline — writes belong on the leader.
var ErrReadOnly = errors.New("stream: read-only replica")

// Live is the online ingestion pipeline: Ingest enqueues, a single
// worker batches, grows the model, and publishes epochs; Current is the
// lock-free read side.
type Live struct {
	cfg   Config
	cur   atomic.Pointer[Epoch]
	queue chan Doc
	stop  chan struct{}
	force chan struct{}
	wg    sync.WaitGroup

	draining  atomic.Bool
	graceful  atomic.Bool
	ingested  atomic.Int64
	skipped   atomic.Int64
	rejected  atomic.Int64
	batches   atomic.Int64
	rebuilds  atomic.Int64
	walErrors atomic.Int64
	driftBits atomic.Uint64

	// startNano/busyNano measure worker saturation: busyNano
	// accumulates wall time spent inside apply, so busy/(now-start) is
	// the fraction of the pipeline's life the worker was working.
	startNano atomic.Int64
	busyNano  atomic.Int64

	lastPublishNano    atomic.Int64
	lastRebuildNano    atomic.Int64
	lastRebuildDurNano atomic.Int64

	stopOnce sync.Once

	// manual marks a pipeline with no batch worker: records arrive
	// through Apply/ApplyReplicated from a single caller-owned goroutine
	// (a replication tailer), and Ingest/ForceRebuild fail with
	// ErrReadOnly. The read side is unchanged — epochs still publish
	// through the atomic pointer.
	manual bool

	// simsBuf/scratchBuf are miniBatch's reusable scoring buffers. Only
	// the single worker goroutine touches them, so plain fields suffice;
	// they keep the per-point indexed scoring loop allocation-free.
	simsBuf    []float64
	scratchBuf []float64
	// pacc/facc are the pooled centroid accumulators for miniBatch's
	// touched-cluster refresh — two vocabulary-sized arrays reused
	// across every refreshed centroid of every batch instead of
	// allocated per centroid. Worker-goroutine-only, like the buffers
	// above; CentroidWith resets them on every Compile, so reuse is
	// bit-identical to fresh allocation.
	pacc, facc *vector.Accumulator
}

// New builds a Live pipeline, applies any pending WAL records through
// the batch path synchronously (recovery replay), and starts the
// worker.
//
// genesis, when non-nil, is published as the first epoch before replay;
// it must already be reflected in the WAL (the caller owns genesis
// durability, because only the caller knows whether this is a fresh
// start or a recovery). A nil genesis starts cold at epoch 0 — the
// first ingested batch founds the model.
func New(cfg Config, genesis *Epoch, pending []Record) *Live {
	l := newLive(cfg, genesis, pending, false)
	l.wg.Add(1)
	go l.run()
	return l
}

// NewManual builds a Live pipeline with no batch worker: genesis and
// replay behave exactly as in New, but afterwards records advance the
// model only through Apply/ApplyReplicated, driven synchronously by one
// caller-owned goroutine. This is the follower's engine — a replication
// tailer feeds it the leader's WAL records — and the chaos suite's,
// because every state change happens inside a plain function call.
func NewManual(cfg Config, genesis *Epoch, pending []Record) *Live {
	return newLive(cfg, genesis, pending, true)
}

func newLive(cfg Config, genesis *Epoch, pending []Record, manual bool) *Live {
	cfg = cfg.withDefaults()
	l := &Live{
		cfg:    cfg,
		queue:  make(chan Doc, cfg.QueueSize),
		stop:   make(chan struct{}),
		force:  make(chan struct{}, 1),
		manual: manual,
	}
	l.startNano.Store(time.Now().UnixNano())
	if cfg.Store != nil {
		cfg.Store.Instrument(cfg.Metrics)
		// Group commit is a leader-only optimization: a manual
		// (follower/replica) pipeline must keep its durable record
		// count in lockstep with what it applied, because that count is
		// its replication resume offset — buffered frames would be
		// re-fetched and double-applied after the gap closed.
		if !manual && cfg.GroupCommit > 0 {
			cfg.Store.SetGroupCommit(cfg.GroupCommit)
		}
	}
	cfg.Metrics.Gauge("stream_queue_capacity").Set(float64(cfg.QueueSize))
	if genesis != nil {
		l.publish(genesis)
	}
	for _, rec := range pending {
		l.apply(rec, true)
		if reg := cfg.Metrics; reg != nil {
			reg.Counter("stream_replayed_records_total").Inc()
		}
	}
	return l
}

// Apply runs one record through the batch pipeline synchronously,
// WAL-logging it first when a Store is configured. Manual pipelines
// only; the caller owns single-goroutine discipline.
func (l *Live) Apply(rec Record) error {
	if !l.manual {
		return errors.New("stream: Apply requires a manual pipeline")
	}
	if l.draining.Load() {
		return ErrDraining
	}
	l.apply(rec, false)
	return nil
}

// ApplyReplicated runs one already-durable record through the batch
// pipeline synchronously, skipping the local WAL write — the follower
// path, where the replication layer appended the leader's frame to the
// local WAL verbatim before applying it. Manual pipelines only.
func (l *Live) ApplyReplicated(rec Record) error {
	if !l.manual {
		return errors.New("stream: ApplyReplicated requires a manual pipeline")
	}
	if l.draining.Load() {
		return ErrDraining
	}
	l.apply(rec, true)
	return nil
}

// Current returns the latest published epoch (nil before the first
// publish). Lock-free: an atomic pointer load.
func (l *Live) Current() *Epoch { return l.cur.Load() }

// Ingest offers one document to the stream. It never blocks: a full
// queue fails with ErrBacklog, a draining pipeline with ErrDraining.
func (l *Live) Ingest(d Doc) error {
	if l.manual {
		return ErrReadOnly
	}
	if l.draining.Load() {
		return ErrDraining
	}
	select {
	case l.queue <- d:
		l.noteQueueDepth()
		return nil
	default:
		l.rejected.Add(1)
		l.cfg.Metrics.Counter("stream_rejected_docs_total").Inc()
		return ErrBacklog
	}
}

// ForceRebuild schedules a full re-cluster (re-embed every page against
// the final DF tables, then fresh k-means). The rebuild is WAL-logged
// as a marker record, so replay reproduces it. Coalesced: a rebuild
// already scheduled absorbs later requests.
func (l *Live) ForceRebuild() error {
	if l.manual {
		return ErrReadOnly
	}
	if l.draining.Load() {
		return ErrDraining
	}
	select {
	case l.force <- struct{}{}:
	default:
	}
	return nil
}

// noteQueueDepth refreshes the queue depth and saturation gauges.
func (l *Live) noteQueueDepth() {
	if l.cfg.Metrics == nil {
		return
	}
	depth := len(l.queue)
	l.cfg.Metrics.Gauge("stream_queue_depth").Set(float64(depth))
	l.cfg.Metrics.Gauge("stream_queue_saturation").Set(float64(depth) / float64(l.cfg.QueueSize))
}

// Status summarizes the pipeline.
func (l *Live) Status() Status {
	s := Status{
		QueueDepth:    len(l.queue),
		QueueCap:      l.cfg.QueueSize,
		Ingested:      l.ingested.Load(),
		Skipped:       l.skipped.Load(),
		Rejected:      l.rejected.Load(),
		Batches:       l.batches.Load(),
		Rebuilds:      l.rebuilds.Load(),
		WALErrors:     l.walErrors.Load(),
		DriftFraction: math.Float64frombits(l.driftBits.Load()),
		Draining:      l.draining.Load(),
	}
	if e := l.cur.Load(); e != nil {
		s.Epoch = e.Seq
		s.Pages = e.Model.Len()
		s.WALRecords = e.WALRecords
	}
	if ns := l.lastPublishNano.Load(); ns != 0 {
		s.LastPublish = time.Unix(0, ns)
	}
	if ns := l.lastRebuildNano.Load(); ns != 0 {
		s.LastRebuildAt = time.Unix(0, ns)
		s.LastRebuildSeconds = time.Duration(l.lastRebuildDurNano.Load()).Seconds()
	}
	s.IngestWorkers = l.cfg.ingestWorkers()
	if l.cfg.Store != nil {
		s.WALPending = l.cfg.Store.Pending()
	}
	if elapsed := time.Now().UnixNano() - l.startNano.Load(); elapsed > 0 {
		f := float64(l.busyNano.Load()) / float64(elapsed)
		if f > 1 {
			f = 1
		}
		s.IngestBusyFraction = f
	}
	return s
}

// Drain stops intake, flushes every queued document through the batch
// pipeline, writes a final snapshot, and stops the worker. Ingest
// fails with ErrDraining from the first call on. Returns once the
// worker has exited or ctx expires.
func (l *Live) Drain(ctx context.Context) error {
	l.draining.Store(true)
	l.graceful.Store(true)
	l.stopOnce.Do(func() { close(l.stop) })
	done := make(chan struct{})
	go func() {
		l.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// A manual pipeline has no worker to run the graceful stop path, so
	// Drain flushes the WAL and writes the final snapshot inline.
	if l.manual && l.cfg.Store != nil {
		if err := l.cfg.Store.Flush(); err != nil {
			l.walErrors.Add(1)
			l.cfg.Metrics.Counter("stream_wal_errors_total").Inc()
		}
	}
	if l.manual && l.cfg.SaveSnapshot != nil {
		if e := l.cur.Load(); e != nil {
			if err := l.cfg.SaveSnapshot(e); err != nil {
				l.walErrors.Add(1)
				l.cfg.Metrics.Counter("stream_snapshot_errors_total").Inc()
				return err
			}
		}
	}
	return nil
}

// Close hard-stops the worker without flushing the queue or writing a
// final snapshot — the crash-simulation path (tests kill a Live this
// way to exercise WAL recovery). Durability holds regardless: every
// applied batch was WAL-synced before it was acknowledged.
func (l *Live) Close() {
	l.draining.Store(true)
	l.stopOnce.Do(func() { close(l.stop) })
	l.wg.Wait()
}

// run is the single batch worker.
func (l *Live) run() {
	defer l.wg.Done()
	ticker := time.NewTicker(l.cfg.FlushInterval)
	defer ticker.Stop()
	var batch []Doc
	flush := func() {
		if len(batch) > 0 {
			l.apply(Record{Docs: batch}, false)
			batch = nil
		}
	}

	// Group-commit window policy, clock-seamed for determinism: after
	// every batch and on every ticker tick, kick the background
	// committer once the oldest pending record has waited CommitWindow.
	// The kick is asynchronous — the fsync of batch N overlaps the
	// parse/embed of batch N+1 — and the pending cap is enforced
	// inline by the Store itself. With a frozen fault.FakeClock the
	// window never elapses, which is how the crash-recovery test holds
	// records in the pending buffer deterministically.
	lastCommit := l.cfg.Clock.Now()
	maybeCommit := func() {
		st := l.cfg.Store
		if st == nil || st.GroupCommit() <= 0 {
			return
		}
		if st.Pending() == 0 {
			lastCommit = l.cfg.Clock.Now()
			return
		}
		if l.cfg.Clock.Now().Sub(lastCommit) >= l.cfg.CommitWindow {
			st.RequestCommit()
			lastCommit = l.cfg.Clock.Now()
		}
	}

	for {
		select {
		case d := <-l.queue:
			l.noteQueueDepth()
			batch = append(batch, d)
			if len(batch) >= l.cfg.BatchSize {
				flush()
			}
			maybeCommit()
		case <-l.force:
			flush()
			l.apply(Record{}, false)
			maybeCommit()
		case <-ticker.C:
			flush()
			maybeCommit()
		case <-l.stop:
			// Graceful drain (Drain) and hard stop (Close) share the
			// stop channel; Close marks the queue as abandoned by
			// leaving draining handling to the caller. Distinguish by
			// emptying the queue only when something is there — a hard
			// stop raced nothing because tests call it quiesced.
			for {
				select {
				case d := <-l.queue:
					batch = append(batch, d)
					if len(batch) >= l.cfg.BatchSize {
						flush()
					}
					continue
				default:
				}
				break
			}
			flush()
			// Drain (graceful) makes every accepted record durable before
			// the worker exits; Close keeps crash semantics — buffered
			// group-commit records are abandoned exactly as a real crash
			// would abandon them, which is what the recovery tests
			// simulate.
			if l.graceful.Load() && l.cfg.Store != nil {
				if err := l.cfg.Store.Flush(); err != nil {
					l.walErrors.Add(1)
					l.cfg.Metrics.Counter("stream_wal_errors_total").Inc()
				}
			}
			if l.cfg.SaveSnapshot != nil {
				if e := l.cur.Load(); e != nil {
					if err := l.cfg.SaveSnapshot(e); err != nil {
						l.walErrors.Add(1)
						l.cfg.Metrics.Counter("stream_snapshot_errors_total").Inc()
					}
				}
			}
			return
		}
	}
}

// parseMillisBuckets grade the per-batch parse stage from sub-ms
// partial batches to multi-second million-page prep runs.
var parseMillisBuckets = []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// ParseDocs runs the sharded parse/tokenize stage over docs: each shard
// worker parses its index range with a pooled parser (warm tokenizer
// memo), writing into index-addressed slots, and the serial merge
// preserves document order — so the admitted sequence, and with it
// every downstream epoch, is bit-identical to a serial parse for every
// worker count. Slots for unparseable documents come back nil.
func ParseDocs(docs []Doc, w form.Weights, workers int) []*form.FormPage {
	parsed := make([]*form.FormPage, len(docs))
	cluster.ParallelRange(len(docs), workers, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			fp, err := form.Parse(docs[i].URL, docs[i].HTML, w)
			if err == nil {
				parsed[i] = fp
			}
		}
	})
	return parsed
}

// apply runs one WAL record through the pipeline: parse, (on the live
// path) log to the WAL, grow or rebuild the model, publish the next
// epoch. replay=true skips WAL writes — the record is already durable.
func (l *Live) apply(rec Record, replay bool) {
	reg := l.cfg.Metrics
	if rec.IsRebuild() && l.cur.Load() == nil {
		return // nothing to rebuild before the first model exists
	}
	t0 := time.Now()
	defer func() { l.busyNano.Add(int64(time.Since(t0))) }()
	batchHist := reg.Histogram("stream_ingest_batch_seconds", obs.DurationBuckets)

	// Parse first: a batch of unparseable pages must still be WAL-logged
	// (replay must re-skip them) but publishes an epoch only if it
	// changed anything or forced a rebuild. The parse stage shards
	// across IngestWorkers; the merge below runs serially in document
	// order, so admission order is worker-count-independent.
	var fps []*form.FormPage
	var admitted []Doc
	if len(rec.Docs) > 0 {
		pt0 := time.Now()
		parsed := ParseDocs(rec.Docs, l.cfg.Weights, l.cfg.IngestWorkers)
		reg.Histogram("ingest_batch_parse_millis", parseMillisBuckets).
			Observe(float64(time.Since(pt0)) / float64(time.Millisecond))
		for i, fp := range parsed {
			if fp == nil {
				l.skipped.Add(1)
				reg.Counter("stream_skipped_docs_total").Inc()
				continue
			}
			fps = append(fps, fp)
			admitted = append(admitted, rec.Docs[i])
		}
	}

	if !replay && l.cfg.Store != nil {
		if err := l.cfg.Store.Append(rec); err != nil {
			// Degrade, don't die: the batch is applied in memory and the
			// loss of durability is surfaced in Status and /metrics.
			l.walErrors.Add(1)
			reg.Counter("stream_wal_errors_total").Inc()
		} else {
			reg.Counter("stream_wal_records_total").Inc()
		}
	}

	cur := l.cur.Load()
	next := l.buildEpoch(cur, rec, fps, admitted)
	if next == nil {
		batchHist.ObserveSince(t0)
		return
	}
	l.batches.Add(1)
	l.ingested.Add(int64(len(admitted)))
	reg.Counter("stream_ingested_docs_total").Add(int64(len(admitted)))
	l.publish(next)
	batchHist.ObserveSince(t0)

	if l.cfg.SaveSnapshot != nil && l.cfg.SnapshotEvery > 0 && next.WALRecords%int64(l.cfg.SnapshotEvery) == 0 {
		if err := l.cfg.SaveSnapshot(next); err != nil {
			reg.Counter("stream_snapshot_errors_total").Inc()
		}
	}
}

// buildEpoch computes the successor epoch for one record. Nil means the
// record changed nothing (all documents skipped, no rebuild forced).
func (l *Live) buildEpoch(cur *Epoch, rec Record, fps []*form.FormPage, admitted []Doc) *Epoch {
	reg := l.cfg.Metrics
	rebuild := rec.IsRebuild()
	if len(fps) == 0 && !rebuild {
		// The record still consumes an epoch slot if it was WAL-logged?
		// No: records are only written for batches with documents or
		// rebuild markers, and a documents-only record that admitted
		// nothing still advances WALRecords via the epoch below when a
		// model exists. With nothing to do and nothing published, keep
		// the current epoch but account the record so recovery counts
		// line up.
		if cur != nil && len(rec.Docs) > 0 {
			e := *cur
			e.Seq++
			e.WALRecords++
			e.Rebuilt = false
			return &e
		}
		return nil
	}

	var m *icafc.Model
	if cur != nil {
		m = cur.Model.Clone()
	} else {
		m = icafc.BuildMetrics(nil, l.cfg.Uniform, reg)
	}
	// The incremental append (embed + compile) shards with the same
	// worker budget as the parse stage; both are bit-identical for
	// every worker count.
	m.Workers = l.cfg.IngestWorkers
	m.AppendPages(fps)
	docs := admitted
	if cur != nil {
		docs = append(append([]Doc(nil), cur.Docs...), admitted...)
	}

	next := &Epoch{
		Seq:        1,
		Model:      m,
		Docs:       docs,
		WALRecords: 1,
	}
	if cur != nil {
		next.Seq = cur.Seq + 1
		next.WALRecords = cur.WALRecords + 1
	}

	switch {
	case rebuild || cur == nil || cur.Result.K == 0:
		next.Result = l.recluster(m)
		next.Rebuilt = true
	default:
		res, drift := l.miniBatch(m, cur)
		l.driftBits.Store(math.Float64bits(drift))
		reg.Gauge("stream_drift_fraction").Set(drift)
		if drift > l.cfg.DriftThreshold {
			next.Result = l.recluster(m)
			next.Rebuilt = true
		} else {
			next.Result = res
		}
	}
	if next.Rebuilt && cur != nil {
		l.rebuilds.Add(1)
		reg.Counter("stream_rebuilds_total").Inc()
	}
	return next
}

// recluster is the full path: erase incremental IDF staleness, then run
// the paper's CAFC-C k-means with the configured seed. Deterministic
// for a fixed seed and document sequence — the pinned equivalence test
// compares this against a one-shot build.
func (l *Live) recluster(m *icafc.Model) cluster.Result {
	start := time.Now()
	defer func() {
		done := time.Now()
		l.lastRebuildNano.Store(done.UnixNano())
		l.lastRebuildDurNano.Store(int64(done.Sub(start)))
		l.cfg.Metrics.Histogram("stream_rebuild_seconds", obs.DurationBuckets).Observe(done.Sub(start).Seconds())
	}()
	m.ReembedAll()
	rng := rand.New(rand.NewSource(l.cfg.Seed + 1))
	if mb := l.cfg.MiniBatchRebuild; mb != nil {
		if reg := l.cfg.Metrics; reg != nil {
			reg.Counter("minibatch_rebuild_total").Inc()
		}
		return icafc.CAFCCMiniBatch(m, l.cfg.K, rng, *mb, l.cfg.RebuildApprox)
	}
	if l.cfg.RebuildApprox.Enabled {
		return icafc.CAFCCApprox(m, l.cfg.K, rng, l.cfg.RebuildApprox)
	}
	return icafc.CAFCC(m, l.cfg.K, rng)
}

// miniBatch extends the current assignment: each new page goes to its
// nearest centroid, the centroids of receiving clusters are refreshed,
// and the whole corpus is re-scored against the refreshed centroids to
// measure drift (the fraction of pages whose nearest centroid is no
// longer their assigned one).
func (l *Live) miniBatch(m *icafc.Model, cur *Epoch) (cluster.Result, float64) {
	k := cur.Result.K
	centroids := append([]cluster.Point(nil), cur.Result.Centroids...)
	assign := make([]int, m.Len())
	copy(assign, cur.Result.Assign)

	nearest := l.nearestFn(m, centroids)
	touched := make(map[int]bool)
	for i := len(cur.Result.Assign); i < m.Len(); i++ {
		best := nearest(i)
		assign[i] = best
		touched[best] = true
	}
	if l.pacc == nil {
		l.pacc = vector.NewAccumulator(0)
		l.facc = vector.NewAccumulator(0)
	}
	members := cluster.Members(assign, k)
	for c := range touched {
		if len(members[c]) > 0 {
			// Pooled accumulators: the refresh used to allocate two
			// vocabulary-sized arrays per touched cluster per batch.
			centroids[c] = m.CentroidWith(members[c], l.pacc, l.facc)
		}
	}

	// The refresh moved centroids, so the drift scan needs a fresh index.
	nearest = l.nearestFn(m, centroids)
	moved := 0
	for i := 0; i < m.Len(); i++ {
		if nearest(i) != assign[i] {
			moved++
		}
	}
	drift := 0.0
	if m.Len() > 0 {
		drift = float64(moved) / float64(m.Len())
	}
	return cluster.Result{Assign: assign, K: k, Centroids: centroids}, drift
}

// nearestFn returns a closure mapping a point index to its nearest
// centroid over the given centroid set. When the model can index the
// centroids (compiled engine active, packed centroids) every call
// scores all k centroids through one postings pass into the reusable
// buffers — no allocations per point; otherwise it falls back to plain
// per-centroid Sim calls. Both paths compute identical similarities
// (the index is pinned bit-identical to Sim) and break ties toward the
// lowest centroid index, so assignments never depend on which path ran.
func (l *Live) nearestFn(m *icafc.Model, centroids []cluster.Point) func(i int) int {
	k := len(centroids)
	if ix := m.NewCentroidIndex(centroids); ix != nil {
		if cap(l.simsBuf) < k {
			l.simsBuf = make([]float64, k)
		}
		sims := l.simsBuf[:k]
		if n := ix.ScratchLen(); cap(l.scratchBuf) < n {
			l.scratchBuf = make([]float64, n)
		}
		scratch := l.scratchBuf[:ix.ScratchLen()]
		return func(i int) int {
			ix.Sims(sims, scratch, i)
			best, bestSim := 0, -1.0
			for c, sim := range sims {
				if sim > bestSim {
					best, bestSim = c, sim
				}
			}
			return best
		}
	}
	return func(i int) int {
		best, bestSim := 0, -1.0
		p := m.Point(i)
		for c := 0; c < k; c++ {
			if sim := m.Sim(p, centroids[c]); sim > bestSim {
				best, bestSim = c, sim
			}
		}
		return best
	}
}

// publish swaps the epoch pointer and notifies observers.
func (l *Live) publish(e *Epoch) {
	l.cur.Store(e)
	l.lastPublishNano.Store(time.Now().UnixNano())
	reg := l.cfg.Metrics
	reg.Gauge("stream_epoch").Set(float64(e.Seq))
	reg.Gauge("stream_corpus_pages").Set(float64(e.Model.Len()))
	if l.cfg.OnPublish != nil {
		l.cfg.OnPublish(e)
	}
}
