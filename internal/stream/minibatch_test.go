package stream

import "testing"

// liveEpoch drives two synchronous batches so the second epoch is a
// mini-batch extension over a real incremental model.
func liveEpoch(t testing.TB, seed int64, n int) (*Live, *Epoch) {
	t.Helper()
	docs := genDocs(t, seed, n)
	l := syncLive(Config{K: 4, Seed: 2, DriftThreshold: 2})
	l.apply(Record{Docs: docs[:n*3/4]}, false)
	l.apply(Record{Docs: docs[n*3/4:]}, false)
	e := l.cur.Load()
	if e == nil || e.Rebuilt {
		t.Fatal("second epoch should be a mini-batch extension")
	}
	return l, e
}

// TestNearestFnIndexedMatchesSimLoop pins the mini-batch scoring
// rewrite: the indexed closure must assign every corpus point to the
// same centroid as the plain per-centroid Sim loop it replaced.
func TestNearestFnIndexedMatchesSimLoop(t *testing.T) {
	l, e := liveEpoch(t, 13, 36)
	m, cents := e.Model, e.Result.Centroids
	if m.NewCentroidIndex(cents) == nil {
		t.Fatal("centroid index inactive on the live model")
	}
	nearest := l.nearestFn(m, cents)
	for i := 0; i < m.Len(); i++ {
		best, bestSim := 0, -1.0
		p := m.Point(i)
		for c := range cents {
			if sim := m.Sim(p, cents[c]); sim > bestSim {
				best, bestSim = c, sim
			}
		}
		if got := nearest(i); got != best {
			t.Errorf("point %d: indexed nearest = %d, Sim loop = %d", i, got, best)
		}
	}
}

// TestNearestFnZeroAlloc pins the steady-state mini-batch scoring loop
// at zero allocations per scored point.
func TestNearestFnZeroAlloc(t *testing.T) {
	l, e := liveEpoch(t, 12, 40)
	nearest := l.nearestFn(e.Model, e.Result.Centroids)
	nearest(0) // warm
	last := e.Model.Len() - 1
	allocs := testing.AllocsPerRun(100, func() {
		nearest(0)
		nearest(last)
	})
	if allocs != 0 {
		t.Errorf("indexed scoring allocates %v per point pair, want 0", allocs)
	}
}
