package stream

import (
	"testing"

	"cafc/internal/cluster"
	"cafc/internal/obs"
)

// liveEpoch drives two synchronous batches so the second epoch is a
// mini-batch extension over a real incremental model.
func liveEpoch(t testing.TB, seed int64, n int) (*Live, *Epoch) {
	t.Helper()
	docs := genDocs(t, seed, n)
	l := syncLive(Config{K: 4, Seed: 2, DriftThreshold: 2})
	l.apply(Record{Docs: docs[:n*3/4]}, false)
	l.apply(Record{Docs: docs[n*3/4:]}, false)
	e := l.cur.Load()
	if e == nil || e.Rebuilt {
		t.Fatal("second epoch should be a mini-batch extension")
	}
	return l, e
}

// TestNearestFnIndexedMatchesSimLoop pins the mini-batch scoring
// rewrite: the indexed closure must assign every corpus point to the
// same centroid as the plain per-centroid Sim loop it replaced.
func TestNearestFnIndexedMatchesSimLoop(t *testing.T) {
	l, e := liveEpoch(t, 13, 36)
	m, cents := e.Model, e.Result.Centroids
	if m.NewCentroidIndex(cents) == nil {
		t.Fatal("centroid index inactive on the live model")
	}
	nearest := l.nearestFn(m, cents)
	for i := 0; i < m.Len(); i++ {
		best, bestSim := 0, -1.0
		p := m.Point(i)
		for c := range cents {
			if sim := m.Sim(p, cents[c]); sim > bestSim {
				best, bestSim = c, sim
			}
		}
		if got := nearest(i); got != best {
			t.Errorf("point %d: indexed nearest = %d, Sim loop = %d", i, got, best)
		}
	}
}

// TestNearestFnZeroAlloc pins the steady-state mini-batch scoring loop
// at zero allocations per scored point.
func TestNearestFnZeroAlloc(t *testing.T) {
	l, e := liveEpoch(t, 12, 40)
	nearest := l.nearestFn(e.Model, e.Result.Centroids)
	nearest(0) // warm
	last := e.Model.Len() - 1
	allocs := testing.AllocsPerRun(100, func() {
		nearest(0)
		nearest(last)
	})
	if allocs != 0 {
		t.Errorf("indexed scoring allocates %v per point pair, want 0", allocs)
	}
}

// TestMiniBatchRebuild pins the sampled re-cluster path: with
// Config.MiniBatchRebuild set, a drift-triggered rebuild runs
// cluster.MiniBatchKMeans instead of full CAFC-C, covers every page,
// keeps all k clusters non-empty, and counts in
// minibatch_rebuild_total.
func TestMiniBatchRebuild(t *testing.T) {
	docs := genDocs(t, 10, 30)
	reg := obs.NewRegistry()
	l := syncLive(Config{
		K: 3, Seed: 1, DriftThreshold: -1,
		MiniBatchRebuild: &cluster.MiniBatch{BatchSize: 8, Rounds: 6},
		Metrics:          reg,
	})
	l.apply(Record{Docs: docs[:20]}, false)
	l.apply(Record{Docs: docs[20:]}, false)
	e := l.cur.Load()
	if !e.Rebuilt {
		t.Fatal("drift under a negative threshold must rebuild")
	}
	if len(e.Result.Assign) != 30 {
		t.Fatalf("rebuild assigned %d of 30 pages", len(e.Result.Assign))
	}
	for c, sz := range cluster.Sizes(e.Result.Assign, e.Result.K) {
		if sz == 0 {
			t.Errorf("cluster %d empty after mini-batch rebuild", c)
		}
	}
	var rebuilds float64
	for _, s := range reg.Snapshot() {
		if s.Name == "minibatch_rebuild_total" {
			rebuilds = s.Value
		}
	}
	if rebuilds == 0 {
		t.Error("minibatch_rebuild_total not incremented")
	}
}

// TestMiniBatchRebuildDeterministic: two Lives over the same document
// sequence and config publish identical epochs — the WAL-replay
// guarantee must survive the sampled rebuild path.
func TestMiniBatchRebuildDeterministic(t *testing.T) {
	docs := genDocs(t, 14, 30)
	run := func() []int {
		l := syncLive(Config{
			K: 3, Seed: 1, DriftThreshold: -1,
			MiniBatchRebuild: &cluster.MiniBatch{BatchSize: 8, Rounds: 6},
		})
		l.apply(Record{Docs: docs[:20]}, false)
		l.apply(Record{Docs: docs[20:]}, false)
		return l.cur.Load().Result.Assign
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("page %d assigned to %d then %d across identical replays", i, a[i], b[i])
		}
	}
}
