package stream

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cafc/internal/fault"
	"cafc/internal/obs"
)

// TestParallelIngestBitIdenticalEpochs is the pipeline-level fan-out
// contract: the same record sequence — batches, a forced rebuild, more
// batches — published through sharded parse/embed must be bit-identical
// to the serial reference for every worker count. Assignments,
// centroid bits, document order, and every compiled page vector are
// compared; this is what lets operators tune -ingest-workers without
// forking replica state.
func TestParallelIngestBitIdenticalEpochs(t *testing.T) {
	docs := genDocs(t, 14, 60)
	run := func(workers int) *Epoch {
		l := syncLive(Config{K: 4, Seed: 5, IngestWorkers: workers})
		l.apply(Record{Docs: docs[:24]}, false)
		l.apply(Record{Docs: docs[24:40]}, false)
		l.apply(Record{}, false) // forced rebuild marker
		l.apply(Record{Docs: docs[40:]}, false)
		return l.cur.Load()
	}
	ref := run(1)
	for _, workers := range []int{2, 3, 8} {
		got := run(workers)
		if got.Seq != ref.Seq || got.Model.Len() != ref.Model.Len() {
			t.Fatalf("workers=%d: epoch %d/%d pages, want %d/%d",
				workers, got.Seq, got.Model.Len(), ref.Seq, ref.Model.Len())
		}
		if !reflect.DeepEqual(got.Result.Assign, ref.Result.Assign) {
			t.Errorf("workers=%d: assignments differ from serial", workers)
		}
		if !reflect.DeepEqual(got.Result.Centroids, ref.Result.Centroids) {
			t.Errorf("workers=%d: centroid bits differ from serial", workers)
		}
		if !reflect.DeepEqual(got.Docs, ref.Docs) {
			t.Errorf("workers=%d: admitted document sequence differs from serial", workers)
		}
		for i := 0; i < ref.Model.Len(); i++ {
			if !reflect.DeepEqual(got.Model.Point(i), ref.Model.Point(i)) {
				t.Fatalf("workers=%d: compiled page %d differs from serial", workers, i)
			}
		}
	}
}

// TestGroupCommitStoreDurablePrefix pins the Store's group-commit
// accounting: buffered records are invisible to every read path until
// the commit, RecordCount counts durable records only, the pending cap
// triggers an inline commit, and the fsync/group-commit counters track
// real fsyncs, not appends.
func TestGroupCommitStoreDurablePrefix(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := obs.NewRegistry()
	s.Instrument(reg)
	s.SetGroupCommit(4)
	rec := func(i int) Record {
		return Record{Docs: []Doc{{URL: fmt.Sprintf("http://d/%d", i)}}}
	}

	for i := 0; i < 3; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.RecordCount() != 0 || s.Pending() != 3 {
		t.Fatalf("buffered: durable=%d pending=%d, want 0/3", s.RecordCount(), s.Pending())
	}
	if recs, err := s.Records(); err != nil || len(recs) != 0 {
		t.Fatalf("pending records leaked to disk before commit: %d (%v)", len(recs), err)
	}

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.RecordCount() != 3 || s.Pending() != 0 {
		t.Fatalf("after flush: durable=%d pending=%d, want 3/0", s.RecordCount(), s.Pending())
	}
	if recs, _ := s.Records(); len(recs) != 3 {
		t.Fatalf("durable records = %d, want 3", len(recs))
	}
	if got := obsCounter(t, reg, "wal_fsync_total"); got != 1 {
		t.Errorf("wal_fsync_total = %v, want 1 (one fsync for three records)", got)
	}
	if got := obsCounter(t, reg, "wal_group_commit_total"); got != 1 {
		t.Errorf("wal_group_commit_total = %v, want 1", got)
	}

	// The append that fills the window commits inline — backpressure.
	for i := 3; i < 7; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.RecordCount() != 7 || s.Pending() != 0 {
		t.Fatalf("cap commit: durable=%d pending=%d, want 7/0", s.RecordCount(), s.Pending())
	}
	if got := obsCounter(t, reg, "wal_fsync_total"); got != 2 {
		t.Errorf("wal_fsync_total = %v, want 2", got)
	}

	// An empty flush is free: no write, no fsync, no counter motion.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := obsCounter(t, reg, "wal_fsync_total"); got != 2 {
		t.Errorf("empty flush bumped wal_fsync_total to %v", got)
	}
}

// TestGroupCommitCloseDropsPending pins Close's crash semantics: the
// pending buffer is abandoned (those records were never acknowledged
// durable), later appends fail, and a reopen sees exactly the durable
// prefix.
func TestGroupCommitCloseDropsPending(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGroupCommit(100)
	rec := func(i int) Record {
		return Record{Docs: []Doc{{URL: fmt.Sprintf("http://d/%d", i)}}}
	}
	for i := 0; i < 2; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 5; i++ {
		if err := s.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", s.Pending())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(9)); err == nil {
		t.Fatal("append after Close succeeded")
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("reopened records = %d, want the 2 durable ones", len(recs))
	}
}

// TestGroupCommitCrashRecovery kills a live pipeline mid-group-commit
// and checks the whole durability story: a frozen fault.FakeClock keeps
// the commit window from ever elapsing, so records ingested after the
// last explicit flush sit in the pending buffer deterministically; the
// crash (Close) abandons them; recovery replays exactly the durable
// prefix and lands on the last fsynced epoch, bit for bit; and a
// follower bootstrapped from the same WAL converges to the same state
// with a byte-identical log.
func TestGroupCommitCrashRecovery(t *testing.T) {
	docs := genDocs(t, 13, 48)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	clk := fault.NewFakeClock() // never advanced: the window never elapses
	l := New(Config{
		K: 4, Seed: 3, BatchSize: 12, FlushInterval: 10 * time.Millisecond,
		Store: s, GroupCommit: 64, Clock: clk,
	}, nil, nil)

	for _, d := range docs[:24] {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "first half applied", func() bool {
		e := l.Current()
		return e != nil && len(e.Docs) == 24
	})
	// The queue is empty and the worker idle, so this flush is the last
	// fsync before the crash — everything after it stays pending.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	durable := s.RecordCount()
	want := l.Current()
	if durable == 0 || want.WALRecords != durable {
		t.Fatalf("flushed epoch reflects %d records, durable %d", want.WALRecords, durable)
	}

	for _, d := range docs[24:] {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "second half applied", func() bool {
		e := l.Current()
		return e != nil && len(e.Docs) == 48
	})
	if s.Pending() == 0 {
		t.Fatal("group commit did not buffer the post-flush records")
	}
	if got := s.RecordCount(); got != durable {
		t.Fatalf("durable count moved under a frozen clock: %d -> %d", durable, got)
	}
	l.Close() // crash: no drain, no snapshot — pending records die here
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != durable {
		t.Fatalf("recovered WAL has %d records, want the %d durable ones", len(recs), durable)
	}
	l2 := New(Config{K: 4, Seed: 3, Store: s2}, nil, recs)
	defer l2.Close()
	got := l2.Current()
	if got == nil || got.Seq != want.Seq || got.Model.Len() != want.Model.Len() {
		t.Fatalf("recovered epoch %+v, want seq %d with %d pages", got, want.Seq, want.Model.Len())
	}
	if !reflect.DeepEqual(got.Result.Assign, want.Result.Assign) {
		t.Errorf("recovery diverged from the last fsynced assignments")
	}
	if !reflect.DeepEqual(got.Result.Centroids, want.Result.Centroids) {
		t.Errorf("recovery diverged from the last fsynced centroid bits")
	}

	// Follower bootstrap from the same WAL: frames ship verbatim, the
	// manual pipeline applies them, and both logs end byte-identical.
	frames, total, err := TailWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != durable {
		t.Fatalf("leader WAL has %d frames, want %d", total, durable)
	}
	fdir := t.TempDir()
	fs, err := Open(fdir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f := NewManual(Config{K: 4, Seed: 3}, nil, nil)
	for _, fr := range frames {
		if err := fs.AppendFrame(fr); err != nil {
			t.Fatal(err)
		}
		if err := f.ApplyReplicated(fr.Rec); err != nil {
			t.Fatal(err)
		}
	}
	lb, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(fdir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, fb) {
		t.Fatalf("follower WAL (%d bytes) is not byte-identical to the leader's durable log (%d bytes)", len(fb), len(lb))
	}
	fe := f.Current()
	if fe == nil || fe.Seq != want.Seq {
		t.Fatalf("follower epoch %+v, want seq %d", fe, want.Seq)
	}
	if !reflect.DeepEqual(fe.Result.Assign, want.Result.Assign) ||
		!reflect.DeepEqual(fe.Result.Centroids, want.Result.Centroids) {
		t.Errorf("follower state diverged from the leader's last fsynced epoch")
	}
}

// TestIngestInstrumentationInert extends the observability contract to
// the ingest pipeline's new metrics: a registry-attached run is
// bit-identical to the nil-registry run, and the registry actually
// receives the parse-stage histogram (so the instrumentation cannot rot
// into a no-op).
func TestIngestInstrumentationInert(t *testing.T) {
	docs := genDocs(t, 15, 30)
	run := func(reg *obs.Registry) *Epoch {
		l := syncLive(Config{K: 3, Seed: 7, IngestWorkers: 4, Metrics: reg})
		l.apply(Record{Docs: docs[:18]}, false)
		l.apply(Record{Docs: docs[18:]}, false)
		return l.cur.Load()
	}
	plain := run(nil)
	reg := obs.NewRegistry()
	instr := run(reg)
	if !reflect.DeepEqual(plain.Result.Assign, instr.Result.Assign) ||
		!reflect.DeepEqual(plain.Result.Centroids, instr.Result.Centroids) {
		t.Error("instrumented ingest differs from the nil-registry run")
	}
	names := map[string]bool{}
	for _, s := range reg.Snapshot() {
		names[s.Name] = true
	}
	for _, n := range []string{"ingest_batch_parse_millis", "stream_ingest_batch_seconds"} {
		if !names[n] {
			t.Errorf("metric %s was never recorded", n)
		}
	}
}

// TestStatusSaturationFields smoke-checks the new Status fields: the
// resolved worker count, the pending-record gauge under group commit,
// and a busy fraction that lands in (0, 1].
func TestStatusSaturationFields(t *testing.T) {
	docs := genDocs(t, 16, 12)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetGroupCommit(100)
	l := syncLive(Config{K: 2, Seed: 1, IngestWorkers: 3, Store: s})
	l.startNano.Store(time.Now().UnixNano())
	l.apply(Record{Docs: docs}, false)
	st := l.Status()
	if st.IngestWorkers != 3 {
		t.Errorf("IngestWorkers = %d, want 3", st.IngestWorkers)
	}
	if st.WALPending != 1 {
		t.Errorf("WALPending = %d, want 1 buffered record", st.WALPending)
	}
	if st.IngestBusyFraction <= 0 || st.IngestBusyFraction > 1 {
		t.Errorf("IngestBusyFraction = %v, want in (0, 1]", st.IngestBusyFraction)
	}
}
