package stream

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func rec(urls ...string) Record {
	var r Record
	for _, u := range urls {
		r.Docs = append(r.Docs, Doc{URL: u, HTML: "<form action=q><input name=title></form>"})
	}
	return r
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{rec("http://a/"), rec("http://b/", "http://c/"), {}}
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.RecordCount(); n != 3 {
		t.Errorf("RecordCount = %d, want 3", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the records survive the process boundary, and the rebuild
	// marker round-trips as an empty record.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Records = %+v, want %+v", got, want)
	}
	if !got[2].IsRebuild() {
		t.Errorf("empty record should be a rebuild marker")
	}
	if s2.RecordCount() != 3 {
		t.Errorf("reopened RecordCount = %d", s2.RecordCount())
	}
}

func TestStoreTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("http://a/")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("http://b/")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: a frame header promising more bytes
	// than the file holds.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x01, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("torn tail: got %d records, want the 2 intact ones", len(got))
	}
}

func TestStoreCorruptFrameStopsScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("http://a/")); err != nil {
		t.Fatal(err)
	}
	end, _ := os.Stat(filepath.Join(dir, walName))
	if err := s.Append(rec("http://b/")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a payload byte of the second frame: the CRC must reject it and
	// the scan must stop at the last good record instead of decoding junk.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, end.Size()+8); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, end.Size()+8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Docs[0].URL != "http://a/" {
		t.Fatalf("corrupt frame: got %d records, want 1 intact prefix", len(got))
	}
}

func TestSnapshotAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.OpenSnapshot(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("OpenSnapshot on empty store: %v, want ErrNoSnapshot", err)
	}
	for _, payload := range []string{"first", "second"} {
		p := payload
		if err := s.WriteSnapshot(func(w io.Writer) error {
			_, err := io.WriteString(w, p)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		rc, err := s.OpenSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(rc)
		rc.Close()
		if string(got) != p {
			t.Errorf("snapshot = %q, want %q", got, p)
		}
	}
	// A failed write leaves the previous snapshot intact.
	if err := s.WriteSnapshot(func(w io.Writer) error {
		io.WriteString(w, "garbage")
		return errors.New("boom")
	}); err == nil {
		t.Fatal("want error from failing snapshot fn")
	}
	rc, err := s.OpenSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if string(got) != "second" {
		t.Errorf("failed snapshot clobbered the good one: %q", got)
	}
	if HasState(dir) != true {
		t.Errorf("HasState should see the snapshot")
	}
	if HasState(t.TempDir()) {
		t.Errorf("HasState on empty dir")
	}
}
