// Package stream turns the static CAFC pipeline into a live one: a
// bounded, backpressured ingest queue feeds a batch worker that grows
// the form-page model incrementally, assigns new pages to their nearest
// centroids, watches for assignment drift, and publishes each new model
// state as an immutable epoch behind an atomic pointer — so a serving
// process answers classification and directory queries lock-free while
// the next epoch builds.
//
// Durability is write-ahead: every ingested batch is framed into an
// append-only log before it is applied, and a versioned corpus snapshot
// records how many log records it already reflects. Recovery loads the
// snapshot and replays the tail through the exact same batch pipeline,
// which makes the post-recovery epoch equal to the pre-crash epoch (one
// epoch per applied record, deterministically).
package stream

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Doc is one raw page offered to the stream: its URL and HTML. The raw
// form (not the parsed one) goes into the WAL, so replay re-runs the
// same admission decisions the original ingest made.
type Doc struct {
	URL  string
	HTML string
}

// Record is one WAL entry: the documents of one ingested batch, exactly
// as they arrived (admitted or not). A record with no documents is a
// rebuild marker — it replays a forced full re-cluster.
type Record struct {
	Docs []Doc
}

// IsRebuild reports whether the record is a forced-rebuild marker.
func (r Record) IsRebuild() bool { return len(r.Docs) == 0 }

const (
	snapshotName = "snapshot.gob.gz"
	walName      = "wal.log"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNoSnapshot is returned by OpenSnapshot when the store has none.
var ErrNoSnapshot = errors.New("stream: no snapshot")

// HasState reports whether dir holds live-directory state (a WAL or a
// snapshot) — the fresh-start vs. recover decision.
func HasState(dir string) bool {
	for _, name := range []string{walName, snapshotName} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil && fi.Size() > 0 {
			return true
		}
	}
	return false
}

// Store is the durable home of one live directory: an append-only WAL
// of ingested batches plus the latest corpus snapshot, both under one
// directory. WAL frames are length-prefixed and checksummed
// individually (uvarint length, CRC-32C, gob payload), so a torn tail
// from a crash truncates cleanly instead of poisoning the stream.
type Store struct {
	dir string

	mu      sync.Mutex
	wal     *os.File
	records int64
}

// Open opens (creating if needed) the store directory and its WAL, and
// counts the intact records already present.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: open store: %w", err)
	}
	s := &Store{dir: dir}
	recs, err := s.Records()
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("stream: open wal: %w", err)
	}
	s.wal = f
	s.records = int64(len(recs))
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// RecordCount returns the number of intact WAL records (written plus
// pre-existing).
func (s *Store) RecordCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Append frames one record onto the WAL and syncs it to stable storage
// before returning, so an acknowledged batch survives a crash.
func (s *Store) Append(rec Record) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return fmt.Errorf("stream: wal encode: %w", err)
	}
	var frame bytes.Buffer
	var lenBuf [binary.MaxVarintLen64]byte
	frame.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(payload.Len()))])
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(payload.Bytes(), crcTable))
	frame.Write(crcBuf[:])
	frame.Write(payload.Bytes())

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("stream: store closed")
	}
	if _, err := s.wal.Write(frame.Bytes()); err != nil {
		return fmt.Errorf("stream: wal append: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("stream: wal sync: %w", err)
	}
	s.records++
	return nil
}

// Records reads every intact record from the start of the WAL. A torn
// or corrupt tail frame (crash mid-write) ends the scan silently: the
// intact prefix is the durable history, exactly as the sync protocol
// guarantees.
func (s *Store) Records() ([]Record, error) {
	f, err := os.Open(filepath.Join(s.dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("stream: read wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var out []Record
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return out, nil // clean EOF or torn length prefix
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return out, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return out, nil
		}
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(crcBuf[:]) {
			return out, nil // corrupt frame: stop at last good record
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return out, nil
		}
		out = append(out, rec)
	}
}

// WriteSnapshot atomically replaces the store's snapshot with whatever
// fn writes: the bytes land in a temp file first and are renamed into
// place, so a crash mid-snapshot leaves the previous snapshot intact.
func (s *Store) WriteSnapshot(fn func(io.Writer) error) error {
	tmp, err := os.CreateTemp(s.dir, snapshotName+".tmp*")
	if err != nil {
		return fmt.Errorf("stream: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := fn(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stream: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("stream: snapshot rename: %w", err)
	}
	return nil
}

// OpenSnapshot opens the current snapshot for reading, or ErrNoSnapshot
// when none has been written yet.
func (s *Store) OpenSnapshot() (io.ReadCloser, error) {
	f, err := os.Open(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoSnapshot
	}
	if err != nil {
		return nil, fmt.Errorf("stream: open snapshot: %w", err)
	}
	return f, nil
}

// Close closes the WAL handle. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
