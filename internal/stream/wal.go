// Package stream turns the static CAFC pipeline into a live one: a
// bounded, backpressured ingest queue feeds a batch worker that grows
// the form-page model incrementally, assigns new pages to their nearest
// centroids, watches for assignment drift, and publishes each new model
// state as an immutable epoch behind an atomic pointer — so a serving
// process answers classification and directory queries lock-free while
// the next epoch builds.
//
// Durability is write-ahead: every ingested batch is framed into an
// append-only log before it is applied, and a versioned corpus snapshot
// records how many log records it already reflects. Recovery loads the
// snapshot and replays the tail through the exact same batch pipeline,
// which makes the post-recovery epoch equal to the pre-crash epoch (one
// epoch per applied record, deterministically).
package stream

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"cafc/internal/obs"
)

// Doc is one raw page offered to the stream: its URL and HTML. The raw
// form (not the parsed one) goes into the WAL, so replay re-runs the
// same admission decisions the original ingest made.
type Doc struct {
	URL  string
	HTML string
}

// Record is one WAL entry: the documents of one ingested batch, exactly
// as they arrived (admitted or not). A record with no documents is a
// rebuild marker — it replays a forced full re-cluster.
type Record struct {
	Docs []Doc
}

// IsRebuild reports whether the record is a forced-rebuild marker.
func (r Record) IsRebuild() bool { return len(r.Docs) == 0 }

const (
	snapshotName = "snapshot.gob.gz"
	walName      = "wal.log"

	// maxFramePayload bounds one frame's gob payload (a length prefix
	// beyond it is treated as a torn frame, not an allocation request).
	maxFramePayload = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNoSnapshot is returned by OpenSnapshot when the store has none.
var ErrNoSnapshot = errors.New("stream: no snapshot")

// errTornFrame marks a truncated or corrupt frame. It never escapes the
// package's read APIs (scans stop at the last intact frame), but
// AppendFrame surfaces it when handed a damaged replication frame.
var errTornFrame = errors.New("stream: torn or corrupt WAL frame")

// Frame is one framed WAL record: the raw on-disk bytes (uvarint payload
// length, CRC-32C, gob payload — exactly as Append writes them) plus the
// decoded record. Replication ships Frames verbatim, so a follower's WAL
// is a byte-identical prefix copy of its leader's and the two sides
// share one recovery computation.
type Frame struct {
	Raw []byte
	Rec Record
}

// EncodeFrame frames one record exactly as Append writes it to disk.
func EncodeFrame(rec Record) (Frame, error) {
	var payload bytes.Buffer
	// Size the buffer up front: large-batch records carry megabytes of
	// document bytes, and letting the buffer double its way there churns
	// the allocator on the ingest hot path.
	hint := 64
	for _, d := range rec.Docs {
		hint += len(d.URL) + len(d.HTML) + 16
	}
	payload.Grow(hint)
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return Frame{}, fmt.Errorf("stream: wal encode: %w", err)
	}
	var frame bytes.Buffer
	frame.Grow(payload.Len() + binary.MaxVarintLen64 + 4)
	var lenBuf [binary.MaxVarintLen64]byte
	frame.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(payload.Len()))])
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(payload.Bytes(), crcTable))
	frame.Write(crcBuf[:])
	frame.Write(payload.Bytes())
	return Frame{Raw: frame.Bytes(), Rec: rec}, nil
}

// readFrame reads one frame off br, capturing its raw bytes. A clean end
// of input returns io.EOF; a truncated length prefix, short body, CRC
// mismatch or undecodable payload returns errTornFrame — callers stop at
// the last intact frame either way.
func readFrame(br *bufio.Reader) (Frame, error) {
	var raw []byte
	var n uint64
	var shift uint
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(raw) == 0 && err == io.EOF {
				return Frame{}, io.EOF
			}
			return Frame{}, errTornFrame
		}
		raw = append(raw, b)
		n |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		if shift += 7; shift > 63 {
			return Frame{}, errTornFrame
		}
	}
	if n > maxFramePayload {
		return Frame{}, errTornFrame
	}
	body := make([]byte, 4+n)
	if _, err := io.ReadFull(br, body); err != nil {
		return Frame{}, errTornFrame
	}
	raw = append(raw, body...)
	payload := body[4:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(body[:4]) {
		return Frame{}, errTornFrame
	}
	var rec Record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return Frame{}, errTornFrame
	}
	return Frame{Raw: raw, Rec: rec}, nil
}

// verifyFrame re-checks a frame's raw bytes (framing shape and CRC)
// without trusting the decoded record the sender attached.
func verifyFrame(raw []byte) error {
	f, err := readFrame(bufio.NewReader(bytes.NewReader(raw)))
	if err != nil {
		return errTornFrame
	}
	if len(f.Raw) != len(raw) {
		return errTornFrame // trailing garbage glued onto the frame
	}
	return nil
}

// DecodeFrames parses the intact frame prefix of buf — a replication
// response body. A torn or corrupt tail is dropped silently, mirroring
// how WAL recovery treats a crash-truncated log: the intact prefix is
// the usable history and the next fetch resumes past it.
func DecodeFrames(buf []byte) []Frame {
	br := bufio.NewReader(bytes.NewReader(buf))
	var out []Frame
	for {
		f, err := readFrame(br)
		if err != nil {
			return out
		}
		out = append(out, f)
	}
}

// TailWAL reads dir's WAL and returns its intact frames from record
// offset `from` on, plus the total intact record count — the read side
// of the replication stream. A missing WAL is an empty one. The scan is
// O(total) because frames are variable-length; at directory scale that
// is cheap, and the leader pays it per poll rather than holding an
// offset index that crash recovery would have to rebuild anyway.
func TailWAL(dir string, from int64) ([]Frame, int64, error) {
	f, err := os.Open(filepath.Join(dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("stream: read wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var out []Frame
	var total int64
	for {
		fr, err := readFrame(br)
		if err != nil {
			return out, total, nil // clean EOF or torn tail: stop at the durable prefix
		}
		if total >= from {
			out = append(out, fr)
		}
		total++
	}
}

// OpenSnapshotAt opens dir's current snapshot for reading without
// opening the WAL for writing — the replication server's read-only view
// of a store another process owns. ErrNoSnapshot when none exists.
func OpenSnapshotAt(dir string) (io.ReadCloser, error) {
	f, err := os.Open(filepath.Join(dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoSnapshot
	}
	if err != nil {
		return nil, fmt.Errorf("stream: open snapshot: %w", err)
	}
	return f, nil
}

// HasState reports whether dir holds live-directory state (a WAL or a
// snapshot) — the fresh-start vs. recover decision.
func HasState(dir string) bool {
	for _, name := range []string{walName, snapshotName} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil && fi.Size() > 0 {
			return true
		}
	}
	return false
}

// Store is the durable home of one live directory: an append-only WAL
// of ingested batches plus the latest corpus snapshot, both under one
// directory. WAL frames are length-prefixed and checksummed
// individually (uvarint length, CRC-32C, gob payload), so a torn tail
// from a crash truncates cleanly instead of poisoning the stream.
//
// Two durability modes. The default syncs every Append before returning
// — one fsync per record. Group-commit mode (SetGroupCommit) buffers
// encoded frames in memory and commits them — one Write of every
// pending frame plus one fsync — when the owner asks (RequestCommit /
// Flush) or the pending count hits the cap. Because pending frames
// never touch the file before their commit, every read path (TailWAL,
// Records, replication) sees exactly the durable prefix, and a crash
// simply loses the pending tail — the same truncation contract a torn
// tail has always had. RecordCount likewise counts durable records
// only, which is what keeps follower resume offsets (they re-fetch from
// the leader's durable count) from double-applying a buffered frame.
type Store struct {
	dir string

	// mu guards the WAL handle, the durable record count, and the
	// pending buffer. Never held across a disk write in group mode —
	// commits steal the pending slice and write under commitMu, so
	// Append stays non-blocking while an fsync is in flight (the
	// overlap that lets batch N+1 parse while batch N syncs).
	mu      sync.Mutex
	wal     *os.File
	records int64
	pending [][]byte
	// commitErr is the first commit failure, sticky: once buffered
	// frames have been dropped on the floor the log's append-only
	// contract is broken and every later append must fail loudly.
	commitErr error

	// commitMu serializes commits (steal → write → sync → account).
	commitMu sync.Mutex

	// groupMax, kick, quit, done belong to group-commit mode; all are
	// set once in SetGroupCommit before concurrent use.
	groupMax int
	kick     chan struct{}
	quit     chan struct{}
	done     chan struct{}

	// reg receives wal_fsync_total / wal_group_commit_total /
	// wal_pending_records. Nil (the default) is inert.
	reg *obs.Registry
}

// Open opens (creating if needed) the store directory and its WAL, and
// counts the intact records already present.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: open store: %w", err)
	}
	s := &Store{dir: dir}
	recs, err := s.Records()
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("stream: open wal: %w", err)
	}
	s.wal = f
	s.records = int64(len(recs))
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Instrument attaches a metrics registry: wal_fsync_total counts every
// fsync on the log, wal_group_commit_total every multi-record commit,
// wal_pending_records the buffered (not yet durable) record count. Nil
// — and never calling Instrument — is inert. Call before concurrent
// use.
func (s *Store) Instrument(reg *obs.Registry) { s.reg = reg }

// SetGroupCommit switches the store into group-commit mode with the
// given pending-record cap and starts the background committer that
// serves RequestCommit kicks. max <= 0 keeps the default
// sync-per-append mode. Call once, before concurrent use, and only on
// a store whose owner drives the commit policy (the live worker);
// follower stores must stay in the default mode so their durable count
// — the replication resume offset — never lags what they acknowledged.
func (s *Store) SetGroupCommit(max int) {
	if max <= 0 || s.kick != nil {
		return
	}
	s.groupMax = max
	s.kick = make(chan struct{}, 1)
	s.quit = make(chan struct{})
	s.done = make(chan struct{})
	kick, quit, done := s.kick, s.quit, s.done
	go func() {
		defer close(done)
		for {
			select {
			case <-quit:
				return
			case <-kick:
				// Errors are sticky in commitErr and surface on the next
				// Append/Flush; the committer itself has no caller to tell.
				s.Flush() //nolint:errcheck
			}
		}
	}()
}

// GroupCommit reports the pending-record cap (0 = sync per append).
func (s *Store) GroupCommit() int { return s.groupMax }

// RecordCount returns the number of durable (fsynced) WAL records. In
// group-commit mode, buffered-but-uncommitted records are excluded —
// see Pending.
func (s *Store) RecordCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Pending returns the number of records buffered but not yet durable.
// Always 0 outside group-commit mode.
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// RequestCommit asks the background committer to commit the pending
// buffer — non-blocking, coalescing: a kick while one is queued is
// absorbed. No-op outside group-commit mode.
func (s *Store) RequestCommit() {
	if s.kick == nil {
		return
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Flush synchronously commits every pending record: one write of the
// concatenated frames, one fsync. A no-op (nil) when nothing is
// pending. Returns the sticky commit error once one has occurred.
func (s *Store) Flush() error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()

	s.mu.Lock()
	if s.commitErr != nil {
		err := s.commitErr
		s.mu.Unlock()
		return err
	}
	batch := s.pending
	s.pending = nil
	wal := s.wal
	s.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	if wal == nil {
		s.mu.Lock()
		s.commitErr = errors.New("stream: store closed with pending records")
		err := s.commitErr
		s.mu.Unlock()
		return err
	}

	var err error
	for _, raw := range batch {
		if _, err = wal.Write(raw); err != nil {
			break
		}
	}
	if err == nil {
		err = wal.Sync()
	}

	s.mu.Lock()
	if err != nil {
		s.commitErr = fmt.Errorf("stream: wal group commit: %w", err)
		err = s.commitErr
	} else {
		s.records += int64(len(batch))
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.reg.Counter("wal_fsync_total").Inc()
	if len(batch) > 1 {
		s.reg.Counter("wal_group_commit_total").Inc()
	}
	s.notePending()
	return nil
}

// notePending refreshes the pending-records gauge.
func (s *Store) notePending() {
	if s.reg == nil {
		return
	}
	s.reg.Gauge("wal_pending_records").Set(float64(s.Pending()))
}

// Append frames one record onto the WAL and syncs it to stable storage
// before returning, so an acknowledged batch survives a crash.
func (s *Store) Append(rec Record) error {
	f, err := EncodeFrame(rec)
	if err != nil {
		return err
	}
	return s.appendRaw(f.Raw)
}

// AppendFrame appends a replicated frame's raw bytes verbatim — the
// follower half of the replication invariant (its WAL stays a
// byte-identical prefix copy of the leader's). The framing and CRC are
// re-verified first, so a frame damaged in transit is rejected whole
// rather than poisoning the local log.
func (s *Store) AppendFrame(f Frame) error {
	if err := verifyFrame(f.Raw); err != nil {
		return err
	}
	return s.appendRaw(f.Raw)
}

// appendRaw accepts one already-framed record: in the default mode it
// writes and syncs inline; in group-commit mode it buffers the frame
// and, at the pending cap, commits inline — the natural backpressure
// point (an ingest batch that fills the window pays for the fsync it
// triggered).
func (s *Store) appendRaw(raw []byte) error {
	s.mu.Lock()
	if s.wal == nil {
		s.mu.Unlock()
		return errors.New("stream: store closed")
	}
	if s.commitErr != nil {
		err := s.commitErr
		s.mu.Unlock()
		return err
	}
	if s.groupMax <= 0 {
		defer s.mu.Unlock()
		if _, err := s.wal.Write(raw); err != nil {
			return fmt.Errorf("stream: wal append: %w", err)
		}
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("stream: wal sync: %w", err)
		}
		s.records++
		s.reg.Counter("wal_fsync_total").Inc()
		return nil
	}
	s.pending = append(s.pending, raw)
	n := len(s.pending)
	s.mu.Unlock()
	s.notePending()
	if n >= s.groupMax {
		return s.Flush()
	}
	return nil
}

// Records reads every intact record from the start of the WAL. A torn
// or corrupt tail frame (crash mid-write) ends the scan silently: the
// intact prefix is the durable history, exactly as the sync protocol
// guarantees.
func (s *Store) Records() ([]Record, error) {
	frames, _, err := TailWAL(s.dir, 0)
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(frames))
	for i, f := range frames {
		out[i] = f.Rec
	}
	return out, nil
}

// WriteSnapshot atomically replaces the store's snapshot with whatever
// fn writes: the bytes land in a temp file first and are renamed into
// place, so a crash mid-snapshot leaves the previous snapshot intact.
// Pending group-commit records are flushed first, so a snapshot's WAL
// offset never runs ahead of the durable log (recovery additionally
// clamps the offset, but a snapshot that references records a crash
// could erase must not be the normal case).
func (s *Store) WriteSnapshot(fn func(io.Writer) error) error {
	if err := s.Flush(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, snapshotName+".tmp*")
	if err != nil {
		return fmt.Errorf("stream: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := fn(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stream: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("stream: snapshot rename: %w", err)
	}
	return nil
}

// OpenSnapshot opens the current snapshot for reading, or ErrNoSnapshot
// when none has been written yet.
func (s *Store) OpenSnapshot() (io.ReadCloser, error) {
	f, err := os.Open(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoSnapshot
	}
	if err != nil {
		return nil, fmt.Errorf("stream: open snapshot: %w", err)
	}
	return f, nil
}

// Close closes the WAL handle. Appends after Close fail. In
// group-commit mode Close deliberately does NOT flush the pending
// buffer — Close is the crash-semantics teardown (the recovery tests
// lean on it), and unflushed records were never promised durable.
// Graceful shutdown reaches durability through the worker's drain path
// (which flushes before the final snapshot), not through Close.
func (s *Store) Close() error {
	s.mu.Lock()
	quit := s.quit
	s.quit = nil
	s.mu.Unlock()
	if quit != nil {
		close(quit)
		<-s.done
	}
	// Taking commitMu keeps an in-flight commit's write+sync from racing
	// the handle close.
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = nil
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
