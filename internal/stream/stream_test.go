package stream

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"cafc/internal/obs"
	"cafc/internal/webgen"
)

// genDocs builds n searchable form-page documents from the synthetic
// web generator.
func genDocs(t testing.TB, seed int64, n int) []Doc {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
	docs := make([]Doc, 0, n)
	for _, u := range c.FormPages {
		docs = append(docs, Doc{URL: u, HTML: c.ByURL[u].HTML})
	}
	return docs
}

// syncLive builds a Live whose worker never runs — tests drive apply()
// directly for deterministic single-threaded pipeline checks.
func syncLive(cfg Config) *Live {
	cfg = cfg.withDefaults()
	return &Live{
		cfg:   cfg,
		queue: make(chan Doc, cfg.QueueSize),
		stop:  make(chan struct{}),
		force: make(chan struct{}, 1),
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestColdStartPublishesEpochs(t *testing.T) {
	docs := genDocs(t, 7, 24)
	reg := obs.NewRegistry()
	l := New(Config{K: 4, BatchSize: 8, FlushInterval: 10 * time.Millisecond, Metrics: reg}, nil, nil)

	if l.Current() != nil {
		t.Fatal("cold start should have no epoch before the first batch")
	}
	for _, d := range docs {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "all docs applied", func() bool {
		e := l.Current()
		return e != nil && e.Model.Len() == len(docs)
	})
	e := l.Current()
	if e.Seq < 1 {
		t.Errorf("epoch = %d, want >= 1", e.Seq)
	}
	if !e.Rebuilt && e.Seq == 1 {
		t.Errorf("founding epoch must be a full build")
	}
	if got := len(e.Docs); got != len(docs) {
		t.Errorf("epoch docs = %d, want %d", got, len(docs))
	}
	if e.Result.K == 0 || len(e.Result.Assign) != len(docs) {
		t.Errorf("clustering missing: K=%d assign=%d", e.Result.K, len(e.Result.Assign))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := l.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Ingest(docs[0]); !errors.Is(err, ErrDraining) {
		t.Errorf("Ingest after Drain = %v, want ErrDraining", err)
	}
	s := l.Status()
	if s.Ingested != int64(len(docs)) || !s.Draining {
		t.Errorf("status after drain: %+v", s)
	}
}

func TestDrainFlushesQueuedDocs(t *testing.T) {
	docs := genDocs(t, 8, 16)
	// An hour-long flush interval: only the drain path can flush these.
	l := New(Config{K: 2, BatchSize: 1024, FlushInterval: time.Hour}, nil, nil)
	for _, d := range docs {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := l.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	e := l.Current()
	if e == nil || e.Model.Len() != len(docs) {
		t.Fatalf("drain lost queued docs: %+v", l.Status())
	}
}

func TestBacklogBackpressure(t *testing.T) {
	l := syncLive(Config{K: 2, QueueSize: 1})
	if err := l.Ingest(Doc{URL: "http://a/"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Ingest(Doc{URL: "http://b/"}); !errors.Is(err, ErrBacklog) {
		t.Fatalf("full queue: %v, want ErrBacklog", err)
	}
	if s := l.Status(); s.Rejected != 1 || s.QueueDepth != 1 {
		t.Errorf("status = %+v", s)
	}
}

func TestApplyDeterminism(t *testing.T) {
	docs := genDocs(t, 9, 40)
	run := func() *Epoch {
		l := syncLive(Config{K: 4, Seed: 5})
		l.apply(Record{Docs: docs[:20]}, false)
		l.apply(Record{Docs: docs[20:32]}, false)
		l.apply(Record{}, false) // forced rebuild marker
		l.apply(Record{Docs: docs[32:]}, false)
		return l.cur.Load()
	}
	a, b := run(), run()
	if a.Seq != b.Seq || a.Seq != 4 {
		t.Fatalf("seqs %d vs %d, want 4 (one epoch per record)", a.Seq, b.Seq)
	}
	if !reflect.DeepEqual(a.Result.Assign, b.Result.Assign) {
		t.Errorf("same records, different assignments")
	}
	if !reflect.DeepEqual(a.Result.Centroids, b.Result.Centroids) {
		// Bit-identical centroids, not just assignments: replication's
		// exact-recovery discipline compares follower state to leader
		// state field for field, so any nondeterminism here (e.g. the
		// map-order dictionary interning Compile used to do) is a bug.
		t.Errorf("same records, different centroid bits")
	}
	if a.Model.Len() != len(docs) {
		t.Errorf("pages = %d, want %d", a.Model.Len(), len(docs))
	}
}

func TestDriftTriggersRebuild(t *testing.T) {
	docs := genDocs(t, 10, 30)
	// A negative threshold makes every mini-batch drift check fire — the
	// deterministic way to exercise the rebuild path.
	l := syncLive(Config{K: 3, Seed: 1, DriftThreshold: -1})
	l.apply(Record{Docs: docs[:20]}, false)
	if e := l.cur.Load(); !e.Rebuilt {
		t.Fatal("founding epoch should be a full build")
	}
	l.apply(Record{Docs: docs[20:]}, false)
	e := l.cur.Load()
	if !e.Rebuilt {
		t.Error("drift over threshold must rebuild")
	}
	if l.rebuilds.Load() != 1 {
		t.Errorf("rebuilds = %d, want 1", l.rebuilds.Load())
	}

	// Disabled drift (>= 1) keeps the mini-batch assignment.
	l2 := syncLive(Config{K: 3, Seed: 1, DriftThreshold: 2})
	l2.apply(Record{Docs: docs[:20]}, false)
	l2.apply(Record{Docs: docs[20:]}, false)
	if e := l2.cur.Load(); e.Rebuilt {
		t.Error("drift disabled: second epoch must be a mini-batch")
	}
	if len(l2.cur.Load().Result.Assign) != 30 {
		t.Errorf("mini-batch assignment incomplete")
	}
}

func TestWALReplayReachesSameEpoch(t *testing.T) {
	docs := genDocs(t, 11, 36)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 4, Seed: 3, Store: s}
	l := syncLive(cfg)
	l.apply(Record{Docs: docs[:12]}, false)
	l.apply(Record{Docs: docs[12:24]}, false)
	l.apply(Record{}, false) // forced rebuild, WAL-logged as marker
	l.apply(Record{Docs: docs[24:]}, false)
	want := l.cur.Load()
	if want.Seq != 4 || want.WALRecords != 4 {
		t.Fatalf("pre-crash epoch %d / %d WAL records, want 4/4", want.Seq, want.WALRecords)
	}
	s.Close() // crash: no snapshot was ever written

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("WAL records = %d, want 4", len(recs))
	}
	reg := obs.NewRegistry()
	cfg2 := Config{K: 4, Seed: 3, Store: s2, Metrics: reg}
	l2 := New(cfg2, nil, recs)
	defer l2.Close()
	got := l2.Current()
	if got == nil || got.Seq != want.Seq {
		t.Fatalf("replayed epoch = %+v, want seq %d", got, want.Seq)
	}
	if !reflect.DeepEqual(got.Result.Assign, want.Result.Assign) {
		t.Errorf("replay diverged from the original assignments")
	}
	if got.Model.Len() != want.Model.Len() {
		t.Errorf("replay pages %d vs %d", got.Model.Len(), want.Model.Len())
	}
	snap := obsCounter(t, reg, "stream_replayed_records_total")
	if snap != 4 {
		t.Errorf("stream_replayed_records_total = %v, want 4", snap)
	}
}

// obsCounter reads a counter value from a registry snapshot.
func obsCounter(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

// TestEpochDocsAppendOnly pins the Docs invariant incremental consumers
// (the search index) build on: every published epoch's Docs slice is a
// strict prefix-extension of the previous epoch's — no reordering, no
// drops — across mini-batch epochs and forced-rebuild epochs alike.
func TestEpochDocsAppendOnly(t *testing.T) {
	docs := genDocs(t, 11, 48)
	var mu sync.Mutex
	var published []*Epoch
	l := New(Config{
		K: 4, BatchSize: 8, FlushInterval: 10 * time.Millisecond,
		OnPublish: func(e *Epoch) {
			mu.Lock()
			published = append(published, e)
			mu.Unlock()
		},
	}, nil, nil)

	half := len(docs) / 2
	for _, d := range docs[:half] {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "first half applied", func() bool {
		e := l.Current()
		return e != nil && len(e.Docs) == half
	})
	if err := l.ForceRebuild(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "rebuild landed", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range published {
			if e.Rebuilt && len(e.Docs) == half {
				return true
			}
		}
		return false
	})
	for _, d := range docs[half:] {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := l.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(published) < 3 {
		t.Fatalf("only %d epochs published, want batches + a rebuild", len(published))
	}
	sawRebuild := false
	for i := 1; i < len(published); i++ {
		prev, cur := published[i-1], published[i]
		if len(cur.Docs) < len(prev.Docs) {
			t.Fatalf("epoch %d shrank Docs: %d -> %d", cur.Seq, len(prev.Docs), len(cur.Docs))
		}
		for j, d := range prev.Docs {
			if cur.Docs[j].URL != d.URL {
				t.Fatalf("epoch %d (rebuilt=%v) reordered Docs at %d: %q -> %q",
					cur.Seq, cur.Rebuilt, j, d.URL, cur.Docs[j].URL)
			}
		}
		sawRebuild = sawRebuild || cur.Rebuilt
	}
	if !sawRebuild {
		t.Fatal("no rebuild epoch published; the invariant was not exercised across a rebuild")
	}
	last := published[len(published)-1]
	if len(last.Docs) != len(docs) {
		t.Fatalf("final epoch has %d docs, want %d", len(last.Docs), len(docs))
	}
}
