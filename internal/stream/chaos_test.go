package stream

import (
	"testing"

	"cafc/internal/fault"
	"cafc/internal/obs"
	"cafc/internal/webgen"
)

// TestIngestUnderFaultyFetch feeds the pipeline from a flaky document
// source: ~20% of fetches fail with injected errors. The stream must
// absorb every successful fetch and publish a consistent epoch — a
// lossy crawler is the normal operating mode for a live directory, not
// an exception.
func TestIngestUnderFaultyFetch(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 13, FormPages: 40})
	in := fault.New(fault.Plan{Seed: 13, ErrorRate: 0.2}, nil)
	fetch := in.WrapFetch(func(u string) (string, error) {
		return c.ByURL[u].HTML, nil
	})

	l := syncLive(Config{K: 4, Seed: 2})
	fetched := 0
	for _, u := range c.FormPages {
		html, err := fetch(u)
		if err != nil {
			continue // the crawler would retry or skip; the stream never sees it
		}
		fetched++
		l.apply(Record{Docs: []Doc{{URL: u, HTML: html}}}, false)
	}
	st := in.Stats()
	if st.Errors == 0 {
		t.Fatalf("fault plan injected nothing (stats %+v) — test is vacuous", st)
	}
	if fetched+st.Errors != len(c.FormPages) {
		t.Fatalf("accounting: %d fetched + %d failed != %d", fetched, st.Errors, len(c.FormPages))
	}
	e := l.cur.Load()
	if e == nil || e.Model.Len() != fetched {
		t.Fatalf("epoch pages = %v, want %d (every successful fetch)", e, fetched)
	}
	if int(e.Seq) != fetched {
		t.Errorf("epoch seq = %d, want %d (one record per applied doc)", e.Seq, fetched)
	}
	if len(e.Result.Assign) != fetched {
		t.Errorf("assignments = %d, want %d", len(e.Result.Assign), fetched)
	}
}

// TestWALFailureDegrades kills the WAL under a live pipeline: appends
// fail, the failure is counted, and the stream keeps applying batches in
// memory — durability degrades, serving does not.
func TestWALFailureDegrades(t *testing.T) {
	docs := genDocs(t, 14, 16)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	l := syncLive(Config{K: 2, Seed: 1, Store: s, Metrics: reg})
	l.apply(Record{Docs: docs[:8]}, false)
	if got := l.cur.Load(); got == nil || got.Seq != 1 {
		t.Fatalf("healthy WAL batch should publish epoch 1")
	}

	s.Close() // the disk goes away

	l.apply(Record{Docs: docs[8:]}, false)
	e := l.cur.Load()
	if e == nil || e.Seq != 2 || e.Model.Len() != len(docs) {
		t.Fatalf("WAL death must not stop publishing: %+v", l.Status())
	}
	if l.walErrors.Load() != 1 {
		t.Errorf("walErrors = %d, want 1", l.walErrors.Load())
	}
	if got := obsCounter(t, reg, "stream_wal_errors_total"); got != 1 {
		t.Errorf("stream_wal_errors_total = %v, want 1", got)
	}

	// Recovery from the surviving WAL prefix still works: it replays the
	// first batch (the durable history).
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("surviving WAL records = %d, want 1", len(recs))
	}
	l2 := New(Config{K: 2, Seed: 1}, nil, recs)
	defer l2.Close()
	if got := l2.Current(); got == nil || got.Model.Len() != 8 {
		t.Errorf("recovery from surviving prefix failed: %+v", got)
	}
	if err := s.Append(Record{}); err == nil {
		t.Errorf("append on closed store must error")
	}
}
