package stream

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden WAL fixture")

// goldenRecords is the fixed record sequence behind the byte-pinned
// fixture: two document batches and a rebuild marker. The HTML is
// hand-written (not generator output) so the fixture only changes when
// the framing or the gob schema of Record changes — which is exactly
// the protocol drift this test exists to catch.
func goldenRecords() []Record {
	return []Record{
		{Docs: []Doc{
			{URL: "http://a.example/q", HTML: `<form action="/s"><input type="text" name="title"/></form>`},
			{URL: "http://b.example/q", HTML: `<form action="/s"><input type="text" name="author"/></form>`},
		}},
		{Docs: []Doc{
			{URL: "http://c.example/q", HTML: `<form action="/find"><input type="text" name="isbn"/></form>`},
		}},
		{}, // rebuild marker
	}
}

const goldenPath = "testdata/wal_golden.log"

// TestGoldenWALFraming pins the replication wire format to the on-disk
// WAL format, byte for byte. The same fixture is checked three ways:
// EncodeFrame output (what replication ships), Store.Append output
// (what the leader writes), and a hand-rolled parse of the spec
// (uvarint payload length, 4-byte little-endian CRC-32C, gob payload)
// — so the stream cannot drift from the log, and neither can drift
// from the documented framing, without this fixture failing.
func TestGoldenWALFraming(t *testing.T) {
	recs := goldenRecords()
	var want bytes.Buffer
	for _, rec := range recs {
		f, err := EncodeFrame(rec)
		if err != nil {
			t.Fatal(err)
		}
		want.Write(f.Raw)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, want.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read fixture (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(golden, want.Bytes()) {
		t.Fatalf("EncodeFrame output drifted from the golden fixture (%d vs %d bytes); the replication wire format changed", want.Len(), len(golden))
	}

	// On-disk framing: Append must write the same bytes the replication
	// stream ships.
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	onDisk, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, golden) {
		t.Fatal("Store.Append bytes differ from the golden fixture: on-disk WAL framing drifted from the replication stream framing")
	}

	// TailWAL must hand back raw frames whose concatenation is the file.
	frames, total, err := TailWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(len(recs)) || len(frames) != len(recs) {
		t.Fatalf("TailWAL = %d frames / %d total, want %d", len(frames), total, len(recs))
	}
	var cat bytes.Buffer
	for _, f := range frames {
		cat.Write(f.Raw)
	}
	if !bytes.Equal(cat.Bytes(), golden) {
		t.Fatal("TailWAL raw frames do not reassemble the golden fixture")
	}

	// Hand-parse against the documented spec, independent of the
	// package's own reader.
	buf := golden
	for i, rec := range recs {
		n, sz := binary.Uvarint(buf)
		if sz <= 0 {
			t.Fatalf("frame %d: bad uvarint length prefix", i)
		}
		buf = buf[sz:]
		crc := binary.LittleEndian.Uint32(buf[:4])
		payload := buf[4 : 4+n]
		if got := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)); got != crc {
			t.Fatalf("frame %d: CRC-32C mismatch", i)
		}
		var got Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&got); err != nil {
			t.Fatalf("frame %d: gob decode: %v", i, err)
		}
		if len(got.Docs) != len(rec.Docs) {
			t.Fatalf("frame %d: decoded %d docs, want %d", i, len(got.Docs), len(rec.Docs))
		}
		for j := range got.Docs {
			if got.Docs[j] != rec.Docs[j] {
				t.Fatalf("frame %d doc %d: decoded %+v, want %+v", i, j, got.Docs[j], rec.Docs[j])
			}
		}
		buf = buf[4+n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after the last frame", len(buf))
	}
}

// TestDecodeFramesTornTail pins the torn-tail contract of the wire
// decoder: a body cut anywhere mid-frame yields exactly the intact
// prefix, never an error and never a partial record.
func TestDecodeFramesTornTail(t *testing.T) {
	recs := goldenRecords()
	var full bytes.Buffer
	ends := make([]int, len(recs))
	for i, rec := range recs {
		f, err := EncodeFrame(rec)
		if err != nil {
			t.Fatal(err)
		}
		full.Write(f.Raw)
		ends[i] = full.Len()
	}
	for cut := 0; cut <= full.Len(); cut++ {
		got := DecodeFrames(full.Bytes()[:cut])
		wantN := 0
		for _, end := range ends {
			if cut >= end {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Fatalf("cut at %d: decoded %d frames, want %d", cut, len(got), wantN)
		}
	}

	// A flipped byte inside a frame must also stop the scan at the
	// preceding frame boundary.
	corrupt := append([]byte(nil), full.Bytes()...)
	corrupt[ends[0]+7] ^= 0xff
	if got := DecodeFrames(corrupt); len(got) != 1 {
		t.Fatalf("corrupt second frame: decoded %d frames, want 1", len(got))
	}
}
