package vector

// Dict interns term strings to dense uint32 IDs so vectors can be packed
// into parallel slices and compared without touching a map. IDs are
// assigned in first-seen order and never reused; a Dict only grows.
//
// A Dict is not safe for concurrent mutation. The intended protocol is
// compile-then-cluster: intern every corpus term up front (single
// goroutine), then share the Dict read-only across the parallel kernels.
type Dict struct {
	ids   map[string]uint32
	terms []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// Intern returns the ID of t, assigning the next free ID if t is new.
func (d *Dict) Intern(t string) uint32 {
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := uint32(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	return id
}

// ID returns the ID of t and whether it has been interned.
func (d *Dict) ID(t string) (uint32, bool) {
	id, ok := d.ids[t]
	return id, ok
}

// Term returns the string for an ID. IDs outside [0, Len) return "".
func (d *Dict) Term(id uint32) string {
	if int(id) >= len(d.terms) {
		return ""
	}
	return d.terms[id]
}

// Len returns the number of interned terms (and the smallest unused ID).
func (d *Dict) Len() int { return len(d.terms) }

// Clone returns an independent copy of the dictionary with identical
// ID assignments. Because IDs are append-only, vectors compiled against
// the original remain valid against the clone (and vice versa up to the
// clone point) — this is what lets an epoch keep serving a frozen Dict
// while the next epoch's builder interns new terms into its own copy.
func (d *Dict) Clone() *Dict {
	ids := make(map[string]uint32, len(d.ids))
	for t, id := range d.ids {
		ids[t] = id
	}
	return &Dict{ids: ids, terms: append([]string(nil), d.terms...)}
}
