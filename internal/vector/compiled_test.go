package vector

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomCorpus builds n random sparse vectors over a vocabulary of v
// terms, with up to nnz non-zero terms each. Weights are uniform in
// (0, 10); a few vectors are left empty to cover the zero-norm path.
func randomCorpus(rng *rand.Rand, n, v, nnz int) []Vector {
	out := make([]Vector, n)
	for i := range out {
		vec := New()
		if i%17 != 3 { // every 17th vector stays empty
			for t := 0; t < 1+rng.Intn(nnz); t++ {
				vec[fmt.Sprintf("t%d", rng.Intn(v))] = rng.Float64() * 10
			}
		}
		out[i] = vec
	}
	return out
}

func TestDictInternLookup(t *testing.T) {
	d := NewDict()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a == b {
		t.Fatal("distinct terms shared an ID")
	}
	if got := d.Intern("alpha"); got != a {
		t.Errorf("re-intern changed ID: %d != %d", got, a)
	}
	if id, ok := d.ID("beta"); !ok || id != b {
		t.Errorf("ID(beta) = %d, %v", id, ok)
	}
	if _, ok := d.ID("gamma"); ok {
		t.Error("unknown term reported as interned")
	}
	if d.Term(a) != "alpha" || d.Term(b) != "beta" {
		t.Error("Term does not invert Intern")
	}
	if d.Term(99) != "" {
		t.Error("out-of-range Term should be empty")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
}

// TestCompiledAgreesWithMaps is the property test the packed engine is
// held to: over seeded random corpora, Dot, Cosine, norms and centroids
// computed on packed vectors agree with the map implementations within
// 1e-12.
func TestCompiledAgreesWithMaps(t *testing.T) {
	const tol = 1e-12
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vecs := randomCorpus(rng, 40, 200, 30)
		d := NewDict()
		packed := make([]Compiled, len(vecs))
		for i, v := range vecs {
			packed[i] = Compile(v, d)
		}
		for i := range vecs {
			if got, want := packed[i].Norm, vecs[i].Norm(); math.Abs(got-want) > tol {
				t.Fatalf("seed %d: norm[%d] = %g, map %g", seed, i, got, want)
			}
			for j := i; j < len(vecs); j++ {
				if got, want := packed[i].Dot(packed[j]), vecs[i].Dot(vecs[j]); math.Abs(got-want) > tol {
					t.Fatalf("seed %d: dot(%d,%d) = %g, map %g", seed, i, j, got, want)
				}
				if got, want := CosineCompiled(packed[i], packed[j]), Cosine(vecs[i], vecs[j]); math.Abs(got-want) > tol {
					t.Fatalf("seed %d: cosine(%d,%d) = %g, map %g", seed, i, j, got, want)
				}
			}
		}
		// Centroids over random member subsets.
		acc := NewAccumulator(d.Len())
		for trial := 0; trial < 10; trial++ {
			var members []Compiled
			var mapMembers []Vector
			for i := range vecs {
				if rng.Intn(2) == 0 {
					members = append(members, packed[i])
					mapMembers = append(mapMembers, vecs[i])
				}
			}
			got := CentroidCompiled(members, acc).Decompile(d)
			want := Centroid(mapMembers)
			if got.Len() != want.Len() {
				t.Fatalf("seed %d: centroid nnz %d != %d", seed, got.Len(), want.Len())
			}
			for term, w := range want {
				if math.Abs(got[term]-w) > tol {
					t.Fatalf("seed %d: centroid[%s] = %g, map %g", seed, term, got[term], w)
				}
			}
		}
	}
}

func TestCompileDecompileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDict()
	for _, v := range randomCorpus(rng, 20, 100, 20) {
		c := Compile(v, d)
		back := c.Decompile(d)
		if len(back) != len(v) {
			t.Fatalf("round trip changed nnz: %d != %d", len(back), len(v))
		}
		for term, w := range v {
			if back[term] != w {
				t.Fatalf("round trip changed weight of %q: %g != %g", term, back[term], w)
			}
		}
		// IDs must come out sorted.
		for i := 1; i < len(c.IDs); i++ {
			if c.IDs[i-1] >= c.IDs[i] {
				t.Fatal("compiled IDs not strictly sorted")
			}
		}
	}
}

func TestCompileLookupDropsUnknown(t *testing.T) {
	d := NewDict()
	known := Vector{"a": 1, "b": 2}
	Compile(known, d)
	mixed := Vector{"a": 3, "zzz": 5}
	c := CompileLookup(mixed, d)
	if c.Len() != 1 {
		t.Fatalf("nnz = %d, want 1", c.Len())
	}
	if d.Len() != 2 {
		t.Error("CompileLookup mutated the dictionary")
	}
	if c.Norm != 3 {
		t.Errorf("norm = %g, want 3 (unknown term dropped)", c.Norm)
	}
}

func TestCompiledZeroVectors(t *testing.T) {
	d := NewDict()
	empty := Compile(New(), d)
	some := Compile(Vector{"x": 2}, d)
	if empty.Norm != 0 || empty.Len() != 0 {
		t.Fatalf("empty compile: %+v", empty)
	}
	if got := CosineCompiled(empty, some); got != 0 {
		t.Errorf("cosine with zero vector = %g", got)
	}
	if got := CosineCompiled(some, some); got != 1 {
		t.Errorf("self cosine = %g", got)
	}
}

func TestAccumulatorReuseAndGrow(t *testing.T) {
	d := NewDict()
	a := Compile(Vector{"a": 1}, d)
	acc := NewAccumulator(d.Len())
	first := CentroidCompiled([]Compiled{a}, acc)
	if first.Len() != 1 || first.Weights[0] != 1 {
		t.Fatalf("first centroid: %+v", first)
	}
	// New terms extend the dictionary past the accumulator's capacity;
	// it must grow rather than panic, and the prior Compile must have
	// reset state so nothing leaks between uses.
	b := Compile(Vector{"b": 4, "c": 4}, d)
	second := CentroidCompiled([]Compiled{a, b}, acc)
	if second.Len() != 3 {
		t.Fatalf("second centroid nnz = %d", second.Len())
	}
	back := second.Decompile(d)
	for term, want := range map[string]float64{"a": 0.5, "b": 2, "c": 2} {
		if back[term] != want {
			t.Errorf("centroid[%s] = %g, want %g", term, back[term], want)
		}
	}
}

// benchVectors builds two overlapping ~120-term vectors shaped like the
// corpus' page-content vectors.
func benchVectors() (Vector, Vector) {
	rng := rand.New(rand.NewSource(7))
	a, b := New(), New()
	for i := 0; i < 120; i++ {
		a[fmt.Sprintf("t%d", rng.Intn(400))] = rng.Float64() * 5
		b[fmt.Sprintf("t%d", rng.Intn(400))] = rng.Float64() * 5
	}
	return a, b
}

func BenchmarkCosine(b *testing.B) {
	av, bv := benchVectors()
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Cosine(av, bv)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		d := NewDict()
		ac, bc := Compile(av, d), Compile(bv, d)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			CosineCompiled(ac, bc)
		}
	})
}
