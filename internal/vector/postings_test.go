package vector

import (
	"math/rand"
	"testing"
)

// postingsFixture compiles a random corpus and splits it into indexed
// "centroids" (the first k, deliberately dense via high nnz) and sparse
// query vectors.
func postingsFixture(seed int64, k, n int) ([]Compiled, []Compiled) {
	rng := rand.New(rand.NewSource(seed))
	d := NewDict()
	cents := make([]Compiled, k)
	for i := range cents {
		cents[i] = Compile(randomCorpus(rng, 1, 400, 120)[0], d)
	}
	queries := make([]Compiled, n)
	for i := range queries {
		queries[i] = Compile(randomCorpus(rng, 1, 500, 25)[0], d)
	}
	return cents, queries
}

// TestPostingsDotsMatchesMergeJoin is the index contract: for every
// query and every indexed vector, Dots and DotOne must equal the
// per-pair merge join bit for bit — including queries carrying terms no
// centroid has and the occasional all-empty vector.
func TestPostingsDotsMatchesMergeJoin(t *testing.T) {
	cents, queries := postingsFixture(3, 7, 40)
	p := NewPostings(cents)
	if p.K() != 7 {
		t.Fatalf("K() = %d, want 7", p.K())
	}
	dst := make([]float64, p.K())
	for qi, q := range queries {
		p.Dots(q, dst)
		for c, cent := range cents {
			want := q.Dot(cent)
			if dst[c] != want {
				t.Errorf("query %d centroid %d: Dots = %v, merge join = %v", qi, c, dst[c], want)
			}
			if got := p.DotOne(q, c); got != want {
				t.Errorf("query %d centroid %d: DotOne = %v, merge join = %v", qi, c, got, want)
			}
			if p.Norm(c) != cent.Norm {
				t.Errorf("centroid %d: Norm = %v, want %v", c, p.Norm(c), cent.Norm)
			}
		}
	}
}

// TestPostingsEmpty covers the degenerate index shapes: no vectors at
// all, and all-empty vectors.
func TestPostingsEmpty(t *testing.T) {
	p := NewPostings(nil)
	if p.K() != 0 {
		t.Fatalf("empty index K() = %d", p.K())
	}
	p = NewPostings(make([]Compiled, 3))
	q := Compiled{IDs: []uint32{2, 9}, Weights: []float64{1, 2}, Norm: 1}
	dst := []float64{7, 7, 7}
	p.Dots(q, dst)
	for c, v := range dst {
		if v != 0 {
			t.Errorf("empty centroid %d scored %v", c, v)
		}
		if got := p.DotOne(q, c); got != 0 {
			t.Errorf("empty centroid %d DotOne = %v", c, got)
		}
	}
}
