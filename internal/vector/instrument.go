package vector

import (
	"time"

	"cafc/internal/obs"
)

// This file owns the metric names of the vector layer, so the model
// code that drives TF-IDF embedding and compilation records telemetry
// under names defined next to the data structures they describe. All
// helpers are no-ops with a nil registry.

// ObserveVocabulary records the corpus vocabulary size of one feature
// space (vector_vocabulary_terms{space=...}).
func ObserveVocabulary(reg *obs.Registry, space string, df *DocFreq) {
	if reg == nil || df == nil {
		return
	}
	reg.Gauge("vector_vocabulary_terms", "space", space).Set(float64(df.Vocabulary()))
}

// ObserveTFIDFBuild records one corpus embedding pass: how many TF-IDF
// vectors were built and how long the pass took
// (vector_tfidf_build_seconds, vector_tfidf_vectors_total).
func ObserveTFIDFBuild(reg *obs.Registry, vectors int, elapsed time.Duration) {
	if reg == nil {
		return
	}
	reg.Histogram("vector_tfidf_build_seconds", obs.DurationBuckets).Observe(elapsed.Seconds())
	reg.Counter("vector_tfidf_vectors_total").Add(int64(vectors))
}

// ObserveCompile records one packed-engine build over both feature
// spaces: interned-dictionary sizes and the compile pass duration
// (vector_dict_terms{space=...}, vector_compile_seconds).
func ObserveCompile(reg *obs.Registry, pcDict, fcDict *Dict, elapsed time.Duration) {
	if reg == nil {
		return
	}
	if pcDict != nil {
		reg.Gauge("vector_dict_terms", "space", "pc").Set(float64(pcDict.Len()))
	}
	if fcDict != nil {
		reg.Gauge("vector_dict_terms", "space", "fc").Set(float64(fcDict.Len()))
	}
	reg.Histogram("vector_compile_seconds", obs.DurationBuckets).Observe(elapsed.Seconds())
}
