package vector

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFromTerms(t *testing.T) {
	v := FromTerms([]string{"a", "b", "a", "c", "a"})
	if v["a"] != 3 || v["b"] != 1 || v["c"] != 1 {
		t.Errorf("v = %v", v)
	}
	if v.Len() != 3 {
		t.Errorf("Len = %d", v.Len())
	}
}

func TestNormAndDot(t *testing.T) {
	v := Vector{"x": 3, "y": 4}
	if !almostEq(v.Norm(), 5) {
		t.Errorf("Norm = %v", v.Norm())
	}
	o := Vector{"y": 2, "z": 7}
	if !almostEq(v.Dot(o), 8) {
		t.Errorf("Dot = %v", v.Dot(o))
	}
	if !almostEq(o.Dot(v), 8) {
		t.Errorf("Dot not symmetric")
	}
}

func TestCosineIdentityAndOrthogonal(t *testing.T) {
	v := Vector{"a": 1, "b": 2}
	if !almostEq(Cosine(v, v), 1) {
		t.Errorf("self-cosine = %v", Cosine(v, v))
	}
	o := Vector{"c": 5}
	if Cosine(v, o) != 0 {
		t.Errorf("orthogonal cosine = %v", Cosine(v, o))
	}
}

func TestCosineZeroVector(t *testing.T) {
	z := New()
	v := Vector{"a": 1}
	if Cosine(z, v) != 0 || Cosine(z, z) != 0 {
		t.Error("zero vector must have similarity 0")
	}
}

func TestCosineProperties(t *testing.T) {
	gen := func(xs []uint8) Vector {
		v := New()
		keys := []string{"a", "b", "c", "d", "e"}
		for i, x := range xs {
			if i >= len(keys) {
				break
			}
			if x > 0 {
				v[keys[i]] = float64(x)
			}
		}
		return v
	}
	f := func(xs, ys []uint8) bool {
		v, o := gen(xs), gen(ys)
		c := Cosine(v, o)
		if c < 0 || c > 1 {
			return false
		}
		return almostEq(c, Cosine(o, v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCentroid(t *testing.T) {
	vs := []Vector{
		{"a": 2, "b": 4},
		{"a": 4},
	}
	c := Centroid(vs)
	if !almostEq(c["a"], 3) || !almostEq(c["b"], 2) {
		t.Errorf("centroid = %v", c)
	}
	if empty := Centroid(nil); empty.Len() != 0 {
		t.Errorf("empty centroid = %v", empty)
	}
}

func TestCentroidCosineBound(t *testing.T) {
	// A centroid must be at least as similar to its members on average
	// than an unrelated vector is; sanity check it sits "between" members.
	a := Vector{"x": 1}
	b := Vector{"y": 1}
	c := Centroid([]Vector{a, b})
	if Cosine(c, a) <= 0 || Cosine(c, b) <= 0 {
		t.Error("centroid lost member directions")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{"a": 1}
	c := v.Clone()
	c["a"] = 99
	c["b"] = 1
	if v["a"] != 1 || v.Len() != 1 {
		t.Error("Clone aliases original storage")
	}
}

func TestTopTermsDeterministic(t *testing.T) {
	v := Vector{"zeta": 2, "alpha": 2, "top": 9, "low": 1}
	got := v.TopTerms(3)
	want := []string{"top", "alpha", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopTerms = %v, want %v", got, want)
		}
	}
	if n := len(v.TopTerms(100)); n != 4 {
		t.Errorf("TopTerms(100) returned %d", n)
	}
}

func TestDocFreqAndIDF(t *testing.T) {
	df := NewDocFreq()
	df.AddDoc([]string{"flight", "cheap", "flight"}) // dup within doc counts once
	df.AddDoc([]string{"flight", "hotel"})
	df.AddDoc([]string{"book"})
	if df.N() != 3 {
		t.Fatalf("N = %d", df.N())
	}
	if df.DF("flight") != 2 || df.DF("hotel") != 1 || df.DF("missing") != 0 {
		t.Errorf("df = %d/%d/%d", df.DF("flight"), df.DF("hotel"), df.DF("missing"))
	}
	if !almostEq(df.IDF("flight"), math.Log(1.5)) {
		t.Errorf("IDF(flight) = %v", df.IDF("flight"))
	}
	if df.IDF("missing") != 0 {
		t.Errorf("IDF of unseen term = %v", df.IDF("missing"))
	}
	if df.Vocabulary() != 4 {
		t.Errorf("vocab = %d", df.Vocabulary())
	}
}

func TestTFIDFLocationWeights(t *testing.T) {
	df := NewDocFreq()
	df.AddDoc([]string{"title", "body", "rare"})
	df.AddDoc([]string{"body"})
	terms := []WeightedTerm{
		{Term: "title", Loc: 3},
		{Term: "body", Loc: 1},
		{Term: "rare", Loc: 1},
	}
	v := TFIDF(terms, df, false)
	// "body" appears in every doc -> IDF 0 -> excluded.
	if _, ok := v["body"]; ok {
		t.Error("ubiquitous term should be dropped")
	}
	// title: LOC 3 * TF 1 * ln(2) ; rare: 1 * 1 * ln(2)
	if !almostEq(v["title"], 3*math.Log(2)) {
		t.Errorf("title weight = %v", v["title"])
	}
	if !almostEq(v["rare"], math.Log(2)) {
		t.Errorf("rare weight = %v", v["rare"])
	}
	// Uniform ablation: LOC forced to 1.
	u := TFIDF(terms, df, true)
	if !almostEq(u["title"], math.Log(2)) {
		t.Errorf("uniform title weight = %v", u["title"])
	}
}

func TestTFIDFMixedLocations(t *testing.T) {
	df := NewDocFreq()
	df.AddDoc([]string{"x", "pad"})
	df.AddDoc([]string{"pad2"})
	// "x" occurs twice: once at LOC 3, once at LOC 1 -> avg 2, TF 2.
	terms := []WeightedTerm{{Term: "x", Loc: 3}, {Term: "x", Loc: 1}}
	v := TFIDF(terms, df, false)
	if !almostEq(v["x"], 2*2*math.Log(2)) {
		t.Errorf("x weight = %v, want %v", v["x"], 2*2*math.Log(2))
	}
}

func TestAddDocWeighted(t *testing.T) {
	df := NewDocFreq()
	df.AddDocWeighted([]WeightedTerm{{Term: "a", Loc: 1}, {Term: "a", Loc: 2}})
	if df.N() != 1 || df.DF("a") != 1 {
		t.Errorf("N=%d DF=%d", df.N(), df.DF("a"))
	}
}

// BenchmarkCosine (map vs compiled) lives in compiled_test.go.
