package vector

import "math/bits"

// SimHasher computes SimHash signatures over compiled vectors: each of
// the Bits signature bits is the sign of the vector's projection onto a
// pseudo-random ±1 hyperplane drawn over the interned term space. Two
// vectors' signatures then disagree on a fraction of bits proportional
// to the angle between the vectors, so Hamming distance over signatures
// is a cheap (O(k) XOR+popcount) proxy for cosine ordering — the
// candidate-generation tier the approximate clustering kernels build on.
//
// Hyperplanes are never materialized: the ±1 entry for (term id, bit) is
// derived on the fly from a splitmix64-style hash of the id, the
// signature word index and the seed, so signing costs O(nnz · Bits/64)
// hashes and O(nnz · Bits) adds, with zero per-call allocations when the
// caller supplies the scratch. For a fixed seed the signature of a given
// vector is fully deterministic — across runs, platforms and worker
// counts (pinned by TestSimHashDeterministic).
//
// A SimHasher is immutable and safe for concurrent use.
type SimHasher struct {
	bits int
	seed uint64
}

// simHashWordBits is the signature word width: signatures are packed
// into []uint64, one hash per word per term.
const simHashWordBits = 64

// NewSimHasher returns a hasher producing bits-wide signatures. bits is
// rounded up to a multiple of 64 and floored at 64 (the supported
// widths are 64 and 128; larger multiples work but cost linearly more).
// Distinct seeds draw independent hyperplane sets — the two feature
// spaces of a form-page model sign with different seeds so shared term
// IDs across dictionaries cannot correlate.
func NewSimHasher(bits int, seed int64) SimHasher {
	if bits <= 0 {
		bits = simHashWordBits
	}
	words := (bits + simHashWordBits - 1) / simHashWordBits
	return SimHasher{bits: words * simHashWordBits, seed: uint64(seed)}
}

// Bits returns the signature width in bits.
func (h SimHasher) Bits() int { return h.bits }

// Words returns the signature length in uint64 words.
func (h SimHasher) Words() int { return h.bits / simHashWordBits }

// planeWord derives the 64 ±1 hyperplane entries of signature word w for
// term id, packed as sign bits (1 = +1, 0 = −1). splitmix64's finalizer
// over a seed-and-input mix; the golden-ratio stride keeps distinct
// (id, word) inputs from colliding before the mix.
func (h SimHasher) planeWord(id uint32, w int) uint64 {
	z := h.seed + (uint64(id)+1)*0x9E3779B97F4A7C15 + uint64(w)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Accumulate folds c, scaled by scale, into the projection accumulator
// acc (length Bits, caller-zeroed before the first space). Splitting
// accumulation from finalization lets multi-space models sum several
// packed vectors — each with its own scale and its own hasher seed —
// into one joint signature. scale must be positive; it carries the
// per-space normalization (e.g. sqrt(C1)/‖pc‖ for Equation 3 fidelity),
// which matters because the signature bit is the sign of a sum across
// spaces.
func (h SimHasher) Accumulate(acc []float64, c Compiled, scale float64) {
	words := h.Words()
	for i, id := range c.IDs {
		w := c.Weights[i] * scale
		for j := 0; j < words; j++ {
			hv := h.planeWord(id, j)
			base := j * simHashWordBits
			for b := 0; b < simHashWordBits; b++ {
				if hv&(1<<uint(b)) != 0 {
					acc[base+b] += w
				} else {
					acc[base+b] -= w
				}
			}
		}
	}
}

// Finalize converts the accumulated projections into sign bits, writes
// them into dst (length Words) and zeroes acc for reuse. A projection of
// exactly zero yields a 0 bit, so empty vectors sign to all-zeros
// deterministically.
func (h SimHasher) Finalize(dst []uint64, acc []float64) {
	words := h.Words()
	for j := 0; j < words; j++ {
		var sig uint64
		base := j * simHashWordBits
		for b := 0; b < simHashWordBits; b++ {
			if acc[base+b] > 0 {
				sig |= 1 << uint(b)
			}
			acc[base+b] = 0
		}
		dst[j] = sig
	}
}

// Sign computes the signature of a single compiled vector into dst
// (length Words), using acc (length Bits) as scratch. Normalization is
// irrelevant for a single space — scaling a vector by a positive
// constant moves no projection across zero — so the scale is fixed at 1.
func (h SimHasher) Sign(dst []uint64, acc []float64, c Compiled) {
	h.Accumulate(acc, c, 1)
	h.Finalize(dst, acc)
}

// Hamming returns the number of differing bits between two signatures
// of equal word count.
func Hamming(a, b []uint64) int {
	d := 0
	for i := range a {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}
