package vector

import (
	"math"
	"math/rand"
	"testing"
)

// randomCompiled builds a sorted packed vector with nnz random terms
// drawn from a vocab-sized ID space.
func randomCompiled(rng *rand.Rand, vocab, nnz int) Compiled {
	seen := make(map[uint32]bool, nnz)
	var ids []uint32
	for len(ids) < nnz {
		id := uint32(rng.Intn(vocab))
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	weights := make([]float64, len(ids))
	var sum float64
	for i := range weights {
		weights[i] = rng.Float64() + 0.01
		sum += weights[i] * weights[i]
	}
	return Compiled{IDs: ids, Weights: weights, Norm: math.Sqrt(sum)}
}

// TestSimHashDeterministic pins the signature contract: for a fixed
// seed the signature of a vector is exactly reproducible — across
// hasher instances, repeated calls, and positive rescaling of the
// vector — and a different seed draws a genuinely different hyperplane
// set.
func TestSimHashDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h1 := NewSimHasher(128, 7)
	h2 := NewSimHasher(128, 7)
	other := NewSimHasher(128, 8)
	acc := make([]float64, h1.Bits())
	a, b, c2 := make([]uint64, h1.Words()), make([]uint64, h1.Words()), make([]uint64, h1.Words())
	differed := false
	for i := 0; i < 50; i++ {
		v := randomCompiled(rng, 5000, 40+rng.Intn(100))
		h1.Sign(a, acc, v)
		h2.Sign(b, acc, v)
		if Hamming(a, b) != 0 {
			t.Fatalf("vector %d: two hashers with the same seed disagree", i)
		}
		h1.Sign(b, acc, v)
		if Hamming(a, b) != 0 {
			t.Fatalf("vector %d: repeated signing disagrees", i)
		}
		// Positive rescaling cannot move any projection across zero.
		scaled := Compiled{IDs: v.IDs, Weights: make([]float64, len(v.Weights)), Norm: v.Norm * 3}
		for j, w := range v.Weights {
			scaled.Weights[j] = w * 3
		}
		h1.Sign(b, acc, scaled)
		if Hamming(a, b) != 0 {
			t.Fatalf("vector %d: signature not scale-invariant", i)
		}
		other.Sign(c2, acc, v)
		if Hamming(a, c2) != 0 {
			differed = true
		}
	}
	if !differed {
		t.Fatal("seed 7 and seed 8 produced identical signatures for every vector")
	}
}

// TestSimHashOrdersByAngle checks the LSH property the candidate tier
// relies on: a vector's signature is closer in Hamming distance to a
// near-duplicate of itself than to an unrelated vector, for the vast
// majority of random trials.
func TestSimHashOrdersByAngle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	h := NewSimHasher(128, 3)
	acc := make([]float64, h.Bits())
	sa, sb, sc := make([]uint64, h.Words()), make([]uint64, h.Words()), make([]uint64, h.Words())
	wins := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		a := randomCompiled(rng, 2000, 80)
		// near: perturb a fraction of a's weights.
		near := Compiled{IDs: a.IDs, Weights: append([]float64(nil), a.Weights...), Norm: a.Norm}
		for j := range near.Weights {
			if rng.Intn(10) == 0 {
				near.Weights[j] *= 1 + 0.5*rng.Float64()
			}
		}
		far := randomCompiled(rng, 2000, 80)
		h.Sign(sa, acc, a)
		h.Sign(sb, acc, near)
		h.Sign(sc, acc, far)
		if Hamming(sa, sb) < Hamming(sa, sc) {
			wins++
		}
	}
	if wins < trials*9/10 {
		t.Fatalf("near-duplicate beat unrelated vector in only %d/%d trials", wins, trials)
	}
}

// TestSimHashWidths pins the width rounding: 0 and 64 mean one word,
// 65..128 two.
func TestSimHashWidths(t *testing.T) {
	for _, tc := range []struct{ bits, words int }{{0, 1}, {64, 1}, {65, 2}, {128, 2}} {
		if got := NewSimHasher(tc.bits, 1).Words(); got != tc.words {
			t.Errorf("NewSimHasher(%d): %d words, want %d", tc.bits, got, tc.words)
		}
	}
}

// TestBlendCompiled pins the mini-batch centroid update: blending with
// t=0 returns a, t=1 returns b (up to explicit zeros), and a mid blend
// equals the term-wise convex combination with a freshly computed norm.
func TestBlendCompiled(t *testing.T) {
	a := Compiled{IDs: []uint32{1, 3, 5}, Weights: []float64{1, 2, 3}, Norm: math.Sqrt(14)}
	b := Compiled{IDs: []uint32{3, 4}, Weights: []float64{4, 8}, Norm: math.Sqrt(80)}
	got := BlendCompiled(a, b, 0.25)
	wantIDs := []uint32{1, 3, 4, 5}
	wantW := []float64{0.75, 0.75*2 + 0.25*4, 0.25 * 8, 0.75 * 3}
	if len(got.IDs) != len(wantIDs) {
		t.Fatalf("blend has %d terms, want %d", len(got.IDs), len(wantIDs))
	}
	var sum float64
	for i := range wantIDs {
		if got.IDs[i] != wantIDs[i] || got.Weights[i] != wantW[i] {
			t.Errorf("term %d: (%d, %v), want (%d, %v)", i, got.IDs[i], got.Weights[i], wantIDs[i], wantW[i])
		}
		sum += wantW[i] * wantW[i]
	}
	if got.Norm != math.Sqrt(sum) {
		t.Errorf("norm %v, want %v", got.Norm, math.Sqrt(sum))
	}
	if d := BlendCompiled(a, b, 0).Dot(a); d != a.Dot(a) {
		t.Errorf("t=0 blend dot drifted: %v != %v", d, a.Dot(a))
	}
}
