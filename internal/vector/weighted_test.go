package vector

import (
	"math"
	"testing"
)

func TestCompileWeightedAggregatesLocTF(t *testing.T) {
	d := NewDict()
	ts := []WeightedTerm{
		{Term: "hotel", Loc: 3},
		{Term: "rate", Loc: 1},
		{Term: "hotel", Loc: 1},
	}
	c := CompileWeighted(ts, d)
	if c.Len() != 2 {
		t.Fatalf("nnz = %d, want 2", c.Len())
	}
	v := c.Decompile(d)
	if v["hotel"] != 4 || v["rate"] != 1 {
		t.Fatalf("weights = %v, want hotel=4 rate=1", v)
	}
	want := math.Sqrt(4*4 + 1*1)
	if c.Norm != want {
		t.Fatalf("norm = %v, want %v", c.Norm, want)
	}
}

func TestCompileWeightedDeterministicIntern(t *testing.T) {
	// Occurrence order must not change ID assignment: new terms intern in
	// lexicographic order, exactly like Compile.
	a := CompileWeighted([]WeightedTerm{{Term: "zebra", Loc: 1}, {Term: "apple", Loc: 1}}, NewDict())
	b := CompileWeighted([]WeightedTerm{{Term: "apple", Loc: 1}, {Term: "zebra", Loc: 1}}, NewDict())
	if len(a.IDs) != len(b.IDs) {
		t.Fatal("nnz mismatch")
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] || a.Weights[i] != b.Weights[i] {
			t.Fatalf("compiled form depends on occurrence order: %+v vs %+v", a, b)
		}
	}
	if math.Float64bits(a.Norm) != math.Float64bits(b.Norm) {
		t.Fatal("norm not bit-identical")
	}
}

func TestCompileWeightedSortedIDs(t *testing.T) {
	d := NewDict()
	d.Intern("zebra") // pre-interned low ID for a lexicographically late term
	c := CompileWeighted([]WeightedTerm{{Term: "apple", Loc: 2}, {Term: "zebra", Loc: 5}}, d)
	for i := 1; i < len(c.IDs); i++ {
		if c.IDs[i-1] >= c.IDs[i] {
			t.Fatalf("IDs not strictly ascending: %v", c.IDs)
		}
	}
	v := c.Decompile(d)
	if v["zebra"] != 5 || v["apple"] != 2 {
		t.Fatalf("weights misaligned after ID sort: %v", v)
	}
}
