package vector

import (
	"reflect"
	"testing"
)

// TestCompiledTopTermsMatchesVector pins the compiled top-terms path to
// the map path on vectors with weight ties, against a dictionary whose
// ID order deliberately disagrees with lexicographic term order (IDs
// are arrival-ordered in real models), so an ID-based tie-break would
// be caught.
func TestCompiledTopTermsMatchesVector(t *testing.T) {
	d := NewDict()
	// Intern in reverse-lexicographic order: term "zebra" gets the
	// lowest ID.
	for _, term := range []string{"zebra", "yak", "book", "author", "car"} {
		d.Intern(term)
	}
	vs := []Vector{
		{},
		{"book": 2.5},
		{"book": 1.0, "author": 1.0, "zebra": 1.0}, // full three-way tie
		{"zebra": 3, "yak": 3, "car": 2, "book": 2, "author": 0.5},
		{"car": -1, "book": -1, "author": 2}, // negative-weight ties
	}
	for vi, v := range vs {
		c := Compile(v, d)
		for n := 0; n <= len(v)+1; n++ {
			want := v.TopTerms(n)
			got := c.TopTerms(d, n)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("vector %d n=%d: compiled %v, map %v", vi, n, got, want)
			}
		}
	}
}
