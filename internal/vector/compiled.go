package vector

import (
	"cmp"
	"math"
	"slices"
	"sort"
)

// Compiled is the packed form of a sparse vector: parallel slices of
// term IDs (sorted ascending) and weights, with the Euclidean norm
// precomputed once at compile time. Dot and Cosine over two Compiled
// vectors are merge joins over the sorted ID slices — O(nnz) with no
// map lookups and no hashing, which is what makes the clustering
// kernels memory-bandwidth-bound instead of hash-bound.
//
// A Compiled vector is immutable after construction; it is safe to
// share across goroutines.
type Compiled struct {
	IDs     []uint32
	Weights []float64
	// Norm is the Euclidean length, fixed at compile time.
	Norm float64
}

// Len returns the number of non-zero terms.
func (c Compiled) Len() int { return len(c.IDs) }

// Compile packs v against d, interning any terms d has not seen yet.
// Weights are carried over exactly (no quantization), so Decompile is a
// lossless inverse. New terms are interned in lexicographic order so
// dictionary ID assignment — and with it every downstream compiled
// representation — is deterministic across runs; a map-order walk would
// reshuffle IDs run to run, which replication's bit-identity discipline
// (follower state == leader state, compared field for field) forbids.
func Compile(v Vector, d *Dict) Compiled {
	terms := make([]string, 0, len(v))
	for t := range v {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	ids := make([]uint32, 0, len(terms))
	for _, t := range terms {
		ids = append(ids, d.Intern(t))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	weights := make([]float64, len(ids))
	var sum float64
	for i, id := range ids {
		w := v[d.Term(id)]
		weights[i] = w
		sum += w * w
	}
	return Compiled{IDs: ids, Weights: weights, Norm: math.Sqrt(sum)}
}

// CompileLookup packs v against d without mutating the dictionary:
// terms d has never seen are dropped. This is the read-only path for
// comparing out-of-corpus vectors (classification, probing) against a
// compiled corpus — safe to call concurrently with other readers.
//
// Dropping unknown terms does not change any similarity against
// in-dictionary vectors' dot products, but it does shrink the norm, so
// only use this when unknown terms are known to carry zero weight (as
// TF-IDF embedding against the corpus DF tables guarantees: unseen
// terms get IDF 0 and never enter the vector).
func CompileLookup(v Vector, d *Dict) Compiled {
	// One pass over the map carrying weights along, instead of resolving
	// id -> term -> weight through two more lookups per term afterwards.
	pairs := make([]idWeight, 0, len(v))
	for t, w := range v {
		if id, ok := d.ID(t); ok {
			pairs = append(pairs, idWeight{id: id, w: w})
		}
	}
	slices.SortFunc(pairs, func(a, b idWeight) int {
		return cmp.Compare(a.id, b.id)
	})
	ids := make([]uint32, len(pairs))
	weights := make([]float64, len(pairs))
	var sum float64
	for i, p := range pairs {
		ids[i] = p.id
		weights[i] = p.w
		sum += p.w * p.w
	}
	return Compiled{IDs: ids, Weights: weights, Norm: math.Sqrt(sum)}
}

// idWeight pairs a dictionary ID with its weight during compilation.
type idWeight struct {
	id uint32
	w  float64
}

// CompileWeighted packs raw LOC-weighted term occurrences (the paper's
// pre-TF-IDF representation: one entry per occurrence, carrying its
// location factor) into a compiled vector whose weight per term is the
// sum of that term's location factors — LOC·TF, since summing the
// per-occurrence factors equals the mean factor times the term
// frequency. Like Compile, new terms are interned in lexicographic
// order and the norm is accumulated in ascending-ID order, so the
// result is bit-deterministic for a fixed input and dictionary state.
func CompileWeighted(ts []WeightedTerm, d *Dict) Compiled {
	agg := make(map[string]float64, len(ts))
	for _, t := range ts {
		agg[t.Term] += t.Loc
	}
	terms := make([]string, 0, len(agg))
	for t := range agg {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	ids := make([]uint32, len(terms))
	for i, t := range terms {
		ids[i] = d.Intern(t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	weights := make([]float64, len(ids))
	var sum float64
	for i, id := range ids {
		w := agg[d.Term(id)]
		weights[i] = w
		sum += w * w
	}
	return Compiled{IDs: ids, Weights: weights, Norm: math.Sqrt(sum)}
}

// TopTerms returns the n highest-weighted terms of c, resolving term
// IDs through d. Ties break on the term string ascending — the same
// total order Vector.TopTerms uses — NOT on term ID: dictionary IDs are
// assigned in page-arrival order, so an ID comparison would rank equal
// weights differently from the map path. For a compiled vector whose
// weights are bit-equal to a map vector's, the output is element-equal
// to Decompile(d).TopTerms(n) without materializing the map; this is
// what lets the live path label clusters from compiled centroids.
func (c Compiled) TopTerms(d *Dict, n int) []string {
	idx := make([]int, len(c.IDs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if c.Weights[i] != c.Weights[j] {
			return c.Weights[i] > c.Weights[j]
		}
		return d.Term(c.IDs[i]) < d.Term(c.IDs[j])
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = d.Term(c.IDs[idx[i]])
	}
	return out
}

// Decompile unpacks c back into a map vector.
func (c Compiled) Decompile(d *Dict) Vector {
	v := make(Vector, len(c.IDs))
	for i, id := range c.IDs {
		v[d.Term(id)] = c.Weights[i]
	}
	return v
}

// Dot returns the inner product of two compiled vectors by merging the
// sorted ID slices.
func (c Compiled) Dot(o Compiled) float64 {
	a, b := c, o
	if len(b.IDs) < len(a.IDs) {
		a, b = b, a
	}
	var sum float64
	i, j := 0, 0
	na, nb := len(a.IDs), len(b.IDs)
	for i < na && j < nb {
		ai, bj := a.IDs[i], b.IDs[j]
		switch {
		case ai == bj:
			sum += a.Weights[i] * b.Weights[j]
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	return sum
}

// CosineCompiled returns the cosine similarity of two compiled vectors,
// with the same conventions as Cosine: zero-norm vectors have
// similarity 0 with everything, and drift is clamped into [0, 1].
func CosineCompiled(a, b Compiled) float64 {
	return CosineDot(a.Dot(b), a.Norm, b.Norm)
}

// CosineDot turns an already-computed inner product and the two norms
// into a cosine similarity with the package's conventions (zero norms →
// 0, drift clamped into [0, 1]). CosineCompiled routes through it, so a
// caller that produced the dot product another way — e.g. through a
// Postings index — gets a bit-identical similarity.
func CosineDot(dot, na, nb float64) float64 {
	if na == 0 || nb == 0 {
		return 0
	}
	c := dot / (na * nb)
	if c > 1 {
		c = 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// Accumulator sums compiled vectors into a dense weight array so
// centroids can be built in O(total nnz) and compiled back to packed
// form. The dense array is vocabulary-sized and reused across Reset
// calls, so one Accumulator per worker amortizes the allocation across
// every centroid that worker builds.
type Accumulator struct {
	dense   []float64
	touched []uint32
	seen    []bool
}

// NewAccumulator returns an accumulator for a vocabulary of the given
// size (Dict.Len of the dictionary the inputs were compiled against).
func NewAccumulator(vocab int) *Accumulator {
	return &Accumulator{
		dense: make([]float64, vocab),
		seen:  make([]bool, vocab),
	}
}

// grow widens the dense arrays when vectors compiled against a larger
// dictionary arrive.
func (a *Accumulator) grow(min int) {
	if min <= len(a.dense) {
		return
	}
	dense := make([]float64, min)
	copy(dense, a.dense)
	a.dense = dense
	seen := make([]bool, min)
	copy(seen, a.seen)
	a.seen = seen
}

// Add accumulates c term-wise.
func (a *Accumulator) Add(c Compiled) {
	if n := len(c.IDs); n > 0 {
		a.grow(int(c.IDs[n-1]) + 1)
	}
	for i, id := range c.IDs {
		if !a.seen[id] {
			a.seen[id] = true
			a.touched = append(a.touched, id)
		}
		a.dense[id] += c.Weights[i]
	}
}

// Compile packs the accumulated sum, scaled by f, into a Compiled
// vector and resets the accumulator for reuse. Term IDs come out sorted
// regardless of insertion order, so the result is deterministic.
func (a *Accumulator) Compile(f float64) Compiled {
	sort.Slice(a.touched, func(i, j int) bool { return a.touched[i] < a.touched[j] })
	ids := make([]uint32, len(a.touched))
	weights := make([]float64, len(a.touched))
	var sum float64
	for i, id := range a.touched {
		w := a.dense[id] * f
		ids[i] = id
		weights[i] = w
		sum += w * w
		a.dense[id] = 0
		a.seen[id] = false
	}
	a.touched = a.touched[:0]
	return Compiled{IDs: ids, Weights: weights, Norm: math.Sqrt(sum)}
}

// BlendCompiled returns (1−t)·a + t·b as a fresh compiled vector — the
// convex-combination update mini-batch k-means applies to a centroid
// (per-centroid learning rate t). A merge join over the sorted ID
// slices keeps the result sorted; the norm is summed in ascending-ID
// order like Compile's, so the output is a well-formed Compiled and the
// operation is deterministic for fixed inputs. Terms whose blended
// weight is exactly zero are kept (sparsity bookkeeping is not worth a
// second pass); cosine similarity is unaffected by explicit zeros.
func BlendCompiled(a, b Compiled, t float64) Compiled {
	ids := make([]uint32, 0, len(a.IDs)+len(b.IDs))
	weights := make([]float64, 0, len(a.IDs)+len(b.IDs))
	wa, wb := 1-t, t
	var sum float64
	i, j := 0, 0
	push := func(id uint32, w float64) {
		ids = append(ids, id)
		weights = append(weights, w)
		sum += w * w
	}
	for i < len(a.IDs) && j < len(b.IDs) {
		ai, bj := a.IDs[i], b.IDs[j]
		switch {
		case ai == bj:
			push(ai, wa*a.Weights[i]+wb*b.Weights[j])
			i++
			j++
		case ai < bj:
			push(ai, wa*a.Weights[i])
			i++
		default:
			push(bj, wb*b.Weights[j])
			j++
		}
	}
	for ; i < len(a.IDs); i++ {
		push(a.IDs[i], wa*a.Weights[i])
	}
	for ; j < len(b.IDs); j++ {
		push(b.IDs[j], wb*b.Weights[j])
	}
	return Compiled{IDs: ids, Weights: weights, Norm: math.Sqrt(sum)}
}

// CentroidCompiled returns the term-wise mean of the given compiled
// vectors — the packed counterpart of Centroid. An empty input yields
// an empty vector.
func CentroidCompiled(vs []Compiled, acc *Accumulator) Compiled {
	if len(vs) == 0 {
		return Compiled{}
	}
	if acc == nil {
		acc = NewAccumulator(0)
	}
	for _, v := range vs {
		acc.Add(v)
	}
	return acc.Compile(1 / float64(len(vs)))
}
