package vector

import (
	"math"
	"sync"
)

// WeightedTerm is a term occurrence annotated with the LOC factor of the
// place it was found (title, form body, option tag, page body, ...). The
// paper's Equation 1 multiplies TF by a small integer LOC_i; we accept a
// float so ablations (uniform weights) are a parameter, not a code change.
type WeightedTerm struct {
	Term string
	Loc  float64
}

// DocFreq accumulates document frequencies over a corpus so IDF can be
// computed. It is built once per corpus per feature space.
type DocFreq struct {
	n  int            // number of documents seen
	df map[string]int // term -> number of docs containing it
}

// NewDocFreq returns an empty document-frequency table.
func NewDocFreq() *DocFreq {
	return &DocFreq{df: make(map[string]int)}
}

// seenPool recycles the per-document dedup maps of AddDoc and
// AddDocWeighted — ingest calls them for every appended page, and a
// fresh map per page was a measurable slice of the hot path's garbage.
var seenPool = sync.Pool{New: func() any { return make(map[string]bool, 64) }}

// AddDoc records one document's distinct terms.
func (d *DocFreq) AddDoc(terms []string) {
	d.n++
	seen := seenPool.Get().(map[string]bool)
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			d.df[t]++
		}
	}
	clear(seen)
	seenPool.Put(seen)
}

// AddDocWeighted records one document given weighted occurrences.
func (d *DocFreq) AddDocWeighted(terms []WeightedTerm) {
	d.n++
	seen := seenPool.Get().(map[string]bool)
	for _, wt := range terms {
		if !seen[wt.Term] {
			seen[wt.Term] = true
			d.df[wt.Term]++
		}
	}
	clear(seen)
	seenPool.Put(seen)
}

// N returns the number of documents recorded.
func (d *DocFreq) N() int { return d.n }

// DF returns the document frequency of term t.
func (d *DocFreq) DF(t string) int { return d.df[t] }

// IDF returns log(N/n_i), the paper's inverse document frequency. Terms
// never seen get IDF 0 (they carry no corpus-level evidence); the log is
// natural, matching the standard IR formulation the paper cites.
func (d *DocFreq) IDF(t string) float64 {
	ni := d.df[t]
	if ni == 0 || d.n == 0 {
		return 0
	}
	return math.Log(float64(d.n) / float64(ni))
}

// Vocabulary returns the number of distinct terms recorded.
func (d *DocFreq) Vocabulary() int { return len(d.df) }

// Snapshot exports the table's state for persistence. The returned map
// is a copy.
func (d *DocFreq) Snapshot() (n int, df map[string]int) {
	cp := make(map[string]int, len(d.df))
	for t, c := range d.df {
		cp[t] = c
	}
	return d.n, cp
}

// Clone returns an independent copy of the table, so an incremental
// corpus update can accumulate new documents without mutating the table
// a served model snapshot still reads.
func (d *DocFreq) Clone() *DocFreq {
	n, df := d.Snapshot()
	return &DocFreq{n: n, df: df}
}

// Merge folds another table's counts into this one — the reduction step
// of sharded document-frequency accumulation. Counts are integers, so
// the merged table is identical to one built serially over the
// concatenated shards regardless of merge order.
func (d *DocFreq) Merge(o *DocFreq) {
	d.n += o.n
	for t, c := range o.df {
		d.df[t] += c
	}
}

// RestoreDocFreq rebuilds a table from a Snapshot.
func RestoreDocFreq(n int, df map[string]int) *DocFreq {
	cp := make(map[string]int, len(df))
	for t, c := range df {
		cp[t] = c
	}
	return &DocFreq{n: n, df: cp}
}

// TFIDF builds the weighted vector for one document:
//
//	w_i = LOC_i * TF_i * log(N/n_i)            (paper Equation 1)
//
// where LOC_i is the average location factor of the term's occurrences in
// this document (occurrences of the same term in differently-weighted
// locations contribute proportionally). When uniform is true, LOC is
// forced to 1 for every term — the Section 4.4 ablation.
func TFIDF(terms []WeightedTerm, df *DocFreq, uniform bool) Vector {
	agg := tfidfPool.Get().(map[string]tfLoc)
	for _, wt := range terms {
		a := agg[wt.Term]
		a.tf++
		if uniform {
			a.loc++
		} else {
			a.loc += wt.Loc
		}
		agg[wt.Term] = a
	}
	v := make(Vector, len(agg))
	for t, a := range agg {
		idf := df.IDF(t)
		if idf == 0 {
			continue // term in every document (or unknown): no signal
		}
		avgLoc := a.loc / a.tf
		v[t] = avgLoc * a.tf * idf
	}
	clear(agg)
	tfidfPool.Put(agg)
	return v
}

// tfLoc is TFIDF's per-term aggregation state: the term frequency and
// the summed location factors of its occurrences.
type tfLoc struct {
	tf, loc float64
}

// tfidfPool recycles the per-call aggregation map; only the result
// vector outlives a call, and embedding is sharded across workers,
// hence a Pool rather than a single buffer.
var tfidfPool = sync.Pool{New: func() any { return make(map[string]tfLoc, 64) }}
