package vector

// Postings is a term → (vector, weight) inverted index over a small
// fixed set of compiled vectors — in practice the k cluster centroids of
// one clustering iteration or one classifier epoch. Scoring a sparse
// query against it touches only the centroids that share a term with
// the query, so the cost is O(query nnz × overlap) instead of the
// O(total centroid nnz) a merge join per centroid pays. Centroids are
// dense (the union of their members' terms) while pages are sparse,
// which is exactly the asymmetry an inverted index exploits.
//
// The accumulation order is pinned: Dots walks the query's sorted term
// IDs outward, so each centroid's partial sums arrive in ascending
// term-ID order — the same order Compiled.Dot's merge join adds them.
// Dot products (and therefore similarities) are bit-identical to the
// per-centroid merge joins, which is what lets the clustering kernels
// and the classifier swap in the index without changing a single
// assignment.
//
// A Postings is immutable after construction and safe for concurrent
// readers; callers own the dst slices.
type Postings struct {
	// starts is the CSR row index: entries for term id live in
	// [starts[id], starts[id+1]).
	starts []uint32
	// cent and weight are the flattened rows: cent[e] is the vector that
	// carries term weight weight[e].
	cent   []uint32
	weight []float64
	// norms holds each indexed vector's precompiled norm, so callers can
	// turn dot products into cosines without re-walking the vectors.
	norms []float64
	// dense is the same data as a row-major K() × nrows weight matrix,
	// so a single vector can be scored in O(query nnz) — the bound-pruned
	// kernels evaluate individual centroids, and a merge join against a
	// dense centroid would cost O(centroid nnz) instead.
	dense []float64
	nrows int
}

// NewPostings indexes the given compiled vectors.
func NewPostings(vs []Compiled) *Postings {
	maxID, total := -1, 0
	for _, v := range vs {
		total += len(v.IDs)
		if n := len(v.IDs); n > 0 && int(v.IDs[n-1]) > maxID {
			maxID = int(v.IDs[n-1])
		}
	}
	p := &Postings{
		starts: make([]uint32, maxID+2),
		cent:   make([]uint32, total),
		weight: make([]float64, total),
		norms:  make([]float64, len(vs)),
	}
	for _, v := range vs {
		for _, id := range v.IDs {
			p.starts[id+1]++
		}
	}
	for i := 1; i < len(p.starts); i++ {
		p.starts[i] += p.starts[i-1]
	}
	cursor := append([]uint32(nil), p.starts[:maxID+1]...)
	p.nrows = maxID + 1
	p.dense = make([]float64, len(vs)*p.nrows)
	for c, v := range vs {
		p.norms[c] = v.Norm
		row := p.dense[c*p.nrows : (c+1)*p.nrows]
		for j, id := range v.IDs {
			at := cursor[id]
			cursor[id]++
			p.cent[at] = uint32(c)
			p.weight[at] = v.Weights[j]
			row[id] = v.Weights[j]
		}
	}
	return p
}

// K returns the number of indexed vectors.
func (p *Postings) K() int { return len(p.norms) }

// Norm returns the precompiled norm of indexed vector c.
func (p *Postings) Norm(c int) float64 { return p.norms[c] }

// Dots fills dst[c] with the inner product of q and indexed vector c,
// bit-identical to q.Dot(that vector) for every c. dst must have length
// K(); entries for vectors sharing no term with q come out exactly 0.
func (p *Postings) Dots(q Compiled, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	nrows := len(p.starts) - 1
	for j, id := range q.IDs {
		if int(id) >= nrows {
			break // query IDs are sorted; nothing indexed beyond here
		}
		w := q.Weights[j]
		for e := p.starts[id]; e < p.starts[id+1]; e++ {
			dst[p.cent[e]] += w * p.weight[e]
		}
	}
}

// DotOne returns the inner product of q and indexed vector c in
// O(query nnz) via the dense row, bit-identical to q.Dot(that vector):
// the walk adds products in the merge join's ascending term-ID order,
// and terms absent from the row contribute an exact ±0 that leaves an
// IEEE accumulator unchanged (the sum can never be -0 mid-stream — it
// starts at +0 and ±0 additions keep it there until the first shared
// term lands, exactly as in the merge join).
func (p *Postings) DotOne(q Compiled, c int) float64 {
	row := p.dense[c*p.nrows : (c+1)*p.nrows]
	var sum float64
	for j, id := range q.IDs {
		if int(id) >= p.nrows {
			break
		}
		sum += q.Weights[j] * row[id]
	}
	return sum
}
