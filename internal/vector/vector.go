// Package vector implements the sparse vector-space model underlying the
// form-page model: term vectors, corpus document frequencies, the paper's
// location-weighted TF-IDF (w_i = LOC_i * TF_i * log(N/n_i)), cosine
// similarity, and centroid arithmetic for clustering.
package vector

import (
	"math"
	"sort"
)

// Vector is a sparse term-weight vector. The zero value is an empty vector
// ready for use (a nil map is never written to; use New or Add).
type Vector map[string]float64

// New returns an empty vector.
func New() Vector {
	return make(Vector)
}

// FromTerms builds a raw term-frequency vector from a token stream.
func FromTerms(terms []string) Vector {
	v := make(Vector, len(terms))
	for _, t := range terms {
		v[t]++
	}
	return v
}

// Add accumulates w onto term t.
func (v Vector) Add(t string, w float64) {
	v[t] += w
}

// Norm returns the Euclidean length of v. Terms are summed in sorted
// order: float addition is order-sensitive in the last ulp and map
// iteration order is not, so an unsorted sum would make two calls on
// the same vector disagree bit-for-bit. (The packed Compiled path gets
// the same guarantee from its ascending-term-id layout.)
func (v Vector) Norm() float64 {
	terms := make([]string, 0, len(v))
	for t := range v {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	var sum float64
	for _, t := range terms {
		w := v[t]
		sum += w * w
	}
	return math.Sqrt(sum)
}

// Dot returns the inner product of v and o. Shared terms are summed in
// sorted order so the result is bit-stable across calls and symmetric
// in its arguments (see Norm).
func (v Vector) Dot(o Vector) float64 {
	// Collect from the smaller vector.
	if len(o) < len(v) {
		v, o = o, v
	}
	terms := make([]string, 0, len(v))
	for t := range v {
		if _, ok := o[t]; ok {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	var sum float64
	for _, t := range terms {
		sum += v[t] * o[t]
	}
	return sum
}

// Cosine returns the cosine similarity between v and o in [0, 1] for
// non-negative vectors. Zero-length vectors have similarity 0 with
// everything, including themselves — an empty form page carries no
// evidence of similarity.
func Cosine(v, o Vector) float64 {
	nv, no := v.Norm(), o.Norm()
	if nv == 0 || no == 0 {
		return 0
	}
	c := v.Dot(o) / (nv * no)
	// Clamp floating-point drift.
	if c > 1 {
		c = 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// Scale multiplies every weight by f in place and returns v.
func (v Vector) Scale(f float64) Vector {
	for t := range v {
		v[t] *= f
	}
	return v
}

// AddVec accumulates o into v in place and returns v.
func (v Vector) AddVec(o Vector) Vector {
	for t, w := range o {
		v[t] += w
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for t, w := range v {
		c[t] = w
	}
	return c
}

// Len returns the number of distinct terms.
func (v Vector) Len() int { return len(v) }

// TopTerms returns the n highest-weighted terms in decreasing order,
// breaking ties lexicographically (so output is deterministic).
func (v Vector) TopTerms(n int) []string {
	type tw struct {
		t string
		w float64
	}
	all := make([]tw, 0, len(v))
	for t, w := range v {
		all = append(all, tw{t, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].t < all[j].t
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].t
	}
	return out
}

// Centroid returns the term-wise mean of the given vectors, the cluster
// representative the paper uses (Equation 4). An empty input yields an
// empty vector.
func Centroid(vs []Vector) Vector {
	c := New()
	if len(vs) == 0 {
		return c
	}
	for _, v := range vs {
		c.AddVec(v)
	}
	return c.Scale(1 / float64(len(vs)))
}
