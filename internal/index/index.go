// Package index provides a TF-IDF inverted index over form pages with
// ranked retrieval, plus cluster-level aggregation (database selection):
// the query-based exploration interface the paper's Section 6 proposes
// for navigating the clustered hidden-web directory, and the source-
// selection primitive metasearchers build on top of it.
package index

import (
	"math"
	"sort"

	"cafc/internal/text"
)

// Doc is one indexed document.
type Doc struct {
	ID      int
	URL     string
	Title   string
	Cluster int
	// Len is the Euclidean norm of the document's TF vector, used for
	// cosine normalization.
	Len float64
}

// posting records a document's term frequency for one term.
type posting struct {
	doc int
	tf  float64
}

// Index is an inverted index with cosine-normalized TF-IDF ranking.
// Build it with Add calls, then Freeze before searching. The zero value
// is ready for Add.
type Index struct {
	docs     []Doc
	postings map[string][]posting
	frozen   bool
}

// New returns an empty index.
func New() *Index {
	return &Index{postings: make(map[string][]posting)}
}

// Add indexes a document's raw text (tokenized, stop-worded and stemmed
// internally) and returns its id. Add panics after Freeze.
func (ix *Index) Add(url, title, body string, cluster int) int {
	if ix.frozen {
		panic("index: Add after Freeze")
	}
	if ix.postings == nil {
		ix.postings = make(map[string][]posting)
	}
	id := len(ix.docs)
	tf := make(map[string]float64)
	for _, t := range text.Terms(title + " " + body) {
		tf[t]++
	}
	var norm float64
	for t, f := range tf {
		ix.postings[t] = append(ix.postings[t], posting{doc: id, tf: f})
		norm += f * f
	}
	ix.docs = append(ix.docs, Doc{
		ID: id, URL: url, Title: title, Cluster: cluster, Len: math.Sqrt(norm),
	})
	return id
}

// Freeze finalizes the index for searching. Idempotent.
func (ix *Index) Freeze() {
	ix.frozen = true
}

// Docs returns the number of indexed documents.
func (ix *Index) Docs() int { return len(ix.docs) }

// Vocabulary returns the number of distinct terms.
func (ix *Index) Vocabulary() int { return len(ix.postings) }

// idf returns log(1 + N/n_t) — the +1 keeps single-document corpora
// searchable.
func (ix *Index) idf(term string) float64 {
	n := len(ix.postings[term])
	if n == 0 {
		return 0
	}
	return math.Log(1 + float64(len(ix.docs))/float64(n))
}

// Hit is one ranked retrieval result.
type Hit struct {
	URL     string
	Title   string
	Cluster int
	Score   float64
}

// Search ranks documents against the query by cosine-normalized TF-IDF
// and returns the top limit hits (all matches when limit <= 0).
func (ix *Index) Search(query string, limit int) []Hit {
	ix.Freeze()
	qterms := text.Terms(query)
	if len(qterms) == 0 {
		return nil
	}
	qtf := make(map[string]float64)
	for _, t := range qterms {
		qtf[t]++
	}
	scores := make(map[int]float64)
	for t, qf := range qtf {
		idf := ix.idf(t)
		if idf == 0 {
			continue
		}
		qw := qf * idf
		for _, p := range ix.postings[t] {
			scores[p.doc] += qw * p.tf * idf
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		d := ix.docs[doc]
		if d.Len > 0 {
			s /= d.Len
		}
		hits = append(hits, Hit{URL: d.URL, Title: d.Title, Cluster: d.Cluster, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].URL < hits[j].URL
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// ClusterHit aggregates retrieval evidence per cluster — the database-
// selection view: which groups of hidden-web databases best match the
// query.
type ClusterHit struct {
	Cluster int
	Score   float64
	// Matches is the number of member documents matching the query.
	Matches int
	// Best is the highest-scoring member.
	Best Hit
}

// SearchClusters ranks clusters by the sum of their members' retrieval
// scores.
func (ix *Index) SearchClusters(query string, limit int) []ClusterHit {
	hits := ix.Search(query, 0)
	agg := make(map[int]*ClusterHit)
	for _, h := range hits {
		ch := agg[h.Cluster]
		if ch == nil {
			ch = &ClusterHit{Cluster: h.Cluster, Best: h}
			agg[h.Cluster] = ch
		}
		ch.Score += h.Score
		ch.Matches++
		if h.Score > ch.Best.Score {
			ch.Best = h
		}
	}
	out := make([]ClusterHit, 0, len(agg))
	for _, ch := range agg {
		out = append(out, *ch)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Cluster < out[j].Cluster
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
