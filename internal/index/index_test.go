package index

import (
	"testing"

	"cafc/internal/webgen"
)

func sampleIndex() *Index {
	ix := New()
	ix.Add("http://a.example/", "Cheap Flights", "compare airfares from all major airlines nonstop flights", 0)
	ix.Add("http://b.example/", "Flight Deals", "last minute flight deals roundtrip tickets", 0)
	ix.Add("http://c.example/", "Job Search", "thousands of job openings employers hiring", 1)
	ix.Add("http://d.example/", "Books Online", "millions of new and used books for sale", 2)
	return ix
}

func TestSearchRanksRelevantFirst(t *testing.T) {
	ix := sampleIndex()
	hits := ix.Search("cheap flights", 10)
	if len(hits) < 2 {
		t.Fatalf("got %d hits", len(hits))
	}
	if hits[0].URL != "http://a.example/" {
		t.Errorf("top hit = %s", hits[0].URL)
	}
	for _, h := range hits {
		if h.Cluster != 0 {
			t.Errorf("non-flight page %s matched", h.URL)
		}
	}
}

func TestSearchStemsQuery(t *testing.T) {
	ix := sampleIndex()
	// "flying booked jobs" stems share roots with indexed terms.
	hits := ix.Search("jobs", 10)
	if len(hits) != 1 || hits[0].Cluster != 1 {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestSearchLimit(t *testing.T) {
	ix := sampleIndex()
	hits := ix.Search("flight deals airline tickets", 1)
	if len(hits) != 1 {
		t.Errorf("limit ignored: %d hits", len(hits))
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := sampleIndex()
	if hits := ix.Search("zebra quantum", 10); len(hits) != 0 {
		t.Errorf("got %d hits for nonsense", len(hits))
	}
	if hits := ix.Search("", 10); hits != nil {
		t.Errorf("empty query returned %v", hits)
	}
	if hits := ix.Search("the of and", 10); len(hits) != 0 {
		t.Errorf("stop-word query returned %d hits", len(hits))
	}
}

func TestSearchClustersAggregates(t *testing.T) {
	ix := sampleIndex()
	chs := ix.SearchClusters("flight tickets deals", 10)
	if len(chs) == 0 {
		t.Fatal("no cluster hits")
	}
	if chs[0].Cluster != 0 {
		t.Errorf("top cluster = %d", chs[0].Cluster)
	}
	if chs[0].Matches != 2 {
		t.Errorf("matches = %d, want 2", chs[0].Matches)
	}
	if chs[0].Best.URL == "" {
		t.Error("best hit missing")
	}
}

func TestAddAfterFreezePanics(t *testing.T) {
	ix := sampleIndex()
	ix.Freeze()
	defer func() {
		if recover() == nil {
			t.Error("Add after Freeze did not panic")
		}
	}()
	ix.Add("u", "t", "b", 0)
}

func TestCounts(t *testing.T) {
	ix := sampleIndex()
	if ix.Docs() != 4 {
		t.Errorf("Docs = %d", ix.Docs())
	}
	if ix.Vocabulary() == 0 {
		t.Error("empty vocabulary")
	}
}

func TestIndexOverGeneratedCorpus(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 12, FormPages: 80})
	ix := New()
	for i, u := range c.FormPages {
		ix.Add(u, "", c.ByURL[u].HTML, i%8)
	}
	// Domain-specific query should surface pages of that domain.
	hits := ix.Search("hotel room availability check in", 10)
	if len(hits) == 0 {
		t.Fatal("no hits on generated corpus")
	}
	hotel := 0
	for _, h := range hits[:min(5, len(hits))] {
		if c.Labels[h.URL] == webgen.Hotel {
			hotel++
		}
	}
	if hotel < 3 {
		t.Errorf("only %d of top 5 are hotel pages", hotel)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkSearch(b *testing.B) {
	c := webgen.Generate(webgen.Config{Seed: 1, FormPages: 160})
	ix := New()
	for i, u := range c.FormPages {
		ix.Add(u, "", c.ByURL[u].HTML, i%8)
	}
	ix.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search("cheap flights hotel rooms", 10)
	}
}
