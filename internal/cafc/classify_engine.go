package cafc

import (
	"math"
	"slices"
	"sync"

	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/obs"
	"cafc/internal/vector"
)

// classifyEngine is the classifier's zero-allocation serve path: the
// centroids are indexed once into per-space postings lists, the corpus
// IDF tables are flattened into ID-addressed arrays, and every
// per-request buffer lives in pooled scratch. A classify is then
// tokenized terms → packed TF-IDF vectors (built in scratch) → postings
// dot products → Equation 3 — with zero heap allocations at steady
// state (pinned by TestClassifyZeroAlloc).
//
// The fast path is bit-identical to the generic Embed → CompilePoint →
// Sim pipeline: the scratch embedder replicates vector.TFIDF's exact
// weight expression and vector.CompileLookup's sorted-ID norm sum, and
// scoring reuses the same postings + CosineDot machinery the clustering
// kernels are pinned against.
type classifyEngine struct {
	k       int
	feats   Features
	c1, c2  float64
	uniform bool
	pc, fc  *spaceIndex
	pool    sync.Pool // *classifyScratch

	// Approx serve state (Classifier.SetApprox): frozen centroid
	// signatures plus the hashers that produced them. Per-request query
	// signing lives in pooled scratch, so the approx path stays
	// allocation-free like the exact one.
	approx           cluster.Approx
	words            int
	pcH, fcH         vector.SimHasher
	pcScale, fcScale float64
	csigs            []uint64
	candCtr, fallCtr *obs.Counter
}

// spaceIndex is one feature space's frozen serve-side state.
type spaceIndex struct {
	dict *vector.Dict
	// idf is the corpus IDF table addressed by term ID — the map-free
	// equivalent of DocFreq.IDF for every interned term.
	idf  []float64
	post *vector.Postings
}

func newSpaceIndex(d *vector.Dict, df *vector.DocFreq, cents []vector.Compiled) *spaceIndex {
	idf := make([]float64, d.Len())
	for id := range idf {
		idf[id] = df.IDF(d.Term(uint32(id)))
	}
	return &spaceIndex{dict: d, idf: idf, post: vector.NewPostings(cents)}
}

// classifyScratch is one request's working memory.
type classifyScratch struct {
	pc, fc               termAcc
	sims, simsPC, simsFC []float64
	// Approx-path buffers (allocated only when the tier is enabled):
	// projection accumulator, query signature, per-centroid Hamming
	// distances and the counting histogram over Hamming values.
	sigAcc []float64
	qsig   []uint64
	ham    []int
	hist   []int
}

// termAcc accumulates one feature space's term statistics into dense
// vocabulary-sized arrays and packs them into a sorted compiled vector,
// reusing every buffer across requests.
type termAcc struct {
	tf, loc []float64
	touched []uint32
	ids     []uint32
	weights []float64
}

// embed builds the packed TF-IDF query vector for one feature space.
// The weight of each kept term is computed with vector.TFIDF's exact
// expression (avgLoc := locSum/tf; w := avgLoc * tf * idf) and the norm
// with vector.CompileLookup's sorted-ID summation, so the result equals
// CompileLookup(TFIDF(terms, df, uniform), dict) bit for bit. Terms the
// dictionary has never interned, or whose IDF is zero, are skipped —
// the same set both reference steps drop between them.
func (a *termAcc) embed(terms []vector.WeightedTerm, sp *spaceIndex, uniform bool) vector.Compiled {
	for _, wt := range terms {
		id, ok := sp.dict.ID(wt.Term)
		if !ok || sp.idf[id] == 0 {
			continue
		}
		if a.tf[id] == 0 {
			a.touched = append(a.touched, id)
		}
		a.tf[id]++
		if uniform {
			a.loc[id]++
		} else {
			a.loc[id] += wt.Loc
		}
	}
	slices.Sort(a.touched)
	a.ids = a.ids[:0]
	a.weights = a.weights[:0]
	var sum float64
	for _, id := range a.touched {
		f := a.tf[id]
		avgLoc := a.loc[id] / f
		w := avgLoc * f * sp.idf[id]
		a.ids = append(a.ids, id)
		a.weights = append(a.weights, w)
		sum += w * w
		a.tf[id], a.loc[id] = 0, 0
	}
	a.touched = a.touched[:0]
	return vector.Compiled{IDs: a.ids, Weights: a.weights, Norm: math.Sqrt(sum)}
}

// engine lazily builds the serve path; nil means the generic fallback
// (engine disabled, stale, unpacked centroids, or an empty classifier).
func (c *Classifier) engine() *classifyEngine {
	c.engineOnce.Do(func() {
		c.eng = buildClassifyEngine(c.model, c.centroids, c.approx)
	})
	return c.eng
}

func buildClassifyEngine(m *Model, centroids []cluster.Point, approx cluster.Approx) *classifyEngine {
	cp := m.engine()
	if cp == nil || len(centroids) == 0 {
		return nil
	}
	pcs := make([]vector.Compiled, len(centroids))
	fcs := make([]vector.Compiled, len(centroids))
	for i, cent := range centroids {
		p, ok := cent.(cpoint)
		if !ok {
			return nil
		}
		pcs[i] = p.pc
		fcs[i] = p.fc
	}
	c1, c2 := m.C1, m.C2
	if c1 == 0 && c2 == 0 {
		c1, c2 = 1, 1
	}
	e := &classifyEngine{
		k:       len(centroids),
		feats:   m.Features,
		c1:      c1,
		c2:      c2,
		uniform: m.Uniform,
		pc:      newSpaceIndex(cp.pcDict, m.PCDF, pcs),
		fc:      newSpaceIndex(cp.fcDict, m.FCDF, fcs),
	}
	if approx.Enabled {
		e.initApprox(m, approx, pcs, fcs)
	}
	e.pool.New = func() any { return e.newScratch() }
	return e
}

// initApprox freezes the candidate tier: centroid signatures are
// computed once here (the classifier's centroids never move), with the
// same two-space hashers the clustering signer uses.
func (e *classifyEngine) initApprox(m *Model, approx cluster.Approx, pcs, fcs []vector.Compiled) {
	ap := approx.WithDefaults()
	e.approx = ap
	e.pcH = vector.NewSimHasher(ap.Bits, ap.Seed)
	e.fcH = vector.NewSimHasher(ap.Bits, ap.Seed+fcSeedOffset)
	e.pcScale = math.Sqrt(e.c1)
	e.fcScale = math.Sqrt(e.c2)
	e.words = e.pcH.Words()
	e.csigs = make([]uint64, e.k*e.words)
	acc := make([]float64, e.pcH.Bits())
	for c := 0; c < e.k; c++ {
		signTwoSpace(e.csigs[c*e.words:(c+1)*e.words], acc, e.pcH, e.fcH, e.feats, e.pcScale, e.fcScale, pcs[c], fcs[c])
	}
	e.candCtr = m.Metrics.Counter("approx_candidates_total")
	e.fallCtr = m.Metrics.Counter("approx_fallback_total")
}

func (e *classifyEngine) newScratch() *classifyScratch {
	sc := &classifyScratch{
		pc: termAcc{
			tf:  make([]float64, e.pc.dict.Len()),
			loc: make([]float64, e.pc.dict.Len()),
		},
		fc: termAcc{
			tf:  make([]float64, e.fc.dict.Len()),
			loc: make([]float64, e.fc.dict.Len()),
		},
		sims:   make([]float64, e.k),
		simsPC: make([]float64, e.k),
		simsFC: make([]float64, e.k),
	}
	if e.approx.Enabled {
		sc.sigAcc = make([]float64, e.pcH.Bits())
		sc.qsig = make([]uint64, e.words)
		sc.ham = make([]int, e.k)
		sc.hist = make([]int, e.pcH.Bits()+1)
	}
	return sc
}

// scoreApprox is the candidate-tier Classify: sign the embedded page,
// rank centroids by Hamming distance, evaluate exact Equation 3 only
// for the top-C (tie-extended) candidates. Same comparison semantics as
// the clustering kernel — strict `>` in ascending centroid order — and
// the same counters; a tie extension reaching all k is the exact scan
// and counts as a fallback.
func (e *classifyEngine) scoreApprox(sc *classifyScratch, fp *form.FormPage) (int, float64) {
	var qp, qf vector.Compiled
	switch e.feats {
	case FCOnly:
		qf = sc.fc.embed(fp.FCTerms, e.fc, e.uniform)
	case PCOnly:
		qp = sc.pc.embed(fp.PCTerms, e.pc, e.uniform)
	default:
		qp = sc.pc.embed(fp.PCTerms, e.pc, e.uniform)
		qf = sc.fc.embed(fp.FCTerms, e.fc, e.uniform)
	}
	signTwoSpace(sc.qsig, sc.sigAcc, e.pcH, e.fcH, e.feats, e.pcScale, e.fcScale, qp, qf)
	for h := range sc.hist {
		sc.hist[h] = 0
	}
	w := e.words
	for c := 0; c < e.k; c++ {
		d := vector.Hamming(sc.qsig, e.csigs[c*w:(c+1)*w])
		sc.ham[c] = d
		sc.hist[d]++
	}
	C := e.approx.Candidates
	if C > e.k {
		C = e.k
	}
	threshold, seen := 0, 0
	for h := range sc.hist {
		seen += sc.hist[h]
		if seen >= C {
			threshold = h + e.approx.Margin
			break
		}
	}
	best, bestSim, evaluated := -1, -1.0, 0
	for c := 0; c < e.k; c++ {
		if sc.ham[c] > threshold {
			continue
		}
		sim := e.simOne(qp, qf, c)
		evaluated++
		if sim > bestSim {
			best, bestSim = c, sim
		}
	}
	e.candCtr.Add(int64(evaluated))
	if evaluated == e.k {
		e.fallCtr.Inc()
	}
	return best, bestSim
}

// simOne is one centroid's exact Equation 3 similarity against the
// already-embedded query, through the postings' dense rows — the same
// expression score uses for the full scan.
func (e *classifyEngine) simOne(qp, qf vector.Compiled, c int) float64 {
	switch e.feats {
	case FCOnly:
		return vector.CosineDot(e.fc.post.DotOne(qf, c), qf.Norm, e.fc.post.Norm(c))
	case PCOnly:
		return vector.CosineDot(e.pc.post.DotOne(qp, c), qp.Norm, e.pc.post.Norm(c))
	default:
		return (e.c1*vector.CosineDot(e.pc.post.DotOne(qp, c), qp.Norm, e.pc.post.Norm(c)) +
			e.c2*vector.CosineDot(e.fc.post.DotOne(qf, c), qf.Norm, e.fc.post.Norm(c))) / (e.c1 + e.c2)
	}
}

// score fills sc.sims with the page's Equation 3 similarity to every
// centroid, restricted to the active feature spaces — the same values,
// bit for bit, as model.Sim against each centroid.
func (e *classifyEngine) score(sc *classifyScratch, fp *form.FormPage) []float64 {
	sims := sc.sims
	switch e.feats {
	case FCOnly:
		q := sc.fc.embed(fp.FCTerms, e.fc, e.uniform)
		e.fc.post.Dots(q, sims)
		for c := range sims {
			sims[c] = vector.CosineDot(sims[c], q.Norm, e.fc.post.Norm(c))
		}
	case PCOnly:
		q := sc.pc.embed(fp.PCTerms, e.pc, e.uniform)
		e.pc.post.Dots(q, sims)
		for c := range sims {
			sims[c] = vector.CosineDot(sims[c], q.Norm, e.pc.post.Norm(c))
		}
	default:
		qp := sc.pc.embed(fp.PCTerms, e.pc, e.uniform)
		qf := sc.fc.embed(fp.FCTerms, e.fc, e.uniform)
		e.pc.post.Dots(qp, sc.simsPC)
		e.fc.post.Dots(qf, sc.simsFC)
		for c := range sims {
			sims[c] = (e.c1*vector.CosineDot(sc.simsPC[c], qp.Norm, e.pc.post.Norm(c)) +
				e.c2*vector.CosineDot(sc.simsFC[c], qf.Norm, e.fc.post.Norm(c))) / (e.c1 + e.c2)
		}
	}
	return sims
}
