package cafc

import (
	"math/rand"
	"reflect"
	"testing"

	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/webgen"
)

// alienHTML is a form page whose vocabulary the training corpus has
// never seen: every term misses both dictionaries, so all similarities
// must be exactly zero and Classify must reject.
const alienHTML = `<html><head><title>zzqx qwvv bbnn</title></head>
<body><p>mmzz kkqq ploo vrrt</p>
<form action="/x" method="get">Xyzzy: <input type="text" name="qq"><input type="submit" value="Frobnicate"></form>
</body></html>`

// classifierFixture builds a trained classifier plus a mixed bag of
// probe pages: training pages, held-out pages from a different seed,
// and the alien page.
func classifierFixture(t testing.TB) (*Classifier, []*form.FormPage) {
	t.Helper()
	p := buildPipeline(t, 100, 160)
	res := cluster.KMeans(p.model, p.k, nil, cluster.Options{Rand: rand.New(rand.NewSource(1))})
	clf := NewLabelledClassifier(p.model, res, p.classes)
	var probes []*form.FormPage
	for _, i := range []int{0, 7, 33, 150} {
		probes = append(probes, p.model.Pages[i].Raw)
	}
	held := webgen.Generate(webgen.Config{Seed: 200, FormPages: 24})
	for _, u := range held.FormPages {
		fp, err := form.Parse(u, held.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		probes = append(probes, fp)
	}
	alien, err := form.Parse("http://alien.example/search.html", alienHTML, form.DefaultWeights)
	if err != nil {
		t.Fatalf("alien page: %v", err)
	}
	probes = append(probes, alien)
	return clf, probes
}

// refRank recomputes the ranking through the generic reference pipeline
// the fast path must reproduce bit for bit: Embed → CompilePoint → Sim
// per centroid, then the shared sort.
func refRank(clf *Classifier, fp *form.FormPage) []Prediction {
	q := clf.model.CompilePoint(clf.model.PointOf(clf.model.Embed(fp)))
	out := make([]Prediction, 0, len(clf.centroids))
	for i, cent := range clf.centroids {
		out = append(out, Prediction{Cluster: i, Label: clf.Labels[i], Similarity: clf.model.Sim(q, cent)})
	}
	sortPredictions(out)
	return out
}

// TestClassifyFastMatchesReference pins the zero-allocation serve path
// to the generic embed-and-compare pipeline: identical similarities
// (float64-bit equal), identical order, identical accept/reject — for
// training pages, held-out pages and an out-of-vocabulary page.
func TestClassifyFastMatchesReference(t *testing.T) {
	clf, probes := classifierFixture(t)
	if clf.engine() == nil {
		t.Fatal("fast path inactive: classify engine not built")
	}
	for pi, fp := range probes {
		want := refRank(clf, fp)
		got := clf.Rank(fp)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("probe %d (%s): fast Rank differs from reference", pi, fp.URL)
		}
		pred, ok := clf.Classify(fp)
		if pred != want[0] {
			t.Errorf("probe %d (%s): Classify = %+v, reference top = %+v", pi, fp.URL, pred, want[0])
		}
		if wantOK := want[0].Similarity > 0; ok != wantOK {
			t.Errorf("probe %d (%s): Classify ok = %v, want %v", pi, fp.URL, ok, wantOK)
		}
	}
	// The alien page must have been rejected with all-zero similarities.
	alien := probes[len(probes)-1]
	if _, ok := clf.Classify(alien); ok {
		t.Error("alien page accepted by fast path")
	}
}

// TestClassifyFastMatchesReferenceFeatures repeats the equivalence
// check for the single-space similarity variants, which score through
// the engine's FCOnly/PCOnly branches.
func TestClassifyFastMatchesReferenceFeatures(t *testing.T) {
	p := buildPipeline(t, 101, 120)
	res := cluster.KMeans(p.model, p.k, nil, cluster.Options{Rand: rand.New(rand.NewSource(2))})
	for _, feats := range []Features{FCOnly, PCOnly} {
		mv := p.model.WithFeatures(feats)
		clf := NewLabelledClassifier(mv, res, p.classes)
		if clf.engine() == nil {
			t.Fatalf("%v: fast path inactive", feats)
		}
		for _, i := range []int{0, 11, 60} {
			fp := p.model.Pages[i].Raw
			want := refRank(clf, fp)
			if got := clf.Rank(fp); !reflect.DeepEqual(want, got) {
				t.Errorf("%v page %d: fast Rank differs from reference", feats, i)
			}
		}
	}
}

// TestClassifyFallbackWhenEngineDisabled pins the graceful degradation:
// with the compiled engine off the classifier must still answer (via
// the generic path), just without the fast engine.
func TestClassifyFallbackWhenEngineDisabled(t *testing.T) {
	p := buildPipeline(t, 102, 96)
	res := cluster.KMeans(p.model, p.k, nil, cluster.Options{Rand: rand.New(rand.NewSource(3))})
	m := p.model.WithEngine(false)
	clf := NewLabelledClassifier(m, res, p.classes)
	if clf.engine() != nil {
		t.Fatal("engine built despite DisableCompiled")
	}
	fp := p.model.Pages[4].Raw
	pred, ok := clf.Classify(fp)
	if !ok || pred.Similarity <= 0 {
		t.Errorf("fallback Classify rejected a training page: %+v ok=%v", pred, ok)
	}
	// The map engine sums cosines in map-iteration order, so repeated
	// calls differ in the last ULP — compare structurally, not bitwise.
	got := clf.Rank(fp)
	if len(got) != p.k || got[0].Cluster != pred.Cluster || got[0].Label != pred.Label {
		t.Errorf("fallback Rank disagrees with Classify: %+v vs %+v", got[0], pred)
	}
	if d := got[0].Similarity - pred.Similarity; d > 1e-9 || d < -1e-9 {
		t.Errorf("fallback similarities diverge beyond ULP noise: %v vs %v", got[0].Similarity, pred.Similarity)
	}
}

// TestClassifyZeroAlloc pins the serve path at zero steady-state heap
// allocations per classification.
func TestClassifyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; allocation counts are meaningless")
	}
	clf, probes := classifierFixture(t)
	if clf.engine() == nil {
		t.Fatal("fast path inactive: classify engine not built")
	}
	// Warm the pool and grow every scratch buffer to its steady state.
	for _, fp := range probes {
		clf.Classify(fp)
	}
	for _, fp := range []*form.FormPage{probes[0], probes[5]} {
		allocs := testing.AllocsPerRun(100, func() {
			clf.Classify(fp)
		})
		if allocs != 0 {
			t.Errorf("%s: Classify allocates %v/op, want 0", fp.URL, allocs)
		}
	}
}

// BenchmarkClassify measures the steady-state serve path (allocations
// reported; the regression gate is TestClassifyZeroAlloc).
func BenchmarkClassify(b *testing.B) {
	clf, probes := classifierFixture(b)
	for _, fp := range probes {
		clf.Classify(fp)
	}
	fp := probes[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Classify(fp)
	}
}
