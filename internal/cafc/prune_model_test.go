package cafc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/webgen"
)

// buildFormsModel parses a forms-only corpus into a model — the cheap
// fixture for determinism tests that only exercise the clustering
// kernels, not the link structure.
func buildFormsModel(t testing.TB, seed int64, n int) *Model {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n, FormsOnly: true})
	fps := make([]*form.FormPage, 0, len(c.FormPages))
	for _, u := range c.FormPages {
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		fps = append(fps, fp)
	}
	return Build(fps, false)
}

// assertPrunedKernelsMatch runs the exhaustive kernel once and demands
// every pruned variant, serial and parallel, reproduce its assignments,
// iteration count and centroids bit for bit on the model's two-space
// similarity.
func assertPrunedKernelsMatch(t *testing.T, m *Model, k int) {
	t.Helper()
	ref := cluster.KMeans(m, k, nil, cluster.Options{Rand: rand.New(rand.NewSource(6)), Workers: 1, Prune: cluster.PruneOff})
	for _, prune := range []cluster.PruneMode{cluster.PruneHamerly, cluster.PruneElkan} {
		for _, workers := range []int{1, 4} {
			got := cluster.KMeans(m, k, nil, cluster.Options{Rand: rand.New(rand.NewSource(6)), Workers: workers, Prune: prune})
			if !reflect.DeepEqual(ref.Assign, got.Assign) {
				t.Errorf("prune=%v workers=%d: assignments differ from exhaustive", prune, workers)
			}
			if ref.Iterations != got.Iterations {
				t.Errorf("prune=%v workers=%d: iterations %d != %d", prune, workers, got.Iterations, ref.Iterations)
			}
			if !reflect.DeepEqual(ref.Centroids, got.Centroids) {
				t.Errorf("prune=%v workers=%d: centroids differ from exhaustive", prune, workers)
			}
		}
	}
}

// TestPrunedKernelsMatchCorpus454 pins pruning determinism on the
// paper-scale corpus (454 form pages, one per paper site).
func TestPrunedKernelsMatchCorpus454(t *testing.T) {
	m := buildFormsModel(t, 454, 454)
	assertPrunedKernelsMatch(t, m, len(webgen.Domains))
}

// BenchmarkKMeansScale compares the clustering kernels on generated
// corpora at growing sizes, run to full convergence (the regime bound
// pruning targets). benchall -exp scale extends the same measurement to
// 20k/50k pages and records distance-computation counts.
func BenchmarkKMeansScale(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		m := buildFormsModel(b, int64(n), n)
		for _, prune := range []cluster.PruneMode{cluster.PruneOff, cluster.PruneHamerly, cluster.PruneElkan} {
			b.Run(fmt.Sprintf("n=%d/%s", n, prune), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cluster.KMeans(m, len(webgen.Domains), nil, cluster.Options{
						Rand: rand.New(rand.NewSource(6)), Prune: prune, MoveFrac: 1e-12,
					})
				}
			})
		}
	}
}

// TestPrunedKernelsMatchCorpus5k repeats the check at 5k pages, where
// the bound-maintenance arithmetic runs millions of times — any
// tie-safety slack error would surface here long before the synthetic
// blob corpora catch it.
func TestPrunedKernelsMatchCorpus5k(t *testing.T) {
	if testing.Short() {
		t.Skip("5k-page determinism check skipped in -short mode")
	}
	m := buildFormsModel(t, 5000, 5000)
	assertPrunedKernelsMatch(t, m, len(webgen.Domains))
}
