package cafc

import (
	"math/rand"

	"cafc/internal/cluster"
	"cafc/internal/hub"
	"cafc/internal/text"
	"cafc/internal/vector"
)

// The paper's Section 6 names two link-side features to exploit next:
// the anchor text around form-page citations and the quality of hub
// pages. This file implements both as drop-in variants of
// SelectHubClusters.

// AnchorProvider returns the anchor texts a hub page uses for its links
// (e.g. webgraph.Graph.OutAnchors).
type AnchorProvider func(hubURL string) []string

// anchorVector turns a hub cluster's anchor texts into a PC-space TF-IDF
// vector using the model's document frequencies.
func anchorVector(m *Model, c hub.Cluster, anchors AnchorProvider) vector.Vector {
	var wts []vector.WeightedTerm
	for _, h := range c.Hubs {
		for _, a := range anchors(h) {
			for _, t := range text.Terms(a) {
				wts = append(wts, vector.WeightedTerm{Term: t, Loc: 1})
			}
		}
	}
	return vector.TFIDF(wts, m.PCDF, m.Uniform)
}

// SelectHubClustersAnchored is SelectHubClusters with anchor-text
// enrichment: each candidate's centroid gets its hubs' anchor-text vector
// blended into the PC space before the farthest-first spread, so two hub
// clusters described with the same words ("cheap flight sites") are
// recognized as close even when their member pages differ.
func SelectHubClustersAnchored(m *Model, clusters []hub.Cluster, k, minCard int, anchors AnchorProvider) [][]int {
	kept := hub.Filter(clusters, minCard)
	if len(kept) == 0 {
		return nil
	}
	cands := hub.MemberSets(kept)
	if k >= len(cands) {
		return cands
	}
	// Enriched candidate points: centroid with anchor vector added to PC.
	pts := make([]cluster.Point, len(kept))
	for i, c := range kept {
		// Map-space centroid: the anchor vector is blended term-wise
		// before the point is (lazily) packed by Sim.
		cent := m.centroidMaps(c.Members)
		av := anchorVector(m, c, anchors)
		if av.Len() > 0 {
			pc := cent.pc.Clone()
			// Scale the anchor vector to a fraction of the centroid's
			// mass so member content stays the primary signal.
			norm := cent.pc.Norm()
			if an := av.Norm(); an > 0 && norm > 0 {
				av = av.Clone().Scale(0.5 * norm / an)
			}
			pc.AddVec(av)
			cent = point{pc: pc, fc: cent.fc}
		}
		pts[i] = cent
	}
	sel := farthestFirstPoints(m, pts, k)
	out := make([][]int, 0, len(sel))
	for _, i := range sel {
		out = append(out, cands[i])
	}
	return out
}

// CAFCCHAnchored is CAFC-CH with anchor-enriched seed selection.
func CAFCCHAnchored(m *Model, k int, clusters []hub.Cluster, minCard int, anchors AnchorProvider, rng *rand.Rand) cluster.Result {
	seeds := SelectHubClustersAnchored(m, clusters, k, minCard, anchors)
	return CAFCCSeeded(m, k, seeds, rng)
}

// HubQuality scores a hub cluster by the mean pairwise similarity of its
// members under the model — a content-cohesion proxy for "good hub".
// Singleton clusters score 0.
func HubQuality(m *Model, c hub.Cluster) float64 {
	n := len(c.Members)
	if n < 2 {
		return 0
	}
	var sum float64
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += m.PairSim(c.Members[i], c.Members[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

// SelectHubClustersByQuality drops the least cohesive fraction of the
// candidate hub clusters (after the cardinality filter) before the
// farthest-first spread. dropFrac in [0,1); 0.25 drops the bottom
// quartile.
func SelectHubClustersByQuality(m *Model, clusters []hub.Cluster, k, minCard int, dropFrac float64) [][]int {
	kept := hub.Filter(clusters, minCard)
	if len(kept) == 0 {
		return nil
	}
	scored := make([]struct {
		c hub.Cluster
		q float64
	}, len(kept))
	for i, c := range kept {
		scored[i].c = c
		scored[i].q = HubQuality(m, c)
	}
	// Selection-sort style partial ordering by descending quality.
	for i := 0; i < len(scored); i++ {
		for j := i + 1; j < len(scored); j++ {
			if scored[j].q > scored[i].q {
				scored[i], scored[j] = scored[j], scored[i]
			}
		}
	}
	keep := len(scored) - int(dropFrac*float64(len(scored)))
	if keep < k {
		keep = min2int(k, len(scored))
	}
	filtered := make([]hub.Cluster, 0, keep)
	for i := 0; i < keep; i++ {
		filtered = append(filtered, scored[i].c)
	}
	cands := hub.MemberSets(filtered)
	sel := cluster.FarthestFirst(m, cands, k)
	out := make([][]int, 0, len(sel))
	for _, i := range sel {
		out = append(out, cands[i])
	}
	return out
}

// CAFCCHQuality is CAFC-CH with quality-filtered seed selection.
func CAFCCHQuality(m *Model, k int, clusters []hub.Cluster, minCard int, dropFrac float64, rng *rand.Rand) cluster.Result {
	seeds := SelectHubClustersByQuality(m, clusters, k, minCard, dropFrac)
	return CAFCCSeeded(m, k, seeds, rng)
}

// farthestFirstPoints is cluster.FarthestFirst over precomputed points.
func farthestFirstPoints(m *Model, pts []cluster.Point, k int) []int {
	n := len(pts)
	if n == 0 || k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := 1 - m.Sim(pts[i], pts[j])
			dist[i][j], dist[j][i] = d, d
		}
	}
	bi, bj, best := 0, 1, -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist[i][j] > best {
				bi, bj, best = i, j, dist[i][j]
			}
		}
	}
	selected := []int{bi, bj}
	inSel := make([]bool, n)
	inSel[bi], inSel[bj] = true, true
	sumDist := make([]float64, n)
	for i := 0; i < n; i++ {
		sumDist[i] = dist[i][bi] + dist[i][bj]
	}
	for len(selected) < k {
		pick, bestSum := -1, -1.0
		for i := 0; i < n; i++ {
			if !inSel[i] && sumDist[i] > bestSum {
				pick, bestSum = i, sumDist[i]
			}
		}
		if pick < 0 {
			break
		}
		selected = append(selected, pick)
		inSel[pick] = true
		for i := 0; i < n; i++ {
			sumDist[i] += dist[i][pick]
		}
	}
	return selected
}

func min2int(a, b int) int {
	if a < b {
		return a
	}
	return b
}
