package cafc

import (
	"time"

	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/vector"
)

// Clone returns a copy-on-write snapshot of the model for incremental
// growth: the page and compiled-vector slices are fresh (their immutable
// elements are shared), and the document-frequency tables and term
// dictionaries are deep-copied so AppendPages on the clone never mutates
// state a concurrently served model still reads. This is the epoch
// builder's entry point — clone the served model, append, publish.
func (m *Model) Clone() *Model {
	c := *m
	c.Pages = append([]*Page(nil), m.Pages...)
	c.FCDF = m.FCDF.Clone()
	c.PCDF = m.PCDF.Clone()
	if m.compiled != nil {
		c.compiled = &compiledPages{
			pcDict: m.compiled.pcDict.Clone(),
			fcDict: m.compiled.fcDict.Clone(),
			pc:     append([]vector.Compiled(nil), m.compiled.pc...),
			fc:     append([]vector.Compiled(nil), m.compiled.fc...),
		}
	}
	return &c
}

// AppendPages grows the model with newly extracted form pages: the
// document-frequency tables absorb the new documents first, then each
// new page is embedded against the updated tables and compiled against
// the existing dictionaries (which only grow, so previously compiled
// vectors stay valid).
//
// The per-page phases shard across m.Workers with the same discipline
// as BuildWith — and are bit-identical to the serial path for every
// worker count. DF absorption is serial (order-dependent map updates);
// embedding is pure once the tables are frozen, so pages embed in
// parallel into index-addressed slots; dictionary interning is a
// serial pass in page order with each page's new terms sorted, exactly
// the ID assignment the serial incremental vector.Compile performed;
// and the final pack (CompileLookup against the now-frozen
// dictionaries) is again per-page pure and parallel.
//
// Existing pages keep the TF-IDF weights of the corpus state they were
// embedded under — the standard incremental-indexing approximation.
// Their stale IDF drift is what the stream layer's drift detector
// watches for; ReembedAll removes it.
//
// Not safe for concurrent use with readers of this model; incremental
// writers append to a Clone and atomically publish the result.
func (m *Model) AppendPages(fps []*form.FormPage) {
	if len(fps) == 0 {
		return
	}
	var t0 time.Time
	if m.Metrics != nil {
		t0 = time.Now()
	}
	for _, fp := range fps {
		m.FCDF.AddDocWeighted(fp.FCTerms)
		m.PCDF.AddDocWeighted(fp.PCTerms)
	}
	start := len(m.Pages)
	m.Pages = append(m.Pages, make([]*Page, len(fps))...)
	cluster.ParallelRange(len(fps), m.Workers, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			m.Pages[start+i] = m.Embed(fps[i])
		}
	})
	if cp := m.compiled; cp != nil && !m.DisableCompiled {
		var terms []string
		for _, p := range m.Pages[start:] {
			terms = internSorted(p.PC, cp.pcDict, terms)
			terms = internSorted(p.FC, cp.fcDict, terms)
		}
		cp.pc = append(cp.pc, make([]vector.Compiled, len(fps))...)
		cp.fc = append(cp.fc, make([]vector.Compiled, len(fps))...)
		cluster.ParallelRange(len(fps), m.Workers, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				p := m.Pages[start+i]
				cp.pc[start+i] = vector.CompileLookup(p.PC, cp.pcDict)
				cp.fc[start+i] = vector.CompileLookup(p.FC, cp.fcDict)
			}
		})
	} else {
		m.EnsureCompiled()
	}
	if m.Metrics != nil {
		vector.ObserveTFIDFBuild(m.Metrics, 2*len(fps), time.Since(t0))
	}
}

// ReembedAll recomputes every page's TF-IDF vectors against the current
// document-frequency tables and rebuilds the compiled representation
// from scratch, erasing the stale-IDF drift AppendPages accumulates. A
// model grown page by page and then reembedded is equivalent to one
// built in a single Build call over the same documents (term weights
// are identical; dictionary ID assignment may differ, which similarity
// is invariant to). The re-embedding shards across m.Workers — each
// page is a pure function of its retained extraction and the frozen DF
// tables — and EnsureCompiled's own two-phase compile is already
// parallel, so a full rebuild scales like the scratch build.
//
// Pages without a retained extraction result (Raw == nil, e.g. loaded
// from a snapshot) keep their stored vectors: there is nothing to
// re-derive them from.
func (m *Model) ReembedAll() {
	pages := make([]*Page, len(m.Pages))
	cluster.ParallelRange(len(m.Pages), m.Workers, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			if p := m.Pages[i]; p.Raw == nil {
				pages[i] = p
			} else {
				pages[i] = m.Embed(p.Raw)
			}
		}
	})
	m.Pages = pages
	m.compiled = nil
	m.EnsureCompiled()
}
