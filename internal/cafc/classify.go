package cafc

import (
	"sort"

	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/metrics"
)

// Classifier assigns new form pages to the domain of the nearest cluster
// centroid. The paper's Section 5 points out that once CAFC's clusters
// are built and labelled, they become an automatic classifier for newly
// discovered hidden-web sources — this type implements that suggestion.
type Classifier struct {
	model     *Model
	centroids []cluster.Point
	// Labels names each cluster (e.g. its majority gold domain, or a
	// human-assigned directory label).
	Labels []string
}

// NewClassifier builds a nearest-centroid classifier from a clustering of
// the model. labels[i] names cluster i; missing entries default to "".
func NewClassifier(m *Model, res cluster.Result, labels []string) *Classifier {
	c := &Classifier{model: m}
	members := cluster.Members(res.Assign, res.K)
	for i := 0; i < res.K; i++ {
		c.centroids = append(c.centroids, m.Centroid(members[i]))
		if i < len(labels) {
			c.Labels = append(c.Labels, labels[i])
		} else {
			c.Labels = append(c.Labels, "")
		}
	}
	return c
}

// NewClassifierFromCentroids builds a classifier around centroids that
// already exist (a clustering result's, or a published epoch's) instead
// of recomputing them from member lists — the live directory builds one
// per epoch, so the constructor must be O(k), not O(corpus).
func NewClassifierFromCentroids(m *Model, centroids []cluster.Point, labels []string) *Classifier {
	c := &Classifier{model: m, centroids: centroids}
	for i := range centroids {
		if i < len(labels) {
			c.Labels = append(c.Labels, labels[i])
		} else {
			c.Labels = append(c.Labels, "")
		}
	}
	return c
}

// NewLabelledClassifier derives cluster names from gold classes: each
// cluster is named after its majority class.
func NewLabelledClassifier(m *Model, res cluster.Result, classes []string) *Classifier {
	members := cluster.Members(res.Assign, res.K)
	labels := make([]string, res.K)
	for i, ms := range members {
		labels[i], _ = metrics.MajorityClass(ms, classes)
	}
	return NewClassifier(m, res, labels)
}

// Prediction is a ranked classification outcome.
type Prediction struct {
	Cluster    int
	Label      string
	Similarity float64
}

// Classify embeds the form page into the model's TF-IDF spaces and
// returns the most similar cluster. ok is false when the page has no
// similarity to any centroid (all-zero vectors).
func (c *Classifier) Classify(fp *form.FormPage) (Prediction, bool) {
	ranked := c.Rank(fp)
	if len(ranked) == 0 || ranked[0].Similarity == 0 {
		var p Prediction
		if len(ranked) > 0 {
			p = ranked[0]
		}
		return p, false
	}
	return ranked[0], true
}

// Rank returns every cluster ordered by decreasing similarity to the
// page.
func (c *Classifier) Rank(fp *form.FormPage) []Prediction {
	// Pack the embedded page once so the per-centroid Sim calls run on
	// the compiled path instead of re-packing per comparison.
	p := c.model.CompilePoint(c.model.PointOf(c.model.Embed(fp)))
	out := make([]Prediction, 0, len(c.centroids))
	for i, cent := range c.centroids {
		out = append(out, Prediction{
			Cluster:    i,
			Label:      c.Labels[i],
			Similarity: c.model.Sim(p, cent),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].Cluster < out[j].Cluster
	})
	return out
}
