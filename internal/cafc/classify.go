package cafc

import (
	"sort"
	"sync"

	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/metrics"
)

// Classifier assigns new form pages to the domain of the nearest cluster
// centroid. The paper's Section 5 points out that once CAFC's clusters
// are built and labelled, they become an automatic classifier for newly
// discovered hidden-web sources — this type implements that suggestion.
//
// Classify and Rank serve through a pooled, allocation-free fast path
// (see classifyEngine) whenever the model's compiled engine is active;
// the generic embed-and-compare path remains as the fallback and the
// semantic reference. A Classifier is safe for concurrent use once
// built.
type Classifier struct {
	model     *Model
	centroids []cluster.Point
	// Labels names each cluster (e.g. its majority gold domain, or a
	// human-assigned directory label).
	Labels []string

	approx cluster.Approx

	engineOnce sync.Once
	eng        *classifyEngine
}

// SetApprox opts Classify into the LSH candidate tier: each request
// signs the embedded page, ranks the centroids by signature Hamming
// distance, and evaluates exact Equation 3 similarity only against the
// top-C candidates (ties with the C-th candidate extend the set; a tie
// extension reaching all k degenerates to the exact scan and counts in
// approx_fallback_total). Rank always scores every centroid exactly —
// a full ranking has no candidate set to skip. Must be called before
// the first Classify/Rank (the serve engine freezes on first use);
// calls after that are ignored. No-op when the model's packed engine
// is inactive — approximation is an optimization, never a requirement.
func (c *Classifier) SetApprox(ap cluster.Approx) { c.approx = ap }

// NewClassifier builds a nearest-centroid classifier from a clustering of
// the model. labels[i] names cluster i; missing entries default to "".
func NewClassifier(m *Model, res cluster.Result, labels []string) *Classifier {
	c := &Classifier{model: m}
	members := cluster.Members(res.Assign, res.K)
	for i := 0; i < res.K; i++ {
		c.centroids = append(c.centroids, m.Centroid(members[i]))
		if i < len(labels) {
			c.Labels = append(c.Labels, labels[i])
		} else {
			c.Labels = append(c.Labels, "")
		}
	}
	return c
}

// NewClassifierFromCentroids builds a classifier around centroids that
// already exist (a clustering result's, or a published epoch's) instead
// of recomputing them from member lists — the live directory builds one
// per epoch, so the constructor must be O(k), not O(corpus).
func NewClassifierFromCentroids(m *Model, centroids []cluster.Point, labels []string) *Classifier {
	c := &Classifier{model: m, centroids: centroids}
	for i := range centroids {
		if i < len(labels) {
			c.Labels = append(c.Labels, labels[i])
		} else {
			c.Labels = append(c.Labels, "")
		}
	}
	return c
}

// NewLabelledClassifier derives cluster names from gold classes: each
// cluster is named after its majority class.
func NewLabelledClassifier(m *Model, res cluster.Result, classes []string) *Classifier {
	members := cluster.Members(res.Assign, res.K)
	labels := make([]string, res.K)
	for i, ms := range members {
		labels[i], _ = metrics.MajorityClass(ms, classes)
	}
	return NewClassifier(m, res, labels)
}

// Prediction is a ranked classification outcome.
type Prediction struct {
	Cluster    int
	Label      string
	Similarity float64
}

// Classify embeds the form page into the model's TF-IDF spaces and
// returns the most similar cluster. ok is false when the page has no
// similarity to any centroid (all-zero vectors). On the fast path this
// allocates nothing: the winner is a single pass over pooled scores,
// with the same lowest-index tie break the ranked path's sort produces.
func (c *Classifier) Classify(fp *form.FormPage) (Prediction, bool) {
	e := c.engine()
	if e == nil {
		ranked := c.Rank(fp)
		if len(ranked) == 0 || ranked[0].Similarity == 0 {
			var p Prediction
			if len(ranked) > 0 {
				p = ranked[0]
			}
			return p, false
		}
		return ranked[0], true
	}
	sc := e.pool.Get().(*classifyScratch)
	defer e.pool.Put(sc)
	if e.approx.Enabled {
		best, bestSim := e.scoreApprox(sc, fp)
		if bestSim > 0 {
			return Prediction{Cluster: best, Label: c.Labels[best], Similarity: bestSim}, true
		}
		// No candidate had any similarity; fall through to the exact
		// scan so the ok=false contract means "no centroid at all", not
		// "no candidate" (rare: an all-zero or out-of-vocabulary page).
	}
	best, bestSim := 0, -1.0
	for i, sim := range e.score(sc, fp) {
		if sim > bestSim {
			best, bestSim = i, sim
		}
	}
	return Prediction{Cluster: best, Label: c.Labels[best], Similarity: bestSim}, bestSim > 0
}

// Rank returns every cluster ordered by decreasing similarity to the
// page (ties broken by cluster index). Unlike Classify it must return a
// slice, so it allocates the result — but on the fast path nothing else.
func (c *Classifier) Rank(fp *form.FormPage) []Prediction {
	out := make([]Prediction, 0, len(c.centroids))
	if e := c.engine(); e != nil {
		sc := e.pool.Get().(*classifyScratch)
		defer e.pool.Put(sc)
		for i, sim := range e.score(sc, fp) {
			out = append(out, Prediction{Cluster: i, Label: c.Labels[i], Similarity: sim})
		}
		sortPredictions(out)
		return out
	}
	// Pack the embedded page once so the per-centroid Sim calls run on
	// the compiled path instead of re-packing per comparison.
	p := c.model.CompilePoint(c.model.PointOf(c.model.Embed(fp)))
	for i, cent := range c.centroids {
		out = append(out, Prediction{
			Cluster:    i,
			Label:      c.Labels[i],
			Similarity: c.model.Sim(p, cent),
		})
	}
	sortPredictions(out)
	return out
}

func sortPredictions(out []Prediction) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].Cluster < out[j].Cluster
	})
}
