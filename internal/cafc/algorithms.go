package cafc

import (
	"math/rand"

	"cafc/internal/cluster"
	"cafc/internal/hub"
)

// clusterOpts builds the Options every clustering entry point shares:
// the model's registry rides along so convergence telemetry lands
// wherever the model's build telemetry went.
func (m *Model) clusterOpts(rng *rand.Rand) cluster.Options {
	return cluster.Options{Rand: rng, Metrics: m.Metrics}
}

// CAFCC is Algorithm 1: k-means over the form-page model with randomly
// selected seeds and the <10%-movement stop criterion.
func CAFCC(m *Model, k int, rng *rand.Rand) cluster.Result {
	return cluster.KMeans(m, k, nil, m.clusterOpts(rng))
}

// CAFCCApprox is CAFC-C with the LSH candidate tier enabled: assignment
// scans evaluate exact Equation 3 similarity only against the top-C
// centroids by signature Hamming distance. Approximate — the exact
// CAFCC remains the reference — and deterministic for fixed rng/approx
// seeds.
func CAFCCApprox(m *Model, k int, rng *rand.Rand, ap cluster.Approx) cluster.Result {
	opts := m.clusterOpts(rng)
	opts.Approx = ap
	return cluster.KMeans(m, k, nil, opts)
}

// CAFCCMiniBatch is the sampled-update variant of CAFC-C for corpora
// where full Lloyd iterations no longer fit the rebuild budget: the
// streaming layer's drift-triggered re-cluster path runs this instead
// of CAFCC when Config.MiniBatchRebuild is set. ap composes the LSH
// candidate tier into the final full assignment pass; pass the zero
// Approx for exact assignment.
func CAFCCMiniBatch(m *Model, k int, rng *rand.Rand, mb cluster.MiniBatch, ap cluster.Approx) cluster.Result {
	opts := m.clusterOpts(rng)
	opts.Approx = ap
	return cluster.MiniBatchKMeans(m, k, nil, opts, mb)
}

// CAFCCSeeded runs the CAFC-C k-means loop from explicit seed groups
// (Algorithm 2 line 3 calls this with hub clusters; Section 4.3 calls it
// with HAC-derived seeds).
func CAFCCSeeded(m *Model, k int, seeds [][]int, rng *rand.Rand) cluster.Result {
	return cluster.KMeans(m, k, seeds, m.clusterOpts(rng))
}

// SelectHubClusters is Algorithm 3: drop hub clusters below the minimum
// cardinality, then greedily pick the k mutually most distant ones
// (farthest-first over centroid distance under Equation 3). It returns
// the chosen clusters' member sets, ready to use as k-means seeds.
// Intra-site hubs are assumed to have been eliminated during hub-cluster
// construction (package hub does this).
func SelectHubClusters(m *Model, clusters []hub.Cluster, k, minCard int) [][]int {
	kept := hub.Filter(clusters, minCard)
	if reg := m.Metrics; reg != nil {
		reg.Counter("hub_filter_dropped_total").Add(int64(len(clusters) - len(kept)))
		reg.Gauge("hub_clusters_kept").Set(float64(len(kept)))
	}
	cands := hub.MemberSets(kept)
	sel := cluster.FarthestFirst(m, cands, k)
	out := make([][]int, 0, len(sel))
	for _, i := range sel {
		out = append(out, cands[i])
	}
	m.Metrics.Gauge("hub_seeds_selected").Set(float64(len(out)))
	return out
}

// CAFCCH is Algorithm 2: compute hub-cluster seeds with SelectHubClusters,
// then run the CAFC-C k-means loop from those seeds so content similarity
// reinforces or negates the hub-induced similarity. When fewer than k
// usable hub clusters exist, k-means fills the remaining seeds randomly
// (matching Algorithm 1's seeding for the shortfall).
func CAFCCH(m *Model, k int, clusters []hub.Cluster, minCard int, rng *rand.Rand) cluster.Result {
	seeds := SelectHubClusters(m, clusters, k, minCard)
	return CAFCCSeeded(m, k, seeds, rng)
}

// HACResult runs the Section 4.3 baseline: hierarchical agglomerative
// clustering over the form-page model, cut at k clusters.
func HACResult(m *Model, k int, linkage cluster.Linkage) cluster.Result {
	return cluster.HACCutOpts(m, k, linkage, cluster.Options{Metrics: m.Metrics})
}

// HACSeededKMeans is the Section 4.3 hybrid: run HAC over the entire data
// set, cut at k, and use the resulting clusters as k-means seeds.
func HACSeededKMeans(m *Model, k int, linkage cluster.Linkage, rng *rand.Rand) cluster.Result {
	h := cluster.HACCutOpts(m, k, linkage, cluster.Options{Metrics: m.Metrics})
	seeds := cluster.Members(h.Assign, h.K)
	return CAFCCSeeded(m, k, seeds, rng)
}

// HACOverHubSeeds runs HAC from hub-cluster seeds: the CAFC-CH (HAC)
// column of Table 2. Unlike the k-means variant — which needs exactly k
// seeds and therefore runs SelectHubClusters — HAC can start from the
// whole filtered hub-cluster collection: every hub cluster above the
// minimum cardinality becomes an initial group (first cluster wins for
// pages cited by several hubs), remaining pages start as singletons, and
// agglomeration proceeds until k clusters remain.
func HACOverHubSeeds(m *Model, k int, clusters []hub.Cluster, minCard int, linkage cluster.Linkage) cluster.Result {
	seeds := hub.MemberSets(hub.Filter(clusters, minCard))
	return cluster.HACFromGroupsOpts(m, seeds, k, linkage, cluster.Options{Metrics: m.Metrics})
}
