package cafc

import (
	"math"

	"cafc/internal/cluster"
	"cafc/internal/vector"
)

// This file gives the form-page model the two optional Space
// capabilities the sub-linear paths need: SimHash signing (the LSH
// candidate tier of cluster.Options.Approx and the Classifier's approx
// serve path) and centroid blending (mini-batch k-means updates).

// fcSeedOffset separates the FC hyperplane draw from the PC one. The
// two dictionaries intern independently, so the same numeric term ID
// names unrelated terms in each space — signing both with one seed
// would correlate their hyperplanes through those ID collisions. An
// arbitrary odd 64-bit constant keeps the draws independent for every
// caller-chosen seed.
const fcSeedOffset = 0x5851F42D4C957F2D

// NewPointSigner implements cluster.Signer with Equation 3 fidelity.
// For the combined FC+PC configuration the signature is the SimHash of
// the concatenated per-space-normalized vectors
//
//	[ √C1 · PC/‖PC‖ , √C2 · FC/‖FC‖ ]
//
// whose norm is the constant √(C1+C2) for every page, so the cosine
// between two such concatenations is exactly
// (C1·cos(PC₁,PC₂) + C2·cos(FC₁,FC₂)) / (C1+C2) — Equation 3 itself.
// Hamming distance over these signatures therefore estimates the
// model's real similarity, not a proxy that ignores the space weights.
// Returns nil (exact-kernel fallback) when the packed engine is
// inactive.
func (m *Model) NewPointSigner(bits int, seed int64) cluster.PointSigner {
	cp := m.engine()
	if cp == nil {
		return nil
	}
	c1, c2 := m.C1, m.C2
	if c1 == 0 && c2 == 0 {
		c1, c2 = 1, 1
	}
	pcH := vector.NewSimHasher(bits, seed)
	return &modelSigner{
		cp:      cp,
		feats:   m.Features,
		pcScale: math.Sqrt(c1),
		fcScale: math.Sqrt(c2),
		pcH:     pcH,
		fcH:     vector.NewSimHasher(bits, seed+fcSeedOffset),
		acc:     make([]float64, pcH.Bits()),
	}
}

// modelSigner carries per-instance projection scratch — one per shard,
// like every PointSigner.
type modelSigner struct {
	cp               *compiledPages
	feats            Features
	pcScale, fcScale float64
	pcH, fcH         vector.SimHasher
	acc              []float64
}

func (s *modelSigner) Words() int { return s.pcH.Words() }

func (s *modelSigner) SignPoint(dst []uint64, i int) {
	s.sign(dst, cpoint{pc: s.cp.pc[i], fc: s.cp.fc[i]})
}

func (s *modelSigner) SignCentroid(dst []uint64, c cluster.Point) bool {
	cc, ok := c.(cpoint)
	if !ok {
		return false
	}
	s.sign(dst, cc)
	return true
}

func (s *modelSigner) sign(dst []uint64, p cpoint) {
	signTwoSpace(dst, s.acc, s.pcH, s.fcH, s.feats, s.pcScale, s.fcScale, p.pc, p.fc)
}

// signTwoSpace writes the feature-configuration-aware signature of a
// (pc, fc) pair into dst — shared by the clustering signer and the
// classifier's serve path so both tiers rank with the same signatures.
func signTwoSpace(dst []uint64, acc []float64, pcH, fcH vector.SimHasher, feats Features, pcScale, fcScale float64, pc, fc vector.Compiled) {
	switch feats {
	case FCOnly:
		fcH.Sign(dst, acc, fc)
	case PCOnly:
		pcH.Sign(dst, acc, pc)
	default:
		// Zero-norm spaces contribute nothing to Equation 3 (cosine
		// against a zero vector is 0), so they are skipped rather than
		// divided by.
		if pc.Norm > 0 {
			pcH.Accumulate(acc, pc, pcScale/pc.Norm)
		}
		if fc.Norm > 0 {
			fcH.Accumulate(acc, fc, fcScale/fc.Norm)
		}
		pcH.Finalize(dst, acc)
	}
}

// Blend implements cluster.Blender: the convex combination
// (1−t)·a + t·b, applied per feature space — the mini-batch k-means
// centroid update on form-page centroids. Packed points blend packed;
// map points blend term-wise.
func (m *Model) Blend(a, b cluster.Point, t float64) cluster.Point {
	ca, aok := a.(cpoint)
	cb, bok := b.(cpoint)
	if m.engine() != nil {
		if !aok {
			ca, aok = m.CompilePoint(a).(cpoint)
		}
		if !bok {
			cb, bok = m.CompilePoint(b).(cpoint)
		}
	}
	if aok && bok {
		return cpoint{
			pc: vector.BlendCompiled(ca.pc, cb.pc, t),
			fc: vector.BlendCompiled(ca.fc, cb.fc, t),
		}
	}
	pa := a.(point)
	pb := b.(point)
	return point{pc: blendMaps(pa.pc, pb.pc, t), fc: blendMaps(pa.fc, pb.fc, t)}
}

func blendMaps(a, b vector.Vector, t float64) vector.Vector {
	out := make(vector.Vector, len(a)+len(b))
	for term, w := range a {
		out[term] = (1 - t) * w
	}
	for term, w := range b {
		out[term] += t * w
	}
	return out
}
