package cafc

import (
	"math/rand"
	"testing"

	"cafc/internal/form"
	"cafc/internal/webgen"
)

// TestClassifierOnHeldOutPages trains on one corpus and classifies a
// disjoint corpus generated from a different seed — the paper's "use the
// labelled clusters to classify new sources" scenario.
func TestClassifierOnHeldOutPages(t *testing.T) {
	train := buildPipeline(t, 100, 240)
	res := CAFCCH(train.model, train.k, train.clusters, 8, rand.New(rand.NewSource(1)))
	clf := NewLabelledClassifier(train.model, res, train.classes)

	test := webgen.Generate(webgen.Config{Seed: 200, FormPages: 120})
	correct, total, rejected := 0, 0, 0
	for _, u := range test.FormPages {
		fp, err := form.Parse(u, test.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatal(err)
		}
		pred, ok := clf.Classify(fp)
		if !ok {
			rejected++
			continue
		}
		total++
		if pred.Label == string(test.Labels[u]) {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("classifier rejected everything")
	}
	acc := float64(correct) / float64(total)
	t.Logf("held-out accuracy %.3f (%d/%d, %d rejected)", acc, correct, total, rejected)
	if acc < 0.8 {
		t.Errorf("held-out accuracy %.3f too low", acc)
	}
	if rejected > 12 {
		t.Errorf("rejected %d of 120", rejected)
	}
}

func TestClassifierRankOrdering(t *testing.T) {
	p := buildPipeline(t, 101, 160)
	res := CAFCCH(p.model, p.k, p.clusters, 8, rand.New(rand.NewSource(1)))
	clf := NewLabelledClassifier(p.model, res, p.classes)

	ranked := clf.Rank(p.model.Pages[0].Raw)
	if len(ranked) != p.k {
		t.Fatalf("ranked %d clusters, want %d", len(ranked), p.k)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Similarity > ranked[i-1].Similarity {
			t.Fatal("rank not sorted by similarity")
		}
	}
	// A training page must classify to the label of the cluster it was
	// assigned to (not necessarily its gold class — clusters may err).
	pred, ok := clf.Classify(p.model.Pages[0].Raw)
	if !ok {
		t.Fatal("training page rejected")
	}
	assigned := res.Assign[0]
	if pred.Label != clf.Labels[assigned] {
		t.Errorf("training page classified as %q, its cluster's label is %q",
			pred.Label, clf.Labels[assigned])
	}
}

func TestClassifierRejectsEmptyPage(t *testing.T) {
	p := buildPipeline(t, 102, 80)
	res := CAFCC(p.model, p.k, rand.New(rand.NewSource(1)))
	clf := NewLabelledClassifier(p.model, res, p.classes)
	// A form page with vocabulary entirely outside the corpus.
	fp, err := form.Parse("http://alien.example/", `<html><head><title>zzqx</title></head>
	<body><form><input type=text name=qq><input type=submit value=zzgo></form></body></html>`, form.DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := clf.Classify(fp); ok {
		t.Error("page with unknown vocabulary should be rejected")
	}
}

func TestNewClassifierLabelPadding(t *testing.T) {
	p := buildPipeline(t, 103, 64)
	res := CAFCC(p.model, p.k, rand.New(rand.NewSource(1)))
	clf := NewClassifier(p.model, res, []string{"only-one"})
	if len(clf.Labels) != p.k {
		t.Fatalf("labels = %d, want %d", len(clf.Labels), p.k)
	}
	if clf.Labels[0] != "only-one" || clf.Labels[1] != "" {
		t.Errorf("labels = %v", clf.Labels[:2])
	}
}
