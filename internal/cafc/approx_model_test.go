package cafc

import (
	"math/rand"
	"reflect"
	"testing"

	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/obs"
	"cafc/internal/webgen"
)

// parseFormsCorpus parses a FormsOnly webgen corpus without building
// the model, so tests can build the same pages under different
// BuildOpts.
func parseFormsCorpus(t testing.TB, seed int64, n int) []*form.FormPage {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n, FormsOnly: true})
	fps := make([]*form.FormPage, 0, len(c.FormPages))
	for _, u := range c.FormPages {
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		fps = append(fps, fp)
	}
	return fps
}

// TestBuildParallelBitIdentical is the parallel-build contract: for the
// same corpus, BuildWith at any worker count produces the same model —
// same DF tables, same TF-IDF vectors, same packed points — bit for
// bit. The serial Workers:1 run is the reference.
func TestBuildParallelBitIdentical(t *testing.T) {
	fps := parseFormsCorpus(t, 2007, 454)
	ref := BuildWith(fps, BuildOpts{Workers: 1})
	for _, workers := range []int{2, 4, 0} {
		m := BuildWith(fps, BuildOpts{Workers: workers})
		if !reflect.DeepEqual(ref.Pages, m.Pages) {
			t.Fatalf("workers=%d: embedded pages differ from serial build", workers)
		}
		if m.FCDF.N() != ref.FCDF.N() || m.FCDF.Vocabulary() != ref.FCDF.Vocabulary() ||
			m.PCDF.N() != ref.PCDF.N() || m.PCDF.Vocabulary() != ref.PCDF.Vocabulary() {
			t.Fatalf("workers=%d: DF tables differ from serial build", workers)
		}
		for i := 0; i < ref.Len(); i++ {
			if !reflect.DeepEqual(ref.Point(i), m.Point(i)) {
				t.Fatalf("workers=%d: packed point %d differs from serial build", workers, i)
			}
		}
		// And the models cluster identically.
		rr := CAFCC(ref, 8, rand.New(rand.NewSource(5)))
		mr := CAFCC(m, 8, rand.New(rand.NewSource(5)))
		if !reflect.DeepEqual(rr.Assign, mr.Assign) {
			t.Fatalf("workers=%d: clustering the parallel-built model diverged", workers)
		}
	}
}

// TestBuildMatchesLegacyEntryPoints pins the delegation: Build and
// BuildMetrics are BuildWith with default workers, nothing more.
func TestBuildMatchesLegacyEntryPoints(t *testing.T) {
	fps := parseFormsCorpus(t, 7, 60)
	a := Build(fps, false)
	b := BuildWith(fps, BuildOpts{})
	if !reflect.DeepEqual(a.Pages, b.Pages) {
		t.Error("Build diverged from BuildWith with default options")
	}
	for i := 0; i < a.Len(); i++ {
		if !reflect.DeepEqual(a.Point(i), b.Point(i)) {
			t.Fatalf("packed point %d differs between Build and BuildWith", i)
		}
	}
}

// TestModelApproxOffBitIdentical is the model-level opt-in property:
// clustering with a zero-value Approx is bit-identical to CAFCC — the
// candidate tier must change nothing until asked for. 454 pages here;
// the 5k corpus runs under -short skip in TestModelApproxOff5k.
func TestModelApproxOffBitIdentical(t *testing.T) {
	assertApproxOffIdentical(t, buildFormsModel(t, 2007, 454), 8)
}

func TestModelApproxOff5k(t *testing.T) {
	if testing.Short() {
		t.Skip("5k-page corpus build is expensive; run without -short")
	}
	assertApproxOffIdentical(t, buildFormsModel(t, 2007, 5000), 8)
}

func assertApproxOffIdentical(t *testing.T, m *Model, k int) {
	t.Helper()
	ref := CAFCC(m, k, rand.New(rand.NewSource(5)))
	got := cluster.KMeans(m, k, nil, cluster.Options{Rand: rand.New(rand.NewSource(5)), Approx: cluster.Approx{}})
	if !reflect.DeepEqual(ref.Assign, got.Assign) || ref.Iterations != got.Iterations {
		t.Error("zero-value Approx perturbed the exact CAFC-C run")
	}
}

// TestModelSignerDeterministic pins signature determinism on the real
// two-space model: independent signer instances with the same seed
// produce identical signatures; a different seed draws different
// hyperplanes.
func TestModelSignerDeterministic(t *testing.T) {
	m := buildFormsModel(t, 3, 80)
	s1 := m.NewPointSigner(128, 7)
	s2 := m.NewPointSigner(128, 7)
	s3 := m.NewPointSigner(128, 8)
	if s1 == nil {
		t.Fatal("packed model must sign")
	}
	a := make([]uint64, s1.Words())
	b := make([]uint64, s1.Words())
	c := make([]uint64, s1.Words())
	differs := false
	for i := 0; i < m.Len(); i++ {
		s1.SignPoint(a, i)
		s2.SignPoint(b, i)
		s3.SignPoint(c, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("page %d: same-seed signers disagree", i)
		}
		if !reflect.DeepEqual(a, c) {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds never changed a signature")
	}
	// Centroid signing round-trips through the same code path.
	cent := m.Centroid([]int{0, 1, 2})
	if !s1.SignCentroid(a, cent) || !s2.SignCentroid(b, cent) {
		t.Fatal("packed centroid must sign")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same-seed centroid signatures disagree")
	}
}

// TestModelSignerDisabledEngine: the map-engine model cannot sign —
// the capability returns nil and approx runs fall back to exact.
func TestModelSignerDisabledEngine(t *testing.T) {
	m := buildFormsModel(t, 3, 40).WithEngine(false)
	if m.NewPointSigner(128, 7) != nil {
		t.Error("map-engine model must not sign (signatures require packed vectors)")
	}
	ref := CAFCC(m, 4, rand.New(rand.NewSource(5)))
	got := CAFCCApprox(m, 4, rand.New(rand.NewSource(5)), cluster.Approx{Enabled: true})
	if !reflect.DeepEqual(ref.Assign, got.Assign) {
		t.Error("unsignable model: approx run differs from exact run")
	}
}

// approxClassifierFixture builds an exact and an approx classifier over
// the same model and centroids, with a registry on the model so the
// serve counters are observable.
func approxClassifierFixture(t testing.TB, seed int64, n, k int) (*Model, *Classifier, *Classifier, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	m := BuildWith(parseFormsCorpus(t, seed, n), BuildOpts{Metrics: reg})
	res := CAFCC(m, k, rand.New(rand.NewSource(1)))
	exact := NewClassifierFromCentroids(m, res.Centroids, nil)
	approx := NewClassifierFromCentroids(m, res.Centroids, nil)
	approx.SetApprox(cluster.Approx{Enabled: true})
	return m, exact, approx, reg
}

// assertClassifierRecall classifies every corpus page through both
// classifiers and checks the approx one agrees on at least minRecall of
// them while touching the candidate counters.
func assertClassifierRecall(t *testing.T, seed int64, n, k int, minRecall float64) {
	t.Helper()
	m, exact, approx, reg := approxClassifierFixture(t, seed, n, k)
	same, total := 0, 0
	for _, p := range m.Pages {
		pe, _ := exact.Classify(p.Raw)
		pa, _ := approx.Classify(p.Raw)
		total++
		if pe.Cluster == pa.Cluster {
			same++
		}
	}
	recall := float64(same) / float64(total)
	if recall < minRecall {
		t.Errorf("approx classify recall %.4f over %d pages, want >= %v", recall, total, minRecall)
	}
	var cands float64
	for _, s := range reg.Snapshot() {
		if s.Name == "approx_candidates_total" {
			cands = s.Value
		}
	}
	if cands == 0 {
		t.Error("approx_candidates_total not recorded by the serve path")
	}
	if full := float64(total * k); cands >= full {
		t.Errorf("serve path evaluated %v similarities, not below the full-scan %v", cands, full)
	}
}

// TestClassifierApproxRecall: the serve-path recall floor on a small
// corpus (fast, always on) ...
func TestClassifierApproxRecall(t *testing.T) {
	assertClassifierRecall(t, 2007, 454, 8, 0.97)
}

// ... and the issue's contract corpus: k=8 over 20k webgen pages with
// recall >= 0.99. Expensive; skipped under -short.
func TestClassifierApproxRecall20k(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-page corpus build is expensive; run without -short")
	}
	if raceEnabled {
		t.Skip("race detector slows the 20k corpus severalfold; recall is unaffected by it")
	}
	assertClassifierRecall(t, 2007, 20000, 8, 0.99)
}

// TestClassifyApproxZeroAlloc pins the approx serve path to zero
// steady-state allocations, exactly like TestClassifyZeroAlloc pins the
// exact one.
func TestClassifyApproxZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; allocation counts are meaningless")
	}
	m, _, approx, _ := approxClassifierFixture(t, 9, 120, 6)
	probes := []*form.FormPage{m.Pages[0].Raw, m.Pages[50].Raw, m.Pages[119].Raw}
	for _, fp := range probes {
		approx.Classify(fp)
	}
	for _, fp := range probes {
		allocs := testing.AllocsPerRun(100, func() {
			approx.Classify(fp)
		})
		if allocs != 0 {
			t.Errorf("%s: approx Classify allocates %v/op, want 0", fp.URL, allocs)
		}
	}
}
