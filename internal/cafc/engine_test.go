package cafc

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cafc/internal/cluster"
)

// TestEnginesAgree holds the compiled two-space engine to the map
// engine: pairwise Equation 3 similarities agree within 1e-12 under
// every feature configuration, and identically-seeded clustering runs
// produce identical assignments.
func TestEnginesAgree(t *testing.T) {
	p := buildPipeline(t, 5, 120)
	compiled := p.model // Build compiles by default
	plain := p.model.WithEngine(false)
	if compiled.engine() == nil {
		t.Fatal("Build did not compile the model")
	}
	if plain.engine() != nil {
		t.Fatal("WithEngine(false) did not disable the engine")
	}
	for _, f := range []Features{FCPC, FCOnly, PCOnly} {
		mc, mp := compiled.WithFeatures(f), plain.WithFeatures(f)
		for i := 0; i < 40; i++ {
			for j := i; j < 40; j++ {
				got, want := mc.PairSim(i, j), mp.PairSim(i, j)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("%v: sim(%d,%d) compiled %g vs map %g", f, i, j, got, want)
				}
			}
		}
	}
	a := CAFCC(compiled, p.k, rand.New(rand.NewSource(3)))
	b := CAFCC(plain, p.k, rand.New(rand.NewSource(3)))
	if !reflect.DeepEqual(a.Assign, b.Assign) {
		t.Error("compiled engine changed CAFC-C assignments")
	}
	ha := HACResult(compiled, p.k, cluster.AverageLinkage)
	hb := HACResult(plain, p.k, cluster.AverageLinkage)
	if !reflect.DeepEqual(ha.Assign, hb.Assign) {
		t.Error("compiled engine changed HAC assignments")
	}
}

// TestEngineParallelDeterminism runs the full CAFC-CH pipeline on the
// packed model with 1 and 8 workers and demands identical output —
// the determinism guarantee at the paper-algorithm level.
func TestEngineParallelDeterminism(t *testing.T) {
	p := buildPipeline(t, 6, 120)
	seeds := SelectHubClusters(p.model, p.clusters, p.k, 2)
	serial := cluster.KMeans(p.model, p.k, seeds, cluster.Options{Rand: rand.New(rand.NewSource(1)), Workers: 1})
	parallel := cluster.KMeans(p.model, p.k, seeds, cluster.Options{Rand: rand.New(rand.NewSource(1)), Workers: 8})
	if !reflect.DeepEqual(serial.Assign, parallel.Assign) {
		t.Error("parallel CAFC-CH differs from serial")
	}
	ss := cluster.SilhouetteWorkers(p.model, serial.Assign, serial.K, 1)
	sp := cluster.SilhouetteWorkers(p.model, serial.Assign, serial.K, 8)
	if ss != sp {
		t.Errorf("silhouette over the model: parallel %v != serial %v", sp, ss)
	}
}

// TestMixedPointSim covers the packed/map mixed path: an externally
// embedded page (map point) compared against compiled centroids.
func TestMixedPointSim(t *testing.T) {
	p := buildPipeline(t, 7, 80)
	m := p.model
	res := CAFCC(m, p.k, rand.New(rand.NewSource(2)))
	members := cluster.Members(res.Assign, res.K)
	cent := m.Centroid(members[0]) // cpoint
	ext := m.PointOf(m.Pages[3])   // map point
	got := m.Sim(ext, cent)
	// Reference: the same comparison entirely on the map path.
	plain := m.WithEngine(false)
	want := plain.Sim(plain.PointOf(m.Pages[3]), plain.Centroid(members[0]))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("mixed Sim %g != map reference %g", got, want)
	}
	// And CompilePoint must be equivalent, not just compatible.
	packed := m.CompilePoint(ext)
	if math.Abs(m.Sim(packed, cent)-got) > 1e-12 {
		t.Error("CompilePoint changed the similarity")
	}
}
