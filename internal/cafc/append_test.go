package cafc

import (
	"math/rand"
	"reflect"
	"testing"

	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/vector"
	"cafc/internal/webgen"
)

// genFormPages extracts n form pages from the synthetic web.
func genFormPages(t testing.TB, seed int64, n int) []*form.FormPage {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n, FormsOnly: true})
	fps := make([]*form.FormPage, 0, n)
	for _, u := range c.FormPages {
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		fps = append(fps, fp)
	}
	return fps
}

// TestAppendPagesParallelBitIdentical pins the sharded incremental
// append to the serial reference: for every worker count, the grown
// model's compiled points, dictionaries, and DF-dependent centroids are
// bit-identical — the property the live ingest pipeline's epoch
// bit-identity rests on. Two batches exercise both the append-to-fresh
// and append-to-grown dictionary states.
func TestAppendPagesParallelBitIdentical(t *testing.T) {
	fps := genFormPages(t, 21, 90)
	base := BuildWith(fps[:30], BuildOpts{Workers: 1})

	grow := func(workers int) *Model {
		m := base.Clone()
		m.Workers = workers
		m.AppendPages(fps[30:60])
		m.AppendPages(fps[60:])
		return m
	}
	ref := grow(1)
	for _, workers := range []int{2, 3, 8} {
		got := grow(workers)
		if got.Len() != ref.Len() {
			t.Fatalf("workers=%d: %d pages, want %d", workers, got.Len(), ref.Len())
		}
		for i := 0; i < ref.Len(); i++ {
			if !reflect.DeepEqual(got.Point(i), ref.Point(i)) {
				t.Fatalf("workers=%d: compiled point %d differs from serial append", workers, i)
			}
			if !reflect.DeepEqual(got.Pages[i].PC, ref.Pages[i].PC) || !reflect.DeepEqual(got.Pages[i].FC, ref.Pages[i].FC) {
				t.Fatalf("workers=%d: map vectors of page %d differ from serial append", workers, i)
			}
		}
		members := make([]int, ref.Len())
		for i := range members {
			members[i] = i
		}
		if !reflect.DeepEqual(got.Centroid(members), ref.Centroid(members)) {
			t.Fatalf("workers=%d: whole-corpus centroid differs from serial append", workers)
		}
	}
}

// TestReembedAllParallelBitIdentical holds the sharded re-embed to the
// same standard across worker counts.
func TestReembedAllParallelBitIdentical(t *testing.T) {
	fps := genFormPages(t, 22, 60)
	build := func(workers int) *Model {
		m := BuildWith(fps[:40], BuildOpts{Workers: workers})
		m.Workers = workers
		m.AppendPages(fps[40:])
		m.ReembedAll()
		return m
	}
	ref := build(1)
	got := build(8)
	for i := 0; i < ref.Len(); i++ {
		if !reflect.DeepEqual(got.Point(i), ref.Point(i)) {
			t.Fatalf("workers=8: re-embedded point %d differs from serial", i)
		}
	}
}

// TestCentroidTopTermsMatchesMapPath pins the compiled cluster-labeling
// fast path to the map reference — vector.Centroid over the members'
// PC vectors, TopTerms with term-string tie-breaks — on real clusters,
// and checks CentroidWith reuse leaves no state behind in the shared
// accumulators.
func TestCentroidTopTermsMatchesMapPath(t *testing.T) {
	fps := genFormPages(t, 23, 100)
	m := Build(fps, false)
	res := CAFCC(m, 6, rand.New(rand.NewSource(4)))
	members := cluster.Members(res.Assign, res.K)

	acc := vector.NewAccumulator(0)
	var pacc, facc vector.Accumulator
	for c, mem := range members {
		if len(mem) == 0 {
			continue
		}
		pcs := make([]vector.Vector, len(mem))
		for i, p := range mem {
			pcs[i] = m.Pages[p].PC
		}
		want := vector.Centroid(pcs).TopTerms(8)
		got, ok := m.CentroidTopTerms(mem, 8, acc)
		if !ok {
			t.Fatal("engine inactive on a Build model")
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cluster %d: fast-path top terms %v, map path %v", c, got, want)
		}
		if !reflect.DeepEqual(m.CentroidWith(mem, &pacc, &facc), m.Centroid(mem)) {
			t.Errorf("cluster %d: CentroidWith with pooled accumulators differs from Centroid", c)
		}
	}
}
