package cafc

import (
	"errors"
	"math/rand"
	"testing"

	"cafc/internal/form"
	"cafc/internal/hub"
	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

// TestCAFCCHSurvivesBacklinkOutage verifies the degradation path: when the
// link: service is down, hub construction yields nothing and CAFC-CH must
// still return a complete clustering (it degenerates to CAFC-C's
// random-seeded behaviour).
func TestCAFCCHSurvivesBacklinkOutage(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 70, FormPages: 120})
	g := webgraph.FromCorpus(c)
	svc := webgraph.NewBacklinkService(g, 100, 0, 1)
	svc.SetUnavailable(true)

	var fps []*form.FormPage
	for _, u := range c.FormPages {
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, fp)
	}
	m := Build(fps, false)
	clusters, stats := hub.Build(c.FormPages, c.RootOf, svc.Backlinks)
	if len(clusters) != 0 {
		t.Fatalf("outage produced %d clusters", len(clusters))
	}
	if stats.QueryErrors == 0 {
		t.Error("outage not recorded in stats")
	}
	res := CAFCCH(m, 8, clusters, 8, rand.New(rand.NewSource(1)))
	if res.K != 8 {
		t.Fatalf("K = %d", res.K)
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 8 {
			t.Fatal("incomplete assignment under outage")
		}
	}
}

// TestCAFCCHPartialOutage flips the service down for half the queries: hub
// evidence is thinner but the pipeline must not fail.
func TestCAFCCHPartialOutage(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 71, FormPages: 120})
	g := webgraph.FromCorpus(c)
	svc := webgraph.NewBacklinkService(g, 100, 0, 1)
	calls := 0
	flaky := func(u string) ([]string, error) {
		calls++
		if calls%2 == 0 {
			return nil, errors.New("transient failure")
		}
		return svc.Backlinks(u)
	}
	var fps []*form.FormPage
	var classes []string
	for _, u := range c.FormPages {
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, fp)
		classes = append(classes, string(c.Labels[u]))
	}
	m := Build(fps, false)
	clusters, stats := hub.Build(c.FormPages, c.RootOf, flaky)
	if stats.QueryErrors == 0 {
		t.Fatal("no query errors recorded")
	}
	if len(clusters) == 0 {
		t.Fatal("half-up service should still yield some clusters")
	}
	res := CAFCCH(m, 8, clusters, 4, rand.New(rand.NewSource(1)))
	e, f := quality(res, classes)
	if f < 0.5 {
		t.Errorf("partial-outage F = %.3f (E=%.3f)", f, e)
	}
}

// TestLowCoverageBacklinkIndex drives the coverage knob to 20%: most hub
// evidence vanishes, quality degrades gracefully rather than collapsing.
func TestLowCoverageBacklinkIndex(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 72, FormPages: 160})
	g := webgraph.FromCorpus(c)
	svc := webgraph.NewBacklinkService(g, 100, 0.2, 1)
	var fps []*form.FormPage
	var classes []string
	for _, u := range c.FormPages {
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, fp)
		classes = append(classes, string(c.Labels[u]))
	}
	m := Build(fps, false)
	clusters, stats := hub.Build(c.FormPages, c.RootOf, svc.Backlinks)
	if stats.NoBacklinks == 0 {
		t.Error("20% coverage should orphan many pages")
	}
	res := CAFCCH(m, 8, clusters, 2, rand.New(rand.NewSource(1)))
	if res.K != 8 {
		t.Fatalf("K = %d", res.K)
	}
	_, f := quality(res, classes)
	if f < 0.4 {
		t.Errorf("low-coverage F = %.3f, collapsed", f)
	}
}

// TestModelWithMalformedPages feeds pathological HTML through the whole
// pipeline: truncated tags, nested forms, forms with only hidden fields
// mixed into an otherwise healthy corpus.
func TestModelWithMalformedPages(t *testing.T) {
	pathological := []string{
		`<title>Broken</title><form action=/q><input type=text name=q<input type=submit`,
		`<form><form><input type="text" name="inner"><input type=submit value=Search></form></form>`,
		`<form>Search <input name=q>`, /* unterminated */
	}
	var fps []*form.FormPage
	for i, h := range pathological {
		fp, err := form.Parse("http://broken.example/"+string(rune('a'+i)), h, form.DefaultWeights)
		if err != nil {
			continue // acceptable: rejected as not searchable
		}
		fps = append(fps, fp)
	}
	// Whatever parsed must survive model building and clustering.
	m := Build(fps, false)
	res := CAFCC(m, 2, rand.New(rand.NewSource(1)))
	if m.Len() > 0 && res.K == 0 {
		t.Error("clustering collapsed on malformed pages")
	}
}
