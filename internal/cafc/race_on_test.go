//go:build race

package cafc

// raceEnabled reports whether the race detector is active. Allocation
// assertions are skipped under -race: sync.Pool intentionally drops
// items when instrumented, so the pooled scratch reallocates.
const raceEnabled = true
