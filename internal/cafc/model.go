// Package cafc implements the paper's contribution: the form-page model
// FP(PC, FC) with its combined similarity measure (Equations 1-3), the
// CAFC-C clustering algorithm (Algorithm 1), hub-cluster seed selection
// (Algorithm 3 / SelectHubClusters) and CAFC-CH (Algorithm 2), plus the
// HAC-based variants evaluated in Section 4.3.
package cafc

import (
	"sort"
	"time"

	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/obs"
	"cafc/internal/vector"
)

// Features selects which feature spaces participate in the similarity —
// the FC / PC / FC+PC configurations of the experimental evaluation.
type Features int

const (
	// FCPC combines form and page contents (Equation 3) — the default.
	FCPC Features = iota
	// FCOnly uses form contents alone.
	FCOnly
	// PCOnly uses page contents alone.
	PCOnly
)

// String names the configuration as the paper's figures do.
func (f Features) String() string {
	switch f {
	case FCOnly:
		return "FC"
	case PCOnly:
		return "PC"
	case FCPC:
		return "FC+PC"
	}
	return "unknown"
}

// Page is one form page in model space: its URL plus the TF-IDF vectors of
// both feature spaces.
type Page struct {
	URL string
	FC  vector.Vector
	PC  vector.Vector
	// Raw keeps the extraction result for inspection (may be nil for
	// synthetic models).
	Raw *form.FormPage
}

// Model holds a corpus of form pages embedded in the two-space vector
// model, and implements cluster.Space so the generic algorithms can
// cluster it.
type Model struct {
	Pages []*Page
	// C1, C2 weigh the PC and FC cosine similarities in Equation 3. The
	// paper sets C1 = C2 = 1.
	C1, C2 float64
	// Features selects the active feature spaces.
	Features Features
	// FCDF and PCDF are the corpus document-frequency tables, retained so
	// pages outside the corpus can be embedded (Embed) and classified.
	FCDF, PCDF *vector.DocFreq
	// Uniform records whether LOC factors were suppressed at build time.
	Uniform bool
	// DisableCompiled forces the map-based similarity engine. The packed
	// engine (term-interned vectors with precomputed norms) is the
	// default; disabling it exists for A/B benchmarks and as an escape
	// hatch.
	DisableCompiled bool
	// Metrics, when non-nil, receives model-level telemetry (TF-IDF
	// build and engine-compile timing, vocabulary sizes) and is threaded
	// into every clustering run over this model, so k-means/HAC
	// convergence lands in the same registry. Nil disables all
	// instrumentation; results are identical either way.
	Metrics *obs.Registry
	// Workers caps the worker pool for the build phases (document
	// frequency counting, TF-IDF embedding, engine compile); <= 0 means
	// one per CPU. Results are bit-identical for every worker count —
	// shards write disjoint slots and every reduction runs serially in
	// shard order — so this is purely a wall-clock knob.
	Workers int

	compiled *compiledPages
}

// point is the two-space representative of a page or centroid.
type point struct {
	pc, fc vector.Vector
}

// compiledPages is the packed form of the model: one term dictionary
// and one sorted (termID, weight) vector per page, per feature space.
// It is built once (EnsureCompiled) and read-only afterwards, so the
// parallel clustering kernels can share it freely.
type compiledPages struct {
	pcDict, fcDict *vector.Dict
	pc, fc         []vector.Compiled
}

// cpoint is the packed two-space representative.
type cpoint struct {
	pc, fc vector.Compiled
}

// Build computes the form-page model for a set of extracted form pages:
// document frequencies are accumulated per feature space over the corpus,
// then each page gets its location-weighted TF-IDF vectors (Equation 1).
// uniform=true forces LOC_i = 1 (the Section 4.4 ablation).
func Build(fps []*form.FormPage, uniform bool) *Model {
	return BuildMetrics(fps, uniform, nil)
}

// BuildMetrics is Build with a metrics registry attached before the
// model is constructed, so the document-frequency accumulation, TF-IDF
// embedding and engine-compile phases are all timed. A nil registry is
// exactly Build.
func BuildMetrics(fps []*form.FormPage, uniform bool, reg *obs.Registry) *Model {
	return BuildWith(fps, BuildOpts{Uniform: uniform, Metrics: reg})
}

// BuildOpts configures BuildWith.
type BuildOpts struct {
	// Uniform forces LOC_i = 1 (the Section 4.4 ablation).
	Uniform bool
	// Metrics receives build telemetry; nil disables it.
	Metrics *obs.Registry
	// Workers caps the build worker pool; <= 0 means one per CPU, 1
	// forces the serial reference path. Bit-identical for every value.
	Workers int
}

// BuildWith is the parameterized model build. The three corpus-sized
// phases — document-frequency counting, TF-IDF embedding, engine
// compile — shard across Workers with the cluster package's fan-out
// contract: workers write disjoint, index-addressed slots, and the only
// cross-shard reduction (merging per-shard DF tables) runs serially in
// shard order over integer counts, so it is order-independent and the
// build is bit-identical for every worker count. The model build
// dominates end-to-end wall-clock over clustering itself (see
// BENCH_scale.json: ~14× the assignment cost at 5k pages), which is why
// it is the layer that shards.
func BuildWith(fps []*form.FormPage, o BuildOpts) *Model {
	reg := o.Metrics
	n := len(fps)
	shards := cluster.MaxShards(n, o.Workers)

	var t0 time.Time
	dfHist := reg.Histogram("model_df_build_seconds", obs.DurationBuckets)
	if dfHist != nil {
		t0 = time.Now()
	}
	fcParts := make([]*vector.DocFreq, shards)
	pcParts := make([]*vector.DocFreq, shards)
	cluster.ParallelRange(n, o.Workers, func(start, end, shard int) {
		fc, pc := vector.NewDocFreq(), vector.NewDocFreq()
		for _, fp := range fps[start:end] {
			fc.AddDocWeighted(fp.FCTerms)
			pc.AddDocWeighted(fp.PCTerms)
		}
		fcParts[shard], pcParts[shard] = fc, pc
	})
	fcDF := vector.NewDocFreq()
	pcDF := vector.NewDocFreq()
	for s := 0; s < shards; s++ {
		if fcParts[s] != nil {
			fcDF.Merge(fcParts[s])
			pcDF.Merge(pcParts[s])
		}
	}
	dfHist.ObserveSince(t0)
	vector.ObserveVocabulary(reg, "fc", fcDF)
	vector.ObserveVocabulary(reg, "pc", pcDF)

	m := &Model{C1: 1, C2: 1, Features: FCPC, FCDF: fcDF, PCDF: pcDF,
		Uniform: o.Uniform, Metrics: reg, Workers: o.Workers}
	if reg != nil {
		t0 = time.Now()
	}
	// The DF tables are frozen now, so every page embeds independently
	// into its own slot.
	m.Pages = make([]*Page, n)
	cluster.ParallelRange(n, o.Workers, func(start, end, shard int) {
		for i := start; i < end; i++ {
			m.Pages[i] = m.Embed(fps[i])
		}
	})
	if reg != nil {
		// Each page embeds into both feature spaces.
		vector.ObserveTFIDFBuild(reg, 2*n, time.Since(t0))
	}
	m.EnsureCompiled()
	return m
}

// EnsureCompiled builds the packed representation of every page. Build
// and LoadCorpus call it; call it again after appending Pages by hand.
// It must not race with the clustering kernels — compile first, then
// cluster. A no-op when the engine is disabled or already current.
func (m *Model) EnsureCompiled() {
	if m.DisableCompiled {
		return
	}
	if m.compiled != nil && len(m.compiled.pc) == len(m.Pages) {
		return
	}
	var t0 time.Time
	if m.Metrics != nil {
		t0 = time.Now()
	}
	// Two-phase compile. Phase 1 (serial): intern every term, walking
	// pages in order and each page's terms in sorted order — a pure
	// string-to-ID pass with no float work, so it stays cheap, and the
	// sort makes ID assignment deterministic across runs (a map-order
	// walk would reshuffle IDs, and with them the norm summation order,
	// every run). Phase 2 (sharded): pack each page against the frozen
	// dictionaries into its own slot. The dictionaries are complete
	// after phase 1, so CompileLookup drops nothing, and a fixed
	// dictionary makes every page's packed form independent of every
	// other page — bit-identical for any worker count.
	cp := &compiledPages{pcDict: vector.NewDict(), fcDict: vector.NewDict()}
	cp.pc = make([]vector.Compiled, len(m.Pages))
	cp.fc = make([]vector.Compiled, len(m.Pages))
	var terms []string
	for _, p := range m.Pages {
		terms = internSorted(p.PC, cp.pcDict, terms)
		terms = internSorted(p.FC, cp.fcDict, terms)
	}
	cluster.ParallelRange(len(m.Pages), m.Workers, func(start, end, shard int) {
		for i := start; i < end; i++ {
			cp.pc[i] = vector.CompileLookup(m.Pages[i].PC, cp.pcDict)
			cp.fc[i] = vector.CompileLookup(m.Pages[i].FC, cp.fcDict)
		}
	})
	m.compiled = cp
	if m.Metrics != nil {
		vector.ObserveCompile(m.Metrics, cp.pcDict, cp.fcDict, time.Since(t0))
	}
}

// internSorted interns v's terms into d in lexicographic order, reusing
// buf as scratch (returned possibly grown). This is the deterministic
// ID-assignment discipline the scratch compile (EnsureCompiled) and the
// incremental append share: page by page in order, each page's terms
// sorted — exactly the order vector.Compile would intern them — so
// compiled IDs are identical no matter which path built the model.
func internSorted(v vector.Vector, d *vector.Dict, buf []string) []string {
	// Only terms the dictionary has never seen need the sorted-intern
	// discipline: interning a known term is an ID no-op, and the new
	// terms' relative lexicographic order — which is all that determines
	// their IDs — is the same whether they are sorted alone or inside
	// the page's full term set. In steady state (saturated vocabulary)
	// this skips the sort almost entirely.
	buf = buf[:0]
	for t := range v {
		if _, ok := d.ID(t); !ok {
			buf = append(buf, t)
		}
	}
	if len(buf) == 0 {
		return buf
	}
	sort.Strings(buf)
	for _, t := range buf {
		d.Intern(t)
	}
	return buf
}

// engine returns the packed representation when it is active and
// current, nil when the map path must be used. Read-only: safe under
// concurrent Point/Sim/Centroid calls.
func (m *Model) engine() *compiledPages {
	if m.DisableCompiled || m.compiled == nil || len(m.compiled.pc) != len(m.Pages) {
		return nil
	}
	return m.compiled
}

// WithEngine returns a shallow copy of the model with the compiled
// engine enabled or disabled — the A/B switch the engine benchmarks
// use. Vectors are shared, so the copy is cheap.
func (m *Model) WithEngine(compiled bool) *Model {
	c := *m
	c.DisableCompiled = !compiled
	if compiled {
		c.EnsureCompiled()
	}
	return &c
}

// Embed projects a form page into the model's TF-IDF spaces using the
// corpus document frequencies. Terms unseen in the corpus get zero weight
// (they carry no corpus-level evidence). The page is NOT added to the
// model.
func (m *Model) Embed(fp *form.FormPage) *Page {
	return &Page{
		URL: fp.URL,
		FC:  vector.TFIDF(fp.FCTerms, m.FCDF, m.Uniform),
		PC:  vector.TFIDF(fp.PCTerms, m.PCDF, m.Uniform),
		Raw: fp,
	}
}

// PointOf returns the cluster.Point of an arbitrary embedded page, so
// external pages can be compared against model centroids.
func (m *Model) PointOf(p *Page) cluster.Point {
	return point{pc: p.PC, fc: p.FC}
}

// WithFeatures returns a shallow copy of the model restricted to the given
// feature configuration. Vectors are shared, so the copy is cheap.
func (m *Model) WithFeatures(f Features) *Model {
	c := *m
	c.Features = f
	return &c
}

// Len implements cluster.Space.
func (m *Model) Len() int { return len(m.Pages) }

// Point implements cluster.Space. With the compiled engine active it
// hands out packed points, so every downstream Sim is a merge join.
func (m *Model) Point(i int) cluster.Point {
	if cp := m.engine(); cp != nil {
		return cpoint{pc: cp.pc[i], fc: cp.fc[i]}
	}
	return point{pc: m.Pages[i].PC, fc: m.Pages[i].FC}
}

// Centroid implements cluster.Space: the per-space term-weight average of
// the members (Equation 4). On the compiled path members are summed into
// dense vocabulary-sized accumulators and packed back, O(total nnz).
func (m *Model) Centroid(members []int) cluster.Point {
	return m.CentroidWith(members, nil, nil)
}

// CentroidWith is Centroid with caller-owned accumulators for the PC
// and FC spaces, so a batch caller (the live mini-batch refresh touches
// several centroids per epoch) pays the two vocabulary-sized
// allocations once instead of per centroid. Nil accumulators allocate
// fresh ones — exactly Centroid; the map fallback ignores them. The
// result is bit-identical either way: Accumulator.Compile resets state,
// and term sums accumulate in the same member order.
func (m *Model) CentroidWith(members []int, pacc, facc *vector.Accumulator) cluster.Point {
	cp := m.engine()
	if cp == nil {
		return m.centroidMaps(members)
	}
	if pacc == nil {
		pacc = vector.NewAccumulator(cp.pcDict.Len())
	}
	if facc == nil {
		facc = vector.NewAccumulator(cp.fcDict.Len())
	}
	for _, mem := range members {
		pacc.Add(cp.pc[mem])
		facc.Add(cp.fc[mem])
	}
	f := 0.0
	if len(members) > 0 {
		f = 1 / float64(len(members))
	}
	return cpoint{pc: pacc.Compile(f), fc: facc.Compile(f)}
}

// CentroidTopTerms returns the top-n PC-space terms of the members'
// mean vector on the compiled engine, without materializing a map
// vector — the cluster-labeling hot path (the map detour used to cost
// ~38% of live-publish CPU). ok=false when the engine is inactive and
// the caller must fall back to the map path. The accumulator is
// optional scratch, as in CentroidWith.
//
// Bit-identity with vector.Centroid(pcs).TopTerms(n): the dense
// accumulator adds members in the same order and applies the same
// final 1/n scale, so every term weight is float-identical, and
// Compiled.TopTerms breaks weight ties on the term string exactly as
// Vector.TopTerms does.
func (m *Model) CentroidTopTerms(members []int, n int, acc *vector.Accumulator) ([]string, bool) {
	cp := m.engine()
	if cp == nil {
		return nil, false
	}
	if len(members) == 0 {
		return nil, true
	}
	if acc == nil {
		acc = vector.NewAccumulator(cp.pcDict.Len())
	}
	for _, mem := range members {
		acc.Add(cp.pc[mem])
	}
	return acc.Compile(1 / float64(len(members))).TopTerms(cp.pcDict, n), true
}

// centroidMaps is the map-based centroid, kept for the fallback engine
// and for callers that need to post-process the centroid's term maps
// (anchor-text enrichment).
func (m *Model) centroidMaps(members []int) point {
	pcs := make([]vector.Vector, len(members))
	fcs := make([]vector.Vector, len(members))
	for i, mem := range members {
		pcs[i] = m.Pages[mem].PC
		fcs[i] = m.Pages[mem].FC
	}
	return point{pc: vector.Centroid(pcs), fc: vector.Centroid(fcs)}
}

// CompilePoint converts a map-space point (PointOf, or a hand-built
// centroid) to the packed representation when the engine is active, so
// repeated Sim calls against compiled points skip the per-call
// conversion. Points from other representations pass through unchanged.
func (m *Model) CompilePoint(p cluster.Point) cluster.Point {
	mp, ok := p.(point)
	if !ok || m.engine() == nil {
		return p
	}
	return m.compilePoint(mp)
}

// compilePoint packs a map point against the engine's dictionaries,
// dropping terms the corpus has never weighted. Embedding guarantees
// such terms carry zero weight (IDF 0), so nothing is lost.
func (m *Model) compilePoint(p point) cpoint {
	cp := m.compiled
	return cpoint{
		pc: vector.CompileLookup(p.pc, cp.pcDict),
		fc: vector.CompileLookup(p.fc, cp.fcDict),
	}
}

// Sim implements cluster.Space with Equation 3:
//
//	sim(FP1, FP2) = (C1·cos(PC1, PC2) + C2·cos(FC1, FC2)) / (C1 + C2)
//
// restricted to the active feature spaces. Packed and map points mix
// freely; a map point meeting a packed one is packed on the fly.
func (m *Model) Sim(a, b cluster.Point) float64 {
	ca, aok := a.(cpoint)
	cb, bok := b.(cpoint)
	if aok || bok {
		if !aok {
			ca = m.compilePoint(a.(point))
		}
		if !bok {
			cb = m.compilePoint(b.(point))
		}
		switch m.Features {
		case FCOnly:
			return vector.CosineCompiled(ca.fc, cb.fc)
		case PCOnly:
			return vector.CosineCompiled(ca.pc, cb.pc)
		default:
			c1, c2 := m.C1, m.C2
			if c1 == 0 && c2 == 0 {
				c1, c2 = 1, 1
			}
			return (c1*vector.CosineCompiled(ca.pc, cb.pc) + c2*vector.CosineCompiled(ca.fc, cb.fc)) / (c1 + c2)
		}
	}
	pa, pb := a.(point), b.(point)
	switch m.Features {
	case FCOnly:
		return vector.Cosine(pa.fc, pb.fc)
	case PCOnly:
		return vector.Cosine(pa.pc, pb.pc)
	default:
		c1, c2 := m.C1, m.C2
		if c1 == 0 && c2 == 0 {
			c1, c2 = 1, 1
		}
		return (c1*vector.Cosine(pa.pc, pb.pc) + c2*vector.Cosine(pa.fc, pb.fc)) / (c1 + c2)
	}
}

// PairSim returns the Equation 3 similarity between pages i and j.
func (m *Model) PairSim(i, j int) float64 {
	return m.Sim(m.Point(i), m.Point(j))
}

// NewCentroidIndex implements cluster.CentroidScorer for the compiled
// engine: each feature space's centroids become a term → centroid
// postings index, and Sims combines the two cosines with exactly the
// operations (and operation order) of Sim's packed Equation 3 branch,
// so the scores are bit-identical. Returns nil — plain Sim fallback —
// when the engine is inactive or the centroids are not packed points.
func (m *Model) NewCentroidIndex(centroids []cluster.Point) cluster.CentroidIndex {
	cp := m.engine()
	if cp == nil {
		return nil
	}
	pcs := make([]vector.Compiled, len(centroids))
	fcs := make([]vector.Compiled, len(centroids))
	for i, c := range centroids {
		p, ok := c.(cpoint)
		if !ok {
			return nil
		}
		pcs[i] = p.pc
		fcs[i] = p.fc
	}
	c1, c2 := m.C1, m.C2
	if c1 == 0 && c2 == 0 {
		c1, c2 = 1, 1
	}
	return &modelCentroidIndex{
		cp:    cp,
		feats: m.Features,
		c1:    c1,
		c2:    c2,
		k:     len(centroids),
		pc:    vector.NewPostings(pcs),
		fc:    vector.NewPostings(fcs),
	}
}

// modelCentroidIndex scores model pages against a frozen centroid set
// through two per-space postings indexes. Immutable; safe for the
// parallel kernels.
type modelCentroidIndex struct {
	cp     *compiledPages
	feats  Features
	c1, c2 float64
	k      int
	pc, fc *vector.Postings
}

// ScratchLen implements cluster.CentroidIndex: the two-space combine
// needs one dot-product buffer per feature space.
func (ix *modelCentroidIndex) ScratchLen() int { return 2 * ix.k }

// Sims implements cluster.CentroidIndex.
func (ix *modelCentroidIndex) Sims(sims, scratch []float64, i int) {
	switch ix.feats {
	case FCOnly:
		q := ix.cp.fc[i]
		ix.fc.Dots(q, sims)
		for c := range sims {
			sims[c] = vector.CosineDot(sims[c], q.Norm, ix.fc.Norm(c))
		}
	case PCOnly:
		q := ix.cp.pc[i]
		ix.pc.Dots(q, sims)
		for c := range sims {
			sims[c] = vector.CosineDot(sims[c], q.Norm, ix.pc.Norm(c))
		}
	default:
		qp, qf := ix.cp.pc[i], ix.cp.fc[i]
		dp, df := scratch[:ix.k], scratch[ix.k:2*ix.k]
		ix.pc.Dots(qp, dp)
		ix.fc.Dots(qf, df)
		for c := range sims {
			sims[c] = (ix.c1*vector.CosineDot(dp[c], qp.Norm, ix.pc.Norm(c)) +
				ix.c2*vector.CosineDot(df[c], qf.Norm, ix.fc.Norm(c))) / (ix.c1 + ix.c2)
		}
	}
}

// SimOne implements cluster.CentroidIndex: one centroid, O(page nnz)
// via the postings' dense rows, with Sims' (and Sim's) exact combine.
func (ix *modelCentroidIndex) SimOne(_ []float64, i, c int) float64 {
	switch ix.feats {
	case FCOnly:
		q := ix.cp.fc[i]
		return vector.CosineDot(ix.fc.DotOne(q, c), q.Norm, ix.fc.Norm(c))
	case PCOnly:
		q := ix.cp.pc[i]
		return vector.CosineDot(ix.pc.DotOne(q, c), q.Norm, ix.pc.Norm(c))
	default:
		qp, qf := ix.cp.pc[i], ix.cp.fc[i]
		return (ix.c1*vector.CosineDot(ix.pc.DotOne(qp, c), qp.Norm, ix.pc.Norm(c)) +
			ix.c2*vector.CosineDot(ix.fc.DotOne(qf, c), qf.Norm, ix.fc.Norm(c))) / (ix.c1 + ix.c2)
	}
}
