package cafc

import (
	"math/rand"
	"testing"

	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/hub"
	"cafc/internal/metrics"
	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

// pipeline builds the full model + hub clusters + gold labels for a
// generated corpus.
type pipeline struct {
	model    *Model
	clusters []hub.Cluster
	stats    hub.Stats
	classes  []string
	k        int
}

func buildPipeline(t testing.TB, seed int64, n int) *pipeline {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
	return buildPipelineFromCorpus(t, c, webgraph.FromCorpus(c), seed)
}

func buildPipelineFromCorpus(t testing.TB, c *webgen.Corpus, g *webgraph.Graph, seed int64) *pipeline {
	t.Helper()
	var fps []*form.FormPage
	var classes []string
	for _, u := range c.FormPages {
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		fps = append(fps, fp)
		classes = append(classes, string(c.Labels[u]))
	}
	m := Build(fps, false)
	svc := webgraph.NewBacklinkService(g, 100, 0, seed)
	clusters, stats := hub.Build(c.FormPages, c.RootOf, svc.Backlinks)
	return &pipeline{model: m, clusters: clusters, stats: stats, classes: classes, k: len(webgen.Domains)}
}

func quality(res cluster.Result, classes []string) (entropy, f float64) {
	l := metrics.Labeling{Assign: res.Assign, Classes: classes}
	return metrics.Entropy(l), metrics.FMeasure(l)
}

func TestModelSimBounds(t *testing.T) {
	p := buildPipeline(t, 1, 64)
	m := p.model
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			s := m.PairSim(i, j)
			if s < 0 || s > 1 {
				t.Fatalf("sim(%d,%d) = %v out of range", i, j, s)
			}
			if d := s - m.PairSim(j, i); d > 1e-12 || d < -1e-12 {
				t.Fatalf("sim not symmetric at (%d,%d)", i, j)
			}
		}
		if s := m.PairSim(i, i); s < 0.999 {
			t.Errorf("self-sim(%d) = %v", i, s)
		}
	}
}

func TestSameDomainMoreSimilar(t *testing.T) {
	p := buildPipeline(t, 2, 120)
	m := p.model
	var same, diff float64
	var nSame, nDiff int
	for i := 0; i < m.Len(); i++ {
		for j := i + 1; j < m.Len(); j++ {
			s := m.PairSim(i, j)
			if p.classes[i] == p.classes[j] {
				same += s
				nSame++
			} else {
				diff += s
				nDiff++
			}
		}
	}
	if same/float64(nSame) <= diff/float64(nDiff) {
		t.Errorf("avg same-domain sim %.3f <= cross-domain %.3f",
			same/float64(nSame), diff/float64(nDiff))
	}
}

func TestFeaturesString(t *testing.T) {
	if FCOnly.String() != "FC" || PCOnly.String() != "PC" || FCPC.String() != "FC+PC" ||
		Features(9).String() != "unknown" {
		t.Error("feature names wrong")
	}
}

func TestWithFeaturesSharesVectors(t *testing.T) {
	p := buildPipeline(t, 3, 40)
	fc := p.model.WithFeatures(FCOnly)
	if fc.Features != FCOnly || p.model.Features != FCPC {
		t.Error("WithFeatures mutated the original")
	}
	if fc.Pages[0] != p.model.Pages[0] {
		t.Error("WithFeatures should share page storage")
	}
}

func TestCAFCCProducesReasonableClusters(t *testing.T) {
	p := buildPipeline(t, 4, 160)
	res := CAFCC(p.model, p.k, rand.New(rand.NewSource(1)))
	e, f := quality(res, p.classes)
	if f < 0.5 {
		t.Errorf("CAFC-C F-measure = %.3f, too low", f)
	}
	if e > 1.5 {
		t.Errorf("CAFC-C entropy = %.3f, too high", e)
	}
}

func TestCAFCCHBeatsCAFCC(t *testing.T) {
	p := buildPipeline(t, 5, 200)
	// Average CAFC-C over a few runs (paper averages 20).
	var sumE, sumF float64
	runs := 5
	for r := 0; r < runs; r++ {
		res := CAFCC(p.model, p.k, rand.New(rand.NewSource(int64(r))))
		e, f := quality(res, p.classes)
		sumE += e
		sumF += f
	}
	avgE, avgF := sumE/float64(runs), sumF/float64(runs)
	ch := CAFCCH(p.model, p.k, p.clusters, 8, rand.New(rand.NewSource(1)))
	chE, chF := quality(ch, p.classes)
	t.Logf("CAFC-C: E=%.3f F=%.3f; CAFC-CH: E=%.3f F=%.3f", avgE, avgF, chE, chF)
	if chE >= avgE {
		t.Errorf("CAFC-CH entropy %.3f >= CAFC-C %.3f", chE, avgE)
	}
	if chF <= avgF {
		t.Errorf("CAFC-CH F %.3f <= CAFC-C %.3f", chF, avgF)
	}
}

func TestCombinedBeatsSingleSpaces(t *testing.T) {
	// The paper's Figure 2 claim is about expected quality, so average
	// over corpus seeds and k-means restarts before comparing.
	var eFC, ePC, eBoth, fFC, fPC, fBoth float64
	seeds := []int64{6, 16, 26}
	for _, seed := range seeds {
		p := buildPipeline(t, seed, 200)
		score := func(f Features) (float64, float64) {
			m := p.model.WithFeatures(f)
			var sumE, sumF float64
			runs := 8
			for r := 0; r < runs; r++ {
				res := CAFCC(m, p.k, rand.New(rand.NewSource(int64(r))))
				e, fm := quality(res, p.classes)
				sumE += e
				sumF += fm
			}
			return sumE / float64(runs), sumF / float64(runs)
		}
		e, f := score(FCOnly)
		eFC += e
		fFC += f
		e, f = score(PCOnly)
		ePC += e
		fPC += f
		e, f = score(FCPC)
		eBoth += e
		fBoth += f
	}
	n := float64(len(seeds))
	eFC, ePC, eBoth, fFC, fPC, fBoth = eFC/n, ePC/n, eBoth/n, fFC/n, fPC/n, fBoth/n
	t.Logf("FC: E=%.3f F=%.3f | PC: E=%.3f F=%.3f | FC+PC: E=%.3f F=%.3f",
		eFC, fFC, ePC, fPC, eBoth, fBoth)
	if !(fBoth >= fFC && fBoth >= fPC) {
		t.Errorf("FC+PC F-measure %.3f not best (FC %.3f, PC %.3f)", fBoth, fFC, fPC)
	}
	if !(eBoth <= eFC && eBoth <= ePC) {
		t.Errorf("FC+PC entropy %.3f not best (FC %.3f, PC %.3f)", eBoth, eFC, ePC)
	}
}

func TestSelectHubClustersSpreadsDomains(t *testing.T) {
	p := buildPipeline(t, 7, 200)
	seeds := SelectHubClusters(p.model, p.clusters, p.k, 6)
	if len(seeds) == 0 {
		t.Fatal("no seeds selected")
	}
	// Count distinct majority domains across the selected seeds; a good
	// farthest-first selection should cover most of the 8 domains.
	domains := map[string]bool{}
	for _, s := range seeds {
		cls, _ := metrics.MajorityClass(s, p.classes)
		domains[cls] = true
	}
	if len(domains) < 5 {
		t.Errorf("selected seeds cover only %d domains", len(domains))
	}
}

func TestCAFCCHWithFewHubClusters(t *testing.T) {
	p := buildPipeline(t, 8, 80)
	// Absurdly high min cardinality -> almost no hub clusters; CAFC-CH
	// must still return a complete k-clustering via random fill.
	res := CAFCCH(p.model, p.k, p.clusters, 50, rand.New(rand.NewSource(1)))
	if res.K != p.k {
		t.Fatalf("K = %d", res.K)
	}
	for _, a := range res.Assign {
		if a < 0 || a >= res.K {
			t.Fatal("incomplete assignment")
		}
	}
}

func TestHACVariants(t *testing.T) {
	p := buildPipeline(t, 9, 120)
	hac := HACResult(p.model, p.k, cluster.AverageLinkage)
	if hac.K != p.k {
		t.Fatalf("HAC K = %d", hac.K)
	}
	_, fHAC := quality(hac, p.classes)
	if fHAC < 0.4 {
		t.Errorf("HAC F = %.3f, degenerate", fHAC)
	}
	seeded := HACSeededKMeans(p.model, p.k, cluster.AverageLinkage, rand.New(rand.NewSource(1)))
	if seeded.K != p.k {
		t.Fatalf("HAC-seeded K = %d", seeded.K)
	}
	hubHAC := HACOverHubSeeds(p.model, p.k, p.clusters, 6, cluster.AverageLinkage)
	if hubHAC.K > p.k {
		t.Fatalf("hub-seeded HAC K = %d", hubHAC.K)
	}
	for _, a := range hubHAC.Assign {
		if a < 0 {
			t.Fatal("hub-seeded HAC left pages unassigned")
		}
	}
	_, fHub := quality(hubHAC, p.classes)
	t.Logf("HAC F=%.3f, HAC-seeded-kmeans F=%.3f, hub-seeded HAC F=%.3f", fHAC, 0.0, fHub)
}

func TestUniformWeightsHurtEntropy(t *testing.T) {
	// Rebuild the same corpus with uniform LOC weights and compare
	// CAFC-CH quality — Section 4.4's ablation direction.
	c := webgen.Generate(webgen.Config{Seed: 10, FormPages: 200})
	var fpsW, fpsU []*form.FormPage
	var classes []string
	for _, u := range c.FormPages {
		w, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatal(err)
		}
		fpsW = append(fpsW, w)
		classes = append(classes, string(c.Labels[u]))
	}
	fpsU = fpsW // same raw terms; uniformity is applied in Build
	g := webgraph.FromCorpus(c)
	svc := webgraph.NewBacklinkService(g, 100, 0, 1)
	clusters, _ := hub.Build(c.FormPages, c.RootOf, svc.Backlinks)

	mW := Build(fpsW, false)
	mU := Build(fpsU, true)
	k := len(webgen.Domains)
	var eW, eU, fW, fU float64
	runs := 3
	for r := 0; r < runs; r++ {
		rw := CAFCCH(mW, k, clusters, 8, rand.New(rand.NewSource(int64(r))))
		ru := CAFCCH(mU, k, clusters, 8, rand.New(rand.NewSource(int64(r))))
		e1, f1 := quality(rw, classes)
		e2, f2 := quality(ru, classes)
		eW += e1 / float64(runs)
		fW += f1 / float64(runs)
		eU += e2 / float64(runs)
		fU += f2 / float64(runs)
	}
	t.Logf("differentiated: E=%.3f F=%.3f; uniform: E=%.3f F=%.3f", eW, fW, eU, fU)
	// The paper found a small F change but a clear entropy increase.
	// Weight schemes are corpus-dependent, so only require that the
	// differentiated weights are not substantially worse.
	if eW > eU+0.15 {
		t.Errorf("differentiated weights much worse: E %.3f vs %.3f", eW, eU)
	}
}

func TestBuildEmptyCorpus(t *testing.T) {
	m := Build(nil, false)
	if m.Len() != 0 {
		t.Errorf("Len = %d", m.Len())
	}
	res := CAFCC(m, 8, rand.New(rand.NewSource(1)))
	if res.K != 0 {
		t.Errorf("clustering empty corpus gave K=%d", res.K)
	}
}
