package cafc

import (
	"math/rand"
	"testing"

	"cafc/internal/hub"
	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

// enrichPipeline extends the test pipeline with the corpus link graph so
// anchor texts are available.
func enrichPipeline(t testing.TB, seed int64, n int) (*pipeline, *webgraph.Graph) {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
	g := webgraph.FromCorpus(c)
	p := buildPipelineFromCorpus(t, c, g, seed)
	return p, g
}

func TestAnchorProviderHasText(t *testing.T) {
	p, g := enrichPipeline(t, 61, 80)
	// Every usable hub cluster must expose anchor text through at least
	// one of its hub pages — the §6 feature depends on it.
	withAnchors := 0
	usable := 0
	for _, c := range p.clusters {
		if c.Cardinality() < 2 {
			continue
		}
		usable++
		for _, h := range c.Hubs {
			if len(g.OutAnchors(h)) > 0 {
				withAnchors++
				break
			}
		}
	}
	if usable == 0 {
		t.Fatal("no usable hub clusters")
	}
	if withAnchors < usable*9/10 {
		t.Errorf("only %d of %d usable hub clusters have anchor text", withAnchors, usable)
	}
}

func TestCAFCCHAnchoredWorks(t *testing.T) {
	p, g := enrichPipeline(t, 62, 200)
	res := CAFCCHAnchored(p.model, p.k, p.clusters, 8, g.OutAnchors, rand.New(rand.NewSource(1)))
	if res.K != p.k {
		t.Fatalf("K = %d", res.K)
	}
	e, f := quality(res, p.classes)
	// Anchor enrichment must stay in CAFC-CH's quality neighbourhood.
	base := CAFCCH(p.model, p.k, p.clusters, 8, rand.New(rand.NewSource(1)))
	eb, fb := quality(base, p.classes)
	t.Logf("anchored: E=%.3f F=%.3f; base: E=%.3f F=%.3f", e, f, eb, fb)
	if e > eb+0.25 {
		t.Errorf("anchor enrichment degraded entropy: %.3f vs %.3f", e, eb)
	}
	if f < fb-0.15 {
		t.Errorf("anchor enrichment degraded F: %.3f vs %.3f", f, fb)
	}
}

func TestHubQualityScoring(t *testing.T) {
	p, _ := enrichPipeline(t, 63, 120)
	// A cluster of same-domain pages must score higher than one mixing
	// domains.
	var sameDomain, mixed []int
	byClass := map[string][]int{}
	for i, cls := range p.classes {
		byClass[cls] = append(byClass[cls], i)
	}
	for _, members := range byClass {
		if len(members) >= 3 {
			sameDomain = members[:3]
			break
		}
	}
	seen := map[string]bool{}
	for i, cls := range p.classes {
		if !seen[cls] {
			seen[cls] = true
			mixed = append(mixed, i)
		}
		if len(mixed) == 3 {
			break
		}
	}
	qSame := HubQuality(p.model, hub.Cluster{Members: sameDomain})
	qMixed := HubQuality(p.model, hub.Cluster{Members: mixed})
	if qSame <= qMixed {
		t.Errorf("quality(same-domain)=%.3f <= quality(mixed)=%.3f", qSame, qMixed)
	}
	if q := HubQuality(p.model, hub.Cluster{Members: []int{0}}); q != 0 {
		t.Errorf("singleton quality = %v", q)
	}
}

func TestCAFCCHQualityWorks(t *testing.T) {
	p, _ := enrichPipeline(t, 64, 200)
	res := CAFCCHQuality(p.model, p.k, p.clusters, 8, 0.25, rand.New(rand.NewSource(1)))
	if res.K != p.k {
		t.Fatalf("K = %d", res.K)
	}
	e, _ := quality(res, p.classes)
	base := CAFCCH(p.model, p.k, p.clusters, 8, rand.New(rand.NewSource(1)))
	eb, _ := quality(base, p.classes)
	t.Logf("quality-filtered: E=%.3f; base: E=%.3f", e, eb)
	if e > eb+0.25 {
		t.Errorf("quality filtering degraded entropy: %.3f vs %.3f", e, eb)
	}
}

func TestSelectHubClustersEnrichedEdgeCases(t *testing.T) {
	p, g := enrichPipeline(t, 65, 64)
	if got := SelectHubClustersAnchored(p.model, nil, 8, 2, g.OutAnchors); got != nil {
		t.Errorf("no clusters -> %v", got)
	}
	if got := SelectHubClustersByQuality(p.model, nil, 8, 2, 0.25); got != nil {
		t.Errorf("no clusters -> %v", got)
	}
	// Very high minCard leaves nothing; algorithms must not panic.
	_ = SelectHubClustersAnchored(p.model, p.clusters, 8, 1000, g.OutAnchors)
	_ = SelectHubClustersByQuality(p.model, p.clusters, 8, 1000, 0.25)
}
