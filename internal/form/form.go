// Package form implements the paper's form-page model extraction: parsing
// Web forms out of HTML, splitting a page's visible text into the FC (form
// contents) and PC (page contents) feature spaces, assigning the location
// factors used by the weighted TF-IDF of Equation 1, and filtering
// non-searchable forms with a generic form classifier (the pre-processing
// step the paper delegates to Barbosa & Freire's crawler [3]).
package form

import (
	"errors"
	"strings"

	"cafc/internal/htmlx"
	"cafc/internal/text"
	"cafc/internal/vector"
)

// Field is a single form control.
type Field struct {
	// Tag is the element name: input, select, textarea or button.
	Tag string
	// Type is the input type attribute (lower-cased), e.g. "text",
	// "hidden", "submit". Empty for non-input controls.
	Type string
	// Name is the control's name attribute.
	Name string
	// Value is the control's value attribute.
	Value string
	// Options holds the visible text of <option> children for selects.
	Options []string
	// Label is the text of an associated <label> element, when one
	// exists (the HTML label attribute the paper notes is rarely used).
	Label string
}

// Hidden reports whether the field is invisible to users. The paper's
// footnote 3 excludes type="hidden" fields from consideration.
func (f *Field) Hidden() bool {
	return f.Tag == "input" && f.Type == "hidden"
}

// Typable reports whether a user can enter free text into the field.
func (f *Field) Typable() bool {
	if f.Tag == "textarea" {
		return true
	}
	if f.Tag != "input" {
		return false
	}
	switch f.Type {
	case "", "text", "search":
		return true
	}
	return false
}

// Selectable reports whether the field offers a fixed set of choices.
func (f *Field) Selectable() bool {
	if f.Tag == "select" {
		return true
	}
	return f.Tag == "input" && (f.Type == "checkbox" || f.Type == "radio")
}

// Form is one parsed HTML form.
type Form struct {
	// Action and Method come from the <form> tag.
	Action string
	Method string
	// Fields are the form's controls in document order.
	Fields []Field
	// Node is the form's subtree in the parsed document.
	Node *htmlx.Node
}

// VisibleFields returns the fields that are not hidden.
func (f *Form) VisibleFields() []Field {
	out := make([]Field, 0, len(f.Fields))
	for _, fld := range f.Fields {
		if !fld.Hidden() {
			out = append(out, fld)
		}
	}
	return out
}

// AttributeCount returns the number of visible, non-button fields — the
// paper's notion of single- vs multi-attribute forms.
func (f *Form) AttributeCount() int {
	n := 0
	for _, fld := range f.Fields {
		if fld.Hidden() {
			continue
		}
		switch {
		case fld.Tag == "button":
		case fld.Tag == "input" && (fld.Type == "submit" || fld.Type == "button" || fld.Type == "reset" || fld.Type == "image"):
		default:
			n++
		}
	}
	return n
}

// ExtractForms returns every <form> element in the document.
func ExtractForms(doc *htmlx.Node) []*Form {
	var out []*Form
	for _, fn := range doc.FindAll("form") {
		f := &Form{
			Action: fn.Attr0("action"),
			Method: strings.ToUpper(htmlx.CollapseSpace(fn.Attr0("method"))),
			Node:   fn,
		}
		if f.Method == "" {
			f.Method = "GET"
		}
		labels := labelTexts(fn)
		fn.Walk(func(n *htmlx.Node) bool {
			if n.Type != htmlx.ElementNode {
				return true
			}
			switch n.Data {
			case "input":
				f.Fields = append(f.Fields, Field{
					Tag:   "input",
					Type:  strings.ToLower(n.Attr0("type")),
					Name:  n.Attr0("name"),
					Value: n.Attr0("value"),
					Label: labels[n.Attr0("id")],
				})
			case "textarea":
				f.Fields = append(f.Fields, Field{
					Tag:   "textarea",
					Name:  n.Attr0("name"),
					Label: labels[n.Attr0("id")],
				})
			case "button":
				f.Fields = append(f.Fields, Field{
					Tag:   "button",
					Type:  strings.ToLower(n.Attr0("type")),
					Name:  n.Attr0("name"),
					Value: n.Text(),
				})
			case "select":
				fld := Field{
					Tag:   "select",
					Name:  n.Attr0("name"),
					Label: labels[n.Attr0("id")],
				}
				for _, opt := range n.FindAll("option") {
					if t := opt.Text(); t != "" {
						fld.Options = append(fld.Options, t)
					}
				}
				f.Fields = append(f.Fields, fld)
				return false // options already consumed
			}
			return true
		})
		out = append(out, f)
	}
	return out
}

// labelTexts maps control ids to the text of <label for=...> elements
// inside the form.
func labelTexts(formNode *htmlx.Node) map[string]string {
	m := make(map[string]string)
	for _, l := range formNode.FindAll("label") {
		if id := l.Attr0("for"); id != "" {
			m[id] = l.Text()
		}
	}
	return m
}

// nonSearchableMarkers are terms whose presence in a form's text or field
// names marks it as a non-searchable form (login, registration, mailing
// list, quote request, ...). This is a compact re-implementation of the
// generic form classifier the paper relies on as a pre-filter.
var nonSearchableMarkers = []string{
	"login", "log in", "logon", "sign in", "signin", "sign up", "signup",
	"register", "registration", "password", "subscribe", "newsletter",
	"mailing list", "contact us", "feedback", "quote request",
	"request a quote", "username", "user name", "create account",
	"forgot", "unsubscribe", "comment", "guestbook",
}

// IsSearchable reports whether the form looks like a query interface to a
// database rather than a login/registration/contact form. The rules:
//
//   - a password field always disqualifies;
//   - at least one typable or selectable visible field is required;
//   - text containing non-searchable markers (login/subscribe/...)
//     disqualifies unless search markers are also present.
func IsSearchable(f *Form) bool {
	hasQueryField := false
	for _, fld := range f.Fields {
		if fld.Tag == "input" && fld.Type == "password" {
			return false
		}
		if fld.Hidden() {
			continue
		}
		if fld.Typable() || fld.Selectable() {
			hasQueryField = true
		}
	}
	if !hasQueryField {
		return false
	}
	blob := strings.ToLower(formTextBlob(f))
	searchy := strings.Contains(blob, "search") || strings.Contains(blob, "find") ||
		strings.Contains(blob, "browse") || strings.Contains(blob, "lookup") ||
		strings.Contains(blob, "go")
	for _, marker := range nonSearchableMarkers {
		if strings.Contains(blob, marker) && !searchy {
			return false
		}
	}
	return true
}

// formTextBlob concatenates all textual evidence about a form: inner text,
// field names, values and labels.
func formTextBlob(f *Form) string {
	var b strings.Builder
	if f.Node != nil {
		b.WriteString(f.Node.Text())
	}
	for _, fld := range f.Fields {
		b.WriteByte(' ')
		b.WriteString(fld.Name)
		b.WriteByte(' ')
		b.WriteString(fld.Value)
		b.WriteByte(' ')
		b.WriteString(fld.Label)
	}
	return b.String()
}

// Weights holds the LOC factors of Equation 1. The paper uses a simple
// scheme: form contents weigh more than option-tag contents (schema terms
// over data values), and title terms weigh more than body terms.
type Weights struct {
	Title  float64 // PC: terms inside <title>
	Body   float64 // PC: all other page text
	Form   float64 // FC: form text outside <option>
	Option float64 // FC: text inside <option> tags
}

// DefaultWeights is the differentiated-weight configuration of Section
// 4.4: title terms above body terms in PC, and form (schema) terms above
// option (data) terms in FC.
var DefaultWeights = Weights{Title: 3, Body: 1, Form: 3, Option: 1}

// UniformWeights is the Section 4.4 ablation: every location counts 1.
var UniformWeights = Weights{Title: 1, Body: 1, Form: 1, Option: 1}

// FormPage is the paper's FP(PC, FC) object before TF-IDF weighting: the
// raw weighted term occurrences of both feature spaces plus metadata.
type FormPage struct {
	// URL locates the page; it doubles as the page identifier.
	URL string
	// Title is the document title text.
	Title string
	// Form is the searchable form this page was admitted for.
	Form *Form
	// FCTerms are the form-content term occurrences with LOC factors.
	FCTerms []vector.WeightedTerm
	// PCTerms are the page-content term occurrences with LOC factors.
	PCTerms []vector.WeightedTerm
}

// FormTermCount returns the number of term occurrences in FC — the paper's
// "form size" used for Table 1.
func (fp *FormPage) FormTermCount() int { return len(fp.FCTerms) }

// PageTermsOutsideForm returns the number of page term occurrences located
// outside the form (Table 1's "Page terms - Form terms").
func (fp *FormPage) PageTermsOutsideForm() int {
	d := len(fp.PCTerms) - len(fp.FCTerms)
	if d < 0 {
		return 0
	}
	return d
}

// ErrNoSearchableForm is returned when a page contains no searchable form.
var ErrNoSearchableForm = errors.New("form: page has no searchable form")

// Parse builds the FormPage for an HTML document. It extracts all forms,
// keeps the first searchable one (pages in the corpus are expected to be
// form pages already filtered by the crawler), and computes both feature
// spaces with the given location weights.
func Parse(url, html string, w Weights) (*FormPage, error) {
	doc := htmlx.Parse(html)
	return FromDoc(url, doc, w)
}

// FromDoc is Parse for an already-parsed document.
func FromDoc(url string, doc *htmlx.Node, w Weights) (*FormPage, error) {
	forms := ExtractForms(doc)
	var chosen *Form
	for _, f := range forms {
		if IsSearchable(f) {
			chosen = f
			break
		}
	}
	if chosen == nil {
		return nil, ErrNoSearchableForm
	}
	fp := &FormPage{
		URL:   url,
		Title: htmlx.Title(doc),
		Form:  chosen,
	}
	fp.FCTerms = formContentTerms(chosen, w)
	fp.PCTerms = pageContentTerms(doc, w)
	return fp, nil
}

// formContentTerms extracts FC: the stemmed terms of the text between the
// FORM tags, with option-tag content at the (lower) Option LOC factor, and
// visible control text (submit values, labels, alt text) at the Form
// factor. Hidden-field values are excluded.
func formContentTerms(f *Form, w Weights) []vector.WeightedTerm {
	var out []vector.WeightedTerm
	add := func(s string, loc float64) {
		for _, t := range text.Terms(s) {
			out = append(out, vector.WeightedTerm{Term: t, Loc: loc})
		}
	}
	var walk func(n *htmlx.Node, inOption bool)
	walk = func(n *htmlx.Node, inOption bool) {
		switch n.Type {
		case htmlx.TextNode:
			loc := w.Form
			if inOption {
				loc = w.Option
			}
			add(n.Data, loc)
			return
		case htmlx.ElementNode:
			switch n.Data {
			case "script", "style":
				return
			case "option":
				inOption = true
			case "input":
				typ := strings.ToLower(n.Attr0("type"))
				switch typ {
				case "submit", "button", "reset":
					add(n.Attr0("value"), w.Form)
				case "image":
					add(n.Attr0("alt"), w.Form)
				}
				return
			case "img":
				add(n.Attr0("alt"), w.Form)
				return
			}
		}
		for _, c := range n.Children {
			walk(c, inOption)
		}
	}
	if f.Node != nil {
		walk(f.Node, false)
	}
	return out
}

// pageContentTerms extracts PC: every visible term on the page, with title
// terms at the Title LOC factor and everything else at Body.
func pageContentTerms(doc *htmlx.Node, w Weights) []vector.WeightedTerm {
	var out []vector.WeightedTerm
	add := func(s string, loc float64) {
		for _, t := range text.Terms(s) {
			out = append(out, vector.WeightedTerm{Term: t, Loc: loc})
		}
	}
	var walk func(n *htmlx.Node, inTitle bool)
	walk = func(n *htmlx.Node, inTitle bool) {
		switch n.Type {
		case htmlx.TextNode:
			loc := w.Body
			if inTitle {
				loc = w.Title
			}
			add(n.Data, loc)
			return
		case htmlx.ElementNode:
			switch n.Data {
			case "script", "style":
				return
			case "title":
				inTitle = true
			case "img":
				add(n.Attr0("alt"), w.Body)
				return
			case "input":
				typ := strings.ToLower(n.Attr0("type"))
				if typ == "submit" || typ == "button" || typ == "reset" {
					add(n.Attr0("value"), w.Body)
				}
				return
			}
		}
		for _, c := range n.Children {
			walk(c, inTitle)
		}
	}
	walk(doc, false)
	return out
}
