// Package form implements the paper's form-page model extraction: parsing
// Web forms out of HTML, splitting a page's visible text into the FC (form
// contents) and PC (page contents) feature spaces, assigning the location
// factors used by the weighted TF-IDF of Equation 1, and filtering
// non-searchable forms with a generic form classifier (the pre-processing
// step the paper delegates to Barbosa & Freire's crawler [3]).
package form

import (
	"errors"
	"strings"
	"sync"

	"cafc/internal/htmlx"
	"cafc/internal/text"
	"cafc/internal/vector"
)

// Field is a single form control.
type Field struct {
	// Tag is the element name: input, select, textarea or button.
	Tag string
	// Type is the input type attribute (lower-cased), e.g. "text",
	// "hidden", "submit". Empty for non-input controls.
	Type string
	// Name is the control's name attribute.
	Name string
	// Value is the control's value attribute.
	Value string
	// Options holds the visible text of <option> children for selects.
	Options []string
	// Label is the text of an associated <label> element, when one
	// exists (the HTML label attribute the paper notes is rarely used).
	Label string
}

// Hidden reports whether the field is invisible to users. The paper's
// footnote 3 excludes type="hidden" fields from consideration.
func (f *Field) Hidden() bool {
	return f.Tag == "input" && f.Type == "hidden"
}

// Typable reports whether a user can enter free text into the field.
func (f *Field) Typable() bool {
	if f.Tag == "textarea" {
		return true
	}
	if f.Tag != "input" {
		return false
	}
	switch f.Type {
	case "", "text", "search":
		return true
	}
	return false
}

// Selectable reports whether the field offers a fixed set of choices.
func (f *Field) Selectable() bool {
	if f.Tag == "select" {
		return true
	}
	return f.Tag == "input" && (f.Type == "checkbox" || f.Type == "radio")
}

// Form is one parsed HTML form.
type Form struct {
	// Action and Method come from the <form> tag.
	Action string
	Method string
	// Text is the form subtree's visible text, captured at extraction so
	// classification and filtering keep working after the parse tree is
	// released.
	Text string
	// Fields are the form's controls in document order.
	Fields []Field
	// Node is the form's subtree in the parsed document. It is valid
	// during extraction; the pooled parsing entry points clear it before
	// the FormPage escapes, because the tree is arena-owned and recycled
	// on the parser's next page.
	Node *htmlx.Node
}

// VisibleFields returns the fields that are not hidden.
func (f *Form) VisibleFields() []Field {
	out := make([]Field, 0, len(f.Fields))
	for _, fld := range f.Fields {
		if !fld.Hidden() {
			out = append(out, fld)
		}
	}
	return out
}

// AttributeCount returns the number of visible, non-button fields — the
// paper's notion of single- vs multi-attribute forms.
func (f *Form) AttributeCount() int {
	n := 0
	for _, fld := range f.Fields {
		if fld.Hidden() {
			continue
		}
		switch {
		case fld.Tag == "button":
		case fld.Tag == "input" && (fld.Type == "submit" || fld.Type == "button" || fld.Type == "reset" || fld.Type == "image"):
		default:
			n++
		}
	}
	return n
}

// ExtractForms returns every <form> element in the document.
func ExtractForms(doc *htmlx.Node) []*Form {
	var out []*Form
	for _, fn := range doc.FindAll("form") {
		out = append(out, extractForm(fn))
	}
	return out
}

// extractForm builds one Form in a single subtree traversal: the visible
// text (byte-identical to fn.Text()), the controls in document order,
// and the <label for=...> texts all come out of the same walk. Label
// references resolve after the walk because a label may appear later in
// the document than the control it names.
func extractForm(fn *htmlx.Node) *Form {
	f := &Form{
		Action: fn.Attr0("action"),
		Method: strings.ToUpper(htmlx.CollapseSpace(fn.Attr0("method"))),
		Node:   fn,
	}
	if f.Method == "" {
		f.Method = "GET"
	}
	var (
		b      strings.Builder
		space  bool
		labels map[string]string // lazily built: most forms carry no labels
		forIDs []string          // parallel to f.Fields: label id to resolve, "" for none
	)
	var walk func(n *htmlx.Node, fields bool)
	walk = func(n *htmlx.Node, fields bool) {
		switch n.Type {
		case htmlx.TextNode:
			for _, r := range n.Data {
				if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\f' || r == '\u00a0' /* nbsp */ {
					space = true
					continue
				}
				if space && b.Len() > 0 {
					b.WriteByte(' ')
				}
				space = false
				b.WriteRune(r)
			}
			space = true // the separator between adjacent text nodes
			return
		case htmlx.ElementNode:
			switch n.Data {
			case "script", "style":
				// Raw-text content: invisible, and it cannot contain
				// controls or labels.
				return
			case "label":
				if id := n.Attr0("for"); id != "" {
					if labels == nil {
						labels = make(map[string]string)
					}
					labels[id] = n.Text()
				}
			case "input":
				if fields {
					f.Fields = append(f.Fields, Field{
						Tag:   "input",
						Type:  strings.ToLower(n.Attr0("type")),
						Name:  n.Attr0("name"),
						Value: n.Attr0("value"),
					})
					forIDs = append(forIDs, n.Attr0("id"))
				}
			case "textarea":
				if fields {
					f.Fields = append(f.Fields, Field{
						Tag:  "textarea",
						Name: n.Attr0("name"),
					})
					forIDs = append(forIDs, n.Attr0("id"))
				}
			case "button":
				if fields {
					f.Fields = append(f.Fields, Field{
						Tag:   "button",
						Type:  strings.ToLower(n.Attr0("type")),
						Name:  n.Attr0("name"),
						Value: n.Text(),
					})
					forIDs = append(forIDs, "")
				}
			case "select":
				if fields {
					fld := Field{
						Tag:  "select",
						Name: n.Attr0("name"),
					}
					for _, opt := range n.FindAll("option") {
						if t := opt.Text(); t != "" {
							fld.Options = append(fld.Options, t)
						}
					}
					f.Fields = append(f.Fields, fld)
					forIDs = append(forIDs, n.Attr0("id"))
					// Options are consumed; anything nested deeper is not
					// one of the form's own controls. The subtree still
					// contributes text and labels.
					fields = false
				}
			}
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			walk(c, fields)
		}
	}
	walk(fn, true)
	f.Text = b.String()
	for i, id := range forIDs {
		if id != "" {
			f.Fields[i].Label = labels[id]
		}
	}
	return f
}

// nonSearchableMarkers are terms whose presence in a form's text or field
// names marks it as a non-searchable form (login, registration, mailing
// list, quote request, ...). This is a compact re-implementation of the
// generic form classifier the paper relies on as a pre-filter.
var nonSearchableMarkers = []string{
	"login", "log in", "logon", "sign in", "signin", "sign up", "signup",
	"register", "registration", "password", "subscribe", "newsletter",
	"mailing list", "contact us", "feedback", "quote request",
	"request a quote", "username", "user name", "create account",
	"forgot", "unsubscribe", "comment", "guestbook",
}

// IsSearchable reports whether the form looks like a query interface to a
// database rather than a login/registration/contact form. The rules:
//
//   - a password field always disqualifies;
//   - at least one typable or selectable visible field is required;
//   - text containing non-searchable markers (login/subscribe/...)
//     disqualifies unless search markers are also present.
func IsSearchable(f *Form) bool {
	hasQueryField := false
	for _, fld := range f.Fields {
		if fld.Tag == "input" && fld.Type == "password" {
			return false
		}
		if fld.Hidden() {
			continue
		}
		if fld.Typable() || fld.Selectable() {
			hasQueryField = true
		}
	}
	if !hasQueryField {
		return false
	}
	blob := strings.ToLower(formTextBlob(f))
	searchy := strings.Contains(blob, "search") || strings.Contains(blob, "find") ||
		strings.Contains(blob, "browse") || strings.Contains(blob, "lookup") ||
		strings.Contains(blob, "go")
	for _, marker := range nonSearchableMarkers {
		if strings.Contains(blob, marker) && !searchy {
			return false
		}
	}
	return true
}

// formTextBlob concatenates all textual evidence about a form: inner text,
// field names, values and labels.
func formTextBlob(f *Form) string {
	var b strings.Builder
	if f.Text != "" {
		b.WriteString(f.Text)
	} else if f.Node != nil {
		b.WriteString(f.Node.Text())
	}
	for _, fld := range f.Fields {
		b.WriteByte(' ')
		b.WriteString(fld.Name)
		b.WriteByte(' ')
		b.WriteString(fld.Value)
		b.WriteByte(' ')
		b.WriteString(fld.Label)
	}
	return b.String()
}

// Weights holds the LOC factors of Equation 1. The paper uses a simple
// scheme: form contents weigh more than option-tag contents (schema terms
// over data values), and title terms weigh more than body terms.
type Weights struct {
	Title  float64 // PC: terms inside <title>
	Body   float64 // PC: all other page text
	Form   float64 // FC: form text outside <option>
	Option float64 // FC: text inside <option> tags
}

// DefaultWeights is the differentiated-weight configuration of Section
// 4.4: title terms above body terms in PC, and form (schema) terms above
// option (data) terms in FC.
var DefaultWeights = Weights{Title: 3, Body: 1, Form: 3, Option: 1}

// UniformWeights is the Section 4.4 ablation: every location counts 1.
var UniformWeights = Weights{Title: 1, Body: 1, Form: 1, Option: 1}

// FormPage is the paper's FP(PC, FC) object before TF-IDF weighting: the
// raw weighted term occurrences of both feature spaces plus metadata.
type FormPage struct {
	// URL locates the page; it doubles as the page identifier.
	URL string
	// Title is the document title text.
	Title string
	// Form is the searchable form this page was admitted for.
	Form *Form
	// FCTerms are the form-content term occurrences with LOC factors.
	FCTerms []vector.WeightedTerm
	// PCTerms are the page-content term occurrences with LOC factors.
	PCTerms []vector.WeightedTerm
}

// FormTermCount returns the number of term occurrences in FC — the paper's
// "form size" used for Table 1.
func (fp *FormPage) FormTermCount() int { return len(fp.FCTerms) }

// PageTermsOutsideForm returns the number of page term occurrences located
// outside the form (Table 1's "Page terms - Form terms").
func (fp *FormPage) PageTermsOutsideForm() int {
	d := len(fp.PCTerms) - len(fp.FCTerms)
	if d < 0 {
		return 0
	}
	return d
}

// ErrNoSearchableForm is returned when a page contains no searchable form.
var ErrNoSearchableForm = errors.New("form: page has no searchable form")

// Parser is a reusable form-page extractor: it owns a text.Tokenizer
// whose token→stem memo and output buffers persist across pages, so the
// tokenize/stem cost of the term walks — the bulk of Parse — amortizes
// toward zero allocations per document. Not safe for concurrent use;
// the package-level Parse/FromDoc hand out pooled parsers, and the
// ingest pipeline's shard workers each hold their own.
type Parser struct {
	tk *text.Tokenizer
	// arena backs the parse tree of the page in flight; it is recycled
	// on the next Parse, which is why Parse severs Form.Node below.
	arena *htmlx.Arena
	// scratch stages a page's term walk so the retained FCTerms/PCTerms
	// slices are single exact-size allocations instead of append-grown
	// ones — no growth garbage, no capacity overshoot pinned in the
	// model for the page's lifetime.
	scratch []vector.WeightedTerm
}

// NewParser returns a parser with fresh tokenizer state.
func NewParser() *Parser {
	return &Parser{tk: text.NewTokenizer(), arena: &htmlx.Arena{}}
}

// Parse builds the FormPage for an HTML document. It extracts all forms,
// keeps the first searchable one (pages in the corpus are expected to be
// form pages already filtered by the crawler), and computes both feature
// spaces with the given location weights.
func (p *Parser) Parse(url, html string, w Weights) (*FormPage, error) {
	p.arena.Reset()
	fp, err := p.FromDoc(url, htmlx.ParseArena(html, p.arena), w)
	if err != nil {
		return nil, err
	}
	// The tree is arena memory: it must not outlive this parser's next
	// page. Everything downstream needs only the extracted strings.
	fp.Form.Node = nil
	return fp, nil
}

// FromDoc is Parse for an already-parsed document.
func (p *Parser) FromDoc(url string, doc *htmlx.Node, w Weights) (*FormPage, error) {
	forms := ExtractForms(doc)
	var chosen *Form
	for _, f := range forms {
		if IsSearchable(f) {
			chosen = f
			break
		}
	}
	if chosen == nil {
		return nil, ErrNoSearchableForm
	}
	fp := &FormPage{
		URL:   url,
		Title: htmlx.Title(doc),
		Form:  chosen,
	}
	fp.FCTerms = p.formContentTerms(chosen, w)
	fp.PCTerms = p.pageContentTerms(doc, w)
	return fp, nil
}

// sealScratch copies the staged term walk into an exact-size slice the
// caller may retain, leaving the scratch buffer for the next page.
func (p *Parser) sealScratch() []vector.WeightedTerm {
	if len(p.scratch) == 0 {
		return nil
	}
	out := make([]vector.WeightedTerm, len(p.scratch))
	copy(out, p.scratch)
	return out
}

// parserPool recycles Parser state across the package-level entry
// points, so serial callers (and each P of a parallel caller) reuse one
// warm tokenizer instead of re-allocating per page.
var parserPool = sync.Pool{New: func() any { return NewParser() }}

// Parse is Parser.Parse on a pooled parser — the drop-in stateless
// entry point. Output is identical to a fresh parser's (the tokenizer
// memo is a pure-function cache).
func Parse(url, html string, w Weights) (*FormPage, error) {
	p := parserPool.Get().(*Parser)
	defer parserPool.Put(p)
	return p.Parse(url, html, w)
}

// FromDoc is Parse for an already-parsed document.
func FromDoc(url string, doc *htmlx.Node, w Weights) (*FormPage, error) {
	p := parserPool.Get().(*Parser)
	defer parserPool.Put(p)
	return p.FromDoc(url, doc, w)
}

// formContentTerms extracts FC: the stemmed terms of the text between the
// FORM tags, with option-tag content at the (lower) Option LOC factor, and
// visible control text (submit values, labels, alt text) at the Form
// factor. Hidden-field values are excluded.
func (p *Parser) formContentTerms(f *Form, w Weights) []vector.WeightedTerm {
	p.scratch = p.scratch[:0]
	add := func(s string, loc float64) {
		// tk.Terms reuses its output slice; the terms are copied into
		// the scratch before the next call, so the aliasing never
		// escapes.
		for _, t := range p.tk.Terms(s) {
			p.scratch = append(p.scratch, vector.WeightedTerm{Term: t, Loc: loc})
		}
	}
	var walk func(n *htmlx.Node, inOption bool)
	walk = func(n *htmlx.Node, inOption bool) {
		switch n.Type {
		case htmlx.TextNode:
			loc := w.Form
			if inOption {
				loc = w.Option
			}
			add(n.Data, loc)
			return
		case htmlx.ElementNode:
			switch n.Data {
			case "script", "style":
				return
			case "option":
				inOption = true
			case "input":
				typ := strings.ToLower(n.Attr0("type"))
				switch typ {
				case "submit", "button", "reset":
					add(n.Attr0("value"), w.Form)
				case "image":
					add(n.Attr0("alt"), w.Form)
				}
				return
			case "img":
				add(n.Attr0("alt"), w.Form)
				return
			}
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			walk(c, inOption)
		}
	}
	if f.Node != nil {
		walk(f.Node, false)
	}
	return p.sealScratch()
}

// pageContentTerms extracts PC: every visible term on the page, with title
// terms at the Title LOC factor and everything else at Body.
func (p *Parser) pageContentTerms(doc *htmlx.Node, w Weights) []vector.WeightedTerm {
	p.scratch = p.scratch[:0]
	add := func(s string, loc float64) {
		for _, t := range p.tk.Terms(s) {
			p.scratch = append(p.scratch, vector.WeightedTerm{Term: t, Loc: loc})
		}
	}
	var walk func(n *htmlx.Node, inTitle bool)
	walk = func(n *htmlx.Node, inTitle bool) {
		switch n.Type {
		case htmlx.TextNode:
			loc := w.Body
			if inTitle {
				loc = w.Title
			}
			add(n.Data, loc)
			return
		case htmlx.ElementNode:
			switch n.Data {
			case "script", "style":
				return
			case "title":
				inTitle = true
			case "img":
				add(n.Attr0("alt"), w.Body)
				return
			case "input":
				typ := strings.ToLower(n.Attr0("type"))
				if typ == "submit" || typ == "button" || typ == "reset" {
					add(n.Attr0("value"), w.Body)
				}
				return
			}
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			walk(c, inTitle)
		}
	}
	walk(doc, false)
	return p.sealScratch()
}
