package form_test

import (
	"reflect"
	"testing"

	"cafc/internal/form"
	"cafc/internal/htmlx"
	"cafc/internal/webgen"
)

// FuzzParseForms: form extraction and the full form-page model build
// must be total over arbitrary HTML — no panics, deterministic output,
// and every extracted form structurally sound. Seeds come from webgen
// pages (the realistic corpus) plus adversarial form fragments.
func FuzzParseForms(f *testing.F) {
	seeds := []string{
		"",
		"<form></form>",
		"<form action=/search><input type=text name=q><input type=submit></form>",
		"<form><select name=genre><option>rock<option selected>jazz</select></form>",
		"<form><input type=hidden name=sid value=1><textarea name=notes></textarea></form>",
		"<form><label for=a>Artist</label><input id=a name=artist></form>",
		"<input name=orphan outside=form>",
		"<form><form><input name=nested></form></form>",
		"<form><button>Go</button><input type=checkbox name=c value>",
	}
	c := webgen.Generate(webgen.Config{Seed: 9, FormPages: 6})
	for _, u := range c.FormPages {
		seeds = append(seeds, c.ByURL[u].HTML)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := htmlx.Parse(src)
		forms := form.ExtractForms(doc)
		for i, fm := range forms {
			if fm == nil {
				t.Fatalf("form %d is nil", i)
			}
			for _, fd := range fm.Fields {
				// Field predicates must be total and consistent.
				if fd.Hidden() && fd.Typable() {
					t.Errorf("field %+v both hidden and typable", fd)
				}
			}
			_ = form.IsSearchable(fm)
		}
		// Extraction is deterministic: parsing the same bytes twice
		// yields identical structures.
		if again := form.ExtractForms(htmlx.Parse(src)); !reflect.DeepEqual(forms, again) {
			t.Error("ExtractForms not deterministic")
		}

		// The full model build either errors cleanly (no searchable
		// form) or returns a well-formed page.
		fp, err := form.Parse("http://fuzz.example/f", src, form.DefaultWeights)
		if err != nil {
			return
		}
		if fp == nil {
			t.Fatal("nil FormPage with nil error")
		}
	})
}
