package form

import (
	"strings"
	"testing"

	"cafc/internal/htmlx"
	"cafc/internal/vector"
)

const jobFormHTML = `
<html><head><title>Acme Job Search</title></head>
<body>
<h1>Find your next job</h1>
<p>Browse thousands of openings by category and state.</p>
<form action="/search" method="get">
  Job Category:
  <select name="category">
    <option value="">All Categories</option>
    <option>Engineering</option>
    <option>Nursing</option>
  </select>
  State:
  <select name="state">
    <option>Utah</option>
    <option>California</option>
  </select>
  Keywords: <input type="text" name="kw">
  <input type="hidden" name="sid" value="xyz123">
  <input type="submit" value="Search Jobs">
</form>
<p>About our company. Privacy policy. Copyright 2006.</p>
</body></html>`

func TestExtractForms(t *testing.T) {
	doc := htmlx.Parse(jobFormHTML)
	forms := ExtractForms(doc)
	if len(forms) != 1 {
		t.Fatalf("got %d forms", len(forms))
	}
	f := forms[0]
	if f.Action != "/search" || f.Method != "GET" {
		t.Errorf("action/method = %q/%q", f.Action, f.Method)
	}
	if len(f.Fields) != 5 {
		t.Fatalf("got %d fields: %+v", len(f.Fields), f.Fields)
	}
	sel := f.Fields[0]
	if sel.Tag != "select" || sel.Name != "category" {
		t.Errorf("field0 = %+v", sel)
	}
	if len(sel.Options) != 3 || sel.Options[1] != "Engineering" {
		t.Errorf("options = %v", sel.Options)
	}
	if !f.Fields[3].Hidden() {
		t.Error("sid field should be hidden")
	}
	if f.AttributeCount() != 3 { // category, state, kw (submit + hidden excluded)
		t.Errorf("AttributeCount = %d", f.AttributeCount())
	}
}

func TestExtractFormsDefaultsMethod(t *testing.T) {
	doc := htmlx.Parse(`<form action="/q"><input type=text name=q></form>`)
	forms := ExtractForms(doc)
	if forms[0].Method != "GET" {
		t.Errorf("method = %q", forms[0].Method)
	}
}

func TestFieldPredicates(t *testing.T) {
	cases := []struct {
		f          Field
		typable    bool
		selectable bool
		hidden     bool
	}{
		{Field{Tag: "input", Type: "text"}, true, false, false},
		{Field{Tag: "input", Type: ""}, true, false, false},
		{Field{Tag: "input", Type: "search"}, true, false, false},
		{Field{Tag: "input", Type: "hidden"}, false, false, true},
		{Field{Tag: "input", Type: "checkbox"}, false, true, false},
		{Field{Tag: "input", Type: "radio"}, false, true, false},
		{Field{Tag: "input", Type: "submit"}, false, false, false},
		{Field{Tag: "select"}, false, true, false},
		{Field{Tag: "textarea"}, true, false, false},
		{Field{Tag: "button"}, false, false, false},
	}
	for _, c := range cases {
		if c.f.Typable() != c.typable {
			t.Errorf("%+v Typable = %v", c.f, c.f.Typable())
		}
		if c.f.Selectable() != c.selectable {
			t.Errorf("%+v Selectable = %v", c.f, c.f.Selectable())
		}
		if c.f.Hidden() != c.hidden {
			t.Errorf("%+v Hidden = %v", c.f, c.f.Hidden())
		}
	}
}

func TestIsSearchable(t *testing.T) {
	searchable := []string{
		`<form><input type=text name=q><input type=submit value=Search></form>`,
		`<form>Title <input type=text name=title> <select name=genre><option>Rock</option></select></form>`,
		jobFormHTML,
	}
	for _, h := range searchable {
		f := ExtractForms(htmlx.Parse(h))[0]
		if !IsSearchable(f) {
			t.Errorf("form should be searchable: %s", h[:40])
		}
	}
	nonSearchable := []string{
		`<form>Username <input type=text name=user> Password <input type=password name=pw></form>`,
		`<form>Email <input type=text name=email> <input type=submit value="Subscribe to newsletter"></form>`,
		`<form><input type=submit value="Continue"></form>`, // no query field
		`<form>Login: <input type=text name=login></form>`,
	}
	for _, h := range nonSearchable {
		f := ExtractForms(htmlx.Parse(h))[0]
		if IsSearchable(f) {
			t.Errorf("form should NOT be searchable: %s", h)
		}
	}
}

func TestIsSearchableSearchOverridesMarker(t *testing.T) {
	// "Search member comments" contains the marker "comment" but the form
	// is clearly a search interface.
	h := `<form>Search comments: <input type=text name=q><input type=submit value=Search></form>`
	f := ExtractForms(htmlx.Parse(h))[0]
	if !IsSearchable(f) {
		t.Error("search marker should override non-searchable marker")
	}
}

func TestParseBuildsBothSpaces(t *testing.T) {
	fp, err := Parse("http://acme.example/jobs", jobFormHTML, DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Title != "Acme Job Search" {
		t.Errorf("title = %q", fp.Title)
	}
	fc := termSet(fp.FCTerms)
	pc := termSet(fp.PCTerms)
	// FC must include schema-side terms and option values.
	for _, want := range []string{"job", "categori", "state", "keyword", "engin", "utah"} {
		if !fc[want] {
			t.Errorf("FC missing %q; have %v", want, keys(fc))
		}
	}
	// FC must not include page-only or hidden-value terms.
	for _, not := range []string{"privaci", "copyright", "xyz123", "thousand"} {
		if fc[not] {
			t.Errorf("FC wrongly contains %q", not)
		}
	}
	// PC includes everything visible on the page.
	for _, want := range []string{"job", "privaci", "copyright", "open", "categori"} {
		if !pc[want] {
			t.Errorf("PC missing %q", want)
		}
	}
}

func TestParseLocationFactors(t *testing.T) {
	fp, err := Parse("u", jobFormHTML, DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	// Option terms get the lower Option LOC; form label text gets Form.
	var engLoc, stateLoc float64
	for _, wt := range fp.FCTerms {
		switch wt.Term {
		case "engin":
			engLoc = wt.Loc
		case "state":
			stateLoc = wt.Loc
		}
	}
	if engLoc != DefaultWeights.Option {
		t.Errorf("option term LOC = %v, want %v", engLoc, DefaultWeights.Option)
	}
	if stateLoc != DefaultWeights.Form {
		t.Errorf("form term LOC = %v, want %v", stateLoc, DefaultWeights.Form)
	}
	// Title terms get the Title LOC in PC.
	var acmeLoc float64
	for _, wt := range fp.PCTerms {
		if wt.Term == "acm" || wt.Term == "acme" {
			acmeLoc = wt.Loc
		}
	}
	if acmeLoc != DefaultWeights.Title {
		t.Errorf("title term LOC = %v, want %v", acmeLoc, DefaultWeights.Title)
	}
}

func TestParseNoSearchableForm(t *testing.T) {
	_, err := Parse("u", `<html><body><p>No forms here.</p></body></html>`, DefaultWeights)
	if err != ErrNoSearchableForm {
		t.Errorf("err = %v, want ErrNoSearchableForm", err)
	}
	_, err = Parse("u", `<form>Password <input type=password name=p></form>`, DefaultWeights)
	if err != ErrNoSearchableForm {
		t.Errorf("err = %v, want ErrNoSearchableForm", err)
	}
}

func TestParseSkipsNonSearchableAndPicksNext(t *testing.T) {
	h := `<form>Username <input type=text name=u> Password <input type=password name=p></form>
	      <form>Search books: <input type=text name=q><input type=submit value=Search></form>`
	fp, err := Parse("u", h, DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	if !termSet(fp.FCTerms)["book"] {
		t.Error("picked the wrong form")
	}
}

func TestParseFormWithNoLabelsOutsideText(t *testing.T) {
	// The paper's Figure 1(c): the descriptive string lives OUTSIDE the
	// form tags; FC is nearly empty, PC captures the context.
	h := `<html><head><title>MegaJobs</title></head><body>
	<b>Search Jobs</b>
	<form action="/s"><input type="text" name="q"><input type=submit value="Go"></form>
	</body></html>`
	fp, err := Parse("u", h, DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	fc := termSet(fp.FCTerms)
	if fc["job"] {
		t.Error("'jobs' is outside the form; must not be in FC")
	}
	if !termSet(fp.PCTerms)["job"] {
		t.Error("'jobs' must be in PC")
	}
	if fp.Form.AttributeCount() != 1 {
		t.Errorf("AttributeCount = %d, want 1", fp.Form.AttributeCount())
	}
}

func TestLabelExtraction(t *testing.T) {
	h := `<form><label for="st">Departure State</label><select id="st" name="st"><option>UT</option></select>
	<input type=submit value=Search></form>`
	f := ExtractForms(htmlx.Parse(h))[0]
	var sel *Field
	for i := range f.Fields {
		if f.Fields[i].Tag == "select" {
			sel = &f.Fields[i]
		}
	}
	if sel == nil || sel.Label != "Departure State" {
		t.Errorf("label = %+v", sel)
	}
}

func TestImageAltInFC(t *testing.T) {
	h := `<form><img src="flight.gif" alt="Flight Search"><input type=text name=q>
	<input type=image src="go.gif" alt="Search Now"></form>`
	fp, err := Parse("u", h, DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	fc := termSet(fp.FCTerms)
	if !fc["flight"] || !fc["search"] {
		t.Errorf("alt text missing from FC: %v", keys(fc))
	}
}

func TestTermCounts(t *testing.T) {
	fp, err := Parse("u", jobFormHTML, DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	if fp.FormTermCount() == 0 {
		t.Error("FormTermCount = 0")
	}
	if fp.PageTermsOutsideForm() == 0 {
		t.Error("PageTermsOutsideForm = 0 for a content-rich page")
	}
	if fp.PageTermsOutsideForm() >= len(fp.PCTerms) {
		t.Error("outside-form count must be < total PC terms")
	}
}

func TestParseMalformedHTMLStillWorks(t *testing.T) {
	h := `<title>Books<form action=/q><b>Search by author <input name=a type=text><option>ignored
	<input type=submit value=Find>`
	fp, err := Parse("u", h, DefaultWeights)
	if err != nil {
		t.Fatalf("malformed page rejected: %v", err)
	}
	if !termSet(fp.FCTerms)["author"] {
		t.Error("author term lost")
	}
}

func termSet(ts []vector.WeightedTerm) map[string]bool {
	m := make(map[string]bool, len(ts))
	for _, wt := range ts {
		m[wt.Term] = true
	}
	return m
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func BenchmarkParse(b *testing.B) {
	big := jobFormHTML + strings.Repeat("<p>filler content about jobs careers employment</p>", 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("u", big, DefaultWeights); err != nil {
			b.Fatal(err)
		}
	}
}
