// Package webgraph stores the hyperlink structure around form pages and
// simulates the search-engine "link:" backlink API the paper queries
// (AltaVista, Section 3.1). The simulation is deliberately imperfect in
// the ways the paper reports real backlink data to be: per-query result
// limits, incomplete index coverage, and transient unavailability.
package webgraph

import (
	"errors"
	"math/rand"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"cafc/internal/obs"
)

// Graph is a directed link graph over page URLs. It is safe for
// concurrent use.
type Graph struct {
	mu      sync.RWMutex
	pages   map[string]bool
	out     map[string][]string
	in      map[string][]string
	anchors map[linkKey]string
}

// linkKey identifies one directed edge.
type linkKey struct{ from, to string }

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		pages:   make(map[string]bool),
		out:     make(map[string][]string),
		in:      make(map[string][]string),
		anchors: make(map[linkKey]string),
	}
}

// AddPage registers a page URL (idempotent).
func (g *Graph) AddPage(u string) {
	g.mu.Lock()
	g.pages[u] = true
	g.mu.Unlock()
}

// AddLink records a directed edge from -> to, registering both pages.
// Duplicate edges are ignored.
func (g *Graph) AddLink(from, to string) {
	g.AddLinkAnchor(from, to, "")
}

// AddLinkAnchor is AddLink with the link's anchor text. The first anchor
// recorded for an edge wins.
func (g *Graph) AddLinkAnchor(from, to, anchor string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pages[from] = true
	g.pages[to] = true
	for _, t := range g.out[from] {
		if t == to {
			return
		}
	}
	g.out[from] = append(g.out[from], to)
	g.in[to] = append(g.in[to], from)
	if anchor != "" {
		g.anchors[linkKey{from, to}] = anchor
	}
}

// Anchor returns the anchor text recorded for the from->to edge ("" when
// unknown).
func (g *Graph) Anchor(from, to string) string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.anchors[linkKey{from, to}]
}

// OutAnchors returns the anchor texts of every outgoing link of a page,
// in sorted target order.
func (g *Graph) OutAnchors(from string) []string {
	g.mu.RLock()
	targets := append([]string(nil), g.out[from]...)
	g.mu.RUnlock()
	sort.Strings(targets)
	var out []string
	for _, t := range targets {
		if a := g.Anchor(from, t); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// HasPage reports whether the URL is known.
func (g *Graph) HasPage(u string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.pages[u]
}

// Len returns the number of known pages.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.pages)
}

// Edges returns the number of directed links.
func (g *Graph) Edges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, outs := range g.out {
		n += len(outs)
	}
	return n
}

// Outlinks returns a copy of the pages u links to, sorted.
func (g *Graph) Outlinks(u string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := append([]string(nil), g.out[u]...)
	sort.Strings(out)
	return out
}

// Backlinks returns a copy of the pages linking to u, sorted.
func (g *Graph) Backlinks(u string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	in := append([]string(nil), g.in[u]...)
	sort.Strings(in)
	return in
}

// Host returns the host component of a URL ("" if unparseable).
func Host(u string) string {
	p, err := url.Parse(u)
	if err != nil {
		return ""
	}
	return strings.ToLower(p.Host)
}

// SameSite reports whether two URLs share a host — the intra-site test
// used to discard hubs that live on the site they point to.
func SameSite(a, b string) bool {
	ha, hb := Host(a), Host(b)
	return ha != "" && ha == hb
}

// ErrUnavailable is returned by a BacklinkService during a simulated
// outage.
var ErrUnavailable = errors.New("webgraph: backlink service unavailable")

// BacklinkService simulates a search engine's link: query facility.
type BacklinkService struct {
	g *Graph
	// Limit caps the number of backlinks per query (the paper extracts
	// at most 100 per form page). Zero means 100.
	Limit int
	// Coverage in [0,1] is the fraction of source pages whose outgoing
	// links the "search engine" indexed. Unindexed sources are invisible
	// as backlinks everywhere, reproducing the paper's observation that
	// backlink data is very incomplete. 0 means full coverage.
	Coverage float64
	// Seed makes the coverage sample deterministic.
	Seed int64
	// Metrics, when non-nil, receives the service-side query telemetry:
	// request counts by outcome, per-query latency and result sizes, and
	// the coverage-gap counters (empty answers, limit truncation). Set
	// it before the first query.
	Metrics *obs.Registry

	once      sync.Once
	unindexed map[string]bool
	mu        sync.Mutex
	down      bool
}

// NewBacklinkService wraps a graph in a link: API with the given result
// limit (0 = 100) and index coverage (0 or >=1 = full).
func NewBacklinkService(g *Graph, limit int, coverage float64, seed int64) *BacklinkService {
	return &BacklinkService{g: g, Limit: limit, Coverage: coverage, Seed: seed}
}

// SetUnavailable toggles a simulated outage; queries fail with
// ErrUnavailable while down.
func (s *BacklinkService) SetUnavailable(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// init lazily samples the unindexed source set.
func (s *BacklinkService) init() {
	s.once.Do(func() {
		s.unindexed = make(map[string]bool)
		if s.Coverage <= 0 || s.Coverage >= 1 {
			return
		}
		rng := rand.New(rand.NewSource(s.Seed))
		// Deterministic order: sort sources first.
		s.g.mu.RLock()
		srcs := make([]string, 0, len(s.g.out))
		for u := range s.g.out {
			srcs = append(srcs, u)
		}
		s.g.mu.RUnlock()
		sort.Strings(srcs)
		for _, u := range srcs {
			if rng.Float64() > s.Coverage {
				s.unindexed[u] = true
			}
		}
	})
}

// Backlinks answers a link: query for u. The result respects the service
// limit and index coverage; order is deterministic.
func (s *BacklinkService) Backlinks(u string) ([]string, error) {
	var t0 time.Time
	reg := s.Metrics
	if reg != nil {
		t0 = time.Now()
	}
	s.mu.Lock()
	down := s.down
	s.mu.Unlock()
	if down {
		reg.Counter("backlink_api_requests_total", "outcome", "unavailable").Inc()
		return nil, ErrUnavailable
	}
	s.init()
	all := s.g.Backlinks(u)
	truncated := false
	out := make([]string, 0, len(all))
	for _, src := range all {
		if s.unindexed[src] {
			continue
		}
		out = append(out, src)
		limit := s.Limit
		if limit == 0 {
			limit = 100
		}
		if len(out) >= limit {
			truncated = true
			break
		}
	}
	if reg != nil {
		reg.Counter("backlink_api_requests_total", "outcome", "ok").Inc()
		reg.Histogram("backlink_api_seconds", obs.DurationBuckets).ObserveSince(t0)
		reg.Histogram("backlink_api_results", obs.CountBuckets).Observe(float64(len(out)))
		if len(out) == 0 {
			// The coverage gap: a source the "search engine" knows
			// nothing about, the paper's missing-backlink case.
			reg.Counter("backlink_api_empty_total").Inc()
		}
		if truncated {
			reg.Counter("backlink_api_truncated_total").Inc()
		}
	}
	return out, nil
}
