package webgraph

import (
	"net/url"

	"cafc/internal/htmlx"
	"cafc/internal/webgen"
)

// FromCorpus parses every page of a generated corpus and builds the full
// link graph. Relative hrefs are resolved against the page URL.
func FromCorpus(c *webgen.Corpus) *Graph {
	g := New()
	for _, p := range c.Pages {
		g.AddPage(p.URL)
		base, err := url.Parse(p.URL)
		if err != nil {
			continue
		}
		doc := htmlx.Parse(p.HTML)
		for _, l := range htmlx.ExtractLinks(doc, base) {
			g.AddLinkAnchor(p.URL, l.URL, l.Anchor)
		}
	}
	return g
}
