package webgraph

import (
	"testing"

	"cafc/internal/webgen"
)

func TestGraphBasics(t *testing.T) {
	g := New()
	g.AddLink("http://a.example/", "http://b.example/x")
	g.AddLink("http://a.example/", "http://c.example/")
	g.AddLink("http://a.example/", "http://b.example/x") // duplicate
	g.AddLink("http://d.example/", "http://b.example/x")
	if g.Len() != 4 {
		t.Errorf("Len = %d", g.Len())
	}
	if g.Edges() != 3 {
		t.Errorf("Edges = %d", g.Edges())
	}
	out := g.Outlinks("http://a.example/")
	if len(out) != 2 {
		t.Errorf("Outlinks = %v", out)
	}
	in := g.Backlinks("http://b.example/x")
	if len(in) != 2 || in[0] != "http://a.example/" || in[1] != "http://d.example/" {
		t.Errorf("Backlinks = %v", in)
	}
	if !g.HasPage("http://c.example/") || g.HasPage("http://zzz.example/") {
		t.Error("HasPage wrong")
	}
}

func TestHostAndSameSite(t *testing.T) {
	if Host("http://WWW.Site.Example/path") != "www.site.example" {
		t.Errorf("Host = %q", Host("http://WWW.Site.Example/path"))
	}
	if !SameSite("http://a.example/x", "http://a.example/y") {
		t.Error("same host not detected")
	}
	if SameSite("http://a.example/", "http://b.example/") {
		t.Error("different hosts confused")
	}
	if SameSite("::bad::", "::bad::") {
		t.Error("unparseable URLs must not be same-site")
	}
}

func TestBacklinkServiceLimit(t *testing.T) {
	g := New()
	for i := 0; i < 250; i++ {
		g.AddLink(srcURL(i), "http://target.example/")
	}
	s := NewBacklinkService(g, 0, 0, 1) // default limit 100
	links, err := s.Backlinks("http://target.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 100 {
		t.Errorf("got %d backlinks, want 100", len(links))
	}
	s2 := NewBacklinkService(g, 10, 0, 1)
	links, _ = s2.Backlinks("http://target.example/")
	if len(links) != 10 {
		t.Errorf("got %d backlinks, want 10", len(links))
	}
}

func TestBacklinkServiceCoverageGap(t *testing.T) {
	g := New()
	for i := 0; i < 200; i++ {
		g.AddLink(srcURL(i), "http://target.example/")
	}
	s := NewBacklinkService(g, 1000, 0.5, 7)
	links, err := s.Backlinks("http://target.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(links) < 60 || len(links) > 140 {
		t.Errorf("coverage 0.5 returned %d of 200", len(links))
	}
	// Deterministic for a fixed seed.
	s2 := NewBacklinkService(g, 1000, 0.5, 7)
	links2, _ := s2.Backlinks("http://target.example/")
	if len(links) != len(links2) {
		t.Error("coverage sampling not deterministic")
	}
}

func TestBacklinkServiceOutage(t *testing.T) {
	g := New()
	g.AddLink("http://a.example/", "http://b.example/")
	s := NewBacklinkService(g, 0, 0, 1)
	s.SetUnavailable(true)
	if _, err := s.Backlinks("http://b.example/"); err != ErrUnavailable {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
	s.SetUnavailable(false)
	if links, err := s.Backlinks("http://b.example/"); err != nil || len(links) != 1 {
		t.Errorf("after recovery: %v, %v", links, err)
	}
}

func TestFromCorpus(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 1, FormPages: 60})
	g := FromCorpus(c)
	if g.Len() < len(c.Pages) {
		t.Errorf("graph has %d pages for %d corpus pages", g.Len(), len(c.Pages))
	}
	// Every form page must have its root page as a backlink (the root
	// links to its own form page).
	missing := 0
	for _, u := range c.FormPages {
		root := c.RootOf[u]
		found := false
		for _, b := range g.Backlinks(u) {
			if b == root {
				found = true
				break
			}
		}
		if !found {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d form pages lack their root backlink", missing)
	}
	// Hubs must produce backlinks for at least some form pages.
	hubBacked := 0
	for _, u := range c.FormPages {
		for _, b := range g.Backlinks(u) {
			if Host(b) == "hubs.example" || Host(b) == "dir.example" {
				hubBacked++
				break
			}
		}
	}
	if hubBacked == 0 {
		t.Error("no form page has a hub backlink")
	}
}

func srcURL(i int) string {
	return "http://src" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + ".example/"
}
