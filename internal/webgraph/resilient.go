// ResilientBacklinks: the robust side of the link: query path. The
// paper's backward crawl runs against a rate-limited, truncated,
// intermittently unavailable search-engine API under a query budget;
// this wrapper adds bounded retries with deterministic backoff, a
// circuit breaker, and the explicit budget, so hub construction degrades
// (partial hubs, random seeding) instead of aborting when the service
// misbehaves.
package webgraph

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cafc/internal/obs"
	"cafc/internal/retry"
)

// ErrBudgetExhausted is returned once a ResilientBacklinks has spent its
// whole query budget; callers (hub.BuildWith) treat it as the signal to
// stop the backward crawl and proceed with whatever hubs they have.
var ErrBudgetExhausted = errors.New("webgraph: backlink query budget exhausted")

// ResilientBacklinks wraps a link:-query function with retry, breaker
// and budget accounting. Its Backlinks method has the hub.BacklinkFunc
// shape. Queries are expected to be issued sequentially (as the hub
// backward crawl does); the wrapper is nevertheless safe for concurrent
// use.
type ResilientBacklinks struct {
	// Query is the underlying link: facility (required), e.g.
	// (*BacklinkService).Backlinks.
	Query func(url string) ([]string, error)
	// Policy bounds attempts and backoff (zero fields = retry defaults).
	Policy retry.Policy
	// Budget caps the total number of underlying queries, attempts
	// included — the paper's bounded backward-crawl budget (0 = unlimited).
	Budget int
	// Breaker, when non-nil, fast-fails queries while open.
	Breaker *retry.Breaker
	// Clock drives the backoff sleeps (nil = retry.System).
	Clock retry.Clock
	// Metrics, when non-nil, receives retry/breaker/budget telemetry
	// labelled component="backlink".
	Metrics *obs.Registry

	once    sync.Once
	backoff *retry.Backoff
	mu      sync.Mutex
	spent   int
}

func (r *ResilientBacklinks) init() {
	r.once.Do(func() {
		r.Policy = r.Policy.WithDefaults()
		r.backoff = retry.NewBackoff(r.Policy)
		if r.Clock == nil {
			r.Clock = retry.System
		}
	})
}

// Spent returns the number of underlying queries issued so far.
func (r *ResilientBacklinks) Spent() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spent
}

// charge consumes one unit of budget, reporting false when exhausted.
func (r *ResilientBacklinks) charge() bool {
	if r.Budget <= 0 {
		r.mu.Lock()
		r.spent++
		r.mu.Unlock()
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spent >= r.Budget {
		return false
	}
	r.spent++
	return true
}

// Backlinks answers a link: query with retries under the policy, budget
// and breaker. It matches hub.BacklinkFunc.
func (r *ResilientBacklinks) Backlinks(u string) ([]string, error) {
	r.init()
	var (
		retries    *obs.Counter
		giveups    *obs.Counter
		fastfail   *obs.Counter
		exhausted  *obs.Counter
		spentGauge *obs.Gauge
	)
	if reg := r.Metrics; reg != nil {
		retries = reg.Counter("retry_total", "component", "backlink")
		giveups = reg.Counter("retry_giveup_total", "component", "backlink")
		fastfail = reg.Counter("breaker_fastfail_total", "component", "backlink")
		exhausted = reg.Counter("backlink_budget_exhausted_total")
		spentGauge = reg.Gauge("backlink_budget_spent")
	}
	ctx := context.Background()
	var lastErr error
	for attempt := 1; attempt <= r.Policy.MaxAttempts; attempt++ {
		if err := r.Breaker.Allow(); err != nil {
			fastfail.Inc()
			return nil, fmt.Errorf("webgraph: link:%s: %w", u, err)
		}
		if !r.charge() {
			exhausted.Inc()
			return nil, ErrBudgetExhausted
		}
		spentGauge.Set(float64(r.Spent()))
		links, err := r.Query(u)
		lastErr = err
		if err == nil {
			r.Breaker.Success()
			return links, nil
		}
		r.Breaker.Failure()
		if attempt < r.Policy.MaxAttempts {
			retries.Inc()
			if err := r.Clock.Sleep(ctx, r.backoff.Delay(attempt)); err != nil {
				return nil, lastErr
			}
		}
	}
	giveups.Inc()
	return nil, fmt.Errorf("webgraph: link:%s: %d attempts exhausted: %w", u, r.Policy.MaxAttempts, lastErr)
}
