package webgraph

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cafc/internal/obs"
	"cafc/internal/retry"
)

// instantClock advances instead of sleeping.
type instantClock struct{ now atomic.Int64 }

func (c *instantClock) Now() time.Time { return time.Unix(0, c.now.Load()) }
func (c *instantClock) Sleep(ctx context.Context, d time.Duration) error {
	c.now.Add(int64(d))
	return ctx.Err()
}

func smallGraph() *Graph {
	g := New()
	g.AddLink("http://hub.example/list.html", "http://a.example/search.html")
	g.AddLink("http://hub.example/list.html", "http://b.example/search.html")
	return g
}

func TestResilientBacklinksRetriesThroughOutage(t *testing.T) {
	svc := NewBacklinkService(smallGraph(), 0, 0, 1)
	var calls atomic.Int64
	// Fail the first two queries, then recover.
	query := func(u string) ([]string, error) {
		if calls.Add(1) <= 2 {
			return nil, ErrUnavailable
		}
		return svc.Backlinks(u)
	}
	reg := obs.NewRegistry()
	rb := &ResilientBacklinks{
		Query:   query,
		Policy:  retry.Policy{MaxAttempts: 3, Seed: 1},
		Clock:   &instantClock{},
		Metrics: reg,
	}
	links, err := rb.Backlinks("http://a.example/search.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 1 || links[0] != "http://hub.example/list.html" {
		t.Fatalf("links = %v", links)
	}
	if v := reg.Counter("retry_total", "component", "backlink").Value(); v != 2 {
		t.Errorf("retry_total = %d, want 2", v)
	}
	if rb.Spent() != 3 {
		t.Errorf("Spent = %d, want 3", rb.Spent())
	}
}

func TestResilientBacklinksBudget(t *testing.T) {
	svc := NewBacklinkService(smallGraph(), 0, 0, 1)
	reg := obs.NewRegistry()
	rb := &ResilientBacklinks{
		Query:   svc.Backlinks,
		Policy:  retry.Policy{MaxAttempts: 3, Seed: 1},
		Budget:  2,
		Clock:   &instantClock{},
		Metrics: reg,
	}
	for i := 0; i < 2; i++ {
		if _, err := rb.Backlinks("http://a.example/search.html"); err != nil {
			t.Fatalf("query %d within budget failed: %v", i, err)
		}
	}
	if _, err := rb.Backlinks("http://b.example/search.html"); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if rb.Spent() != 2 {
		t.Errorf("Spent = %d, want 2 (exhausted query not charged)", rb.Spent())
	}
	if v := reg.Counter("backlink_budget_exhausted_total").Value(); v != 1 {
		t.Errorf("backlink_budget_exhausted_total = %d, want 1", v)
	}
	if v := reg.Gauge("backlink_budget_spent").Value(); v != 2 {
		t.Errorf("backlink_budget_spent = %v, want 2", v)
	}
}

// TestResilientBacklinksBudgetCountsRetries: retries burn budget too —
// the budget is the total bill the "search engine" sees.
func TestResilientBacklinksBudgetCountsRetries(t *testing.T) {
	rb := &ResilientBacklinks{
		Query:  func(u string) ([]string, error) { return nil, ErrUnavailable },
		Policy: retry.Policy{MaxAttempts: 3, Seed: 1},
		Budget: 5,
		Clock:  &instantClock{},
	}
	_, _ = rb.Backlinks("http://a.example/") // 3 attempts
	if rb.Spent() != 3 {
		t.Fatalf("Spent = %d, want 3", rb.Spent())
	}
	_, err := rb.Backlinks("http://b.example/") // 2 attempts, then exhausted
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if rb.Spent() != 5 {
		t.Fatalf("Spent = %d, want 5", rb.Spent())
	}
}

func TestResilientBacklinksBreakerTripsOnDeadService(t *testing.T) {
	svc := NewBacklinkService(smallGraph(), 0, 0, 1)
	svc.SetUnavailable(true)
	clk := &instantClock{}
	reg := obs.NewRegistry()
	rb := &ResilientBacklinks{
		Query:   svc.Backlinks,
		Policy:  retry.Policy{MaxAttempts: 2, Seed: 1},
		Breaker: retry.NewBreaker(3, time.Hour, clk, reg, "backlink"),
		Clock:   clk,
		Metrics: reg,
	}
	// First query: 2 failing attempts. Second: one more failure trips
	// the breaker; its retry fast-fails.
	if _, err := rb.Backlinks("http://a.example/search.html"); err == nil {
		t.Fatal("expected failure")
	}
	_, err := rb.Backlinks("http://b.example/search.html")
	if !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("err = %v, want breaker open", err)
	}
	if v := reg.Counter("breaker_trips_total", "component", "backlink").Value(); v != 1 {
		t.Errorf("breaker_trips_total = %d, want 1", v)
	}
}
