// Package webgen generates a deterministic synthetic hidden web: form
// pages in the paper's eight database domains, the sites around them, and
// the hub/directory pages whose backlinks CAFC-CH exploits.
//
// The generator substitutes for the paper's 454 real form pages (UIUC
// repository + focused crawler). It reproduces the statistical structure
// the clustering algorithms depend on:
//
//   - per-domain anchor vocabulary with high IDF, shared boilerplate with
//     low IDF;
//   - wide heterogeneity in attribute naming across sites of one domain
//     (Figure 1's "Job Category" vs "Industry");
//   - single-attribute keyword forms whose descriptive text sits outside
//     the FORM tags (Figure 1(c));
//   - deliberate Music↔Movie vocabulary overlap, including combined
//     music+movie stores (Figure 4);
//   - the inverse correlation between form size and page content
//     (Table 1);
//   - per-domain hubs, cross-domain directories and intra-site hubs.
package webgen

import "cafc/internal/text"

// Domain is one of the paper's eight online-database domains.
type Domain string

// The eight domains of the paper's gold standard (Section 4.1).
const (
	Airfare   Domain = "airfare"
	Auto      Domain = "auto"
	Book      Domain = "book"
	CarRental Domain = "carrental"
	Hotel     Domain = "hotel"
	Job       Domain = "job"
	Movie     Domain = "movie"
	Music     Domain = "music"
)

// Domains lists all eight domains in a fixed order.
var Domains = []Domain{Airfare, Auto, Book, CarRental, Hotel, Job, Movie, Music}

// attrSpec describes one queryable attribute of a domain: the alternative
// labels different sites use for the same concept, and the value list its
// select boxes draw from.
type attrSpec struct {
	labels  []string
	options []string
}

// domainSpec is the generative model of one domain.
type domainSpec struct {
	domain Domain
	// siteNouns seed site names and titles ("CheapFlights", "JetDeals").
	siteNouns []string
	// titleTemplates format page titles; %s is the site name.
	titleTemplates []string
	// attrs are the domain's queryable attributes.
	attrs []attrSpec
	// prose is domain-flavoured page text (high-IDF anchors live here).
	prose []string
	// searchVerbs label submit buttons and headings.
	searchVerbs []string
}

var usStates = []string{
	"Alabama", "Arizona", "California", "Colorado", "Florida", "Georgia",
	"Illinois", "Massachusetts", "Nevada", "New York", "Ohio", "Oregon",
	"Pennsylvania", "Texas", "Utah", "Virginia", "Washington",
}

var cities = []string{
	"Atlanta", "Boston", "Chicago", "Dallas", "Denver", "Las Vegas",
	"Los Angeles", "Miami", "New York", "Orlando", "Phoenix", "Portland",
	"Salt Lake City", "San Francisco", "Seattle",
}

var countries = []string{
	"United States", "Canada", "Mexico", "United Kingdom", "Ireland",
	"France", "Germany", "Spain", "Italy", "Portugal", "Netherlands",
	"Belgium", "Switzerland", "Austria", "Greece", "Sweden", "Norway",
	"Denmark", "Finland", "Poland", "Czech Republic", "Hungary", "Russia",
	"Turkey", "Egypt", "South Africa", "Morocco", "Kenya", "India",
	"China", "Japan", "South Korea", "Thailand", "Singapore", "Malaysia",
	"Indonesia", "Australia", "New Zealand", "Brazil", "Argentina",
	"Chile", "Peru", "Colombia", "Costa Rica", "Jamaica",
	"Iceland", "Luxembourg", "Monaco", "Croatia", "Slovenia", "Slovakia",
	"Romania", "Bulgaria", "Ukraine", "Estonia", "Latvia", "Lithuania",
	"Cyprus", "Malta", "Israel", "Jordan", "Saudi Arabia",
	"United Arab Emirates", "Qatar", "Bahrain", "Kuwait", "Oman",
	"Pakistan", "Bangladesh", "Sri Lanka", "Nepal", "Vietnam",
	"Philippines", "Taiwan", "Hong Kong", "Fiji", "Tahiti", "Guatemala",
	"Honduras", "Panama", "Ecuador", "Bolivia", "Uruguay", "Paraguay",
	"Venezuela", "Dominican Republic", "Puerto Rico", "Bahamas",
	"Barbados", "Trinidad and Tobago", "Bermuda", "Aruba",
}

var languages = []string{
	"English", "Spanish", "French", "German", "Italian", "Portuguese",
	"Dutch", "Swedish", "Norwegian", "Danish", "Finnish", "Polish",
	"Czech", "Hungarian", "Russian", "Turkish", "Arabic", "Hebrew",
	"Hindi", "Chinese", "Japanese", "Korean", "Thai", "Vietnamese",
	"Greek", "Latin", "Swahili", "Icelandic",
}

var months = []string{
	"January", "February", "March", "April", "May", "June", "July",
	"August", "September", "October", "November", "December",
}

// genericBoilerplate is the low-IDF noise every site carries — the terms
// the paper observes have "high frequency in form pages of all three
// domains" (privacy, shopping, copyright, help, ...).
var genericBoilerplate = []string{
	"home", "about us", "contact", "privacy policy", "terms of use",
	"copyright 2006 all rights reserved", "help", "site map", "faq",
	"customer service", "shopping cart", "my account", "sign in",
	"free shipping on orders", "gift certificates", "affiliate program",
	"press room", "careers", "advertise with us", "secure checkout",
	"satisfaction guaranteed", "newsletter", "special offers",
	"best sellers", "new releases", "top rated", "view cart",
	"order status", "returns and exchanges", "international orders",
	"low price guarantee", "bookmark this page", "tell a friend",
}

// movieMusicShared is the vocabulary that makes Music and Movie the hard
// pair (Section 4.2): both talk about titles, artists, soundtracks, DVDs.
var movieMusicShared = []string{
	"title", "artist", "soundtrack", "dvd", "release date", "studio",
	"genre", "rating", "reviews", "charts", "top 100", "box set",
	"collector edition", "entertainment", "media", "disc", "video",
	"award winners", "classics", "new this week",
}

var domainSpecs = map[Domain]*domainSpec{
	Airfare: {
		domain:    Airfare,
		siteNouns: []string{"JetQuest", "FareFinder", "SkyBooker", "AirDeals", "FlightHub", "WingTix", "AeroSaver", "TravelJet"},
		titleTemplates: []string{
			"%s - Cheap Flights and Airfare Deals",
			"%s: Search Low Airfares",
			"Book Flights Online at %s",
			"%s Discount Airline Tickets",
		},
		attrs: []attrSpec{
			{labels: []string{"Departure City", "From", "Leaving From", "Origin"}, options: cities},
			{labels: []string{"Arrival City", "To", "Going To", "Destination"}, options: cities},
			{labels: []string{"Departure Month", "Depart", "Outbound Date"}, options: months},
			{labels: []string{"Return Month", "Return", "Inbound Date"}, options: months},
			{labels: []string{"Passengers", "Travelers", "Adults"}, options: []string{"1", "2", "3", "4", "5", "6"}},
			{labels: []string{"Cabin Class", "Class", "Service Class"}, options: []string{"Economy", "Business", "First"}},
			{labels: []string{"Airline", "Preferred Airline", "Carrier"}, options: []string{"Delta", "United", "American", "Southwest", "JetBlue", "Continental", "Any Airline"}},
			{labels: []string{"Destination Country", "Country", "Region"}, options: countries},
		},
		prose: []string{
			"compare airfares from all major airlines", "nonstop and connecting flights",
			"roundtrip and one way tickets", "last minute flight deals",
			"international and domestic flights", "e-tickets issued instantly",
			"departure and arrival airports worldwide", "frequent flyer miles",
			"lowest fares guaranteed on every route", "airport shuttle information",
			"red eye flights and weekend getaways", "aisle or window seating",
			"baggage allowance and check in rules", "travel itinerary confirmation",
		},
		searchVerbs: []string{"Search Flights", "Find Flights", "Find Airfare", "Search Fares"},
	},
	Auto: {
		domain:    Auto,
		siteNouns: []string{"AutoTrader", "CarBazaar", "MotorMart", "WheelDeals", "RideFinder", "AutoNation", "CarQuest", "DriveTime"},
		titleTemplates: []string{
			"%s - New and Used Cars for Sale",
			"%s: Search Used Car Listings",
			"Buy a Car Online at %s",
			"%s Auto Classifieds",
		},
		attrs: []attrSpec{
			{labels: []string{"Make", "Manufacturer", "Brand"}, options: []string{"Ford", "Toyota", "Honda", "Chevrolet", "BMW", "Nissan", "Volkswagen", "Dodge", "Subaru", "Mercedes"}},
			{labels: []string{"Model", "Car Model"}, options: []string{"Sedan", "Coupe", "Convertible", "Wagon", "Hatchback", "Any Model"}},
			{labels: []string{"Year", "Model Year", "From Year"}, options: []string{"1998", "1999", "2000", "2001", "2002", "2003", "2004", "2005", "2006"}},
			{labels: []string{"Price Range", "Max Price", "Price"}, options: []string{"Under 5000", "5000 to 10000", "10000 to 20000", "20000 to 35000", "Over 35000"}},
			{labels: []string{"Body Style", "Vehicle Type", "Category"}, options: []string{"Sedan", "SUV", "Truck", "Minivan", "Coupe", "Convertible"}},
			{labels: []string{"Mileage", "Max Mileage"}, options: []string{"Under 30000", "Under 60000", "Under 100000", "Any Mileage"}},
			{labels: []string{"State", "Location", "Region"}, options: usStates},
			{labels: []string{"Color", "Exterior Color"}, options: []string{"Black", "White", "Silver", "Red", "Blue", "Green", "Gold", "Gray", "Beige", "Maroon", "Orange", "Yellow"}},
		},
		prose: []string{
			"certified pre owned vehicles with warranty", "dealer and private seller listings",
			"free vehicle history report", "trade in value estimates",
			"financing and auto loans available", "horsepower engine and transmission specs",
			"test drive at a dealership near you", "fuel economy ratings",
			"thousands of used cars updated daily", "kelley blue book pricing",
			"leather interior sunroof options", "four wheel drive trucks and suvs",
		},
		searchVerbs: []string{"Search Cars", "Find Vehicles", "Search Inventory", "Find Your Car"},
	},
	Book: {
		domain:    Book,
		siteNouns: []string{"PageTurner", "BookVault", "ReadMore", "NovelIdea", "BookBarn", "ChapterOne", "InkWell", "FolioFinds"},
		titleTemplates: []string{
			"%s - Books for Sale Online",
			"%s: Search Millions of Books",
			"New and Used Books at %s",
			"%s Online Bookstore",
		},
		attrs: []attrSpec{
			{labels: []string{"Title", "Book Title"}, options: nil},
			{labels: []string{"Author", "Written By", "Author Name"}, options: nil},
			{labels: []string{"ISBN", "ISBN Number"}, options: nil},
			{labels: []string{"Subject", "Category", "Genre"}, options: []string{"Fiction", "Mystery", "Science Fiction", "Biography", "History", "Romance", "Cooking", "Travel", "Children", "Reference"}},
			{labels: []string{"Format", "Binding"}, options: []string{"Hardcover", "Paperback", "Audio Book", "Large Print"}},
			{labels: []string{"Publisher", "Publishing House"}, options: []string{"Penguin", "Random House", "HarperCollins", "Simon Schuster", "Oxford", "Any Publisher"}},
			{labels: []string{"Condition"}, options: []string{"New", "Like New", "Very Good", "Good", "Acceptable"}},
			{labels: []string{"Language", "Written In"}, options: languages},
		},
		prose: []string{
			"millions of new and used books", "out of print and rare titles",
			"first editions and signed copies", "textbooks at discount prices",
			"read reviews from other readers", "award winning novels and bestsellers",
			"paperback hardcover and audio formats", "browse by author or subject",
			"independent booksellers worldwide", "free bookmark with every order",
			"literary classics and poetry", "publisher overstock bargains",
		},
		searchVerbs: []string{"Search Books", "Find Books", "Find a Book", "Search Titles"},
	},
	CarRental: {
		domain:    CarRental,
		siteNouns: []string{"RentWheels", "QuickCar", "GoRental", "MileageMax", "CityDrive", "EasyRent", "AutoHire", "RoadReady"},
		titleTemplates: []string{
			"%s - Rental Car Reservations",
			"%s: Compare Car Rental Rates",
			"Rent a Car Online with %s",
			"%s Discount Car Hire",
		},
		attrs: []attrSpec{
			{labels: []string{"Pick Up Location", "Pickup City", "Rental Location"}, options: cities},
			{labels: []string{"Drop Off Location", "Return City", "Return Location"}, options: cities},
			{labels: []string{"Pick Up Date", "Rental Date", "Start Date"}, options: months},
			{labels: []string{"Drop Off Date", "Return Date", "End Date"}, options: months},
			{labels: []string{"Car Class", "Vehicle Class", "Car Type"}, options: []string{"Economy", "Compact", "Midsize", "Full Size", "Luxury", "Minivan", "SUV"}},
			{labels: []string{"Rental Company", "Agency", "Supplier"}, options: []string{"Hertz", "Avis", "Budget", "Enterprise", "National", "Alamo", "Any Company"}},
			{labels: []string{"Country", "Rental Country"}, options: countries},
		},
		prose: []string{
			"compare rental rates at airport locations", "unlimited mileage on most rentals",
			"weekly and weekend rental specials", "insurance and collision damage waiver",
			"free cancellation on reservations", "pick up at the airport counter",
			"economy to luxury vehicles available", "corporate and leisure rentals",
			"one way rentals between cities", "child seats and gps navigation extras",
			"driver age requirements apply", "fuel policy and mileage terms",
		},
		searchVerbs: []string{"Search Rentals", "Find a Car", "Get Rates", "Check Availability"},
	},
	Hotel: {
		domain:    Hotel,
		siteNouns: []string{"StayFinder", "RoomQuest", "InnSeeker", "HotelHive", "SuiteSpot", "LodgeLook", "BedBoard", "CheckInn"},
		titleTemplates: []string{
			"%s - Hotel Reservations and Availability",
			"%s: Find Hotel Rooms and Rates",
			"Book Hotels Online at %s",
			"%s Discount Hotel Deals",
		},
		attrs: []attrSpec{
			{labels: []string{"City", "Destination", "Where"}, options: cities},
			{labels: []string{"Check In", "Arrival Date", "Check In Month"}, options: months},
			{labels: []string{"Check Out", "Departure Date", "Check Out Month"}, options: months},
			{labels: []string{"Rooms", "Number of Rooms"}, options: []string{"1", "2", "3", "4"}},
			{labels: []string{"Guests", "Adults", "Occupancy"}, options: []string{"1", "2", "3", "4", "5"}},
			{labels: []string{"Star Rating", "Hotel Class", "Rating"}, options: []string{"2 Stars", "3 Stars", "4 Stars", "5 Stars", "Any Rating"}},
			{labels: []string{"Hotel Chain", "Brand", "Preferred Chain"}, options: []string{"Hilton", "Marriott", "Hyatt", "Sheraton", "Holiday Inn", "Best Western", "Any Chain"}},
			{labels: []string{"Country", "Destination Country"}, options: countries},
		},
		prose: []string{
			"real time room availability and rates", "free breakfast and wireless internet",
			"downtown and airport hotels", "guest reviews and hotel photos",
			"no booking fees ever", "suites with kitchenette",
			"swimming pool fitness center amenities", "pet friendly accommodations",
			"group rates and extended stays", "bed and breakfast inns",
			"oceanfront resorts and spas", "late checkout on request",
		},
		searchVerbs: []string{"Search Hotels", "Find Rooms", "Check Rates", "Find Hotels"},
	},
	Job: {
		domain:    Job,
		siteNouns: []string{"CareerLift", "JobScout", "WorkWise", "HireLine", "TalentPool", "JobSpring", "CareerPath", "EmployMe"},
		titleTemplates: []string{
			"%s - Job Search and Career Resources",
			"%s: Search Job Openings",
			"Find Jobs and Careers at %s",
			"%s Employment Listings",
		},
		attrs: []attrSpec{
			{labels: []string{"Job Category", "Industry", "Field", "Job Type"}, options: []string{"Accounting", "Engineering", "Healthcare", "Information Technology", "Sales", "Education", "Manufacturing", "Legal", "Marketing", "Nursing"}},
			{labels: []string{"State", "Location", "Region", "Where"}, options: usStates},
			{labels: []string{"Keywords", "Job Title", "Skills"}, options: nil},
			{labels: []string{"Salary Range", "Pay", "Compensation"}, options: []string{"Under 30000", "30000 to 50000", "50000 to 75000", "75000 to 100000", "Over 100000"}},
			{labels: []string{"Experience Level", "Career Level", "Experience"}, options: []string{"Entry Level", "Mid Career", "Senior", "Executive", "Internship"}},
			{labels: []string{"Employment Type", "Schedule"}, options: []string{"Full Time", "Part Time", "Contract", "Temporary"}},
			{labels: []string{"City", "Metro Area"}, options: cities},
		},
		prose: []string{
			"thousands of job openings updated daily", "post your resume for employers",
			"salary surveys and career advice", "entry level to executive positions",
			"employers are hiring in your area", "interview tips and resume writing",
			"full time part time and contract work", "recruiters search our candidate database",
			"job alerts delivered by email", "internships and graduate programs",
			"relocation assistance available", "benefits and retirement plans",
		},
		searchVerbs: []string{"Search Jobs", "Find Jobs", "Search Openings", "Find a Job"},
	},
	Movie: {
		domain:    Movie,
		siteNouns: []string{"FilmCrate", "ReelDeals", "MovieMart", "CineShop", "FlickFind", "ScreenGems", "DVDepot", "PremiereShop"},
		titleTemplates: []string{
			"%s - Movies and DVDs for Sale",
			"%s: Search Movie Titles",
			"Buy DVDs Online at %s",
			"%s DVD and Video Store",
		},
		attrs: []attrSpec{
			{labels: []string{"Movie Title", "Title", "Film Name"}, options: nil},
			{labels: []string{"Director", "Directed By", "Filmmaker"}, options: nil},
			{labels: []string{"Actor", "Starring", "Cast Member"}, options: nil},
			{labels: []string{"Genre", "Category", "Film Genre"}, options: []string{"Action", "Comedy", "Drama", "Horror", "Thriller", "Documentary", "Animation", "Western", "Family"}},
			{labels: []string{"Format", "Media Format"}, options: []string{"DVD", "VHS", "Widescreen DVD", "Box Set"}},
			{labels: []string{"MPAA Rating", "Rating", "Rated"}, options: []string{"G", "PG", "PG-13", "R", "Unrated"}},
			{labels: []string{"Decade", "Release Decade", "Year"}, options: []string{"1960s", "1970s", "1980s", "1990s", "2000s"}},
			{labels: []string{"Language", "Audio Language"}, options: languages},
		},
		prose: []string{
			"new release movies and classic films", "widescreen and fullscreen dvds",
			"behind the scenes bonus features", "academy award winning films",
			"cult classics and foreign cinema", "movie trailers and screenshots",
			"directors cut special editions", "film reviews by top critics",
			"preorder upcoming theatrical releases", "hollywood blockbusters on sale",
			"television series complete seasons", "actors filmography and biography",
		},
		searchVerbs: []string{"Search Movies", "Find Films", "Search DVDs", "Find Movies"},
	},
	Music: {
		domain:    Music,
		siteNouns: []string{"TuneTrove", "DiscSpin", "MelodyMart", "CDCorner", "SoundBay", "VinylVault", "NoteShop", "RhythmBox"},
		titleTemplates: []string{
			"%s - Music CDs for Sale",
			"%s: Search Albums and Artists",
			"Buy CDs Online at %s",
			"%s Music Store",
		},
		attrs: []attrSpec{
			{labels: []string{"Artist", "Band", "Performer"}, options: nil},
			{labels: []string{"Album Title", "Album", "Record Title"}, options: nil},
			{labels: []string{"Song Title", "Track", "Song"}, options: nil},
			{labels: []string{"Genre", "Music Style", "Category"}, options: []string{"Rock", "Pop", "Jazz", "Classical", "Country", "Hip Hop", "Blues", "Electronic", "Folk", "Reggae"}},
			{labels: []string{"Format", "Media"}, options: []string{"CD", "Vinyl LP", "Cassette", "Box Set"}},
			{labels: []string{"Record Label", "Label"}, options: []string{"Columbia", "Capitol", "Atlantic", "Motown", "Def Jam", "Any Label"}},
			{labels: []string{"Decade", "Era", "Year"}, options: []string{"1960s", "1970s", "1980s", "1990s", "2000s"}},
			{labels: []string{"Country of Origin", "Country"}, options: countries},
		},
		prose: []string{
			"new albums and greatest hits collections", "import cds and rare vinyl records",
			"listen to song samples before you buy", "grammy award winning artists",
			"concert tickets and tour dates", "remastered editions with liner notes",
			"billboard chart toppers", "independent labels and local bands",
			"singles eps and full length albums", "band biographies and discographies",
			"limited edition colored vinyl", "classical symphonies and opera recordings",
		},
		searchVerbs: []string{"Search Music", "Find Albums", "Search CDs", "Find Music"},
	},
}

// Spec returns the generative spec of a domain (nil for unknown domains).
func Spec(d Domain) *domainSpec { return domainSpecs[d] }

// AttributeConcepts returns, for each attribute concept of the domain,
// the alternative labels sites use for it — the gold standard for
// attribute-correspondence experiments (e.g. Job's "Job Category" /
// "Industry" / "Field" are one concept).
func AttributeConcepts(d Domain) [][]string {
	spec := domainSpecs[d]
	if spec == nil {
		return nil
	}
	out := make([][]string, 0, len(spec.attrs))
	for _, a := range spec.attrs {
		out = append(out, append([]string(nil), a.labels...))
	}
	return out
}

// Vocabulary returns the domain's generator-side term set — every term
// (stemmed, via the same text pipeline the clustering uses) that can
// appear in the domain's site nouns, title templates, attribute labels
// and options, prose snippets and search verbs, plus the domain name
// itself. It is the gold standard for label-quality experiments: a
// cluster label "aligned" with a domain is one drawn from this set.
func Vocabulary(d Domain) map[string]bool {
	spec := domainSpecs[d]
	if spec == nil {
		return nil
	}
	vocab := make(map[string]bool)
	add := func(ss ...string) {
		for _, s := range ss {
			for _, t := range text.Terms(s) {
				vocab[t] = true
			}
		}
	}
	add(string(d))
	add(spec.siteNouns...)
	add(spec.titleTemplates...)
	add(spec.prose...)
	add(spec.searchVerbs...)
	for _, a := range spec.attrs {
		add(a.labels...)
		add(a.options...)
	}
	return vocab
}
