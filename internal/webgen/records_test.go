package webgen

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRecordsGeneratedForEveryFormPage(t *testing.T) {
	c := Generate(Config{Seed: 1, FormPages: 64})
	for _, u := range c.FormPages {
		recs := c.Records[u]
		if len(recs) != recordCount {
			t.Fatalf("%s: %d records", u, len(recs))
		}
		for _, r := range recs {
			if strings.TrimSpace(r) == "" {
				t.Fatalf("%s: empty record", u)
			}
		}
	}
}

func TestRecordsDeterministicAndHTMLIndependent(t *testing.T) {
	a := Generate(Config{Seed: 5, FormPages: 32})
	b := Generate(Config{Seed: 5, FormPages: 32})
	for _, u := range a.FormPages {
		ra, rb := a.Records[u], b.Records[u]
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("records differ for %s", u)
			}
		}
	}
}

func TestRecordsCarryDomainVocabulary(t *testing.T) {
	c := Generate(Config{Seed: 2, FormPages: 64})
	markers := map[Domain]string{
		Airfare:   "Flight from",
		Book:      "published by",
		Hotel:     "per night",
		CarRental: "per day",
		Movie:     "directed by",
		Job:       "position in",
	}
	for _, u := range c.FormPages {
		marker, ok := markers[c.Labels[u]]
		if !ok {
			continue
		}
		hit := false
		for _, r := range c.Records[u] {
			if strings.Contains(r, marker) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("%s (%s): no record contains %q", u, c.Labels[u], marker)
		}
	}
}

func TestSearchRecords(t *testing.T) {
	recs := []string{
		"Flight from Boston to Denver departing June",
		"Flight from Miami to Seattle departing March",
	}
	if got := SearchRecords(recs, "boston"); len(got) != 1 {
		t.Errorf("boston -> %v", got)
	}
	if got := SearchRecords(recs, "flight"); len(got) != 2 {
		t.Errorf("flight -> %d", len(got))
	}
	if got := SearchRecords(recs, "zebra"); len(got) != 0 {
		t.Errorf("zebra -> %v", got)
	}
	if got := SearchRecords(recs, ""); got != nil {
		t.Errorf("empty query -> %v", got)
	}
	if got := SearchRecords(recs, "BOSTON miami"); len(got) != 2 {
		t.Errorf("multi-term OR -> %d", len(got))
	}
}

func TestRandomRecords(t *testing.T) {
	recs := []string{"a", "b", "c", "d", "e"}
	rng := rand.New(rand.NewSource(1))
	got := RandomRecords(recs, 3, rng)
	if len(got) != 3 {
		t.Fatalf("got %d", len(got))
	}
	seen := map[string]bool{}
	for _, r := range got {
		if seen[r] {
			t.Fatal("duplicate sample")
		}
		seen[r] = true
	}
	if all := RandomRecords(recs, 10, rng); len(all) != 5 {
		t.Errorf("oversample -> %d", len(all))
	}
}

func TestNonSearchableFormsDeterministic(t *testing.T) {
	a := NonSearchableForms(3, 20)
	b := NonSearchableForms(3, 20)
	if len(a) != 20 {
		t.Fatalf("got %d forms", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-searchable generation not deterministic")
		}
	}
	// All five kinds should appear across 20 samples.
	kinds := 0
	for _, marker := range []string{"password", "Subscribe", "Message", "Quote", "Register"} {
		for _, h := range a {
			if strings.Contains(h, marker) {
				kinds++
				break
			}
		}
	}
	if kinds < 3 {
		t.Errorf("only %d form kinds appear", kinds)
	}
}
