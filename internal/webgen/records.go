package webgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
)

// Record generation: every generated site owns a small database of
// textual records composed from its domain's vocabulary. The corpus HTTP
// server answers form submissions against these records, which lets
// post-query techniques (probe queries, the paper's related work [4, 14])
// be implemented and compared against CAFC's pre-query approach.

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard",
	"Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Carlos", "Maria",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Wilson", "Anderson", "Taylor",
	"Thomas", "Moore", "Jackson", "Martin", "Lee", "Walker", "Hall",
}

var titleWords = []string{
	"Hidden", "Silent", "Golden", "Broken", "Midnight", "Summer",
	"Winter", "Lost", "Last", "First", "Secret", "Ancient", "Modern",
	"Burning", "Frozen", "Distant", "Shining", "Wild", "Quiet", "Red",
	"Blue", "Green", "Dark", "Bright", "Long", "Short", "Deep",
}

var titleNouns = []string{
	"Garden", "River", "Mountain", "City", "Road", "Bridge", "Harbor",
	"Forest", "Island", "Valley", "Tower", "Window", "Door", "Mirror",
	"Journey", "Letter", "Promise", "Dream", "Song", "Dance", "Storm",
	"Shadow", "Light", "Voice", "Memory", "Secret", "Stranger", "Child",
}

// recordCount is how many records each site's database holds.
const recordCount = 40

// generateRecords builds the database rows for one site. It draws from a
// per-site RNG derived from the corpus seed and the site's URL rather
// than the generator's shared stream, so adding or dropping record
// generation never perturbs the page HTML of the rest of the corpus.
func (g *generator) generateRecords(s *site) []string {
	spec := domainSpecs[s.domain]
	h := fnv.New64a()
	_, _ = h.Write([]byte(s.formURL))
	rng := rand.New(rand.NewSource(g.cfg.Seed ^ int64(h.Sum64())))
	out := make([]string, 0, recordCount)
	person := func() string {
		return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
	}
	work := func() string {
		return "The " + titleWords[rng.Intn(len(titleWords))] + " " + titleNouns[rng.Intn(len(titleNouns))]
	}
	optionOf := func(i int) string {
		attr := spec.attrs[i%len(spec.attrs)]
		if len(attr.options) == 0 {
			return work()
		}
		return attr.options[rng.Intn(len(attr.options))]
	}
	for i := 0; i < recordCount; i++ {
		var r string
		switch s.domain {
		case Airfare:
			r = fmt.Sprintf("Flight from %s to %s departing %s %s class fare %d dollars",
				cities[rng.Intn(len(cities))], cities[rng.Intn(len(cities))],
				months[rng.Intn(len(months))], optionOf(5), 99+rng.Intn(900))
		case Auto:
			r = fmt.Sprintf("%s %s %s with %d miles asking %d dollars",
				optionOf(2), optionOf(0), optionOf(4), 1000*rng.Intn(120), 1000*(3+rng.Intn(40)))
		case Book:
			r = fmt.Sprintf("%s by %s %s published by %s in %d",
				work(), person(), optionOf(4), optionOf(5), 1950+rng.Intn(56))
		case CarRental:
			r = fmt.Sprintf("%s car available in %s from %s at %d dollars per day",
				optionOf(4), cities[rng.Intn(len(cities))], optionOf(5), 19+rng.Intn(80))
		case Hotel:
			r = fmt.Sprintf("%s hotel in %s %s with rooms from %d dollars per night",
				optionOf(5), cities[rng.Intn(len(cities))], optionOf(6), 49+rng.Intn(250))
		case Job:
			r = fmt.Sprintf("%s position in %s %s paying %s",
				optionOf(0), optionOf(1), optionOf(5), optionOf(3))
		case Movie:
			r = fmt.Sprintf("%s directed by %s %s rated %s on %s",
				work(), person(), optionOf(3), optionOf(5), optionOf(4))
		default: // Music
			r = fmt.Sprintf("%s by %s %s on %s records released in the %s",
				work(), person(), optionOf(3), optionOf(5), optionOf(6))
		}
		out = append(out, r)
	}
	return out
}

// SearchRecords performs the simulated database's keyword search: records
// containing any query term (case-insensitive substring on word
// boundaries approximated by lower-cased containment) match. An empty
// query matches nothing.
func SearchRecords(records []string, query string) []string {
	terms := strings.Fields(strings.ToLower(query))
	if len(terms) == 0 {
		return nil
	}
	var out []string
	for _, r := range records {
		low := strings.ToLower(r)
		for _, t := range terms {
			if strings.Contains(low, t) {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// RandomRecords samples up to n records — what a database returns for a
// browse/default query.
func RandomRecords(records []string, n int, rng *rand.Rand) []string {
	if n >= len(records) {
		return append([]string(nil), records...)
	}
	perm := rng.Perm(len(records))[:n]
	out := make([]string, 0, n)
	for _, i := range perm {
		out = append(out, records[i])
	}
	return out
}
