package webgen

import (
	"fmt"
	"math/rand"
	"strings"

	"cafc/internal/htmlx"
)

// PageKind classifies a generated page.
type PageKind int

const (
	// FormPageKind is a searchable-form entry point to a database.
	FormPageKind PageKind = iota
	// RootPageKind is the home page of a site hosting a form page.
	RootPageKind
	// HubPageKind is a per-domain hub linking to form pages.
	HubPageKind
	// DirectoryPageKind is a cross-domain directory page.
	DirectoryPageKind
)

// String names the page kind.
func (k PageKind) String() string {
	switch k {
	case FormPageKind:
		return "form"
	case RootPageKind:
		return "root"
	case HubPageKind:
		return "hub"
	case DirectoryPageKind:
		return "directory"
	}
	return "unknown"
}

// Page is one generated HTML document.
type Page struct {
	URL    string
	HTML   string
	Kind   PageKind
	Domain Domain // gold domain for form/root/hub pages; "" for directories
	// SingleAttr marks single-attribute form pages (form pages only).
	SingleAttr bool
	// Ambiguous marks music/movie crossover form pages (Figure 4).
	Ambiguous bool
}

// Corpus is a complete synthetic web.
type Corpus struct {
	Pages     []*Page
	ByURL     map[string]*Page
	FormPages []string          // form-page URLs in generation order
	Labels    map[string]Domain // gold labels for form pages
	RootOf    map[string]string // form-page URL -> site root URL
	// Records holds each form page's simulated database rows, keyed by
	// form-page URL. The corpus HTTP server answers form submissions
	// against them.
	Records map[string][]string
}

// Config controls corpus generation. Zero values select the defaults that
// mirror the paper's data set.
type Config struct {
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed int64
	// FormPages is the number of form pages (default 454).
	FormPages int
	// SingleAttrFraction is the share of single-attribute forms
	// (default 56/454, the paper's split).
	SingleAttrFraction float64
	// AmbiguousFraction is the share of Music/Movie pages drawing
	// vocabulary from both domains (default 0.08).
	AmbiguousFraction float64
	// HubsPerDomain is the number of per-domain hub pages (default 8).
	HubsPerDomain int
	// DirectoryHubs is the number of cross-domain directories (default 4).
	DirectoryHubs int
	// HubMixFraction is the share of domain hubs polluted with one or two
	// foreign links (default 0.25) — hubs are useful but imperfect.
	HubMixFraction float64
	// OrphanFraction is the share of form pages withheld from all hubs.
	// Together with hubs' random selection it yields an overall
	// backlink-coverage gap near the paper's 15% (default 0.08).
	OrphanFraction float64
	// NoiseSnippets is how many extra random boilerplate snippets each
	// page carries (default 6).
	NoiseSnippets int
	// FormsOnly emits just the form pages: no site roots, hubs,
	// directories or database records. Scale benchmarks use it to grow
	// the clusterable corpus without paying for link structure the
	// kernels never read. It is its own deterministic corpus family — a
	// FormsOnly corpus is not a subset of the full corpus for the same
	// seed, because skipped pages also skip their random draws.
	FormsOnly bool
}

func (c Config) withDefaults() Config {
	if c.FormPages == 0 {
		c.FormPages = 454
	}
	if c.SingleAttrFraction == 0 {
		c.SingleAttrFraction = 56.0 / 454.0
	}
	if c.AmbiguousFraction == 0 {
		c.AmbiguousFraction = 0.15
	}
	if c.HubsPerDomain == 0 {
		// Hubs scale with the web: the paper saw thousands of co-citation
		// sets around 454 forms.
		c.HubsPerDomain = c.FormPages / 16
		if c.HubsPerDomain < 6 {
			c.HubsPerDomain = 6
		}
	}
	if c.DirectoryHubs == 0 {
		c.DirectoryHubs = 4
	}
	if c.HubMixFraction == 0 {
		c.HubMixFraction = 0.25
	}
	if c.OrphanFraction == 0 {
		c.OrphanFraction = 0.08
	}
	if c.NoiseSnippets == 0 {
		c.NoiseSnippets = 6
	}
	return c
}

// site is one generated web site: a root page plus a form page.
type site struct {
	domain     Domain
	name       string
	host       string
	rootURL    string
	formURL    string
	singleAttr bool
	ambiguous  bool
	// big marks option-heavy forms rendered on nearly bare pages.
	big bool
}

type generator struct {
	cfg Config
	rng *rand.Rand
	c   *Corpus
}

// Generate builds a synthetic web corpus.
func Generate(cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		c: &Corpus{
			ByURL:   make(map[string]*Page),
			Labels:  make(map[string]Domain),
			RootOf:  make(map[string]string),
			Records: make(map[string][]string),
		},
	}
	sites := g.planSites()
	for _, s := range sites {
		g.emitSite(s)
	}
	if !cfg.FormsOnly {
		g.emitHubs(sites)
		g.emitDirectories(sites)
	}
	return g.c
}

// planSites decides domain, form shape and naming for every site.
func (g *generator) planSites() []*site {
	n := g.cfg.FormPages
	singles := int(float64(n)*g.cfg.SingleAttrFraction + 0.5)
	sites := make([]*site, 0, n)
	for i := 0; i < n; i++ {
		d := Domains[i%len(Domains)]
		spec := domainSpecs[d]
		name := fmt.Sprintf("%s%d", spec.siteNouns[g.rng.Intn(len(spec.siteNouns))], i)
		host := fmt.Sprintf("http://www.%s.example", strings.ToLower(name))
		s := &site{
			domain:  d,
			name:    name,
			host:    host,
			rootURL: host + "/",
			formURL: host + "/search.html",
		}
		if (d == Music || d == Movie) && g.rng.Float64() < g.cfg.AmbiguousFraction {
			s.ambiguous = true
		}
		if g.rng.Float64() < 0.20 {
			s.big = true
		}
		sites = append(sites, s)
	}
	// Distribute single-attribute forms uniformly over the plan.
	perm := g.rng.Perm(n)
	for i := 0; i < singles && i < n; i++ {
		sites[perm[i]].singleAttr = true
	}
	return sites
}

// emitSite renders and registers a site's root and form pages.
func (g *generator) emitSite(s *site) {
	formHTML := g.formPageHTML(s)
	fp := &Page{
		URL: s.formURL, HTML: formHTML, Kind: FormPageKind,
		Domain: s.domain, SingleAttr: s.singleAttr, Ambiguous: s.ambiguous,
	}
	g.addPage(fp)
	g.c.FormPages = append(g.c.FormPages, s.formURL)
	g.c.Labels[s.formURL] = s.domain
	if g.cfg.FormsOnly {
		return
	}
	rp := &Page{URL: s.rootURL, HTML: g.rootPageHTML(s), Kind: RootPageKind, Domain: s.domain}
	g.addPage(rp)
	g.c.RootOf[s.formURL] = s.rootURL
	g.c.Records[s.formURL] = g.generateRecords(s)
}

func (g *generator) addPage(p *Page) {
	g.c.Pages = append(g.c.Pages, p)
	g.c.ByURL[p.URL] = p
}

// pick returns a random element of xs.
func (g *generator) pick(xs []string) string {
	return xs[g.rng.Intn(len(xs))]
}

// proseSentences samples k prose snippets from the spec (and the shared
// music/movie pool for ambiguous or entertainment-domain pages).
func (g *generator) proseSentences(s *site, k int) []string {
	spec := domainSpecs[s.domain]
	pool := spec.prose
	if s.ambiguous {
		other := Movie
		if s.domain == Movie {
			other = Music
		}
		pool = append(append([]string{}, pool...), domainSpecs[other].prose...)
	}
	if s.domain == Music || s.domain == Movie {
		pool = append(append([]string{}, pool...), movieMusicShared...)
	}
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, g.pick(pool))
	}
	return out
}

// noise returns random boilerplate snippets shared across all domains.
func (g *generator) noise(k int) []string {
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, g.pick(genericBoilerplate))
	}
	return out
}

// crossAds returns k prose snippets from *other* domains — the partner
// advertisements and cross-promotions that pollute real page bodies
// ("book your hotel", "rent a car") and create the cross-domain
// vocabulary overlap the paper observes in page contents. They live
// outside the form, so they degrade PC but never FC.
func (g *generator) crossAds(d Domain, k int) []string {
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		other := Domains[g.rng.Intn(len(Domains))]
		if other == d {
			continue
		}
		out = append(out, g.pick(domainSpecs[other].prose))
	}
	return out
}

// formPageHTML renders a site's searchable-form page. Form size and page
// richness are inversely correlated to reproduce Table 1: single-attribute
// pages get many prose paragraphs; option-heavy forms get nearly bare
// pages.
func (g *generator) formPageHTML(s *site) string {
	spec := domainSpecs[s.domain]
	var b strings.Builder
	title := fmt.Sprintf(g.pick(spec.titleTemplates), s.name)
	if s.ambiguous {
		// Combined music+movie stores (the paper's Figure 4) advertise
		// both catalogs up front.
		title = fmt.Sprintf("%s - Music and Movies Online", s.name)
	}
	if s.big && !s.singleAttr && g.rng.Float64() < 0.6 {
		// Option-heavy pages frequently carry generic titles that say
		// nothing about the database domain.
		title = fmt.Sprintf("%s - %s", g.pick([]string{"Advanced Search", "Search Our Database", "Power Search", "Detailed Search"}), s.name)
	}
	fmt.Fprintf(&b, "<html><head><title>%s</title></head>\n<body>\n", htmlx.EscapeText(title))
	fmt.Fprintf(&b, "<div class=\"nav\"><a href=\"/\">%s</a>", htmlx.EscapeText(s.name))
	for _, nz := range g.noise(3) {
		fmt.Fprintf(&b, " | <a href=\"/info.html\">%s</a>", htmlx.EscapeText(nz))
	}
	b.WriteString("</div>\n")

	if s.singleAttr {
		g.singleAttrBody(&b, s, spec)
	} else {
		g.multiAttrBody(&b, s, spec)
	}

	// Partner advertisements: other-domain prose pollutes page bodies.
	// Sparse (big-form) pages carry more of it — ads fill the space.
	adProb, adCount := 0.6, 2+g.rng.Intn(3)
	if s.big {
		adProb, adCount = 0.85, 3+g.rng.Intn(3)
	}
	if g.rng.Float64() < adProb {
		b.WriteString("<div class=\"partners\"><h3>From our partners</h3>")
		for _, ad := range g.crossAds(s.domain, adCount) {
			fmt.Fprintf(&b, "<p>%s</p>", htmlx.EscapeText(ad))
		}
		b.WriteString("</div>\n")
	}
	b.WriteString("<div class=\"footer\">")
	for _, nz := range g.noise(g.cfg.NoiseSnippets) {
		fmt.Fprintf(&b, "<span>%s</span> ", htmlx.EscapeText(nz))
	}
	b.WriteString("</div>\n</body></html>\n")
	return b.String()
}

// singleAttrBody renders a keyword-box form whose descriptive text sits
// outside the FORM tags (the paper's Figure 1(c) pathology), surrounded by
// a content-rich page.
func (g *generator) singleAttrBody(b *strings.Builder, s *site, spec *domainSpec) {
	verb := g.pick(spec.searchVerbs)
	// Rich prose before the form: 8-14 sentences.
	k := 8 + g.rng.Intn(7)
	fmt.Fprintf(b, "<h1>%s</h1>\n", htmlx.EscapeText(verb))
	for _, p := range g.proseSentences(s, k) {
		fmt.Fprintf(b, "<p>%s</p>\n", htmlx.EscapeText(p))
	}
	// The descriptive string appears above, not inside, the form.
	fmt.Fprintf(b, "<b>%s</b>\n", htmlx.EscapeText(verb))
	submit := g.pick([]string{"Go", "Search", "Find", "Submit"})
	fmt.Fprintf(b, "<form action=\"/results\" method=\"get\"><input type=\"text\" name=\"q\" size=\"30\"><input type=\"submit\" value=\"%s\"></form>\n", htmlx.EscapeAttr(submit))
	// More prose after.
	for _, p := range g.proseSentences(s, 4+g.rng.Intn(4)) {
		fmt.Fprintf(b, "<p>%s</p>\n", htmlx.EscapeText(p))
	}
}

// multiAttrBody renders a structured form with 2-7 attributes whose labels
// vary across sites, plus page prose that shrinks as the form grows.
func (g *generator) multiAttrBody(b *strings.Builder, s *site, spec *domainSpec) {
	attrPool := spec.attrs
	if s.ambiguous {
		other := Movie
		if s.domain == Movie {
			other = Music
		}
		attrPool = append(append([]attrSpec{}, attrPool...), domainSpecs[other].attrs[:3]...)
	}
	// Big multi-attribute forms render every attribute as a full select;
	// they populate Table 1's >=100-term buckets.
	big := s.big
	nAttrs := 2 + g.rng.Intn(min(6, len(attrPool)-1))
	if big {
		nAttrs = len(attrPool)
	}
	idx := g.rng.Perm(len(attrPool))[:nAttrs]

	// Page richness inversely proportional to expected form size.
	optionTotal := 0
	for _, i := range idx {
		optionTotal += len(attrPool[i].options)
	}
	prose := 9 - nAttrs - optionTotal/12
	if prose < 0 {
		prose = 0
	}
	verb := g.pick(spec.searchVerbs)
	heading := verb
	if big && g.rng.Float64() < 0.5 {
		heading = g.pick([]string{"Advanced Search", "Search Our Database", "Power Search"})
	}
	fmt.Fprintf(b, "<h1>%s</h1>\n", htmlx.EscapeText(heading))
	for _, p := range g.proseSentences(s, prose) {
		fmt.Fprintf(b, "<p>%s</p>\n", htmlx.EscapeText(p))
	}

	fmt.Fprintf(b, "<form action=\"/results\" method=\"get\">\n<table>\n")
	for _, i := range idx {
		attr := attrPool[i]
		label := attr.labels[g.rng.Intn(len(attr.labels))]
		name := strings.ToLower(strings.ReplaceAll(label, " ", "_"))
		fmt.Fprintf(b, "<tr><td>%s:</td><td>", htmlx.EscapeText(label))
		if len(attr.options) > 0 && (big || g.rng.Float64() < 0.8) {
			fmt.Fprintf(b, "<select name=\"%s\">", htmlx.EscapeAttr(name))
			// Occasionally an "All ..." default option.
			if g.rng.Float64() < 0.5 {
				fmt.Fprintf(b, "<option value=\"\">All</option>")
			}
			for _, opt := range attr.options {
				fmt.Fprintf(b, "<option>%s</option>", htmlx.EscapeText(opt))
			}
			b.WriteString("</select>")
		} else {
			fmt.Fprintf(b, "<input type=\"text\" name=\"%s\">", htmlx.EscapeAttr(name))
		}
		b.WriteString("</td></tr>\n")
	}
	b.WriteString("</table>\n")
	// A hidden session field (must be excluded from FC).
	fmt.Fprintf(b, "<input type=\"hidden\" name=\"sid\" value=\"s%d\">\n", g.rng.Intn(1e6))
	// ~10%% of forms use an image submit (GIF-label pathology).
	if g.rng.Float64() < 0.10 {
		fmt.Fprintf(b, "<input type=\"image\" src=\"/img/go.gif\" alt=\"%s\">\n", htmlx.EscapeAttr(verb))
	} else {
		fmt.Fprintf(b, "<input type=\"submit\" value=\"%s\">\n", htmlx.EscapeAttr(verb))
	}
	b.WriteString("</form>\n")
	for _, p := range g.proseSentences(s, prose/2) {
		fmt.Fprintf(b, "<p>%s</p>\n", htmlx.EscapeText(p))
	}
}

// rootPageHTML renders the site home page: prose, a link to the form page
// (the intra-site hub CAFC-CH must discount) and sometimes a newsletter
// form (non-searchable, exercising the form classifier).
func (g *generator) rootPageHTML(s *site) string {
	spec := domainSpecs[s.domain]
	var b strings.Builder
	title := fmt.Sprintf("%s - %s", s.name, g.pick(spec.searchVerbs))
	fmt.Fprintf(&b, "<html><head><title>%s</title></head>\n<body>\n", htmlx.EscapeText(title))
	fmt.Fprintf(&b, "<h1>Welcome to %s</h1>\n", htmlx.EscapeText(s.name))
	for _, p := range g.proseSentences(s, 4+g.rng.Intn(4)) {
		fmt.Fprintf(&b, "<p>%s</p>\n", htmlx.EscapeText(p))
	}
	fmt.Fprintf(&b, "<p><a href=\"%s\">%s</a></p>\n", htmlx.EscapeAttr(s.formURL), htmlx.EscapeText(g.pick(spec.searchVerbs)))
	if g.rng.Float64() < 0.4 {
		b.WriteString("<form action=\"/subscribe\" method=\"post\">Subscribe to our newsletter: <input type=\"text\" name=\"email\"><input type=\"submit\" value=\"Subscribe\"></form>\n")
	}
	for _, nz := range g.noise(g.cfg.NoiseSnippets) {
		fmt.Fprintf(&b, "<span>%s</span> ", htmlx.EscapeText(nz))
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// emitHubs builds per-domain hub pages. A hub links to between 2 and 13
// form pages, mostly within one domain; Airfare and Hotel additionally get
// oversized hubs (the paper notes hub clusters with 14+ pages only
// contained Air and Hotel forms). A HubMixFraction of hubs carry one or
// two foreign links; an OrphanFraction of form pages is excluded from hub
// candidacy entirely.
func (g *generator) emitHubs(sites []*site) {
	// Partition candidates per domain, withholding orphans.
	byDomain := make(map[Domain][]*site)
	for _, s := range sites {
		if g.rng.Float64() < g.cfg.OrphanFraction {
			continue // orphan: no hub will point to it
		}
		byDomain[s.domain] = append(byDomain[s.domain], s)
	}
	hubID := 0
	for _, d := range Domains {
		cands := byDomain[d]
		if len(cands) == 0 {
			continue
		}
		nHubs := g.cfg.HubsPerDomain
		for h := 0; h < nHubs; h++ {
			// Cardinality: mixture of small (2-5) and useful (6-11).
			var card int
			if g.rng.Float64() < 0.45 {
				card = 2 + g.rng.Intn(4)
			} else {
				card = 6 + g.rng.Intn(6)
			}
			g.emitHub(hubID, d, card, cands, sites)
			hubID++
		}
		// Oversized hubs (cardinality >= 13) exist for Airfare and Hotel
		// only — the paper observed that hub clusters with 14+ forms all
		// came from Air and Hotel.
		if d == Airfare || d == Hotel {
			for x := 0; x < 2; x++ {
				g.emitHub(hubID, d, 13+g.rng.Intn(6), cands, sites)
				hubID++
			}
		}
	}
}

// emitHub renders one hub page of the given cardinality over candidate
// sites of the hub's domain, possibly polluted with foreign links.
func (g *generator) emitHub(id int, d Domain, card int, cands, all []*site) {
	if card > len(cands) {
		card = len(cands)
	}
	if card == 0 {
		return
	}
	perm := g.rng.Perm(len(cands))
	chosen := make([]*site, 0, card)
	for _, i := range perm[:card] {
		chosen = append(chosen, cands[i])
	}
	// Pollute some hubs with foreign links, replacing members so the
	// drawn cardinality (and with it the oversized-hub invariant: 13+
	// only for Airfare/Hotel) stays exact.
	if g.rng.Float64() < g.cfg.HubMixFraction {
		extra := 1 + g.rng.Intn(2)
		for e := 0; e < extra && e < len(chosen); e++ {
			s := all[g.rng.Intn(len(all))]
			if s.domain != d {
				chosen[len(chosen)-1-e] = s
			}
		}
	}
	spec := domainSpecs[d]
	url := fmt.Sprintf("http://hubs.example/%s/list%d.html", d, id)
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>Best %s Sites - Reviewed Directory</title></head><body>\n", htmlx.EscapeText(string(d)))
	fmt.Fprintf(&b, "<h1>Top %s Resources</h1>\n<ul>\n", htmlx.EscapeText(string(d)))
	for _, s := range chosen {
		target := s.formURL
		if g.rng.Float64() < 0.25 {
			target = s.rootURL // some hubs cite the site root instead
		}
		fmt.Fprintf(&b, "<li><a href=\"%s\">%s</a> - %s</li>\n",
			htmlx.EscapeAttr(target), htmlx.EscapeText(s.name), htmlx.EscapeText(g.pick(spec.prose)))
	}
	b.WriteString("</ul></body></html>\n")
	g.addPage(&Page{URL: url, HTML: b.String(), Kind: HubPageKind, Domain: d})
}

// emitDirectories builds cross-domain directory pages — the heterogeneous
// hubs that SelectHubClusters must survive.
func (g *generator) emitDirectories(sites []*site) {
	byDomain := make(map[Domain][]*site)
	for _, s := range sites {
		byDomain[s.domain] = append(byDomain[s.domain], s)
	}
	for i := 0; i < g.cfg.DirectoryHubs; i++ {
		url := fmt.Sprintf("http://dir.example/directory%d.html", i)
		var b strings.Builder
		b.WriteString("<html><head><title>Online Database Directory - Search Everything</title></head><body>\n")
		b.WriteString("<h1>Searchable Databases by Topic</h1>\n")
		for _, d := range Domains {
			fmt.Fprintf(&b, "<h2>%s</h2>\n<ul>\n", htmlx.EscapeText(string(d)))
			// 2-4 sites per domain per directory.
			pool := byDomain[d]
			if len(pool) == 0 {
				continue
			}
			count := 2 + g.rng.Intn(3)
			for c := 0; c < count; c++ {
				s := pool[g.rng.Intn(len(pool))]
				fmt.Fprintf(&b, "<li><a href=\"%s\">%s</a></li>\n", htmlx.EscapeAttr(s.formURL), htmlx.EscapeText(s.name))
			}
			b.WriteString("</ul>\n")
		}
		b.WriteString("</body></html>\n")
		g.addPage(&Page{URL: url, HTML: b.String(), Kind: DirectoryPageKind})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
