package webgen

import (
	"testing"

	"cafc/internal/text"
)

// TestVocabularyCoversDomainTerms: each domain's vocabulary is
// non-empty, contains the stemmed domain name and its site nouns, and
// an unknown domain yields nil rather than panicking.
func TestVocabularyCoversDomainTerms(t *testing.T) {
	for _, d := range Domains {
		v := Vocabulary(d)
		if len(v) == 0 {
			t.Fatalf("%s: empty vocabulary", d)
		}
		for _, tm := range text.Terms(string(d)) {
			if !v[tm] {
				t.Errorf("%s: vocabulary missing own domain term %q", d, tm)
			}
		}
		for _, noun := range Spec(d).siteNouns {
			for _, tm := range text.Terms(noun) {
				if !v[tm] {
					t.Errorf("%s: vocabulary missing site-noun term %q (from %q)", d, tm, noun)
				}
			}
		}
	}
	if Vocabulary(Domain("nope")) != nil {
		t.Fatal("unknown domain should have nil vocabulary")
	}
}

// TestVocabularyDiscriminates: Hotel and Job vocabularies are not
// subsets of each other — the gold standard can actually separate
// domains.
func TestVocabularyDiscriminates(t *testing.T) {
	h, j := Vocabulary(Hotel), Vocabulary(Job)
	hOnly, jOnly := 0, 0
	for tm := range h {
		if !j[tm] {
			hOnly++
		}
	}
	for tm := range j {
		if !h[tm] {
			jOnly++
		}
	}
	if hOnly == 0 || jOnly == 0 {
		t.Fatalf("vocabularies nest: hotel-only=%d job-only=%d", hOnly, jOnly)
	}
}
