package webgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// NonSearchableForms generates n HTML documents each containing one
// non-searchable form (login, registration, newsletter, contact, quote
// request) with naming variation — training and evaluation data for the
// generic form classifier that pre-filters CAFC's input.
func NonSearchableForms(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, nonSearchableForm(rng))
	}
	return out
}

func nonSearchableForm(rng *rand.Rand) string {
	pick := func(xs []string) string { return xs[rng.Intn(len(xs))] }
	var b strings.Builder
	b.WriteString("<html><body>")
	switch rng.Intn(5) {
	case 0: // login
		user := pick([]string{"Username", "User Name", "Member ID", "Email Address"})
		btn := pick([]string{"Login", "Log In", "Sign In", "Enter"})
		fmt.Fprintf(&b, `<h2>%s</h2><form action="/login" method="post">
			%s: <input type="text" name="user"><br>
			Password: <input type="password" name="pass"><br>
			<input type="checkbox" name="remember"> Remember me
			<input type="submit" value="%s"></form>`,
			pick([]string{"Member Login", "Sign In to Your Account", "Account Access"}), user, btn)
	case 1: // registration
		fmt.Fprintf(&b, `<h2>%s</h2><form action="/register" method="post">
			Full Name: <input type="text" name="name"><br>
			Email: <input type="text" name="email"><br>
			Choose Password: <input type="password" name="p1"><br>
			Confirm Password: <input type="password" name="p2"><br>
			<input type="submit" value="%s"></form>`,
			pick([]string{"Create an Account", "Register Now", "Join Free Today"}),
			pick([]string{"Register", "Sign Up", "Create Account"}))
	case 2: // newsletter
		fmt.Fprintf(&b, `<form action="/subscribe" method="post">%s
			<input type="text" name="email">
			<input type="submit" value="%s"></form>`,
			pick([]string{"Subscribe to our newsletter:", "Get weekly deals by email:", "Join our mailing list:"}),
			pick([]string{"Subscribe", "Sign Up", "Join"}))
	case 3: // contact
		fmt.Fprintf(&b, `<h2>%s</h2><form action="/contact" method="post">
			Your Name: <input type="text" name="name"><br>
			Email: <input type="text" name="from"><br>
			Message: <textarea name="msg"></textarea><br>
			<input type="submit" value="%s"></form>`,
			pick([]string{"Contact Us", "Send Us Feedback", "Customer Support"}),
			pick([]string{"Send Message", "Submit Feedback", "Send"}))
	default: // quote request
		fmt.Fprintf(&b, `<h2>%s</h2><form action="/quote" method="post">
			Company: <input type="text" name="company"><br>
			Phone: <input type="text" name="phone"><br>
			Project Details: <textarea name="details"></textarea><br>
			<input type="submit" value="%s"></form>`,
			pick([]string{"Request a Quote", "Get a Free Estimate", "Quote Request Form"}),
			pick([]string{"Request Quote", "Get Estimate", "Submit Request"}))
	}
	b.WriteString("</body></html>")
	return b.String()
}
