package webgen

import (
	"strings"
	"testing"

	"cafc/internal/form"
	"cafc/internal/htmlx"
)

func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	return Generate(Config{Seed: 1, FormPages: 80})
}

func TestGenerateCounts(t *testing.T) {
	c := Generate(Config{Seed: 1})
	if len(c.FormPages) != 454 {
		t.Errorf("form pages = %d, want 454", len(c.FormPages))
	}
	singles := 0
	for _, u := range c.FormPages {
		if c.ByURL[u].SingleAttr {
			singles++
		}
	}
	if singles != 56 {
		t.Errorf("single-attribute pages = %d, want 56", singles)
	}
	// Every form page must have a label and a root.
	for _, u := range c.FormPages {
		if c.Labels[u] == "" {
			t.Fatalf("no label for %s", u)
		}
		if c.RootOf[u] == "" {
			t.Fatalf("no root for %s", u)
		}
		if c.ByURL[c.RootOf[u]] == nil {
			t.Fatalf("root page missing for %s", u)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, FormPages: 40})
	b := Generate(Config{Seed: 7, FormPages: 40})
	if len(a.Pages) != len(b.Pages) {
		t.Fatalf("page counts differ: %d vs %d", len(a.Pages), len(b.Pages))
	}
	for i := range a.Pages {
		if a.Pages[i].URL != b.Pages[i].URL || a.Pages[i].HTML != b.Pages[i].HTML {
			t.Fatalf("page %d differs between runs", i)
		}
	}
	c := Generate(Config{Seed: 8, FormPages: 40})
	same := true
	for i := range a.Pages {
		if i < len(c.Pages) && a.Pages[i].HTML != c.Pages[i].HTML {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestFormsOnly(t *testing.T) {
	c := Generate(Config{Seed: 7, FormPages: 60, FormsOnly: true})
	if len(c.Pages) != 60 || len(c.FormPages) != 60 {
		t.Fatalf("pages = %d, form pages = %d, want 60 each", len(c.Pages), len(c.FormPages))
	}
	for _, p := range c.Pages {
		if p.Kind != FormPageKind {
			t.Fatalf("%s has kind %v, want form", p.URL, p.Kind)
		}
		if c.Labels[p.URL] == "" {
			t.Fatalf("no label for %s", p.URL)
		}
	}
	if len(c.RootOf) != 0 || len(c.Records) != 0 {
		t.Errorf("forms-only corpus carries %d roots and %d record sets", len(c.RootOf), len(c.Records))
	}
	b := Generate(Config{Seed: 7, FormPages: 60, FormsOnly: true})
	for i := range c.Pages {
		if c.Pages[i].URL != b.Pages[i].URL || c.Pages[i].HTML != b.Pages[i].HTML {
			t.Fatalf("forms-only page %d differs between runs", i)
		}
	}
}

func TestAllDomainsCovered(t *testing.T) {
	c := smallCorpus(t)
	seen := map[Domain]int{}
	for _, u := range c.FormPages {
		seen[c.Labels[u]]++
	}
	for _, d := range Domains {
		if seen[d] == 0 {
			t.Errorf("domain %s has no form pages", d)
		}
	}
}

func TestFormPagesAreParseable(t *testing.T) {
	c := smallCorpus(t)
	for _, u := range c.FormPages {
		p := c.ByURL[u]
		fp, err := form.Parse(u, p.HTML, form.DefaultWeights)
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		if p.SingleAttr && fp.Form.AttributeCount() != 1 {
			t.Errorf("%s: marked single-attr but has %d attributes", u, fp.Form.AttributeCount())
		}
		if !p.SingleAttr && fp.Form.AttributeCount() < 2 {
			t.Errorf("%s: marked multi-attr but has %d attributes", u, fp.Form.AttributeCount())
		}
	}
}

func TestRootNewsletterFormFiltered(t *testing.T) {
	c := Generate(Config{Seed: 3, FormPages: 60})
	// Some root pages contain a subscribe form; the searchable-form
	// classifier must reject it.
	sawNewsletter := false
	for _, p := range c.Pages {
		if p.Kind != RootPageKind || !strings.Contains(p.HTML, "newsletter") {
			continue
		}
		sawNewsletter = true
		doc := htmlx.Parse(p.HTML)
		for _, f := range form.ExtractForms(doc) {
			if form.IsSearchable(f) {
				t.Errorf("newsletter form on %s judged searchable", p.URL)
			}
		}
	}
	if !sawNewsletter {
		t.Skip("no newsletter forms generated with this seed")
	}
}

func TestSingleAttrTextOutsideForm(t *testing.T) {
	c := smallCorpus(t)
	checked := 0
	for _, u := range c.FormPages {
		p := c.ByURL[u]
		if !p.SingleAttr {
			continue
		}
		checked++
		fp, err := form.Parse(u, p.HTML, form.DefaultWeights)
		if err != nil {
			t.Fatal(err)
		}
		// FC of a single-attribute form must be tiny (just the button).
		if fp.FormTermCount() > 6 {
			t.Errorf("%s: single-attr FC has %d terms", u, fp.FormTermCount())
		}
		// PC must be rich.
		if fp.PageTermsOutsideForm() < 40 {
			t.Errorf("%s: single-attr page only has %d outside terms", u, fp.PageTermsOutsideForm())
		}
	}
	if checked == 0 {
		t.Fatal("no single-attribute pages in corpus")
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	// Pages with small forms must on average be richer than pages with
	// big forms — the Table 1 inverse correlation.
	c := Generate(Config{Seed: 5, FormPages: 160})
	var smallForms, bigForms, smallOutside, bigOutside float64
	for _, u := range c.FormPages {
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatal(err)
		}
		fc := float64(fp.FormTermCount())
		out := float64(fp.PageTermsOutsideForm())
		if fc < 10 {
			smallForms++
			smallOutside += out
		} else if fc >= 100 {
			bigForms++
			bigOutside += out
		}
	}
	if smallForms == 0 || bigForms == 0 {
		t.Fatalf("degenerate form-size distribution: %v small, %v big", smallForms, bigForms)
	}
	if smallOutside/smallForms <= bigOutside/bigForms {
		t.Errorf("Table 1 shape violated: small-form pages avg %.1f outside terms, big-form pages avg %.1f",
			smallOutside/smallForms, bigOutside/bigForms)
	}
}

func TestHubsLinkMostlyWithinDomain(t *testing.T) {
	c := Generate(Config{Seed: 9, FormPages: 160})
	hubs := 0
	homogeneous := 0
	for _, p := range c.Pages {
		if p.Kind != HubPageKind {
			continue
		}
		hubs++
		doc := htmlx.Parse(p.HTML)
		pure := true
		for _, l := range htmlx.ExtractLinks(doc, nil) {
			target := c.ByURL[l.URL]
			if target == nil {
				continue
			}
			var d Domain
			switch target.Kind {
			case FormPageKind, RootPageKind:
				d = target.Domain
			default:
				continue
			}
			if d != p.Domain {
				pure = false
			}
		}
		if pure {
			homogeneous++
		}
	}
	if hubs == 0 {
		t.Fatal("no hubs generated")
	}
	frac := float64(homogeneous) / float64(hubs)
	if frac < 0.5 || frac > 0.95 {
		t.Errorf("homogeneous hub fraction = %.2f, want useful-but-imperfect (0.5..0.95)", frac)
	}
}

func TestDirectoriesSpanDomains(t *testing.T) {
	c := Generate(Config{Seed: 2, FormPages: 160})
	dirs := 0
	for _, p := range c.Pages {
		if p.Kind != DirectoryPageKind {
			continue
		}
		dirs++
		doc := htmlx.Parse(p.HTML)
		domains := map[Domain]bool{}
		for _, l := range htmlx.ExtractLinks(doc, nil) {
			if target := c.ByURL[l.URL]; target != nil {
				domains[target.Domain] = true
			}
		}
		if len(domains) < 3 {
			t.Errorf("directory %s spans only %d domains", p.URL, len(domains))
		}
	}
	if dirs == 0 {
		t.Fatal("no directories generated")
	}
}

func TestAmbiguousPagesExist(t *testing.T) {
	c := Generate(Config{Seed: 4, FormPages: 300})
	amb := 0
	for _, u := range c.FormPages {
		p := c.ByURL[u]
		if p.Ambiguous {
			amb++
			if p.Domain != Music && p.Domain != Movie {
				t.Errorf("ambiguous page in domain %s", p.Domain)
			}
		}
	}
	if amb == 0 {
		t.Error("no ambiguous music/movie pages generated")
	}
}

func TestPageKindString(t *testing.T) {
	if FormPageKind.String() != "form" || RootPageKind.String() != "root" ||
		HubPageKind.String() != "hub" || DirectoryPageKind.String() != "directory" ||
		PageKind(42).String() != "unknown" {
		t.Error("PageKind names wrong")
	}
}

func TestUniqueURLs(t *testing.T) {
	c := Generate(Config{Seed: 6, FormPages: 200})
	seen := map[string]bool{}
	for _, p := range c.Pages {
		if seen[p.URL] {
			t.Fatalf("duplicate URL %s", p.URL)
		}
		seen[p.URL] = true
	}
}

func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(Config{Seed: int64(i), FormPages: 454})
	}
}
