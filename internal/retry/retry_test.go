package retry

import (
	"context"
	"testing"
	"time"

	"cafc/internal/obs"
)

// manualClock is a minimal fake clock local to this package (the full
// harness clock lives in internal/fault, which imports this package).
type manualClock struct{ now time.Time }

func (c *manualClock) Now() time.Time { return c.now }
func (c *manualClock) Sleep(ctx context.Context, d time.Duration) error {
	c.now = c.now.Add(d)
	return ctx.Err()
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Multiplier: 2, Jitter: 0.5, Seed: 9}
	a, b := NewBackoff(p), NewBackoff(p)
	for attempt := 1; attempt <= 5; attempt++ {
		da, db := a.Delay(attempt), b.Delay(attempt)
		if da != db {
			t.Errorf("attempt %d: same seed gave %v and %v", attempt, da, db)
		}
		raw := p.WithDefaults().rawDelay(attempt)
		lo := raw - time.Duration(0.5*float64(raw))
		hi := raw + time.Duration(0.5*float64(raw))
		if da < lo || da > hi {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, da, lo, hi)
		}
	}
}

func TestBackoffCapsAtMaxDelay(t *testing.T) {
	p := Policy{MaxAttempts: 20, BaseDelay: time.Second, MaxDelay: 4 * time.Second, Multiplier: 10, Jitter: -1}
	b := NewBackoff(p)
	if d := b.Delay(10); d != 4*time.Second {
		t.Errorf("Delay(10) = %v, want cap %v", d, 4*time.Second)
	}
}

func TestPolicyMaxElapsedBoundsSchedule(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Seed: 3}
	b := NewBackoff(p)
	var total time.Duration
	for attempt := 1; attempt < p.MaxAttempts; attempt++ {
		total += b.Delay(attempt)
	}
	if max := p.MaxElapsed(); total > max {
		t.Errorf("schedule slept %v, above MaxElapsed bound %v", total, max)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clk := &manualClock{now: time.Unix(0, 0)}
	reg := obs.NewRegistry()
	b := NewBreaker(3, 10*time.Second, clk, reg, "fetch")

	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused call %d: %v", i, err)
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Failure() // third consecutive failure trips it
	if b.State() != Open {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if err := b.Allow(); err != ErrOpen {
		t.Fatalf("open breaker allowed a call (err=%v)", err)
	}

	// After the cooldown a single probe is admitted; concurrent calls
	// are still rejected until the probe resolves.
	clk.now = clk.now.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := b.Allow(); err != ErrOpen {
		t.Fatal("second call admitted while probe in flight")
	}
	b.Failure() // failed probe reopens
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}

	clk.now = clk.now.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("reclosed breaker refused: %v", err)
	}

	if v := reg.Counter("breaker_trips_total", "component", "fetch").Value(); v != 2 {
		t.Errorf("breaker_trips_total = %d, want 2 (initial trip + failed probe)", v)
	}
	if v := reg.Gauge("breaker_state", "component", "fetch").Value(); v != float64(Closed) {
		t.Errorf("breaker_state gauge = %v, want %v", v, float64(Closed))
	}
}

func TestNilBreakerIsNoOp(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatalf("nil breaker refused: %v", err)
	}
	b.Success()
	b.Failure()
	if b.State() != Closed {
		t.Error("nil breaker not closed")
	}
}

func TestSystemClockSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := System.Sleep(ctx, time.Hour); err == nil {
		t.Fatal("Sleep ignored cancelled context")
	}
}
