// Package retry holds the resilience primitives shared by the fetch and
// backlink paths: bounded exponential backoff with deterministic jitter,
// a consecutive-failure circuit breaker with half-open probes, and the
// clock seam that lets the fault-injection harness (internal/fault)
// drive both without real sleeps. The paper's pipeline depends on two
// flaky external facilities — page fetches for the focused crawler and
// the search engine's link: backlink API — and explicitly tolerates
// incomplete answers from either; this package is how the system keeps
// making progress when individual requests fail.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"cafc/internal/obs"
)

// Clock abstracts wall time and sleeping so retry schedules can be
// driven by a fake clock in tests (no real sleeps, fully deterministic).
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until the context is done, returning the
	// context's error in the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// systemClock is the real time.Now/time.Sleep clock.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// System is the production clock.
var System Clock = systemClock{}

// Policy bounds one retry sequence. The zero value selects the defaults
// documented per field.
type Policy struct {
	// MaxAttempts is the total number of tries, first attempt included
	// (0 = 3). 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (0 = 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the per-retry backoff (0 = 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries (0 = 2).
	Multiplier float64
	// Jitter in [0,1] randomizes each delay within ±Jitter·delay so
	// synchronized clients do not retry in lockstep (0 = 0.5; negative
	// disables jitter entirely).
	Jitter float64
	// Seed drives the jitter; equal seeds give identical schedules.
	Seed int64
	// Timeout bounds each individual attempt via a derived context
	// (0 = 10s; negative disables the per-attempt timeout).
	Timeout time.Duration
}

// WithDefaults resolves zero fields to the documented defaults.
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Timeout == 0 {
		p.Timeout = 10 * time.Second
	}
	return p
}

// MaxElapsed returns an upper bound on the total time a sequence under
// this policy may spend sleeping between attempts — the time budget the
// property tests hold RetryFetcher to.
func (p Policy) MaxElapsed() time.Duration {
	p = p.WithDefaults()
	var total time.Duration
	for attempt := 1; attempt < p.MaxAttempts; attempt++ {
		d := p.rawDelay(attempt)
		total += d + time.Duration(p.Jitter*float64(d))
	}
	return total
}

// rawDelay is the un-jittered backoff before retry number attempt
// (1-based), capped at MaxDelay.
func (p Policy) rawDelay(attempt int) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// Backoff produces the delay schedule of retry sequences under a policy.
// It is safe for concurrent use; jitter is drawn from a seeded generator
// so a single-threaded caller sees an identical schedule every run.
type Backoff struct {
	p   Policy
	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff returns a Backoff for the policy (defaults resolved).
func NewBackoff(p Policy) *Backoff {
	p = p.WithDefaults()
	return &Backoff{p: p, rng: rand.New(rand.NewSource(p.Seed + 1))}
}

// Delay returns the backoff before retry number attempt (1-based): the
// exponential delay plus deterministic jitter in ±Jitter·delay.
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.p.rawDelay(attempt)
	if b.p.Jitter <= 0 {
		return d
	}
	b.mu.Lock()
	u := b.rng.Float64()
	b.mu.Unlock()
	// u in [0,1) -> factor in [1-Jitter, 1+Jitter).
	factor := 1 + b.p.Jitter*(2*u-1)
	j := time.Duration(factor * float64(d))
	if j > d+time.Duration(b.p.Jitter*float64(d)) {
		j = d + time.Duration(b.p.Jitter*float64(d))
	}
	if j < 0 {
		j = 0
	}
	return j
}

// State is a circuit breaker's position.
type State int

// Breaker states, ordered so the exported gauge reads 0 = healthy.
const (
	Closed State = iota
	HalfOpen
	Open
)

// String returns the conventional state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// ErrOpen is returned by Breaker.Allow while the circuit is open (and by
// wrappers fast-failing on it). errors.Is-match it to detect fast-fails.
var ErrOpen = errors.New("retry: circuit breaker open")

// Breaker is a consecutive-failure circuit breaker. After Threshold
// failures in a row it opens and fast-fails every call for Cooldown;
// then one probe call is let through (half-open) — success recloses the
// circuit, failure reopens it for another cooldown.
type Breaker struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// (0 = 5).
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe (0 = 30s).
	Cooldown time.Duration
	// Clock supplies time (nil = System).
	Clock Clock
	// StateGauge, when non-nil, tracks the state as a gauge (0 closed,
	// 1 half-open, 2 open). Trips counts closed->open transitions.
	StateGauge *obs.Gauge
	Trips      *obs.Counter

	mu       sync.Mutex
	state    State
	fails    int
	openedAt time.Time
	probing  bool
}

// NewBreaker returns a Breaker wired to the registry's
// breaker_state{component=...} gauge and breaker_trips_total counter
// (reg may be nil: the handles degrade to no-ops).
func NewBreaker(threshold int, cooldown time.Duration, clock Clock, reg *obs.Registry, component string) *Breaker {
	return &Breaker{
		Threshold:  threshold,
		Cooldown:   cooldown,
		Clock:      clock,
		StateGauge: reg.Gauge("breaker_state", "component", component),
		Trips:      reg.Counter("breaker_trips_total", "component", component),
	}
}

func (b *Breaker) clock() Clock {
	if b.Clock == nil {
		return System
	}
	return b.Clock
}

func (b *Breaker) threshold() int {
	if b.Threshold == 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown == 0 {
		return 30 * time.Second
	}
	return b.Cooldown
}

// State returns the current position (advancing open -> half-open is done
// by Allow, not here).
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a call may proceed. Nil breakers always allow.
// While open it returns ErrOpen until the cooldown elapses, then admits a
// single half-open probe; concurrent calls during the probe still get
// ErrOpen.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.clock().Now().Sub(b.openedAt) < b.cooldown() {
			return ErrOpen
		}
		b.setState(HalfOpen)
		b.probing = true
		return nil
	case HalfOpen:
		if b.probing {
			return ErrOpen
		}
		b.probing = true
		return nil
	}
	return nil
}

// Success records a successful call, closing the circuit.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	if b.state != Closed {
		b.setState(Closed)
	}
}

// Failure records a failed call; Threshold consecutive failures (or a
// failed half-open probe) open the circuit.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == HalfOpen || (b.state == Closed && b.fails >= b.threshold()) {
		b.probing = false
		b.openedAt = b.clock().Now()
		if b.state != Open {
			b.Trips.Inc()
		}
		b.setState(Open)
	}
}

// setState transitions the state and mirrors it on the gauge; callers
// hold b.mu.
func (b *Breaker) setState(s State) {
	b.state = s
	b.StateGauge.Set(float64(s))
}
