package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func perfect() Labeling {
	return Labeling{
		Assign:  []int{0, 0, 1, 1, 2, 2},
		Classes: []string{"a", "a", "b", "b", "c", "c"},
	}
}

func worst() Labeling {
	// One cluster with a uniform mix of three classes.
	return Labeling{
		Assign:  []int{0, 0, 0, 0, 0, 0},
		Classes: []string{"a", "a", "b", "b", "c", "c"},
	}
}

func TestEntropyPerfect(t *testing.T) {
	if e := Entropy(perfect()); !almostEq(e, 0) {
		t.Errorf("entropy of perfect clustering = %v", e)
	}
}

func TestEntropyUniformMix(t *testing.T) {
	want := math.Log(3)
	if e := Entropy(worst()); !almostEq(e, want) {
		t.Errorf("entropy = %v, want ln 3 = %v", e, want)
	}
}

func TestEntropyWeightedBySize(t *testing.T) {
	// Cluster 0: pure, 6 members. Cluster 1: 50/50 mix, 2 members.
	l := Labeling{
		Assign:  []int{0, 0, 0, 0, 0, 0, 1, 1},
		Classes: []string{"a", "a", "a", "a", "a", "a", "a", "b"},
	}
	want := (2.0 / 8.0) * math.Log(2)
	if e := Entropy(l); !almostEq(e, want) {
		t.Errorf("entropy = %v, want %v", e, want)
	}
}

func TestFMeasurePerfect(t *testing.T) {
	if f := FMeasure(perfect()); !almostEq(f, 1) {
		t.Errorf("F of perfect clustering = %v", f)
	}
}

func TestFMeasureKnownValue(t *testing.T) {
	// Cluster 0 = {a,a,b}, cluster 1 = {b}. Classes: a×2, b×2.
	l := Labeling{
		Assign:  []int{0, 0, 0, 1},
		Classes: []string{"a", "a", "b", "b"},
	}
	// Cluster 0 best class a: P=2/3, R=1 -> F=0.8. Cluster 1 class b:
	// P=1, R=1/2 -> F=2/3. Weighted: (3*0.8 + 1*(2/3)) / 4.
	want := (3*0.8 + 2.0/3.0) / 4
	if f := FMeasure(l); !almostEq(f, want) {
		t.Errorf("F = %v, want %v", f, want)
	}
}

func TestPrecisionRecall(t *testing.T) {
	l := Labeling{
		Assign:  []int{0, 0, 0, 1},
		Classes: []string{"a", "a", "b", "b"},
	}
	if p := Precision(l, "a", 0); !almostEq(p, 2.0/3.0) {
		t.Errorf("P = %v", p)
	}
	if r := Recall(l, "b", 0); !almostEq(r, 0.5) {
		t.Errorf("R = %v", r)
	}
	if p := Precision(l, "a", 9); p != 0 {
		t.Errorf("P of empty cluster = %v", p)
	}
	if r := Recall(l, "zzz", 0); r != 0 {
		t.Errorf("R of unknown class = %v", r)
	}
}

func TestPurity(t *testing.T) {
	if p := Purity(perfect()); !almostEq(p, 1) {
		t.Errorf("purity = %v", p)
	}
	l := Labeling{
		Assign:  []int{0, 0, 0, 1},
		Classes: []string{"a", "a", "b", "b"},
	}
	if p := Purity(l); !almostEq(p, 0.75) {
		t.Errorf("purity = %v", p)
	}
}

func TestEmptyLabeling(t *testing.T) {
	l := Labeling{}
	if Entropy(l) != 0 || FMeasure(l) != 0 || Purity(l) != 0 {
		t.Error("empty labeling should give zero metrics")
	}
}

func TestUnassignedObjectsIgnored(t *testing.T) {
	l := Labeling{
		Assign:  []int{0, 0, -1},
		Classes: []string{"a", "a", "b"},
	}
	if e := Entropy(l); !almostEq(e, 0) {
		t.Errorf("entropy = %v, unassigned object leaked in", e)
	}
	if f := FMeasure(l); !almostEq(f, 1) {
		t.Errorf("F = %v", f)
	}
}

func TestMetricBoundsProperty(t *testing.T) {
	classes := []string{"air", "auto", "book", "hotel"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		l := Labeling{Assign: make([]int, n), Classes: make([]string, n)}
		k := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			l.Assign[i] = rng.Intn(k)
			l.Classes[i] = classes[rng.Intn(len(classes))]
		}
		e, fm, p := Entropy(l), FMeasure(l), Purity(l)
		return e >= 0 && e <= math.Log(float64(len(classes)))+1e-9 &&
			fm >= 0 && fm <= 1+1e-9 && p > 0 && p <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBetterClusteringScoresBetter(t *testing.T) {
	// The mixed clustering must have strictly higher entropy and lower F
	// than the pure one — the ordering both paper metrics rely on.
	pure := perfect()
	mixed := Labeling{
		Assign:  []int{0, 1, 0, 1, 0, 1},
		Classes: pure.Classes,
	}
	if !(Entropy(mixed) > Entropy(pure)) {
		t.Error("entropy ordering violated")
	}
	if !(FMeasure(mixed) < FMeasure(pure)) {
		t.Error("F-measure ordering violated")
	}
}

func TestIsHomogeneous(t *testing.T) {
	classes := []string{"a", "a", "b"}
	if !IsHomogeneous([]int{0, 1}, classes) {
		t.Error("homogeneous group misjudged")
	}
	if IsHomogeneous([]int{0, 2}, classes) {
		t.Error("mixed group misjudged")
	}
	if !IsHomogeneous(nil, classes) {
		t.Error("empty group should be homogeneous")
	}
}

func TestMajorityClass(t *testing.T) {
	classes := []string{"a", "b", "b", "c"}
	cls, cnt := MajorityClass([]int{0, 1, 2, 3}, classes)
	if cls != "b" || cnt != 2 {
		t.Errorf("majority = %q/%d", cls, cnt)
	}
	// Tie -> lexicographically first.
	cls, _ = MajorityClass([]int{0, 1}, classes)
	if cls != "a" {
		t.Errorf("tie broke to %q", cls)
	}
}

func TestMisclustered(t *testing.T) {
	l := Labeling{
		Assign:  []int{0, 0, 0, 1, 1},
		Classes: []string{"a", "a", "b", "c", "c"},
	}
	mis := Misclustered(l)
	if len(mis) != 1 || mis[0] != 2 {
		t.Errorf("misclustered = %v", mis)
	}
}

func TestConfusionTable(t *testing.T) {
	l := Labeling{
		Assign:  []int{0, 0, 1},
		Classes: []string{"movie", "music", "movie"},
	}
	c := NewConfusion(l)
	if len(c.Clusters) != 2 || len(c.Classes) != 2 {
		t.Fatalf("table shape: %+v", c)
	}
	if c.Counts[0]["movie"] != 1 || c.Counts[0]["music"] != 1 || c.Counts[1]["movie"] != 1 {
		t.Errorf("counts = %v", c.Counts)
	}
	s := c.String()
	if !strings.Contains(s, "movie") || !strings.Contains(s, "cluster") {
		t.Errorf("render = %q", s)
	}
}
