// Package metrics implements the cluster-quality measures the paper
// evaluates with: entropy (Equation 5, size-weighted across clusters) and
// the F-measure (Equation 6, the weighted average of each cluster's best
// per-class F score), plus precision/recall, purity and a confusion matrix
// for error analysis.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Labeling pairs a clustering assignment with gold class labels. Both
// slices are indexed by object; assignments may use any small non-negative
// integers, classes are arbitrary strings.
type Labeling struct {
	Assign  []int
	Classes []string
}

// sortedClusters returns nij's cluster ids ascending: aggregate sums
// iterate in this order so results are bit-stable across runs (float
// addition is order-sensitive in the last ulp, map iteration is not).
func sortedClusters(nij map[int]map[string]int) []int {
	js := make([]int, 0, len(nij))
	for j := range nij {
		js = append(js, j)
	}
	sort.Ints(js)
	return js
}

// sortedClasses returns a cluster's class labels ascending, same reason.
func sortedClasses(classes map[string]int) []string {
	cs := make([]string, 0, len(classes))
	for cls := range classes {
		cs = append(cs, cls)
	}
	sort.Strings(cs)
	return cs
}

// counts builds n_{ij} (members of class i in cluster j), n_j and n_i.
func (l Labeling) counts() (nij map[int]map[string]int, nj map[int]int, ni map[string]int, n int) {
	nij = make(map[int]map[string]int)
	nj = make(map[int]int)
	ni = make(map[string]int)
	for idx, c := range l.Assign {
		if c < 0 {
			continue
		}
		cls := l.Classes[idx]
		if nij[c] == nil {
			nij[c] = make(map[string]int)
		}
		nij[c][cls]++
		nj[c]++
		ni[cls]++
		n++
	}
	return
}

// Entropy returns the paper's total entropy: for each cluster j the class
// distribution entropy −Σ p_ij log p_ij (natural log, matching Equation
// 5's unspecified base — the comparisons are base-invariant), summed over
// clusters weighted by cluster size. Lower is better; 0 means every
// cluster is pure.
func Entropy(l Labeling) float64 {
	nij, nj, _, n := l.counts()
	if n == 0 {
		return 0
	}
	var total float64
	for _, j := range sortedClusters(nij) {
		classes := nij[j]
		size := float64(nj[j])
		var h float64
		for _, cls := range sortedClasses(classes) {
			p := float64(classes[cls]) / size
			h -= p * math.Log(p)
		}
		total += (size / float64(n)) * h
	}
	return total
}

// Recall returns n_ij / n_i for class cls in cluster j.
func Recall(l Labeling, cls string, j int) float64 {
	nij, _, ni, _ := l.counts()
	if ni[cls] == 0 {
		return 0
	}
	return float64(nij[j][cls]) / float64(ni[cls])
}

// Precision returns n_ij / n_j for class cls in cluster j.
func Precision(l Labeling, cls string, j int) float64 {
	nij, nj, _, _ := l.counts()
	if nj[j] == 0 {
		return 0
	}
	return float64(nij[j][cls]) / float64(nj[j])
}

// FMeasure returns the paper's overall F-measure: for each cluster j take
// the best F(i, j) = 2PR/(P+R) over classes i, then average over clusters
// weighted by cluster size. 1 is perfect.
func FMeasure(l Labeling) float64 {
	nij, nj, ni, n := l.counts()
	if n == 0 {
		return 0
	}
	var total float64
	for _, j := range sortedClusters(nij) {
		classes := nij[j]
		var bestF float64
		for _, cls := range sortedClasses(classes) {
			cnt := classes[cls]
			p := float64(cnt) / float64(nj[j])
			r := float64(cnt) / float64(ni[cls])
			if p+r == 0 {
				continue
			}
			f := 2 * p * r / (p + r)
			if f > bestF {
				bestF = f
			}
		}
		total += float64(nj[j]) / float64(n) * bestF
	}
	return total
}

// Purity returns the fraction of objects that belong to their cluster's
// majority class.
func Purity(l Labeling) float64 {
	nij, _, _, n := l.counts()
	if n == 0 {
		return 0
	}
	correct := 0
	for _, classes := range nij {
		best := 0
		for _, cnt := range classes {
			if cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	return float64(correct) / float64(n)
}

// IsHomogeneous reports whether every member of the group (given as object
// indices into classes) shares one class — the paper's criterion for a
// "homogeneous" hub cluster.
func IsHomogeneous(members []int, classes []string) bool {
	if len(members) == 0 {
		return true
	}
	first := classes[members[0]]
	for _, m := range members[1:] {
		if classes[m] != first {
			return false
		}
	}
	return true
}

// MajorityClass returns the most frequent class among the members and its
// count; ties break lexicographically for determinism.
func MajorityClass(members []int, classes []string) (string, int) {
	counts := make(map[string]int)
	for _, m := range members {
		counts[classes[m]]++
	}
	best, bestCnt := "", 0
	for cls, cnt := range counts {
		if cnt > bestCnt || (cnt == bestCnt && cls < best) {
			best, bestCnt = cls, cnt
		}
	}
	return best, bestCnt
}

// Misclustered returns the indices of objects that do not belong to their
// cluster's majority class — the paper's Section 4.2 error analysis.
func Misclustered(l Labeling) []int {
	maxC := -1
	for _, c := range l.Assign {
		if c > maxC {
			maxC = c
		}
	}
	majority := make(map[int]string)
	for j := 0; j <= maxC; j++ {
		var members []int
		for idx, c := range l.Assign {
			if c == j {
				members = append(members, idx)
			}
		}
		if len(members) == 0 {
			continue
		}
		cls, _ := MajorityClass(members, l.Classes)
		majority[j] = cls
	}
	var out []int
	for idx, c := range l.Assign {
		if c < 0 {
			continue
		}
		if l.Classes[idx] != majority[c] {
			out = append(out, idx)
		}
	}
	return out
}

// Confusion is a cluster-by-class contingency table with stable ordering.
type Confusion struct {
	Clusters []int
	Classes  []string
	Counts   map[int]map[string]int
}

// NewConfusion builds the contingency table for a labeling.
func NewConfusion(l Labeling) *Confusion {
	nij, nj, ni, _ := l.counts()
	c := &Confusion{Counts: nij}
	for j := range nj {
		c.Clusters = append(c.Clusters, j)
	}
	sort.Ints(c.Clusters)
	for cls := range ni {
		c.Classes = append(c.Classes, cls)
	}
	sort.Strings(c.Classes)
	return c
}

// String renders the table for terminal output.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "cluster")
	for _, cls := range c.Classes {
		fmt.Fprintf(&b, "%10s", truncate(cls, 9))
	}
	b.WriteByte('\n')
	for _, j := range c.Clusters {
		fmt.Fprintf(&b, "%-10d", j)
		for _, cls := range c.Classes {
			fmt.Fprintf(&b, "%10d", c.Counts[j][cls])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
