package match

import (
	"strings"
	"testing"

	"cafc/internal/form"
	"cafc/internal/webgen"
)

// domainForms parses every form of one domain from a generated corpus —
// the input a CAFC cluster would hand to the matcher.
func domainForms(t testing.TB, seed int64, n int, d webgen.Domain) []*form.Form {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
	var out []*form.Form
	for _, u := range c.FormPages {
		if c.Labels[u] != d {
			continue
		}
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			t.Fatal(err)
		}
		if fp.Form.AttributeCount() > 1 { // keyword boxes carry no schema
			out = append(out, fp.Form)
		}
	}
	return out
}

// conceptOf maps an attribute to its gold concept index via the domain's
// label alternatives, or -1.
func conceptOf(a *Attribute, concepts [][]string) int {
	norm := func(s string) string {
		return strings.Join(strings.Fields(strings.ToLower(strings.NewReplacer("_", " ", ":", "").Replace(s))), " ")
	}
	key := norm(a.Label)
	for ci, alts := range concepts {
		for _, alt := range alts {
			if norm(alt) == key {
				return ci
			}
		}
	}
	return -1
}

func TestFindGroupsJobAttributes(t *testing.T) {
	forms := domainForms(t, 1, 160, webgen.Job)
	if len(forms) < 8 {
		t.Fatalf("only %d job forms", len(forms))
	}
	concepts := webgen.AttributeConcepts(webgen.Job)
	cors := Find(forms, Options{})

	// Pair precision: attributes grouped together should share a concept.
	pairs, pure := 0, 0
	for _, c := range cors {
		for i := 0; i < len(c.Members); i++ {
			ci := conceptOf(&c.Members[i], concepts)
			for j := i + 1; j < len(c.Members); j++ {
				cj := conceptOf(&c.Members[j], concepts)
				if ci < 0 || cj < 0 {
					continue
				}
				pairs++
				if ci == cj {
					pure++
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no evaluable pairs — gold mapping broken")
	}
	precision := float64(pure) / float64(pairs)
	t.Logf("pair precision %.3f over %d pairs, %d correspondences", precision, pairs, len(cors))
	if precision < 0.85 {
		t.Errorf("pair precision %.3f too low", precision)
	}

	// The heterogeneously named category concept must be consolidated:
	// some correspondence should span many forms with label variants.
	bestForms := 0
	for _, c := range cors {
		if c.Forms > bestForms {
			bestForms = c.Forms
		}
	}
	if bestForms < len(forms)/3 {
		t.Errorf("largest correspondence spans only %d of %d forms", bestForms, len(forms))
	}
}

func TestFindHeterogeneousLabelsMatchByValues(t *testing.T) {
	// Two forms naming the same concept differently, sharing option
	// values — the Figure 1(a)/(b) situation.
	a := parseForm(t, `<form>
		Job Category: <select name="job_category"><option>Engineering</option><option>Nursing</option><option>Sales</option></select>
		<input type=submit value="Search Jobs"></form>`)
	b := parseForm(t, `<form>
		Industry: <select name="industry"><option>Engineering</option><option>Nursing</option><option>Sales</option></select>
		<input type=submit value="Find Jobs"></form>`)
	cors := Find([]*form.Form{a, b}, Options{})
	for _, c := range cors {
		if len(c.Members) == 2 {
			return // matched across the rename
		}
	}
	t.Errorf("value-identical attributes with different labels not matched: %+v", cors)
}

func TestFindSameFormConstraint(t *testing.T) {
	// One form with two city selects (From/To sharing values): they must
	// NOT be merged with each other.
	f := parseForm(t, `<form>
		From: <select name="from"><option>Boston</option><option>Denver</option></select>
		To: <select name="to"><option>Boston</option><option>Denver</option></select>
		<input type=submit value="Search Flights"></form>`)
	cors := Find([]*form.Form{f}, Options{})
	for _, c := range cors {
		if len(c.Members) > 1 {
			t.Errorf("same-form attributes merged: %+v", c)
		}
	}
}

func TestSimilarityChannels(t *testing.T) {
	mk := func(label string, options ...string) Attribute {
		f := &form.Form{Fields: []form.Field{{Tag: "select", Name: label, Options: options}}}
		return ExtractAttributes(0, f)[0]
	}
	// Same labels, no options.
	a, b := mk("departure_city"), mk("departure_city")
	if s := Similarity(&a, &b); s < 0.99 {
		t.Errorf("identical labels: %v", s)
	}
	// Disjoint labels, same options.
	a, b = mk("from", "Boston", "Denver"), mk("origin", "Boston", "Denver")
	if s := Similarity(&a, &b); s < 0.99 {
		t.Errorf("identical options: %v", s)
	}
	// Nothing shared.
	a, b = mk("author"), mk("mileage")
	if s := Similarity(&a, &b); s != 0 {
		t.Errorf("disjoint attributes: %v", s)
	}
}

func TestUnifyBuildsMergedInterface(t *testing.T) {
	forms := domainForms(t, 2, 160, webgen.Airfare)
	unified := Unify(forms, Options{}, 0.3)
	if len(unified) == 0 {
		t.Fatal("no unified attributes")
	}
	top := unified[0]
	if top.Coverage < 0.3 {
		t.Errorf("top coverage = %.2f", top.Coverage)
	}
	// The merged city attribute must union option values from many sites.
	foundCities := false
	for _, u := range unified {
		has := 0
		for _, o := range u.Options {
			switch o {
			case "Boston", "Denver", "Seattle", "Miami":
				has++
			}
		}
		if has >= 3 {
			foundCities = true
		}
	}
	if !foundCities {
		t.Error("no unified attribute unions the city vocabulary")
	}
	// Coverage ordering.
	for i := 1; i < len(unified); i++ {
		if unified[i].Coverage > unified[i-1].Coverage {
			t.Fatal("unified attributes not sorted by coverage")
		}
	}
}

func TestExtractAttributesSkipsNoise(t *testing.T) {
	f := parseForm(t, `<form>
		<input type="hidden" name="sid" value="1">
		Title: <input type="text" name="title">
		<input type="submit" value="Search">
		<button type="submit">Go</button></form>`)
	attrs := ExtractAttributes(0, f)
	if len(attrs) != 1 || attrs[0].Name != "title" {
		t.Errorf("attrs = %+v", attrs)
	}
}

func parseForm(t *testing.T, html string) *form.Form {
	t.Helper()
	fp, err := form.Parse("http://t.example/", html, form.DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	return fp.Form
}

func BenchmarkFind(b *testing.B) {
	c := webgen.Generate(webgen.Config{Seed: 1, FormPages: 160})
	var forms []*form.Form
	for _, u := range c.FormPages {
		if c.Labels[u] != webgen.Job {
			continue
		}
		fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
		if err != nil {
			b.Fatal(err)
		}
		forms = append(forms, fp.Form)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Find(forms, Options{})
	}
}
